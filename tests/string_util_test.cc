#include "util/string_util.h"

#include <gtest/gtest.h>

namespace flexrel {
namespace {

TEST(StringUtilTest, JoinBasics) {
  EXPECT_EQ(Join(std::vector<std::string>{"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
  EXPECT_EQ(Join(std::vector<int>{1, 2, 3}, "-"), "1-2-3");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StringUtilTest, StrCat) {
  EXPECT_EQ(StrCat("x=", 42, ", y=", 1.5), "x=42, y=1.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("flexible", "flex"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_FALSE(StartsWith("xabc", "abc"));
}

TEST(StringUtilTest, AsciiLower) {
  EXPECT_EQ(AsciiLower("JobType"), "jobtype");
  EXPECT_EQ(AsciiLower("already"), "already");
  EXPECT_EQ(AsciiLower("Mixed-1_X"), "mixed-1_x");
}

}  // namespace
}  // namespace flexrel
