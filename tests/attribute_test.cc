#include "relational/attribute.h"

#include <gtest/gtest.h>

namespace flexrel {
namespace {

TEST(AttrCatalogTest, InternIsIdempotent) {
  AttrCatalog catalog;
  AttrId a = catalog.Intern("salary");
  AttrId b = catalog.Intern("jobtype");
  EXPECT_NE(a, b);
  EXPECT_EQ(catalog.Intern("salary"), a);
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.Name(a), "salary");
  EXPECT_EQ(catalog.Name(b), "jobtype");
}

TEST(AttrCatalogTest, FindReportsMissing) {
  AttrCatalog catalog;
  catalog.Intern("x");
  ASSERT_TRUE(catalog.Find("x").ok());
  EXPECT_EQ(catalog.Find("y").status().code(), StatusCode::kNotFound);
}

TEST(AttrSetTest, ConstructionDedupsAndSorts) {
  AttrSet s{3, 1, 2, 1, 3};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.ids(), (std::vector<AttrId>{1, 2, 3}));
}

TEST(AttrSetTest, ContainsAndSubset) {
  AttrSet s{1, 2, 3};
  EXPECT_TRUE(s.Contains(2));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_TRUE((AttrSet{1, 3}).IsSubsetOf(s));
  EXPECT_TRUE(AttrSet().IsSubsetOf(s));
  EXPECT_FALSE((AttrSet{1, 4}).IsSubsetOf(s));
  EXPECT_TRUE(s.IsSubsetOf(s));
}

TEST(AttrSetTest, SetAlgebra) {
  AttrSet a{1, 2, 3};
  AttrSet b{3, 4};
  EXPECT_EQ(a.Union(b), (AttrSet{1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), AttrSet{3});
  EXPECT_EQ(a.Minus(b), (AttrSet{1, 2}));
  EXPECT_EQ(b.Minus(a), AttrSet{4});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE((AttrSet{1}).Intersects(AttrSet{2}));
}

TEST(AttrSetTest, AlgebraWithEmpty) {
  AttrSet a{1, 2};
  AttrSet empty;
  EXPECT_EQ(a.Union(empty), a);
  EXPECT_EQ(a.Intersect(empty), empty);
  EXPECT_EQ(a.Minus(empty), a);
  EXPECT_EQ(empty.Minus(a), empty);
  EXPECT_FALSE(a.Intersects(empty));
}

TEST(AttrSetTest, InsertMaintainsOrder) {
  AttrSet s;
  s.Insert(5);
  s.Insert(1);
  s.Insert(3);
  s.Insert(3);
  EXPECT_EQ(s.ids(), (std::vector<AttrId>{1, 3, 5}));
}

TEST(AttrSetTest, OrderingAndHash) {
  AttrSet a{1, 2};
  AttrSet b{1, 3};
  EXPECT_TRUE(a < b);
  EXPECT_EQ(a.Hash(), (AttrSet{2, 1}).Hash());
  EXPECT_NE(a, b);
}

TEST(AttrSetTest, ToStringWithCatalog) {
  AttrCatalog catalog;
  AttrId x = catalog.Intern("jobtype");
  AttrId y = catalog.Intern("salary");
  AttrSet s{y, x};
  EXPECT_EQ(s.ToString(catalog), "{jobtype, salary}");
  EXPECT_EQ(AttrSet().ToString(catalog), "{}");
}

TEST(AttrSetTest, FromIds) {
  AttrSet s = AttrSet::FromIds({9, 9, 2});
  EXPECT_EQ(s.ids(), (std::vector<AttrId>{2, 9}));
  EXPECT_EQ(AttrSet::Of(7), AttrSet{7});
}

}  // namespace
}  // namespace flexrel
