#include "relational/domain.h"

#include <gtest/gtest.h>

namespace flexrel {
namespace {

TEST(DomainTest, AnyDomainChecksTypeOnly) {
  Domain d = Domain::Any(ValueType::kInt);
  EXPECT_TRUE(d.Contains(Value::Int(5)));
  EXPECT_FALSE(d.Contains(Value::Str("5")));
  EXPECT_FALSE(d.Contains(Value::Null()));
  EXPECT_FALSE(d.Cardinality().has_value());
}

TEST(DomainTest, BoolAnyIsFinite) {
  Domain d = Domain::Any(ValueType::kBool);
  ASSERT_TRUE(d.Cardinality().has_value());
  EXPECT_EQ(*d.Cardinality(), 2u);
}

TEST(DomainTest, EnumeratedMembership) {
  auto d = Domain::Enumerated({Value::Str("secretary"), Value::Str("salesman"),
                               Value::Str("secretary")});
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value().Contains(Value::Str("salesman")));
  EXPECT_FALSE(d.value().Contains(Value::Str("engineer")));
  EXPECT_EQ(*d.value().Cardinality(), 2u);  // deduplicated
}

TEST(DomainTest, EnumeratedRejectsMixedTypesAndEmpty) {
  EXPECT_FALSE(Domain::Enumerated({Value::Int(1), Value::Str("x")}).ok());
  EXPECT_FALSE(Domain::Enumerated({}).ok());
  EXPECT_FALSE(Domain::Enumerated({Value::Null()}).ok());
}

TEST(DomainTest, IntRange) {
  auto d = Domain::IntRange(1, 10);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value().Contains(Value::Int(1)));
  EXPECT_TRUE(d.value().Contains(Value::Int(10)));
  EXPECT_FALSE(d.value().Contains(Value::Int(0)));
  EXPECT_FALSE(d.value().Contains(Value::Int(11)));
  EXPECT_EQ(*d.value().Cardinality(), 10u);
  EXPECT_FALSE(Domain::IntRange(5, 4).ok());
}

TEST(DomainTest, RestrictTo) {
  auto base = Domain::Enumerated(
      {Value::Str("a"), Value::Str("b"), Value::Str("c")});
  ASSERT_TRUE(base.ok());
  auto restricted = base.value().RestrictTo({Value::Str("b")});
  ASSERT_TRUE(restricted.ok());
  EXPECT_TRUE(restricted.value().Contains(Value::Str("b")));
  EXPECT_FALSE(restricted.value().Contains(Value::Str("a")));
  // Restricting to a non-member fails.
  EXPECT_FALSE(base.value().RestrictTo({Value::Str("z")}).ok());
}

TEST(DomainTest, SubdomainEnumerated) {
  Domain all = Domain::Any(ValueType::kString);
  auto abc = Domain::Enumerated(
      {Value::Str("a"), Value::Str("b"), Value::Str("c")});
  auto ab = Domain::Enumerated({Value::Str("a"), Value::Str("b")});
  ASSERT_TRUE(abc.ok());
  ASSERT_TRUE(ab.ok());
  EXPECT_TRUE(ab.value().IsSubdomainOf(abc.value()));
  EXPECT_FALSE(abc.value().IsSubdomainOf(ab.value()));
  EXPECT_TRUE(ab.value().IsSubdomainOf(all));
  EXPECT_FALSE(all.IsSubdomainOf(ab.value()));
  EXPECT_TRUE(all.IsSubdomainOf(all));
}

TEST(DomainTest, SubdomainRanges) {
  Domain r1 = Domain::IntRange(2, 5).value();
  Domain r2 = Domain::IntRange(1, 10).value();
  EXPECT_TRUE(r1.IsSubdomainOf(r2));
  EXPECT_FALSE(r2.IsSubdomainOf(r1));
  EXPECT_TRUE(r1.IsSubdomainOf(Domain::Any(ValueType::kInt)));
  // Range within an enumerated domain.
  auto enum123 = Domain::Enumerated(
      {Value::Int(1), Value::Int(2), Value::Int(3)});
  ASSERT_TRUE(enum123.ok());
  EXPECT_TRUE(Domain::IntRange(1, 3).value().IsSubdomainOf(enum123.value()));
  EXPECT_FALSE(Domain::IntRange(1, 4).value().IsSubdomainOf(enum123.value()));
}

TEST(DomainTest, CrossTypeNeverSubdomain) {
  EXPECT_FALSE(Domain::Any(ValueType::kInt)
                   .IsSubdomainOf(Domain::Any(ValueType::kDouble)));
}

TEST(DomainTest, SampleRespectsDomain) {
  Rng rng(99);
  Domain d = Domain::IntRange(5, 8).value();
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(d.Contains(d.Sample(&rng)));
  }
  auto e = Domain::Enumerated({Value::Str("x"), Value::Str("y")}).value();
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(e.Contains(e.Sample(&rng)));
  }
  Domain any_int = Domain::Any(ValueType::kInt);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(any_int.Contains(any_int.Sample(&rng)));
  }
}

TEST(DomainTest, ToString) {
  EXPECT_EQ(Domain::Any(ValueType::kInt).ToString(), "int");
  EXPECT_EQ(Domain::IntRange(1, 3).value().ToString(), "int[1..3]");
  EXPECT_EQ(Domain::Enumerated({Value::Str("a")}).value().ToString(),
            "{'a'}");
}

}  // namespace
}  // namespace flexrel
