#include "core/artificial_ads.h"

#include <gtest/gtest.h>

#include "core/type_check.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace flexrel {
namespace {

TEST(ArtificialAdsTest, NoVariabilityNoTags) {
  AttrCatalog catalog;
  auto fs = FlexibleScheme::Parse(&catalog, "<2,2,{A,B}>");
  ASSERT_TRUE(fs.ok());
  auto ads = SynthesizeArtificialAds(&catalog, fs.value(), "r");
  ASSERT_TRUE(ads.ok());
  EXPECT_TRUE(ads.value().regions.empty());
  EXPECT_TRUE(ads.value().augmented_scheme == fs.value());
}

TEST(ArtificialAdsTest, Example1GetsTwoRegionTags) {
  AttrCatalog catalog;
  auto fs = MakeExample1Scheme(&catalog);
  ASSERT_TRUE(fs.ok());
  auto ads = SynthesizeArtificialAds(&catalog, fs.value(), "ex1_");
  ASSERT_TRUE(ads.ok()) << ads.status();
  // A and B are fixed; <1,1,{C,D}> and <1,3,{E,F,G}> become regions.
  ASSERT_EQ(ads.value().regions.size(), 2u);
  EXPECT_EQ(ads.value().regions[0].combinations.size(), 2u);  // C | D
  EXPECT_EQ(ads.value().regions[1].combinations.size(), 7u);  // 2^3-1
  // Tag domains enumerate the combination indexes.
  EXPECT_EQ(*ads.value().tag_domains[0].second.Cardinality(), 2u);
  EXPECT_EQ(*ads.value().tag_domains[1].second.Cardinality(), 7u);
  // The augmented scheme's dnf: each original combination in exactly one
  // tagged form => same count.
  EXPECT_EQ(ads.value().augmented_scheme.DnfCount(), 14u);
}

TEST(ArtificialAdsTest, CompleteAndStripRoundTrip) {
  AttrCatalog catalog;
  auto fs = MakeExample1Scheme(&catalog);
  ASSERT_TRUE(fs.ok());
  auto ads = SynthesizeArtificialAds(&catalog, fs.value(), "ex1_");
  ASSERT_TRUE(ads.ok());

  auto dnf = fs.value().Dnf();
  ASSERT_TRUE(dnf.ok());
  for (const AttrSet& combo : dnf.value()) {
    Tuple t;
    for (AttrId a : combo) t.Set(a, Value::Int(1));
    auto tagged = CompleteWithTags(ads.value(), t);
    ASSERT_TRUE(tagged.ok()) << tagged.status();
    // Tagged tuple is admitted by the augmented scheme and satisfies every
    // artificial EAD.
    EXPECT_TRUE(ads.value().augmented_scheme.Admits(tagged.value().attrs()));
    for (const ExplicitAD& ead : ads.value().eads()) {
      EXPECT_TRUE(ead.Satisfies({tagged.value()}));
    }
    // Strip inverts.
    EXPECT_EQ(StripTags(ads.value(), tagged.value()), t);
  }
}

TEST(ArtificialAdsTest, IllShapedTupleRejected) {
  AttrCatalog catalog;
  auto fs = MakeExample1Scheme(&catalog);
  ASSERT_TRUE(fs.ok());
  auto ads = SynthesizeArtificialAds(&catalog, fs.value(), "ex1_");
  ASSERT_TRUE(ads.ok());
  // C and D together match no combination of the first region.
  Tuple bad;
  bad.Set(catalog.Find("C").value(), Value::Int(1));
  bad.Set(catalog.Find("D").value(), Value::Int(1));
  EXPECT_EQ(CompleteWithTags(ads.value(), bad).status().code(),
            StatusCode::kConstraintViolation);
}

TEST(ArtificialAdsTest, TopLevelChoiceBecomesOneRegion) {
  // <1,2,{A,B}>: the top level itself chooses; one tag over the full dnf.
  AttrCatalog catalog;
  auto fs = FlexibleScheme::Parse(&catalog, "<1,2,{A,B}>");
  ASSERT_TRUE(fs.ok());
  auto ads = SynthesizeArtificialAds(&catalog, fs.value(), "top");
  ASSERT_TRUE(ads.ok()) << ads.status();
  ASSERT_EQ(ads.value().regions.size(), 1u);
  EXPECT_EQ(ads.value().regions[0].combinations.size(), 3u);  // {A},{B},{AB}
  // Augmented dnf = 3 (each original combo + the tag).
  EXPECT_EQ(ads.value().augmented_scheme.DnfCount(), 3u);
  // Every original combination completes and validates.
  auto dnf = fs.value().Dnf();
  ASSERT_TRUE(dnf.ok());
  for (const AttrSet& combo : dnf.value()) {
    Tuple t;
    for (AttrId a : combo) t.Set(a, Value::Int(1));
    auto tagged = CompleteWithTags(ads.value(), t);
    ASSERT_TRUE(tagged.ok());
    EXPECT_TRUE(ads.value().augmented_scheme.Admits(tagged.value().attrs()));
  }
}

TEST(ArtificialAdsTest, CapOnCombinationExplosion) {
  AttrCatalog catalog;
  std::vector<FlexibleScheme> leaves;
  for (int i = 0; i < 20; ++i) {
    leaves.push_back(FlexibleScheme::Attr(catalog.Intern(StrCat("L", i))));
  }
  auto fs = FlexibleScheme::Group(1, 20, std::move(leaves));
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ(SynthesizeArtificialAds(&catalog, fs.value(), "big")
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST(ArtificialAdsTest, AugmentedRelationIsFullyTypeCheckable) {
  // The synthesized EADs make the augmented relation as strongly typed as a
  // hand-written one: wrong tag values are caught.
  AttrCatalog catalog;
  auto fs = MakeExample1Scheme(&catalog);
  ASSERT_TRUE(fs.ok());
  auto ads = SynthesizeArtificialAds(&catalog, fs.value(), "ex1_");
  ASSERT_TRUE(ads.ok());
  TypeChecker checker(&catalog, ads.value().augmented_scheme,
                      ads.value().eads(), ads.value().tag_domains);

  Tuple t;
  for (const char* name : {"A", "B", "C", "E"}) {
    t.Set(catalog.Intern(name), Value::Int(1));
  }
  auto tagged = CompleteWithTags(ads.value(), t);
  ASSERT_TRUE(tagged.ok());
  EXPECT_TRUE(checker.Check(tagged.value()).ok());

  // Lie about the first region's tag: claim the D-combination while C is
  // present.
  Tuple lying = tagged.value();
  lying.Set(ads.value().regions[0].tag, Value::Int(1));
  EXPECT_FALSE(checker.Check(lying).ok());
  // An out-of-domain tag value is caught by the domain check.
  Tuple outlier = tagged.value();
  outlier.Set(ads.value().regions[0].tag, Value::Int(99));
  EXPECT_FALSE(checker.CheckDomains(outlier).ok());
}

// Property sweep: for random schemes, completion of every dnf member
// validates against the augmented scheme + EADs, and stripping inverts.
class ArtificialAdsSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArtificialAdsSweep, RoundTripOnRandomSchemes) {
  AttrCatalog catalog;
  Rng rng(GetParam());
  FlexibleScheme fs = RandomScheme(&catalog, &rng, 3, 4,
                                   StrCat("s", GetParam()));
  auto dnf = fs.Dnf(512);
  if (!dnf.ok()) return;  // too large for this sweep — covered by the cap test
  auto ads = SynthesizeArtificialAds(&catalog, fs, "t", 512);
  ASSERT_TRUE(ads.ok()) << ads.status();
  for (const AttrSet& combo : dnf.value()) {
    Tuple t;
    for (AttrId a : combo) t.Set(a, Value::Int(1));
    auto tagged = CompleteWithTags(ads.value(), t);
    ASSERT_TRUE(tagged.ok()) << tagged.status();
    EXPECT_TRUE(ads.value().augmented_scheme.Admits(tagged.value().attrs()))
        << "augmented scheme rejects tagged form of "
        << combo.ToString(catalog);
    for (const ExplicitAD& ead : ads.value().eads()) {
      EXPECT_TRUE(ead.Satisfies({tagged.value()}));
    }
    EXPECT_EQ(StripTags(ads.value(), tagged.value()), t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArtificialAdsSweep,
                         ::testing::Range<uint64_t>(50, 75));

}  // namespace
}  // namespace flexrel
