#include "ermodel/er_model.h"

#include <gtest/gtest.h>

#include "core/type_check.h"

namespace flexrel {
namespace {

class ErMappingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sex_ = catalog_.Intern("sex");
    marital_ = catalog_.Intern("marital-status");
    name_ = catalog_.Intern("name");
    maiden_ = catalog_.Intern("maiden-name");

    entity_.name = "person";
    entity_.attrs = {
        {name_, Domain::Any(ValueType::kString)},
        {sex_, Domain::Enumerated({Value::Str("f"), Value::Str("m")}).value()},
        {marital_, Domain::Enumerated({Value::Str("single"),
                                       Value::Str("married")})
                       .value()},
    };

    // The paper's second value-based example: sex and marital-status
    // determine the existence of maiden-name.
    ErSpecialization spec;
    spec.discriminators = AttrSet{sex_, marital_};
    ErSubclass married_woman;
    married_woman.name = "married-woman";
    Tuple fm;
    fm.Set(sex_, Value::Str("f"));
    fm.Set(marital_, Value::Str("married"));
    married_woman.defining_values =
        ConditionSet::Make(spec.discriminators, {fm}).value();
    married_woman.specific_attrs = {{maiden_, Domain::Any(ValueType::kString)}};
    spec.subclasses.push_back(std::move(married_woman));
    entity_.specializations.push_back(std::move(spec));
  }

  AttrCatalog catalog_;
  AttrId sex_, marital_, name_, maiden_;
  ErEntity entity_;
};

TEST_F(ErMappingTest, MapEntityBuildsSchemeAndEad) {
  auto mapped = MapEntity(entity_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  ASSERT_EQ(mapped.value().eads.size(), 1u);
  const ExplicitAD& ead = mapped.value().eads[0];
  EXPECT_EQ(ead.determinant(), (AttrSet{sex_, marital_}));
  EXPECT_EQ(ead.determined(), AttrSet{maiden_});

  // The scheme admits both shapes.
  const FlexibleScheme& fs = mapped.value().scheme;
  EXPECT_TRUE(fs.Admits(AttrSet{name_, sex_, marital_}));
  EXPECT_TRUE(fs.Admits(AttrSet{name_, sex_, marital_, maiden_}));
  EXPECT_FALSE(fs.Admits(AttrSet{name_, maiden_, sex_, marital_, 999}));
}

TEST_F(ErMappingTest, MappedEadTypeChecksCorrectly) {
  auto mapped = MapEntity(entity_);
  ASSERT_TRUE(mapped.ok());
  TypeChecker checker(&catalog_, mapped.value().scheme, mapped.value().eads,
                      mapped.value().domains);
  Tuple married_woman;
  married_woman.Set(name_, Value::Str("Ada"));
  married_woman.Set(sex_, Value::Str("f"));
  married_woman.Set(marital_, Value::Str("married"));
  married_woman.Set(maiden_, Value::Str("Byron"));
  EXPECT_TRUE(checker.Check(married_woman).ok());

  // A married man with a maiden name violates the EAD.
  Tuple married_man = married_woman;
  married_man.Set(sex_, Value::Str("m"));
  EXPECT_FALSE(checker.Check(married_man).ok());

  // A married woman *without* a maiden name violates it too.
  Tuple incomplete;
  incomplete.Set(name_, Value::Str("Eva"));
  incomplete.Set(sex_, Value::Str("f"));
  incomplete.Set(marital_, Value::Str("married"));
  EXPECT_FALSE(checker.Check(incomplete).ok());
}

TEST_F(ErMappingTest, ClassificationPartialDisjoint) {
  auto mapped = MapEntity(entity_);
  ASSERT_TRUE(mapped.ok());
  auto cls = ClassifySpecialization(mapped.value().eads[0],
                                    mapped.value().domains);
  ASSERT_TRUE(cls.ok()) << cls.status();
  EXPECT_TRUE(cls.value().disjoint);  // single subclass: trivially disjoint
  EXPECT_FALSE(cls.value().total);    // 3 of 4 (sex × marital) combos uncovered
}

TEST_F(ErMappingTest, TotalSpecializationClassified) {
  // Cover all four combinations to make it total.
  ErEntity entity = entity_;
  ErSpecialization& spec = entity.specializations[0];
  ErSubclass others;
  others.name = "others";
  std::vector<Tuple> rest;
  for (const char* s : {"f", "m"}) {
    for (const char* m : {"single", "married"}) {
      if (std::string(s) == "f" && std::string(m) == "married") continue;
      Tuple t;
      t.Set(sex_, Value::Str(s));
      t.Set(marital_, Value::Str(m));
      rest.push_back(std::move(t));
    }
  }
  others.defining_values =
      ConditionSet::Make(spec.discriminators, rest).value();
  spec.subclasses.push_back(std::move(others));

  auto mapped = MapEntity(entity);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  auto cls = ClassifySpecialization(mapped.value().eads[0],
                                    mapped.value().domains);
  ASSERT_TRUE(cls.ok());
  EXPECT_TRUE(cls.value().total);
}

TEST_F(ErMappingTest, RoundTripSpecializationFromEad) {
  auto mapped = MapEntity(entity_);
  ASSERT_TRUE(mapped.ok());
  ErSpecialization recovered = SpecializationFromEad(
      mapped.value().eads[0], mapped.value().domains);
  EXPECT_EQ(recovered.discriminators, (AttrSet{sex_, marital_}));
  ASSERT_EQ(recovered.subclasses.size(), 1u);
  EXPECT_EQ(recovered.subclasses[0].specific_attrs.size(), 1u);
  EXPECT_EQ(recovered.subclasses[0].specific_attrs[0].first, maiden_);
  // The defining values survive exactly.
  EXPECT_EQ(recovered.subclasses[0].defining_values.values(),
            entity_.specializations[0].subclasses[0].defining_values.values());
}

TEST_F(ErMappingTest, MapEntityValidatesDiscriminators) {
  ErEntity bad = entity_;
  bad.specializations[0].discriminators = AttrSet{9999};
  EXPECT_FALSE(MapEntity(bad).ok());
}

TEST_F(ErMappingTest, MultipleSpecializationsCompose) {
  // Add a second specialization on marital-status alone.
  ErEntity entity = entity_;
  ErSpecialization spec2;
  spec2.discriminators = AttrSet{marital_};
  ErSubclass married;
  married.name = "married";
  married.defining_values =
      ConditionSet::Single(marital_, Value::Str("married"));
  AttrId spouse = catalog_.Intern("spouse");
  married.specific_attrs = {{spouse, Domain::Any(ValueType::kString)}};
  spec2.subclasses.push_back(std::move(married));
  entity.specializations.push_back(std::move(spec2));

  auto mapped = MapEntity(entity);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(mapped.value().eads.size(), 2u);

  TypeChecker checker(&catalog_, mapped.value().scheme, mapped.value().eads,
                      mapped.value().domains);
  Tuple t;
  t.Set(name_, Value::Str("Ada"));
  t.Set(sex_, Value::Str("f"));
  t.Set(marital_, Value::Str("married"));
  t.Set(maiden_, Value::Str("Byron"));
  t.Set(spouse, Value::Str("William"));
  EXPECT_TRUE(checker.Check(t).ok());
  // Dropping spouse violates the second EAD only.
  t.Erase(spouse);
  EXPECT_FALSE(checker.Check(t).ok());
}

}  // namespace
}  // namespace flexrel
