// Mutation soak for incremental PLI maintenance (PliCache::OnInsert /
// OnUpdate, Pli::ApplyInsert / ApplyErase, the value-index patch
// primitives).
//
// The contract under test: after ANY interleaving of Insert /
// InsertUnchecked / Update with Get / IndexFor queries, every cached
// partition and value index is structurally equal to a from-scratch rebuild
// over the mutated instance — clusters (canonical form, so Pli::operator==
// is exact), defined_rows, grouped_rows and NumDistinct all agree — and the
// incremental mode is observationally identical to the
// PliCacheOptions::incremental = false fallback, which drops the cache
// wholesale on every mutation and therefore *is* the from-scratch oracle.
//
// Randomized tests take their seed from the FLEXREL_TEST_SEED environment
// variable when set (CI's seed-diversity step passes the run id) and print
// it, so every failure is replayable from the log.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/pli_cache.h"
#include "engine_test_util.h"
#include "telemetry/telemetry.h"
#include "test_seed.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

using testutil::ApplyRandomEmployeeMutation;
using testutil::RandomSoakTuple;
using testutil::RandomSoakValue;
using testutil::SoakEmployeeConfig;

uint64_t SoakSeed(uint64_t salt) {
  return TestSeed(0xF1E37A11DEADBEEFull, salt, "soak");
}

// ---------------------------------------------------------------------------
// Pli patch primitives: the cluster transitions, pinned one by one.
// ---------------------------------------------------------------------------

std::vector<Tuple> RowsWithValues(AttrId attr,
                                  const std::vector<int64_t>& values) {
  std::vector<Tuple> rows;
  for (int64_t v : values) {
    Tuple t;
    t.Set(attr, Value::Int(v));
    rows.push_back(std::move(t));
  }
  return rows;
}

TEST(PliPatchTest, InsertSecondCarrierUnstripsTheSingleton) {
  const AttrId a = 3;
  std::vector<Tuple> rows = RowsWithValues(a, {7, 8, 7});
  Pli pli = Pli::Build(rows, a);  // clusters: {0,2}; row 1 stripped
  ASSERT_EQ(pli.num_clusters(), 1u);

  // Row 3 arrives with value 8: row 1 must be un-stripped into {1,3}.
  Tuple t;
  t.Set(a, Value::Int(8));
  rows.push_back(t);
  pli.SetNumRows(rows.size());
  Pli::Cluster partners = {1};
  ASSERT_TRUE(pli.ApplyInsert(3, partners, /*includes_row=*/false));
  EXPECT_EQ(pli, Pli::Build(rows, a));
  EXPECT_EQ(pli.defined_rows(), 4u);
  EXPECT_EQ(pli.NumDistinct(), 2u);
}

TEST(PliPatchTest, EraseDownToOneCarrierDissolvesTheCluster) {
  const AttrId a = 1;
  std::vector<Tuple> rows = RowsWithValues(a, {5, 5, 9, 9});
  Pli pli = Pli::Build(rows, a);
  ASSERT_EQ(pli.num_clusters(), 2u);

  // Row 0 leaves value 5 (update away): {0,1} dissolves, row 1 re-strips.
  Pli::Cluster partners = {1};
  ASSERT_TRUE(pli.ApplyErase(0, partners, /*includes_row=*/false));
  rows[0].Set(a, Value::Int(1234));  // value 5 now carried by row 1 alone
  Pli rebuilt = Pli::Build(rows, a);
  // The erase alone models only the departure; defined_rows drops by one.
  EXPECT_EQ(pli.num_clusters(), 1u);
  EXPECT_EQ(pli.clusters()[0], (Pli::Cluster{2, 3}));
  EXPECT_EQ(pli.defined_rows(), 3u);
  // Completing the move (insert under the new value) matches the rebuild.
  ASSERT_TRUE(pli.ApplyInsert(0, Pli::Cluster{}, /*includes_row=*/false));
  EXPECT_EQ(pli, rebuilt);
  EXPECT_EQ(pli.defined_rows(), rebuilt.defined_rows());
}

TEST(PliPatchTest, FrontRowChangesKeepCanonicalClusterOrder) {
  const AttrId a = 0;
  // Clusters {0,3} (v=1) and {1,2} (v=2): canonical order 0 < 1.
  std::vector<Tuple> rows = RowsWithValues(a, {1, 2, 2, 1});
  Pli pli = Pli::Build(rows, a);
  ASSERT_EQ(pli.clusters().size(), 2u);

  // Row 0 leaves cluster {0,3}: the remnant {3} dissolves; then row 0
  // rejoins value 2's cluster {1,2} as its NEW front — the cluster must
  // move to the first canonical slot.
  ASSERT_TRUE(pli.ApplyErase(0, Pli::Cluster{3}, false));
  ASSERT_TRUE(pli.ApplyInsert(0, Pli::Cluster{1, 2}, false));
  rows[0].Set(a, Value::Int(2));
  EXPECT_EQ(pli, Pli::Build(rows, a));
  EXPECT_EQ(pli.clusters()[0], (Pli::Cluster{0, 1, 2}));
}

TEST(PliPatchTest, InconsistentArgumentsAreRejectedNotApplied) {
  const AttrId a = 2;
  std::vector<Tuple> rows = RowsWithValues(a, {4, 4, 6});
  Pli pli = Pli::Build(rows, a);
  const Pli before = pli;
  // Claiming row 2 joins a two-row cluster fronted by row 1 is inconsistent
  // (row 1's cluster is fronted by row 0): the patch must refuse...
  EXPECT_FALSE(pli.ApplyInsert(2, Pli::Cluster{1, 0}, false));
  // ...and refusal must be a true no-op, counters included.
  EXPECT_EQ(pli, before);
  EXPECT_EQ(pli.defined_rows(), before.defined_rows());
  EXPECT_EQ(pli.grouped_rows(), before.grouped_rows());
  // Same for an erase naming a partner that is not in the row's cluster.
  EXPECT_FALSE(pli.ApplyErase(0, Pli::Cluster{2}, false));
  EXPECT_EQ(pli, before);
  EXPECT_EQ(pli.defined_rows(), before.defined_rows());
}

TEST(ValueIndexPatchTest, InsertAndUpdateKeepListsAscendingAndExact) {
  PliCache::ValueIndex index;
  ValueIndexApplyInsert(&index, 0, nullptr);  // row without the attribute
  EXPECT_TRUE(index.empty());

  Value v1 = Value::Str("x"), v2 = Value::Str("y");
  ValueIndexApplyInsert(&index, 2, &v1);
  ValueIndexApplyInsert(&index, 5, &v1);
  ValueIndexApplyUpdate(&index, 3, nullptr, &v1);  // attribute added mid-list
  EXPECT_EQ(index.at(v1), (std::vector<Pli::RowId>{2, 3, 5}));

  ValueIndexApplyUpdate(&index, 3, &v1, &v2);  // re-valued
  EXPECT_EQ(index.at(v1), (std::vector<Pli::RowId>{2, 5}));
  EXPECT_EQ(index.at(v2), (std::vector<Pli::RowId>{3}));

  ValueIndexApplyUpdate(&index, 3, &v2, nullptr);  // attribute removed
  EXPECT_EQ(index.count(v2), 0u) << "emptied values must disappear";
}

// ---------------------------------------------------------------------------
// Randomized mutation soak over an untyped (derived) relation.
// ---------------------------------------------------------------------------

struct SoakKeys {
  std::vector<AttrSet> partitions;
  std::vector<AttrId> indexes;
};

// A patched probe must describe the same clustering as a from-scratch
// rebuild's — up to relabeling: incremental maintenance keeps labels
// *stable* (a fresh cluster takes a fresh label), the rebuild's are
// canonical indices, so equivalence is a label bijection with identical
// kNoCluster rows.
void VerifyProbeEquivalent(const PliProbe& patched, const Pli& fresh_pli,
                           const std::string& context) {
  PliProbe fresh = fresh_pli.BuildProbe();
  ASSERT_EQ(patched.labels.size(), fresh.labels.size()) << context;
  std::unordered_map<int32_t, int32_t> patched_to_fresh;
  std::unordered_map<int32_t, int32_t> fresh_to_patched;
  for (size_t i = 0; i < fresh.labels.size(); ++i) {
    const int32_t p = patched.labels[i];
    const int32_t f = fresh.labels[i];
    ASSERT_EQ(p == Pli::kNoCluster, f == Pli::kNoCluster)
        << context << " probe membership of row " << i << " diverged";
    if (f == Pli::kNoCluster) continue;
    ASSERT_GE(p, 0) << context;
    ASSERT_LT(p, patched.label_bound)
        << context << " label of row " << i << " breaks the bound";
    auto [pf, _1] = patched_to_fresh.try_emplace(p, f);
    ASSERT_EQ(pf->second, f)
        << context << " patched label " << p << " spans two clusters";
    auto [fp, _2] = fresh_to_patched.try_emplace(f, p);
    ASSERT_EQ(fp->second, p)
        << context << " cluster " << f << " carries two patched labels";
  }
}

// Asserts every tracked structure of `rel`'s attached cache equals a
// from-scratch rebuild over the current rows — clusters, counters, arena
// invariants, value indexes, and the incrementally patched probes.
void VerifyAgainstRebuild(const FlexibleRelation& rel, const SoakKeys& keys,
                          const std::string& context) {
  std::shared_ptr<PliCache> cache = rel.pli_cache();
  PliCache rebuild(&rel.rows());
  for (const AttrSet& attrs : keys.partitions) {
    std::shared_ptr<const Pli> patched = cache->Get(attrs);
    std::shared_ptr<const Pli> fresh = rebuild.Get(attrs);
    ASSERT_EQ(*patched, *fresh)
        << context << " partition " << attrs.ToString() << " diverged";
    EXPECT_EQ(patched->defined_rows(), fresh->defined_rows())
        << context << " defined_rows of " << attrs.ToString();
    EXPECT_EQ(patched->grouped_rows(), fresh->grouped_rows())
        << context << " grouped_rows of " << attrs.ToString();
    EXPECT_EQ(patched->NumDistinct(), fresh->NumDistinct())
        << context << " NumDistinct of " << attrs.ToString();
    std::string err;
    ASSERT_TRUE(patched->CheckInvariants(&err))
        << context << " partition " << attrs.ToString() << ": " << err;
    // Single-attribute partitions carry an incrementally maintained probe;
    // ProbeFor both exercises the patch path (the memo persists across
    // flushes from the first call on) and must match a rebuild.
    if (attrs.size() == 1) {
      std::shared_ptr<const PliProbe> probe =
          cache->ProbeFor(attrs.ids().front());
      ASSERT_NO_FATAL_FAILURE(VerifyProbeEquivalent(
          *probe, *fresh,
          StrCat(context, " probe of ", attrs.ToString())));
    }
  }
  for (AttrId attr : keys.indexes) {
    ASSERT_EQ(*cache->IndexFor(attr), *rebuild.IndexFor(attr))
        << context << " value index of attr " << attr << " diverged";
  }
}

TEST(EngineIncrementalSoak, DerivedRelationPatchesMatchRebuilds) {
  Rng rng(SoakSeed(1));
  AttrCatalog catalog;
  std::vector<AttrId> attrs;
  for (int i = 0; i < 6; ++i) attrs.push_back(catalog.Intern(StrCat("a", i)));

  FlexibleRelation rel = FlexibleRelation::Derived("soak", DependencySet());
  for (int i = 0; i < 60; ++i) rel.InsertUnchecked(RandomSoakTuple(attrs, &rng));

  // Warm the cache: singles, pairs, a triple, the ∅-partition, and indexes.
  SoakKeys keys;
  for (AttrId a : attrs) keys.partitions.push_back(AttrSet::Of(a));
  keys.partitions.push_back(AttrSet{attrs[0], attrs[1]});
  keys.partitions.push_back(AttrSet{attrs[1], attrs[2]});
  keys.partitions.push_back(AttrSet{attrs[0], attrs[2], attrs[3]});
  keys.partitions.push_back(AttrSet());
  keys.indexes = {attrs[0], attrs[1], attrs[2], attrs[3]};
  std::shared_ptr<PliCache> cache = rel.pli_cache();
  for (const AttrSet& k : keys.partitions) (void)cache->Get(k);
  for (AttrId a : keys.indexes) (void)cache->IndexFor(a);

  const int kOps = 300;
  for (int op = 0; op < kOps; ++op) {
    double dice = rng.UniformDouble();
    std::string what;
    if (dice < 0.40) {
      rel.InsertUnchecked(RandomSoakTuple(attrs, &rng));
      what = "insert-unchecked";
    } else if (dice < 0.55) {
      // Checked insert: duplicates bounce off set semantics — both the
      // accepted and the rejected path must leave the cache coherent.
      Status s = rel.Insert(RandomSoakTuple(attrs, &rng));
      what = StrCat("insert(", s.ok() ? "ok" : "dup", ")");
    } else {
      size_t row = rng.Index(rel.size());
      AttrId attr = attrs[rng.Index(attrs.size())];
      auto delta = rel.Update(row, attr, RandomSoakValue(&rng));
      ASSERT_TRUE(delta.ok()) << delta.status();
      what = StrCat("update(row=", row, ",attr=", attr, ")");
    }
    // Grow the tracked key set mid-soak: new partitions assemble out of
    // *patched* bases and join the checked set from then on.
    if (op % 40 == 17) {
      AttrSet fresh_key{attrs[rng.Index(attrs.size())],
                        attrs[rng.Index(attrs.size())]};
      (void)cache->Get(fresh_key);
      keys.partitions.push_back(fresh_key);
    }
    ASSERT_NO_FATAL_FAILURE(VerifyAgainstRebuild(
        rel, keys, StrCat("op#", op, " [", what, "]")));
  }
  // The soak must have exercised the patch path, not silently rebuilt.
  EXPECT_GT(cache->Stats().patches, 0u);
  EXPECT_EQ(cache.get(), rel.pli_cache().get())
      << "incremental mode must keep the attached cache alive";
}

// ---------------------------------------------------------------------------
// The patch-vs-rebuild crossover: oversized seed clusters drop the entry.
// ---------------------------------------------------------------------------

TEST(EngineIncrementalSoak, OversizedSeedClustersFallBackToLazyRebuild) {
  AttrCatalog catalog;
  AttrId a = catalog.Intern("a");
  AttrId b = catalog.Intern("b");
  FlexibleRelation rel = FlexibleRelation::Derived("fat", DependencySet());
  // Constant values on both attributes: every seed cluster spans the whole
  // instance, so with patch_scan_limit = 0 any multi-attribute patch
  // exceeds max(limit, rows/2) and must take the drop-and-rebuild path.
  PliCacheOptions options;
  options.patch_scan_limit = 0;
  rel.SetPliCacheOptions(options);
  for (int i = 0; i < 12; ++i) {
    Tuple t;
    t.Set(a, Value::Int(1));
    t.Set(b, Value::Int(2));
    t.Set(catalog.Intern("uniq"), Value::Int(i));  // keeps tuples distinct
    rel.InsertUnchecked(t);
  }
  std::shared_ptr<PliCache> cache = rel.pli_cache();
  (void)cache->Get(AttrSet{a, b});
  ASSERT_EQ(cache->Stats().patch_rebuilds, 0u);

  Tuple t;
  t.Set(a, Value::Int(1));
  t.Set(b, Value::Int(2));
  t.Set(catalog.Intern("uniq"), Value::Int(99));
  rel.InsertUnchecked(t);

  // The lazily re-intersected entry (built from the *patched* bases) must
  // equal a from-scratch rebuild, and patching must keep working after it.
  // The Get is also what flushes the buffered delta (deltas are deferred to
  // the next read), so the patch_rebuilds assertion comes after it.
  PliCache fresh(&rel.rows());
  EXPECT_EQ(*cache->Get(AttrSet{a, b}), *fresh.Get(AttrSet{a, b}));
  EXPECT_GT(cache->Stats().patch_rebuilds, 0u)
      << "the oversized seed cluster must have dropped the pair entry";
  ASSERT_TRUE(rel.Update(0, b, Value::Int(7)).ok());
  PliCache fresh2(&rel.rows());
  EXPECT_EQ(*cache->Get(AttrSet{a, b}), *fresh2.Get(AttrSet{a, b}));
  EXPECT_EQ(*cache->Get(AttrSet::Of(b)), *fresh2.Get(AttrSet::Of(b)));
}

// ---------------------------------------------------------------------------
// Probe bloat hysteresis: sparse-but-fresh memos survive strip churn.
// ---------------------------------------------------------------------------

TEST(EngineIncrementalSoak, ProbeBloatCheckHasHysteresisAcrossStripChurn) {
  AttrCatalog catalog;
  const AttrId a = catalog.Intern("h");
  const AttrId uniq = catalog.Intern("uniq");
  FlexibleRelation rel = FlexibleRelation::Derived("hyst", DependencySet());
  constexpr int kClusters = 120;
  for (int i = 0; i < kClusters; ++i) {
    for (int j = 0; j < 2; ++j) {
      Tuple t;
      t.Set(a, Value::Int(i));
      t.Set(uniq, Value::Int(i * 2 + j));
      rel.InsertUnchecked(t);
    }
  }
  std::shared_ptr<PliCache> cache = rel.pli_cache();
  (void)cache->IndexFor(a);
  ASSERT_EQ(cache->Get(AttrSet::Of(a))->num_clusters(),
            static_cast<size_t>(kClusters));
  (void)cache->ProbeFor(a);  // bound = baseline = 120
  const size_t rebuilds0 = cache->Stats().probe_rebuilds;

  constexpr int kChurn = 110;
  auto strip = [&] {  // move one carrier of each cluster to a unique value
    for (int i = 0; i < kChurn; ++i) {
      ASSERT_TRUE(rel.Update(2 * i, a, Value::Int(10000 + i)).ok());
    }
  };
  auto unstrip = [&] {  // move it back: re-forms the cluster, fresh label
    for (int i = 0; i < kChurn; ++i) {
      ASSERT_TRUE(rel.Update(2 * i, a, Value::Int(i)).ok());
    }
  };

  // Mass strip: clusters 120 -> 10 while the label bound stays 120. The
  // pre-hysteresis check (bound > 2*clusters + 64 alone) tripped here the
  // moment clusters fell below 28 — and again on every later churn cycle,
  // an O(rows) probe rebuild each — even though the bound never grew; the
  // probe is merely sparse, clusters having dissolved under it.
  ASSERT_NO_FATAL_FAILURE(strip());
  EXPECT_EQ(cache->Stats().probe_rebuilds, rebuilds0)
      << "a merely-sparse probe was dropped right after its dense build";
  ASSERT_NO_FATAL_FAILURE(unstrip());  // 110 fresh labels: bound = 230
  ASSERT_NO_FATAL_FAILURE(strip());    // sparse again; 230 <= 2*120 + 64
  EXPECT_EQ(cache->Stats().probe_rebuilds, rebuilds0)
      << "re-dropped before the bound bloated from the rebuild baseline";
  // Only genuine label growth re-trips the check: the second un-strip
  // pushes the bound past 2*baseline + 64 = 304 and the memo retires for
  // one dense rebuild.
  ASSERT_NO_FATAL_FAILURE(unstrip());
  EXPECT_EQ(cache->Stats().probe_rebuilds, rebuilds0 + 1)
      << "a genuinely bloated bound must still retire the memo";

  std::shared_ptr<const PliProbe> probe = cache->ProbeFor(a);
  Pli fresh = Pli::Build(rel.rows(), a);
  ASSERT_NO_FATAL_FAILURE(VerifyProbeEquivalent(*probe, fresh, "post-churn"));
  EXPECT_EQ(probe->label_bound, probe->label_baseline)
      << "a rebuild must reset the hysteresis baseline";
  EXPECT_EQ(probe->label_bound, static_cast<int32_t>(fresh.num_clusters()));
}

// ---------------------------------------------------------------------------
// The same soak, incremental vs the drop-everything oracle, side by side.
// ---------------------------------------------------------------------------

TEST(EngineIncrementalSoak, IncrementalModeMatchesDropEverythingOracle) {
  Rng rng(SoakSeed(2));
  AttrCatalog catalog;
  std::vector<AttrId> attrs;
  for (int i = 0; i < 5; ++i) attrs.push_back(catalog.Intern(StrCat("b", i)));

  FlexibleRelation incremental =
      FlexibleRelation::Derived("inc", DependencySet());
  FlexibleRelation oracle = FlexibleRelation::Derived("ora", DependencySet());
  PliCacheOptions drop_everything;
  drop_everything.incremental = false;
  oracle.SetPliCacheOptions(drop_everything);

  SoakKeys keys;
  for (AttrId a : attrs) keys.partitions.push_back(AttrSet::Of(a));
  keys.partitions.push_back(AttrSet{attrs[0], attrs[3]});
  keys.partitions.push_back(AttrSet{attrs[1], attrs[2], attrs[4]});
  keys.indexes = {attrs[0], attrs[2], attrs[4]};

  auto touch = [&](FlexibleRelation* rel) {
    std::shared_ptr<PliCache> cache = rel->pli_cache();
    for (const AttrSet& k : keys.partitions) (void)cache->Get(k);
    for (AttrId a : keys.indexes) (void)cache->IndexFor(a);
  };

  for (int op = 0; op < 250; ++op) {
    // Identical mutation on both relations (one rng draw, applied twice).
    if (rng.Bernoulli(0.5) || incremental.empty()) {
      Tuple t = RandomSoakTuple(attrs, &rng);
      incremental.InsertUnchecked(t);
      oracle.InsertUnchecked(std::move(t));
    } else {
      size_t row = rng.Index(incremental.size());
      AttrId attr = attrs[rng.Index(attrs.size())];
      Value v = RandomSoakValue(&rng);
      ASSERT_TRUE(incremental.Update(row, attr, v).ok());
      ASSERT_TRUE(oracle.Update(row, attr, v).ok());
    }
    touch(&incremental);  // queries interleaved with mutations on both modes
    touch(&oracle);
    if (op % 10 == 9) {
      std::shared_ptr<PliCache> lhs = incremental.pli_cache();
      std::shared_ptr<PliCache> rhs = oracle.pli_cache();
      for (const AttrSet& k : keys.partitions) {
        ASSERT_EQ(*lhs->Get(k), *rhs->Get(k))
            << "op#" << op << " partition " << k.ToString();
        ASSERT_EQ(lhs->Get(k)->defined_rows(), rhs->Get(k)->defined_rows())
            << "op#" << op << " partition " << k.ToString();
      }
      for (AttrId a : keys.indexes) {
        ASSERT_EQ(*lhs->IndexFor(a), *rhs->IndexFor(a)) << "op#" << op;
      }
    }
  }
  // The two modes must have taken the two *different* maintenance paths.
  EXPECT_GT(incremental.pli_cache()->Stats().patches, 0u);
  EXPECT_EQ(oracle.pli_cache()->Stats().patches, 0u);
}

// ---------------------------------------------------------------------------
// Typed soak: footnote-3 type changes arrive as multi-attribute deltas.
// ---------------------------------------------------------------------------

TEST(EngineIncrementalSoak, TypedUpdatesWithTypeChangesPatchCorrectly) {
  uint64_t seed = SoakSeed(3);
  auto w = MakeEmployeeWorkload(SoakEmployeeConfig(seed, 80, 3));
  ASSERT_TRUE(w.ok()) << w.status();
  EmployeeWorkload& workload = *w.value();
  FlexibleRelation& rel = workload.relation;
  Rng rng(seed ^ 0xABCDEF);

  SoakKeys keys;
  keys.partitions.push_back(AttrSet::Of(workload.id_attr));
  keys.partitions.push_back(AttrSet::Of(workload.jobtype_attr));
  for (AttrId a : workload.common_attrs) {
    keys.partitions.push_back(AttrSet::Of(a));
  }
  AttrId first_variant_attr = 0;
  for (const auto& variant : workload.eads[0].variants()) {
    for (AttrId a : variant.then) {
      keys.partitions.push_back(AttrSet::Of(a));
      keys.partitions.push_back(AttrSet{workload.jobtype_attr, a});
      if (first_variant_attr == 0) first_variant_attr = a;
    }
  }
  keys.indexes = {workload.id_attr, workload.jobtype_attr,
                  first_variant_attr};
  std::shared_ptr<PliCache> cache = rel.pli_cache();
  for (const AttrSet& k : keys.partitions) (void)cache->Get(k);
  for (AttrId a : keys.indexes) (void)cache->IndexFor(a);

  int type_changes = 0;
  for (int op = 0; op < 150; ++op) {
    // A checked insert or a jobtype flip (the footnote-3 type change whose
    // delta is a genuine multi-attribute presence change for OnUpdate).
    auto outcome = ApplyRandomEmployeeMutation(&workload, &rng);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status;
    if (outcome.type_changed) ++type_changes;
    if (op % 5 == 4) {
      ASSERT_NO_FATAL_FAILURE(
          VerifyAgainstRebuild(rel, keys, StrCat("typed op#", op)));
    }
  }
  ASSERT_NO_FATAL_FAILURE(VerifyAgainstRebuild(rel, keys, "typed final"));
  EXPECT_GT(type_changes, 0) << "soak never exercised a footnote-3 change";
  EXPECT_GT(cache->Stats().patches, 0u);
}

// ---------------------------------------------------------------------------
// Group-apply primitives: the batched splice, pinned against rebuilds.
// ---------------------------------------------------------------------------

TEST(PliPatchTest, ApplyBatchSplicesLikeARebuild) {
  const AttrId a = 4;
  std::vector<Tuple> rows = RowsWithValues(a, {1, 1, 2, 2, 3});
  Pli pli = Pli::Build(rows, a);  // clusters {0,1}, {2,3}; row 4 stripped

  // One burst: row 0 re-valued 1 -> 3 (dissolves {0,1}, un-strips row 4
  // into {0,4}) and row 2 re-valued 2 -> 1 (dissolves {2,3}, forms {1,2}).
  PliCache::ValueIndex index;
  for (size_t i = 0; i < rows.size(); ++i) {
    ValueIndexApplyInsert(&index, static_cast<Pli::RowId>(i),
                          rows[i].Get(a));
  }
  Value one = Value::Int(1), two = Value::Int(2), three = Value::Int(3);
  std::vector<ValueIndexDelta> deltas = {{0, &one, &three}, {2, &two, &one}};
  std::vector<Pli::ClusterPatch> patches =
      ValueIndexApplyUpdateBatch(&index, deltas);
  ASSERT_FALSE(patches.empty());
  ASSERT_TRUE(pli.ApplyBatch(std::move(patches), /*defined_delta=*/0));

  rows[0].Set(a, Value::Int(3));
  rows[2].Set(a, Value::Int(1));
  EXPECT_EQ(pli, Pli::Build(rows, a));
  EXPECT_EQ(pli.defined_rows(), 5u);
  // The spliced index must equal a from-scratch build too.
  PliCache::ValueIndex fresh;
  for (size_t i = 0; i < rows.size(); ++i) {
    ValueIndexApplyInsert(&fresh, static_cast<Pli::RowId>(i), rows[i].Get(a));
  }
  EXPECT_EQ(index, fresh);
}

TEST(PliPatchTest, ApplyBatchHandlesInsertBursts) {
  const AttrId a = 7;
  std::vector<Tuple> rows = RowsWithValues(a, {5, 6, 5});
  Pli pli = Pli::Build(rows, a);
  PliCache::ValueIndex index;
  for (size_t i = 0; i < rows.size(); ++i) {
    ValueIndexApplyInsert(&index, static_cast<Pli::RowId>(i), rows[i].Get(a));
  }

  // Rows 3 and 4 appended: one joins value 6 (un-strips row 1), one a new
  // value 9 (stays stripped).
  for (int64_t v : {6, 9}) {
    Tuple t;
    t.Set(a, Value::Int(v));
    rows.push_back(std::move(t));
  }
  std::vector<std::pair<Pli::RowId, const Value*>> inserts = {
      {3, rows[3].Get(a)}, {4, rows[4].Get(a)}};
  std::vector<Pli::ClusterPatch> patches =
      ValueIndexApplyInsertBatch(&index, inserts);
  pli.SetNumRows(rows.size());
  ASSERT_TRUE(pli.ApplyBatch(std::move(patches), /*defined_delta=*/2));
  EXPECT_EQ(pli, Pli::Build(rows, a));
  EXPECT_EQ(pli.defined_rows(), 5u);
  EXPECT_EQ(pli.NumDistinct(), 3u);
}

TEST(PliPatchTest, ViewBasedBatchSpliceMatchesTheOwningOne) {
  // The zero-copy capture (ValueIndexApplyUpdateBatchViews +
  // ApplyBatch(ClusterPatchView)) must leave index and partition in exactly
  // the state the owning-patch pipeline produces — in both storage modes.
  const AttrId a = 6;
  for (Pli::Storage storage :
       {Pli::Storage::kArena, Pli::Storage::kVectors}) {
    std::vector<Tuple> rows = RowsWithValues(a, {1, 1, 2, 2, 3, 2, 1});
    Pli pli = Pli::Build(rows, a, storage);
    PliCache::ValueIndex index;
    for (size_t i = 0; i < rows.size(); ++i) {
      ValueIndexApplyInsert(&index, static_cast<Pli::RowId>(i),
                            rows[i].Get(a));
    }
    // Burst: row 0 1->3 (un-strips row 4), row 3 2->1, row 5 2->9 (fresh
    // stripped value), so clusters dissolve, shrink, grow, and appear.
    Value one = Value::Int(1), two = Value::Int(2), three = Value::Int(3),
          nine = Value::Int(9);
    std::vector<ValueIndexDelta> deltas = {
        {0, &one, &three}, {3, &two, &one}, {5, &two, &nine}};
    std::vector<Pli::ClusterPatchView> views =
        ValueIndexApplyUpdateBatchViews(&index, deltas);
    ASSERT_FALSE(views.empty());
    ASSERT_TRUE(pli.ApplyBatch(std::move(views), /*defined_delta=*/0));

    rows[0].Set(a, Value::Int(3));
    rows[3].Set(a, Value::Int(1));
    rows[5].Set(a, Value::Int(9));
    EXPECT_EQ(pli, Pli::Build(rows, a));
    std::string err;
    EXPECT_TRUE(pli.CheckInvariants(&err)) << err;
    PliCache::ValueIndex fresh;
    for (size_t i = 0; i < rows.size(); ++i) {
      ValueIndexApplyInsert(&fresh, static_cast<Pli::RowId>(i),
                            rows[i].Get(a));
    }
    EXPECT_EQ(index, fresh);
  }
}

TEST(PliPatchTest, ViewBasedBatchRefusesContradictionsAsANoOp) {
  const AttrId a = 2;
  std::vector<Tuple> rows = RowsWithValues(a, {4, 4, 6, 6});
  Pli pli = Pli::Build(rows, a);
  const Pli before = pli;
  const Pli::RowId bogus[] = {0, 1, 2};
  std::vector<Pli::ClusterPatchView> views;
  views.push_back({0, 3, bogus, 3});  // cluster {0,1} is size 2, not 3
  EXPECT_FALSE(pli.ApplyBatch(std::move(views), 0));
  EXPECT_EQ(pli, before);
  EXPECT_EQ(pli.grouped_rows(), before.grouped_rows());
}

TEST(PliPatchTest, ApplyBatchRefusesContradictionsAsANoOp) {
  const AttrId a = 2;
  std::vector<Tuple> rows = RowsWithValues(a, {4, 4, 6, 6});
  Pli pli = Pli::Build(rows, a);
  const Pli before = pli;
  // A patch claiming a three-row cluster fronted by row 0 contradicts the
  // actual {0,1}: the whole batch must refuse without touching anything.
  std::vector<Pli::ClusterPatch> patches;
  patches.push_back(Pli::ClusterPatch{0, 3, {0, 1, 2}});
  EXPECT_FALSE(pli.ApplyBatch(std::move(patches), 0));
  EXPECT_EQ(pli, before);
  EXPECT_EQ(pli.defined_rows(), before.defined_rows());
  EXPECT_EQ(pli.grouped_rows(), before.grouped_rows());
}

// ---------------------------------------------------------------------------
// Transactional batch entry points: semantics and atomicity.
// ---------------------------------------------------------------------------

TEST(BatchMutationTest, UpdatesComposeAndMayTargetBatchInsertedRows) {
  AttrCatalog catalog;
  AttrId a = catalog.Intern("a");
  AttrId b = catalog.Intern("b");
  FlexibleRelation rel = FlexibleRelation::Derived("tx", DependencySet());
  Tuple seed;
  seed.Set(a, Value::Int(1));
  rel.InsertUnchecked(seed);

  // Op order matters: the inserted row is addressable at index size(),
  // and two updates to row 0 compose left to right.
  Tuple fresh;
  fresh.Set(a, Value::Int(2));
  std::vector<FlexibleRelation::Mutation> batch;
  batch.push_back(FlexibleRelation::Mutation::Insert(fresh));
  batch.push_back(FlexibleRelation::Mutation::Update(1, b, Value::Int(10)));
  batch.push_back(FlexibleRelation::Mutation::Update(0, a, Value::Int(3)));
  batch.push_back(FlexibleRelation::Mutation::Update(0, b, Value::Int(4)));
  ASSERT_TRUE(rel.ApplyBatch(std::move(batch)).ok());

  ASSERT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.row(0).Get(a)->as_int(), 3);
  EXPECT_EQ(rel.row(0).Get(b)->as_int(), 4);
  EXPECT_EQ(rel.row(1).Get(a)->as_int(), 2);
  EXPECT_EQ(rel.row(1).Get(b)->as_int(), 10);
}

TEST(BatchMutationTest, DuplicateCheckSurvivesValueEqualTwinsMidBatch) {
  // Mid-batch the staged instance legally holds value-equal twins —
  // updates never duplicate-check. When one twin then moves on to a new
  // value, the staged membership set must retire *that* row's entry, not
  // whichever value-equal entry find() lands on: erasing the wrong twin
  // left the set's survivor pointing at the slot about to be overwritten
  // in place (a live hash key mutating), after which a later duplicate
  // insert slipped through. Which twin find() prefers depends on the
  // stdlib's equal-group ordering, so both orders are exercised: one
  // scenario where the wrong twin is an older pre-existing row, one
  // where it is a newer staged entry.
  AttrCatalog catalog;
  AttrId a = catalog.Intern("a");
  auto seeded = [&](std::initializer_list<int> values) {
    FlexibleRelation rel =
        FlexibleRelation::Derived("twins", DependencySet());
    for (int v : values) {
      Tuple t;
      t.Set(a, Value::Int(v));
      rel.InsertUnchecked(t);
    }
    return rel;
  };
  Tuple nine, two;
  nine.Set(a, Value::Int(9));
  two.Set(a, Value::Int(2));

  // Twin is the pre-existing row 1: row 0 passes through (a:2) — a dup of
  // row 1 — then moves on, and the final insert must still see row 1.
  {
    FlexibleRelation rel = seeded({1, 2});
    std::vector<FlexibleRelation::Mutation> batch;
    batch.push_back(FlexibleRelation::Mutation::Insert(nine));
    batch.push_back(FlexibleRelation::Mutation::Update(0, a, Value::Int(2)));
    batch.push_back(FlexibleRelation::Mutation::Update(0, a, Value::Int(5)));
    batch.push_back(FlexibleRelation::Mutation::Insert(two));
    Status s = rel.ApplyBatch(std::move(batch));
    ASSERT_EQ(s.code(), StatusCode::kAlreadyExists) << s;
    ASSERT_EQ(rel.size(), 2u);
    EXPECT_EQ(rel.row(0).Get(a)->as_int(), 1);
  }
  // Twin is the newer staged overlay of row 0: the batch-inserted row 1
  // passes through (a:2), moves on, and the final insert must still see
  // row 0's staged (a:2).
  {
    FlexibleRelation rel = seeded({1});
    std::vector<FlexibleRelation::Mutation> batch;
    batch.push_back(FlexibleRelation::Mutation::Insert(two));
    batch.push_back(FlexibleRelation::Mutation::Update(0, a, Value::Int(2)));
    batch.push_back(FlexibleRelation::Mutation::Update(1, a, Value::Int(5)));
    batch.push_back(FlexibleRelation::Mutation::Insert(two));
    Status s = rel.ApplyBatch(std::move(batch));
    ASSERT_EQ(s.code(), StatusCode::kAlreadyExists) << s;
    ASSERT_EQ(rel.size(), 1u);
    EXPECT_EQ(rel.row(0).Get(a)->as_int(), 1);
  }
  // The same prefix without the duplicating insert commits cleanly — the
  // erase-by-identity must not spuriously reject valid inserts either.
  {
    FlexibleRelation rel = seeded({1, 2});
    std::vector<FlexibleRelation::Mutation> batch;
    batch.push_back(FlexibleRelation::Mutation::Insert(nine));
    batch.push_back(FlexibleRelation::Mutation::Update(0, a, Value::Int(2)));
    batch.push_back(FlexibleRelation::Mutation::Update(0, a, Value::Int(5)));
    ASSERT_TRUE(rel.ApplyBatch(std::move(batch)).ok());
    ASSERT_EQ(rel.size(), 3u);
    EXPECT_EQ(rel.row(0).Get(a)->as_int(), 5);
  }
}

TEST(BatchMutationTest, FailedBatchLeavesRelationAndCacheUntouched) {
  auto ex = MakeEmployeeWorkload(SoakEmployeeConfig(SoakSeed(7), 60, 3));
  ASSERT_TRUE(ex.ok()) << ex.status();
  EmployeeWorkload& workload = *ex.value();
  FlexibleRelation& rel = workload.relation;
  Rng rng(SoakSeed(7));

  // Warm the cache so a leaky batch would corrupt something observable.
  SoakKeys keys;
  keys.partitions.push_back(AttrSet::Of(workload.id_attr));
  keys.partitions.push_back(AttrSet::Of(workload.jobtype_attr));
  keys.partitions.push_back(
      AttrSet{workload.id_attr, workload.jobtype_attr});
  keys.indexes = {workload.id_attr, workload.jobtype_attr};
  std::shared_ptr<PliCache> cache = rel.pli_cache();
  for (const AttrSet& k : keys.partitions) (void)cache->Get(k);
  for (AttrId a : keys.indexes) (void)cache->IndexFor(a);

  const std::vector<Tuple> rows_before = rel.rows();
  auto expect_untouched = [&](const char* what) {
    ASSERT_EQ(rel.rows(), rows_before) << what << " mutated the relation";
    ASSERT_NO_FATAL_FAILURE(VerifyAgainstRebuild(rel, keys, what));
  };

  // Valid ops followed by an ill-typed insert: all-or-nothing.
  {
    std::vector<FlexibleRelation::Mutation> batch;
    batch.push_back(
        FlexibleRelation::Mutation::Insert(RandomEmployee(workload, &rng)));
    batch.push_back(FlexibleRelation::Mutation::Update(
        0, workload.id_attr, Value::Int(123456)));
    Tuple mistyped = RandomEmployee(workload, &rng);
    mistyped.Erase(workload.jobtype_attr);  // shape violation
    batch.push_back(FlexibleRelation::Mutation::Insert(std::move(mistyped)));
    Status s = rel.ApplyBatch(std::move(batch));
    ASSERT_FALSE(s.ok());
    expect_untouched("ill-typed batch");
  }
  // A duplicate insert *within* the batch trips set semantics.
  {
    Tuple t = RandomEmployee(workload, &rng);
    std::vector<FlexibleRelation::Mutation> batch;
    batch.push_back(FlexibleRelation::Mutation::Insert(t));
    batch.push_back(FlexibleRelation::Mutation::Insert(t));
    Status s = rel.ApplyBatch(std::move(batch));
    ASSERT_EQ(s.code(), StatusCode::kAlreadyExists) << s;
    expect_untouched("duplicate batch");
  }
  // An out-of-range update (even pointing just past the staged inserts).
  {
    std::vector<FlexibleRelation::Mutation> batch;
    batch.push_back(
        FlexibleRelation::Mutation::Insert(RandomEmployee(workload, &rng)));
    batch.push_back(FlexibleRelation::Mutation::Update(
        rel.size() + 1, workload.id_attr, Value::Int(7)));
    Status s = rel.ApplyBatch(std::move(batch));
    ASSERT_EQ(s.code(), StatusCode::kOutOfRange) << s;
    expect_untouched("out-of-range batch");
  }
  // A jobtype flip without fill values for the new variant's attributes.
  {
    std::vector<FlexibleRelation::Mutation> batch;
    size_t row = rng.Index(rel.size());
    int variant = static_cast<int>(rng.Index(workload.jobtype_values.size()));
    batch.push_back(FlexibleRelation::Mutation::Update(
        row, workload.jobtype_attr, workload.jobtype_values[variant]));
    Status s = rel.ApplyBatch(std::move(batch));
    if (!s.ok()) {  // same variant drawn -> no type change -> ok is fine
      ASSERT_EQ(s.code(), StatusCode::kFailedPrecondition) << s;
      expect_untouched("fill-less type change");
    }
  }
  // And after all those refusals, a valid batch still lands.
  ASSERT_TRUE(
      rel.InsertRows({RandomEmployee(workload, &rng)}).ok());
  EXPECT_EQ(rel.size(), rows_before.size() + 1);
}

// ---------------------------------------------------------------------------
// Randomized batch soak: InsertRows/UpdateRows/ApplyBatch bursts of sizes
// 1/8/64/512 interleaved with single-row ops and reads, every cached
// structure checked against from-scratch rebuilds after each round. The
// low drop_threshold makes the 512-row bursts cross the drop-everything
// arm, so all three flush policies are exercised in one soak.
// ---------------------------------------------------------------------------

TEST(EngineIncrementalSoak, BatchBurstsMatchRebuildsAcrossAllPolicies) {
  // The soak doubles as the telemetry accounting check: with the plane on,
  // the engine.pli_cache.* counters must balance exactly at the end —
  // every Get takes exactly one hit-or-miss arm, and every counted flush
  // exactly one per_row/batched/dropped arm.
  telemetry::Enable();
  telemetry::Registry::Global().Reset();
  Rng rng(SoakSeed(5));
  AttrCatalog catalog;
  std::vector<AttrId> attrs;
  for (int i = 0; i < 6; ++i) attrs.push_back(catalog.Intern(StrCat("d", i)));

  FlexibleRelation rel = FlexibleRelation::Derived("burst", DependencySet());
  // Let the 512-bursts hit the drop arm even after coalescing shrinks them
  // (same-row re-draws and value no-ops net out of the flush).
  PliCacheOptions options;
  options.drop_threshold = 128;
  rel.SetPliCacheOptions(options);
  for (int i = 0; i < 300; ++i) {
    rel.InsertUnchecked(RandomSoakTuple(attrs, &rng));
  }

  SoakKeys keys;
  for (AttrId a : attrs) keys.partitions.push_back(AttrSet::Of(a));
  keys.partitions.push_back(AttrSet{attrs[0], attrs[1]});
  keys.partitions.push_back(AttrSet{attrs[1], attrs[2], attrs[3]});
  keys.partitions.push_back(AttrSet());
  keys.indexes = {attrs[0], attrs[2], attrs[5]};
  std::shared_ptr<PliCache> cache = rel.pli_cache();
  auto warm = [&] {
    for (const AttrSet& k : keys.partitions) (void)cache->Get(k);
    for (AttrId a : keys.indexes) (void)cache->IndexFor(a);
  };
  warm();

  auto random_update_burst = [&](size_t burst) {
    std::vector<FlexibleRelation::UpdateSpec> updates;
    updates.reserve(burst);
    for (size_t i = 0; i < burst; ++i) {
      updates.push_back({rng.Index(rel.size()), attrs[rng.Index(attrs.size())],
                         RandomSoakValue(&rng), Tuple()});
    }
    return updates;
  };

  const size_t kBursts[] = {1, 8, 64, 512};
  for (int round = 0; round < 30; ++round) {
    size_t burst = kBursts[rng.Index(4)];
    double dice = rng.UniformDouble();
    std::string what;
    if (dice < 0.25) {
      // Checked bulk insert; random tuples may collide with set semantics,
      // in which case the whole batch must bounce atomically. Insert
      // bursts stay small so the instance keeps its size class.
      size_t n = std::min<size_t>(burst, 8);
      std::vector<Tuple> rows;
      const std::vector<Tuple> before = rel.rows();
      for (size_t i = 0; i < n; ++i) {
        rows.push_back(RandomSoakTuple(attrs, &rng));
      }
      Status s = rel.InsertRows(std::move(rows));
      if (!s.ok()) {
        ASSERT_EQ(s.code(), StatusCode::kAlreadyExists) << s;
        ASSERT_EQ(rel.rows(), before) << "failed InsertRows must be a no-op";
      }
      what = StrCat("insert-rows(", n, s.ok() ? ",ok)" : ",dup)");
    } else if (dice < 0.55) {
      auto deltas = rel.UpdateRows(random_update_burst(burst));
      ASSERT_TRUE(deltas.ok()) << deltas.status();
      what = StrCat("update-rows(", burst, ")");
    } else if (dice < 0.8) {
      // Mixed transactional batch: updates interleaved with a few inserts,
      // some updates aimed at rows the same batch inserts.
      std::vector<FlexibleRelation::Mutation> batch;
      size_t inserted = 0;
      for (size_t i = 0; i < burst; ++i) {
        if (inserted < 4 && rng.Bernoulli(0.1)) {
          batch.push_back(FlexibleRelation::Mutation::Insert(
              RandomSoakTuple(attrs, &rng)));
          ++inserted;
        } else if (inserted > 0 && rng.Bernoulli(0.2)) {
          batch.push_back(FlexibleRelation::Mutation::Update(
              rel.size() + rng.Index(inserted), attrs[rng.Index(attrs.size())],
              RandomSoakValue(&rng)));
        } else {
          batch.push_back(FlexibleRelation::Mutation::Update(
              rng.Index(rel.size()), attrs[rng.Index(attrs.size())],
              RandomSoakValue(&rng)));
        }
      }
      const std::vector<Tuple> before = rel.rows();
      Status s = rel.ApplyBatch(std::move(batch));
      if (!s.ok()) {
        ASSERT_EQ(s.code(), StatusCode::kAlreadyExists) << s;
        ASSERT_EQ(rel.rows(), before) << "failed ApplyBatch must be a no-op";
      }
      what = StrCat("apply-batch(", burst, s.ok() ? ",ok)" : ",dup)");
    } else {
      // Single-row ops between bursts keep the per-row path in the mix.
      size_t row = rng.Index(rel.size());
      auto delta = rel.Update(row, attrs[rng.Index(attrs.size())],
                              RandomSoakValue(&rng));
      ASSERT_TRUE(delta.ok()) << delta.status();
      what = StrCat("single-update(row=", row, ")");
    }
    warm();  // reads flush the buffered burst through the adaptive policy
    ASSERT_NO_FATAL_FAILURE(VerifyAgainstRebuild(
        rel, keys, StrCat("burst round#", round, " [", what, "]")));
  }
  // Deterministic closing bursts so all three flush arms are exercised
  // regardless of the draw sequence above: a single update (per-row), a
  // mid-size burst (batched window), and an oversized one (drop).
  ASSERT_TRUE(rel.UpdateRows(random_update_burst(1)).ok());
  warm();
  ASSERT_NO_FATAL_FAILURE(VerifyAgainstRebuild(rel, keys, "final 1 burst"));
  ASSERT_TRUE(rel.UpdateRows(random_update_burst(48)).ok());
  warm();
  ASSERT_NO_FATAL_FAILURE(VerifyAgainstRebuild(rel, keys, "final 48 burst"));
  ASSERT_TRUE(rel.UpdateRows(random_update_burst(512)).ok());
  warm();
  ASSERT_NO_FATAL_FAILURE(VerifyAgainstRebuild(rel, keys, "final 512 burst"));
  EXPECT_GT(cache->Stats().patches, 0u) << "per-row path never ran";
  EXPECT_GT(cache->Stats().batch_applies, 0u) << "batched path never ran";
  EXPECT_GT(cache->Stats().full_drops, 0u) << "drop-everything path never ran";
  EXPECT_EQ(cache->Stats().pending_deltas, 0u);
  EXPECT_EQ(cache.get(), rel.pli_cache().get())
      << "batched maintenance must keep the attached cache alive";

  // Telemetry accounting invariants over the whole soak (every cache in
  // the test shares the process-global registry, so these hold across the
  // soak cache and the rebuild oracles alike).
  auto& registry = telemetry::Registry::Global();
  const uint64_t lookups =
      registry.CounterValue("engine.pli_cache.lookups");
  const uint64_t hits = registry.CounterValue("engine.pli_cache.hits");
  const uint64_t misses = registry.CounterValue("engine.pli_cache.misses");
  EXPECT_GT(lookups, 0u);
  EXPECT_EQ(hits + misses, lookups);
  const uint64_t flushes =
      registry.CounterValue("engine.pli_cache.flushes");
  const uint64_t per_row =
      registry.CounterValue("engine.pli_cache.flush.per_row");
  const uint64_t batched =
      registry.CounterValue("engine.pli_cache.flush.batched");
  const uint64_t dropped =
      registry.CounterValue("engine.pli_cache.flush.dropped");
  EXPECT_GT(flushes, 0u);
  EXPECT_GT(per_row, 0u);
  EXPECT_GT(batched, 0u);
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(per_row + batched + dropped, flushes);
  telemetry::Disable();
  registry.Reset();
}

// ---------------------------------------------------------------------------
// The adaptive policy against its three pinned references: batch_threshold
// = SIZE_MAX forces the PR 3 per-row path, incremental = false the drop-
// everything oracle, and arena_storage = false runs the same adaptive
// policy over the historical vector-of-vectors clusters — so every flush
// arm is asserted structurally equal arena-vs-reference. One identical
// mutation stream, four relations, every tracked structure equal after
// every burst.
// ---------------------------------------------------------------------------

TEST(EngineIncrementalSoak, AdaptivePolicyMatchesPerRowAndDropOracles) {
  Rng rng(SoakSeed(6));
  AttrCatalog catalog;
  std::vector<AttrId> attrs;
  for (int i = 0; i < 5; ++i) attrs.push_back(catalog.Intern(StrCat("e", i)));

  FlexibleRelation adaptive =
      FlexibleRelation::Derived("adaptive", DependencySet());
  FlexibleRelation reference =
      FlexibleRelation::Derived("reference", DependencySet());
  FlexibleRelation per_row =
      FlexibleRelation::Derived("per-row", DependencySet());
  FlexibleRelation oracle = FlexibleRelation::Derived("ora", DependencySet());
  // A low drop threshold lets the closing 512-burst cross the drop arm on
  // a 150-row instance (rows/2 = 75 would otherwise dominate).
  PliCacheOptions adaptive_options;
  adaptive_options.drop_threshold = 128;
  adaptive.SetPliCacheOptions(adaptive_options);
  PliCacheOptions reference_options = adaptive_options;
  reference_options.arena_storage = false;
  reference.SetPliCacheOptions(reference_options);
  PliCacheOptions pinned;
  pinned.batch_threshold = SIZE_MAX;
  pinned.drop_threshold = SIZE_MAX;
  per_row.SetPliCacheOptions(pinned);
  PliCacheOptions drop_everything;
  drop_everything.incremental = false;
  oracle.SetPliCacheOptions(drop_everything);
  FlexibleRelation* rels[] = {&adaptive, &reference, &per_row, &oracle};

  SoakKeys keys;
  for (AttrId a : attrs) keys.partitions.push_back(AttrSet::Of(a));
  keys.partitions.push_back(AttrSet{attrs[0], attrs[2]});
  keys.indexes = {attrs[1], attrs[3]};
  auto touch = [&](FlexibleRelation* rel) {
    std::shared_ptr<PliCache> cache = rel->pli_cache();
    for (const AttrSet& k : keys.partitions) (void)cache->Get(k);
    for (AttrId a : keys.indexes) (void)cache->IndexFor(a);
  };

  // Identical instances: one draw per row, applied to all three.
  for (int i = 0; i < 150; ++i) {
    Tuple t = RandomSoakTuple(attrs, &rng);
    for (FlexibleRelation* rel : rels) rel->InsertUnchecked(t);
  }
  for (FlexibleRelation* rel : rels) touch(rel);

  auto assert_all_equal = [&](const std::string& context) {
    std::shared_ptr<PliCache> lhs = adaptive.pli_cache();
    std::shared_ptr<PliCache> ref = reference.pli_cache();
    std::shared_ptr<PliCache> mid = per_row.pli_cache();
    std::shared_ptr<PliCache> rhs = oracle.pli_cache();
    for (const AttrSet& k : keys.partitions) {
      ASSERT_EQ(*lhs->Get(k), *ref->Get(k))
          << context << " arena vs reference storage " << k.ToString();
      ASSERT_EQ(*lhs->Get(k), *mid->Get(k))
          << context << " adaptive vs per-row " << k.ToString();
      ASSERT_EQ(*lhs->Get(k), *rhs->Get(k))
          << context << " adaptive vs oracle " << k.ToString();
      ASSERT_EQ(lhs->Get(k)->defined_rows(), rhs->Get(k)->defined_rows())
          << context << " " << k.ToString();
      ASSERT_EQ(lhs->Get(k)->storage(), Pli::Storage::kArena) << context;
      ASSERT_EQ(ref->Get(k)->storage(), Pli::Storage::kVectors) << context;
      std::string err;
      ASSERT_TRUE(lhs->Get(k)->CheckInvariants(&err)) << context << err;
      ASSERT_TRUE(ref->Get(k)->CheckInvariants(&err)) << context << err;
    }
    for (AttrId a : keys.indexes) {
      ASSERT_EQ(*lhs->IndexFor(a), *ref->IndexFor(a)) << context;
      ASSERT_EQ(*lhs->IndexFor(a), *mid->IndexFor(a)) << context;
      ASSERT_EQ(*lhs->IndexFor(a), *rhs->IndexFor(a)) << context;
    }
  };
  auto run_burst = [&](size_t burst, const std::string& context) {
    std::vector<FlexibleRelation::UpdateSpec> updates;
    for (size_t i = 0; i < burst; ++i) {
      updates.push_back({rng.Index(adaptive.size()),
                         attrs[rng.Index(attrs.size())],
                         RandomSoakValue(&rng), Tuple()});
    }
    for (FlexibleRelation* rel : rels) {
      auto copy = updates;
      ASSERT_TRUE(rel->UpdateRows(std::move(copy)).ok());
      touch(rel);
    }
    ASSERT_NO_FATAL_FAILURE(assert_all_equal(context));
  };

  const size_t kBursts[] = {1, 8, 64};
  for (int round = 0; round < 20; ++round) {
    // The last round always runs the largest random burst, so the batched
    // arm is exercised (and the batch_applies assertions below hold) for
    // every seed.
    size_t burst = round == 19 ? 64 : kBursts[rng.Index(3)];
    ASSERT_NO_FATAL_FAILURE(run_burst(burst, StrCat("round#", round)));
  }
  // Deterministic closing bursts pin the arena-vs-reference equality on
  // each of the three flush arms regardless of the draws above: a single
  // update (per-row), a mid-size burst (batched window), and one crossing
  // the lowered drop threshold (drop-everything).
  ASSERT_NO_FATAL_FAILURE(run_burst(1, "closing per-row burst"));
  ASSERT_NO_FATAL_FAILURE(run_burst(64, "closing batched burst"));
  ASSERT_NO_FATAL_FAILURE(run_burst(512, "closing drop burst"));
  // The maintenance modes must actually have diverged in mechanism — and
  // the reference-storage twin must have walked the same arms as the
  // arena.
  EXPECT_GT(adaptive.pli_cache()->Stats().batch_applies, 0u);
  EXPECT_GT(adaptive.pli_cache()->Stats().full_drops, 0u);
  EXPECT_GT(reference.pli_cache()->Stats().batch_applies, 0u);
  EXPECT_GT(reference.pli_cache()->Stats().full_drops, 0u);
  EXPECT_GT(reference.pli_cache()->Stats().patches, 0u);
  EXPECT_EQ(per_row.pli_cache()->Stats().batch_applies, 0u);
  EXPECT_GT(per_row.pli_cache()->Stats().patches, 0u);
  EXPECT_EQ(oracle.pli_cache()->Stats().patches, 0u);
}

}  // namespace
}  // namespace flexrel
