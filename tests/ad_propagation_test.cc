// Property tests for Theorem 4.3: every dependency the propagation rules
// emit must hold in the operator's output, on arbitrary (random) inputs that
// satisfy the input dependencies. Tightness is sampled, too: the dependencies
// the rules *drop* (projection with lost LHS, plain union) really can fail.

#include "algebra/ad_propagation.h"

#include <gtest/gtest.h>

#include "algebra/evaluate.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace flexrel {
namespace {

// Builds a random employee-style relation whose declared deps hold by
// construction.
std::unique_ptr<EmployeeWorkload> RandomEmployees(uint64_t seed, size_t rows) {
  EmployeeConfig config;
  config.num_variants = 3;
  config.attrs_per_variant = 2;
  config.num_common_attrs = 1;
  config.rows = rows;
  config.seed = seed;
  auto w = MakeEmployeeWorkload(config);
  EXPECT_TRUE(w.ok());
  return std::move(w).value();
}

class PropagationSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropagationSweep, SelectPreservesAllDeps) {
  auto w = RandomEmployees(GetParam(), 60);
  Rng rng(GetParam() * 7 + 1);
  ExprPtr pred = Expr::Compare(w->id_attr, CmpOp::kLt,
                               Value::Int(rng.UniformInt(0, 60)));
  auto out = Evaluate(Plan::Select(Plan::Scan(&w->relation), pred));
  ASSERT_TRUE(out.ok());
  // Rule (3): the full dependency set propagates and must hold.
  EXPECT_EQ(out.value().deps().ads().size(),
            w->relation.deps().ads().size());
  EXPECT_TRUE(out.value().SatisfiesDeclaredDeps());
}

TEST_P(PropagationSweep, ProjectEmitsOnlyValidDeps) {
  auto w = RandomEmployees(GetParam(), 60);
  Rng rng(GetParam() * 13 + 5);
  // Random keep-set over the active attributes.
  std::vector<AttrId> keep_ids;
  for (AttrId a : w->relation.ActiveAttrs()) {
    if (rng.Bernoulli(0.6)) keep_ids.push_back(a);
  }
  AttrSet keep = AttrSet::FromIds(std::move(keep_ids));
  auto out = Evaluate(Plan::Project(Plan::Scan(&w->relation), keep));
  ASSERT_TRUE(out.ok());
  // Rule (2): everything propagated must hold in the projection.
  EXPECT_TRUE(out.value().SatisfiesDeclaredDeps())
      << "projection onto " << keep.ToString() << " violates propagated deps";
  // And the rule only keeps ADs whose LHS survived.
  for (const AttrDep& ad : out.value().deps().ads()) {
    EXPECT_TRUE(ad.lhs.IsSubsetOf(keep));
    EXPECT_TRUE(ad.rhs.IsSubsetOf(keep));
  }
}

TEST_P(PropagationSweep, ProductUnionOfDepsHolds) {
  auto w1 = RandomEmployees(GetParam(), 12);
  // A disjoint second relation: fresh catalog → fresh ids do not apply;
  // instead build a derived relation over distinct attribute ids.
  FlexibleRelation r2 = FlexibleRelation::Derived("r2", [] {
    DependencySet d;
    d.AddAd(AttrDep{AttrSet{1000}, AttrSet{1001}});
    return d;
  }());
  Rng rng(GetParam());
  for (int i = 0; i < 8; ++i) {
    Tuple t;
    int64_t x = rng.UniformInt(0, 2);
    t.Set(1000, Value::Int(x));
    if (x != 1) t.Set(1001, Value::Int(rng.UniformInt(0, 9)));
    t.Set(1002, Value::Int(i));
    r2.InsertUnchecked(t);
  }
  ASSERT_TRUE(r2.SatisfiesDeclaredDeps());
  auto out =
      Evaluate(Plan::Product(Plan::Scan(&w1->relation), Plan::Scan(&r2)));
  ASSERT_TRUE(out.ok()) << out.status();
  // Rule (1): both dependency sets hold in the product.
  EXPECT_EQ(out.value().deps().ads().size(),
            w1->relation.deps().ads().size() + r2.deps().ads().size());
  EXPECT_TRUE(out.value().SatisfiesDeclaredDeps());
}

TEST_P(PropagationSweep, DifferencePreservesLeftDeps) {
  auto w = RandomEmployees(GetParam(), 40);
  ExprPtr pred = Expr::Eq(w->jobtype_attr, w->jobtype_values[0]);
  PlanPtr left = Plan::Scan(&w->relation);
  PlanPtr right = Plan::Select(Plan::Scan(&w->relation), pred);
  auto out = Evaluate(Plan::Difference(left, right));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().SatisfiesDeclaredDeps());
}

TEST_P(PropagationSweep, TaggedUnionDepsHold) {
  auto w1 = RandomEmployees(GetParam(), 25);
  auto w2 = RandomEmployees(GetParam() + 1000, 25);
  // NOTE: w2 uses its own catalog but the attribute ids coincide by
  // construction (same interning order), so the union is meaningful: same
  // ids, independently generated instances.
  AttrId tag = 9999;
  PlanPtr u = Plan::Union(
      Plan::Extend(Plan::Scan(&w1->relation), tag, Value::Int(1)),
      Plan::Extend(Plan::Scan(&w2->relation), tag, Value::Int(2)));
  auto out = Evaluate(u);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out.value().deps().ads().empty());
  // Rule (6): the tag-augmented dependencies hold across the union.
  EXPECT_TRUE(out.value().SatisfiesDeclaredDeps());
}

TEST_P(PropagationSweep, PlainUnionTightness) {
  // Rule (4) is tight: two instances that *individually* satisfy
  // X --attr--> Y can violate it jointly. Construct the classic clash:
  // same determinant value, different variant shapes.
  auto w1 = RandomEmployees(GetParam(), 5);
  Rng rng(GetParam());
  FlexibleRelation clash = FlexibleRelation::Derived("clash", [&] {
    DependencySet d;
    d.AddAd(AttrDep{AttrSet{w1->jobtype_attr},
                    w1->relation.deps().ads()[0].rhs});
    return d;
  }());
  // A tuple claiming variant 0's jobtype but carrying variant 1's block:
  // *alone* this still satisfies the abbreviated AD (single tuple), and it
  // clashes with w1's genuine variant-0 tuples after the union.
  Tuple t = RandomEmployee(*w1, &rng, 1);
  t.Set(w1->jobtype_attr, w1->jobtype_values[0]);
  clash.InsertUnchecked(t);
  ASSERT_TRUE(clash.SatisfiesDeclaredDeps());

  auto out = Evaluate(
      Plan::Union(Plan::Scan(&w1->relation), Plan::Scan(&clash)));
  ASSERT_TRUE(out.ok());
  // The union result (correctly) declares no dependencies …
  EXPECT_TRUE(out.value().deps().ads().empty());
  // … and indeed the input AD fails on the union whenever a genuine
  // variant-0 tuple exists.
  bool has_variant0 = false;
  for (const Tuple& row : w1->relation.rows()) {
    if (*row.Get(w1->jobtype_attr) == w1->jobtype_values[0]) {
      has_variant0 = true;
    }
  }
  if (has_variant0) {
    EXPECT_FALSE(SatisfiesAttrDep(out.value().rows(),
                                  w1->relation.deps().ads()[0]));
  }
}

TEST_P(PropagationSweep, ProjectionTightness) {
  // Dropping part of the determinant really can break the dependency:
  // {A, B} --attr--> C with the A-part essential.
  Rng rng(GetParam());
  FlexibleRelation r = FlexibleRelation::Derived("r", [] {
    DependencySet d;
    d.AddAd(AttrDep{AttrSet{0, 1}, AttrSet{2}});
    return d;
  }());
  // (A=0, B=0) -> C present; (A=1, B=0) -> C absent. Projecting away A
  // leaves two tuples agreeing on B with different C-presence.
  Tuple t1;
  t1.Set(0, Value::Int(0));
  t1.Set(1, Value::Int(0));
  t1.Set(2, Value::Int(7));
  Tuple t2;
  t2.Set(0, Value::Int(1));
  t2.Set(1, Value::Int(0));
  r.InsertUnchecked(t1);
  r.InsertUnchecked(t2);
  ASSERT_TRUE(r.SatisfiesDeclaredDeps());

  AttrSet keep{1, 2};
  auto out = Evaluate(Plan::Project(Plan::Scan(&r), keep));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().deps().ads().empty());  // rule (2) dropped it
  EXPECT_FALSE(SatisfiesAttrDep(out.value().rows(),
                                AttrDep{AttrSet{1}, AttrSet{2}}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationSweep,
                         ::testing::Range<uint64_t>(1, 21));

// Direct unit checks of the propagation functions.
TEST(PropagationUnit, ProjectClipsRhs) {
  DependencySet in;
  in.AddAd(AttrDep{AttrSet{0}, AttrSet{1, 2}});
  in.AddAd(AttrDep{AttrSet{3}, AttrSet{4}});
  in.AddFd(FuncDep{AttrSet{0}, AttrSet{2, 4}});
  DependencySet out = PropagateProject(in, AttrSet{0, 1, 4});
  ASSERT_EQ(out.ads().size(), 1u);
  EXPECT_EQ(out.ads()[0].rhs, AttrSet{1});  // 2 clipped away
  ASSERT_EQ(out.fds().size(), 1u);
  EXPECT_EQ(out.fds()[0].rhs, AttrSet{4});
}

TEST(PropagationUnit, TaggedUnionAugmentsLhs) {
  DependencySet a;
  a.AddAd(AttrDep{AttrSet{0}, AttrSet{1}});
  DependencySet b;
  b.AddFd(FuncDep{AttrSet{2}, AttrSet{3}});
  DependencySet out = PropagateTaggedUnion({a, b}, 9);
  ASSERT_EQ(out.ads().size(), 1u);
  EXPECT_EQ(out.ads()[0].lhs, (AttrSet{0, 9}));
  ASSERT_EQ(out.fds().size(), 1u);
  EXPECT_EQ(out.fds()[0].lhs, (AttrSet{2, 9}));
}

}  // namespace
}  // namespace flexrel
