#include "optimizer/plan_rewrite.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "algebra/evaluate.h"
#include "decomposition/decomposition.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

class PlanRewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EmployeeConfig config;
    config.num_variants = 4;
    config.attrs_per_variant = 2;
    config.rows = 80;
    config.seed = 5;
    auto w = MakeEmployeeWorkload(config);
    ASSERT_TRUE(w.ok()) << w.status();
    w_ = std::move(w).value();

    auto parts = TranslateVertical(w_->relation, w_->eads[0],
                                   AttrSet::Of(w_->id_attr));
    ASSERT_TRUE(parts.ok());
    parts_ = std::move(parts).value();
    master_ = FlexibleRelation::Derived("master", DependencySet());
    for (const Tuple& t : parts_.master.rows()) master_.InsertUnchecked(t);
    for (const Relation& r : parts_.variant_relations) {
      auto fr = std::make_unique<FlexibleRelation>(
          FlexibleRelation::Derived(r.name(), DependencySet()));
      for (const Tuple& t : r.rows()) fr->InsertUnchecked(t);
      variants_.push_back(std::move(fr));
    }
  }

  // The restore-and-select plan: σ[jobtype = v] (∪_i master ⋈ variant_i).
  PlanPtr RestoreSelect(size_t jobtype_index) {
    std::vector<PlanPtr> branches;
    for (auto& v : variants_) {
      branches.push_back(
          Plan::NaturalJoin(Plan::Scan(&master_), Plan::Scan(v.get())));
    }
    return Plan::Select(
        Plan::OuterUnion(std::move(branches)),
        Expr::Eq(w_->jobtype_attr, w_->jobtype_values[jobtype_index]));
  }

  std::unique_ptr<EmployeeWorkload> w_;
  VerticalDecomposition parts_;
  FlexibleRelation master_;
  std::vector<std::unique_ptr<FlexibleRelation>> variants_;
};

TEST_F(PlanRewriteTest, GuaranteedAttrsStructural) {
  // Scans of variant relations guarantee key + variant attributes.
  AttrSet g0 = GuaranteedAttrs(Plan::Scan(variants_[0].get()));
  EXPECT_TRUE(AttrSet::Of(w_->id_attr).IsSubsetOf(g0));
  EXPECT_TRUE(w_->eads[0].variants()[0].then.IsSubsetOf(g0));
  // Joins accumulate.
  AttrSet gj = GuaranteedAttrs(
      Plan::NaturalJoin(Plan::Scan(&master_), Plan::Scan(variants_[0].get())));
  EXPECT_TRUE(AttrSet::Of(w_->jobtype_attr).IsSubsetOf(gj));
  EXPECT_TRUE(w_->eads[0].variants()[0].then.IsSubsetOf(gj));
  // Unions intersect: different variants share only master+key parts.
  AttrSet gu = GuaranteedAttrs(Plan::OuterUnion(
      {Plan::Scan(variants_[0].get()), Plan::Scan(variants_[1].get())}));
  EXPECT_FALSE(w_->eads[0].variants()[0].then.IsSubsetOf(gu));
  EXPECT_TRUE(AttrSet::Of(w_->id_attr).IsSubsetOf(gu));
  // Selections add their constrained attributes.
  AttrSet gs = GuaranteedAttrs(
      Plan::Select(Plan::Scan(&master_),
                   Expr::Eq(w_->jobtype_attr, w_->jobtype_values[0])));
  EXPECT_TRUE(gs.Contains(w_->jobtype_attr));
  // Empty guarantees nothing; Extend adds the tag.
  EXPECT_TRUE(GuaranteedAttrs(Plan::Empty()).empty());
  EXPECT_TRUE(GuaranteedAttrs(
                  Plan::Extend(Plan::Scan(&master_), 777, Value::Int(1)))
                  .Contains(777));
}

TEST_F(PlanRewriteTest, PrunesExcludedVariantBranches) {
  PlanPtr plan = RestoreSelect(0);
  RewriteReport report;
  PlanPtr optimized = OptimizePlan(plan, w_->eads, &report);
  // Three of the four variant branches are provably excluded.
  EXPECT_EQ(report.branches_pruned, 3u);
  // One push through the union, one through the surviving branch's join.
  EXPECT_EQ(report.selects_pushed, 2u);

  // Results are identical.
  auto base = Evaluate(plan);
  auto opt = Evaluate(optimized);
  ASSERT_TRUE(base.ok() && opt.ok());
  std::vector<Tuple> a = base.value().rows();
  std::vector<Tuple> b = opt.value().rows();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());

  // And the optimized plan does proportionally less join work.
  EvalStats base_stats, opt_stats;
  ASSERT_TRUE(Evaluate(plan, &base_stats).ok());
  ASSERT_TRUE(Evaluate(optimized, &opt_stats).ok());
  EXPECT_LT(opt_stats.join_probes, base_stats.join_probes / 2);
}

TEST_F(PlanRewriteTest, UnconstrainedSelectionPrunesNothing) {
  PlanPtr plan = Plan::Select(
      Plan::OuterUnion({Plan::NaturalJoin(Plan::Scan(&master_),
                                          Plan::Scan(variants_[0].get())),
                        Plan::NaturalJoin(Plan::Scan(&master_),
                                          Plan::Scan(variants_[1].get()))}),
      Expr::Compare(w_->id_attr, CmpOp::kGe, Value::Int(0)));
  RewriteReport report;
  PlanPtr optimized = OptimizePlan(plan, w_->eads, &report);
  EXPECT_EQ(report.branches_pruned, 0u);
  auto base = Evaluate(plan);
  auto opt = Evaluate(optimized);
  ASSERT_TRUE(base.ok() && opt.ok());
  EXPECT_EQ(base.value().size(), opt.value().size());
}

TEST_F(PlanRewriteTest, ConstantTrueSelectionDropsOut) {
  PlanPtr plan =
      Plan::Select(Plan::Scan(&master_), Expr::Const(TriBool::kTrue));
  RewriteReport report;
  PlanPtr optimized = OptimizePlan(plan, w_->eads, &report);
  EXPECT_EQ(optimized->kind(), PlanKind::kScan);
}

TEST_F(PlanRewriteTest, ContradictorySelectionBecomesEmpty) {
  // jobtype pinned to two different values at once.
  ExprPtr contradiction =
      Expr::And(Expr::Eq(w_->jobtype_attr, w_->jobtype_values[0]),
                Expr::Eq(w_->jobtype_attr, w_->jobtype_values[1]));
  PlanPtr plan = Plan::Select(Plan::Scan(&w_->relation), contradiction);
  RewriteReport report;
  PlanPtr optimized = OptimizePlan(plan, w_->eads, &report);
  // Guard analysis can't see the contradiction (no guard involved), but the
  // evaluation still yields nothing; the rewrite must at minimum preserve
  // results.
  auto base = Evaluate(plan);
  auto opt = Evaluate(optimized);
  ASSERT_TRUE(base.ok() && opt.ok());
  EXPECT_EQ(base.value().size(), 0u);
  EXPECT_EQ(opt.value().size(), 0u);
}

TEST_F(PlanRewriteTest, FalsifiedGuardEmptiesTheSelect) {
  // Selection demanding a secretary attribute under a salesman-style pin.
  const auto& ead = w_->eads[0];
  AttrId v1_attr = *ead.variants()[1].then.begin();
  ExprPtr f = Expr::And(Expr::Eq(w_->jobtype_attr, w_->jobtype_values[0]),
                        Expr::Exists(v1_attr));
  PlanPtr plan = Plan::Select(Plan::Scan(&w_->relation), f);
  RewriteReport report;
  PlanPtr optimized = OptimizePlan(plan, w_->eads, &report);
  EXPECT_EQ(optimized->kind(), PlanKind::kEmpty);
  EXPECT_GE(report.guards_falsified, 1u);
  auto base = Evaluate(plan);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base.value().size(), 0u);  // the rewrite told the truth
}

TEST_F(PlanRewriteTest, EmptyPropagatesThroughOperators) {
  PlanPtr empty = Plan::Empty();
  RewriteReport report;
  // join with empty -> empty; union with empty -> other side; difference.
  PlanPtr j = OptimizePlan(
      Plan::NaturalJoin(Plan::Scan(&master_), empty), w_->eads, &report);
  EXPECT_EQ(j->kind(), PlanKind::kEmpty);
  PlanPtr u = OptimizePlan(Plan::Union(Plan::Scan(&master_), empty),
                           w_->eads, &report);
  EXPECT_EQ(u->kind(), PlanKind::kScan);
  PlanPtr d = OptimizePlan(Plan::Difference(Plan::Scan(&master_), empty),
                           w_->eads, &report);
  EXPECT_EQ(d->kind(), PlanKind::kScan);
  PlanPtr d2 = OptimizePlan(Plan::Difference(empty, Plan::Scan(&master_)),
                            w_->eads, &report);
  EXPECT_EQ(d2->kind(), PlanKind::kEmpty);
  // Evaluating Empty works.
  auto out = Evaluate(Plan::Empty());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

TEST_F(PlanRewriteTest, EstimateRowsReadsTheValueIndex) {
  // Scans estimate their size; an equality selection over a scan estimates
  // the matching cluster's exact size via the relation's partition cache.
  EXPECT_EQ(EstimateRows(Plan::Scan(&master_)), master_.size());
  EXPECT_EQ(EstimateRows(Plan::Empty()), 0u);
  PlanPtr sel = Plan::Select(
      Plan::Scan(&master_),
      Expr::Eq(w_->jobtype_attr, w_->jobtype_values[0]));
  size_t expected = 0;
  for (const Tuple& t : master_.rows()) {
    const Value* v = t.Get(w_->jobtype_attr);
    if (v != nullptr && *v == w_->jobtype_values[0]) ++expected;
  }
  EXPECT_EQ(EstimateRows(sel), expected);
  EXPECT_LT(EstimateRows(sel), EstimateRows(Plan::Scan(&master_)));
  // Null literals never select anything under Kleene semantics, and the
  // estimate must agree even when rows carry explicit nulls.
  EXPECT_EQ(EstimateRows(Plan::Select(
                Plan::Scan(&master_),
                Expr::Eq(w_->jobtype_attr, Value::Null()))),
            0u);
}

TEST_F(PlanRewriteTest, MultiwayJoinLegsOrderedSmallestEstimateFirst) {
  // master (80 rows) before a selective leg: the rewriter must flip them.
  PlanPtr selective = Plan::Select(
      Plan::Scan(&master_),
      Expr::Eq(w_->jobtype_attr, w_->jobtype_values[0]));
  PlanPtr plan = Plan::MultiwayJoin(
      {Plan::Scan(&master_), selective, Plan::Scan(variants_[0].get())});
  RewriteReport report;
  PlanPtr optimized = OptimizePlan(plan, w_->eads, &report);
  EXPECT_EQ(report.joins_reordered, 1u);
  ASSERT_EQ(optimized->kind(), PlanKind::kMultiwayJoin);
  std::vector<size_t> estimates;
  for (const PlanPtr& leg : optimized->inputs()) {
    estimates.push_back(EstimateRows(leg));
  }
  EXPECT_TRUE(std::is_sorted(estimates.begin(), estimates.end()));

  // Reordering is result-preserving.
  auto base = Evaluate(plan);
  auto opt = Evaluate(optimized);
  ASSERT_TRUE(base.ok() && opt.ok());
  std::vector<Tuple> a = base.value().rows();
  std::vector<Tuple> b = opt.value().rows();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);

  // Already sorted legs are left alone.
  RewriteReport noop;
  OptimizePlan(Plan::MultiwayJoin({selective, Plan::Scan(&master_)}),
               w_->eads, &noop);
  EXPECT_EQ(noop.joins_reordered, 0u);
}

// Property: optimized restore-and-select equals the unoptimized result for
// every jobtype and several seeds.
class RewriteEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewriteEquivalence, RestoreSelectAllVariants) {
  EmployeeConfig config;
  config.num_variants = 3 + GetParam() % 4;
  config.attrs_per_variant = 2;
  config.rows = 60;
  config.seed = GetParam();
  auto w = MakeEmployeeWorkload(config);
  ASSERT_TRUE(w.ok());
  auto parts = TranslateVertical(w.value()->relation, w.value()->eads[0],
                                 AttrSet::Of(w.value()->id_attr));
  ASSERT_TRUE(parts.ok());
  FlexibleRelation master = FlexibleRelation::Derived("m", DependencySet());
  for (const Tuple& t : parts.value().master.rows()) {
    master.InsertUnchecked(t);
  }
  std::vector<std::unique_ptr<FlexibleRelation>> variant_frs;
  for (const Relation& r : parts.value().variant_relations) {
    auto fr = std::make_unique<FlexibleRelation>(
        FlexibleRelation::Derived(r.name(), DependencySet()));
    for (const Tuple& t : r.rows()) fr->InsertUnchecked(t);
    variant_frs.push_back(std::move(fr));
  }
  for (size_t v = 0; v < w.value()->jobtype_values.size(); ++v) {
    std::vector<PlanPtr> branches;
    for (auto& fr : variant_frs) {
      branches.push_back(
          Plan::NaturalJoin(Plan::Scan(&master), Plan::Scan(fr.get())));
    }
    PlanPtr plan = Plan::Select(
        Plan::OuterUnion(std::move(branches)),
        Expr::Eq(w.value()->jobtype_attr, w.value()->jobtype_values[v]));
    PlanPtr optimized = OptimizePlan(plan, w.value()->eads);
    auto base = Evaluate(plan);
    auto opt = Evaluate(optimized);
    ASSERT_TRUE(base.ok() && opt.ok());
    std::vector<Tuple> a = base.value().rows();
    std::vector<Tuple> b = opt.value().rows();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "variant " << v << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteEquivalence,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace flexrel
