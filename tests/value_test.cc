#include "relational/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace flexrel {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).as_bool(), true);
  EXPECT_EQ(Value::Int(-3).as_int(), -3);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::Str("hi").as_string(), "hi");
}

TEST(ValueTest, EqualitySameType) {
  EXPECT_EQ(Value::Int(4), Value::Int(4));
  EXPECT_NE(Value::Int(4), Value::Int(5));
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
  EXPECT_NE(Value::Str("a"), Value::Str("b"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, CrossTypeValuesAreUnequal) {
  EXPECT_NE(Value::Int(1), Value::Real(1.0));
  EXPECT_NE(Value::Bool(true), Value::Int(1));
  EXPECT_NE(Value::Null(), Value::Int(0));
}

TEST(ValueTest, TotalOrderWithinType) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Str("abc"), Value::Str("abd"));
  EXPECT_LT(Value::Real(-1.5), Value::Real(0.0));
  EXPECT_LT(Value::Bool(false), Value::Bool(true));
}

TEST(ValueTest, CrossTypeOrderIsByTypeTag) {
  // null < bool < int < double < string.
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Bool(true), Value::Int(-100));
  EXPECT_LT(Value::Int(1000), Value::Real(-5.0));
  EXPECT_LT(Value::Real(1e9), Value::Str(""));
}

TEST(ValueTest, CompareIsAntisymmetric) {
  Value a = Value::Int(3);
  Value b = Value::Int(9);
  EXPECT_EQ(a.Compare(b), -b.Compare(a));
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::Str("xyz").Hash(), Value::Str("xyz").Hash());
  // Different types with "equal-looking" payloads should (overwhelmingly)
  // hash differently because the type participates.
  EXPECT_NE(Value::Int(0).Hash(), Value::Null().Hash());
}

TEST(ValueTest, WorksInUnorderedSet) {
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value::Int(1));
  set.insert(Value::Int(1));
  set.insert(Value::Str("1"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Value::Int(1)));
  EXPECT_FALSE(set.count(Value::Int(2)));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Str("jobtype").ToString(), "'jobtype'");
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeName(ValueType::kNull), "null");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
}

}  // namespace
}  // namespace flexrel
