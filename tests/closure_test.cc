#include "core/closure.h"

#include <gtest/gtest.h>

#include "core/witness.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

constexpr AttrId kA = 0, kB = 1, kC = 2, kD = 3, kE = 4;

TEST(FuncClosureTest, ClassicalFixpoint) {
  DependencySet sigma;
  sigma.AddFd(FuncDep{AttrSet{kA}, AttrSet{kB}});
  sigma.AddFd(FuncDep{AttrSet{kB}, AttrSet{kC}});
  sigma.AddFd(FuncDep{AttrSet{kC, kD}, AttrSet{kE}});
  EXPECT_EQ(FuncClosure(AttrSet{kA}, sigma), (AttrSet{kA, kB, kC}));
  EXPECT_EQ(FuncClosure(AttrSet{kA, kD}, sigma),
            (AttrSet{kA, kB, kC, kD, kE}));
  EXPECT_EQ(FuncClosure(AttrSet{kD}, sigma), AttrSet{kD});
  EXPECT_EQ(FuncClosure(AttrSet(), sigma), AttrSet());
}

TEST(AttrClosureTest, ReflexivityOnly) {
  DependencySet sigma;
  EXPECT_EQ(AttrClosure(AttrSet{kA, kB}, sigma, AxiomSystem::kAdOnly),
            (AttrSet{kA, kB}));
}

TEST(AttrClosureTest, SingleFiring) {
  DependencySet sigma;
  sigma.AddAd(AttrDep{AttrSet{kA}, AttrSet{kB}});
  EXPECT_EQ(AttrClosure(AttrSet{kA}, sigma, AxiomSystem::kAdOnly),
            (AttrSet{kA, kB}));
  // Left augmentation: a superset LHS fires the same AD.
  EXPECT_EQ(AttrClosure(AttrSet{kA, kC}, sigma, AxiomSystem::kAdOnly),
            (AttrSet{kA, kB, kC}));
}

TEST(AttrClosureTest, TransitivityIsInvalidForAds) {
  // The paper's "remarkable point": A --attr--> B, B --attr--> C does NOT
  // yield A --attr--> C.
  DependencySet sigma;
  sigma.AddAd(AttrDep{AttrSet{kA}, AttrSet{kB}});
  sigma.AddAd(AttrDep{AttrSet{kB}, AttrSet{kC}});
  AttrSet closure = AttrClosure(AttrSet{kA}, sigma, AxiomSystem::kAdOnly);
  EXPECT_TRUE(closure.Contains(kB));
  EXPECT_FALSE(closure.Contains(kC));
  EXPECT_FALSE(Implies(sigma, AttrDep{AttrSet{kA}, AttrSet{kC}},
                       AxiomSystem::kAdOnly));
}

TEST(AttrClosureTest, TransitivityFailureHasACountermodel) {
  // Semantic confirmation: an instance satisfying both premises but
  // violating the would-be conclusion. t1 has B (with value 1) and C;
  // t2 has B (value 2) and no C. A --attr--> B holds (both have B),
  // B --attr--> C fails to constrain (different B values), yet the two
  // tuples agree on A.
  std::vector<Tuple> rows;
  {
    Tuple t1;
    t1.Set(kA, Value::Int(0));
    t1.Set(kB, Value::Int(1));
    t1.Set(kC, Value::Int(9));
    Tuple t2;
    t2.Set(kA, Value::Int(0));
    t2.Set(kB, Value::Int(2));
    rows = {t1, t2};
  }
  EXPECT_TRUE(SatisfiesAttrDep(rows, AttrDep{AttrSet{kA}, AttrSet{kB}}));
  EXPECT_TRUE(SatisfiesAttrDep(rows, AttrDep{AttrSet{kB}, AttrSet{kC}}));
  EXPECT_FALSE(SatisfiesAttrDep(rows, AttrDep{AttrSet{kA}, AttrSet{kC}}));
}

TEST(AttrClosureTest, CombinedSystemFiresThroughFuncClosure) {
  // AF2: X --func--> V, V --attr--> W  ⊢  X --attr--> W.
  DependencySet sigma;
  sigma.AddFd(FuncDep{AttrSet{kA}, AttrSet{kB}});
  sigma.AddAd(AttrDep{AttrSet{kB}, AttrSet{kC}});
  // In the AD-only system the AD's LHS is out of reach.
  EXPECT_FALSE(Implies(sigma, AttrDep{AttrSet{kA}, AttrSet{kC}},
                       AxiomSystem::kAdOnly));
  // In 𝔄* it fires.
  EXPECT_TRUE(Implies(sigma, AttrDep{AttrSet{kA}, AttrSet{kC}},
                      AxiomSystem::kCombined));
  // AF1 subsumption: the functionally determined B is attr-determined too.
  EXPECT_TRUE(Implies(sigma, AttrDep{AttrSet{kA}, AttrSet{kB}},
                      AxiomSystem::kCombined));
}

TEST(AttrClosureTest, AdsNeverFeedBackIntoFds) {
  DependencySet sigma;
  sigma.AddAd(AttrDep{AttrSet{kA}, AttrSet{kB}});
  sigma.AddFd(FuncDep{AttrSet{kB}, AttrSet{kC}});
  // A attr-determines B, but that gives no functional grip on B, so C stays
  // out of both closures.
  EXPECT_EQ(FuncClosure(AttrSet{kA}, sigma), AttrSet{kA});
  AttrSet closure = AttrClosure(AttrSet{kA}, sigma, AxiomSystem::kCombined);
  EXPECT_TRUE(closure.Contains(kB));
  EXPECT_FALSE(closure.Contains(kC));
}

TEST(ImpliesTest, ProjectivityAdditivityReflexivity) {
  DependencySet sigma;
  sigma.AddAd(AttrDep{AttrSet{kA}, AttrSet{kB, kC}});
  sigma.AddAd(AttrDep{AttrSet{kA}, AttrSet{kD}});
  // A1: projection of the RHS.
  EXPECT_TRUE(Implies(sigma, AttrDep{AttrSet{kA}, AttrSet{kB}},
                      AxiomSystem::kAdOnly));
  // A2: additivity across the two ADs.
  EXPECT_TRUE(Implies(sigma, AttrDep{AttrSet{kA}, AttrSet{kB, kC, kD}},
                      AxiomSystem::kAdOnly));
  // A3: reflexivity.
  EXPECT_TRUE(Implies(sigma, AttrDep{AttrSet{kA, kE}, AttrSet{kE}},
                      AxiomSystem::kAdOnly));
  // A4: left augmentation.
  EXPECT_TRUE(Implies(sigma, AttrDep{AttrSet{kA, kE}, AttrSet{kB, kE}},
                      AxiomSystem::kAdOnly));
  // Not implied: RHS beyond reach.
  EXPECT_FALSE(Implies(sigma, AttrDep{AttrSet{kB}, AttrSet{kC}},
                       AxiomSystem::kAdOnly));
}

TEST(ImpliesTest, FdImplication) {
  DependencySet sigma;
  sigma.AddFd(FuncDep{AttrSet{kA}, AttrSet{kB}});
  sigma.AddFd(FuncDep{AttrSet{kB}, AttrSet{kC}});
  EXPECT_TRUE(Implies(sigma, FuncDep{AttrSet{kA}, AttrSet{kC}}));
  EXPECT_TRUE(Implies(sigma, FuncDep{AttrSet{kA, kD}, AttrSet{kC, kD}}));
  EXPECT_FALSE(Implies(sigma, FuncDep{AttrSet{kC}, AttrSet{kA}}));
}

TEST(ImpliedSingletonAdsTest, EnumeratesGenerators) {
  DependencySet sigma;
  sigma.AddAd(AttrDep{AttrSet{kA}, AttrSet{kB}});
  AttrSet universe{kA, kB, kC};
  auto implied = ImpliedSingletonAds(universe, sigma, AxiomSystem::kAdOnly);
  // Only {A} --attr--> {B} (and nothing for other LHS subsets of the pool).
  ASSERT_EQ(implied.size(), 1u);
  EXPECT_EQ(implied[0].lhs, AttrSet{kA});
  EXPECT_EQ(implied[0].rhs, AttrSet{kB});
}

// ---- Soundness & completeness sweep (E3/E9) ---------------------------------
//
// For random Σ and random targets, the axiom system's verdict (closure
// membership) must agree with the semantic verdict delivered by the
// appendix's witness construction: implied targets hold in every model
// (spot-checked on the witness, which satisfies Σ), non-implied targets are
// refuted by the witness.

class SoundCompleteSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoundCompleteSweep, AxiomVerdictMatchesWitnessSemantics) {
  Rng rng(GetParam());
  AttrSet universe;
  size_t n = 4 + rng.Index(6);
  for (AttrId a = 0; a < n; ++a) universe.Insert(a);
  DependencySet sigma = RandomDependencies(universe, &rng, 1 + rng.Index(4),
                                           1 + rng.Index(4));

  for (int trial = 0; trial < 25; ++trial) {
    std::vector<AttrId> lhs_ids, rhs_ids;
    for (AttrId a : universe) {
      if (rng.Bernoulli(0.3)) lhs_ids.push_back(a);
      if (rng.Bernoulli(0.3)) rhs_ids.push_back(a);
    }
    AttrDep ad{AttrSet::FromIds(lhs_ids), AttrSet::FromIds(rhs_ids)};
    FuncDep fd{ad.lhs, ad.rhs};

    Witness w = BuildWitness(universe, ad.lhs, sigma);
    // The witness must satisfy Σ itself (it is a legal relation).
    EXPECT_TRUE(sigma.SatisfiedBy(w.rows()))
        << "witness violates sigma (seed " << GetParam() << ")";

    bool ad_implied = Implies(sigma, ad, AxiomSystem::kCombined);
    // Soundness: implied ⟹ the Σ-satisfying witness also satisfies it.
    // Completeness: not implied ⟹ the witness refutes it.
    EXPECT_EQ(!ad_implied, WitnessRefutesAd(universe, sigma, ad))
        << "AD verdict mismatch (seed " << GetParam() << ", trial " << trial
        << ")";

    bool fd_implied = Implies(sigma, fd);
    EXPECT_EQ(!fd_implied, WitnessRefutesFd(universe, sigma, fd))
        << "FD verdict mismatch (seed " << GetParam() << ", trial " << trial
        << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundCompleteSweep,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace flexrel
