// End-to-end integration: EER design -> flexible scheme + EAD -> typed
// inserts -> subtype family -> algebra queries with dependency propagation ->
// optimizer guard elimination -> decomposition round trip -> PASCAL export.
// One scenario, every subsystem.

#include <gtest/gtest.h>

#include <algorithm>

#include "algebra/evaluate.h"
#include "decomposition/decomposition.h"
#include "ermodel/er_model.h"
#include "hostlang/pascal_emit.h"
#include "optimizer/guard_analysis.h"
#include "subtyping/ad_subtyping.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    id_ = catalog_.Intern("vehicle-id");
    kind_ = catalog_.Intern("kind");
    wheels_ = catalog_.Intern("wheels");
    cargo_ = catalog_.Intern("cargo-capacity");
    axles_ = catalog_.Intern("axles");
    seats_ = catalog_.Intern("seats");

    entity_.name = "vehicle";
    entity_.attrs = {
        {id_, Domain::Any(ValueType::kInt)},
        {kind_, Domain::Enumerated({Value::Str("truck"), Value::Str("car"),
                                    Value::Str("bike")})
                    .value()},
        {wheels_, Domain::IntRange(1, 18).value()},
    };
    ErSpecialization spec;
    spec.discriminators = AttrSet{kind_};
    {
      ErSubclass truck;
      truck.name = "truck";
      truck.defining_values = ConditionSet::Single(kind_, Value::Str("truck"));
      truck.specific_attrs = {{cargo_, Domain::Any(ValueType::kInt)},
                              {axles_, Domain::IntRange(2, 6).value()}};
      spec.subclasses.push_back(std::move(truck));
    }
    {
      ErSubclass car;
      car.name = "car";
      car.defining_values = ConditionSet::Single(kind_, Value::Str("car"));
      car.specific_attrs = {{seats_, Domain::IntRange(1, 9).value()}};
      spec.subclasses.push_back(std::move(car));
    }
    entity_.specializations.push_back(std::move(spec));

    auto mapped = MapEntity(entity_);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    mapped_ = std::move(mapped).value();
    relation_ = FlexibleRelation::Base("vehicles", &catalog_, mapped_.scheme,
                                       mapped_.eads, mapped_.domains);
  }

  Tuple Truck(int64_t id, int64_t cargo, int64_t axles, int64_t wheels) {
    Tuple t;
    t.Set(id_, Value::Int(id));
    t.Set(kind_, Value::Str("truck"));
    t.Set(wheels_, Value::Int(wheels));
    t.Set(cargo_, Value::Int(cargo));
    t.Set(axles_, Value::Int(axles));
    return t;
  }
  Tuple Car(int64_t id, int64_t seats) {
    Tuple t;
    t.Set(id_, Value::Int(id));
    t.Set(kind_, Value::Str("car"));
    t.Set(wheels_, Value::Int(4));
    t.Set(seats_, Value::Int(seats));
    return t;
  }
  Tuple Bike(int64_t id) {
    Tuple t;
    t.Set(id_, Value::Int(id));
    t.Set(kind_, Value::Str("bike"));
    t.Set(wheels_, Value::Int(2));
    return t;
  }

  AttrCatalog catalog_;
  AttrId id_, kind_, wheels_, cargo_, axles_, seats_;
  ErEntity entity_;
  MappedEntity mapped_;
  FlexibleRelation relation_;
};

TEST_F(EndToEnd, FullPipeline) {
  // --- Typed inserts ---------------------------------------------------
  ASSERT_TRUE(relation_.Insert(Truck(1, 4000, 3, 10)).ok());
  ASSERT_TRUE(relation_.Insert(Truck(2, 9000, 5, 18)).ok());
  ASSERT_TRUE(relation_.Insert(Car(3, 5)).ok());
  ASSERT_TRUE(relation_.Insert(Car(4, 2)).ok());
  ASSERT_TRUE(relation_.Insert(Bike(5)).ok());
  // A car with truck attributes is rejected (value-based check).
  Tuple franken = Car(6, 4);
  franken.Set(cargo_, Value::Int(100));
  EXPECT_FALSE(relation_.Insert(franken).ok());
  // A truck with axles outside its domain is rejected (domain check).
  EXPECT_FALSE(relation_.Insert(Truck(7, 1000, 9, 10)).ok());

  // --- Classification ----------------------------------------------------
  auto cls = ClassifySpecialization(mapped_.eads[0], mapped_.domains);
  ASSERT_TRUE(cls.ok());
  EXPECT_TRUE(cls.value().disjoint);
  EXPECT_FALSE(cls.value().total);  // bikes join no subclass

  // --- Subtyping ---------------------------------------------------------
  RecordType base("vehicle");
  for (const auto& [attr, domain] : mapped_.domains) {
    base.SetField(attr, domain);
  }
  auto family = DeriveTypeFamily(base, mapped_.eads[0]);
  ASSERT_TRUE(family.ok());
  RecordType no_kind = family.value().supertype.Project(
      family.value().supertype.attrs().Minus(AttrSet::Of(kind_)));
  SupertypeVerdict verdict =
      CheckSupertype(no_kind, family.value(), catalog_);
  EXPECT_TRUE(verdict.record_rule_ok);
  EXPECT_FALSE(verdict.semantics_preserving);

  // --- Algebra + optimizer -----------------------------------------------
  // Query: kind = 'truck' AND EXISTS(cargo-capacity) AND wheels >= 6.
  ExprPtr formula = Expr::AndAll(
      {Expr::Eq(kind_, Value::Str("truck")), Expr::Exists(cargo_),
       Expr::Compare(wheels_, CmpOp::kGe, Value::Int(6))});
  GuardRewrite rewrite = EliminateRedundantGuards(formula, mapped_.eads);
  EXPECT_EQ(rewrite.guards_eliminated, 1u);

  EvalStats stats_orig, stats_rewritten;
  auto r1 = Evaluate(Plan::Select(Plan::Scan(&relation_), formula),
                     &stats_orig);
  auto r2 = Evaluate(Plan::Select(Plan::Scan(&relation_), rewrite.formula),
                     &stats_rewritten);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1.value().size(), 2u);
  std::vector<Tuple> rows1 = r1.value().rows();
  std::vector<Tuple> rows2 = r2.value().rows();
  std::sort(rows1.begin(), rows1.end());
  std::sort(rows2.begin(), rows2.end());
  EXPECT_EQ(rows1, rows2);
  // Rule (3): the selection preserves the EAD's abbreviated dependency.
  EXPECT_FALSE(r1.value().deps().ads().empty());
  EXPECT_TRUE(r1.value().SatisfiesDeclaredDeps());

  // --- Decomposition round trips ------------------------------------------
  auto horizontal = TranslateHorizontal(relation_, mapped_.eads[0]);
  ASSERT_TRUE(horizontal.ok());
  FlexibleRelation h_restored = RestoreHorizontal(horizontal.value());
  EXPECT_EQ(h_restored.size(), relation_.size());

  auto vertical =
      TranslateVertical(relation_, mapped_.eads[0], AttrSet::Of(id_));
  ASSERT_TRUE(vertical.ok());
  FlexibleRelation v_restored = RestoreVertical(vertical.value());
  EXPECT_EQ(v_restored.size(), relation_.size());
  std::vector<Tuple> orig = relation_.rows();
  std::vector<Tuple> rest = v_restored.rows();
  std::sort(orig.begin(), orig.end());
  std::sort(rest.begin(), rest.end());
  EXPECT_EQ(orig, rest);

  // The bike (no variant) survives in master-only form.
  bool bike_found = false;
  for (const Tuple& t : v_restored.rows()) {
    if (*t.Get(kind_) == Value::Str("bike")) {
      bike_found = true;
      EXPECT_FALSE(t.Has(cargo_));
      EXPECT_FALSE(t.Has(seats_));
    }
  }
  EXPECT_TRUE(bike_found);

  // --- Host-language export ------------------------------------------------
  std::vector<std::pair<AttrId, Domain>> common_fields = {
      {id_, Domain::Any(ValueType::kInt)},
      {kind_, entity_.attrs[1].second},
      {wheels_, entity_.attrs[2].second}};
  std::vector<std::pair<AttrId, Domain>> variant_fields = {
      {cargo_, Domain::Any(ValueType::kInt)},
      {axles_, Domain::IntRange(2, 6).value()},
      {seats_, Domain::IntRange(1, 9).value()}};
  auto pascal = EmitPascalRecord(&catalog_, "vehicle", common_fields,
                                 variant_fields, mapped_.eads[0]);
  ASSERT_TRUE(pascal.ok()) << pascal.status();
  EXPECT_NE(pascal.value().source.find("case kind: kind_type of"),
            std::string::npos);
  EXPECT_FALSE(pascal.value().used_artificial_tag);
}

TEST_F(EndToEnd, UpdateDrivenTypeMigration) {
  ASSERT_TRUE(relation_.Insert(Car(10, 4)).ok());
  // Re-classify the car as a truck: a type-changing update.
  Tuple fill;
  fill.Set(cargo_, Value::Int(800));
  fill.Set(axles_, Value::Int(2));
  auto delta = relation_.Update(0, kind_, Value::Str("truck"), fill);
  ASSERT_TRUE(delta.ok()) << delta.status();
  EXPECT_EQ(delta.value().to_add, (AttrSet{cargo_, axles_}));
  EXPECT_EQ(delta.value().to_remove, AttrSet{seats_});
  EXPECT_TRUE(relation_.SatisfiesDeclaredDeps());
  // And the variant pruning view: after the update the instance has no car.
  ConstraintMap constraints;
  constraints[kind_] = ValueConstraint{{Value::Str("truck")}};
  VariantAnalysis analysis = AnalyzeVariants(constraints, mapped_.eads[0]);
  ASSERT_EQ(analysis.consistent_variants.size(), 1u);
  EXPECT_EQ(analysis.consistent_variants[0], 0u);
  EXPECT_FALSE(analysis.unmatched_possible);
}

}  // namespace
}  // namespace flexrel
