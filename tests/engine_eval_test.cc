// Cross-validation of the partition-accelerated evaluator against the naive
// reference path, plus the EvalStats regression pins the optimizer
// experiments (E4/E5) rely on.
//
// The accelerated path (EvalOptions::use_engine, the default) must be
// observationally identical to the naive oracle — same rows, same propagated
// dependency sets, same error codes — while doing strictly less counted
// work on selection- and join-heavy plans. The property test below throws
// hundreds of randomized plans over generated workloads at both paths; the
// fixture tests pin exact per-operator counter values on the paper examples.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "algebra/evaluate.h"
#include "decomposition/decomposition.h"
#include "engine_test_util.h"
#include "optimizer/plan_rewrite.h"
#include "telemetry/telemetry.h"
#include "test_seed.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace flexrel {
namespace {

using testutil::ApplyRandomEmployeeMutation;
using testutil::SoakEmployeeConfig;

EvalOptions NaiveOptions() {
  EvalOptions options;
  options.use_engine = false;
  return options;
}

EvalOptions EngineNoCacheOptions() {
  EvalOptions options;
  options.use_cache = false;
  return options;
}

std::vector<Tuple> SortedRows(const FlexibleRelation& rel) {
  std::vector<Tuple> rows = rel.rows();
  std::sort(rows.begin(), rows.end());
  return rows;
}

// Evaluates `plan` on the naive, engine, and engine-without-cache paths and
// asserts they are observationally identical; returns the number of checked
// instances (1) for the property-test counter.
void CrossValidate(const PlanPtr& plan, const std::string& context) {
  EvalStats naive_stats, engine_stats, nocache_stats;
  auto naive = Evaluate(plan, NaiveOptions(), &naive_stats);
  auto engine = Evaluate(plan, EvalOptions(), &engine_stats);
  auto nocache = Evaluate(plan, EngineNoCacheOptions(), &nocache_stats);

  ASSERT_EQ(naive.ok(), engine.ok()) << context;
  ASSERT_EQ(naive.ok(), nocache.ok()) << context;
  if (!naive.ok()) {
    EXPECT_EQ(naive.status().code(), engine.status().code()) << context;
    EXPECT_EQ(naive.status().code(), nocache.status().code()) << context;
    return;
  }

  // Set-equal rows...
  EXPECT_EQ(SortedRows(naive.value()), SortedRows(engine.value())) << context;
  EXPECT_EQ(SortedRows(naive.value()), SortedRows(nocache.value())) << context;
  // ...and identical propagated dependency sets (same propagation code must
  // run in the same order on both paths).
  EXPECT_EQ(naive.value().deps().ads(), engine.value().deps().ads()) << context;
  EXPECT_EQ(naive.value().deps().fds(), engine.value().deps().fds()) << context;
  EXPECT_EQ(naive.value().deps().ads(), nocache.value().deps().ads())
      << context;

  // Selection work can only shrink: the indexed path evaluates nothing and
  // the generic path evaluates exactly what the oracle does. (join_probes
  // usually shrink too, but greedy multiway ordering under value skew gives
  // no pointwise guarantee — the fixture tests below assert the strict
  // reductions on deterministic plans.)
  EXPECT_LE(engine_stats.predicate_evals, naive_stats.predicate_evals)
      << context;
}

// ---------------------------------------------------------------------------
// Randomized property test: ≥200 random plans over generated workloads.
// ---------------------------------------------------------------------------

struct PlanPool {
  std::vector<const FlexibleRelation*> relations;
  std::vector<AttrId> attrs;
  std::vector<Value> values;
  AttrId extend_tag = 0;
};

const FlexibleRelation* PickRelation(const PlanPool& pool, Rng* rng) {
  return pool.relations[rng->Index(pool.relations.size())];
}

AttrId PickAttr(const PlanPool& pool, Rng* rng) {
  return pool.attrs[rng->Index(pool.attrs.size())];
}

Value PickValue(const PlanPool& pool, Rng* rng) {
  return pool.values[rng->Index(pool.values.size())];
}

ExprPtr RandomFormula(const PlanPool& pool, Rng* rng, int depth) {
  switch (rng->UniformInt(0, depth > 0 ? 6 : 4)) {
    case 0:
    case 1:  // weight equality higher: it is the accelerated shape
      return Expr::Eq(PickAttr(pool, rng), PickValue(pool, rng));
    case 2:
      return Expr::In(PickAttr(pool, rng),
                      {PickValue(pool, rng), PickValue(pool, rng)});
    case 3: {
      CmpOp op = static_cast<CmpOp>(rng->UniformInt(0, 5));
      return Expr::Compare(PickAttr(pool, rng), op, PickValue(pool, rng));
    }
    case 4:
      return Expr::Exists(PickAttr(pool, rng));
    case 5:
      return Expr::And(RandomFormula(pool, rng, depth - 1),
                       RandomFormula(pool, rng, depth - 1));
    default:
      return Expr::Or(RandomFormula(pool, rng, depth - 1),
                      RandomFormula(pool, rng, depth - 1));
  }
}

PlanPtr RandomPlan(const PlanPool& pool, Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.25)) {
    return Plan::Scan(PickRelation(pool, rng));
  }
  switch (rng->UniformInt(0, 6)) {
    case 0:
    case 1:  // selections dominate real query mixes
      return Plan::Select(RandomPlan(pool, rng, depth - 1),
                          RandomFormula(pool, rng, 1));
    case 2:
      return Plan::NaturalJoin(RandomPlan(pool, rng, depth - 1),
                               RandomPlan(pool, rng, depth - 1));
    case 3: {
      std::vector<PlanPtr> legs;
      size_t n = 2 + rng->Index(3);
      for (size_t i = 0; i < n; ++i) {
        legs.push_back(RandomPlan(pool, rng, depth - 1));
      }
      return Plan::MultiwayJoin(std::move(legs));
    }
    case 4:
      return Plan::Union(RandomPlan(pool, rng, depth - 1),
                         RandomPlan(pool, rng, depth - 1));
    case 5: {
      std::vector<PlanPtr> branches;
      size_t n = 2 + rng->Index(2);
      for (size_t i = 0; i < n; ++i) {
        // Extend-tagged branches exercise the rule (6) propagation.
        PlanPtr branch = RandomPlan(pool, rng, depth - 1);
        if (rng->Bernoulli(0.5)) {
          branch = Plan::Extend(branch, pool.extend_tag,
                                Value::Int(static_cast<int64_t>(i)));
        }
        branches.push_back(std::move(branch));
      }
      return Plan::OuterUnion(std::move(branches));
    }
    default: {
      AttrSet attrs;
      size_t n = 1 + rng->Index(3);
      for (size_t i = 0; i < n; ++i) attrs.Insert(PickAttr(pool, rng));
      return Plan::Project(RandomPlan(pool, rng, depth - 1), attrs);
    }
  }
}

TEST(EngineEvalCrossValidation, RandomPlansAgreeWithNaiveOracle) {
  size_t instances = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    auto w = MakeEmployeeWorkload(SoakEmployeeConfig(seed, 40));
    ASSERT_TRUE(w.ok()) << w.status();

    auto parts = TranslateVertical(w.value()->relation, w.value()->eads[0],
                                   AttrSet::Of(w.value()->id_attr));
    ASSERT_TRUE(parts.ok());
    FlexibleRelation master = FlexibleRelation::Derived("m", DependencySet());
    for (const Tuple& t : parts.value().master.rows()) {
      master.InsertUnchecked(t);
    }
    std::vector<std::unique_ptr<FlexibleRelation>> variants;
    for (const Relation& r : parts.value().variant_relations) {
      auto fr = std::make_unique<FlexibleRelation>(
          FlexibleRelation::Derived(r.name(), DependencySet()));
      for (const Tuple& t : r.rows()) fr->InsertUnchecked(t);
      variants.push_back(std::move(fr));
    }

    PlanPool pool;
    pool.relations.push_back(&w.value()->relation);
    pool.relations.push_back(&master);
    for (const auto& v : variants) pool.relations.push_back(v.get());
    pool.attrs.push_back(w.value()->id_attr);
    pool.attrs.push_back(w.value()->jobtype_attr);
    for (AttrId a : w.value()->common_attrs) pool.attrs.push_back(a);
    for (const auto& variant : w.value()->eads[0].variants()) {
      for (AttrId a : variant.then) pool.attrs.push_back(a);
    }
    pool.extend_tag = w.value()->catalog.Intern("xval-tag");
    // Values drawn from actual rows keep selections and joins selective but
    // non-empty; a few foreign constants cover the miss paths.
    Rng rng(seed * 7919);
    for (int i = 0; i < 12; ++i) {
      const Tuple& t = w.value()->relation.row(
          rng.Index(w.value()->relation.size()));
      const auto& field = t.fields()[rng.Index(t.fields().size())];
      pool.values.push_back(field.second);
    }
    pool.values.push_back(Value::Int(-123456));
    pool.values.push_back(Value::Str("no-such-value"));
    pool.values.push_back(Value::Null());

    for (int p = 0; p < 8; ++p) {
      PlanPtr plan = RandomPlan(pool, &rng, 3);
      CrossValidate(plan, StrCat("seed=", seed, " plan=", p));
      ++instances;
    }
  }
  EXPECT_GE(instances, 200u);
}

// ---------------------------------------------------------------------------
// Mutate-between-evaluations: the accelerated path must stay observationally
// identical to the naive oracle while the scanned relations' attached caches
// are patched in place by interleaved mutations (PliCache::OnInsert /
// OnUpdate) — including the use_cache=false configuration, which bypasses
// the patched state entirely. Unlike the 240-plan test above (fixed seeds:
// it pins instance counts), this phase honors FLEXREL_TEST_SEED so CI's
// seed-diversity step soaks a fresh mutation interleaving per run.
// ---------------------------------------------------------------------------

TEST(EngineEvalCrossValidation, RandomPlansAgreeAcrossCachePatches) {
  uint64_t base = TestSeedBase(97, "eval-mutation");
  for (uint64_t i = 1; i <= 10; ++i) {
    uint64_t seed = base + i;
    auto w = MakeEmployeeWorkload(SoakEmployeeConfig(seed, 30));
    ASSERT_TRUE(w.ok()) << w.status();
    EmployeeWorkload& workload = *w.value();

    // A second, untyped relation so derived-relation mutations (no checker,
    // arbitrary updates) are in the mix alongside typed ones.
    FlexibleRelation derived =
        FlexibleRelation::Derived("d", DependencySet());
    for (const Tuple& t : workload.relation.rows()) derived.InsertUnchecked(t);

    PlanPool pool;
    pool.relations.push_back(&workload.relation);
    pool.relations.push_back(&derived);
    pool.attrs.push_back(workload.id_attr);
    pool.attrs.push_back(workload.jobtype_attr);
    for (AttrId a : workload.common_attrs) pool.attrs.push_back(a);
    for (const auto& variant : workload.eads[0].variants()) {
      for (AttrId a : variant.then) pool.attrs.push_back(a);
    }
    pool.extend_tag = workload.catalog.Intern("mut-tag");
    Rng rng(seed * 104729);
    for (int v = 0; v < 10; ++v) {
      const Tuple& t =
          workload.relation.row(rng.Index(workload.relation.size()));
      const auto& field = t.fields()[rng.Index(t.fields().size())];
      pool.values.push_back(field.second);
    }
    pool.values.push_back(Value::Int(-7));
    pool.values.push_back(Value::Null());

    // A fixed plan set, re-cross-validated after every mutation burst: the
    // engine path of round r reads caches patched r times.
    std::vector<PlanPtr> plans;
    for (int p = 0; p < 4; ++p) plans.push_back(RandomPlan(pool, &rng, 3));
    for (int round = 0; round < 4; ++round) {
      for (size_t p = 0; p < plans.size(); ++p) {
        CrossValidate(plans[p],
                      StrCat("seed=", seed, " round=", round, " plan=", p));
      }
      for (int m = 0; m < 6; ++m) {
        // The typed side of each step is the shared employee mutation (a
        // checked insert, or a jobtype flip — the footnote-3 type change
        // landing in the cache as one multi-attribute delta); the derived
        // relation gets a matching unchecked mutation alongside.
        const int kind = rng.Bernoulli(0.5) ? 0 : 1;
        auto outcome = ApplyRandomEmployeeMutation(&workload, &rng, kind);
        ASSERT_TRUE(outcome.status.ok()) << outcome.status;
        if (kind == 0) {
          Tuple t;
          t.Set(PickAttr(pool, &rng), PickValue(pool, &rng));
          t.Set(PickAttr(pool, &rng), PickValue(pool, &rng));
          derived.InsertUnchecked(std::move(t));
        } else {
          size_t drow = rng.Index(derived.size());
          ASSERT_TRUE(derived
                          .Update(drow, PickAttr(pool, &rng),
                                  PickValue(pool, &rng))
                          .ok());
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Exact per-operator EvalStats regression on the paper examples (naive
// path), plus strict-improvement assertions for the engine path.
// ---------------------------------------------------------------------------

class EngineEvalStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ex = MakeJobtypeExample();
    ASSERT_TRUE(ex.ok()) << ex.status();
    ex_ = std::move(ex).value();
  }

  EvalStats NaiveStats(const PlanPtr& plan) {
    EvalStats stats;
    auto out = Evaluate(plan, NaiveOptions(), &stats);
    EXPECT_TRUE(out.ok()) << out.status();
    return stats;
  }

  EvalStats EngineStats(const PlanPtr& plan) {
    EvalStats stats;
    auto out = Evaluate(plan, EvalOptions(), &stats);
    EXPECT_TRUE(out.ok()) << out.status();
    return stats;
  }

  std::unique_ptr<JobtypeExample> ex_;
};

TEST_F(EngineEvalStatsTest, ScanCountsExactly) {
  EvalStats s = NaiveStats(Plan::Scan(&ex_->relation));
  EXPECT_EQ(s.tuples_scanned, 3u);
  EXPECT_EQ(s.tuples_emitted, 3u);
  EXPECT_EQ(s.intermediate_tuples, 0u);
  EXPECT_EQ(s.predicate_evals, 0u);
  EXPECT_EQ(s.join_probes, 0u);
}

TEST_F(EngineEvalStatsTest, SelectCountsExactlyAndEngineSkipsPredicates) {
  PlanPtr plan =
      Plan::Select(Plan::Scan(&ex_->relation),
                   Expr::Eq(ex_->jobtype, Value::Str("secretary")));
  EvalStats naive = NaiveStats(plan);
  EXPECT_EQ(naive.tuples_scanned, 3u);
  EXPECT_EQ(naive.predicate_evals, 3u);   // one Kleene eval per tuple
  EXPECT_EQ(naive.tuples_emitted, 4u);    // 3 from the scan + 1 selected
  EXPECT_EQ(naive.join_probes, 0u);

  EvalStats engine = EngineStats(plan);
  EXPECT_EQ(engine.predicate_evals, 0u);  // resolved via the value index
  EXPECT_LT(engine.predicate_evals, naive.predicate_evals);
  EXPECT_EQ(engine.tuples_scanned, 1u);   // only the matching cluster
  EXPECT_EQ(engine.tuples_emitted, 1u);
}

TEST_F(EngineEvalStatsTest, ProjectAndUnionCountExactly) {
  EvalStats proj = NaiveStats(
      Plan::Project(Plan::Scan(&ex_->relation), AttrSet{ex_->jobtype}));
  EXPECT_EQ(proj.tuples_scanned, 3u);
  EXPECT_EQ(proj.tuples_emitted, 6u);  // 3 scanned + 3 distinct projections

  EvalStats uni = NaiveStats(
      Plan::Union(Plan::Scan(&ex_->relation), Plan::Scan(&ex_->relation)));
  EXPECT_EQ(uni.tuples_scanned, 6u);
  EXPECT_EQ(uni.tuples_emitted, 9u);   // 3 + 3 from the scans + 3 deduped
}

TEST_F(EngineEvalStatsTest, NaturalJoinCountsExactlyAndEngineProbesFewer) {
  FlexibleRelation bonus = FlexibleRelation::Derived("bonus", DependencySet());
  AttrId amount = ex_->catalog.Intern("bonus-amount");
  Tuple b;
  b.Set(ex_->jobtype, Value::Str("salesman"));
  b.Set(amount, Value::Int(500));
  bonus.InsertUnchecked(b);

  PlanPtr plan =
      Plan::NaturalJoin(Plan::Scan(&ex_->relation), Plan::Scan(&bonus));
  EvalStats naive = NaiveStats(plan);
  EXPECT_EQ(naive.join_probes, 3u);       // 3 × 1 nested-loop pairs
  EXPECT_EQ(naive.tuples_emitted, 5u);    // 3 + 1 scans + 1 joined
  EXPECT_EQ(naive.intermediate_tuples, 0u);

  EvalStats engine = EngineStats(plan);
  EXPECT_EQ(engine.join_probes, 1u);      // only the compatible pair
  EXPECT_LT(engine.join_probes, naive.join_probes);
}

TEST_F(EngineEvalStatsTest, MultiwayJoinSplitsIntermediateFromFinal) {
  FlexibleRelation r1 = FlexibleRelation::Derived("r1", DependencySet());
  FlexibleRelation r2 = FlexibleRelation::Derived("r2", DependencySet());
  FlexibleRelation r3 = FlexibleRelation::Derived("r3", DependencySet());
  AttrId k = ex_->catalog.Intern("k");
  AttrId p = ex_->catalog.Intern("p");
  AttrId q = ex_->catalog.Intern("q");
  for (int i = 0; i < 3; ++i) {
    Tuple a;
    a.Set(k, Value::Int(i));
    r1.InsertUnchecked(a);
    Tuple b;
    b.Set(k, Value::Int(i));
    b.Set(p, Value::Int(i * 10));
    r2.InsertUnchecked(b);
  }
  Tuple c;
  c.Set(k, Value::Int(1));
  c.Set(q, Value::Int(99));
  r3.InsertUnchecked(c);

  PlanPtr plan = Plan::MultiwayJoin(
      {Plan::Scan(&r1), Plan::Scan(&r2), Plan::Scan(&r3)});
  EvalStats naive = NaiveStats(plan);
  // Naive fold order: (r1 ⋈ r2) is 9 probes emitting 3 intermediates, the
  // final (⋈ r3) is 3 probes emitting 1 tuple. Before the counter split the
  // 3 intermediates were conflated into tuples_emitted.
  EXPECT_EQ(naive.join_probes, 12u);
  EXPECT_EQ(naive.intermediate_tuples, 3u);
  EXPECT_EQ(naive.tuples_emitted, 8u);  // 3 + 3 + 1 scans + 1 final join row
  EXPECT_EQ(naive.tuples_scanned, 7u);

  // The engine starts from the 1-row leg and probes only compatible pairs.
  EvalStats engine = EngineStats(plan);
  EXPECT_LT(engine.join_probes, naive.join_probes);
  EXPECT_EQ(engine.join_probes, 2u);
  EXPECT_EQ(engine.intermediate_tuples, 1u);
  EXPECT_EQ(engine.tuples_emitted, 8u);  // identical final output accounting
}

TEST_F(EngineEvalStatsTest, RestoreSelectPlanDoesStrictlyLessEngineWork) {
  // The E5 shape: σ[jobtype](∪ᵢ employee ⋈ bonusᵢ)-style join-heavy plan.
  FlexibleRelation bonus = FlexibleRelation::Derived("bonus", DependencySet());
  AttrId amount = ex_->catalog.Intern("bonus-amount");
  for (int i = 0; i < 3; ++i) {
    Tuple b;
    b.Set(ex_->salary,
          Value::Int(i == 0 ? 4700 : (i == 1 ? 6200 : 5400)));
    b.Set(amount, Value::Int(100 * (i + 1)));
    bonus.InsertUnchecked(b);
  }
  PlanPtr plan = Plan::Select(
      Plan::NaturalJoin(Plan::Scan(&ex_->relation), Plan::Scan(&bonus)),
      Expr::Eq(ex_->jobtype, Value::Str("salesman")));

  EvalStats naive, engine;
  auto a = Evaluate(plan, NaiveOptions(), &naive);
  auto b2 = Evaluate(plan, EvalOptions(), &engine);
  ASSERT_TRUE(a.ok() && b2.ok());
  EXPECT_EQ(SortedRows(a.value()), SortedRows(b2.value()));
  EXPECT_LT(engine.join_probes, naive.join_probes);
}

// ---------------------------------------------------------------------------
// Value-index edge cases and the cache-invalidation contract.
// ---------------------------------------------------------------------------

TEST(EngineEvalIndexTest, NullLiteralsAndNullValuesFollowKleeneSemantics) {
  FlexibleRelation rel = FlexibleRelation::Derived("r", DependencySet());
  AttrCatalog catalog;
  AttrId a = catalog.Intern("a");
  AttrId b = catalog.Intern("b");
  Tuple t1;
  t1.Set(a, Value::Int(1));
  t1.Set(b, Value::Str("x"));
  rel.InsertUnchecked(t1);
  Tuple t2;
  t2.Set(a, Value::Null());  // explicit null: defined but Unknown to compare
  rel.InsertUnchecked(t2);
  Tuple t3;  // lacks `a` entirely
  t3.Set(b, Value::Str("y"));
  rel.InsertUnchecked(t3);

  for (const ExprPtr& formula :
       {Expr::Eq(a, Value::Int(1)), Expr::Eq(a, Value::Null()),
        Expr::In(a, {Value::Int(1), Value::Null(), Value::Int(7)})}) {
    PlanPtr plan = Plan::Select(Plan::Scan(&rel), formula);
    auto naive = Evaluate(plan, NaiveOptions());
    auto engine = Evaluate(plan, EvalOptions());
    ASSERT_TRUE(naive.ok() && engine.ok());
    // Not just set-equal: the index path must also preserve scan order.
    EXPECT_EQ(naive.value().rows(), engine.value().rows());
  }
}

// Mutations must be visible to the next evaluation — historically by
// dropping the cache, now by patching it in place (the soak in
// engine_incremental_test.cc covers the structural details).
TEST(EngineEvalIndexTest, InsertAndUpdateKeepTheAttachedCacheCoherent) {
  FlexibleRelation rel = FlexibleRelation::Derived("r", DependencySet());
  AttrCatalog catalog;
  AttrId a = catalog.Intern("a");
  for (int i = 0; i < 4; ++i) {
    Tuple t;
    t.Set(a, Value::Int(i % 2));
    rel.InsertUnchecked(t);
  }
  PlanPtr plan = Plan::Select(Plan::Scan(&rel), Expr::Eq(a, Value::Int(0)));
  auto first = Evaluate(plan);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().size(), 2u);

  // Insert after the cache was built: the next evaluation must see the row.
  Tuple extra;
  extra.Set(a, Value::Int(0));
  extra.Set(catalog.Intern("b"), Value::Int(42));
  rel.InsertUnchecked(extra);
  auto second = Evaluate(plan);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().size(), 3u);

  // Update flips a row out of the selected cluster.
  ASSERT_TRUE(rel.Update(0, a, Value::Int(1)).ok());
  auto third = Evaluate(plan);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value().size(), 2u);
}

// ---------------------------------------------------------------------------
// EXPLAIN: the attributed operator tree, and the drift-proofing identity
// between the report's join steps and the EvalStats aggregation.
// ---------------------------------------------------------------------------

struct ThreeLegSetup {
  FlexibleRelation r1 = FlexibleRelation::Derived("r1", DependencySet());
  FlexibleRelation r2 = FlexibleRelation::Derived("r2", DependencySet());
  FlexibleRelation r3 = FlexibleRelation::Derived("r3", DependencySet());
};

// r1(k) and r2(k, p) with k in {0,1,2}; r3(k, q) with the single row k=1 —
// the engine order must seed from r3 and the join yields exactly one row.
ThreeLegSetup MakeThreeLegJoin(AttrCatalog* catalog) {
  ThreeLegSetup s;
  AttrId k = catalog->Intern("k");
  AttrId p = catalog->Intern("p");
  AttrId q = catalog->Intern("q");
  for (int i = 0; i < 3; ++i) {
    Tuple a;
    a.Set(k, Value::Int(i));
    s.r1.InsertUnchecked(a);
    Tuple b;
    b.Set(k, Value::Int(i));
    b.Set(p, Value::Int(i * 10));
    s.r2.InsertUnchecked(b);
  }
  Tuple c;
  c.Set(k, Value::Int(1));
  c.Set(q, Value::Int(99));
  s.r3.InsertUnchecked(c);
  return s;
}

TEST(EngineExplainTest, ThreeLegJoinReportsOrderWithEstimatesAndActuals) {
  AttrCatalog catalog;
  ThreeLegSetup s = MakeThreeLegJoin(&catalog);
  PlanPtr plan = Plan::MultiwayJoin(
      {Plan::Scan(&s.r1), Plan::Scan(&s.r2), Plan::Scan(&s.r3)});

  auto report = Explain(plan);
  ASSERT_TRUE(report.ok()) << report.status();
  const ExplainNode& root = report.value().root;
  EXPECT_EQ(root.op, "multiway_join[ordered]");
  ASSERT_EQ(root.children.size(), 3u);  // one attributed subtree per leg

  // One step per leg: the seed (the smallest leg, r3) plus two folds, each
  // naming the chosen leg with the estimate that picked it and the rows
  // the fold actually produced.
  ASSERT_EQ(root.join_steps.size(), 3u);
  EXPECT_EQ(root.join_steps[0].leg_name, "r3");
  EXPECT_EQ(root.join_steps[0].actual_rows, 1u);
  EXPECT_EQ(root.join_steps[0].est_rows, 1.0);  // the seed's own size
  for (const ExplainJoinStep& step : root.join_steps) {
    EXPECT_FALSE(step.leg_name.empty());
    EXPECT_GT(step.est_rows, 0.0);
  }

  // The report describes exactly the work Evaluate() does: the final step
  // and the root both land on the evaluated result size.
  auto evaluated = Evaluate(plan);
  ASSERT_TRUE(evaluated.ok());
  EXPECT_EQ(root.join_steps.back().actual_rows, evaluated.value().size());
  EXPECT_EQ(root.actual_rows, evaluated.value().size());

  // Drift-proofing identity: the non-final fold steps (everything between
  // the seed and the last fold) sum to the run's intermediate tuples.
  size_t intermediates = 0;
  for (size_t i = 1; i + 1 < root.join_steps.size(); ++i) {
    intermediates += root.join_steps[i].actual_rows;
  }
  EXPECT_EQ(intermediates, report.value().stats.intermediate_tuples);

  // The rendering names the chosen order with est/actual per leg.
  const std::string text = report.value().ToString();
  EXPECT_NE(text.find("multiway_join[ordered]"), std::string::npos) << text;
  EXPECT_NE(text.find("order: leg2(r3) est=1.0 actual=1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("est="), std::string::npos);
  EXPECT_NE(text.find("actual="), std::string::npos);
  EXPECT_NE(text.find("stats: scanned="), std::string::npos);
}

TEST(EngineExplainTest, IndexedSelectIsAttributed) {
  auto ex = MakeJobtypeExample();
  ASSERT_TRUE(ex.ok()) << ex.status();
  PlanPtr plan =
      Plan::Select(Plan::Scan(&ex.value()->relation),
                   Expr::Eq(ex.value()->jobtype, Value::Str("secretary")));
  auto report = Explain(plan);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().root.op, "select[index]");
  EXPECT_TRUE(report.value().root.index_hit);
  EXPECT_EQ(report.value().root.actual_rows, 1u);
  // The indexed path never evaluates its scan input — the value index
  // answers directly — so the report truthfully has no scan child.
  EXPECT_TRUE(report.value().root.children.empty());
}

// Satellite fix: the registry aggregates are incremented by the same
// single-point helpers that bump EvalStats, so the two channels cannot
// drift. Asserted per field, plus the probe split (nested + hashed ==
// join_probes).
TEST(EngineExplainTest, TelemetryAggregatesMatchEvalStats) {
  AttrCatalog catalog;
  ThreeLegSetup s = MakeThreeLegJoin(&catalog);
  // A non-indexable selection on top keeps predicate_evals non-zero even
  // on the engine path; the multiway join below it covers scans, folds,
  // and intermediates.
  PlanPtr plan = Plan::Select(
      Plan::MultiwayJoin(
          {Plan::Scan(&s.r1), Plan::Scan(&s.r2), Plan::Scan(&s.r3)}),
      Expr::Compare(catalog.Intern("p"), CmpOp::kGe, Value::Int(0)));

  telemetry::Enable();
  telemetry::Registry::Global().Reset();
  EvalStats stats;
  auto out = Evaluate(plan, EvalOptions(), &stats);
  auto& registry = telemetry::Registry::Global();
  const uint64_t scanned = registry.CounterValue("eval.tuples_scanned");
  const uint64_t emitted = registry.CounterValue("eval.tuples_emitted");
  const uint64_t mid = registry.CounterValue("eval.intermediate_tuples");
  const uint64_t preds = registry.CounterValue("eval.predicate_evals");
  const uint64_t probes =
      registry.CounterValue("eval.join.nested_probes") +
      registry.CounterValue("eval.join.hash_probes");
  telemetry::Disable();
  registry.Reset();

  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_GT(stats.predicate_evals, 0u);
  EXPECT_GT(stats.intermediate_tuples, 0u);
  EXPECT_EQ(scanned, stats.tuples_scanned);
  EXPECT_EQ(emitted, stats.tuples_emitted);
  EXPECT_EQ(mid, stats.intermediate_tuples);
  EXPECT_EQ(preds, stats.predicate_evals);
  EXPECT_EQ(probes, stats.join_probes);
}

TEST(EngineEvalIndexTest, CopiesAndMovesStartCacheLess) {
  FlexibleRelation rel = FlexibleRelation::Derived("r", DependencySet());
  AttrCatalog catalog;
  AttrId a = catalog.Intern("a");
  Tuple t;
  t.Set(a, Value::Int(7));
  rel.InsertUnchecked(t);
  (void)rel.pli_cache();  // force the cache into existence

  FlexibleRelation copy = rel;  // must not alias rel's row vector
  Tuple u;
  u.Set(a, Value::Int(8));
  copy.InsertUnchecked(u);
  PlanPtr plan = Plan::Select(Plan::Scan(&copy), Expr::Eq(a, Value::Int(8)));
  auto out = Evaluate(plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 1u);

  FlexibleRelation moved = std::move(copy);
  auto out2 = Evaluate(Plan::Select(Plan::Scan(&moved),
                                    Expr::Eq(a, Value::Int(8))));
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2.value().size(), 1u);
}

}  // namespace
}  // namespace flexrel
