#include "query/query_parser.h"

#include <gtest/gtest.h>

#include "algebra/evaluate.h"
#include "optimizer/guard_analysis.h"
#include "workload/paper_examples.h"

namespace flexrel {
namespace {

class QueryParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ex = MakeJobtypeExample();
    ASSERT_TRUE(ex.ok()) << ex.status();
    ex_ = std::move(ex).value();
  }
  std::unique_ptr<JobtypeExample> ex_;
};

TEST_F(QueryParserTest, ComparisonsAndLiterals) {
  auto e = ParseFormula(&ex_->catalog, "salary > 5000");
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ(e.value()->kind(), ExprKind::kCompare);
  EXPECT_EQ(e.value()->op(), CmpOp::kGt);
  EXPECT_EQ(e.value()->literal(), Value::Int(5000));

  EXPECT_TRUE(ParseFormula(&ex_->catalog, "salary <= -3").ok());
  EXPECT_TRUE(ParseFormula(&ex_->catalog, "salary <> 0").ok());
  auto real = ParseFormula(&ex_->catalog, "salary = 1.5");
  ASSERT_TRUE(real.ok());
  EXPECT_EQ(real.value()->literal().type(), ValueType::kDouble);
  auto str = ParseFormula(&ex_->catalog, "jobtype = 'secretary'");
  ASSERT_TRUE(str.ok());
  EXPECT_EQ(str.value()->literal(), Value::Str("secretary"));
  auto boolean = ParseFormula(&ex_->catalog, "flag = true");
  ASSERT_TRUE(boolean.ok());
  EXPECT_EQ(boolean.value()->literal(), Value::Bool(true));
}

TEST_F(QueryParserTest, Example4FormulaParsesAndEvaluates) {
  // The paper's Example-4 selection plus the type guard, in concrete syntax.
  auto e = ParseFormula(
      &ex_->catalog,
      "salary > 5000 AND jobtype = 'secretary' AND EXISTS(typing-speed)");
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_TRUE(e.value()->Accepts(ex_->MakeSecretary(6000, 300)));
  EXPECT_FALSE(e.value()->Accepts(ex_->MakeSecretary(4000, 300)));
  EXPECT_FALSE(e.value()->Accepts(ex_->MakeSalesman(9000, 5)));
  // And the optimizer treats the parsed guard exactly like a built one.
  GuardRewrite r = EliminateRedundantGuards(e.value(), {ex_->ead});
  EXPECT_EQ(r.guards_eliminated, 1u);
}

TEST_F(QueryParserTest, PrecedenceAndParens) {
  // AND binds tighter than OR.
  auto e = ParseFormula(&ex_->catalog,
                        "salary > 1 OR salary < -1 AND jobtype = 'salesman'");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->kind(), ExprKind::kOr);
  auto p = ParseFormula(
      &ex_->catalog,
      "(salary > 1 OR salary < -1) AND NOT jobtype = 'salesman'");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value()->kind(), ExprKind::kAnd);
}

TEST_F(QueryParserTest, InList) {
  auto e = ParseFormula(&ex_->catalog,
                        "jobtype IN ('secretary', 'salesman')");
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ(e.value()->kind(), ExprKind::kIn);
  EXPECT_EQ(e.value()->values().size(), 2u);
  EXPECT_TRUE(e.value()->Accepts(ex_->MakeSalesman(1, 2)));
  EXPECT_FALSE(e.value()->Accepts(ex_->MakeEngineer(1, 2)));
}

TEST_F(QueryParserTest, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(ParseFormula(&ex_->catalog,
                           "salary > 1 and jobtype = 'x' or exists(salary)")
                  .ok());
  // Identifiers are not keywords: an attribute named ANDroid parses.
  EXPECT_TRUE(ParseFormula(&ex_->catalog, "ANDroid = 1").ok());
}

TEST_F(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseFormula(&ex_->catalog, "").ok());
  EXPECT_FALSE(ParseFormula(&ex_->catalog, "salary >").ok());
  EXPECT_FALSE(ParseFormula(&ex_->catalog, "salary 5").ok());
  EXPECT_FALSE(ParseFormula(&ex_->catalog, "(salary > 1").ok());
  EXPECT_FALSE(ParseFormula(&ex_->catalog, "salary = 'unterminated").ok());
  EXPECT_FALSE(ParseFormula(&ex_->catalog, "salary > 1 garbage").ok());
  EXPECT_FALSE(ParseFormula(&ex_->catalog, "EXISTS salary").ok());
  EXPECT_FALSE(ParseFormula(&ex_->catalog, "jobtype IN ()").ok());
}

TEST_F(QueryParserTest, SelectStarWithWhere) {
  auto q = ParseQuery(&ex_->catalog,
                      "SELECT * WHERE jobtype = 'secretary'");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q.value().select_all);
  auto out = Evaluate(BuildQueryPlan(q.value(), &ex_->relation));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 1u);
  EXPECT_TRUE(out.value().row(0).Has(ex_->typing_speed));
}

TEST_F(QueryParserTest, ProjectionList) {
  auto q = ParseQuery(&ex_->catalog,
                      "SELECT salary, jobtype WHERE salary >= 5000");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_FALSE(q.value().select_all);
  EXPECT_EQ(q.value().projection,
            (AttrSet{ex_->salary, ex_->jobtype}));
  auto out = Evaluate(BuildQueryPlan(q.value(), &ex_->relation));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 2u);  // engineer + salesman
  for (const Tuple& t : out.value().rows()) {
    EXPECT_EQ(t.attrs(), (AttrSet{ex_->salary, ex_->jobtype}));
  }
  // Theorem 4.3 rule (2) applies to the parsed pipeline, too.
  EXPECT_TRUE(out.value().deps().ads().empty() ||
              out.value().deps().ads()[0].lhs.IsSubsetOf(
                  q.value().projection));
}

TEST_F(QueryParserTest, QueryWithoutWhere) {
  auto q = ParseQuery(&ex_->catalog, "SELECT *");
  ASSERT_TRUE(q.ok());
  auto out = Evaluate(BuildQueryPlan(q.value(), &ex_->relation));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), ex_->relation.size());
}

TEST_F(QueryParserTest, QueryErrors) {
  EXPECT_FALSE(ParseQuery(&ex_->catalog, "FETCH *").ok());
  EXPECT_FALSE(ParseQuery(&ex_->catalog, "SELECT").ok());
  EXPECT_FALSE(ParseQuery(&ex_->catalog, "SELECT * WHERE").ok());
  EXPECT_FALSE(ParseQuery(&ex_->catalog, "SELECT * WHERE x = 1 extra").ok());
}

}  // namespace
}  // namespace flexrel
