#include "core/explicit_ad.h"

#include <gtest/gtest.h>

#include "workload/paper_examples.h"

namespace flexrel {
namespace {

class ExplicitAdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ex = MakeJobtypeExample();
    ASSERT_TRUE(ex.ok()) << ex.status();
    ex_ = std::move(ex).value();
  }
  std::unique_ptr<JobtypeExample> ex_;
};

TEST_F(ExplicitAdTest, ConditionSetBasics) {
  ConditionSet c = ConditionSet::Single(5, Value::Str("secretary"));
  EXPECT_EQ(c.base(), AttrSet{5});
  EXPECT_EQ(c.size(), 1u);
  Tuple match;
  match.Set(5, Value::Str("secretary"));
  match.Set(9, Value::Int(1));
  EXPECT_TRUE(c.Matches(match));
  Tuple wrong;
  wrong.Set(5, Value::Str("salesman"));
  EXPECT_FALSE(c.Matches(wrong));
  EXPECT_FALSE(c.Matches(Tuple()));  // not defined on the base
}

TEST_F(ExplicitAdTest, ConditionSetValidatesValueShapes) {
  Tuple over_wrong_attrs;
  over_wrong_attrs.Set(1, Value::Int(1));
  EXPECT_FALSE(ConditionSet::Make(AttrSet{0}, {over_wrong_attrs}).ok());
}

TEST_F(ExplicitAdTest, ConditionSetAlgebra) {
  AttrSet base{0};
  auto mk = [&](std::vector<int64_t> vals) {
    std::vector<Tuple> ts;
    for (int64_t v : vals) {
      Tuple t;
      t.Set(0, Value::Int(v));
      ts.push_back(std::move(t));
    }
    return ConditionSet::Make(base, std::move(ts)).value();
  };
  ConditionSet a = mk({1, 2, 3});
  ConditionSet b = mk({2, 3, 4});
  EXPECT_EQ(a.Intersect(b).value().size(), 2u);
  EXPECT_EQ(a.Minus(b).value().size(), 1u);
  EXPECT_EQ(a.UnionWith(b).value().size(), 4u);
  EXPECT_FALSE(a.DisjointFrom(b));
  EXPECT_TRUE(mk({1}).DisjointFrom(mk({2})));
  // Mismatched bases are rejected.
  ConditionSet other = ConditionSet::Single(1, Value::Int(1));
  EXPECT_FALSE(a.Intersect(other).ok());
}

TEST_F(ExplicitAdTest, MakeRejectsOverlappingConditions) {
  AttrSet x{0};
  AttrSet y{1};
  EadVariant v1{ConditionSet::Single(0, Value::Int(1)), AttrSet{1}};
  EadVariant v2{ConditionSet::Single(0, Value::Int(1)), AttrSet()};
  EXPECT_FALSE(ExplicitAD::Make(x, y, {v1, v2}).ok());
}

TEST_F(ExplicitAdTest, MakeRejectsVariantOutsideDetermined) {
  AttrSet x{0};
  EadVariant v{ConditionSet::Single(0, Value::Int(1)), AttrSet{2}};
  EXPECT_FALSE(ExplicitAD::Make(x, AttrSet{1}, {v}).ok());
}

// ---- Example 2: the jobtype EAD --------------------------------------------

TEST_F(ExplicitAdTest, Example2AcceptsWellTypedTuples) {
  const AttrCatalog& cat = ex_->catalog;
  EXPECT_TRUE(ex_->ead.CheckTuple(ex_->MakeSecretary(4800, 300), cat).ok());
  EXPECT_TRUE(ex_->ead.CheckTuple(ex_->MakeEngineer(6000, 2), cat).ok());
  EXPECT_TRUE(ex_->ead.CheckTuple(ex_->MakeSalesman(5000, 10), cat).ok());
}

TEST_F(ExplicitAdTest, Example2RejectsTheMistypedSalesman) {
  // "< .. jobtype: 'salesman', typing-speed: high, foreign-languages: .. >"
  Status s = ex_->ead.CheckTuple(ex_->MakeMistypedSalesman(), ex_->catalog);
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  EXPECT_NE(s.message().find("salesman"), std::string::npos);
}

TEST_F(ExplicitAdTest, TupleWithoutDeterminantMustLackAllOfY) {
  Tuple t;
  t.Set(ex_->salary, Value::Int(1000));
  EXPECT_TRUE(ex_->ead.CheckTuple(t, ex_->catalog).ok());
  t.Set(ex_->products, Value::Int(1));
  EXPECT_FALSE(ex_->ead.CheckTuple(t, ex_->catalog).ok());
}

TEST_F(ExplicitAdTest, UnmatchedDeterminantValueMustLackAllOfY) {
  Tuple t;
  t.Set(ex_->jobtype, Value::Str("janitor"));  // no variant matches
  t.Set(ex_->salary, Value::Int(1000));
  EXPECT_TRUE(ex_->ead.CheckTuple(t, ex_->catalog).ok());
  t.Set(ex_->typing_speed, Value::Int(100));
  EXPECT_FALSE(ex_->ead.CheckTuple(t, ex_->catalog).ok());
}

TEST_F(ExplicitAdTest, MatchVariantAndRequiredAttrs) {
  Tuple t = ex_->MakeEngineer(6000, 2);
  EXPECT_EQ(ex_->ead.MatchVariant(t), 1);
  EXPECT_EQ(ex_->ead.RequiredAttrs(t),
            (AttrSet{ex_->products, ex_->programming_languages}));
  EXPECT_EQ(ex_->ead.MatchVariant(Tuple()), -1);
  EXPECT_EQ(ex_->ead.RequiredAttrs(Tuple()), AttrSet());
}

TEST_F(ExplicitAdTest, SatisfiesOverInstance) {
  std::vector<Tuple> good = {ex_->MakeSecretary(1, 2),
                             ex_->MakeSalesman(3, 4)};
  EXPECT_TRUE(ex_->ead.Satisfies(good));
  std::vector<Tuple> bad = good;
  bad.push_back(ex_->MakeMistypedSalesman());
  EXPECT_FALSE(ex_->ead.Satisfies(bad));
}

// ---- EAD-level rule algebra (Section 4.1's remark) --------------------------

TEST_F(ExplicitAdTest, ProjectRhsKeepsConditions) {
  // Example 4 step 1: project the right side onto {typing-speed}.
  ExplicitAD projected = ex_->ead.ProjectRhs(AttrSet{ex_->typing_speed});
  EXPECT_EQ(projected.determined(), AttrSet{ex_->typing_speed});
  // The secretary variant keeps typing-speed, the others become empty.
  Tuple sec = ex_->MakeSecretary(1, 2);
  EXPECT_EQ(projected.RequiredAttrs(sec), AttrSet{ex_->typing_speed});
  Tuple sales = ex_->MakeSalesman(1, 2);
  EXPECT_EQ(projected.RequiredAttrs(sales), AttrSet());
  // Projection is sound: every tuple satisfying the original satisfies it.
  EXPECT_TRUE(projected.CheckTuple(sec, ex_->catalog).ok());
  EXPECT_TRUE(projected.CheckTuple(sales, ex_->catalog).ok());
}

TEST_F(ExplicitAdTest, AugmentLhsEvaluatesByProjection) {
  // Example 4 step 2: augment the left side with salary.
  ExplicitAD augmented = ex_->ead.AugmentLhs(AttrSet{ex_->salary});
  EXPECT_EQ(augmented.determinant(), (AttrSet{ex_->jobtype, ex_->salary}));
  EXPECT_EQ(augmented.condition_base(), AttrSet{ex_->jobtype});
  Tuple sec = ex_->MakeSecretary(5500, 250);
  EXPECT_EQ(augmented.MatchVariant(sec), 0);
  EXPECT_TRUE(augmented.CheckTuple(sec, ex_->catalog).ok());
  // A tuple lacking salary is not defined on the augmented determinant, so
  // it matches no variant — and must then carry none of Y. (Augmentation is
  // a *weaker* statement; this is exactly rule A4's direction.)
  Tuple no_salary;
  no_salary.Set(ex_->jobtype, Value::Str("secretary"));
  EXPECT_EQ(augmented.MatchVariant(no_salary), -1);
}

TEST_F(ExplicitAdTest, AdditivityFullPartitionIsSound) {
  // Two EADs over the same determinant with different determined sets.
  AttrSet x{0};
  auto cond = [&](int64_t v) { return ConditionSet::Single(0, Value::Int(v)); };
  ExplicitAD e1 = ExplicitAD::Make(x, AttrSet{1},
                                   {EadVariant{cond(1), AttrSet{1}},
                                    EadVariant{cond(2), AttrSet()}})
                      .value();
  ExplicitAD e2 = ExplicitAD::Make(x, AttrSet{2},
                                   {EadVariant{cond(2), AttrSet{2}},
                                    EadVariant{cond(3), AttrSet{2}}})
                      .value();
  ExplicitAD sum = ExplicitAD::Add(e1, e2).value();
  EXPECT_EQ(sum.determined(), (AttrSet{1, 2}));

  // A tuple with X=1 satisfies e1 (carries {1}) and e2 (carries nothing of
  // {2}); the sound combined EAD must accept it. The paper's literal
  // pairwise-intersection rule would map X=1 to "no variant" and demand the
  // tuple carry nothing — i.e. it would *reject* this legal tuple.
  Tuple t1;
  t1.Set(0, Value::Int(1));
  t1.Set(1, Value::Int(99));
  AttrCatalog cat;
  cat.Intern("X");
  cat.Intern("P");
  cat.Intern("Q");
  EXPECT_TRUE(e1.CheckTuple(t1, cat).ok());
  EXPECT_TRUE(e2.CheckTuple(t1, cat).ok());
  EXPECT_TRUE(sum.CheckTuple(t1, cat).ok()) << sum.ToString(cat);

  // X=2: e1 demands nothing, e2 demands {2}.
  Tuple t2;
  t2.Set(0, Value::Int(2));
  t2.Set(2, Value::Int(5));
  EXPECT_TRUE(sum.CheckTuple(t2, cat).ok());

  // X=3: e2 demands {2}; carrying attr 1 as well must fail.
  Tuple t3;
  t3.Set(0, Value::Int(3));
  t3.Set(1, Value::Int(5));
  t3.Set(2, Value::Int(5));
  EXPECT_FALSE(sum.CheckTuple(t3, cat).ok());
}

TEST_F(ExplicitAdTest, AdditivityPropertySweep) {
  // For every determinant value 0..5, any tuple satisfying both inputs
  // satisfies the sum, and vice versa.
  AttrSet x{0};
  auto cond = [&](std::vector<int64_t> vals) {
    std::vector<Tuple> ts;
    for (int64_t v : vals) {
      Tuple t;
      t.Set(0, Value::Int(v));
      ts.push_back(std::move(t));
    }
    return ConditionSet::Make(x, std::move(ts)).value();
  };
  ExplicitAD e1 = ExplicitAD::Make(x, AttrSet{1},
                                   {EadVariant{cond({0, 1}), AttrSet{1}}})
                      .value();
  ExplicitAD e2 = ExplicitAD::Make(x, AttrSet{2},
                                   {EadVariant{cond({1, 2}), AttrSet{2}}})
                      .value();
  ExplicitAD sum = ExplicitAD::Add(e1, e2).value();
  AttrCatalog cat;
  cat.Intern("X");
  cat.Intern("P");
  cat.Intern("Q");
  for (int64_t xv = 0; xv <= 5; ++xv) {
    for (int mask = 0; mask < 4; ++mask) {
      Tuple t;
      t.Set(0, Value::Int(xv));
      if (mask & 1) t.Set(1, Value::Int(7));
      if (mask & 2) t.Set(2, Value::Int(7));
      bool both = e1.CheckTuple(t, cat).ok() && e2.CheckTuple(t, cat).ok();
      bool combined = sum.CheckTuple(t, cat).ok();
      EXPECT_EQ(both, combined)
          << "x=" << xv << " mask=" << mask << " sum=" << sum.ToString(cat);
    }
  }
}

// EAD-level projectivity and augmentation are *sound*: any tuple satisfying
// the original EAD satisfies every projected / augmented form. Swept over
// random tuples of all shapes.
class EadRuleSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EadRuleSoundness, ProjectAndAugmentPreserveSatisfaction) {
  auto ex = MakeJobtypeExample();
  ASSERT_TRUE(ex.ok());
  const JobtypeExample& world = *ex.value();
  Rng rng(GetParam());

  // Random subset of Y for projection, random extra attrs for augmentation.
  std::vector<AttrId> y_ids(world.ead.determined().ids());
  std::vector<AttrId> keep_ids;
  for (AttrId a : y_ids) {
    if (rng.Bernoulli(0.5)) keep_ids.push_back(a);
  }
  ExplicitAD projected = world.ead.ProjectRhs(AttrSet::FromIds(keep_ids));
  ExplicitAD augmented = world.ead.AugmentLhs(AttrSet::Of(world.salary));

  // Random tuples: valid variants, mistyped ones, determinant-free ones.
  for (int trial = 0; trial < 40; ++trial) {
    Tuple t;
    switch (rng.Index(5)) {
      case 0:
        t = world.MakeSecretary(rng.UniformInt(0, 9999), 1);
        break;
      case 1:
        t = world.MakeEngineer(rng.UniformInt(0, 9999), 1);
        break;
      case 2:
        t = world.MakeSalesman(rng.UniformInt(0, 9999), 1);
        break;
      case 3:
        t = world.MakeMistypedSalesman();
        break;
      default:
        t.Set(world.salary, Value::Int(1));
        break;
    }
    if (world.ead.CheckTuple(t, world.catalog).ok()) {
      EXPECT_TRUE(projected.CheckTuple(t, world.catalog).ok())
          << "projectivity unsound on " << t.ToString(world.catalog);
      EXPECT_TRUE(augmented.CheckTuple(t, world.catalog).ok())
          << "augmentation unsound on " << t.ToString(world.catalog);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EadRuleSoundness,
                         ::testing::Range<uint64_t>(1, 17));

// ---- ER classifications ------------------------------------------------------

TEST_F(ExplicitAdTest, JobtypeSpecializationIsOverlappingNotDisjoint) {
  // products appears in both the engineer and the salesman variant.
  EXPECT_FALSE(ex_->ead.IsDisjointSpecialization());
}

TEST_F(ExplicitAdTest, TotalityOverEnumeratedDomain) {
  auto total = ex_->ead.IsTotalSpecialization(ex_->domains);
  ASSERT_TRUE(total.ok()) << total.status();
  // dom(jobtype) = exactly the three variant values: total.
  EXPECT_TRUE(total.value());

  // Enlarging the domain makes it partial.
  auto domains = ex_->domains;
  for (auto& [attr, domain] : domains) {
    if (attr == ex_->jobtype) {
      domain = Domain::Enumerated({Value::Str("secretary"),
                                   Value::Str("software engineer"),
                                   Value::Str("salesman"),
                                   Value::Str("janitor")})
                   .value();
    }
  }
  auto partial = ex_->ead.IsTotalSpecialization(domains);
  ASSERT_TRUE(partial.ok());
  EXPECT_FALSE(partial.value());
}

TEST_F(ExplicitAdTest, TotalityUndecidableOverInfiniteDomain) {
  std::vector<std::pair<AttrId, Domain>> domains = {
      {ex_->jobtype, Domain::Any(ValueType::kString)}};
  EXPECT_EQ(ex_->ead.IsTotalSpecialization(domains).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(ExplicitAdTest, DisjointSpecializationDetected) {
  AttrSet x{0};
  ExplicitAD disjoint =
      ExplicitAD::Make(x, AttrSet{1, 2},
                       {EadVariant{ConditionSet::Single(0, Value::Int(1)),
                                   AttrSet{1}},
                        EadVariant{ConditionSet::Single(0, Value::Int(2)),
                                   AttrSet{2}}})
          .value();
  EXPECT_TRUE(disjoint.IsDisjointSpecialization());
}

}  // namespace
}  // namespace flexrel
