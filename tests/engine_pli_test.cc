#include "engine/pli.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "engine/pli_cache.h"
#include "engine/validator.h"
#include "util/rng.h"

namespace flexrel {
namespace {

// Random heterogeneous instance: each row carries each of `num_attrs`
// attributes with probability `density`, values in [0, spread].
std::vector<Tuple> RandomRows(Rng* rng, size_t n, AttrId num_attrs,
                              double density, int64_t spread,
                              double null_fraction = 0.0) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Tuple t;
    for (AttrId a = 0; a < num_attrs; ++a) {
      if (!rng->Bernoulli(density)) continue;
      if (null_fraction > 0 && rng->Bernoulli(null_fraction)) {
        t.Set(a, Value::Null());
      } else {
        t.Set(a, Value::Int(rng->UniformInt(0, spread)));
      }
    }
    rows.push_back(std::move(t));
  }
  return rows;
}

TEST(PliTest, SingleAttributeClusters) {
  std::vector<Tuple> rows;
  for (int v : {1, 2, 1, 3, 2, 1}) {
    Tuple t;
    t.Set(0, Value::Int(v));
    rows.push_back(std::move(t));
  }
  Pli pli = Pli::Build(rows, AttrId{0});
  // Value 1 -> rows {0, 2, 5}, value 2 -> rows {1, 4}; value 3 is stripped.
  ASSERT_EQ(pli.num_clusters(), 2u);
  EXPECT_EQ(pli.clusters()[0], (Pli::Cluster{0, 2, 5}));
  EXPECT_EQ(pli.clusters()[1], (Pli::Cluster{1, 4}));
  EXPECT_EQ(pli.grouped_rows(), 5u);
  EXPECT_EQ(pli.num_rows(), rows.size());
}

TEST(PliTest, AbsentRowsStayOutOfThePartition) {
  std::vector<Tuple> rows(4);
  rows[0].Set(0, Value::Int(7));
  rows[1].Set(1, Value::Int(7));  // not defined on attr 0
  rows[2].Set(0, Value::Int(7));
  rows[3].Set(0, Value::Int(7));
  Pli pli = Pli::Build(rows, AttrId{0});
  ASSERT_EQ(pli.num_clusters(), 1u);
  EXPECT_EQ(pli.clusters()[0], (Pli::Cluster{0, 2, 3}));
}

TEST(PliTest, NullIsAValueAbsenceIsNot) {
  // Definition 4.1/4.2 quantify over tuples *defined on* X; an explicit
  // null is defined and equals null, an absent attribute is out of scope.
  std::vector<Tuple> rows(4);
  rows[0].Set(0, Value::Null());
  rows[1].Set(0, Value::Null());
  rows[2].Set(1, Value::Int(1));  // attr 0 absent
  rows[3].Set(0, Value::Int(5));  // singleton value
  Pli pli = Pli::Build(rows, AttrId{0});
  ASSERT_EQ(pli.num_clusters(), 1u);
  EXPECT_EQ(pli.clusters()[0], (Pli::Cluster{0, 1}));
}

TEST(PliTest, EmptyAttrSetGroupsAllRows) {
  std::vector<Tuple> rows(3);
  rows[0].Set(0, Value::Int(1));
  rows[1].Set(1, Value::Int(2));
  Pli pli = Pli::Build(rows, AttrSet{});
  ASSERT_EQ(pli.num_clusters(), 1u);
  EXPECT_EQ(pli.clusters()[0], (Pli::Cluster{0, 1, 2}));
}

TEST(PliTest, ProbeTableInvertsClusters) {
  Rng rng(3);
  std::vector<Tuple> rows = RandomRows(&rng, 50, 3, 0.7, 4);
  Pli pli = Pli::Build(rows, AttrId{1});
  PliProbe probe = pli.BuildProbe();
  ASSERT_EQ(probe.labels.size(), rows.size());
  EXPECT_EQ(probe.label_bound, static_cast<int32_t>(pli.num_clusters()));
  size_t in_clusters = 0;
  for (size_t i = 0; i < probe.labels.size(); ++i) {
    if (probe.labels[i] == Pli::kNoCluster) continue;
    ++in_clusters;
    Pli::ClusterView c = pli.clusters()[static_cast<size_t>(probe.labels[i])];
    EXPECT_NE(std::find(c.begin(), c.end(), static_cast<uint32_t>(i)),
              c.end());
  }
  EXPECT_EQ(in_clusters, pli.grouped_rows());
}

TEST(PliTest, IntersectionEqualsDirectBuild) {
  // The algebraic core: partition(X) ∩ partition(Y) == partition(X ∪ Y),
  // over many random heterogeneous (and null-bearing) instances.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    std::vector<Tuple> rows = RandomRows(&rng, 80, 4, 0.75, 2, 0.1);
    for (AttrId a = 0; a < 4; ++a) {
      for (AttrId b = 0; b < 4; ++b) {
        if (a == b) continue;
        Pli pa = Pli::Build(rows, a);
        Pli pb = Pli::Build(rows, b);
        Pli direct = Pli::Build(rows, AttrSet{a, b});
        EXPECT_EQ(pa.Intersect(pb), direct)
            << "seed=" << seed << " a=" << a << " b=" << b;
        EXPECT_EQ(pb.Intersect(pa), direct) << "commutativity";
      }
    }
    // Three-way: ((0 ∩ 1) ∩ 2) == direct {0,1,2}.
    Pli p01 = Pli::Build(rows, AttrId{0}).Intersect(Pli::Build(rows, AttrId{1}));
    EXPECT_EQ(p01.Intersect(Pli::Build(rows, AttrId{2})),
              Pli::Build(rows, AttrSet{0, 1, 2}))
        << "seed=" << seed;
  }
}

TEST(PliStorageTest, ArenaAndReferenceBuildsAreStructurallyEqual) {
  // The CSR arena and the historical vector-of-vectors layout must be two
  // representations of one partition: operator== crosses storage modes.
  for (uint64_t seed = 40; seed < 46; ++seed) {
    Rng rng(seed);
    std::vector<Tuple> rows = RandomRows(&rng, 90, 4, 0.7, 3, 0.1);
    for (AttrId a = 0; a < 4; ++a) {
      Pli arena = Pli::Build(rows, a, Pli::Storage::kArena);
      Pli reference = Pli::Build(rows, a, Pli::Storage::kVectors);
      ASSERT_EQ(arena.storage(), Pli::Storage::kArena);
      ASSERT_EQ(reference.storage(), Pli::Storage::kVectors);
      EXPECT_EQ(arena, reference) << "seed=" << seed << " attr=" << a;
      EXPECT_EQ(reference, arena) << "symmetry";
      EXPECT_EQ(arena.defined_rows(), reference.defined_rows());
      EXPECT_EQ(arena.NumDistinct(), reference.NumDistinct());
      std::string err;
      EXPECT_TRUE(arena.CheckInvariants(&err)) << err;
      EXPECT_TRUE(reference.CheckInvariants(&err)) << err;
    }
    // Products inherit their left operand's storage and stay equal across
    // mode combinations (including mixed-operand intersections).
    Pli a0 = Pli::Build(rows, AttrId{0});
    Pli a1v = Pli::Build(rows, AttrId{1}, Pli::Storage::kVectors);
    Pli v0 = Pli::Build(rows, AttrId{0}, Pli::Storage::kVectors);
    Pli arena_product = a0.Intersect(a1v);
    Pli vector_product = v0.Intersect(a1v);
    ASSERT_EQ(arena_product.storage(), Pli::Storage::kArena);
    ASSERT_EQ(vector_product.storage(), Pli::Storage::kVectors);
    EXPECT_EQ(arena_product, vector_product) << "seed=" << seed;
    EXPECT_EQ(arena_product, Pli::Build(rows, AttrSet{0, 1}));
    std::string err;
    EXPECT_TRUE(arena_product.CheckInvariants(&err)) << err;
    EXPECT_TRUE(vector_product.CheckInvariants(&err)) << err;
  }
}

TEST(PliStorageTest, ScratchReuseDoesNotLeakStateAcrossIntersections) {
  // One scratch instance threaded through many differently-shaped products
  // must yield the same partitions as fresh per-call scratch.
  Rng rng(77);
  std::vector<Tuple> rows = RandomRows(&rng, 120, 5, 0.8, 3, 0.05);
  Pli::IntersectScratch scratch;
  for (AttrId a = 0; a < 5; ++a) {
    Pli pa = Pli::Build(rows, a);
    for (AttrId b = 0; b < 5; ++b) {
      if (a == b) continue;
      PliProbe probe = Pli::Build(rows, b).BuildProbe();
      Pli with_scratch = pa.IntersectWithProbe(probe, &scratch);
      Pli fresh = pa.IntersectWithProbe(probe);
      EXPECT_EQ(with_scratch, fresh) << "a=" << a << " b=" << b;
      EXPECT_EQ(with_scratch, Pli::Build(rows, AttrSet{a, b}));
    }
  }
}

TEST(PliCacheTest, CachedPartitionsMatchDirectBuilds) {
  Rng rng(17);
  std::vector<Tuple> rows = RandomRows(&rng, 120, 5, 0.8, 3);
  PliCache cache(&rows);
  for (AttrId a = 0; a < 5; ++a) {
    for (AttrId b = a + 1; b < 5; ++b) {
      for (AttrId c = b + 1; c < 5; ++c) {
        AttrSet x{a, b, c};
        EXPECT_EQ(*cache.Get(x), Pli::Build(rows, x)) << x.ToString();
      }
    }
  }
  EXPECT_GT(cache.Stats().hits, 0u);  // shared prefixes must be reused
}

TEST(PliCacheTest, RepeatLookupsHitTheCache) {
  Rng rng(5);
  std::vector<Tuple> rows = RandomRows(&rng, 40, 3, 0.9, 2);
  PliCache cache(&rows);
  AttrSet x{0, 2};
  std::shared_ptr<const Pli> first = cache.Get(x);
  size_t misses_after_first = cache.Stats().misses;
  std::shared_ptr<const Pli> second = cache.Get(x);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.Stats().misses, misses_after_first);
}

TEST(PliCacheTest, LruBoundEvictsMultiAttributeEntries) {
  Rng rng(11);
  std::vector<Tuple> rows = RandomRows(&rng, 60, 6, 0.8, 2);
  PliCache::Options options;
  options.max_entries = 2;
  PliCache cache(&rows, options);
  for (AttrId a = 0; a < 6; ++a) {
    for (AttrId b = a + 1; b < 6; ++b) cache.Get(AttrSet{a, b});
  }
  EXPECT_GT(cache.Stats().evictions, 0u);
  // 6 pinned singletons + at most max_entries evictable pairs.
  EXPECT_LE(cache.Stats().cached_entries, 6u + options.max_entries);
  // Evicted partitions rebuild correctly.
  EXPECT_EQ(*cache.Get(AttrSet{0, 1}), Pli::Build(rows, AttrSet{0, 1}));
}

TEST(PliCacheTest, ConcurrentGetsProduceConsistentPartitions) {
  Rng rng(23);
  std::vector<Tuple> rows = RandomRows(&rng, 200, 5, 0.8, 3);
  PliCache cache(&rows);
  std::vector<AttrSet> keys;
  for (AttrId a = 0; a < 5; ++a) {
    for (AttrId b = a + 1; b < 5; ++b) keys.push_back(AttrSet{a, b});
  }
  std::vector<std::thread> workers;
  std::atomic<bool> mismatch{false};
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = 0; i < keys.size(); ++i) {
        const AttrSet& key = keys[(i + static_cast<size_t>(t)) % keys.size()];
        if (*cache.Get(key) != Pli::Build(rows, key)) mismatch = true;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_FALSE(mismatch);
}

TEST(ValidatorTest, AgreesWithBruteForceSatisfaction) {
  for (uint64_t seed = 30; seed < 36; ++seed) {
    Rng rng(seed);
    std::vector<Tuple> rows = RandomRows(&rng, 70, 4, 0.7, 2, 0.05);
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    PliCache cache(&rows);
    DependencyValidator validator(&cache);
    for (AttrId x = 0; x < 4; ++x) {
      for (AttrId y = 0; y < 4; ++y) {
        if (x == y) continue;
        AttrDep ad{AttrSet{x}, AttrSet{y}};
        FuncDep fd{AttrSet{x}, AttrSet{y}};
        EXPECT_EQ(validator.ValidatesAd(ad), SatisfiesAttrDep(rows, ad))
            << "seed=" << seed << " " << x << "->" << y;
        EXPECT_EQ(validator.ValidatesFd(fd), SatisfiesFuncDep(rows, fd))
            << "seed=" << seed << " " << x << "->" << y;
      }
    }
  }
}

TEST(ValidatorTest, TrivialDependenciesAlwaysValidate) {
  std::vector<Tuple> rows(2);
  rows[0].Set(0, Value::Int(1));
  rows[1].Set(0, Value::Int(1));
  PliCache cache(&rows);
  DependencyValidator validator(&cache);
  EXPECT_TRUE(validator.ValidatesAd(AttrDep{AttrSet{0, 1}, AttrSet{1}}));
  EXPECT_TRUE(validator.ValidatesFd(FuncDep{AttrSet{0, 1}, AttrSet{0}}));
}

}  // namespace
}  // namespace flexrel
