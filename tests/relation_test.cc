#include "relational/relation.h"

#include <gtest/gtest.h>

namespace flexrel {
namespace {

Tuple Row(AttrId a, int64_t va, AttrId b, int64_t vb) {
  return Tuple::FromPairs({{a, Value::Int(va)}, {b, Value::Int(vb)}});
}

TEST(RelationTest, InsertEnforcesExactScheme) {
  Relation r("r", AttrSet{0, 1});
  EXPECT_TRUE(r.Insert(Row(0, 1, 1, 2)).ok());
  // Missing attribute.
  Tuple narrow = Tuple::FromPairs({{0, Value::Int(1)}});
  EXPECT_EQ(r.Insert(narrow).code(), StatusCode::kConstraintViolation);
  // Extra attribute.
  Tuple wide = Tuple::FromPairs(
      {{0, Value::Int(1)}, {1, Value::Int(2)}, {2, Value::Int(3)}});
  EXPECT_EQ(r.Insert(wide).code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, NullsAreAllowedValues) {
  Relation r("r", AttrSet{0, 1});
  Tuple t = Tuple::FromPairs({{0, Value::Int(1)}, {1, Value::Null()}});
  EXPECT_TRUE(r.Insert(t).ok());
  EXPECT_EQ(r.CountNulls(), 1u);
}

TEST(RelationTest, CountNullsAcrossRows) {
  Relation r("r", AttrSet{0, 1, 2});
  ASSERT_TRUE(r.Insert(Tuple::FromPairs({{0, Value::Int(1)},
                                         {1, Value::Null()},
                                         {2, Value::Null()}}))
                  .ok());
  ASSERT_TRUE(r.Insert(Tuple::FromPairs({{0, Value::Null()},
                                         {1, Value::Int(2)},
                                         {2, Value::Int(3)}}))
                  .ok());
  EXPECT_EQ(r.CountNulls(), 3u);
}

TEST(RelationTest, DeduplicateSortsAndRemovesCopies) {
  Relation r("r", AttrSet{0, 1});
  ASSERT_TRUE(r.Insert(Row(0, 2, 1, 2)).ok());
  ASSERT_TRUE(r.Insert(Row(0, 1, 1, 1)).ok());
  ASSERT_TRUE(r.Insert(Row(0, 2, 1, 2)).ok());
  r.Deduplicate();
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.row(0), Row(0, 1, 1, 1));
}

TEST(RelationTest, EqualsUnordered) {
  Relation a("a", AttrSet{0, 1});
  Relation b("b", AttrSet{0, 1});
  ASSERT_TRUE(a.Insert(Row(0, 1, 1, 1)).ok());
  ASSERT_TRUE(a.Insert(Row(0, 2, 1, 2)).ok());
  ASSERT_TRUE(b.Insert(Row(0, 2, 1, 2)).ok());
  ASSERT_TRUE(b.Insert(Row(0, 1, 1, 1)).ok());
  EXPECT_TRUE(a.EqualsUnordered(b));
  ASSERT_TRUE(b.Insert(Row(0, 3, 1, 3)).ok());
  EXPECT_FALSE(a.EqualsUnordered(b));
  // Different schemes are never equal.
  Relation c("c", AttrSet{0, 2});
  EXPECT_FALSE(a.EqualsUnordered(c));
}

}  // namespace
}  // namespace flexrel
