#include "core/dependency.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

Tuple T(std::vector<std::pair<AttrId, int64_t>> fields) {
  Tuple t;
  for (auto [a, v] : fields) t.Set(a, Value::Int(v));
  return t;
}

constexpr AttrId kA = 0, kB = 1, kC = 2, kD = 3;

TEST(AttrDepTest, SatisfiedWhenAgreeingTuplesShareYSubset) {
  // Definition 4.1: equal X values -> equal attr(t) ∩ Y.
  AttrDep ad{AttrSet{kA}, AttrSet{kB, kC}};
  std::vector<Tuple> rows = {
      T({{kA, 1}, {kB, 10}}),
      T({{kA, 1}, {kB, 20}}),  // same X, same Y-subset {B} (values differ!)
      T({{kA, 2}, {kC, 30}}),  // different X: free to differ
  };
  EXPECT_TRUE(SatisfiesAttrDep(rows, ad));
}

TEST(AttrDepTest, ViolatedWhenYSubsetsDiffer) {
  AttrDep ad{AttrSet{kA}, AttrSet{kB, kC}};
  std::vector<Tuple> rows = {
      T({{kA, 1}, {kB, 10}}),
      T({{kA, 1}, {kC, 20}}),  // same X but Y-part {C} instead of {B}
  };
  EXPECT_FALSE(SatisfiesAttrDep(rows, ad));
}

TEST(AttrDepTest, ValuesInYAreIrrelevant) {
  // The purely existential nature of ADs: contents of Y never matter.
  AttrDep ad{AttrSet{kA}, AttrSet{kB}};
  std::vector<Tuple> rows = {
      T({{kA, 1}, {kB, 111}}),
      T({{kA, 1}, {kB, 999}}),
  };
  EXPECT_TRUE(SatisfiesAttrDep(rows, ad));
}

TEST(AttrDepTest, TuplesNotDefinedOnXAreUnconstrained) {
  AttrDep ad{AttrSet{kA}, AttrSet{kB}};
  std::vector<Tuple> rows = {
      T({{kB, 1}}),          // lacks A entirely
      T({{kA, 1}, {kB, 2}}),
      T({{kC, 5}}),
  };
  EXPECT_TRUE(SatisfiesAttrDep(rows, ad));
}

TEST(AttrDepTest, TrivialByReflexivity) {
  EXPECT_TRUE((AttrDep{AttrSet{kA, kB}, AttrSet{kA}}).IsTrivial());
  EXPECT_FALSE((AttrDep{AttrSet{kA}, AttrSet{kB}}).IsTrivial());
}

TEST(FuncDepTest, ClassicalViolation) {
  FuncDep fd{AttrSet{kA}, AttrSet{kB}};
  std::vector<Tuple> ok = {
      T({{kA, 1}, {kB, 5}}),
      T({{kA, 1}, {kB, 5}, {kC, 9}}),
      T({{kA, 2}, {kB, 7}}),
  };
  EXPECT_TRUE(SatisfiesFuncDep(ok, fd));
  std::vector<Tuple> bad = {
      T({{kA, 1}, {kB, 5}}),
      T({{kA, 1}, {kB, 6}}),
  };
  EXPECT_FALSE(SatisfiesFuncDep(bad, fd));
}

TEST(FuncDepTest, MissingRhsOnAgreeingPairViolates) {
  // Definition 4.2 demands both tuples be defined on Y.
  FuncDep fd{AttrSet{kA}, AttrSet{kB}};
  std::vector<Tuple> bad = {
      T({{kA, 1}, {kB, 5}}),
      T({{kA, 1}, {kC, 5}}),  // agrees on A, lacks B
  };
  EXPECT_FALSE(SatisfiesFuncDep(bad, fd));
}

TEST(FuncDepTest, DistinctPairReadingAllowsLoneGuardlessTuple) {
  // A single tuple defined on X but not Y does not violate the FD (the
  // appendix's witness construction depends on this reading; see the header
  // comment in dependency.h).
  FuncDep fd{AttrSet{kA}, AttrSet{kB}};
  std::vector<Tuple> rows = {
      T({{kA, 1}, {kC, 5}}),
  };
  EXPECT_TRUE(SatisfiesFuncDep(rows, fd));
}

TEST(FuncDepTest, TwoAgreeingTuplesBothLackingRhsViolate) {
  FuncDep fd{AttrSet{kA}, AttrSet{kB}};
  std::vector<Tuple> rows = {
      T({{kA, 1}, {kC, 5}}),
      T({{kA, 1}, {kD, 5}}),
  };
  EXPECT_FALSE(SatisfiesFuncDep(rows, fd));
}

TEST(FuncDepTest, EmptyLhsMeansGlobalAgreement) {
  FuncDep fd{AttrSet(), AttrSet{kB}};
  std::vector<Tuple> ok = {T({{kB, 1}}), T({{kB, 1}, {kC, 2}})};
  EXPECT_TRUE(SatisfiesFuncDep(ok, fd));
  std::vector<Tuple> bad = {T({{kB, 1}}), T({{kB, 2}})};
  EXPECT_FALSE(SatisfiesFuncDep(bad, fd));
}

TEST(DependencyTest, EmptyInstanceSatisfiesEverything) {
  std::vector<Tuple> empty;
  EXPECT_TRUE(SatisfiesAttrDep(empty, AttrDep{AttrSet{kA}, AttrSet{kB}}));
  EXPECT_TRUE(SatisfiesFuncDep(empty, FuncDep{AttrSet{kA}, AttrSet{kB}}));
}

// ---- Hashed implementations agree with the quadratic reference -------------

class HashedEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HashedEquivalence, AttrDepAndFuncDepAgree) {
  Rng rng(GetParam());
  // Random heterogeneous instance over 6 attributes with small value ranges
  // (to provoke agreements) and random presence.
  std::vector<Tuple> rows;
  size_t n = 2 + rng.Index(30);
  for (size_t i = 0; i < n; ++i) {
    Tuple t;
    for (AttrId a = 0; a < 6; ++a) {
      if (rng.Bernoulli(0.6)) t.Set(a, Value::Int(rng.UniformInt(0, 2)));
    }
    rows.push_back(std::move(t));
  }
  // Instances are sets: dedup to respect the checkers' precondition.
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

  for (int trial = 0; trial < 20; ++trial) {
    auto subset = [&]() {
      std::vector<AttrId> ids;
      for (AttrId a = 0; a < 6; ++a) {
        if (rng.Bernoulli(0.35)) ids.push_back(a);
      }
      return AttrSet::FromIds(std::move(ids));
    };
    AttrDep ad{subset(), subset()};
    FuncDep fd{subset(), subset()};
    EXPECT_EQ(SatisfiesAttrDep(rows, ad), SatisfiesAttrDepHashed(rows, ad));
    EXPECT_EQ(SatisfiesFuncDep(rows, fd), SatisfiesFuncDepHashed(rows, fd));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashedEquivalence,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace flexrel
