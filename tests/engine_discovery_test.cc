// Cross-validation of the partition-engine discovery path against the
// retained brute-force reference, plus the engine's consumer bridges
// (EAD mining for the optimizer, Σ installation for generated workloads).

#include "engine/parallel_discovery.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/closure.h"
#include "core/discovery.h"
#include "engine_test_util.h"
#include "optimizer/guard_analysis.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace flexrel {
namespace {

using testutil::FullUniverse;
using testutil::RandomInstance;

// Engine and brute force must return *identical* result vectors — same
// dependencies, same order — under every option combination.
void ExpectIdenticalDiscovery(const std::vector<Tuple>& rows,
                              const AttrSet& universe, size_t max_lhs,
                              bool minimal_only, const char* label) {
  DiscoveryOptions engine;
  engine.max_lhs_size = max_lhs;
  engine.minimal_only = minimal_only;
  engine.use_engine = true;
  DiscoveryOptions brute = engine;
  brute.use_engine = false;

  EXPECT_EQ(DiscoverAttrDeps(rows, universe, engine),
            DiscoverAttrDeps(rows, universe, brute))
      << label << " (ADs, max_lhs=" << max_lhs << " minimal=" << minimal_only
      << ")";
  EXPECT_EQ(DiscoverFuncDeps(rows, universe, engine),
            DiscoverFuncDeps(rows, universe, brute))
      << label << " (FDs, max_lhs=" << max_lhs << " minimal=" << minimal_only
      << ")";
}

TEST(EngineDiscoveryTest, LatticeLevelMatchesCombinationOrder) {
  AttrSet universe{2, 5, 7, 9};
  auto level2 = LatticeLevel(universe, 2);
  ASSERT_EQ(level2.size(), 6u);
  EXPECT_EQ(level2.front(), (AttrSet{2, 5}));
  EXPECT_EQ(level2.back(), (AttrSet{7, 9}));
  EXPECT_TRUE(LatticeLevel(universe, 5).empty());
  EXPECT_TRUE(LatticeLevel(universe, 0).empty());
}

TEST(EngineDiscoveryTest, MatchesBruteForceOnPaperExamples) {
  auto jobtype = MakeJobtypeExample();
  ASSERT_TRUE(jobtype.ok());
  AttrSet ju = FullUniverse(jobtype.value()->catalog.size());
  for (size_t max_lhs : {1u, 2u}) {
    for (bool minimal : {true, false}) {
      ExpectIdenticalDiscovery(jobtype.value()->relation.rows(), ju, max_lhs,
                               minimal, "jobtype example");
    }
  }

  auto address = MakeAddressWorkload(200, 31);
  ASSERT_TRUE(address.ok());
  AttrSet au = FullUniverse(address.value()->catalog.size());
  ExpectIdenticalDiscovery(address.value()->relation.rows(), au, 2, true,
                           "address workload");
}

TEST(EngineDiscoveryTest, MatchesBruteForceOnRandomInstances) {
  // >= 20 randomized instances sweeping shape, density, and value spread.
  size_t instances = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 101);
    std::vector<Tuple> sparse = RandomInstance(&rng, 60, 5, 0.55, 2);
    std::vector<Tuple> dense = RandomInstance(&rng, 50, 4, 0.95, 3);
    std::vector<Tuple> tiny = RandomInstance(&rng, 6, 3, 0.7, 1);
    ExpectIdenticalDiscovery(sparse, FullUniverse(5), 2, true, "sparse");
    ExpectIdenticalDiscovery(sparse, FullUniverse(5), 2, false, "sparse");
    ExpectIdenticalDiscovery(dense, FullUniverse(4), 3, true, "dense");
    ExpectIdenticalDiscovery(tiny, FullUniverse(3), 3, false, "tiny");
    instances += 3;
  }
  EXPECT_GE(instances, 20u);
}

TEST(EngineDiscoveryTest, MatchesBruteForceOnEmployeeWorkloads) {
  for (uint64_t seed : {3u, 14u, 15u}) {
    EmployeeConfig config;
    config.num_variants = 3;
    config.attrs_per_variant = 2;
    config.rows = 150;
    config.seed = seed;
    auto w = MakeEmployeeWorkload(config);
    ASSERT_TRUE(w.ok());
    ExpectIdenticalDiscovery(w.value()->relation.rows(),
                             FullUniverse(w.value()->catalog.size()), 2, true,
                             "employee workload");
  }
}

TEST(EngineDiscoveryTest, ThreadCountDoesNotChangeResults) {
  Rng rng(77);
  std::vector<Tuple> rows = RandomInstance(&rng, 80, 5, 0.7, 2);
  AttrSet universe = FullUniverse(5);
  EngineDiscoveryOptions sequential;
  sequential.num_threads = 1;
  sequential.max_lhs_size = 3;
  EngineDiscoveryOptions parallel = sequential;
  parallel.num_threads = 4;
  EXPECT_EQ(EngineDiscoverAttrDeps(rows, universe, sequential),
            EngineDiscoverAttrDeps(rows, universe, parallel));
  EXPECT_EQ(EngineDiscoverFuncDeps(rows, universe, sequential),
            EngineDiscoverFuncDeps(rows, universe, parallel));
}

TEST(EngineDiscoveryTest, TinyCacheStillProducesIdenticalResults) {
  // Eviction pressure must never change answers, only cost.
  Rng rng(123);
  std::vector<Tuple> rows = RandomInstance(&rng, 60, 6, 0.8, 2);
  AttrSet universe = FullUniverse(6);
  EngineDiscoveryOptions roomy;
  roomy.max_lhs_size = 3;
  EngineDiscoveryOptions cramped = roomy;
  cramped.cache_max_entries = 1;
  EXPECT_EQ(EngineDiscoverAttrDeps(rows, universe, roomy),
            EngineDiscoverAttrDeps(rows, universe, cramped));
  EXPECT_EQ(EngineDiscoverFuncDeps(rows, universe, roomy),
            EngineDiscoverFuncDeps(rows, universe, cramped));
}

TEST(EngineDiscoveryTest, BundledDiscoveryMatchesBruteForce) {
  auto ex = MakeJobtypeExample();
  ASSERT_TRUE(ex.ok());
  AttrSet universe = FullUniverse(ex.value()->catalog.size());
  DiscoveryOptions engine;
  DiscoveryOptions brute;
  brute.use_engine = false;
  DependencySet via_engine =
      DiscoverDependencies(ex.value()->relation.rows(), universe, engine);
  DependencySet via_brute =
      DiscoverDependencies(ex.value()->relation.rows(), universe, brute);
  EXPECT_EQ(via_engine.fds(), via_brute.fds());
  EXPECT_EQ(via_engine.ads(), via_brute.ads());
}

TEST(EngineConsumerTest, MinedEadMatchesTheDeclaredOne) {
  auto ex = MakeJobtypeExample();
  ASSERT_TRUE(ex.ok());
  const JobtypeExample& world = *ex.value();
  const std::vector<Tuple>& rows = world.relation.rows();
  PliCache cache(&rows);
  auto mined = MineExplicitAd(&cache, AttrSet::Of(world.jobtype),
                              world.ead.determined());
  ASSERT_TRUE(mined.ok()) << mined.status();
  EXPECT_EQ(mined.value().determinant(), world.ead.determinant());
  EXPECT_EQ(mined.value().determined(), world.ead.determined());
  EXPECT_TRUE(mined.value().Satisfies(rows));
  // Every instance tuple lands in the same variant under both EADs.
  for (const Tuple& t : rows) {
    EXPECT_EQ(mined.value().RequiredAttrs(t), world.ead.RequiredAttrs(t))
        << t.ToString(world.catalog);
  }
}

TEST(EngineConsumerTest, MiningRejectsViolatedDeterminants) {
  std::vector<Tuple> rows(2);
  rows[0].Set(0, Value::Int(1));
  rows[0].Set(1, Value::Int(9));
  rows[1].Set(0, Value::Int(1));  // same determinant value, lacks attr 1
  PliCache cache(&rows);
  auto mined = MineExplicitAd(&cache, AttrSet{0}, AttrSet{1});
  EXPECT_FALSE(mined.ok());
}

TEST(EngineConsumerTest, MiningRejectsDeterminedAttrsOutsideTheDeterminant) {
  // Definition 2.1's "otherwise ∅": a row lacking the determinant must not
  // carry determined attributes.
  std::vector<Tuple> rows(3);
  rows[0].Set(0, Value::Int(1));
  rows[0].Set(1, Value::Int(4));
  rows[1].Set(0, Value::Int(1));
  rows[1].Set(1, Value::Int(5));
  rows[2].Set(1, Value::Int(6));  // carries Y without the determinant
  PliCache cache(&rows);
  auto mined = MineExplicitAd(&cache, AttrSet{0}, AttrSet{1});
  EXPECT_FALSE(mined.ok());
}

TEST(EngineConsumerTest, GuardEliminationFromInstance) {
  auto ex = MakeJobtypeExample();
  ASSERT_TRUE(ex.ok());
  const JobtypeExample& world = *ex.value();
  // Example 4's shape: selecting secretaries makes the typing-speed guard
  // redundant; the mined EAD must prove it just like the declared one.
  ExprPtr formula =
      Expr::And(Expr::Eq(world.jobtype, Value::Str("secretary")),
                Expr::Exists(world.typing_speed));
  GuardRewrite declared =
      EliminateRedundantGuards(formula, {world.ead});
  GuardRewrite mined = EliminateRedundantGuardsFromInstance(
      formula, world.relation.rows(),
      FullUniverse(world.catalog.size()));
  EXPECT_EQ(declared.guards_eliminated, 1u);
  EXPECT_EQ(mined.guards_eliminated, declared.guards_eliminated);
  EXPECT_EQ(mined.guards_falsified, declared.guards_falsified);
}

TEST(EngineConsumerTest, GuardEliminationSurvivesPartiallyMinableRhs) {
  // Determinant A -> {B, C} holds as an AD, but a row lacking A carries C,
  // so only B is minable under the explicit reading. The B-guard
  // elimination must survive the C poisoning.
  std::vector<Tuple> rows(3);
  rows[0].Set(0, Value::Int(1));
  rows[0].Set(1, Value::Int(10));
  rows[0].Set(2, Value::Int(20));
  rows[1].Set(0, Value::Int(1));
  rows[1].Set(1, Value::Int(11));
  rows[1].Set(2, Value::Int(21));
  rows[2].Set(2, Value::Int(22));  // carries C without the determinant A
  AttrSet universe{0, 1, 2};
  EXPECT_EQ(ExplicitlyMinableRhs(rows, AttrSet{0}, AttrSet{1, 2}),
            AttrSet{1});
  ExprPtr formula =
      Expr::And(Expr::Eq(0, Value::Int(1)), Expr::Exists(1));
  GuardRewrite rewrite =
      EliminateRedundantGuardsFromInstance(formula, rows, universe);
  EXPECT_EQ(rewrite.guards_eliminated, 1u);
}

TEST(EngineConsumerTest, InstallDiscoveredDepsValidatesAndInstalls) {
  EmployeeConfig config;
  config.rows = 120;
  config.seed = 21;
  auto w = MakeEmployeeWorkload(config);
  ASSERT_TRUE(w.ok());
  FlexibleRelation* relation = &w.value()->relation;
  DiscoveryOptions options;
  options.max_lhs_size = 1;
  ASSERT_TRUE(InstallDiscoveredDeps(relation, options).ok());
  EXPECT_FALSE(relation->deps().empty());
  // The installed Σ is engine-validated, hence satisfied by the instance.
  EXPECT_TRUE(relation->SatisfiesDeclaredDeps());
  // It must cover the workload's declared EAD abbreviation.
  DependencySet installed = relation->deps();
  AttrDep abbreviated{w.value()->eads[0].determinant(),
                      w.value()->eads[0].determined()};
  EXPECT_TRUE(Implies(installed, abbreviated, AxiomSystem::kAdOnly));
}

}  // namespace
}  // namespace flexrel
