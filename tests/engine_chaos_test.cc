// Fault-tolerance soak for the execution plane (ISSUE: deadlines,
// cancellation, cache memory governance, deterministic fault injection).
//
// Three contracts under test:
//
//  1. Chaos: with seeded fault injection armed (util/fault.h), any
//     interleaving of mutations, cache reads, and discovery runs either
//     completes or surfaces std::bad_alloc / fault::InducedAbort — and
//     after every survived fault the cache is structurally equal to a
//     from-scratch rebuild over the current rows (the failure-atomic flush
//     and poisoned-entry recovery guarantees), with zero leaked snapshot
//     pins.
//  2. Cooperative cancellation/deadlines: a tripped ExecContext makes
//     discovery return exactly the verified level prefix (flagged partial
//     with kCancelled / kDeadlineExceeded) and evaluation return the error
//     — again with zero leaked pins and the per-run worker gauges reset.
//  3. Memory governance: a byte budget on the PliCache keeps accounted
//     bytes bounded via cost-aware eviction and uncached degradation,
//     without ever changing a query answer; budget off keeps every
//     governance counter at zero (the ≤1% overhead contract's counter
//     face).
//
// Randomized tests take their seed from FLEXREL_TEST_SEED (tests/
// seeded_suites.txt registers the soak for CI's fresh-seed rerun; the
// nightly chaos job sweeps 30 seeds under ASan+UBSan) and print it, so
// every failure is replayable from the log.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <new>
#include <string>
#include <unordered_set>
#include <vector>

#include "algebra/evaluate.h"
#include "algebra/plan.h"
#include "core/flexible_relation.h"
#include "engine/parallel_discovery.h"
#include "engine/pli_cache.h"
#include "engine/validator.h"
#include "engine_test_util.h"
#include "telemetry/telemetry.h"
#include "test_seed.h"
#include "util/exec_context.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace flexrel {
namespace {

using testutil::MakePlantedFdInstance;
using testutil::RandomSoakTuple;
using testutil::RandomSoakValue;

uint64_t ChaosSeed(uint64_t salt) {
  return TestSeed(0xC4A05C4A05C4A050ull, salt, "chaos");
}

// Guard that disarms injection on every exit path — a soak assertion must
// never leave faults armed for the rest of the binary.
struct FaultArmed {
  explicit FaultArmed(uint64_t seed) { fault::Enable(seed); }
  ~FaultArmed() { fault::Disable(); }
};

// Runs `fn`, absorbing exactly the two injectable fault types. Returns
// true when a fault surfaced (the operation was abandoned mid-flight).
template <typename Fn>
bool AbsorbFaults(const Fn& fn) {
  try {
    fn();
  } catch (const std::bad_alloc&) {
    return true;
  } catch (const fault::InducedAbort&) {
    return true;
  }
  return false;
}

// Structural equality of every tracked structure against a from-scratch
// rebuild over the current rows — the chaos soak's postcondition after
// every survived fault. Must run with injection DISARMED (verification
// reads would otherwise inject too).
void VerifyCacheAgainstRebuild(const FlexibleRelation& rel,
                               const std::vector<AttrSet>& partitions,
                               const std::vector<AttrId>& indexes,
                               const std::string& context) {
  ASSERT_FALSE(fault::Enabled()) << context;
  std::shared_ptr<PliCache> cache = rel.pli_cache();
  PliCache rebuild(&rel.rows());
  for (const AttrSet& attrs : partitions) {
    std::shared_ptr<const Pli> survived = cache->Get(attrs);
    std::shared_ptr<const Pli> fresh = rebuild.Get(attrs);
    ASSERT_EQ(*survived, *fresh)
        << context << " partition " << attrs.ToString() << " diverged";
    std::string err;
    ASSERT_TRUE(survived->CheckInvariants(&err))
        << context << " partition " << attrs.ToString() << ": " << err;
  }
  for (AttrId attr : indexes) {
    ASSERT_EQ(*cache->IndexFor(attr), *rebuild.IndexFor(attr))
        << context << " value index of attr " << attr << " diverged";
  }
  EXPECT_TRUE(cache->SnapshotPinsDrained())
      << context << " leaked a snapshot pin";
}

// ---------------------------------------------------------------------------
// 1. Seeded chaos soak: survive injected faults, stay rebuild-equivalent.
// ---------------------------------------------------------------------------

TEST(EngineChaosSoak, SurvivedFaultsLeaveCacheRebuildEquivalent) {
  const uint64_t base = ChaosSeed(1);
  uint64_t total_injected = 0;
  uint64_t total_survived = 0;
  for (uint64_t round = 0; round < 3; ++round) {
    Rng rng(base ^ (round * 0x9E3779B97F4A7C15ull));
    std::vector<AttrId> attrs;
    for (AttrId a = 0; a < 6; ++a) attrs.push_back(a);
    AttrSet universe;
    for (AttrId a : attrs) universe.Insert(a);

    FlexibleRelation rel =
        FlexibleRelation::Derived(StrCat("chaos", round), DependencySet());
    for (int i = 0; i < 60; ++i) {
      rel.InsertUnchecked(RandomSoakTuple(attrs, &rng));
    }
    std::vector<AttrSet> partitions;
    for (AttrId a : attrs) partitions.push_back(AttrSet::Of(a));
    partitions.push_back(AttrSet{attrs[0], attrs[1]});
    partitions.push_back(AttrSet{attrs[1], attrs[2]});
    partitions.push_back(AttrSet{attrs[2], attrs[3], attrs[4]});
    std::vector<AttrId> indexes = {attrs[0], attrs[1], attrs[2]};
    std::shared_ptr<PliCache> cache = rel.pli_cache();
    for (const AttrSet& k : partitions) (void)cache->Get(k);
    for (AttrId a : indexes) (void)cache->IndexFor(a);

    const int kOps = 80;
    for (int op = 0; op < kOps; ++op) {
      // Fresh deterministic schedule per op (Enable resets per-site hit
      // counters, so reusing one seed would replay the same first faults
      // forever); the op index keeps it replayable from the logged base.
      const uint64_t op_seed =
          base ^ (round << 24) ^ (static_cast<uint64_t>(op) * 0x2545F491ull);
      bool faulted = false;
      {
        FaultArmed armed(op_seed);
        double dice = rng.UniformDouble();
        if (dice < 0.35) {
          Tuple t = RandomSoakTuple(attrs, &rng);
          faulted = AbsorbFaults([&] { rel.InsertUnchecked(std::move(t)); });
        } else if (dice < 0.60) {
          size_t row = rng.Index(rel.size());
          AttrId attr = attrs[rng.Index(attrs.size())];
          Value v = RandomSoakValue(&rng);
          faulted = AbsorbFaults([&] {
            auto delta = rel.Update(row, attr, v);
            ASSERT_TRUE(delta.ok()) << delta.status();
          });
        } else if (dice < 0.90) {
          const AttrSet& key = partitions[rng.Index(partitions.size())];
          faulted = AbsorbFaults([&] { (void)cache->Get(key); });
        } else {
          // Discovery under fire: the run owns its cache; faults at level
          // boundaries and partition builds surface here.
          EngineDiscoveryOptions options;
          options.max_lhs_size = 2;
          options.num_threads = 1;
          faulted = AbsorbFaults(
              [&] { (void)EngineDiscoverFuncDeps(rel.rows(), universe,
                                                 options); });
        }
        total_injected += fault::Registry::Global().InjectedTotal();
      }
      if (faulted) ++total_survived;
      // Verify after every survived fault (injection now disarmed), and
      // periodically even on clean ops so swallowed flush aborts — which
      // surface no exception — are audited too.
      if (faulted || op % 16 == 15) {
        ASSERT_NO_FATAL_FAILURE(VerifyCacheAgainstRebuild(
            rel, partitions, indexes,
            StrCat("round ", round, " op#", op, " seed ", op_seed)));
      }
    }
    ASSERT_NO_FATAL_FAILURE(VerifyCacheAgainstRebuild(
        rel, partitions, indexes, StrCat("round ", round, " final")));
  }
  // ~1/8 of hits inject and every op passes several sites: a soak that
  // never injected is a broken harness, not a robust engine.
  EXPECT_GT(total_injected, 0u) << "fault injection never fired";
  EXPECT_GT(total_survived, 0u) << "no fault ever surfaced to the caller";
}

// Flush-arm faults are swallowed by drop-all recovery, so mutations
// under fire must never throw out of the mutation API in COW mode — and
// the cache must still match a rebuild afterwards.
TEST(EngineChaosSoak, FlushFaultsRecoverWithoutSurfacing) {
  const uint64_t base = ChaosSeed(2);
  Rng rng(base);
  std::vector<AttrId> attrs;
  for (AttrId a = 0; a < 4; ++a) attrs.push_back(a);
  FlexibleRelation rel = FlexibleRelation::Derived("flush", DependencySet());
  for (int i = 0; i < 80; ++i) {
    rel.InsertUnchecked(RandomSoakTuple(attrs, &rng));
  }
  std::vector<AttrSet> partitions = {AttrSet{attrs[0], attrs[1]},
                                     AttrSet{attrs[1], attrs[2]}};
  std::shared_ptr<PliCache> cache = rel.pli_cache();
  ASSERT_TRUE(cache->options().cow_reads);
  for (const AttrSet& k : partitions) (void)cache->Get(k);

  uint64_t flush_aborts = 0;
  for (int op = 0; op < 120; ++op) {
    {
      FaultArmed armed(base + op);
      size_t row = rng.Index(rel.size());
      AttrId attr = attrs[rng.Index(attrs.size())];
      // COW mutation hooks flush inline; any fault inside the flush arms
      // must be absorbed by the drop-all recovery, never rethrown. Faults
      // can still surface from the *build* path (rebuilding a dropped
      // entry during the hook), which is the documented contract.
      bool faulted = AbsorbFaults([&] {
        auto delta = rel.Update(row, attr, RandomSoakValue(&rng));
        ASSERT_TRUE(delta.ok()) << delta.status();
      });
      (void)faulted;
    }
    flush_aborts = cache->Stats().flush_aborts;
    if (op % 20 == 19) {
      ASSERT_NO_FATAL_FAILURE(VerifyCacheAgainstRebuild(
          rel, partitions, {}, StrCat("flush op#", op)));
    }
  }
  ASSERT_NO_FATAL_FAILURE(
      VerifyCacheAgainstRebuild(rel, partitions, {}, "flush final"));
  EXPECT_GT(flush_aborts, 0u)
      << "the soak never exercised the failure-atomic flush recovery";
  EXPECT_EQ(cache->Stats().publishes, cache->Stats().flushes)
      << "a recovered flush must still publish (publishes == flushes)";
}

// The fault-site catalogue: after driving builds, flushes, and discovery
// under injection, the registry must know every site the issue names —
// a site that never registers means its code path lost instrumentation.
TEST(EngineChaosSoak, FaultSiteCatalogueCoversTheExecutionPlane) {
  const uint64_t base = ChaosSeed(3);
  Rng rng(base);
  std::vector<AttrId> attrs;
  for (AttrId a = 0; a < 5; ++a) attrs.push_back(a);
  AttrSet universe;
  for (AttrId a : attrs) universe.Insert(a);
  FlexibleRelation rel = FlexibleRelation::Derived("sites", DependencySet());
  for (int i = 0; i < 50; ++i) {
    rel.InsertUnchecked(RandomSoakTuple(attrs, &rng));
  }
  std::shared_ptr<PliCache> cache = rel.pli_cache();
  for (int op = 0; op < 60; ++op) {
    FaultArmed armed(base + op);
    (void)AbsorbFaults([&] { (void)cache->Get(AttrSet{attrs[0], attrs[1]}); });
    (void)AbsorbFaults([&] {
      (void)rel.Update(rng.Index(rel.size()), attrs[rng.Index(attrs.size())],
                       RandomSoakValue(&rng));
    });
    EngineDiscoveryOptions options;
    options.max_lhs_size = 1;
    options.num_threads = 1;
    (void)AbsorbFaults(
        [&] { (void)EngineDiscoverAttrDeps(rel.rows(), universe, options); });
  }
  std::unordered_set<std::string> names;
  uint64_t hits = 0;
  for (const fault::Site* site : fault::Registry::Global().Sites()) {
    names.insert(site->name());
    hits += site->hits();
  }
  for (const char* expected :
       {"pli_cache.build", "pli_cache.flush.clone", "pli_cache.flush.patch",
        "pli_cache.flush.publish", "discovery.level"}) {
    EXPECT_TRUE(names.count(expected) > 0)
        << "fault site '" << expected << "' never registered";
  }
  EXPECT_GT(hits, 0u);
}

// ---------------------------------------------------------------------------
// 2. Cancellation and deadlines: verified-prefix partials, clean unwinds.
// ---------------------------------------------------------------------------

std::vector<FuncDep> PrefixOf(const std::vector<FuncDep>& full,
                              size_t max_lhs) {
  std::vector<FuncDep> out;
  for (const FuncDep& fd : full) {
    if (fd.lhs.size() <= max_lhs) out.push_back(fd);
  }
  return out;
}

TEST(ExecControlTest, CancelledDiscoveryReturnsExactVerifiedPrefix) {
  Rng rng(0xD15C0B3Bull);
  auto instance = MakePlantedFdInstance(&rng, 200, 12, 3, 8, 0.15);
  EngineDiscoveryOptions options;
  options.max_lhs_size = 3;
  options.num_threads = 2;

  DiscoveryRunInfo full_info;
  std::vector<FuncDep> full = EngineDiscoverFuncDeps(
      instance.rows, instance.universe, options, &full_info);
  ASSERT_TRUE(full_info.status.ok());
  EXPECT_FALSE(full_info.partial);
  EXPECT_EQ(full_info.completed_levels, 3u);

  // Sweep the trip point across the whole run: for EVERY n the result must
  // be the full run restricted to the completed level prefix — a level
  // either lands whole or not at all, wherever the trip hits (between
  // levels, mid-candidate-batch, inside a partition scan).
  for (int64_t n : {0, 1, 2, 3, 7, 20, 100, 1000}) {
    CancellationToken token;
    token.CancelAfterChecks(n);
    ExecContext ctx;
    ctx.set_cancellation_token(&token);
    EngineDiscoveryOptions cancelled = options;
    cancelled.exec = &ctx;
    DiscoveryRunInfo info;
    std::vector<FuncDep> got = EngineDiscoverFuncDeps(
        instance.rows, instance.universe, cancelled, &info);
    if (!info.partial) {
      // Trip armed past the run's total poll count: a complete result.
      EXPECT_EQ(got, full) << "n=" << n;
      continue;
    }
    EXPECT_EQ(info.status.code(), StatusCode::kCancelled) << "n=" << n;
    EXPECT_LT(info.completed_levels, 3u) << "n=" << n;
    EXPECT_EQ(got, PrefixOf(full, info.completed_levels))
        << "n=" << n << ": partial result is not the verified level prefix";
  }
}

TEST(ExecControlTest, HybridDiscoveryHonorsTheSamePrefixContract) {
  Rng rng(0xD15C0B3Cull);
  auto instance = MakePlantedFdInstance(&rng, 200, 12, 3, 8, 0.0);
  EngineDiscoveryOptions options;
  options.max_lhs_size = 2;
  options.num_threads = 2;
  options.strategy = DiscoveryStrategy::kHybrid;

  DiscoveryRunInfo full_info;
  std::vector<FuncDep> full = EngineDiscoverFuncDeps(
      instance.rows, instance.universe, options, &full_info);
  ASSERT_TRUE(full_info.status.ok());

  for (int64_t n : {0, 2, 10, 50}) {
    CancellationToken token;
    token.CancelAfterChecks(n);
    ExecContext ctx;
    ctx.set_cancellation_token(&token);
    EngineDiscoveryOptions cancelled = options;
    cancelled.exec = &ctx;
    DiscoveryRunInfo info;
    std::vector<FuncDep> got = EngineDiscoverFuncDeps(
        instance.rows, instance.universe, cancelled, &info);
    if (!info.partial) {
      EXPECT_EQ(got, full) << "n=" << n;
      continue;
    }
    EXPECT_EQ(info.status.code(), StatusCode::kCancelled) << "n=" << n;
    EXPECT_EQ(got, PrefixOf(full, info.completed_levels)) << "n=" << n;
  }
}

TEST(ExecControlTest, ExpiredDeadlineStopsBeforeAnyLevel) {
  Rng rng(0xDEAD11F3ull);
  auto instance = MakePlantedFdInstance(&rng, 100, 9, 2);
  ExecContext ctx;
  ctx.set_deadline(ExecContext::Clock::now() - std::chrono::seconds(1));
  EngineDiscoveryOptions options;
  options.max_lhs_size = 2;
  options.exec = &ctx;
  DiscoveryRunInfo info;
  std::vector<FuncDep> got = EngineDiscoverFuncDeps(
      instance.rows, instance.universe, options, &info);
  EXPECT_TRUE(got.empty());
  EXPECT_TRUE(info.partial);
  EXPECT_EQ(info.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(info.completed_levels, 0u);

  // The merged entry point reports the min completed level and the first
  // non-OK status.
  DiscoveryRunInfo merged;
  DependencySet sigma = EngineDiscoverDependencies(
      instance.rows, instance.universe, options, &merged);
  EXPECT_TRUE(sigma.fds().empty());
  EXPECT_TRUE(sigma.ads().empty());
  EXPECT_TRUE(merged.partial);
  EXPECT_EQ(merged.completed_levels, 0u);
}

TEST(ExecControlTest, CancellationLeavesNoPinsAndResetsRunGauges) {
  telemetry::Enable();
  telemetry::Registry::Global().Reset();
  Rng rng(0x9A00F3ull);
  auto instance = MakePlantedFdInstance(&rng, 150, 10, 2);
  PliCache cache(&instance.rows);
  DependencyValidator validator(&cache);

  CancellationToken token;
  token.CancelAfterChecks(5);  // mid-run: past the first level's poll
  ExecContext ctx;
  ctx.set_cancellation_token(&token);
  EngineDiscoveryOptions options;
  options.max_lhs_size = 3;
  options.num_threads = 2;
  options.exec = &ctx;
  DiscoveryRunInfo info;
  (void)EngineDiscoverFuncDeps(&validator, instance.universe, options, &info);
  EXPECT_TRUE(info.partial);

  // No leaked snapshot pins: every WithSnapshot unwound its stripe.
  EXPECT_TRUE(cache.SnapshotPinsDrained());
  // The per-run worker gauges were reset on the abort path, so a cancelled
  // run cannot leave a stale utilization number for dashboards to read.
  EXPECT_EQ(telemetry::Registry::Global()
                .GetGauge("engine.discovery.worker_utilization_pct")
                ->value(),
            0);
  // The context counted its trip exactly once.
  EXPECT_EQ(telemetry::Registry::Global()
                .GetCounter("engine.exec.cancelled")
                ->value(),
            1u);
  telemetry::Registry::Global().Reset();
  telemetry::Disable();
}

TEST(ExecControlTest, EvaluationSurfacesCancellationAndDeadline) {
  Rng rng(0xEBA1ull);
  std::vector<AttrId> attrs = {0, 1, 2};
  FlexibleRelation rel = FlexibleRelation::Derived("eval", DependencySet());
  for (int i = 0; i < 40; ++i) {
    rel.InsertUnchecked(RandomSoakTuple(attrs, &rng));
  }
  PlanPtr plan = Plan::NaturalJoin(Plan::Scan(&rel), Plan::Scan(&rel));

  // Sanity: the plan evaluates fine without a context.
  ASSERT_TRUE(Evaluate(plan).ok());

  CancellationToken token;
  token.RequestCancel();
  ExecContext ctx;
  ctx.set_cancellation_token(&token);
  EvalOptions options;
  options.exec = &ctx;
  auto cancelled = Evaluate(plan, options);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);

  // Mid-evaluation trip: the first polls pass, a later one trips, and the
  // error still surfaces as the overall result.
  CancellationToken late;
  late.CancelAfterChecks(2);
  ExecContext late_ctx;
  late_ctx.set_cancellation_token(&late);
  EvalOptions late_options;
  late_options.exec = &late_ctx;
  auto late_result = Evaluate(plan, late_options);
  ASSERT_FALSE(late_result.ok());
  EXPECT_EQ(late_result.status().code(), StatusCode::kCancelled);

  ExecContext deadline_ctx;
  deadline_ctx.set_deadline(ExecContext::Clock::now() -
                            std::chrono::milliseconds(1));
  EvalOptions deadline_options;
  deadline_options.exec = &deadline_ctx;
  auto expired = Evaluate(plan, deadline_options);
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);

  // After the unwinds: no leaked pins on the relation's cache.
  EXPECT_TRUE(rel.pli_cache()->SnapshotPinsDrained());
}

// ---------------------------------------------------------------------------
// 3. Memory governance: budget evicts and degrades, never changes answers.
// ---------------------------------------------------------------------------

TEST(MemoryBudgetTest, BudgetEvictsAndDegradesWithoutChangingAnswers) {
  Rng rng(ChaosSeed(4));
  std::vector<Tuple> rows = testutil::RandomInstance(&rng, 400, 8, 0.8, 12);
  PliCacheOptions budgeted_options;
  budgeted_options.memory_budget_bytes = 64 * 1024;  // deliberately tight
  PliCache budgeted(&rows, budgeted_options);
  PliCache oracle(&rows);

  std::vector<AttrSet> keys;
  for (AttrId a = 0; a < 8; ++a) {
    for (AttrId b = static_cast<AttrId>(a + 1); b < 8; ++b) {
      keys.push_back(AttrSet{a, b});
    }
  }
  for (AttrId a = 0; a < 6; ++a) {
    keys.push_back(AttrSet{a, static_cast<AttrId>(a + 1),
                           static_cast<AttrId>(a + 2)});
  }
  for (int pass = 0; pass < 2; ++pass) {
    for (const AttrSet& k : keys) {
      std::shared_ptr<const Pli> got = budgeted.Get(k);
      std::shared_ptr<const Pli> want = oracle.Get(k);
      ASSERT_EQ(*got, *want)
          << "budgeted answer diverged for " << k.ToString();
    }
  }
  PliCache::StatsSnapshot stats = budgeted.Stats();
  // The budget actually governed: evictions or uncached serves happened,
  // and the accounted footprint respects the ceiling (uncached serves are
  // what absorb the overflow when only pinned bases remain).
  EXPECT_GT(stats.budget_evictions + stats.uncached_serves, 0u)
      << "a 64 KiB budget over 28 pair partitions never triggered "
         "governance";
  EXPECT_GT(stats.bytes_plis + stats.bytes_probes + stats.bytes_indexes +
                stats.bytes_columns,
            0u);

  // Budget off: every governance counter stays zero (the counter face of
  // the ≤1% overhead contract perf_smoke checks in CI).
  PliCache::StatsSnapshot oracle_stats = oracle.Stats();
  EXPECT_EQ(oracle_stats.budget_evictions, 0u);
  EXPECT_EQ(oracle_stats.uncached_serves, 0u);
  EXPECT_EQ(oracle_stats.bytes_plis, 0u);
  EXPECT_EQ(oracle_stats.bytes_probes, 0u);
  EXPECT_EQ(oracle_stats.bytes_indexes, 0u);
  EXPECT_EQ(oracle_stats.bytes_columns, 0u);
}

TEST(MemoryBudgetTest, ExecContextBudgetSeedsDiscoveryCaches) {
  Rng rng(ChaosSeed(5));
  auto instance = MakePlantedFdInstance(&rng, 150, 9, 2);
  EngineDiscoveryOptions plain;
  plain.max_lhs_size = 2;
  std::vector<FuncDep> want =
      EngineDiscoverFuncDeps(instance.rows, instance.universe, plain);

  ExecContext ctx;
  ctx.set_memory_budget_bytes(32 * 1024);
  EngineDiscoveryOptions governed = plain;
  governed.exec = &ctx;
  DiscoveryRunInfo info;
  std::vector<FuncDep> got = EngineDiscoverFuncDeps(
      instance.rows, instance.universe, governed, &info);
  // Governance degrades performance, never results: the run completes with
  // identical output.
  EXPECT_TRUE(info.status.ok()) << info.status;
  EXPECT_FALSE(info.partial);
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace flexrel
