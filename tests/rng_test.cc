#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace flexrel {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(3, 3), 3);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(19);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.03);
}

TEST(RngTest, SampleDistinctAndInRange) {
  Rng rng(23);
  std::vector<size_t> s = rng.Sample(10, 4);
  EXPECT_EQ(s.size(), 4u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 4u);
  for (size_t v : s) EXPECT_LT(v, 10u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(29);
  std::vector<size_t> s = rng.Sample(5, 5);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(s, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng rng(0);
  // Must not get stuck at zero.
  EXPECT_NE(rng.Next(), rng.Next());
}

}  // namespace
}  // namespace flexrel
