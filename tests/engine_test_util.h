// Shared randomized instance / workload generators for the engine test
// suites. One home for the soak-value distributions, the random flexible
// instances the discovery suites cross-validate on, the employee-workload
// mutation step the eval and incremental soaks both drive, and the
// planted-FD / Zipfian shapes the hybrid-discovery differential harness
// sweeps. Everything is driven by an explicit Rng so suites stay
// replayable through tests/test_seed.h.

#ifndef FLEXREL_TESTS_ENGINE_TEST_UTIL_H_
#define FLEXREL_TESTS_ENGINE_TEST_UTIL_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/dependency_set.h"
#include "relational/tuple.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "workload/generator.h"

namespace flexrel {
namespace testutil {

/// The soak value mix: fat clusters (few small ints / short strings), an
/// explicit-null arm (null equals null, so nulls cluster), and a
/// mostly-unique tail — every PLI code path in one distribution.
inline Value RandomSoakValue(Rng* rng) {
  switch (rng->UniformInt(0, 3)) {
    case 0:
      return Value::Int(rng->UniformInt(0, 4));  // few values -> fat clusters
    case 1:
      return Value::Str(StrCat("s", rng->UniformInt(0, 2)));
    case 2:
      return Value::Null();  // explicit null: clusters under the Null key
    default:
      return Value::Int(rng->UniformInt(0, 1000));  // mostly-unique tail
  }
}

/// A flexible tuple over `attrs`: each attribute present with p = 0.75, so
/// presence patterns vary (the flexible-relation premise).
inline Tuple RandomSoakTuple(const std::vector<AttrId>& attrs, Rng* rng) {
  Tuple t;
  for (AttrId a : attrs) {
    if (rng->Bernoulli(0.75)) t.Set(a, RandomSoakValue(rng));
  }
  return t;
}

/// {0, 1, ..., n-1} as an AttrSet.
inline AttrSet FullUniverse(size_t n) {
  AttrSet u;
  for (size_t i = 0; i < n; ++i) u.Insert(static_cast<AttrId>(i));
  return u;
}

/// A random flexible instance: `n` tuples over attributes [0, num_attrs),
/// each attribute present with probability `density`, int values in
/// [0, spread]. Deduplicated and sorted, so it doubles as a set-semantics
/// relation snapshot.
inline std::vector<Tuple> RandomInstance(Rng* rng, size_t n, AttrId num_attrs,
                                         double density, int64_t spread) {
  std::vector<Tuple> rows;
  for (size_t i = 0; i < n; ++i) {
    Tuple t;
    for (AttrId a = 0; a < num_attrs; ++a) {
      if (rng->Bernoulli(density)) {
        t.Set(a, Value::Int(rng->UniformInt(0, spread)));
      }
    }
    rows.push_back(std::move(t));
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

/// The employee-workload shape the eval and incremental soaks share:
/// `num_variants` = 0 derives the variant count from the seed (2..4), as
/// the cross-validation sweeps do.
inline EmployeeConfig SoakEmployeeConfig(uint64_t seed, size_t rows,
                                         size_t num_variants = 0) {
  EmployeeConfig config;
  config.num_variants = num_variants != 0 ? num_variants : 2 + seed % 3;
  config.attrs_per_variant = 2;
  config.rows = rows;
  config.seed = seed;
  return config;
}

struct EmployeeMutationOutcome {
  Status status;       ///< first unexpected failure, OK otherwise
  bool inserted = false;     ///< the insert arm ran and was accepted
  bool type_changed = false; ///< the update arm produced a presence delta
};

/// One random mutation against the generated employee relation — the step
/// the eval and incremental soaks both drive. `kind` < 0 flips a coin;
/// 0 forces the checked insert (duplicates bounce off set semantics and
/// count as success); 1 forces a jobtype flip, the footnote-3 type change
/// whose delta removes the old variant's attributes and pulls the new
/// variant's from a random fill tuple.
inline EmployeeMutationOutcome ApplyRandomEmployeeMutation(
    EmployeeWorkload* workload, Rng* rng, int kind = -1) {
  EmployeeMutationOutcome out;
  if (kind < 0) kind = rng->Bernoulli(0.5) ? 0 : 1;
  if (kind == 0) {
    Status s = workload->relation.Insert(RandomEmployee(*workload, rng));
    if (s.ok()) {
      out.inserted = true;
    } else if (s.code() != StatusCode::kAlreadyExists) {
      out.status = s;
    }
    return out;
  }
  size_t row = rng->Index(workload->relation.size());
  int variant =
      static_cast<int>(rng->Index(workload->jobtype_values.size()));
  Tuple fill = RandomEmployee(*workload, rng, variant);
  auto delta = workload->relation.Update(
      row, workload->jobtype_attr, workload->jobtype_values[variant], fill);
  if (!delta.ok()) {
    out.status = delta.status();
    return out;
  }
  out.type_changed =
      !delta.value().to_add.empty() || !delta.value().to_remove.empty();
  return out;
}

/// Zipf(s) sampler over ranks [0, n): rank r with weight 1/(r+1)^s. The
/// skewed-cluster shape — a few huge partitions, a long unique-ish tail —
/// that uniform soak values never produce.
class ZipfianDist {
 public:
  explicit ZipfianDist(size_t n, double s = 1.1) : cdf_(n) {
    double total = 0.0;
    for (size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  size_t Sample(Rng* rng) const {
    double u = rng->UniformDouble();
    return std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin();
  }

 private:
  std::vector<double> cdf_;
};

/// A wide instance with dependencies planted by construction, the hybrid
/// discovery differential shape: attributes draw Zipfian-skewed values
/// from a small domain (fat clusters -> real partition work), and planted
/// FD i makes attribute 3i+2 a function of attributes {3i, 3i+1}, so
/// {3i, 3i+1} --func--> 3i+2 holds exactly. With `absence` > 0,
/// non-planted attributes go missing at that rate (planted attributes stay
/// present so the plants survive), which gives the AD pass genuine
/// presence-disagreement evidence too.
struct PlantedFdInstance {
  std::vector<Tuple> rows;
  AttrSet universe;
  std::vector<FuncDep> planted;
};

inline PlantedFdInstance MakePlantedFdInstance(Rng* rng, size_t num_rows,
                                               AttrId num_attrs,
                                               size_t num_planted,
                                               int64_t domain = 16,
                                               double absence = 0.0) {
  PlantedFdInstance out;
  out.universe = FullUniverse(num_attrs);
  AttrSet planted_attrs;
  for (size_t p = 0; p < num_planted && 3 * p + 2 < num_attrs; ++p) {
    AttrId base = static_cast<AttrId>(3 * p);
    out.planted.push_back(
        FuncDep{AttrSet{base, base + 1}, AttrSet::Of(base + 2)});
    planted_attrs.Insert(base);
    planted_attrs.Insert(base + 1);
    planted_attrs.Insert(base + 2);
  }
  ZipfianDist dist(static_cast<size_t>(domain));
  for (size_t i = 0; i < num_rows; ++i) {
    Tuple t;
    for (AttrId a = 0; a < num_attrs; ++a) {
      if (absence > 0.0 && !planted_attrs.Contains(a) &&
          rng->Bernoulli(absence)) {
        continue;
      }
      t.Set(a, Value::Int(static_cast<int64_t>(dist.Sample(rng))));
    }
    for (const FuncDep& fd : out.planted) {
      const std::vector<AttrId>& lhs = fd.lhs.ids();
      int64_t v0 = t.Get(lhs[0])->as_int();
      int64_t v1 = t.Get(lhs[1])->as_int();
      t.Set(fd.rhs.ids().front(), Value::Int((v0 * 7 + v1 * 13) % domain));
    }
    out.rows.push_back(std::move(t));
  }
  return out;
}

}  // namespace testutil
}  // namespace flexrel

#endif  // FLEXREL_TESTS_ENGINE_TEST_UTIL_H_
