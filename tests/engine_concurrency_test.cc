// Concurrency soak for the COW snapshot plane (PliCache with
// PliCacheOptions::cow_reads, the default): N reader threads resolve cached
// partitions, probes, and value indexes through the published snapshot
// while M writer threads mutate the relation, and every structure a reader
// observes must be internally coherent — CheckInvariants holds, and the
// probe describes exactly the partition's clustering (a label bijection)
// whenever both were bracketed inside one epoch. At quiesce, everything
// must equal a from-scratch rebuild, and COW mode must be structurally
// identical to the locked in-place oracle (cow_reads = false) across a
// 30-seed single-threaded soak.
//
// The reader threads deliberately touch only pre-warmed keys: the row
// vector itself is NOT under the snapshot contract (mutators synchronize
// rows() access externally, see src/engine/README.md), so a cold miss —
// which rebuilds from rows() — belongs to the write side. Warmed singles,
// pairs, and indexes are never dropped by sub-threshold per-row flushes,
// so every reader access resolves against immutable snapshot structures.
// This is the suite the CI TSan job runs; a reader acquiring mu_ (or a
// writer publishing a structure it then patches) is a data-race report,
// not just an assertion failure.
//
// Randomized parts take their seed from FLEXREL_TEST_SEED (CI seed
// diversity) via tests/test_seed.h and print it for replay.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/flexible_relation.h"
#include "engine/pli_cache.h"
#include "telemetry/telemetry.h"
#include "test_seed.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace flexrel {
namespace {

uint64_t ConcurrencySeed(uint64_t salt) {
  return TestSeed(0xC0C0D0DE5EED0001ull, salt, "concurrency");
}

Value RandomValue(Rng* rng) {
  switch (rng->UniformInt(0, 3)) {
    case 0:
      return Value::Int(rng->UniformInt(0, 4));  // few values -> fat clusters
    case 1:
      return Value::Str(StrCat("s", rng->UniformInt(0, 2)));
    case 2:
      return Value::Null();
    default:
      return Value::Int(rng->UniformInt(0, 1000));  // mostly-unique tail
  }
}

Tuple RandomTuple(const std::vector<AttrId>& attrs, Rng* rng) {
  Tuple t;
  for (AttrId a : attrs) {
    if (rng->Bernoulli(0.75)) t.Set(a, RandomValue(rng));
  }
  return t;
}

// The probe of a partition must be the partition's clustering in label
// form: every cluster carries exactly one label, every label names exactly
// one cluster, every row outside all clusters is kNoCluster, and labeled
// rows account for grouped_rows() exactly. Unlike the incremental suite's
// VerifyProbeEquivalent this needs no rebuild — it is safe to run against
// a live snapshot while writers advance the relation.
void VerifyProbeBijection(const Pli& pli, const PliProbe& probe,
                          const std::string& context) {
  ASSERT_EQ(probe.labels.size(), pli.num_rows()) << context;
  std::unordered_map<int32_t, size_t> label_to_cluster;
  size_t labeled_rows = 0;
  for (size_t c = 0; c < pli.num_clusters(); ++c) {
    Pli::ClusterView cluster = pli.cluster(c);
    ASSERT_FALSE(cluster.empty()) << context;
    const int32_t label = probe.labels[cluster.front()];
    ASSERT_NE(label, Pli::kNoCluster)
        << context << " cluster " << c << " front row unlabeled";
    ASSERT_GE(label, 0) << context;
    ASSERT_LT(label, probe.label_bound)
        << context << " cluster " << c << " label breaks the bound";
    auto [it, fresh] = label_to_cluster.try_emplace(label, c);
    ASSERT_TRUE(fresh) << context << " label " << label << " names clusters "
                       << it->second << " and " << c;
    for (Pli::RowId row : cluster) {
      ASSERT_EQ(probe.labels[row], label)
          << context << " row " << row << " strays from cluster " << c;
    }
    labeled_rows += cluster.size();
  }
  EXPECT_EQ(labeled_rows, pli.grouped_rows()) << context;
  size_t labeled_in_probe = 0;
  for (int32_t l : probe.labels) {
    if (l != Pli::kNoCluster) ++labeled_in_probe;
  }
  EXPECT_EQ(labeled_in_probe, labeled_rows)
      << context << " probe labels rows outside every cluster";
}

struct WarmKeys {
  std::vector<AttrSet> partitions;  // singles first, then composites
  std::vector<AttrId> indexes;      // every attribute (partner-scan source)
};

WarmKeys WarmCache(PliCache* cache, const std::vector<AttrId>& attrs) {
  WarmKeys keys;
  for (AttrId a : attrs) keys.partitions.push_back(AttrSet::Of(a));
  keys.partitions.push_back(AttrSet{attrs[0], attrs[1]});
  keys.partitions.push_back(AttrSet{attrs[2], attrs[3]});
  keys.partitions.push_back(AttrSet{attrs[0], attrs[2], attrs[4]});
  keys.partitions.push_back(AttrSet());
  keys.indexes = attrs;
  for (const AttrSet& k : keys.partitions) (void)cache->Get(k);
  for (AttrId a : keys.indexes) (void)cache->IndexFor(a);
  for (AttrId a : attrs) (void)cache->ProbeFor(a);
  return keys;
}

void VerifyAgainstRebuildAtQuiesce(const FlexibleRelation& rel,
                                   const WarmKeys& keys,
                                   const std::string& context) {
  std::shared_ptr<PliCache> cache = rel.pli_cache();
  PliCache rebuild(&rel.rows());
  for (const AttrSet& k : keys.partitions) {
    std::shared_ptr<const Pli> cached = cache->Get(k);
    std::shared_ptr<const Pli> fresh = rebuild.Get(k);
    ASSERT_EQ(*cached, *fresh)
        << context << " partition " << k.ToString() << " diverged";
    std::string err;
    ASSERT_TRUE(cached->CheckInvariants(&err))
        << context << " partition " << k.ToString() << ": " << err;
    if (k.size() == 1) {
      ASSERT_NO_FATAL_FAILURE(VerifyProbeBijection(
          *cached, *cache->ProbeFor(k.ids().front()),
          StrCat(context, " probe of ", k.ToString())));
    }
  }
  for (AttrId a : keys.indexes) {
    ASSERT_EQ(*cache->IndexFor(a), *rebuild.IndexFor(a))
        << context << " value index of attr " << a << " diverged";
  }
}

// ---------------------------------------------------------------------------
// The tentpole contract: N readers × M writers, readers lock-free.
// ---------------------------------------------------------------------------

TEST(EngineConcurrencySoak, ReadersObserveCoherentSnapshotsUnderWriters) {
  telemetry::Enable();
  const uint64_t lock_waits_before =
      telemetry::CounterValue("engine.pli_cache.reader_lock_waits");
  const uint64_t seed = ConcurrencySeed(1);

  AttrCatalog catalog;
  std::vector<AttrId> attrs;
  for (int i = 0; i < 6; ++i) attrs.push_back(catalog.Intern(StrCat("c", i)));
  FlexibleRelation rel = FlexibleRelation::Derived("cc", DependencySet());
  {
    Rng seed_rng(seed);
    for (int i = 0; i < 200; ++i) {
      rel.InsertUnchecked(RandomTuple(attrs, &seed_rng));
    }
  }
  std::shared_ptr<PliCache> cache = rel.pli_cache();
  ASSERT_TRUE(cache->options().cow_reads);
  const WarmKeys keys = WarmCache(cache.get(), attrs);
  ASSERT_GT(cache->SnapshotEpoch(), 0u) << "warming must have published";

  constexpr int kReaders = 4;
  constexpr int kWriters = 2;
  constexpr int kOpsPerWriter = 300;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> bracketed_checks{0};

  // Writers synchronize the row vector among themselves — that is the
  // documented external contract; the snapshot plane only covers the
  // cached structures readers resolve.
  std::mutex write_mu;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(seed ^ (0x5151u + static_cast<uint64_t>(w) * 7919));
      for (int op = 0; op < kOpsPerWriter; ++op) {
        std::lock_guard<std::mutex> lock(write_mu);
        if (rng.Bernoulli(0.3)) {
          rel.InsertUnchecked(RandomTuple(attrs, &rng));
        } else {
          size_t row = rng.Index(rel.size());
          AttrId attr = attrs[rng.Index(attrs.size())];
          Value v = RandomValue(&rng);
          ASSERT_TRUE(rel.Update(row, attr, v).ok());
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(seed ^ (0xAAAAu + static_cast<uint64_t>(r) * 104729));
      // The iteration floor keeps the soak meaningful even when the writers
      // outrun reader startup: post-quiesce reads always bracket cleanly.
      for (uint64_t iter = 0;
           !done.load(std::memory_order_acquire) || iter < 50; ++iter) {
        const AttrSet& key =
            keys.partitions[rng.Index(keys.partitions.size())];
        // Epoch-bracketing: equal epochs before and after prove the pli
        // and the probe came from one snapshot — only then is the
        // probe↔cluster bijection a valid cross-structure assertion.
        const uint64_t epoch_before = cache->SnapshotEpoch();
        std::shared_ptr<const Pli> pli = cache->Get(key);
        std::string err;
        EXPECT_TRUE(pli->CheckInvariants(&err))
            << "reader " << r << " partition " << key.ToString() << ": "
            << err;
        if (key.size() == 1) {
          std::shared_ptr<const PliProbe> probe =
              cache->ProbeFor(key.ids().front());
          if (cache->SnapshotEpoch() == epoch_before) {
            ASSERT_NO_FATAL_FAILURE(VerifyProbeBijection(
                *pli, *probe,
                StrCat("reader ", r, " probe of ", key.ToString())));
            bracketed_checks.fetch_add(1, std::memory_order_relaxed);
          }
        }
        (void)cache->IndexFor(keys.indexes[rng.Index(keys.indexes.size())]);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_GT(bracketed_checks.load(), 0u)
      << "the soak never caught a quiet epoch; weaken the write storm";
  ASSERT_NO_FATAL_FAILURE(
      VerifyAgainstRebuildAtQuiesce(rel, keys, "quiesce"));

  const PliCache::StatsSnapshot stats = cache->Stats();
  EXPECT_EQ(stats.publishes, stats.flushes)
      << "COW mode must publish exactly once per flush";
  EXPECT_GT(stats.publishes, 0u);
  EXPECT_GE(stats.epoch, stats.publishes);
  EXPECT_EQ(stats.pending_deltas, 0u) << "COW hooks flush eagerly";
  // The lock-free guarantee, as a counter identity: no snapshot read ever
  // took mu_. (Locked-mode reads bump this by design — see the locked-mode
  // oracle test below.)
  EXPECT_EQ(telemetry::CounterValue("engine.pli_cache.reader_lock_waits"),
            lock_waits_before)
      << "a COW-mode snapshot read acquired the cache mutex";
  telemetry::Disable();
}

// ---------------------------------------------------------------------------
// COW vs the locked in-place oracle: structurally identical, 30 seeds.
// ---------------------------------------------------------------------------

TEST(EngineConcurrencySoak, CowModeMatchesLockedOracleAcrossSeeds) {
  const uint64_t base = ConcurrencySeed(2);
  for (uint64_t s = 0; s < 30; ++s) {
    Rng rng(base + s * 0x9E3779B97F4A7C15ull);
    AttrCatalog catalog;
    std::vector<AttrId> attrs;
    for (int i = 0; i < 5; ++i) {
      attrs.push_back(catalog.Intern(StrCat("d", i)));
    }
    FlexibleRelation cow = FlexibleRelation::Derived("cow", DependencySet());
    FlexibleRelation locked =
        FlexibleRelation::Derived("locked", DependencySet());
    PliCacheOptions locked_options;
    locked_options.cow_reads = false;
    locked.SetPliCacheOptions(locked_options);

    for (int i = 0; i < 40; ++i) {
      Tuple t = RandomTuple(attrs, &rng);
      cow.InsertUnchecked(t);
      locked.InsertUnchecked(std::move(t));
    }
    WarmKeys cow_keys = WarmCache(cow.pli_cache().get(), attrs);
    (void)WarmCache(locked.pli_cache().get(), attrs);

    for (int op = 0; op < 60; ++op) {
      if (rng.Bernoulli(0.5)) {
        Tuple t = RandomTuple(attrs, &rng);
        cow.InsertUnchecked(t);
        locked.InsertUnchecked(std::move(t));
      } else {
        size_t row = rng.Index(cow.size());
        AttrId attr = attrs[rng.Index(attrs.size())];
        Value v = RandomValue(&rng);
        ASSERT_TRUE(cow.Update(row, attr, v).ok()) << "seed#" << s;
        ASSERT_TRUE(locked.Update(row, attr, v).ok()) << "seed#" << s;
      }
      if (op % 12 == 11) {
        std::shared_ptr<PliCache> lhs = cow.pli_cache();
        std::shared_ptr<PliCache> rhs = locked.pli_cache();
        for (const AttrSet& k : cow_keys.partitions) {
          ASSERT_EQ(*lhs->Get(k), *rhs->Get(k))
              << "seed#" << s << " op#" << op << " partition "
              << k.ToString();
        }
        for (AttrId a : cow_keys.indexes) {
          ASSERT_EQ(*lhs->IndexFor(a), *rhs->IndexFor(a))
              << "seed#" << s << " op#" << op << " index attr " << a;
        }
      }
    }
    ASSERT_NO_FATAL_FAILURE(VerifyAgainstRebuildAtQuiesce(
        cow, cow_keys, StrCat("seed#", s, " cow quiesce")));

    // Mode-defining counter identities, both directions.
    const PliCache::StatsSnapshot cs = cow.pli_cache()->Stats();
    const PliCache::StatsSnapshot ls = locked.pli_cache()->Stats();
    ASSERT_EQ(cs.publishes, cs.flushes) << "seed#" << s;
    ASSERT_GT(cs.publishes, 0u) << "seed#" << s;
    ASSERT_EQ(ls.publishes, 0u)
        << "seed#" << s << " locked mode must never publish";
    ASSERT_EQ(ls.epoch, 0u) << "seed#" << s;
    ASSERT_EQ(cow.pli_cache()->SnapshotEpoch(), cs.epoch) << "seed#" << s;
    ASSERT_EQ(locked.pli_cache()->SnapshotEpoch(), 0u) << "seed#" << s;
  }
}

// ---------------------------------------------------------------------------
// Frozen-at-epoch semantics: a held snapshot structure never moves.
// ---------------------------------------------------------------------------

TEST(EngineConcurrencySoak, HeldSnapshotStructuresAreFrozenAcrossEpochs) {
  AttrCatalog catalog;
  AttrId a = catalog.Intern("a");
  FlexibleRelation rel = FlexibleRelation::Derived("frozen", DependencySet());
  for (int i = 0; i < 8; ++i) {
    Tuple t;
    t.Set(a, Value::Int(i % 2));
    rel.InsertUnchecked(t);
  }
  std::shared_ptr<PliCache> cache = rel.pli_cache();
  std::shared_ptr<const Pli> held = cache->Get(AttrSet::Of(a));
  const Pli before = *held;  // deep copy: the frozen-state oracle
  const uint64_t epoch_before = cache->SnapshotEpoch();

  ASSERT_TRUE(rel.Update(0, a, Value::Int(41)).ok());
  ASSERT_TRUE(rel.Update(1, a, Value::Int(42)).ok());

  // The held pointer still describes the epoch it was read from...
  EXPECT_EQ(*held, before)
      << "a published partition was patched in place under a reader";
  EXPECT_GT(cache->SnapshotEpoch(), epoch_before);
  // ...while a re-read resolves the successor epoch's structure.
  std::shared_ptr<const Pli> fresh = cache->Get(AttrSet::Of(a));
  EXPECT_NE(fresh.get(), held.get());
  PliCache rebuild(&rel.rows());
  EXPECT_EQ(*fresh, *rebuild.Get(AttrSet::Of(a)));
}

}  // namespace
}  // namespace flexrel
