#include "core/flexible_scheme.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"
#include "util/string_util.h"
#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace flexrel {
namespace {

class SchemeTest : public ::testing::Test {
 protected:
  AttrCatalog catalog_;
  AttrSet Ids(const std::vector<std::string>& names) {
    std::vector<AttrId> ids;
    for (const auto& n : names) ids.push_back(catalog_.Intern(n));
    return AttrSet::FromIds(std::move(ids));
  }
};

TEST_F(SchemeTest, RelationalSchemeAdmitsExactlyItsAttrs) {
  AttrSet abc = Ids({"A", "B", "C"});
  auto fs = FlexibleScheme::Relational(abc);
  ASSERT_TRUE(fs.ok());
  EXPECT_TRUE(fs.value().Admits(abc));
  EXPECT_FALSE(fs.value().Admits(Ids({"A", "B"})));
  EXPECT_FALSE(fs.value().Admits(AttrSet()));
  EXPECT_EQ(fs.value().DnfCount(), 1u);
}

TEST_F(SchemeTest, DisjointUnionAdmitsOneOf) {
  auto fs = FlexibleScheme::DisjointUnion(
      {FlexibleScheme::Attr(catalog_.Intern("C")),
       FlexibleScheme::Attr(catalog_.Intern("D"))});
  ASSERT_TRUE(fs.ok());
  EXPECT_TRUE(fs.value().Admits(Ids({"C"})));
  EXPECT_TRUE(fs.value().Admits(Ids({"D"})));
  EXPECT_FALSE(fs.value().Admits(Ids({"C", "D"})));
  EXPECT_FALSE(fs.value().Admits(AttrSet()));
  EXPECT_EQ(fs.value().DnfCount(), 2u);
}

TEST_F(SchemeTest, NonDisjointUnionAdmitsNonEmptySubsets) {
  auto fs = FlexibleScheme::NonDisjointUnion(
      {FlexibleScheme::Attr(catalog_.Intern("E")),
       FlexibleScheme::Attr(catalog_.Intern("F")),
       FlexibleScheme::Attr(catalog_.Intern("G"))});
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ(fs.value().DnfCount(), 7u);  // 2^3 - 1
  EXPECT_TRUE(fs.value().Admits(Ids({"E"})));
  EXPECT_TRUE(fs.value().Admits(Ids({"E", "G"})));
  EXPECT_TRUE(fs.value().Admits(Ids({"E", "F", "G"})));
  EXPECT_FALSE(fs.value().Admits(AttrSet()));
}

TEST_F(SchemeTest, OptionalPart) {
  auto fs = FlexibleScheme::Optional(
      FlexibleScheme::Attr(catalog_.Intern("H")));
  ASSERT_TRUE(fs.ok());
  EXPECT_TRUE(fs.value().Admits(AttrSet()));
  EXPECT_TRUE(fs.value().Admits(Ids({"H"})));
  EXPECT_EQ(fs.value().DnfCount(), 2u);
}

TEST_F(SchemeTest, GroupValidation) {
  std::vector<FlexibleScheme> comps;
  comps.push_back(FlexibleScheme::Attr(catalog_.Intern("A")));
  // at-least > at-most.
  EXPECT_FALSE(FlexibleScheme::Group(2, 1, comps).ok());
  // at-most beyond component count.
  EXPECT_FALSE(FlexibleScheme::Group(0, 2, comps).ok());
  // Duplicate attribute across components.
  std::vector<FlexibleScheme> dup;
  dup.push_back(FlexibleScheme::Attr(catalog_.Intern("A")));
  dup.push_back(FlexibleScheme::Attr(catalog_.Intern("A")));
  EXPECT_FALSE(FlexibleScheme::Group(2, 2, std::move(dup)).ok());
}

// ---- Example 1 of the paper ------------------------------------------------

TEST_F(SchemeTest, Example1Has14Combinations) {
  auto fs = MakeExample1Scheme(&catalog_);
  ASSERT_TRUE(fs.ok()) << fs.status();
  EXPECT_EQ(fs.value().DnfCount(), 14u);
  auto dnf = fs.value().Dnf();
  ASSERT_TRUE(dnf.ok());
  EXPECT_EQ(dnf.value().size(), 14u);
}

TEST_F(SchemeTest, Example1DnfMatchesThePaperList) {
  auto fs = MakeExample1Scheme(&catalog_);
  ASSERT_TRUE(fs.ok());
  auto dnf = fs.value().Dnf();
  ASSERT_TRUE(dnf.ok());
  std::set<AttrSet> got(dnf.value().begin(), dnf.value().end());
  // dnf(FS) = {ABCE, ABDE, ABCF, ABDF, ABCG, ABDG, ABCEF, ABDEF, ABCEG,
  //            ABDEG, ABCFG, ABDFG, ABCEFG, ABDEFG}
  const std::vector<std::vector<std::string>> expected = {
      {"A", "B", "C", "E"},           {"A", "B", "D", "E"},
      {"A", "B", "C", "F"},           {"A", "B", "D", "F"},
      {"A", "B", "C", "G"},           {"A", "B", "D", "G"},
      {"A", "B", "C", "E", "F"},      {"A", "B", "D", "E", "F"},
      {"A", "B", "C", "E", "G"},      {"A", "B", "D", "E", "G"},
      {"A", "B", "C", "F", "G"},      {"A", "B", "D", "F", "G"},
      {"A", "B", "C", "E", "F", "G"}, {"A", "B", "D", "E", "F", "G"}};
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& names : expected) {
    EXPECT_TRUE(got.count(Ids(names)))
        << "missing combination {" << Join(names, ",") << "}";
  }
}

TEST_F(SchemeTest, Example1Membership) {
  auto fs = MakeExample1Scheme(&catalog_);
  ASSERT_TRUE(fs.ok());
  EXPECT_TRUE(fs.value().Admits(Ids({"A", "B", "C", "E"})));
  EXPECT_TRUE(fs.value().Admits(Ids({"A", "B", "D", "E", "F", "G"})));
  // Both C and D: violates the disjoint union.
  EXPECT_FALSE(fs.value().Admits(Ids({"A", "B", "C", "D", "E"})));
  // None of E/F/G: violates the non-disjoint union's lower bound.
  EXPECT_FALSE(fs.value().Admits(Ids({"A", "B", "C"})));
  // Missing unconditioned B.
  EXPECT_FALSE(fs.value().Admits(Ids({"A", "C", "E"})));
}

TEST_F(SchemeTest, ParseRoundTrip) {
  auto fs = MakeExample1Scheme(&catalog_);
  ASSERT_TRUE(fs.ok());
  std::string text = fs.value().ToString(catalog_);
  auto reparsed = FlexibleScheme::Parse(&catalog_, text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_TRUE(fs.value() == reparsed.value());
}

TEST_F(SchemeTest, ParseErrors) {
  EXPECT_FALSE(FlexibleScheme::Parse(&catalog_, "<1,2").ok());
  EXPECT_FALSE(FlexibleScheme::Parse(&catalog_, "<x,2,{A}>").ok());
  EXPECT_FALSE(FlexibleScheme::Parse(&catalog_, "<1,1,{A}> junk").ok());
  EXPECT_FALSE(FlexibleScheme::Parse(&catalog_, "<2,1,{A,B}>").ok());
  EXPECT_TRUE(FlexibleScheme::Parse(&catalog_, "  <1, 1, { A , B }> ").ok());
}

TEST_F(SchemeTest, NestedOptionalRealizesEmpty) {
  // <1,1,{ <0,1,{A}> , B }>: choosing the optional group empty is legal,
  // so dnf = { {}, {A}, {B} }.
  auto fs = FlexibleScheme::Parse(&catalog_, "<1,1,{<0,1,{A}>,B}>");
  ASSERT_TRUE(fs.ok());
  EXPECT_TRUE(fs.value().Admits(AttrSet()));
  EXPECT_TRUE(fs.value().Admits(Ids({"A"})));
  EXPECT_TRUE(fs.value().Admits(Ids({"B"})));
  EXPECT_FALSE(fs.value().Admits(Ids({"A", "B"})));
  EXPECT_EQ(fs.value().DnfCount(), 3u);
}

TEST_F(SchemeTest, DnfCountDeduplicatesChoicePaths) {
  // {A} is realizable both by choosing only A and by choosing A plus the
  // empty-capable group: still one distinct combination.
  auto fs = FlexibleScheme::Parse(&catalog_, "<1,2,{A,<0,1,{B}>}>");
  ASSERT_TRUE(fs.ok());
  auto dnf = fs.value().Dnf();
  ASSERT_TRUE(dnf.ok());
  std::set<AttrSet> distinct(dnf.value().begin(), dnf.value().end());
  EXPECT_EQ(fs.value().DnfCount(), distinct.size());
  // {} (the group alone, empty), {A} (twice realizable, counted once),
  // {B}, {A, B}.
  EXPECT_EQ(distinct.size(), 4u);
}

TEST_F(SchemeTest, ProjectionAdmitsExactlyProjectedDnf) {
  auto fs = MakeExample1Scheme(&catalog_);
  ASSERT_TRUE(fs.ok());
  AttrSet keep = Ids({"A", "C", "D", "E"});
  FlexibleScheme projected = fs.value().Project(keep);
  auto dnf = fs.value().Dnf();
  ASSERT_TRUE(dnf.ok());
  std::set<AttrSet> expected;
  for (const AttrSet& s : dnf.value()) expected.insert(s.Intersect(keep));
  auto projected_dnf = projected.Dnf();
  ASSERT_TRUE(projected_dnf.ok());
  std::set<AttrSet> got(projected_dnf.value().begin(),
                        projected_dnf.value().end());
  EXPECT_EQ(got, expected);
}

TEST_F(SchemeTest, ConcatRequiresDisjointAttrs) {
  auto ab = FlexibleScheme::Relational(Ids({"A", "B"}));
  auto bc = FlexibleScheme::Relational(Ids({"B", "C"}));
  auto cd = FlexibleScheme::Relational(Ids({"C", "D"}));
  ASSERT_TRUE(ab.ok() && bc.ok() && cd.ok());
  EXPECT_FALSE(ab.value().Concat(bc.value()).ok());
  auto joined = ab.value().Concat(cd.value());
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined.value().Admits(Ids({"A", "B", "C", "D"})));
  EXPECT_EQ(joined.value().DnfCount(), 1u);
}

TEST_F(SchemeTest, DnfLimitGuardsBlowup) {
  // 2^20 - 1 combinations exceed a small limit.
  std::vector<FlexibleScheme> leaves;
  for (int i = 0; i < 20; ++i) {
    leaves.push_back(FlexibleScheme::Attr(catalog_.Intern(StrCat("L", i))));
  }
  auto fs = FlexibleScheme::Group(1, 20, std::move(leaves));
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ(fs.value().DnfCount(), (1u << 20) - 1);
  EXPECT_EQ(fs.value().Dnf(1000).status().code(), StatusCode::kOutOfRange);
}

TEST_F(SchemeTest, EmptySchemeAdmitsOnlyEmpty) {
  FlexibleScheme empty;
  EXPECT_TRUE(empty.Admits(AttrSet()));
  EXPECT_FALSE(empty.Admits(Ids({"A"})));
  EXPECT_EQ(empty.DnfCount(), 1u);
}

// ---- Property sweep: Admits() and DnfCount() agree with enumeration --------

class RandomSchemeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSchemeProperty, MembershipMatchesEnumerationAndCountIsExact) {
  AttrCatalog catalog;
  Rng rng(GetParam());
  FlexibleScheme fs = RandomScheme(&catalog, &rng, 3, 4,
                                   StrCat("s", GetParam()));
  auto dnf_result = fs.Dnf(1u << 16);
  ASSERT_TRUE(dnf_result.ok()) << dnf_result.status();
  const std::vector<AttrSet>& dnf = dnf_result.value();
  std::set<AttrSet> dnf_set(dnf.begin(), dnf.end());

  // Count is exactly the number of distinct combinations.
  EXPECT_EQ(fs.DnfCount(), dnf_set.size());

  // Every enumerated combination is admitted.
  for (const AttrSet& s : dnf) {
    EXPECT_TRUE(fs.Admits(s)) << "enumerated set not admitted";
  }

  // Random subsets of the attribute universe are admitted iff enumerated.
  std::vector<AttrId> universe(fs.attrs().ids());
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<AttrId> pick;
    for (AttrId a : universe) {
      if (rng.Bernoulli(0.4)) pick.push_back(a);
    }
    AttrSet candidate = AttrSet::FromIds(std::move(pick));
    EXPECT_EQ(fs.Admits(candidate), dnf_set.count(candidate) > 0)
        << "membership disagrees with enumeration for "
        << candidate.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSchemeProperty,
                         ::testing::Range<uint64_t>(1, 33));

}  // namespace
}  // namespace flexrel
