#include "algebra/evaluate.h"

#include <gtest/gtest.h>

#include <set>

#include "workload/paper_examples.h"

namespace flexrel {
namespace {

class AlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ex = MakeJobtypeExample();
    ASSERT_TRUE(ex.ok()) << ex.status();
    ex_ = std::move(ex).value();
  }
  std::unique_ptr<JobtypeExample> ex_;
};

TEST_F(AlgebraTest, ScanMaterializesTheRelation) {
  auto out = Evaluate(Plan::Scan(&ex_->relation));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 3u);
  EXPECT_EQ(out.value().deps().ads().size(), 1u);
}

TEST_F(AlgebraTest, SelectFiltersWithKleeneSemantics) {
  // salary > 5000: keeps engineer (6200) and salesman (5400).
  PlanPtr plan = Plan::Select(
      Plan::Scan(&ex_->relation),
      Expr::Compare(ex_->salary, CmpOp::kGt, Value::Int(5000)));
  auto out = Evaluate(plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 2u);
  // Selection on a variant attribute: tuples lacking it evaluate Unknown
  // and are dropped, not errors.
  PlanPtr guard_free = Plan::Select(
      Plan::Scan(&ex_->relation),
      Expr::Compare(ex_->typing_speed, CmpOp::kGt, Value::Int(0)));
  auto out2 = Evaluate(guard_free);
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2.value().size(), 1u);  // only the secretary
}

TEST_F(AlgebraTest, ProjectDeduplicatesAndPropagatesPartially) {
  PlanPtr plan = Plan::Project(Plan::Scan(&ex_->relation),
                               AttrSet{ex_->jobtype});
  auto out = Evaluate(plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 3u);  // three distinct jobtypes
  // Rule (2): the jobtype AD survives with its RHS clipped to the kept
  // attributes, i.e. jobtype --attr--> {} (trivially true but retained).
  ASSERT_EQ(out.value().deps().ads().size(), 1u);
  EXPECT_EQ(out.value().deps().ads()[0].rhs, AttrSet());

  // Projecting away the determinant kills the AD (V ⊄ X).
  PlanPtr plan2 = Plan::Project(Plan::Scan(&ex_->relation),
                                AttrSet{ex_->typing_speed});
  auto out2 = Evaluate(plan2);
  ASSERT_TRUE(out2.ok());
  EXPECT_TRUE(out2.value().deps().ads().empty());
  // Heterogeneous projection: the secretary projects to {typing-speed},
  // the others to the empty tuple — which all collapse into one.
  EXPECT_EQ(out2.value().size(), 2u);
}

TEST_F(AlgebraTest, ProductRequiresDisjointAttrs) {
  auto self = Evaluate(
      Plan::Product(Plan::Scan(&ex_->relation), Plan::Scan(&ex_->relation)));
  EXPECT_EQ(self.status().code(), StatusCode::kInvalidArgument);

  // Against a disjoint relation it combines pairwise.
  FlexibleRelation other = FlexibleRelation::Derived("depts", DependencySet());
  AttrId dept = ex_->catalog.Intern("dept");
  Tuple d1;
  d1.Set(dept, Value::Str("hq"));
  Tuple d2;
  d2.Set(dept, Value::Str("lab"));
  other.InsertUnchecked(d1);
  other.InsertUnchecked(d2);
  auto out = Evaluate(
      Plan::Product(Plan::Scan(&ex_->relation), Plan::Scan(&other)));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 6u);
  // Rule (1): deps union.
  EXPECT_EQ(out.value().deps().ads().size(), 1u);
}

TEST_F(AlgebraTest, UnionDropsDependenciesAndDedups) {
  PlanPtr u = Plan::Union(Plan::Scan(&ex_->relation),
                          Plan::Scan(&ex_->relation));
  auto out = Evaluate(u);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 3u);       // set semantics
  EXPECT_TRUE(out.value().deps().ads().empty());  // rule (4)
  EXPECT_TRUE(out.value().deps().fds().empty());
}

TEST_F(AlgebraTest, DifferenceKeepsLeftDeps) {
  PlanPtr sel = Plan::Select(
      Plan::Scan(&ex_->relation),
      Expr::Eq(ex_->jobtype, Value::Str("secretary")));
  PlanPtr diff = Plan::Difference(Plan::Scan(&ex_->relation), sel);
  auto out = Evaluate(diff);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 2u);  // engineer + salesman remain
  EXPECT_EQ(out.value().deps().ads().size(), 1u);  // rule (5)
}

TEST_F(AlgebraTest, ExtendAddsTagAndConstantFd) {
  AttrId tag = ex_->catalog.Intern("source");
  PlanPtr e = Plan::Extend(Plan::Scan(&ex_->relation), tag, Value::Str("r1"));
  auto out = Evaluate(e);
  ASSERT_TRUE(out.ok());
  for (const Tuple& t : out.value().rows()) {
    ASSERT_TRUE(t.Has(tag));
    EXPECT_EQ(*t.Get(tag), Value::Str("r1"));
  }
  // ε adds the constant dependency ∅ --func--> {tag}.
  bool has_const_fd = false;
  for (const FuncDep& fd : out.value().deps().fds()) {
    if (fd.lhs.empty() && fd.rhs == AttrSet::Of(tag)) has_const_fd = true;
  }
  EXPECT_TRUE(has_const_fd);
  // Extending by an existing attribute fails.
  auto bad = Evaluate(
      Plan::Extend(Plan::Scan(&ex_->relation), ex_->salary, Value::Int(0)));
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AlgebraTest, TaggedUnionKeepsAugmentedDeps) {
  // Rule (6): ads(ε_{A:a1}(FR1) ∪ ε_{A:a2}(FR2)) = {AX --attr--> Y | ...}.
  AttrId tag = ex_->catalog.Intern("source");
  PlanPtr u = Plan::Union(
      Plan::Extend(Plan::Scan(&ex_->relation), tag, Value::Int(1)),
      Plan::Extend(Plan::Scan(&ex_->relation), tag, Value::Int(2)));
  auto out = Evaluate(u);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 6u);
  bool found = false;
  for (const AttrDep& ad : out.value().deps().ads()) {
    if (ad.lhs == (AttrSet{tag, ex_->jobtype})) found = true;
  }
  EXPECT_TRUE(found) << "expected {source, jobtype} --attr--> Y";

  // With equal tag values the pattern is not discriminating: rule (4).
  PlanPtr same = Plan::Union(
      Plan::Extend(Plan::Scan(&ex_->relation), tag, Value::Int(1)),
      Plan::Extend(Plan::Scan(&ex_->relation), tag, Value::Int(1)));
  auto out2 = Evaluate(same);
  ASSERT_TRUE(out2.ok());
  EXPECT_TRUE(out2.value().deps().ads().empty());
}

TEST_F(AlgebraTest, NaturalJoinMergesOnSharedAttrs) {
  FlexibleRelation bonus = FlexibleRelation::Derived("bonus", DependencySet());
  AttrId amount = ex_->catalog.Intern("bonus-amount");
  {
    Tuple b;
    b.Set(ex_->jobtype, Value::Str("salesman"));
    b.Set(amount, Value::Int(500));
    bonus.InsertUnchecked(b);
  }
  auto out = Evaluate(
      Plan::NaturalJoin(Plan::Scan(&ex_->relation), Plan::Scan(&bonus)));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  const Tuple& joined = out.value().row(0);
  EXPECT_EQ(*joined.Get(amount), Value::Int(500));
  EXPECT_EQ(*joined.Get(ex_->sales_commission), Value::Int(12));
}

TEST_F(AlgebraTest, MultiwayJoinFolds) {
  FlexibleRelation r1 = FlexibleRelation::Derived("r1", DependencySet());
  FlexibleRelation r2 = FlexibleRelation::Derived("r2", DependencySet());
  FlexibleRelation r3 = FlexibleRelation::Derived("r3", DependencySet());
  AttrId k = ex_->catalog.Intern("k");
  AttrId p = ex_->catalog.Intern("p");
  AttrId q = ex_->catalog.Intern("q");
  for (int i = 0; i < 3; ++i) {
    Tuple a;
    a.Set(k, Value::Int(i));
    r1.InsertUnchecked(a);
    Tuple b;
    b.Set(k, Value::Int(i));
    b.Set(p, Value::Int(i * 10));
    r2.InsertUnchecked(b);
  }
  Tuple c;
  c.Set(k, Value::Int(1));
  c.Set(q, Value::Int(99));
  r3.InsertUnchecked(c);
  auto out = Evaluate(Plan::MultiwayJoin(
      {Plan::Scan(&r1), Plan::Scan(&r2), Plan::Scan(&r3)}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(*out.value().row(0).Get(p), Value::Int(10));
  EXPECT_EQ(*out.value().row(0).Get(q), Value::Int(99));
  // Zero inputs is an error.
  EXPECT_FALSE(Evaluate(Plan::MultiwayJoin({})).ok());
}

TEST_F(AlgebraTest, EvalStatsCount) {
  EvalStats stats;
  PlanPtr plan = Plan::Select(
      Plan::Scan(&ex_->relation),
      Expr::Compare(ex_->salary, CmpOp::kGt, Value::Int(0)));
  ASSERT_TRUE(Evaluate(plan, &stats).ok());
  EXPECT_EQ(stats.tuples_scanned, 3u);
  EXPECT_EQ(stats.predicate_evals, 3u);
  EXPECT_GE(stats.tuples_emitted, 6u);  // scan + select emissions
}

TEST_F(AlgebraTest, PlanToStringRendersTree) {
  PlanPtr plan = Plan::Select(
      Plan::Scan(&ex_->relation),
      Expr::Eq(ex_->jobtype, Value::Str("secretary")));
  std::string text = plan->ToString(ex_->catalog);
  EXPECT_NE(text.find("Select"), std::string::npos);
  EXPECT_NE(text.find("Scan(employee)"), std::string::npos);
}

}  // namespace
}  // namespace flexrel
