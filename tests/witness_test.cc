#include "core/witness.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

constexpr AttrId kA = 0, kB = 1, kC = 2, kD = 3;

TEST(WitnessTest, ShapeMatchesTheAppendixFigure) {
  // Σ = {A --func--> B, A --attr--> C}; X = {A}.
  DependencySet sigma;
  sigma.AddFd(FuncDep{AttrSet{kA}, AttrSet{kB}});
  sigma.AddAd(AttrDep{AttrSet{kA}, AttrSet{kC}});
  AttrSet universe{kA, kB, kC, kD};
  Witness w = BuildWitness(universe, AttrSet{kA}, sigma);

  EXPECT_EQ(w.func_closure, (AttrSet{kA, kB}));
  EXPECT_EQ(w.attr_closure, (AttrSet{kA, kB, kC}));

  // t1: defined on the whole universe, all 1.
  EXPECT_EQ(w.t1.attrs(), universe);
  for (AttrId a : universe) {
    EXPECT_EQ(*w.t1.Get(a), Value::Int(1));
  }
  // t2: defined on X+attr; 1 on X+func, 0 on the rest.
  EXPECT_EQ(w.t2.attrs(), (AttrSet{kA, kB, kC}));
  EXPECT_EQ(*w.t2.Get(kA), Value::Int(1));
  EXPECT_EQ(*w.t2.Get(kB), Value::Int(1));
  EXPECT_EQ(*w.t2.Get(kC), Value::Int(0));
}

TEST(WitnessTest, WitnessSatisfiesSigma) {
  DependencySet sigma;
  sigma.AddFd(FuncDep{AttrSet{kA}, AttrSet{kB}});
  sigma.AddAd(AttrDep{AttrSet{kA}, AttrSet{kC}});
  sigma.AddAd(AttrDep{AttrSet{kB}, AttrSet{kD}});
  AttrSet universe{kA, kB, kC, kD};
  for (AttrId x = 0; x < 4; ++x) {
    Witness w = BuildWitness(universe, AttrSet{x}, sigma);
    EXPECT_TRUE(sigma.SatisfiedBy(w.rows()))
        << "witness for X={" << x << "} violates sigma";
  }
}

TEST(WitnessTest, RefutesExactlyTheNonImplied) {
  DependencySet sigma;
  sigma.AddAd(AttrDep{AttrSet{kA}, AttrSet{kB}});
  AttrSet universe{kA, kB, kC};
  // Implied: A --attr--> B. Not implied: A --attr--> C, B --attr--> A.
  EXPECT_FALSE(
      WitnessRefutesAd(universe, sigma, AttrDep{AttrSet{kA}, AttrSet{kB}}));
  EXPECT_TRUE(
      WitnessRefutesAd(universe, sigma, AttrDep{AttrSet{kA}, AttrSet{kC}}));
  EXPECT_TRUE(
      WitnessRefutesAd(universe, sigma, AttrDep{AttrSet{kB}, AttrSet{kA}}));
}

TEST(WitnessTest, FdRefutation) {
  DependencySet sigma;
  sigma.AddFd(FuncDep{AttrSet{kA}, AttrSet{kB}});
  AttrSet universe{kA, kB, kC};
  EXPECT_FALSE(
      WitnessRefutesFd(universe, sigma, FuncDep{AttrSet{kA}, AttrSet{kB}}));
  EXPECT_TRUE(
      WitnessRefutesFd(universe, sigma, FuncDep{AttrSet{kA}, AttrSet{kC}}));
  // An AD premise gives no functional grip: A --attr--> B does not make
  // A --func--> B.
  DependencySet sigma_ad;
  sigma_ad.AddAd(AttrDep{AttrSet{kA}, AttrSet{kB}});
  EXPECT_TRUE(
      WitnessRefutesFd(universe, sigma_ad, FuncDep{AttrSet{kA}, AttrSet{kB}}));
}

TEST(WitnessTest, EmptyLhsWitness) {
  DependencySet sigma;
  sigma.AddAd(AttrDep{AttrSet(), AttrSet{kB}});
  AttrSet universe{kA, kB};
  Witness w = BuildWitness(universe, AttrSet(), sigma);
  // X+func = {}, X+attr = {B}: t2 defined on {B} with value 0.
  EXPECT_EQ(w.t2.attrs(), AttrSet{kB});
  EXPECT_EQ(*w.t2.Get(kB), Value::Int(0));
  EXPECT_TRUE(sigma.SatisfiedBy(w.rows()));
}

// The central property, swept broadly (this is experiment E9's correctness
// backbone): for arbitrary Σ and target, the witness refutes the target iff
// the axiom system does not derive it.
class WitnessSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WitnessSweep, CompletenessOnRandomInputs) {
  Rng rng(GetParam());
  AttrSet universe;
  size_t n = 3 + rng.Index(8);
  for (AttrId a = 0; a < n; ++a) universe.Insert(a);
  DependencySet sigma = RandomDependencies(universe, &rng, 1 + rng.Index(5),
                                           1 + rng.Index(5));
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<AttrId> lhs, rhs;
    for (AttrId a : universe) {
      if (rng.Bernoulli(0.35)) lhs.push_back(a);
      if (rng.Bernoulli(0.35)) rhs.push_back(a);
    }
    AttrDep ad{AttrSet::FromIds(lhs), AttrSet::FromIds(rhs)};
    EXPECT_EQ(WitnessRefutesAd(universe, sigma, ad),
              !Implies(sigma, ad, AxiomSystem::kCombined));
    FuncDep fd{ad.lhs, ad.rhs};
    EXPECT_EQ(WitnessRefutesFd(universe, sigma, fd), !Implies(sigma, fd));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WitnessSweep,
                         ::testing::Range<uint64_t>(100, 140));

}  // namespace
}  // namespace flexrel
