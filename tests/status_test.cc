#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace flexrel {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad scheme");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad scheme");
  EXPECT_EQ(s.ToString(), "invalid-argument: bad scheme");
}

TEST(StatusTest, AllNamedConstructorsSetTheirCode) {
  EXPECT_EQ(Status::ConstraintViolation("x").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::NotFound("attribute 'zip'");
  Status wrapped = s.WithContext("insert failed");
  EXPECT_EQ(wrapped.code(), StatusCode::kNotFound);
  EXPECT_EQ(wrapped.message(), "insert failed: attribute 'zip'");
  // OK statuses pass through untouched.
  EXPECT_TRUE(Status().WithContext("nothing").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status(), Status::OK());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kConstraintViolation),
               "constraint-violation");
}

Status FailWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  FLEXREL_RETURN_IF_ERROR(FailWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 5);
  EXPECT_TRUE(good.status().ok());

  Result<int> bad = ParsePositive(-2);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(bad.value_or(42), 42);
}

Result<int> DoubledOrFail(int x) {
  FLEXREL_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> good = DoubledOrFail(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(DoubledOrFail(0).status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace flexrel
