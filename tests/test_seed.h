// Shared FLEXREL_TEST_SEED plumbing for the randomized suites.
//
// CI's seed-diversity step exports FLEXREL_TEST_SEED (the workflow run id)
// so every run soaks a fresh interleaving; each test prints the base and
// the effective per-test seed it derived, so any failure is replayable
// locally by exporting the logged base. Tests that pin exact instance
// counts (the 240-plan cross-validation) intentionally do NOT use this.

#ifndef FLEXREL_TESTS_TEST_SEED_H_
#define FLEXREL_TESTS_TEST_SEED_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>

namespace flexrel {

/// The seed base: FLEXREL_TEST_SEED when set and numeric, else
/// `default_base`. Printed under `label` so the CI log carries the replay
/// value.
inline uint64_t TestSeedBase(uint64_t default_base, const char* label) {
  uint64_t base = default_base;
  if (const char* env = std::getenv("FLEXREL_TEST_SEED")) {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env) base = static_cast<uint64_t>(parsed);
  }
  std::cout << "[" << label << "] FLEXREL_TEST_SEED base=" << base << "\n";
  return base;
}

/// A per-test stream seed mixed from the base: distinct salts give
/// uncorrelated streams under one base.
inline uint64_t TestSeed(uint64_t default_base, uint64_t salt,
                         const char* label) {
  uint64_t seed = TestSeedBase(default_base, label) ^
                  (salt * 0x9E3779B97F4A7C15ull);
  std::cout << "[" << label << "] salt=" << salt << " effective=" << seed
            << "\n";
  return seed;
}

}  // namespace flexrel

#endif  // FLEXREL_TESTS_TEST_SEED_H_
