#include "storage/serialization.h"

#include <gtest/gtest.h>

#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace flexrel {
namespace {

TEST(EscapeTest, RoundTrip) {
  for (const std::string& text :
       {std::string("plain"), std::string("with space"),
        std::string("pipes|commas,equals=percent%"), std::string(""),
        std::string("new\nline\ttab")}) {
    std::string escaped = EscapeText(text);
    // Escaped text carries no separators or whitespace.
    for (char c : escaped) {
      EXPECT_NE(c, ' ');
      EXPECT_NE(c, '|');
      EXPECT_NE(c, ',');
      EXPECT_NE(c, '\n');
    }
    auto back = UnescapeText(escaped);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), text);
  }
}

TEST(EscapeTest, RejectsMalformed) {
  EXPECT_FALSE(UnescapeText("%2").ok());
  EXPECT_FALSE(UnescapeText("%zz").ok());
  EXPECT_TRUE(UnescapeText("%25").ok());
}

TEST(ValueCodecTest, AllTypesRoundTrip) {
  for (const Value& v :
       {Value::Null(), Value::Bool(true), Value::Bool(false), Value::Int(-42),
        Value::Int(1ll << 60), Value::Real(3.141592653589793),
        Value::Str("hello world"), Value::Str("x|y=z,%")}) {
    auto back = DecodeValue(EncodeValue(v));
    ASSERT_TRUE(back.ok()) << EncodeValue(v);
    EXPECT_EQ(back.value(), v);
  }
}

TEST(ValueCodecTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeValue("").ok());
  EXPECT_FALSE(DecodeValue("x").ok());
  EXPECT_FALSE(DecodeValue("q:1").ok());
  EXPECT_FALSE(DecodeValue("i:notanint").ok());
}

TEST(FlexDbTest, JobtypeExampleRoundTrips) {
  auto ex = MakeJobtypeExample();
  ASSERT_TRUE(ex.ok());
  const JobtypeExample& world = *ex.value();

  std::string text = WriteFlexDb(world.catalog, world.scheme, {world.ead},
                                 world.domains, world.relation);
  auto db = ReadFlexDb(text);
  ASSERT_TRUE(db.ok()) << db.status();

  EXPECT_EQ(db.value()->relation.name(), "employee");
  EXPECT_EQ(db.value()->relation.size(), world.relation.size());
  EXPECT_EQ(db.value()->eads.size(), 1u);
  EXPECT_EQ(db.value()->eads[0].variants().size(), 3u);
  EXPECT_EQ(db.value()->scheme.DnfCount(), world.scheme.DnfCount());

  // Tuples round-trip by name (ids may differ): compare rendered forms.
  std::vector<std::string> original, loaded;
  for (const Tuple& t : world.relation.rows()) {
    original.push_back(t.ToString(world.catalog));
  }
  for (const Tuple& t : db.value()->relation.rows()) {
    loaded.push_back(t.ToString(db.value()->catalog));
  }
  std::sort(original.begin(), original.end());
  std::sort(loaded.begin(), loaded.end());
  EXPECT_EQ(original, loaded);

  // The reloaded relation is still strongly typed.
  Tuple bad = db.value()->relation.rows().empty()
                  ? Tuple()
                  : db.value()->relation.row(0);
  AttrId jobtype = db.value()->catalog.Find("jobtype").value();
  bad.Set(jobtype, Value::Str("salesman"));
  EXPECT_FALSE(db.value()->relation.Insert(bad).ok());
}

TEST(FlexDbTest, GeneratedWorkloadRoundTrips) {
  EmployeeConfig config;
  config.num_variants = 4;
  config.attrs_per_variant = 2;
  config.rows = 120;
  config.seed = 77;
  auto w = MakeEmployeeWorkload(config);
  ASSERT_TRUE(w.ok());
  std::string text =
      WriteFlexDb(w.value()->catalog, w.value()->scheme, w.value()->eads,
                  w.value()->domains, w.value()->relation);
  auto db = ReadFlexDb(text);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db.value()->relation.size(), 120u);
  EXPECT_TRUE(db.value()->relation.SatisfiesDeclaredDeps());
  // Second round trip is byte-identical (canonical form).
  std::string text2 =
      WriteFlexDb(db.value()->catalog, db.value()->scheme, db.value()->eads,
                  db.value()->domains, db.value()->relation);
  EXPECT_EQ(text, text2);
}

TEST(FlexDbTest, CorruptedInputsRejected) {
  auto ex = MakeJobtypeExample();
  ASSERT_TRUE(ex.ok());
  const JobtypeExample& world = *ex.value();
  std::string good = WriteFlexDb(world.catalog, world.scheme, {world.ead},
                                 world.domains, world.relation);

  // Version mismatch.
  {
    std::string bad = good;
    bad.replace(0, 8, "flexdb 9");
    EXPECT_FALSE(ReadFlexDb(bad).ok());
  }
  // Truncation mid-rows.
  {
    std::string bad = good.substr(0, good.rfind("row "));
    EXPECT_FALSE(ReadFlexDb(bad).ok());
  }
  // An ill-typed row is caught by the type checker on load: swap a
  // secretary's jobtype to salesman in the serialized text.
  {
    std::string bad = good;
    size_t rows_at = bad.find("\nrow ");
    ASSERT_NE(rows_at, std::string::npos);
    size_t pos = bad.find("jobtype=s:secretary", rows_at);
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, std::string("jobtype=s:secretary").size(),
                "jobtype=s:salesman");
    auto r = ReadFlexDb(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
  }
  // Garbage counts.
  {
    std::string bad = good;
    size_t pos = bad.find("rows ");
    bad.replace(pos, 6, "rows x");
    EXPECT_FALSE(ReadFlexDb(bad).ok());
  }
}

TEST(FlexDbTest, EmptyRelationRoundTrips) {
  AttrCatalog catalog;
  auto fs = FlexibleScheme::Parse(&catalog, "<1,2,{A,B}>");
  ASSERT_TRUE(fs.ok());
  FlexibleRelation r =
      FlexibleRelation::Base("empty_rel", &catalog, fs.value(), {}, {});
  std::string text = WriteFlexDb(catalog, fs.value(), {}, {}, r);
  auto db = ReadFlexDb(text);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db.value()->relation.size(), 0u);
  EXPECT_EQ(db.value()->scheme.DnfCount(), 3u);
}

}  // namespace
}  // namespace flexrel
