#include "storage/serialization.h"

#include <gtest/gtest.h>

#include "util/string_util.h"
#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace flexrel {
namespace {

TEST(EscapeTest, RoundTrip) {
  for (const std::string& text :
       {std::string("plain"), std::string("with space"),
        std::string("pipes|commas,equals=percent%"), std::string(""),
        std::string("new\nline\ttab")}) {
    std::string escaped = EscapeText(text);
    // Escaped text carries no separators or whitespace.
    for (char c : escaped) {
      EXPECT_NE(c, ' ');
      EXPECT_NE(c, '|');
      EXPECT_NE(c, ',');
      EXPECT_NE(c, '\n');
    }
    auto back = UnescapeText(escaped);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), text);
  }
}

TEST(EscapeTest, RejectsMalformed) {
  EXPECT_FALSE(UnescapeText("%2").ok());
  EXPECT_FALSE(UnescapeText("%zz").ok());
  EXPECT_TRUE(UnescapeText("%25").ok());
}

TEST(ValueCodecTest, AllTypesRoundTrip) {
  for (const Value& v :
       {Value::Null(), Value::Bool(true), Value::Bool(false), Value::Int(-42),
        Value::Int(1ll << 60), Value::Real(3.141592653589793),
        Value::Str("hello world"), Value::Str("x|y=z,%")}) {
    auto back = DecodeValue(EncodeValue(v));
    ASSERT_TRUE(back.ok()) << EncodeValue(v);
    EXPECT_EQ(back.value(), v);
  }
}

TEST(ValueCodecTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeValue("").ok());
  EXPECT_FALSE(DecodeValue("x").ok());
  EXPECT_FALSE(DecodeValue("q:1").ok());
  EXPECT_FALSE(DecodeValue("i:notanint").ok());
}

TEST(FlexDbTest, JobtypeExampleRoundTrips) {
  auto ex = MakeJobtypeExample();
  ASSERT_TRUE(ex.ok());
  const JobtypeExample& world = *ex.value();

  std::string text = WriteFlexDb(world.catalog, world.scheme, {world.ead},
                                 world.domains, world.relation);
  auto db = ReadFlexDb(text);
  ASSERT_TRUE(db.ok()) << db.status();

  EXPECT_EQ(db.value()->relation.name(), "employee");
  EXPECT_EQ(db.value()->relation.size(), world.relation.size());
  EXPECT_EQ(db.value()->eads.size(), 1u);
  EXPECT_EQ(db.value()->eads[0].variants().size(), 3u);
  EXPECT_EQ(db.value()->scheme.DnfCount(), world.scheme.DnfCount());

  // Tuples round-trip by name (ids may differ): compare rendered forms.
  std::vector<std::string> original, loaded;
  for (const Tuple& t : world.relation.rows()) {
    original.push_back(t.ToString(world.catalog));
  }
  for (const Tuple& t : db.value()->relation.rows()) {
    loaded.push_back(t.ToString(db.value()->catalog));
  }
  std::sort(original.begin(), original.end());
  std::sort(loaded.begin(), loaded.end());
  EXPECT_EQ(original, loaded);

  // The reloaded relation is still strongly typed.
  Tuple bad = db.value()->relation.rows().empty()
                  ? Tuple()
                  : db.value()->relation.row(0);
  AttrId jobtype = db.value()->catalog.Find("jobtype").value();
  bad.Set(jobtype, Value::Str("salesman"));
  EXPECT_FALSE(db.value()->relation.Insert(bad).ok());
}

TEST(FlexDbTest, GeneratedWorkloadRoundTrips) {
  EmployeeConfig config;
  config.num_variants = 4;
  config.attrs_per_variant = 2;
  config.rows = 120;
  config.seed = 77;
  auto w = MakeEmployeeWorkload(config);
  ASSERT_TRUE(w.ok());
  std::string text =
      WriteFlexDb(w.value()->catalog, w.value()->scheme, w.value()->eads,
                  w.value()->domains, w.value()->relation);
  auto db = ReadFlexDb(text);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db.value()->relation.size(), 120u);
  EXPECT_TRUE(db.value()->relation.SatisfiesDeclaredDeps());
  // Second round trip is byte-identical (canonical form).
  std::string text2 =
      WriteFlexDb(db.value()->catalog, db.value()->scheme, db.value()->eads,
                  db.value()->domains, db.value()->relation);
  EXPECT_EQ(text, text2);
}

TEST(FlexDbTest, CorruptedInputsRejected) {
  auto ex = MakeJobtypeExample();
  ASSERT_TRUE(ex.ok());
  const JobtypeExample& world = *ex.value();
  std::string good = WriteFlexDb(world.catalog, world.scheme, {world.ead},
                                 world.domains, world.relation);

  // Version mismatch.
  {
    std::string bad = good;
    bad.replace(0, 8, "flexdb 9");
    EXPECT_FALSE(ReadFlexDb(bad).ok());
  }
  // Truncation mid-rows.
  {
    std::string bad = good.substr(0, good.rfind("row "));
    EXPECT_FALSE(ReadFlexDb(bad).ok());
  }
  // An ill-typed row is caught by the type checker on load: swap a
  // secretary's jobtype to salesman in the serialized text.
  {
    std::string bad = good;
    size_t rows_at = bad.find("\nrow ");
    ASSERT_NE(rows_at, std::string::npos);
    size_t pos = bad.find("jobtype=s:secretary", rows_at);
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, std::string("jobtype=s:secretary").size(),
                "jobtype=s:salesman");
    auto r = ReadFlexDb(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
  }
  // Garbage counts.
  {
    std::string bad = good;
    size_t pos = bad.find("rows ");
    bad.replace(pos, 6, "rows x");
    EXPECT_FALSE(ReadFlexDb(bad).ok());
  }
}

TEST(FlexDbTest, InstalledSigmaRoundTripsAndIsAudited) {
  EmployeeConfig config;
  config.num_variants = 4;
  config.attrs_per_variant = 2;
  config.rows = 120;
  config.seed = 91;
  auto w = MakeEmployeeWorkload(config);
  ASSERT_TRUE(w.ok());
  EmployeeWorkload& world = *w.value();

  // Install a Σ beyond the EAD-derived AD: id is unique in the generated
  // workload, so id --func--> jobtype holds over the instance.
  size_t ead_ads = world.relation.deps().ads().size();
  world.relation.mutable_deps()->AddFd(
      FuncDep{AttrSet::Of(world.id_attr), AttrSet::Of(world.jobtype_attr)});
  ASSERT_TRUE(world.relation.AuditDeclaredDeps());

  std::string text = WriteFlexDb(world.catalog, world.scheme, world.eads,
                                 world.domains, world.relation);
  // Carrying an extra Σ bumps the format stamp so pre-section readers
  // reject the file with a version error, not a parse error; Σ-less files
  // keep the version-1 stamp byte-for-byte.
  EXPECT_TRUE(StartsWith(text, "flexdb 2\n"));
  EXPECT_NE(text.find("deps 1\n"), std::string::npos);
  auto db = ReadFlexDb(text);
  ASSERT_TRUE(db.ok()) << db.status();
  // The installed FD survived; the EAD-derived ADs are re-derived, not
  // duplicated.
  ASSERT_EQ(db.value()->relation.deps().fds().size(), 1u);
  EXPECT_EQ(db.value()->relation.deps().ads().size(), ead_ads);
  // Canonical form: a second trip is byte-identical, Σ included.
  std::string text2 =
      WriteFlexDb(db.value()->catalog, db.value()->scheme, db.value()->eads,
                  db.value()->domains, db.value()->relation);
  EXPECT_EQ(text, text2);
}

TEST(FlexDbTest, CorruptSigmaFailsTheEngineAudit) {
  EmployeeConfig config;
  config.num_variants = 3;
  config.attrs_per_variant = 2;
  config.rows = 60;
  config.seed = 19;
  auto w = MakeEmployeeWorkload(config);
  ASSERT_TRUE(w.ok());
  EmployeeWorkload& world = *w.value();
  std::string good = WriteFlexDb(world.catalog, world.scheme, world.eads,
                                 world.domains, world.relation);

  // Splice in a Σ the instance cannot satisfy: 60 rows over 3 jobtypes
  // guarantee two rows agreeing on jobtype with distinct ids, so
  // jobtype --func--> id is violated. Every tuple still type-checks — only
  // the engine-backed instance audit can reject this file.
  size_t rows_at = good.find("rows ");
  ASSERT_NE(rows_at, std::string::npos);
  std::string bad = good;
  bad.insert(rows_at, "deps 1\ndep fd|jobtype|id\n");
  auto r = ReadFlexDb(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);

  // A violated AD is caught the same way. With an *empty* determinant every
  // distinct row pair is in scope, so ∅ --attr--> {v} for a variant
  // attribute v demands that either every row or no row carries v — false
  // as soon as two variants coexist, which the 60-row/3-variant instance
  // guarantees (and the per-tuple type checks cannot notice).
  AttrId variant_attr = world.eads[0].variants()[0].then.ids().front();
  std::string variant_name = world.catalog.Name(variant_attr);
  std::string bad_ad = good;
  bad_ad.insert(rows_at,
                StrCat("deps 1\ndep ad||", EscapeText(variant_name), "\n"));
  auto r2 = ReadFlexDb(bad_ad);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kConstraintViolation);

  // Garbage dependency lines are format errors, not audit failures.
  std::string bad_tag = good;
  bad_tag.insert(rows_at, "deps 1\ndep xx|jobtype|id\n");
  auto r3 = ReadFlexDb(bad_tag);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlexDbTest, TruncatedRowsNameTheMissingRow) {
  auto ex = MakeJobtypeExample();
  ASSERT_TRUE(ex.ok());
  const JobtypeExample& world = *ex.value();
  std::string good = WriteFlexDb(world.catalog, world.scheme, {world.ead},
                                 world.domains, world.relation);
  ASSERT_GT(world.relation.size(), 1u);

  // Chop the file after the first row line: the error must say which row
  // (of the count the header promised) the input ran out at.
  size_t first_row = good.find("\nrow ");
  ASSERT_NE(first_row, std::string::npos);
  size_t second_row = good.find("\nrow ", first_row + 1);
  ASSERT_NE(second_row, std::string::npos);
  auto r = ReadFlexDb(good.substr(0, second_row + 1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("truncated rows section: row 2 of"),
            std::string::npos)
      << r.status();
}

TEST(FlexDbTest, ShortSigmaSectionNamesTheMissingDependency) {
  EmployeeConfig config;
  config.num_variants = 4;
  config.attrs_per_variant = 2;
  config.rows = 40;
  config.seed = 91;
  auto w = MakeEmployeeWorkload(config);
  ASSERT_TRUE(w.ok());
  EmployeeWorkload& world = *w.value();
  world.relation.mutable_deps()->AddFd(
      FuncDep{AttrSet::Of(world.id_attr), AttrSet::Of(world.jobtype_attr)});
  std::string good = WriteFlexDb(world.catalog, world.scheme, world.eads,
                                 world.domains, world.relation);

  // Keep the 'deps N' header but drop everything after it: the reader must
  // report the Σ section short, naming how far it got.
  size_t deps_at = good.find("\ndeps ");
  ASSERT_NE(deps_at, std::string::npos);
  size_t deps_end = good.find('\n', deps_at + 1);
  ASSERT_NE(deps_end, std::string::npos);
  auto r = ReadFlexDb(good.substr(0, deps_end + 1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(
      r.status().message().find("truncated deps section: dependency 1 of"),
      std::string::npos)
      << r.status();
}

TEST(FlexDbTest, TrailingInputAfterRowsRejected) {
  auto ex = MakeJobtypeExample();
  ASSERT_TRUE(ex.ok());
  const JobtypeExample& world = *ex.value();
  std::string good = WriteFlexDb(world.catalog, world.scheme, {world.ead},
                                 world.domains, world.relation);

  // A stale tail after the declared rows — an interrupted rewrite, a
  // doubled section — is corruption, not slack.
  auto r = ReadFlexDb(good + "row id=i:9999\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("trailing input"), std::string::npos)
      << r.status();

  // Trailing blank lines are tolerated (editors add them); only real
  // content after the rows is an error.
  EXPECT_TRUE(ReadFlexDb(good + "\n\n").ok());
}

TEST(FlexDbTest, EmptyRelationRoundTrips) {
  AttrCatalog catalog;
  auto fs = FlexibleScheme::Parse(&catalog, "<1,2,{A,B}>");
  ASSERT_TRUE(fs.ok());
  FlexibleRelation r =
      FlexibleRelation::Base("empty_rel", &catalog, fs.value(), {}, {});
  std::string text = WriteFlexDb(catalog, fs.value(), {}, {}, r);
  auto db = ReadFlexDb(text);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db.value()->relation.size(), 0u);
  EXPECT_EQ(db.value()->scheme.DnfCount(), 3u);
}

}  // namespace
}  // namespace flexrel
