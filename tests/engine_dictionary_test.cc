// Edge cases and cross-validation soaks for the dictionary-encoded
// columnar value plane (engine/dictionary.h).
//
// The contract under test: a CodeColumn — built fresh or maintained through
// any interleaving of cache-flushed inserts and updates (footnote-3 type
// changes included) — always satisfies its structural invariants, codes
// Values injectively within a generation, and is observationally equal to
// the value-keyed machinery it replaces: counting-sort partitions equal
// hash-built ones, coded selections return the rows the value index
// returns, and everything downstream (the evaluator, hybrid discovery) is
// bit-identical between PliCacheOptions::use_codes on and off.
//
// Randomized suites take their seed from FLEXREL_TEST_SEED when set (the
// CI seed-diversity step passes the run id) and print it, so failures are
// replayable from the log.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "algebra/evaluate.h"
#include "engine/dictionary.h"
#include "engine/parallel_discovery.h"
#include "engine/pli_cache.h"
#include "engine_test_util.h"
#include "test_seed.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

using testutil::ApplyRandomEmployeeMutation;
using testutil::RandomSoakTuple;
using testutil::SoakEmployeeConfig;

uint64_t SoakSeed(uint64_t salt) {
  return TestSeed(0xD1C7C0DEC0FFEEull, salt, "dictionary");
}

std::string InvariantError(const CodeColumn& column) {
  std::string error;
  return column.CheckInvariants(&error) ? std::string() : error;
}

// Every row of `rows` agrees with what the column says about it: the coded
// value round-trips, absence maps to kMissingCode, and the row sits in
// exactly its code's bucket. Generation-independent, so it holds across
// re-interns and cache rebuilds.
void VerifyColumnAgainstRows(const CodeColumn& column,
                             const std::vector<Tuple>& rows,
                             const std::string& context) {
  ASSERT_EQ(column.num_rows(), rows.size()) << context;
  EXPECT_EQ(InvariantError(column), "") << context;
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value* v = rows[i].Get(column.attr());
    CodeColumn::Code code = column.codes()[i];
    if (v == nullptr) {
      EXPECT_EQ(code, CodeColumn::kMissingCode) << context << " row " << i;
      continue;
    }
    ASSERT_NE(code, CodeColumn::kMissingCode) << context << " row " << i;
    EXPECT_EQ(column.ValueOf(code), *v) << context << " row " << i;
    EXPECT_EQ(column.CodeOf(*v), code) << context << " row " << i;
    const std::vector<CodeColumn::RowId>& bucket = column.Bucket(code);
    EXPECT_TRUE(std::binary_search(bucket.begin(), bucket.end(),
                                   static_cast<CodeColumn::RowId>(i)))
        << context << " row " << i;
  }
}

// ---------------------------------------------------------------------------
// Null and missing codes: the two reserved points of the code space.
// ---------------------------------------------------------------------------

TEST(CodeColumnTest, NullCodeIsReservedAndNullsCluster) {
  const AttrId a = 2;
  std::vector<Tuple> rows(4);
  rows[0].Set(a, Value::Null());
  // rows[1] does not carry the attribute at all: absent, not null.
  rows[2].Set(a, Value::Int(7));
  rows[3].Set(a, Value::Null());

  CodeColumn column = CodeColumn::Build(rows, a);
  EXPECT_EQ(column.CodeOf(Value::Null()), CodeColumn::kNullCode);
  EXPECT_EQ(column.codes()[0], CodeColumn::kNullCode);
  EXPECT_EQ(column.codes()[1], CodeColumn::kMissingCode);
  EXPECT_EQ(column.codes()[3], CodeColumn::kNullCode);
  // Null equals null: both null rows share the reserved code's bucket —
  // absence does not (row 1 is in no bucket).
  EXPECT_EQ(column.Bucket(CodeColumn::kNullCode),
            (std::vector<CodeColumn::RowId>{0, 3}));
  EXPECT_EQ(column.defined(), 3u);
  EXPECT_EQ(column.live_codes(), 2u);  // null + the int
  VerifyColumnAgainstRows(column, rows, "null/missing build");
}

TEST(CodeColumnTest, NullIsInternedEvenWhenNoRowIsNull) {
  const AttrId a = 0;
  std::vector<Tuple> rows(1);
  rows[0].Set(a, Value::Int(1));
  CodeColumn column = CodeColumn::Build(rows, a);
  // The reservation is unconditional, so kNullCode never aliases a value.
  EXPECT_EQ(column.CodeOf(Value::Null()), CodeColumn::kNullCode);
  EXPECT_TRUE(column.Bucket(CodeColumn::kNullCode).empty());
  EXPECT_NE(column.CodeOf(Value::Int(1)), CodeColumn::kNullCode);
}

// ---------------------------------------------------------------------------
// Duplicate interning: one code per distinct value, append-only.
// ---------------------------------------------------------------------------

TEST(CodeColumnTest, DuplicateValuesShareOneCodeAcrossBuildAndMutation) {
  const AttrId a = 1;
  std::vector<Tuple> rows(3);
  rows[0].Set(a, Value::Str("x"));
  rows[1].Set(a, Value::Str("x"));
  rows[2].Set(a, Value::Int(5));
  CodeColumn column = CodeColumn::Build(rows, a);
  const CodeColumn::Code x = column.CodeOf(Value::Str("x"));
  EXPECT_EQ(column.codes()[0], x);
  EXPECT_EQ(column.codes()[1], x);
  const CodeColumn::Code bound = column.code_bound();

  // Inserting and updating to already-interned values must reuse the codes
  // and leave the code space untouched.
  Tuple t;
  t.Set(a, Value::Str("x"));
  rows.push_back(t);
  column.ApplyInsert(3, rows[3].Get(a));
  EXPECT_EQ(column.codes()[3], x);
  EXPECT_EQ(column.code_bound(), bound);

  rows[2].Set(a, Value::Str("x"));
  column.ApplyUpdate(2, rows[2].Get(a));
  EXPECT_EQ(column.codes()[2], x);
  EXPECT_EQ(column.code_bound(), bound);
  EXPECT_EQ(column.Bucket(x), (std::vector<CodeColumn::RowId>{0, 1, 2, 3}));
  VerifyColumnAgainstRows(column, rows, "duplicate interning");
}

TEST(CodeColumnTest, UpdateToTheSameValueIsANoOp) {
  const AttrId a = 4;
  std::vector<Tuple> rows(2);
  rows[0].Set(a, Value::Int(9));
  rows[1].Set(a, Value::Int(9));
  CodeColumn column = CodeColumn::Build(rows, a);
  const uint64_t gen = column.generation();
  column.ApplyUpdate(0, rows[0].Get(a));
  EXPECT_EQ(column.generation(), gen);
  EXPECT_EQ(column.Bucket(column.CodeOf(Value::Int(9))),
            (std::vector<CodeColumn::RowId>{0, 1}));
  VerifyColumnAgainstRows(column, rows, "same-value update");
}

// ---------------------------------------------------------------------------
// Footnote-3 type changes and the re-intern trigger.
// ---------------------------------------------------------------------------

TEST(CodeColumnTest, TypeChangingUpdatesReinternAfterChurn) {
  const AttrId a = 0;
  std::vector<Tuple> rows(4);
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i].Set(a, Value::Int(static_cast<int64_t>(i)));
  }
  CodeColumn column = CodeColumn::Build(rows, a);
  const uint64_t gen = column.generation();

  // Churn row 0 through a long run of fresh values — the footnote-3 shape
  // repeated: every update retires the previous value's code. Append-only
  // interning grows the dictionary until it outweighs the live codes 2:1
  // past the slack floor, at which point MaybeReintern must fire, recode
  // densely and bump the generation.
  bool reinterned = false;
  for (int64_t v = 100; v < 400 && !reinterned; ++v) {
    Value next = v % 2 == 0 ? Value::Int(v) : Value::Str(StrCat("t", v));
    rows[0].Set(a, next);
    column.ApplyUpdate(0, rows[0].Get(a));
    reinterned = column.MaybeReintern();
  }
  ASSERT_TRUE(reinterned) << "churn never triggered a re-intern";
  EXPECT_GT(column.generation(), gen);
  // The compacted space carries exactly the live values plus the reserved
  // null code.
  EXPECT_LE(column.code_bound(), column.live_codes() + 1);
  VerifyColumnAgainstRows(column, rows, "post-reintern");

  // A removal (footnote-3 delta dropping the attribute) maps the row to
  // kMissingCode and keeps the space coherent.
  rows[1] = Tuple();
  column.ApplyUpdate(1, nullptr);
  EXPECT_EQ(column.codes()[1], CodeColumn::kMissingCode);
  VerifyColumnAgainstRows(column, rows, "post-removal");
}

TEST(CodeColumnTest, HealthyDictionariesNeverReintern) {
  const AttrId a = 0;
  std::vector<Tuple> rows(8);
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i].Set(a, Value::Int(static_cast<int64_t>(i)));
  }
  CodeColumn column = CodeColumn::Build(rows, a);
  // All codes live: no churn, no trigger, stable generation — consumers
  // holding code-based structures rely on this.
  EXPECT_FALSE(column.MaybeReintern());
  EXPECT_EQ(column.generation(), 1u);
}

// ---------------------------------------------------------------------------
// Counting-sort partition construction over the code column.
// ---------------------------------------------------------------------------

TEST(CodeColumnTest, BuildFromCodesMatchesValueBuild) {
  Rng rng(SoakSeed(1));
  std::vector<AttrId> attrs = {0, 1, 2, 3};
  std::vector<Tuple> rows;
  for (int i = 0; i < 300; ++i) rows.push_back(RandomSoakTuple(attrs, &rng));
  for (AttrId a : attrs) {
    CodeColumn column = CodeColumn::Build(rows, a);
    VerifyColumnAgainstRows(column, rows, StrCat("attr ", a));
    // Canonical-form Pli equality is exact, so the counting sort must
    // reproduce the hash build bit for bit — in both storage modes.
    EXPECT_EQ(Pli::BuildFromCodes(column.codes(), column.code_bound(),
                                  Pli::Storage::kArena),
              Pli::Build(rows, a));
    EXPECT_EQ(Pli::BuildFromCodes(column.codes(), column.code_bound(),
                                  Pli::Storage::kVectors),
              Pli::Build(rows, a, Pli::Storage::kVectors));
  }
}

// ---------------------------------------------------------------------------
// The cache-maintained column across batch bursts of every flush arm.
// ---------------------------------------------------------------------------

TEST(CodeColumnTest, CodeSpaceGrowsCoherentlyAcrossBatchBursts) {
  Rng rng(SoakSeed(2));
  std::vector<AttrId> attrs = {0, 1, 2};
  FlexibleRelation rel = FlexibleRelation::Derived("burst", DependencySet());
  for (int i = 0; i < 32; ++i) rel.InsertUnchecked(RandomSoakTuple(attrs, &rng));
  std::shared_ptr<PliCache> cache = rel.pli_cache();

  for (AttrId a : attrs) ASSERT_NE(cache->CodeColumnFor(a), nullptr);
  uint64_t last_bound = 0;
  // Burst sizes straddling the flush arms: per-row (< batch_threshold=16),
  // batched, and — relative to the growing instance — large enough early
  // on to have crossed rows/2 bursts in cache configurations with a lower
  // drop threshold. Each burst widens the value domain so the code space
  // genuinely grows burst over burst.
  const size_t bursts[] = {3, 40, 7, 120, 25};
  int64_t domain = 0;
  for (size_t burst : bursts) {
    for (size_t i = 0; i < burst; ++i) {
      Tuple t;
      for (AttrId a : attrs) {
        if (rng.Bernoulli(0.8)) {
          t.Set(a, Value::Int(domain + rng.UniformInt(0, 50)));
        }
      }
      rel.InsertUnchecked(std::move(t));
    }
    domain += 40;  // overlap with the previous burst, then fresh values
    std::shared_ptr<const CodeColumn> column = cache->CodeColumnFor(attrs[0]);
    ASSERT_NE(column, nullptr);
    VerifyColumnAgainstRows(*column, rel.rows(),
                            StrCat("after burst of ", burst));
    // Within a generation codes are append-only, so the bound is monotone
    // unless a re-intern or cache drop compacted the space — both of which
    // announce themselves through the generation tag.
    if (column->code_bound() < last_bound) {
      EXPECT_NE(column->generation(), 1u);
    }
    last_bound = column->code_bound();
    // The partitions built from the column agree with value-keyed builds.
    EXPECT_EQ(*cache->Get(AttrSet::Of(attrs[0])),
              Pli::Build(rel.rows(), attrs[0]));
  }
}

// ---------------------------------------------------------------------------
// Coded selection: CodedMatches vs the value index, literal by literal.
// ---------------------------------------------------------------------------

TEST(CodeColumnTest, CodedMatchesEqualsIndexMatches) {
  Rng rng(SoakSeed(3));
  std::vector<AttrId> attrs = {0, 1};
  FlexibleRelation rel = FlexibleRelation::Derived("sel", DependencySet());
  for (int i = 0; i < 200; ++i) rel.InsertUnchecked(RandomSoakTuple(attrs, &rng));
  std::shared_ptr<PliCache> cache = rel.pli_cache();
  const AttrId a = attrs[0];
  std::shared_ptr<const CodeColumn> column = cache->CodeColumnFor(a);
  ASSERT_NE(column, nullptr);
  std::shared_ptr<const PliCache::ValueIndex> index = cache->IndexFor(a);

  std::vector<ExprPtr> formulas;
  formulas.push_back(Expr::Eq(a, Value::Int(2)));
  formulas.push_back(Expr::Eq(a, Value::Int(424242)));   // never interned
  formulas.push_back(Expr::Eq(a, Value::Null()));        // Kleene: no rows
  formulas.push_back(Expr::In(a, {Value::Int(0), Value::Str("s1")}));
  formulas.push_back(Expr::In(a, {Value::Null(), Value::Int(3)}));
  for (size_t i = 0; i < formulas.size(); ++i) {
    EXPECT_EQ(CodedMatches(*column, *formulas[i]),
              IndexMatches(*index, *formulas[i]))
        << "formula " << i;
  }
  EXPECT_TRUE(CodedMatches(*column, *formulas[2]).empty());
}

// ---------------------------------------------------------------------------
// The 30-seed codes-vs-Value oracle soak (seeded_suites.txt entry).
// ---------------------------------------------------------------------------

// One seed's worth: two identical employee workloads driven by identical
// mutation streams — one relation on the coded plane, one pinned to the
// value-keyed oracle — must end observationally equal at every layer:
// cached partitions, evaluator output, and hybrid discovery results.
void RunCodesVsValueOracleSoak(uint64_t seed) {
  const std::string context = StrCat("seed ", seed);
  auto coded_workload = MakeEmployeeWorkload(SoakEmployeeConfig(seed, 48));
  auto oracle_workload = MakeEmployeeWorkload(SoakEmployeeConfig(seed, 48));
  ASSERT_TRUE(coded_workload.ok()) << context;
  ASSERT_TRUE(oracle_workload.ok()) << context;
  EmployeeWorkload& coded = *coded_workload.value();
  EmployeeWorkload& oracle = *oracle_workload.value();
  PliCacheOptions value_keyed;
  value_keyed.use_codes = false;
  oracle.relation.SetPliCacheOptions(value_keyed);

  const std::vector<AttrId>& touch_attrs = coded.common_attrs.ids();
  auto touch = [&](EmployeeWorkload& w) {
    std::shared_ptr<PliCache> cache = w.relation.pli_cache();
    for (AttrId a : touch_attrs) {
      (void)cache->Get(AttrSet::Of(a));
      (void)cache->IndexFor(a);
    }
  };

  // Identical streams: ApplyRandomEmployeeMutation is deterministic in
  // (workload state, rng state), and both sides start equal.
  Rng coded_rng(seed * 31 + 7);
  Rng oracle_rng(seed * 31 + 7);
  for (int op = 0; op < 60; ++op) {
    auto coded_out = ApplyRandomEmployeeMutation(&coded, &coded_rng);
    auto oracle_out = ApplyRandomEmployeeMutation(&oracle, &oracle_rng);
    ASSERT_TRUE(coded_out.status.ok()) << context << " op " << op;
    ASSERT_TRUE(oracle_out.status.ok()) << context << " op " << op;
    if (op % 9 == 0) {
      touch(coded);
      touch(oracle);
    }
  }
  ASSERT_EQ(coded.relation.rows(), oracle.relation.rows()) << context;

  // Layer 1: cached structures. Counting-sort partitions equal hash-built
  // ones, and the maintained column still describes every row.
  std::shared_ptr<PliCache> coded_cache = coded.relation.pli_cache();
  std::shared_ptr<PliCache> oracle_cache = oracle.relation.pli_cache();
  for (AttrId a : touch_attrs) {
    EXPECT_EQ(*coded_cache->Get(AttrSet::Of(a)),
              *oracle_cache->Get(AttrSet::Of(a)))
        << context << " attr " << a;
    std::shared_ptr<const CodeColumn> column = coded_cache->CodeColumnFor(a);
    ASSERT_NE(column, nullptr) << context;
    VerifyColumnAgainstRows(*column, coded.relation.rows(),
                            StrCat(context, " attr ", a));
    EXPECT_EQ(oracle_cache->CodeColumnFor(a), nullptr)
        << "the value-keyed oracle must not run the coded plane";
  }

  // Layer 2: the evaluator. Same rows out of an indexable selection and a
  // self-join shaped plan, coded vs value-keyed vs naive.
  EvalOptions value_eval;
  value_eval.use_codes = false;
  EvalOptions naive_eval;
  naive_eval.use_engine = false;
  PlanPtr select = Plan::Select(
      Plan::Scan(&coded.relation),
      Expr::Eq(coded.jobtype_attr, coded.jobtype_values.front()));
  auto coded_sel = Evaluate(select, EvalOptions());
  auto value_sel = Evaluate(select, value_eval);
  auto naive_sel = Evaluate(select, naive_eval);
  ASSERT_TRUE(coded_sel.ok() && value_sel.ok() && naive_sel.ok()) << context;
  auto sorted = [](const FlexibleRelation& rel) {
    std::vector<Tuple> rows = rel.rows();
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(sorted(coded_sel.value()), sorted(value_sel.value())) << context;
  EXPECT_EQ(sorted(coded_sel.value()), sorted(naive_sel.value())) << context;

  PlanPtr join = Plan::NaturalJoin(Plan::Scan(&coded.relation),
                                   Plan::Scan(&oracle.relation));
  auto coded_join = Evaluate(join, EvalOptions());
  auto value_join = Evaluate(join, value_eval);
  auto naive_join = Evaluate(join, naive_eval);
  ASSERT_TRUE(coded_join.ok() && value_join.ok() && naive_join.ok())
      << context;
  EXPECT_EQ(sorted(coded_join.value()), sorted(value_join.value())) << context;
  EXPECT_EQ(sorted(coded_join.value()), sorted(naive_join.value())) << context;

  // Layer 3: discovery — level-wise and hybrid, coded vs value-keyed, all
  // four bit-identical (sampling evidence restriction is sound).
  AttrSet universe = coded.relation.ActiveAttrs();
  for (DiscoveryStrategy strategy :
       {DiscoveryStrategy::kLevelWise, DiscoveryStrategy::kHybrid}) {
    EngineDiscoveryOptions coded_opts;
    coded_opts.strategy = strategy;
    EngineDiscoveryOptions value_opts = coded_opts;
    value_opts.use_codes = false;
    DependencySet with_codes =
        EngineDiscoverDependencies(coded.relation.rows(), universe,
                                   coded_opts);
    DependencySet without =
        EngineDiscoverDependencies(coded.relation.rows(), universe,
                                   value_opts);
    EXPECT_EQ(with_codes.fds(), without.fds())
        << context << " strategy " << static_cast<int>(strategy);
    EXPECT_EQ(with_codes.ads(), without.ads())
        << context << " strategy " << static_cast<int>(strategy);
  }
}

TEST(EngineDictionarySoak, CodesMatchValueOracleAcrossThirtySeeds) {
  const uint64_t base = SoakSeed(4);
  for (uint64_t s = 0; s < 30; ++s) {
    ASSERT_NO_FATAL_FAILURE(RunCodesVsValueOracleSoak(base + s))
        << "seed " << base + s;
  }
}

}  // namespace
}  // namespace flexrel
