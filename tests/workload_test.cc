#include "workload/generator.h"

#include <gtest/gtest.h>

#include "core/type_check.h"
#include "util/string_util.h"
#include "workload/paper_examples.h"

namespace flexrel {
namespace {

TEST(EmployeeWorkloadTest, GeneratesValidRelation) {
  EmployeeConfig config;
  config.num_variants = 4;
  config.attrs_per_variant = 3;
  config.rows = 200;
  config.invalid_fraction = 0.1;
  config.seed = 11;
  auto w = MakeEmployeeWorkload(config);
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_EQ(w.value()->relation.size(), 200u);
  EXPECT_EQ(w.value()->invalid_tuples.size(), 20u);
  EXPECT_TRUE(w.value()->relation.SatisfiesDeclaredDeps());
}

TEST(EmployeeWorkloadTest, InvalidTuplesPassShapeFailDeps) {
  EmployeeConfig config;
  config.rows = 50;
  config.invalid_fraction = 0.2;
  config.seed = 13;
  auto w = MakeEmployeeWorkload(config);
  ASSERT_TRUE(w.ok());
  const TypeChecker* checker = w.value()->relation.checker();
  ASSERT_NE(checker, nullptr);
  for (const Tuple& t : w.value()->invalid_tuples) {
    EXPECT_TRUE(checker->CheckShape(t).ok())
        << "invalid tuple should still be shape-admissible";
    EXPECT_FALSE(checker->CheckDependencies(t).ok())
        << "invalid tuple must violate the EAD";
  }
}

TEST(EmployeeWorkloadTest, DeterministicUnderSeed) {
  EmployeeConfig config;
  config.rows = 30;
  config.seed = 99;
  auto w1 = MakeEmployeeWorkload(config);
  auto w2 = MakeEmployeeWorkload(config);
  ASSERT_TRUE(w1.ok() && w2.ok());
  ASSERT_EQ(w1.value()->relation.size(), w2.value()->relation.size());
  for (size_t i = 0; i < w1.value()->relation.size(); ++i) {
    EXPECT_EQ(w1.value()->relation.row(i), w2.value()->relation.row(i));
  }
}

TEST(EmployeeWorkloadTest, RejectsZeroVariants) {
  EmployeeConfig config;
  config.num_variants = 0;
  EXPECT_FALSE(MakeEmployeeWorkload(config).ok());
}

TEST(EmployeeWorkloadTest, RandomEmployeeIsWellTyped) {
  EmployeeConfig config;
  config.rows = 1;
  config.seed = 3;
  auto w = MakeEmployeeWorkload(config);
  ASSERT_TRUE(w.ok());
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    Tuple t = RandomEmployee(*w.value(), &rng);
    EXPECT_TRUE(w.value()->relation.checker()->Check(t).ok());
  }
  Tuple forced = RandomEmployee(*w.value(), &rng, 2);
  EXPECT_EQ(*forced.Get(w.value()->jobtype_attr),
            w.value()->jobtype_values[2]);
}

TEST(AddressWorkloadTest, GeneratesShapeConformingRows) {
  auto w = MakeAddressWorkload(300, 21);
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_GT(w.value()->relation.size(), 250u);  // a few duplicate skips OK
  // Every row satisfies the scheme, exercised through the checker on
  // insert; double-check a few invariants directly.
  bool saw_pobox = false, saw_street = false, saw_street_no_houseno = false;
  for (const Tuple& t : w.value()->relation.rows()) {
    EXPECT_TRUE(t.Has(w.value()->zip));
    EXPECT_TRUE(t.Has(w.value()->town));
    // Disjoint union: exactly one of pobox / street.
    EXPECT_NE(t.Has(w.value()->pobox), t.Has(w.value()->street));
    if (t.Has(w.value()->pobox)) saw_pobox = true;
    if (t.Has(w.value()->street)) saw_street = true;
    if (t.Has(w.value()->street) && !t.Has(w.value()->houseno)) {
      saw_street_no_houseno = true;
    }
    // HouseNumber only with street.
    if (t.Has(w.value()->houseno)) EXPECT_TRUE(t.Has(w.value()->street));
    // At least one electronic attribute.
    EXPECT_TRUE(t.Has(w.value()->tel) || t.Has(w.value()->fax) ||
                t.Has(w.value()->email));
  }
  EXPECT_TRUE(saw_pobox);
  EXPECT_TRUE(saw_street);
  EXPECT_TRUE(saw_street_no_houseno);
}

TEST(RandomSchemeTest, ProducesValidSchemes) {
  AttrCatalog catalog;
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    FlexibleScheme fs = RandomScheme(&catalog, &rng, 3, 4, StrCat("t", i));
    // Any admissible combination within limits must be enumerable.
    auto dnf = fs.Dnf(1u << 16);
    if (dnf.ok()) {
      EXPECT_EQ(dnf.value().size(), fs.DnfCount());
    }
  }
}

TEST(RandomDependenciesTest, StaysWithinUniverse) {
  AttrSet universe{0, 1, 2, 3, 4};
  Rng rng(23);
  DependencySet sigma = RandomDependencies(universe, &rng, 5, 5);
  EXPECT_EQ(sigma.fds().size(), 5u);
  EXPECT_EQ(sigma.ads().size(), 5u);
  EXPECT_TRUE(sigma.MentionedAttrs().IsSubsetOf(universe));
}

TEST(PaperExamplesTest, JobtypeExampleIsInternallyConsistent) {
  auto ex = MakeJobtypeExample();
  ASSERT_TRUE(ex.ok());
  EXPECT_EQ(ex.value()->relation.size(), 3u);
  EXPECT_TRUE(ex.value()->relation.SatisfiesDeclaredDeps());
  EXPECT_EQ(ex.value()->ead.variants().size(), 3u);
}

TEST(PaperExamplesTest, Example1SchemeParses) {
  AttrCatalog catalog;
  auto fs = MakeExample1Scheme(&catalog);
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ(fs.value().DnfCount(), 14u);
}

}  // namespace
}  // namespace flexrel
