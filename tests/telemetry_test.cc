// Registry unit tests: exact concurrent counting, histogram bucket edges,
// snapshot consistency under racing writers, span-ring bounding, and the
// reset-in-place pointer-stability contract the instrumentation macros
// depend on.

#include "telemetry/telemetry.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace flexrel {
namespace telemetry {
namespace {

// Telemetry state is process-global; every test starts from an enabled,
// zeroed registry and leaves the plane disabled (values retained) so test
// order cannot leak state.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Enable();
    Registry::Global().Reset();
  }
  void TearDown() override {
    Disable();
    Registry::Global().Reset();
  }
};

TEST_F(TelemetryTest, ConcurrentIncrementsSumExactly) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  Counter* counter = Registry::Global().GetCounter("test.concurrent");
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([counter] {
      for (int i = 0; i < kIncrements; ++i) counter->Add(1);
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(CounterValue("test.concurrent"),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST_F(TelemetryTest, GetReturnsSameMetricForSameName) {
  EXPECT_EQ(Registry::Global().GetCounter("test.same"),
            Registry::Global().GetCounter("test.same"));
  EXPECT_NE(Registry::Global().GetCounter("test.same"),
            Registry::Global().GetCounter("test.other"));
  // Kinds are separate namespaces: a histogram may share a counter's name.
  EXPECT_NE(static_cast<void*>(Registry::Global().GetCounter("test.same")),
            static_cast<void*>(Registry::Global().GetHistogram("test.same")));
}

TEST_F(TelemetryTest, HistogramBucketEdges) {
  // Bucket 0 is [0, 1]; bucket i >= 1 is (2^(i-1), 2^i].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(Histogram::BucketIndex(5), 3u);
  for (size_t i = 2; i + 1 < Histogram::kNumBuckets; ++i) {
    const uint64_t edge = uint64_t{1} << i;
    EXPECT_EQ(Histogram::BucketIndex(edge), i) << "at edge 2^" << i;
    EXPECT_EQ(Histogram::BucketIndex(edge + 1), i + 1)
        << "just past edge 2^" << i;
    EXPECT_EQ(Histogram::BucketUpperEdge(i), edge);
  }
  // The final bucket absorbs everything beyond the last finite edge.
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperEdge(Histogram::kNumBuckets - 1),
            UINT64_MAX);

  Histogram* hist = Registry::Global().GetHistogram("test.edges");
  hist->Record(0);
  hist->Record(1);
  hist->Record(2);
  hist->Record(1024);
  Histogram::Snapshot snap = hist->Snap();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 1027u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[10], 1u);  // 1024 == 2^10
}

TEST_F(TelemetryTest, HistogramSnapshotConsistentUnderWriters) {
  Histogram* hist = Registry::Global().GetHistogram("test.snap");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([hist, &stop] {
      uint64_t v = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        hist->Record(v);
        v = v * 5 + 1;  // scatter across buckets
      }
    });
  }
  // Under racing writers every snapshot must satisfy count == Σ buckets —
  // the count is derived from the same bucket loads, not kept separately.
  for (int i = 0; i < 1000; ++i) {
    Histogram::Snapshot snap = hist->Snap();
    uint64_t total = 0;
    for (uint64_t b : snap.buckets) total += b;
    ASSERT_EQ(snap.count, total);
  }
  stop.store(true);
  for (std::thread& th : writers) th.join();
}

TEST_F(TelemetryTest, SpanRingIsBoundedAndReportsDrops) {
  Registry::Global().SetTraceCapacity(4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("test.span");
    span.SetDetail("i=" + std::to_string(i));
  }
  EXPECT_EQ(Registry::Global().spans_recorded(), 10u);
  const std::string json = Registry::Global().ToJson();
  EXPECT_NE(json.find("\"spans_dropped\": 6"), std::string::npos) << json;
  // The ring keeps the newest records: span 9 survives, span 0 does not.
  EXPECT_NE(json.find("i=9"), std::string::npos);
  EXPECT_EQ(json.find("i=0"), std::string::npos);
}

TEST_F(TelemetryTest, SpanDepthTracksNesting) {
  Registry::Global().SetTraceCapacity(16);
  {
    ScopedSpan outer("test.outer");
    ScopedSpan inner("test.inner");
  }
  const std::string json = Registry::Global().ToJson();
  // The inner span closes first at depth 1, the outer at depth 0.
  EXPECT_NE(json.find("\"name\": \"test.inner\", \"detail\": \"\", "),
            std::string::npos);
  EXPECT_NE(json.find("\"depth\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\": 0"), std::string::npos) << json;
}

TEST_F(TelemetryTest, DisabledSitesAreInert) {
  Disable();
  FLEXREL_TELEMETRY_COUNT("test.disabled", 1);
  ScopedSpan span("test.disabled_span");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(CounterValue("test.disabled"), 0u);
  EXPECT_EQ(Registry::Global().spans_recorded(), 0u);
}

TEST_F(TelemetryTest, ResetZeroesInPlaceAndKeepsPointersValid) {
  Counter* counter = Registry::Global().GetCounter("test.reset");
  Histogram* hist = Registry::Global().GetHistogram("test.reset");
  counter->Add(7);
  hist->Record(100);
  Registry::Global().Reset();
  // The same pointers remain usable (the macro sites cache them in
  // function-local statics and never re-resolve).
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(hist->Snap().count, 0u);
  counter->Add(3);
  EXPECT_EQ(CounterValue("test.reset"), 3u);
  EXPECT_EQ(Registry::Global().GetCounter("test.reset"), counter);
}

TEST_F(TelemetryTest, JsonDumpEscapesAndSortsNames) {
  Registry::Global().GetCounter("test.b")->Add(2);
  Registry::Global().GetCounter("test.a")->Add(1);
  {
    ScopedSpan span("test.escape");
    span.SetDetail("quote=\" backslash=\\ newline=\n");
  }
  const std::string json = Registry::Global().ToJson();
  EXPECT_LT(json.find("\"test.a\": 1"), json.find("\"test.b\": 2"));
  EXPECT_NE(json.find("quote=\\\" backslash=\\\\ newline=\\n"),
            std::string::npos)
      << json;
}

}  // namespace
}  // namespace telemetry
}  // namespace flexrel
