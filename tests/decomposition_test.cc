#include "decomposition/decomposition.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace flexrel {
namespace {

bool SameTupleSet(const FlexibleRelation& a, const FlexibleRelation& b) {
  std::vector<Tuple> ra = a.rows();
  std::vector<Tuple> rb = b.rows();
  std::sort(ra.begin(), ra.end());
  std::sort(rb.begin(), rb.end());
  ra.erase(std::unique(ra.begin(), ra.end()), ra.end());
  rb.erase(std::unique(rb.begin(), rb.end()), rb.end());
  return ra == rb;
}

class DecompositionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EmployeeConfig config;
    config.num_variants = 3;
    config.attrs_per_variant = 2;
    config.num_common_attrs = 1;
    config.rows = 50;
    config.seed = 7;
    auto w = MakeEmployeeWorkload(config);
    ASSERT_TRUE(w.ok()) << w.status();
    w_ = std::move(w).value();
  }
  std::unique_ptr<EmployeeWorkload> w_;
};

TEST_F(DecompositionTest, Method1TaggedNullPadding) {
  AttrId tag = w_->catalog.Intern("variant_tag");
  auto r = TranslateNullPaddedTagged(w_->relation, w_->eads[0], tag);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().size(), w_->relation.size());
  // Every row is homogeneous over all attributes + tag.
  EXPECT_TRUE(r.value().scheme().Contains(tag));
  // Unused variant attributes are nulls: with 3 variants of 2 attrs each,
  // each row stores 4 nulls.
  EXPECT_EQ(r.value().CountNulls(), w_->relation.size() * 4);
  // Tags hold the matched variant index.
  for (const Tuple& row : r.value().rows()) {
    const Value* v = row.Get(tag);
    ASSERT_NE(v, nullptr);
    EXPECT_GE(v->as_int(), 0);
    EXPECT_LT(v->as_int(), 3);
  }
  // Round trip.
  FlexibleRelation restored = RestoreFromNullPadded(r.value(), tag);
  EXPECT_TRUE(SameTupleSet(restored, w_->relation));
}

TEST_F(DecompositionTest, Method2NullPadding) {
  auto r = TranslateNullPadded(w_->relation, w_->eads[0]);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().CountNulls(), w_->relation.size() * 4);
  FlexibleRelation restored = RestoreFromNullPadded(r.value());
  EXPECT_TRUE(SameTupleSet(restored, w_->relation));
}

TEST_F(DecompositionTest, Method3Horizontal) {
  auto parts = TranslateHorizontal(w_->relation, w_->eads[0]);
  ASSERT_TRUE(parts.ok()) << parts.status();
  EXPECT_EQ(parts.value().variant_relations.size(), 3u);
  size_t total = parts.value().remainder.size();
  for (const Relation& r : parts.value().variant_relations) {
    total += r.size();
    EXPECT_EQ(r.CountNulls(), 0u);  // horizontal stores no nulls
  }
  EXPECT_EQ(total, w_->relation.size());
  FlexibleRelation restored = RestoreHorizontal(parts.value());
  EXPECT_TRUE(SameTupleSet(restored, w_->relation));
}

TEST_F(DecompositionTest, Method4Vertical) {
  AttrSet key = AttrSet::Of(w_->id_attr);
  auto parts = TranslateVertical(w_->relation, w_->eads[0], key);
  ASSERT_TRUE(parts.ok()) << parts.status();
  EXPECT_EQ(parts.value().master.size(), w_->relation.size());
  size_t variant_rows = 0;
  for (const Relation& r : parts.value().variant_relations) {
    variant_rows += r.size();
    EXPECT_EQ(r.CountNulls(), 0u);
  }
  EXPECT_EQ(variant_rows, w_->relation.size());  // each tuple matches once
  FlexibleRelation restored = RestoreVertical(parts.value());
  EXPECT_TRUE(SameTupleSet(restored, w_->relation));
}

TEST_F(DecompositionTest, VerticalRequiresKey) {
  // Key outside the common attributes.
  AttrSet bad_key = AttrSet::Of(w_->eads[0].determined().ids().front());
  EXPECT_FALSE(TranslateVertical(w_->relation, w_->eads[0], bad_key).ok());

  // Duplicate key values are rejected.
  FlexibleRelation dup = FlexibleRelation::Derived("dup", DependencySet());
  Tuple a = w_->relation.row(0);
  Tuple b = w_->relation.row(1);
  b.Set(w_->id_attr, *a.Get(w_->id_attr));
  dup.InsertUnchecked(a);
  dup.InsertUnchecked(b);
  EXPECT_EQ(TranslateVertical(dup, w_->eads[0], AttrSet::Of(w_->id_attr))
                .status()
                .code(),
            StatusCode::kConstraintViolation);
}

TEST_F(DecompositionTest, UnmatchedTuplesLandInRemainderAndSurvive) {
  // Build a relation with a tuple matching no variant (jobtype outside the
  // EAD's conditions — only the common attributes are allowed then).
  FlexibleRelation mixed = FlexibleRelation::Derived("mixed", DependencySet());
  for (const Tuple& t : w_->relation.rows()) mixed.InsertUnchecked(t);
  Tuple odd;
  odd.Set(w_->id_attr, Value::Int(999999));
  odd.Set(w_->jobtype_attr, Value::Str("unclassified"));
  for (AttrId a : w_->common_attrs) {
    if (a == w_->id_attr || a == w_->jobtype_attr) continue;
    odd.Set(a, Value::Int(0));
  }
  mixed.InsertUnchecked(odd);

  auto parts = TranslateHorizontal(mixed, w_->eads[0]);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts.value().remainder.size(), 1u);
  EXPECT_TRUE(SameTupleSet(RestoreHorizontal(parts.value()), mixed));

  auto vparts = TranslateVertical(mixed, w_->eads[0],
                                  AttrSet::Of(w_->id_attr));
  ASSERT_TRUE(vparts.ok());
  EXPECT_TRUE(SameTupleSet(RestoreVertical(vparts.value()), mixed));
}

TEST_F(DecompositionTest, StorageStatsComparison) {
  // The experiment-E6 claim: null-padded methods store nulls proportional to
  // rows × unused variant width; horizontal/vertical and the flexible
  // relation store none.
  AttrId tag = w_->catalog.Intern("variant_tag2");
  auto m1 = TranslateNullPaddedTagged(w_->relation, w_->eads[0], tag);
  auto m3 = TranslateHorizontal(w_->relation, w_->eads[0]);
  auto m4 = TranslateVertical(w_->relation, w_->eads[0],
                              AttrSet::Of(w_->id_attr));
  ASSERT_TRUE(m1.ok() && m3.ok() && m4.ok());

  StorageStats s1 = StatsOf(m1.value());
  StorageStats s_flex = StatsOf(w_->relation);
  EXPECT_GT(s1.null_fields, 0u);
  EXPECT_EQ(s_flex.null_fields, 0u);
  // Null padding stores strictly more fields than the flexible relation.
  EXPECT_GT(s1.stored_fields, s_flex.stored_fields);

  std::vector<Relation> m3_all = m3.value().variant_relations;
  m3_all.push_back(m3.value().remainder);
  StorageStats s3 = StatsOf(m3_all);
  EXPECT_EQ(s3.null_fields, 0u);
  EXPECT_EQ(s3.tuples, w_->relation.size());

  std::vector<Relation> m4_all = m4.value().variant_relations;
  m4_all.push_back(m4.value().master);
  StorageStats s4 = StatsOf(m4_all);
  EXPECT_EQ(s4.null_fields, 0u);
  // Vertical stores the key twice per tuple: more fields than horizontal.
  EXPECT_GT(s4.stored_fields, s3.stored_fields);
}

TEST_F(DecompositionTest, TagAttributeCollisionRejected) {
  EXPECT_FALSE(
      TranslateNullPaddedTagged(w_->relation, w_->eads[0], w_->id_attr).ok());
}

}  // namespace
}  // namespace flexrel
