#include "hostlang/pascal_emit.h"

#include <gtest/gtest.h>

#include "workload/paper_examples.h"

namespace flexrel {
namespace {

TEST(PascalIdentifierTest, Sanitization) {
  EXPECT_EQ(PascalIdentifier("typing-speed"), "typing_speed");
  EXPECT_EQ(PascalIdentifier("FAX-number"), "fax_number");
  EXPECT_EQ(PascalIdentifier("123abc"), "f123abc");
  EXPECT_EQ(PascalIdentifier("software engineer"), "software_engineer");
}

TEST(PascalTypeNameTest, Mapping) {
  EXPECT_EQ(PascalTypeName(Domain::Any(ValueType::kInt)), "integer");
  EXPECT_EQ(PascalTypeName(Domain::Any(ValueType::kBool)), "boolean");
  EXPECT_EQ(PascalTypeName(Domain::Any(ValueType::kDouble)), "real");
  EXPECT_EQ(PascalTypeName(Domain::Any(ValueType::kString)), "string[255]");
  EXPECT_EQ(PascalTypeName(Domain::IntRange(1, 9).value()), "1..9");
}

class PascalEmitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ex = MakeJobtypeExample();
    ASSERT_TRUE(ex.ok()) << ex.status();
    ex_ = std::move(ex).value();
  }
  std::vector<std::pair<AttrId, Domain>> CommonFields() {
    return {{ex_->salary, Domain::Any(ValueType::kInt)},
            {ex_->jobtype, ex_->domains[1].second}};
  }
  std::vector<std::pair<AttrId, Domain>> VariantFields() {
    std::vector<std::pair<AttrId, Domain>> out;
    for (const auto& [attr, domain] : ex_->domains) {
      if (attr != ex_->salary && attr != ex_->jobtype) {
        out.push_back({attr, domain});
      }
    }
    return out;
  }
  std::unique_ptr<JobtypeExample> ex_;
};

TEST_F(PascalEmitTest, SingleDeterminantEmitsDirectVariantRecord) {
  auto emission = EmitPascalRecord(&ex_->catalog, "employee", CommonFields(),
                                   VariantFields(), ex_->ead);
  ASSERT_TRUE(emission.ok()) << emission.status();
  const PascalEmission& e = emission.value();
  EXPECT_FALSE(e.used_artificial_tag);
  // The enum type for jobtype and the case discriminant appear.
  EXPECT_NE(e.source.find("jobtype_type = ("), std::string::npos);
  EXPECT_NE(e.source.find("case jobtype: jobtype_type of"),
            std::string::npos);
  EXPECT_NE(e.source.find("secretary"), std::string::npos);
  EXPECT_NE(e.source.find("typing_speed: integer"), std::string::npos);
  EXPECT_NE(e.source.find("salary: integer"), std::string::npos);
  EXPECT_NE(e.source.find("end;"), std::string::npos);
  // The validity proof derives the original dependency (trivially here).
  EXPECT_FALSE(e.validity_proof.steps.empty());
}

TEST_F(PascalEmitTest, MultiAttributeDeterminantUsesWorkaround) {
  // Build an EAD whose determinant has two attributes (the paper's
  // sex/marital-status shape), forcing the artificial tag.
  AttrId sex = ex_->catalog.Intern("sex");
  AttrId marital = ex_->catalog.Intern("marital-status");
  AttrId maiden = ex_->catalog.Intern("maiden-name");
  AttrSet x{sex, marital};
  Tuple fm;
  fm.Set(sex, Value::Str("f"));
  fm.Set(marital, Value::Str("married"));
  auto ead = ExplicitAD::Make(
      x, AttrSet{maiden},
      {EadVariant{ConditionSet::Make(x, {fm}).value(), AttrSet{maiden}}});
  ASSERT_TRUE(ead.ok());

  std::vector<std::pair<AttrId, Domain>> common = {
      {sex, Domain::Enumerated({Value::Str("f"), Value::Str("m")}).value()},
      {marital, Domain::Enumerated({Value::Str("single"),
                                    Value::Str("married")})
                    .value()},
  };
  std::vector<std::pair<AttrId, Domain>> variant = {
      {maiden, Domain::Any(ValueType::kString)}};

  auto emission = EmitPascalRecord(&ex_->catalog, "person", common, variant,
                                   ead.value());
  ASSERT_TRUE(emission.ok()) << emission.status();
  const PascalEmission& e = emission.value();
  EXPECT_TRUE(e.used_artificial_tag);
  ASSERT_TRUE(e.tag_fd.has_value());
  ASSERT_TRUE(e.tag_ad.has_value());
  // X --func--> A and A --attr--> Y.
  EXPECT_EQ(e.tag_fd->lhs, x);
  EXPECT_EQ(e.tag_fd->rhs, AttrSet::Of(e.tag_attr));
  EXPECT_EQ(e.tag_ad->lhs, AttrSet::Of(e.tag_attr));
  EXPECT_EQ(e.tag_ad->rhs, AttrSet{maiden});
  // The machine-checked validity proof applies AF2.
  bool has_af2 = false;
  for (const ProofStep& s : e.validity_proof.steps) {
    if (s.rule == "AF2") has_af2 = true;
  }
  EXPECT_TRUE(has_af2) << e.validity_proof.ToString();
  // The record uses the artificial discriminant.
  EXPECT_NE(e.source.find("person_tag_type"), std::string::npos);
  EXPECT_NE(e.source.find("tag_variant0"), std::string::npos);
  EXPECT_NE(e.source.find("tag_none"), std::string::npos);
}

TEST_F(PascalEmitTest, NonOrdinalDiscriminantRejected) {
  // A real-typed determinant cannot discriminate a PASCAL variant record.
  AttrId level = ex_->catalog.Intern("level");
  auto ead = ExplicitAD::Make(
      AttrSet{level}, AttrSet{ex_->products},
      {EadVariant{ConditionSet::Single(level, Value::Real(1.5)),
                  AttrSet{ex_->products}}});
  ASSERT_TRUE(ead.ok());
  std::vector<std::pair<AttrId, Domain>> common = {
      {level, Domain::Any(ValueType::kDouble)}};
  std::vector<std::pair<AttrId, Domain>> variant = {
      {ex_->products, Domain::Any(ValueType::kInt)}};
  auto emission = EmitPascalRecord(&ex_->catalog, "bad", common, variant,
                                   ead.value());
  EXPECT_EQ(emission.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PascalEmitTest, SchemeWideEmissionAddressBook) {
  // Section 3.3's full claim: ANY flexible scheme becomes a PASCAL type once
  // artificial ADs cover its existential relationships. Exercise it on the
  // Section-1 address scheme (disjoint union + optional part + non-disjoint
  // union).
  AttrCatalog catalog;
  auto fs = FlexibleScheme::Parse(
      &catalog,
      "<4,4,{ZipCode,Town,"
      "<1,1,{POBox,<2,2,{Street,<0,1,{HouseNumber}>}>}>,"
      "<1,3,{tel,fax,email}>}>");
  ASSERT_TRUE(fs.ok()) << fs.status();
  std::vector<std::pair<AttrId, Domain>> fields;
  for (const char* name : {"ZipCode", "POBox", "HouseNumber"}) {
    fields.push_back({catalog.Find(name).value(), Domain::Any(ValueType::kInt)});
  }
  for (const char* name : {"Town", "Street", "tel", "fax", "email"}) {
    fields.push_back(
        {catalog.Find(name).value(), Domain::Any(ValueType::kString)});
  }
  auto emission = EmitPascalScheme(&catalog, "address", fs.value(), fields);
  ASSERT_TRUE(emission.ok()) << emission.status();
  const std::string& src = emission.value().source;
  // Two variant regions (town-local part, electronic part) as nested variant
  // records, fixed fields inline.
  EXPECT_NE(src.find("address_region0 = record"), std::string::npos);
  EXPECT_NE(src.find("address_region1 = record"), std::string::npos);
  EXPECT_NE(src.find("zipcode: integer;"), std::string::npos);
  EXPECT_NE(src.find("region0: address_region0;"), std::string::npos);
  // The town-local region has 3 combinations: {POBox}, {Street},
  // {Street, HouseNumber}; the electronic one has 7.
  ASSERT_EQ(emission.value().ads.regions.size(), 2u);
  EXPECT_EQ(emission.value().ads.regions[0].combinations.size(), 3u);
  EXPECT_EQ(emission.value().ads.regions[1].combinations.size(), 7u);
  EXPECT_NE(src.find("case tag: 0..2 of"), std::string::npos);
  EXPECT_NE(src.find("case tag: 0..6 of"), std::string::npos);
  // Street occurs in two combinations of region 0: branch-suffixed names.
  EXPECT_NE(src.find("street_v"), std::string::npos);
}

TEST_F(PascalEmitTest, SchemeWideEmissionRequiresDomains) {
  AttrCatalog catalog;
  auto fs = FlexibleScheme::Parse(&catalog, "<1,2,{A,B}>");
  ASSERT_TRUE(fs.ok());
  auto emission = EmitPascalScheme(&catalog, "t", fs.value(), {});
  EXPECT_EQ(emission.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PascalEmitTest, SchemeWideEmissionFixedSchemeHasNoRegions) {
  AttrCatalog catalog;
  auto fs = FlexibleScheme::Parse(&catalog, "<2,2,{A,B}>");
  ASSERT_TRUE(fs.ok());
  std::vector<std::pair<AttrId, Domain>> fields = {
      {catalog.Find("A").value(), Domain::Any(ValueType::kInt)},
      {catalog.Find("B").value(), Domain::Any(ValueType::kInt)}};
  auto emission = EmitPascalScheme(&catalog, "flat", fs.value(), fields);
  ASSERT_TRUE(emission.ok()) << emission.status();
  EXPECT_TRUE(emission.value().ads.regions.empty());
  EXPECT_EQ(emission.value().source.find("case"), std::string::npos);
  EXPECT_NE(emission.value().source.find("a: integer;"), std::string::npos);
}

TEST_F(PascalEmitTest, IntDiscriminantUsesLiteralLabels) {
  AttrId code = ex_->catalog.Intern("code");
  AttrId extra = ex_->catalog.Intern("extra");
  auto ead = ExplicitAD::Make(
      AttrSet{code}, AttrSet{extra},
      {EadVariant{ConditionSet::Single(code, Value::Int(1)),
                  AttrSet{extra}}});
  ASSERT_TRUE(ead.ok());
  std::vector<std::pair<AttrId, Domain>> common = {
      {code, Domain::IntRange(0, 3).value()}};
  std::vector<std::pair<AttrId, Domain>> variant = {
      {extra, Domain::Any(ValueType::kInt)}};
  auto emission =
      EmitPascalRecord(&ex_->catalog, "coded", common, variant, ead.value());
  ASSERT_TRUE(emission.ok()) << emission.status();
  EXPECT_NE(emission.value().source.find("case code: 0..3 of"),
            std::string::npos);
  EXPECT_NE(emission.value().source.find("1: (extra: integer);"),
            std::string::npos);
}

}  // namespace
}  // namespace flexrel
