// Hybrid (sample-then-validate) discovery: unit tests for the evidence
// building blocks, sampler agree-set correctness on hand-built partitions,
// the per-run telemetry-reset regression, and the differential soak pinning
// hybrid == level-wise == brute force across 30 seeds of planted-FD,
// Zipfian-skew, null-carrying, and footnote-3-mutated instances.
//
// Randomized tests take their seed from FLEXREL_TEST_SEED when set (CI's
// seed-diversity job passes the run id) and print it for replay.

#include "engine/hybrid_discovery.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/closure.h"
#include "core/discovery.h"
#include "core/flexible_relation.h"
#include "engine/parallel_discovery.h"
#include "engine/pli_cache.h"
#include "engine/validator.h"
#include "relational/attribute.h"
#include "engine_test_util.h"
#include "telemetry/telemetry.h"
#include "test_seed.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace flexrel {
namespace {

using testutil::FullUniverse;
using testutil::MakePlantedFdInstance;
using testutil::RandomInstance;
using testutil::RandomSoakTuple;

Tuple MakeTuple(std::vector<std::pair<AttrId, Value>> pairs) {
  return Tuple::FromPairs(std::move(pairs));
}

// ---------------------------------------------------------------------------
// Pair comparison: the agree / presence-diff split both bounds rest on.
// ---------------------------------------------------------------------------

TEST(PairEvidenceTest, SplitsAgreementValueConflictAndPresence) {
  // a: equal values; b: conflicting values; c: only left; d: only right;
  // e: equal nulls (null == null, Definition 4.2's explicit-null reading).
  Tuple l = MakeTuple({{0, Value::Int(1)},
                       {1, Value::Int(5)},
                       {2, Value::Str("x")},
                       {4, Value::Null()}});
  Tuple r = MakeTuple({{0, Value::Int(1)},
                       {1, Value::Int(6)},
                       {3, Value::Str("y")},
                       {4, Value::Null()}});
  PairEvidence e = ComparePair(l, r);
  EXPECT_EQ(e.agree, (AttrSet{0, 4}));
  EXPECT_EQ(e.presence_diff, (AttrSet{2, 3}));
  // Symmetric by construction.
  PairEvidence flipped = ComparePair(r, l);
  EXPECT_EQ(flipped.agree, e.agree);
  EXPECT_EQ(flipped.presence_diff, e.presence_diff);
}

TEST(PairEvidenceTest, EmptyTupleDisagreesOnEverythingPresent) {
  Tuple l = MakeTuple({{1, Value::Int(2)}, {3, Value::Int(4)}});
  PairEvidence e = ComparePair(l, Tuple());
  EXPECT_TRUE(e.agree.empty());
  EXPECT_EQ(e.presence_diff, (AttrSet{1, 3}));
}

// ---------------------------------------------------------------------------
// Evidence store: dedup is what sampling efficiency is measured by.
// ---------------------------------------------------------------------------

TEST(EvidenceStoreTest, DeduplicatesOnBothSets) {
  EvidenceStore store;
  PairEvidence a{AttrSet{0, 1}, AttrSet{2}};
  PairEvidence same_agree_other_diff{AttrSet{0, 1}, AttrSet{3}};
  EXPECT_TRUE(store.Add(a));
  EXPECT_FALSE(store.Add(a)) << "identical evidence must not be fresh";
  EXPECT_TRUE(store.Add(same_agree_other_diff))
      << "a different presence diff is new information for the AD bound";
  EXPECT_EQ(store.size(), 2u);
  // Insertion order is the incremental-Tighten contract.
  EXPECT_EQ(store.entries()[0], a);
  EXPECT_EQ(store.entries()[1], same_agree_other_diff);
}

// ---------------------------------------------------------------------------
// Candidate frontier: bound arithmetic and the survive/skip verdict.
// ---------------------------------------------------------------------------

TEST(CandidateFrontierTest, FdBoundIntersectsAgreeSetsOfSupersets) {
  AttrSet universe = FullUniverse(4);
  EvidenceStore store;
  // A pair agreeing on {0,1,2}: every candidate inside that set caps its
  // FD bound there; {3} is untouched (the pair never shared a cluster of
  // partition({3})).
  store.Add(PairEvidence{AttrSet{0, 1, 2}, AttrSet{}});
  CandidateFrontier frontier(LatticeLevel(universe, 1), universe,
                             CandidateFrontier::Semantics::kFd);
  frontier.Tighten(store);
  EXPECT_EQ(frontier.BoundMinusLhs(0), (AttrSet{1, 2}));  // lhs {0}
  EXPECT_EQ(frontier.BoundMinusLhs(3), (AttrSet{0, 1, 2}));  // lhs {3}
  EXPECT_TRUE(frontier.Survives(0));
  // A second pair agreeing on {0,3} only: candidate {0}'s bound drops to
  // {0,1,2} ∩ {0,3} = {0} — trivial, provably nothing to validate.
  store.Add(PairEvidence{AttrSet{0, 3}, AttrSet{}});
  frontier.Tighten(store);
  EXPECT_TRUE(frontier.BoundMinusLhs(0).empty());
  EXPECT_FALSE(frontier.Survives(0));
  EXPECT_EQ(frontier.survivor_count(), 3u);
}

TEST(CandidateFrontierTest, AdBoundSubtractsPresenceDiffs) {
  AttrSet universe = FullUniverse(4);
  EvidenceStore store;
  store.Add(PairEvidence{AttrSet{0, 1}, AttrSet{2}});
  CandidateFrontier frontier(LatticeLevel(universe, 2), universe,
                             CandidateFrontier::Semantics::kAd);
  frontier.Tighten(store);
  const std::vector<AttrSet>& candidates = frontier.candidates();
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i] == (AttrSet{0, 1})) {
      EXPECT_EQ(frontier.BoundMinusLhs(i), (AttrSet{3}))
          << "the witnessed pair breaks the existence pattern only for 2";
    } else {
      // No evidence speaks about other determinants at this level.
      EXPECT_EQ(frontier.BoundMinusLhs(i),
                universe.Minus(candidates[i]));
    }
  }
}

TEST(CandidateFrontierTest, DenseAgreeSetsTakeTheScanArmIdentically) {
  // A wide agree set makes subset enumeration (C(14,2) = 91 candidates)
  // costlier than scanning the level; both arms must tighten identically.
  AttrSet universe = FullUniverse(14);
  AttrSet wide_agree = universe.Minus(AttrSet::Of(13));
  EvidenceStore store;
  store.Add(PairEvidence{wide_agree, AttrSet{13}});
  store.Add(PairEvidence{AttrSet{0, 1}, AttrSet{}});  // sparse entry
  CandidateFrontier fd(LatticeLevel(universe, 2), universe,
                       CandidateFrontier::Semantics::kFd);
  fd.Tighten(store);
  for (size_t i = 0; i < fd.candidates().size(); ++i) {
    const AttrSet& lhs = fd.candidates()[i];
    AttrSet expected = universe;
    if (lhs.IsSubsetOf(wide_agree)) expected = expected.Intersect(wide_agree);
    if (lhs.IsSubsetOf(AttrSet{0, 1})) {
      expected = expected.Intersect(AttrSet{0, 1});
    }
    EXPECT_EQ(fd.BoundMinusLhs(i), expected.Minus(lhs))
        << "candidate " << lhs.ToString();
  }
}

// ---------------------------------------------------------------------------
// Sampler: widening in-cluster enumeration over hand-built partitions.
// ---------------------------------------------------------------------------

std::vector<Tuple> HandBuiltRows() {
  // Attr 0 clusters rows {0,1,2} (value 1) and {3,4} (value 2); row 5 is a
  // partnerless singleton. Attr 1 clusters {0,3} (value 7); the rest are
  // distinct. Attr 2 varies freely and never clusters.
  return {
      MakeTuple({{0, Value::Int(1)}, {1, Value::Int(7)}, {2, Value::Int(10)}}),
      MakeTuple({{0, Value::Int(1)}, {1, Value::Int(8)}, {2, Value::Int(11)}}),
      MakeTuple({{0, Value::Int(1)}, {2, Value::Int(12)}}),
      MakeTuple({{0, Value::Int(2)}, {1, Value::Int(7)}, {2, Value::Int(13)}}),
      MakeTuple({{0, Value::Int(2)}, {1, Value::Int(9)}}),
      MakeTuple({{0, Value::Int(3)}, {1, Value::Int(5)}, {2, Value::Int(14)}}),
  };
}

std::string EvidenceKey(const PairEvidence& e) {
  return StrCat(e.agree.ToString(), "|", e.presence_diff.ToString());
}

TEST(ClusterPairSamplerTest, RoundOneComparesAdjacentClusterMembers) {
  std::vector<Tuple> rows = HandBuiltRows();
  PliCache cache(&rows);
  ClusterPairSampler sampler(&cache, FullUniverse(3));
  EvidenceStore store;
  ClusterPairSampler::RoundStats stats = sampler.Round(&store, 1);
  // Distance 1: attr 0 contributes (0,1), (1,2), (3,4); attr 1 contributes
  // (0,3); attr 2 has no clusters.
  EXPECT_EQ(stats.pairs, 4u);
  EXPECT_EQ(stats.fresh, store.size());
  EXPECT_GT(stats.efficiency, 0.0);
  // The (0,3) pair through attr 1: agrees exactly on attr 1, row 3's attr-0
  // value differs and both carry attrs 0 and 2 with different values.
  bool found = false;
  for (const PairEvidence& e : store.entries()) {
    if (e.agree == AttrSet::Of(1) && e.presence_diff.empty()) found = true;
  }
  EXPECT_TRUE(found) << "evidence of the {1}-cluster pair (0,3) missing";
}

TEST(ClusterPairSamplerTest, WideningReachesEveryInClusterPair) {
  std::vector<Tuple> rows = HandBuiltRows();
  PliCache cache(&rows);

  // Oracle: every unordered in-cluster pair of every single-attribute
  // partition, compared directly.
  std::set<std::string> expected;
  AttrSet universe = FullUniverse(3);
  for (AttrId a : universe) {
    std::shared_ptr<const Pli> pli = cache.Get(AttrSet::Of(a));
    for (Pli::ClusterView cluster : pli->clusters()) {
      for (size_t i = 0; i < cluster.size(); ++i) {
        for (size_t j = i + 1; j < cluster.size(); ++j) {
          expected.insert(
              EvidenceKey(ComparePair(rows[cluster[i]], rows[cluster[j]])));
        }
      }
    }
  }

  ClusterPairSampler sampler(&cache, universe);
  EvidenceStore store;
  int rounds = 0;
  while (!sampler.exhausted()) {
    ASSERT_LT(rounds++, 10) << "widening must terminate on finite clusters";
    sampler.Round(&store, 1);
  }
  EXPECT_EQ(sampler.Round(&store, 1).pairs, 0u)
      << "an exhausted sampler has no pairs left";

  std::set<std::string> sampled;
  for (const PairEvidence& e : store.entries()) {
    sampled.insert(EvidenceKey(e));
  }
  EXPECT_EQ(sampled, expected);
}

// ---------------------------------------------------------------------------
// Telemetry: per-run gauge reset (regression) and the counter identities
// perf_smoke turns into CI guarantees.
// ---------------------------------------------------------------------------

TEST(DiscoveryTelemetryTest, RunStartResetsStaleGauges) {
  telemetry::Enable();
  telemetry::Registry& registry = telemetry::Registry::Global();
  registry.Reset();
  Rng rng(11);
  std::vector<Tuple> rows = RandomInstance(&rng, 40, 4, 0.9, 2);

  // Plant a stale watermark as an earlier run in this process would have;
  // a following run that never reaches the write site (here: an empty
  // universe walks zero levels) must not leak it into its own dump.
  telemetry::Gauge* util =
      registry.GetGauge("engine.discovery.worker_utilization_pct");
  telemetry::Gauge* hit_rate =
      registry.GetGauge("engine.discovery.sample_hit_rate_pct");
  for (DiscoveryStrategy strategy :
       {DiscoveryStrategy::kLevelWise, DiscoveryStrategy::kHybrid}) {
    util->Set(77);
    hit_rate->Set(55);
    EngineDiscoveryOptions options;
    options.strategy = strategy;
    (void)EngineDiscoverFuncDeps(rows, AttrSet(), options);
    EXPECT_EQ(util->value(), 0)
        << "stale worker-utilization watermark leaked across runs";
    EXPECT_EQ(hit_rate->value(), 0)
        << "stale sampling hit-rate leaked across runs";
  }
  telemetry::Disable();
}

TEST(DiscoveryTelemetryTest, HybridCountersWitnessTheFrontier) {
  telemetry::Enable();
  telemetry::Registry& registry = telemetry::Registry::Global();
  registry.Reset();
  Rng rng(7);
  auto instance = MakePlantedFdInstance(&rng, 300, 12, 2, 6);

  EngineDiscoveryOptions options;
  options.strategy = DiscoveryStrategy::kHybrid;
  options.max_lhs_size = 2;
  (void)EngineDiscoverFuncDeps(instance.rows, instance.universe, options);

  const uint64_t candidates =
      registry.CounterValue("engine.discovery.candidates");
  const uint64_t validated =
      registry.CounterValue("engine.discovery.frontier_validations");
  const uint64_t skipped =
      registry.CounterValue("engine.discovery.evidence_skips");
  EXPECT_GT(registry.CounterValue("engine.discovery.sampled_pairs"), 0u);
  EXPECT_GT(candidates, 0u);
  EXPECT_LE(validated, candidates)
      << "hybrid must never validate more than the full lattice";
  EXPECT_EQ(validated + skipped, candidates)
      << "every candidate takes exactly one arm";
  EXPECT_GT(skipped, 0u)
      << "on a fat-cluster planted instance the evidence must falsify "
         "some candidates outright";
  telemetry::Disable();
}

// ---------------------------------------------------------------------------
// The differential soak: hybrid == level-wise == brute force, everywhere.
// ---------------------------------------------------------------------------

void ExpectAllStrategiesIdentical(const std::vector<Tuple>& rows,
                                  const AttrSet& universe, size_t max_lhs,
                                  bool minimal_only,
                                  const EngineDiscoveryOptions& hybrid_base,
                                  const std::string& label) {
  EngineDiscoveryOptions hybrid = hybrid_base;
  hybrid.strategy = DiscoveryStrategy::kHybrid;
  hybrid.max_lhs_size = max_lhs;
  hybrid.minimal_only = minimal_only;
  EngineDiscoveryOptions level_wise = hybrid;
  level_wise.strategy = DiscoveryStrategy::kLevelWise;
  DiscoveryOptions brute;
  brute.use_engine = false;
  brute.max_lhs_size = max_lhs;
  brute.minimal_only = minimal_only;

  std::vector<FuncDep> hybrid_fds =
      EngineDiscoverFuncDeps(rows, universe, hybrid);
  EXPECT_EQ(hybrid_fds, EngineDiscoverFuncDeps(rows, universe, level_wise))
      << label << " (FDs vs level-wise, max_lhs=" << max_lhs
      << " minimal=" << minimal_only << ")";
  EXPECT_EQ(hybrid_fds, DiscoverFuncDeps(rows, universe, brute))
      << label << " (FDs vs brute, max_lhs=" << max_lhs
      << " minimal=" << minimal_only << ")";

  std::vector<AttrDep> hybrid_ads =
      EngineDiscoverAttrDeps(rows, universe, hybrid);
  EXPECT_EQ(hybrid_ads, EngineDiscoverAttrDeps(rows, universe, level_wise))
      << label << " (ADs vs level-wise, max_lhs=" << max_lhs
      << " minimal=" << minimal_only << ")";
  EXPECT_EQ(hybrid_ads, DiscoverAttrDeps(rows, universe, brute))
      << label << " (ADs vs brute, max_lhs=" << max_lhs
      << " minimal=" << minimal_only << ")";
}

TEST(EngineHybridDiscoverySoak, MatchesOraclesAcrossInstanceShapes) {
  uint64_t base = TestSeedBase(211, "hybrid-soak");
  for (uint64_t i = 1; i <= 30; ++i) {
    uint64_t seed = base + i;
    Rng rng(seed * 7919);
    SCOPED_TRACE(StrCat("seed=", seed));

    // Knob diversity rides along with shape diversity: some seeds get no
    // sampling budget at all (pure exact fallback), some an eager one.
    EngineDiscoveryOptions knobs;
    switch (seed % 3) {
      case 0:
        knobs.hybrid_max_rounds = 0;  // evidence-free: every candidate exact
        break;
      case 1:
        knobs.hybrid_refine_fraction = 0.0;  // maximally sampling-eager
        knobs.hybrid_min_efficiency = 0.0;
        break;
      default:
        break;  // shipped defaults
    }

    // Sparse flexible rows (nulls, presence variation), a dense near-
    // classical slice, and a planted-FD instance with Zipf-skewed clusters
    // and absence on the non-planted attributes.
    std::vector<Tuple> sparse = RandomInstance(&rng, 60, 5, 0.55, 2);
    std::vector<Tuple> dense = RandomInstance(&rng, 50, 4, 0.95, 3);
    auto planted = MakePlantedFdInstance(&rng, 80, 7 + seed % 3, 2,
                                         4 + static_cast<int64_t>(seed % 4),
                                         0.3);

    ExpectAllStrategiesIdentical(sparse, FullUniverse(5), 2, true, knobs,
                                 "sparse");
    ExpectAllStrategiesIdentical(sparse, FullUniverse(5), 3, false, knobs,
                                 "sparse");
    ExpectAllStrategiesIdentical(dense, FullUniverse(4), 2, true, knobs,
                                 "dense");
    ExpectAllStrategiesIdentical(planted.rows, planted.universe, 2, true,
                                 knobs, "planted");

    // Completeness against the construction: whatever minimal generators
    // discovery settled on must imply every planted dependency.
    DependencySet discovered;
    EngineDiscoveryOptions hybrid = knobs;
    hybrid.strategy = DiscoveryStrategy::kHybrid;
    for (FuncDep& fd :
         EngineDiscoverFuncDeps(planted.rows, planted.universe, hybrid)) {
      discovered.AddFd(std::move(fd));
    }
    for (const FuncDep& fd : planted.planted) {
      EXPECT_TRUE(Implies(discovered, fd))
          << "planted " << fd.lhs.ToString() << " -> " << fd.rhs.ToString()
          << " not implied by the discovered set";
    }
  }
}

TEST(EngineHybridDiscoverySoak, SurvivesMutationsBetweenDiscoveries) {
  uint64_t base = TestSeedBase(223, "hybrid-mutation-soak");
  for (uint64_t i = 1; i <= 6; ++i) {
    uint64_t seed = base + i;
    Rng rng(seed * 6151);
    SCOPED_TRACE(StrCat("seed=", seed));

    AttrCatalog catalog;
    std::vector<AttrId> attrs;
    for (int a = 0; a < 5; ++a) attrs.push_back(catalog.Intern(StrCat("a", a)));
    AttrSet universe = FullUniverse(attrs.size());

    FlexibleRelation rel = FlexibleRelation::Derived("hybrid-soak",
                                                     DependencySet());
    for (int r = 0; r < 50; ++r) {
      rel.InsertUnchecked(RandomSoakTuple(attrs, &rng));
    }

    // Re-discover through the relation's long-lived cache after every
    // mutation burst: round r's sampler reads partitions patched r times
    // (and probes the COW snapshot path the cache defaults to).
    for (int round = 0; round < 4; ++round) {
      std::shared_ptr<PliCache> cache = rel.pli_cache();
      DependencyValidator validator(cache.get());
      EngineDiscoveryOptions hybrid;
      hybrid.strategy = DiscoveryStrategy::kHybrid;
      EngineDiscoveryOptions level_wise;

      std::vector<FuncDep> hybrid_fds =
          EngineDiscoverFuncDeps(&validator, universe, hybrid);
      std::vector<AttrDep> hybrid_ads =
          EngineDiscoverAttrDeps(&validator, universe, hybrid);
      EXPECT_EQ(hybrid_fds,
                EngineDiscoverFuncDeps(&validator, universe, level_wise))
          << "round " << round;
      EXPECT_EQ(hybrid_ads,
                EngineDiscoverAttrDeps(&validator, universe, level_wise))
          << "round " << round;
      DiscoveryOptions brute;
      brute.use_engine = false;
      EXPECT_EQ(hybrid_fds, DiscoverFuncDeps(rel.rows(), universe, brute))
          << "round " << round;
      EXPECT_EQ(hybrid_ads, DiscoverAttrDeps(rel.rows(), universe, brute))
          << "round " << round;

      for (int m = 0; m < 8; ++m) {
        if (rng.Bernoulli(0.6)) {
          rel.InsertUnchecked(RandomSoakTuple(attrs, &rng));
        } else {
          size_t row = rng.Index(rel.size());
          AttrId attr = attrs[rng.Index(attrs.size())];
          auto delta = rel.Update(row, attr, testutil::RandomSoakValue(&rng));
          ASSERT_TRUE(delta.ok()) << delta.status();
        }
      }
    }
  }
}

}  // namespace
}  // namespace flexrel
