#include "core/implication.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"
#include "util/string_util.h"
#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace flexrel {
namespace {

constexpr AttrId kA = 0, kB = 1, kC = 2;

TEST(DerivationTest, NotDerivableReportsNotFound) {
  AttrCatalog cat;
  cat.Intern("A");
  cat.Intern("B");
  DependencySet sigma;
  auto d = DeriveAttrDep(cat, sigma, AttrDep{AttrSet{kA}, AttrSet{kB}},
                         AxiomSystem::kAdOnly);
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
}

TEST(DerivationTest, ReflexivityIsOneStep) {
  AttrCatalog cat;
  cat.Intern("A");
  cat.Intern("B");
  DependencySet sigma;
  auto d = DeriveAttrDep(cat, sigma, AttrDep{AttrSet{kA, kB}, AttrSet{kA}},
                         AxiomSystem::kAdOnly);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d.value().steps.size(), 1u);
  EXPECT_EQ(d.value().steps[0].rule, "A3");
}

TEST(DerivationTest, Example4Derivation) {
  // Example 4: from the jobtype EAD, prove
  //   {jobtype, salary} --attr--> {typing-speed}
  // via A1 (project the RHS) then A4 (augment the LHS with salary).
  auto ex = MakeJobtypeExample();
  ASSERT_TRUE(ex.ok());
  DependencySet sigma;
  auto abbrev = ex.value()->ead.Abbreviate();
  sigma.AddAd(AttrDep{abbrev.lhs, abbrev.rhs});

  AttrDep target{AttrSet{ex.value()->jobtype, ex.value()->salary},
                 AttrSet{ex.value()->typing_speed}};
  auto d = DeriveAttrDep(ex.value()->catalog, sigma, target,
                         AxiomSystem::kAdOnly);
  ASSERT_TRUE(d.ok()) << d.status();
  const Derivation& proof = d.value();
  // premise, A1 projection, A4 augmentation.
  ASSERT_EQ(proof.steps.size(), 3u);
  EXPECT_EQ(proof.steps[0].rule, "premise");
  EXPECT_EQ(proof.steps[1].rule, "A1");
  EXPECT_EQ(proof.steps[2].rule, "A4");
  EXPECT_NE(proof.steps[2].conclusion.find("typing-speed"),
            std::string::npos);
  EXPECT_NE(proof.ToString().find("[2] A4"), std::string::npos);
}

TEST(DerivationTest, AdditivityCombinesPieces) {
  AttrCatalog cat;
  cat.Intern("A");
  cat.Intern("B");
  cat.Intern("C");
  DependencySet sigma;
  sigma.AddAd(AttrDep{AttrSet{kA}, AttrSet{kB}});
  sigma.AddAd(AttrDep{AttrSet{kA}, AttrSet{kC}});
  auto d = DeriveAttrDep(cat, sigma, AttrDep{AttrSet{kA}, AttrSet{kB, kC}},
                         AxiomSystem::kAdOnly);
  ASSERT_TRUE(d.ok());
  bool has_a2 = false;
  for (const ProofStep& s : d.value().steps) {
    if (s.rule == "A2") has_a2 = true;
  }
  EXPECT_TRUE(has_a2);
}

TEST(DerivationTest, CombinedSystemUsesAf2) {
  AttrCatalog cat;
  cat.Intern("A");
  cat.Intern("B");
  cat.Intern("C");
  DependencySet sigma;
  sigma.AddFd(FuncDep{AttrSet{kA}, AttrSet{kB}});
  sigma.AddAd(AttrDep{AttrSet{kB}, AttrSet{kC}});
  auto d = DeriveAttrDep(cat, sigma, AttrDep{AttrSet{kA}, AttrSet{kC}},
                         AxiomSystem::kCombined);
  ASSERT_TRUE(d.ok()) << d.status();
  bool has_af2 = false;
  for (const ProofStep& s : d.value().steps) {
    if (s.rule == "AF2") has_af2 = true;
  }
  EXPECT_TRUE(has_af2) << d.value().ToString();
}

TEST(DerivationTest, FdDerivationUsesArmstrongRules) {
  AttrCatalog cat;
  cat.Intern("A");
  cat.Intern("B");
  cat.Intern("C");
  DependencySet sigma;
  sigma.AddFd(FuncDep{AttrSet{kA}, AttrSet{kB}});
  sigma.AddFd(FuncDep{AttrSet{kB}, AttrSet{kC}});
  auto d = DeriveFuncDep(cat, sigma, FuncDep{AttrSet{kA}, AttrSet{kC}});
  ASSERT_TRUE(d.ok());
  std::set<std::string> rules;
  for (const ProofStep& s : d.value().steps) rules.insert(s.rule);
  EXPECT_TRUE(rules.count("F1"));
  EXPECT_TRUE(rules.count("F2"));
  EXPECT_TRUE(rules.count("F3"));
  EXPECT_FALSE(DeriveFuncDep(cat, sigma,
                             FuncDep{AttrSet{kC}, AttrSet{kA}})
                   .ok());
}

TEST(DerivationTest, PremiseIndicesAreValid) {
  AttrCatalog cat;
  for (int i = 0; i < 8; ++i) cat.Intern(StrCat("x", i));
  DependencySet sigma;
  sigma.AddFd(FuncDep{AttrSet{0}, AttrSet{1}});
  sigma.AddFd(FuncDep{AttrSet{1}, AttrSet{2}});
  sigma.AddAd(AttrDep{AttrSet{2}, AttrSet{3, 4}});
  sigma.AddAd(AttrDep{AttrSet{0}, AttrSet{5}});
  auto d = DeriveAttrDep(cat, sigma, AttrDep{AttrSet{0}, AttrSet{3, 5}},
                         AxiomSystem::kCombined);
  ASSERT_TRUE(d.ok()) << d.status();
  const auto& steps = d.value().steps;
  for (size_t i = 0; i < steps.size(); ++i) {
    for (size_t p : steps[i].premises) {
      EXPECT_LT(p, i) << "premise must reference an earlier step";
    }
  }
}

// Derivability must coincide exactly with closure-based implication.
class DerivabilitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DerivabilitySweep, DeriveSucceedsIffImplied) {
  Rng rng(GetParam());
  AttrCatalog cat;
  AttrSet universe;
  for (AttrId a = 0; a < 6; ++a) {
    cat.Intern(StrCat("a", a));
    universe.Insert(a);
  }
  DependencySet sigma =
      RandomDependencies(universe, &rng, rng.Index(3), 1 + rng.Index(3));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<AttrId> lhs, rhs;
    for (AttrId a : universe) {
      if (rng.Bernoulli(0.3)) lhs.push_back(a);
      if (rng.Bernoulli(0.3)) rhs.push_back(a);
    }
    AttrDep target{AttrSet::FromIds(lhs), AttrSet::FromIds(rhs)};
    for (AxiomSystem system :
         {AxiomSystem::kAdOnly, AxiomSystem::kCombined}) {
      bool implied = Implies(sigma, target, system);
      auto d = DeriveAttrDep(cat, sigma, target, system);
      EXPECT_EQ(implied, d.ok())
          << "derivability and implication disagree (seed " << GetParam()
          << ")";
      if (d.ok()) {
        EXPECT_FALSE(d.value().steps.empty());
      }
    }
    FuncDep fd_target{target.lhs, target.rhs};
    EXPECT_EQ(Implies(sigma, fd_target),
              DeriveFuncDep(cat, sigma, fd_target).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DerivabilitySweep,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace flexrel
