#include "core/flexible_relation.h"

#include <gtest/gtest.h>

#include "workload/paper_examples.h"

namespace flexrel {
namespace {

class FlexibleRelationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ex = MakeJobtypeExample();
    ASSERT_TRUE(ex.ok()) << ex.status();
    ex_ = std::move(ex).value();
  }
  std::unique_ptr<JobtypeExample> ex_;
};

TEST_F(FlexibleRelationTest, BaseRelationPreloadsThreeTuples) {
  EXPECT_EQ(ex_->relation.size(), 3u);
  EXPECT_TRUE(ex_->relation.has_checker());
  EXPECT_TRUE(ex_->relation.SatisfiesDeclaredDeps());
}

TEST_F(FlexibleRelationTest, InsertTypeChecks) {
  EXPECT_TRUE(ex_->relation.Insert(ex_->MakeSecretary(100, 100)).ok());
  Status bad = ex_->relation.Insert(ex_->MakeMistypedSalesman());
  EXPECT_EQ(bad.code(), StatusCode::kConstraintViolation);
  EXPECT_NE(bad.message().find("insert into employee"), std::string::npos);
}

TEST_F(FlexibleRelationTest, SetSemanticsRejectDuplicates) {
  Tuple t = ex_->MakeSecretary(123, 456);
  EXPECT_TRUE(ex_->relation.Insert(t).ok());
  EXPECT_EQ(ex_->relation.Insert(t).code(), StatusCode::kAlreadyExists);
}

TEST_F(FlexibleRelationTest, HeterogeneousTuplesCoexist) {
  AttrSet shapes;
  for (const Tuple& t : ex_->relation.rows()) {
    shapes = shapes.Union(t.attrs());
  }
  // All seven attributes appear across the instance even though no single
  // tuple carries them all.
  EXPECT_EQ(shapes.size(), 7u);
  for (const Tuple& t : ex_->relation.rows()) {
    EXPECT_LT(t.size(), 7u);
  }
}

TEST_F(FlexibleRelationTest, UpdateValueNoTypeChange) {
  auto delta = ex_->relation.Update(0, ex_->salary, Value::Int(7777));
  ASSERT_TRUE(delta.ok()) << delta.status();
  EXPECT_TRUE(delta.value().IsNoop());
  EXPECT_EQ(*ex_->relation.row(0).Get(ex_->salary), Value::Int(7777));
}

TEST_F(FlexibleRelationTest, UpdateJobtypeTriggersTypeChange) {
  // Row 0 is the secretary. Flipping jobtype to 'salesman' demands the
  // salesman attributes; supply them via `fill`.
  Tuple fill;
  fill.Set(ex_->products, Value::Int(3));
  fill.Set(ex_->sales_commission, Value::Int(11));
  auto delta = ex_->relation.Update(0, ex_->jobtype, Value::Str("salesman"),
                                    fill);
  ASSERT_TRUE(delta.ok()) << delta.status();
  EXPECT_EQ(delta.value().to_add,
            (AttrSet{ex_->products, ex_->sales_commission}));
  EXPECT_EQ(delta.value().to_remove,
            (AttrSet{ex_->typing_speed, ex_->foreign_languages}));
  const Tuple& updated = ex_->relation.row(0);
  EXPECT_FALSE(updated.Has(ex_->typing_speed));
  EXPECT_EQ(*updated.Get(ex_->sales_commission), Value::Int(11));
  EXPECT_TRUE(ex_->relation.SatisfiesDeclaredDeps());
}

TEST_F(FlexibleRelationTest, UpdateWithoutFillFailsPrecondition) {
  auto delta = ex_->relation.Update(0, ex_->jobtype, Value::Str("salesman"));
  EXPECT_EQ(delta.status().code(), StatusCode::kFailedPrecondition);
  // The relation is unchanged.
  EXPECT_TRUE(ex_->relation.row(0).Has(ex_->typing_speed));
}

TEST_F(FlexibleRelationTest, UpdateOutOfRange) {
  EXPECT_EQ(ex_->relation.Update(99, ex_->salary, Value::Int(1))
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST_F(FlexibleRelationTest, DerivedRelationSkipsChecks) {
  DependencySet deps;
  deps.AddAd(AttrDep{AttrSet{ex_->jobtype}, AttrSet{ex_->typing_speed}});
  FlexibleRelation derived = FlexibleRelation::Derived("d", deps);
  EXPECT_FALSE(derived.has_checker());
  derived.InsertUnchecked(ex_->MakeMistypedSalesman());  // no complaint
  EXPECT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived.deps().ads().size(), 1u);
}

TEST_F(FlexibleRelationTest, ActiveAttrs) {
  FlexibleRelation derived = FlexibleRelation::Derived("d", DependencySet());
  EXPECT_EQ(derived.ActiveAttrs(), AttrSet());
  derived.InsertUnchecked(ex_->MakeSalesman(1, 2));
  EXPECT_EQ(derived.ActiveAttrs(),
            (AttrSet{ex_->salary, ex_->jobtype, ex_->products,
                     ex_->sales_commission}));
}

TEST_F(FlexibleRelationTest, AbbreviatedDepsDerivedFromEads) {
  ASSERT_EQ(ex_->relation.deps().ads().size(), 1u);
  const AttrDep& ad = ex_->relation.deps().ads()[0];
  EXPECT_EQ(ad.lhs, AttrSet{ex_->jobtype});
  EXPECT_EQ(ad.rhs.size(), 5u);
}

}  // namespace
}  // namespace flexrel
