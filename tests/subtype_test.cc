#include "subtyping/ad_subtyping.h"

#include <gtest/gtest.h>

#include "workload/paper_examples.h"

namespace flexrel {
namespace {

class SubtypeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ex = MakeJobtypeExample();
    ASSERT_TRUE(ex.ok()) << ex.status();
    ex_ = std::move(ex).value();
    base_ = RecordType("employee");
    for (const auto& [attr, domain] : ex_->domains) {
      base_.SetField(attr, domain);
    }
    auto family = DeriveTypeFamily(base_, ex_->ead);
    ASSERT_TRUE(family.ok()) << family.status();
    family_ = std::move(family).value();
  }
  std::unique_ptr<JobtypeExample> ex_;
  RecordType base_;
  TypeFamily family_;
};

TEST_F(SubtypeTest, RecordRuleWidthAndDepth) {
  RecordType wide("wide"), narrow("narrow");
  narrow.SetField(0, Domain::Any(ValueType::kInt));
  wide.SetField(0, Domain::IntRange(1, 5).value());  // depth refinement
  wide.SetField(1, Domain::Any(ValueType::kString)); // width extension
  EXPECT_TRUE(IsRecordSubtype(wide, narrow));
  EXPECT_FALSE(IsRecordSubtype(narrow, wide));
  // Depth violation: field domain not contained.
  RecordType other("other");
  other.SetField(0, Domain::IntRange(0, 99).value());
  EXPECT_FALSE(IsRecordSubtype(other, wide.Project(AttrSet{0})));
  EXPECT_TRUE(IsRecordSubtype(wide, wide));  // reflexive
}

TEST_F(SubtypeTest, RecordTypeAccepts) {
  RecordType t("t");
  t.SetField(0, Domain::IntRange(1, 10).value());
  Tuple good;
  good.Set(0, Value::Int(5));
  EXPECT_TRUE(t.Accepts(good));
  Tuple out_of_domain;
  out_of_domain.Set(0, Value::Int(50));
  EXPECT_FALSE(t.Accepts(out_of_domain));
  Tuple wrong_shape;
  wrong_shape.Set(1, Value::Int(5));
  EXPECT_FALSE(t.Accepts(wrong_shape));
}

// ---- Example 3: the AD-induced type family ----------------------------------

TEST_F(SubtypeTest, FamilyMatchesExample3) {
  // Supertype: < salary, jobtype : {'secretary','software eng','salesman'} >.
  EXPECT_EQ(family_.supertype.attrs(),
            (AttrSet{ex_->salary, ex_->jobtype}));
  // Three subtypes, each adding its block and restricting dom(jobtype).
  ASSERT_EQ(family_.subtypes.size(), 3u);

  const RecordType& secretary = family_.subtypes[0];
  EXPECT_EQ(secretary.attrs(),
            (AttrSet{ex_->salary, ex_->jobtype, ex_->typing_speed,
                     ex_->foreign_languages}));
  const Domain* jd = secretary.FieldDomain(ex_->jobtype);
  ASSERT_NE(jd, nullptr);
  EXPECT_TRUE(jd->Contains(Value::Str("secretary")));
  EXPECT_FALSE(jd->Contains(Value::Str("salesman")));

  // Every subtype is a record subtype of the supertype (the rule is
  // *sufficient* here — that is the paper's starting point).
  for (const RecordType& sub : family_.subtypes) {
    EXPECT_TRUE(IsRecordSubtype(sub, family_.supertype)) << sub.name();
  }
}

TEST_F(SubtypeTest, SupertypeWithDeterminantIsSemanticsPreserving) {
  SupertypeVerdict v =
      CheckSupertype(family_.supertype, family_, ex_->catalog);
  EXPECT_TRUE(v.record_rule_ok);
  EXPECT_TRUE(v.semantics_preserving);
}

TEST_F(SubtypeTest, Example3LostDeterminantSupertype) {
  // The paper: "< ..., salary : float > (without attribute jobtype) is
  // therefore treated as a valid supertype … although the connection
  // between the determining attribute jobtype and the subtypes is
  // destroyed."
  RecordType salary_only("salary_only");
  salary_only.SetField(ex_->salary, Domain::Any(ValueType::kInt));
  SupertypeVerdict v = CheckSupertype(salary_only, family_, ex_->catalog);
  EXPECT_TRUE(v.record_rule_ok);        // the record rule accepts it …
  EXPECT_FALSE(v.semantics_preserving); // … the AD-aware check does not.
  EXPECT_NE(v.reason.find("jobtype"), std::string::npos);
}

TEST_F(SubtypeTest, NonSupertypeRejectedByBothNotions) {
  RecordType unrelated("unrelated");
  unrelated.SetField(ex_->typing_speed, Domain::Any(ValueType::kInt));
  SupertypeVerdict v = CheckSupertype(unrelated, family_, ex_->catalog);
  EXPECT_FALSE(v.record_rule_ok);
  EXPECT_FALSE(v.semantics_preserving);
}

TEST_F(SubtypeTest, DeriveFamilyValidatesInputs) {
  RecordType missing_determinant("m");
  missing_determinant.SetField(ex_->salary, Domain::Any(ValueType::kInt));
  EXPECT_FALSE(DeriveTypeFamily(missing_determinant, ex_->ead).ok());
}

TEST_F(SubtypeTest, SubtypeMatrixAndHasse) {
  std::vector<RecordType> types;
  types.push_back(family_.supertype);           // 0
  for (const RecordType& s : family_.subtypes)  // 1..3
    types.push_back(s);
  // Also the problematic salary-only top. All four family members are its
  // record subtypes.
  RecordType salary_only("salary_only");
  salary_only.SetField(ex_->salary, Domain::Any(ValueType::kInt));
  types.push_back(salary_only);                 // 4

  auto m = SubtypeMatrix(types);
  for (size_t i = 0; i < types.size(); ++i) {
    EXPECT_TRUE(m[i][i]);
    EXPECT_TRUE(m[i][4]) << "everything is a subtype of salary-only";
  }
  for (size_t i = 1; i <= 3; ++i) {
    EXPECT_TRUE(m[i][0]);
    EXPECT_FALSE(m[0][i]);
  }

  auto edges = HasseEdges(types);
  // Immediate edges: each subtype -> supertype, supertype -> salary_only.
  // Subtype -> salary_only edges are transitive, hence absent.
  std::set<std::pair<size_t, size_t>> edge_set(edges.begin(), edges.end());
  EXPECT_TRUE(edge_set.count({1, 0}));
  EXPECT_TRUE(edge_set.count({2, 0}));
  EXPECT_TRUE(edge_set.count({3, 0}));
  EXPECT_TRUE(edge_set.count({0, 4}));
  EXPECT_FALSE(edge_set.count({1, 4}));
  EXPECT_EQ(edge_set.size(), 4u);
}

TEST_F(SubtypeTest, ProjectionAlwaysYieldsRecordSupertype) {
  // Scholl/Schek's observation the paper contrasts against: *any* projection
  // of a type is a supertype under the record rule — even one that breaks
  // the dependency.
  const RecordType& sub = family_.subtypes[1];
  for (AttrId drop : sub.attrs()) {
    RecordType projected = sub.Project(sub.attrs().Minus(AttrSet::Of(drop)));
    EXPECT_TRUE(IsRecordSubtype(sub, projected));
  }
}

}  // namespace
}  // namespace flexrel
