#include "core/type_check.h"

#include <gtest/gtest.h>

#include "workload/paper_examples.h"

namespace flexrel {
namespace {

class TypeCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ex = MakeJobtypeExample();
    ASSERT_TRUE(ex.ok()) << ex.status();
    ex_ = std::move(ex).value();
    checker_ = std::make_unique<TypeChecker>(
        &ex_->catalog, ex_->scheme, std::vector<ExplicitAD>{ex_->ead},
        ex_->domains);
  }
  std::unique_ptr<JobtypeExample> ex_;
  std::unique_ptr<TypeChecker> checker_;
};

TEST_F(TypeCheckTest, AcceptsAllThreeVariants) {
  EXPECT_TRUE(checker_->Check(ex_->MakeSecretary(4000, 280)).ok());
  EXPECT_TRUE(checker_->Check(ex_->MakeEngineer(7000, 4)).ok());
  EXPECT_TRUE(checker_->Check(ex_->MakeSalesman(5000, 15)).ok());
}

TEST_F(TypeCheckTest, SchemeAloneCannotCatchTheMistypedSalesman) {
  // This is the paper's Section-3.1 argument verbatim: the attribute
  // combination is admissible, so the shape check passes …
  Tuple bad = ex_->MakeMistypedSalesman();
  EXPECT_TRUE(checker_->CheckShape(bad).ok());
  // … and only the EAD-based dependency check rejects it.
  EXPECT_EQ(checker_->CheckDependencies(bad).code(),
            StatusCode::kConstraintViolation);
  EXPECT_FALSE(checker_->Check(bad).ok());
}

TEST_F(TypeCheckTest, ShapeViolationsAreCaught) {
  // Both C-and-D style violation: typing-speed without foreign-languages
  // breaks the secretary block's all-or-nothing grouping.
  Tuple t;
  t.Set(ex_->salary, Value::Int(1));
  t.Set(ex_->jobtype, Value::Str("secretary"));
  t.Set(ex_->typing_speed, Value::Int(100));
  EXPECT_EQ(checker_->CheckShape(t).code(), StatusCode::kConstraintViolation);
}

TEST_F(TypeCheckTest, DomainViolationsAreCaught) {
  Tuple t = ex_->MakeSecretary(1000, 100);
  t.Set(ex_->jobtype, Value::Str("astronaut"));  // outside dom(jobtype)
  EXPECT_EQ(checker_->CheckDomains(t).code(),
            StatusCode::kConstraintViolation);
  // Type errors are domain errors too.
  Tuple t2 = ex_->MakeSecretary(1000, 100);
  t2.Set(ex_->salary, Value::Str("much"));
  EXPECT_FALSE(checker_->CheckDomains(t2).ok());
}

TEST_F(TypeCheckTest, AttributesWithoutDomainsAreUnconstrained) {
  TypeChecker lax(&ex_->catalog, ex_->scheme, {ex_->ead}, {});
  Tuple t = ex_->MakeSecretary(1, 1);
  t.Set(ex_->salary, Value::Str("anything"));
  EXPECT_TRUE(lax.CheckDomains(t).ok());
}

TEST_F(TypeCheckTest, DeltaForComputesTypeChange) {
  // A secretary tuple whose jobtype was flipped to 'salesman' (footnote 3):
  // the delta must demand the salesman block and drop the secretary block.
  Tuple t = ex_->MakeSecretary(5000, 300);
  t.Set(ex_->jobtype, Value::Str("salesman"));
  TypeChecker::TypeDelta delta = checker_->DeltaFor(t);
  EXPECT_EQ(delta.to_add, (AttrSet{ex_->products, ex_->sales_commission}));
  EXPECT_EQ(delta.to_remove,
            (AttrSet{ex_->typing_speed, ex_->foreign_languages}));
  EXPECT_FALSE(delta.IsNoop());
}

TEST_F(TypeCheckTest, DeltaForWellTypedTupleIsNoop) {
  EXPECT_TRUE(checker_->DeltaFor(ex_->MakeSalesman(1, 2)).IsNoop());
}

TEST_F(TypeCheckTest, DomainForLookup) {
  const Domain* d = checker_->DomainFor(ex_->jobtype);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->is_enumerated());
  EXPECT_EQ(checker_->DomainFor(12345), nullptr);
}

TEST_F(TypeCheckTest, SalaryUpdateCausesNoTypeChange) {
  // Footnote 3's contrast: updating salary has no type consequences.
  Tuple t = ex_->MakeSecretary(5000, 300);
  t.Set(ex_->salary, Value::Int(9999));
  EXPECT_TRUE(checker_->DeltaFor(t).IsNoop());
  EXPECT_TRUE(checker_->Check(t).ok());
}

}  // namespace
}  // namespace flexrel
