#include "optimizer/guard_analysis.h"

#include <gtest/gtest.h>

#include "algebra/evaluate.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace flexrel {
namespace {

class GuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ex = MakeJobtypeExample();
    ASSERT_TRUE(ex.ok()) << ex.status();
    ex_ = std::move(ex).value();
    eads_ = {ex_->ead};
  }
  std::unique_ptr<JobtypeExample> ex_;
  std::vector<ExplicitAD> eads_;
};

TEST_F(GuardTest, ExtractConstraintsFromConjunction) {
  ExprPtr f = Expr::And(
      Expr::Compare(ex_->salary, CmpOp::kGt, Value::Int(5000)),
      Expr::Eq(ex_->jobtype, Value::Str("secretary")));
  ConstraintMap m = ExtractConstraints(f);
  ASSERT_EQ(m.size(), 1u);  // inequality on salary constrains nothing
  ASSERT_TRUE(m.count(ex_->jobtype));
  EXPECT_TRUE(m[ex_->jobtype].Permits(Value::Str("secretary")));
  EXPECT_FALSE(m[ex_->jobtype].Permits(Value::Str("salesman")));
}

TEST_F(GuardTest, ExtractConstraintsThroughOrAndIn) {
  ExprPtr f = Expr::Or(Expr::Eq(ex_->jobtype, Value::Str("secretary")),
                       Expr::In(ex_->jobtype, {Value::Str("salesman")}));
  ConstraintMap m = ExtractConstraints(f);
  ASSERT_TRUE(m.count(ex_->jobtype));
  EXPECT_TRUE(m[ex_->jobtype].Permits(Value::Str("secretary")));
  EXPECT_TRUE(m[ex_->jobtype].Permits(Value::Str("salesman")));
  EXPECT_FALSE(m[ex_->jobtype].Permits(Value::Str("software engineer")));

  // One branch unconstrained: the attribute drops out.
  ExprPtr g = Expr::Or(Expr::Eq(ex_->jobtype, Value::Str("secretary")),
                       Expr::Compare(ex_->salary, CmpOp::kGt, Value::Int(0)));
  EXPECT_TRUE(ExtractConstraints(g).empty());
}

TEST_F(GuardTest, ContradictoryConstraintsYieldEmptySet) {
  ExprPtr f = Expr::And(Expr::Eq(ex_->jobtype, Value::Str("secretary")),
                        Expr::Eq(ex_->jobtype, Value::Str("salesman")));
  ConstraintMap m = ExtractConstraints(f);
  ASSERT_TRUE(m.count(ex_->jobtype));
  EXPECT_TRUE(m[ex_->jobtype].allowed.empty());
}

TEST_F(GuardTest, AnalyzeVariantsConsistency) {
  ConstraintMap m;
  m[ex_->jobtype] = ValueConstraint{{Value::Str("secretary")}};
  VariantAnalysis a = AnalyzeVariants(m, ex_->ead);
  ASSERT_EQ(a.consistent_variants.size(), 1u);
  EXPECT_EQ(a.consistent_variants[0], 0u);
  // The lone allowed value is covered by variant 0, so "no variant" is
  // impossible.
  EXPECT_FALSE(a.unmatched_possible);

  // Unconstrained determinant: everything is possible.
  VariantAnalysis b = AnalyzeVariants({}, ex_->ead);
  EXPECT_EQ(b.consistent_variants.size(), 3u);
  EXPECT_TRUE(b.unmatched_possible);

  // A value outside every variant: nothing consistent, mismatch certain.
  ConstraintMap m2;
  m2[ex_->jobtype] = ValueConstraint{{Value::Str("janitor")}};
  VariantAnalysis c = AnalyzeVariants(m2, ex_->ead);
  EXPECT_TRUE(c.consistent_variants.empty());
  EXPECT_TRUE(c.unmatched_possible);
}

TEST_F(GuardTest, AttrPresenceVerdicts) {
  ConstraintMap secretary;
  secretary[ex_->jobtype] = ValueConstraint{{Value::Str("secretary")}};
  EXPECT_EQ(AttrPresence(ex_->typing_speed, secretary, eads_),
            Presence::kAlways);
  EXPECT_EQ(AttrPresence(ex_->sales_commission, secretary, eads_),
            Presence::kNever);
  // products appears in two variants; under {engineer, salesman} it is
  // always present, under no constraint it is maybe.
  ConstraintMap two;
  two[ex_->jobtype] = ValueConstraint{
      {Value::Str("software engineer"), Value::Str("salesman")}};
  EXPECT_EQ(AttrPresence(ex_->products, two, eads_), Presence::kAlways);
  EXPECT_EQ(AttrPresence(ex_->products, {}, eads_), Presence::kMaybe);
  // The determinant itself, when constrained, is present.
  EXPECT_EQ(AttrPresence(ex_->jobtype, secretary, eads_), Presence::kAlways);
  // An attribute no EAD governs.
  EXPECT_EQ(AttrPresence(ex_->salary, {}, eads_), Presence::kMaybe);
}

TEST_F(GuardTest, Example4GuardIsEliminated) {
  // "salary > 5000 AND jobtype = 'secretary'" followed by a type guard on
  // typing-speed: the guard is redundant.
  ExprPtr f = Expr::And(
      Expr::And(Expr::Compare(ex_->salary, CmpOp::kGt, Value::Int(5000)),
                Expr::Eq(ex_->jobtype, Value::Str("secretary"))),
      Expr::Exists(ex_->typing_speed));
  GuardRewrite r = EliminateRedundantGuards(f, eads_);
  EXPECT_EQ(r.guards_eliminated, 1u);
  EXPECT_EQ(r.guards_falsified, 0u);
  // The guard disappeared from the rewritten formula.
  EXPECT_EQ(r.formula->ToString(ex_->catalog).find("EXISTS"),
            std::string::npos);
}

TEST_F(GuardTest, ImpossibleGuardFalsified) {
  ExprPtr f = Expr::And(Expr::Eq(ex_->jobtype, Value::Str("secretary")),
                        Expr::Exists(ex_->sales_commission));
  GuardRewrite r = EliminateRedundantGuards(f, eads_);
  EXPECT_EQ(r.guards_falsified, 1u);
  // The whole conjunction collapses to false.
  EXPECT_EQ(r.formula->kind(), ExprKind::kConst);
  EXPECT_EQ(r.formula->const_value(), TriBool::kFalse);
}

TEST_F(GuardTest, UnconstrainedGuardSurvives) {
  ExprPtr f = Expr::And(Expr::Compare(ex_->salary, CmpOp::kGt, Value::Int(0)),
                        Expr::Exists(ex_->typing_speed));
  GuardRewrite r = EliminateRedundantGuards(f, eads_);
  EXPECT_EQ(r.guards_eliminated, 0u);
  EXPECT_EQ(r.guards_falsified, 0u);
  EXPECT_NE(r.formula->ToString(ex_->catalog).find("EXISTS"),
            std::string::npos);
}

TEST_F(GuardTest, SimplifyExprFoldsConstants) {
  ExprPtr t = Expr::Const(TriBool::kTrue);
  ExprPtr f = Expr::Const(TriBool::kFalse);
  ExprPtr atom = Expr::Eq(ex_->jobtype, Value::Str("secretary"));
  EXPECT_EQ(SimplifyExpr(Expr::And(t, atom)).get(), atom.get());
  EXPECT_EQ(SimplifyExpr(Expr::And(f, atom))->const_value(), TriBool::kFalse);
  EXPECT_EQ(SimplifyExpr(Expr::Or(t, atom))->const_value(), TriBool::kTrue);
  EXPECT_EQ(SimplifyExpr(Expr::Or(f, atom)).get(), atom.get());
  EXPECT_EQ(SimplifyExpr(Expr::Not(t))->const_value(), TriBool::kFalse);
  EXPECT_EQ(SimplifyExpr(Expr::Not(Expr::Not(atom)))->kind(), ExprKind::kNot);
}

// The rewrite must preserve query results exactly on EAD-valid instances.
class GuardEquivalenceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GuardEquivalenceSweep, RewrittenFormulaSelectsTheSameTuples) {
  EmployeeConfig config;
  config.num_variants = 4;
  config.attrs_per_variant = 2;
  config.rows = 80;
  config.seed = GetParam();
  auto w = MakeEmployeeWorkload(config);
  ASSERT_TRUE(w.ok());
  Rng rng(GetParam() * 31);

  for (int trial = 0; trial < 10; ++trial) {
    // Random formula: a jobtype constraint AND/OR a guard on a random
    // variant attribute, plus a numeric conjunct.
    const ExplicitAD& ead = w.value()->eads[0];
    size_t variant = rng.Index(ead.variants().size());
    AttrSet then = ead.variants()[variant].then;
    AttrId guarded = *then.begin();
    ExprPtr jt = Expr::Eq(w.value()->jobtype_attr,
                          w.value()->jobtype_values[rng.Index(
                              w.value()->jobtype_values.size())]);
    ExprPtr guard = Expr::Exists(guarded);
    ExprPtr num = Expr::Compare(w.value()->id_attr, CmpOp::kLt,
                                Value::Int(rng.UniformInt(0, 80)));
    ExprPtr f = rng.Bernoulli(0.5)
                    ? Expr::And(Expr::And(jt, num), guard)
                    : Expr::And(jt, Expr::Or(guard, num));

    GuardRewrite r = EliminateRedundantGuards(f, w.value()->eads);
    auto base = Evaluate(Plan::Select(Plan::Scan(&w.value()->relation), f));
    auto rewritten =
        Evaluate(Plan::Select(Plan::Scan(&w.value()->relation), r.formula));
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(rewritten.ok());
    ASSERT_EQ(base.value().size(), rewritten.value().size())
        << "rewrite changed the result (seed " << GetParam() << ", trial "
        << trial << "): " << f->ToString(w.value()->catalog) << " vs "
        << r.formula->ToString(w.value()->catalog);
    // Same tuples, not just same count.
    std::vector<Tuple> a = base.value().rows();
    std::vector<Tuple> b = rewritten.value().rows();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuardEquivalenceSweep,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace flexrel
