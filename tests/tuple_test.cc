#include "relational/tuple.h"

#include <gtest/gtest.h>

namespace flexrel {
namespace {

TEST(TupleTest, SetGetErase) {
  Tuple t;
  t.Set(2, Value::Int(5));
  t.Set(0, Value::Str("x"));
  ASSERT_NE(t.Get(2), nullptr);
  EXPECT_EQ(*t.Get(2), Value::Int(5));
  EXPECT_EQ(t.Get(1), nullptr);
  EXPECT_TRUE(t.Has(0));
  t.Erase(0);
  EXPECT_FALSE(t.Has(0));
  t.Erase(99);  // no-op
  EXPECT_EQ(t.size(), 1u);
}

TEST(TupleTest, SetOverwrites) {
  Tuple t;
  t.Set(1, Value::Int(1));
  t.Set(1, Value::Int(2));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.Get(1), Value::Int(2));
}

TEST(TupleTest, FieldsSortedByAttr) {
  Tuple t;
  t.Set(9, Value::Int(9));
  t.Set(1, Value::Int(1));
  t.Set(5, Value::Int(5));
  std::vector<AttrId> order;
  for (const auto& [attr, value] : t.fields()) order.push_back(attr);
  EXPECT_EQ(order, (std::vector<AttrId>{1, 5, 9}));
}

TEST(TupleTest, AttrsIsTheAttributeSet) {
  Tuple t = Tuple::FromPairs({{3, Value::Int(0)}, {1, Value::Int(0)}});
  EXPECT_EQ(t.attrs(), (AttrSet{1, 3}));
  EXPECT_EQ(Tuple().attrs(), AttrSet());
}

TEST(TupleTest, FromPairsLastWriteWins) {
  Tuple t = Tuple::FromPairs({{1, Value::Int(1)}, {1, Value::Int(7)}});
  EXPECT_EQ(*t.Get(1), Value::Int(7));
}

TEST(TupleTest, ProjectKeepsIntersection) {
  Tuple t = Tuple::FromPairs(
      {{1, Value::Int(1)}, {2, Value::Int(2)}, {3, Value::Int(3)}});
  Tuple p = t.Project(AttrSet{2, 3, 9});
  EXPECT_EQ(p.attrs(), (AttrSet{2, 3}));
  EXPECT_EQ(*p.Get(2), Value::Int(2));
}

TEST(TupleTest, DefinedOn) {
  Tuple t = Tuple::FromPairs({{1, Value::Int(1)}, {2, Value::Int(2)}});
  EXPECT_TRUE(t.DefinedOn(AttrSet{1}));
  EXPECT_TRUE(t.DefinedOn(AttrSet{1, 2}));
  EXPECT_TRUE(t.DefinedOn(AttrSet()));
  EXPECT_FALSE(t.DefinedOn(AttrSet{1, 3}));
}

TEST(TupleTest, AgreesOn) {
  Tuple a = Tuple::FromPairs({{1, Value::Int(1)}, {2, Value::Int(2)}});
  Tuple b = Tuple::FromPairs({{1, Value::Int(1)}, {2, Value::Int(9)}});
  EXPECT_TRUE(a.AgreesOn(b, AttrSet{1}));
  EXPECT_FALSE(a.AgreesOn(b, AttrSet{1, 2}));
  // Missing attribute on either side -> no agreement.
  EXPECT_FALSE(a.AgreesOn(b, AttrSet{3}));
  EXPECT_TRUE(a.AgreesOn(b, AttrSet()));
}

TEST(TupleTest, EqualityAndOrdering) {
  Tuple a = Tuple::FromPairs({{1, Value::Int(1)}});
  Tuple b = Tuple::FromPairs({{1, Value::Int(1)}});
  Tuple c = Tuple::FromPairs({{1, Value::Int(2)}});
  Tuple d = Tuple::FromPairs({{2, Value::Int(1)}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a < c);
  EXPECT_TRUE(a < d);  // attr 1 < attr 2 lexicographically
}

TEST(TupleTest, HashConsistency) {
  Tuple a = Tuple::FromPairs({{1, Value::Int(1)}, {2, Value::Str("x")}});
  Tuple b = Tuple::FromPairs({{2, Value::Str("x")}, {1, Value::Int(1)}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(TupleTest, ToStringUsesNames) {
  AttrCatalog catalog;
  AttrId salary = catalog.Intern("salary");
  AttrId job = catalog.Intern("jobtype");
  Tuple t;
  t.Set(job, Value::Str("salesman"));
  t.Set(salary, Value::Int(5000));
  EXPECT_EQ(t.ToString(catalog), "<salary: 5000, jobtype: 'salesman'>");
}

}  // namespace
}  // namespace flexrel
