#include "relational/expression.h"

#include <gtest/gtest.h>

namespace flexrel {
namespace {

class ExpressionTest : public ::testing::Test {
 protected:
  ExpressionTest() {
    salary_ = catalog_.Intern("salary");
    jobtype_ = catalog_.Intern("jobtype");
    speed_ = catalog_.Intern("typing-speed");
    secretary_ = Tuple::FromPairs({{salary_, Value::Int(6000)},
                                   {jobtype_, Value::Str("secretary")},
                                   {speed_, Value::Int(300)}});
    salesman_ = Tuple::FromPairs(
        {{salary_, Value::Int(4000)}, {jobtype_, Value::Str("salesman")}});
  }
  AttrCatalog catalog_;
  AttrId salary_, jobtype_, speed_;
  Tuple secretary_, salesman_;
};

TEST_F(ExpressionTest, TriBoolTables) {
  using enum TriBool;
  EXPECT_EQ(TriAnd(kTrue, kTrue), kTrue);
  EXPECT_EQ(TriAnd(kTrue, kUnknown), kUnknown);
  EXPECT_EQ(TriAnd(kFalse, kUnknown), kFalse);
  EXPECT_EQ(TriOr(kFalse, kFalse), kFalse);
  EXPECT_EQ(TriOr(kUnknown, kTrue), kTrue);
  EXPECT_EQ(TriOr(kUnknown, kFalse), kUnknown);
  EXPECT_EQ(TriNot(kTrue), kFalse);
  EXPECT_EQ(TriNot(kUnknown), kUnknown);
}

TEST_F(ExpressionTest, ComparisonOperators) {
  EXPECT_EQ(Expr::Compare(salary_, CmpOp::kGt, Value::Int(5000))->Eval(secretary_),
            TriBool::kTrue);
  EXPECT_EQ(Expr::Compare(salary_, CmpOp::kLt, Value::Int(5000))->Eval(secretary_),
            TriBool::kFalse);
  EXPECT_EQ(Expr::Compare(salary_, CmpOp::kGe, Value::Int(6000))->Eval(secretary_),
            TriBool::kTrue);
  EXPECT_EQ(Expr::Compare(salary_, CmpOp::kLe, Value::Int(5999))->Eval(secretary_),
            TriBool::kFalse);
  EXPECT_EQ(Expr::Compare(salary_, CmpOp::kNe, Value::Int(1))->Eval(secretary_),
            TriBool::kTrue);
  EXPECT_EQ(Expr::Eq(jobtype_, Value::Str("secretary"))->Eval(secretary_),
            TriBool::kTrue);
}

TEST_F(ExpressionTest, MissingAttributeYieldsUnknown) {
  ExprPtr e = Expr::Compare(speed_, CmpOp::kGt, Value::Int(100));
  EXPECT_EQ(e->Eval(salesman_), TriBool::kUnknown);
  EXPECT_FALSE(e->Accepts(salesman_));
  EXPECT_TRUE(e->Accepts(secretary_));
}

TEST_F(ExpressionTest, TypeMismatchIsFalseNotUnknown) {
  // salary is int; comparing against a string literal can never hold.
  EXPECT_EQ(Expr::Eq(salary_, Value::Str("6000"))->Eval(secretary_),
            TriBool::kFalse);
}

TEST_F(ExpressionTest, InSet) {
  ExprPtr e = Expr::In(jobtype_,
                       {Value::Str("secretary"), Value::Str("salesman")});
  EXPECT_EQ(e->Eval(secretary_), TriBool::kTrue);
  EXPECT_EQ(e->Eval(salesman_), TriBool::kTrue);
  Tuple engineer = Tuple::FromPairs(
      {{jobtype_, Value::Str("software engineer")}});
  EXPECT_EQ(e->Eval(engineer), TriBool::kFalse);
  // Missing attribute.
  EXPECT_EQ(e->Eval(Tuple()), TriBool::kUnknown);
}

TEST_F(ExpressionTest, ExistsIsTheTypeGuard) {
  EXPECT_EQ(Expr::Exists(speed_)->Eval(secretary_), TriBool::kTrue);
  EXPECT_EQ(Expr::Exists(speed_)->Eval(salesman_), TriBool::kFalse);
  // A null value counts as absent (decomposition baselines).
  Tuple padded = Tuple::FromPairs({{speed_, Value::Null()}});
  EXPECT_EQ(Expr::Exists(speed_)->Eval(padded), TriBool::kFalse);
}

TEST_F(ExpressionTest, ConnectivesPropagateKleene) {
  ExprPtr missing = Expr::Compare(speed_, CmpOp::kGt, Value::Int(0));
  ExprPtr true_on_salesman = Expr::Eq(jobtype_, Value::Str("salesman"));
  EXPECT_EQ(Expr::And(missing, true_on_salesman)->Eval(salesman_),
            TriBool::kUnknown);
  EXPECT_EQ(Expr::Or(missing, true_on_salesman)->Eval(salesman_),
            TriBool::kTrue);
  EXPECT_EQ(Expr::Not(missing)->Eval(salesman_), TriBool::kUnknown);
  EXPECT_EQ(Expr::And(missing, Expr::Const(TriBool::kFalse))->Eval(salesman_),
            TriBool::kFalse);
}

TEST_F(ExpressionTest, AndAll) {
  EXPECT_EQ(Expr::AndAll({})->Eval(salesman_), TriBool::kTrue);
  ExprPtr e = Expr::AndAll({Expr::Eq(jobtype_, Value::Str("salesman")),
                            Expr::Compare(salary_, CmpOp::kLt, Value::Int(5000))});
  EXPECT_TRUE(e->Accepts(salesman_));
  EXPECT_FALSE(e->Accepts(secretary_));
}

TEST_F(ExpressionTest, ReferencedVsValueAttrs) {
  ExprPtr e = Expr::And(Expr::Eq(jobtype_, Value::Str("secretary")),
                        Expr::Exists(speed_));
  EXPECT_EQ(e->ReferencedAttrs(), (AttrSet{jobtype_, speed_}));
  EXPECT_EQ(e->ValueAttrs(), AttrSet{jobtype_});
}

TEST_F(ExpressionTest, ToStringRendersFormula) {
  ExprPtr e = Expr::And(Expr::Compare(salary_, CmpOp::kGt, Value::Int(5000)),
                        Expr::Eq(jobtype_, Value::Str("secretary")));
  EXPECT_EQ(e->ToString(catalog_),
            "(salary > 5000 AND jobtype = 'secretary')");
  EXPECT_EQ(Expr::Exists(speed_)->ToString(catalog_), "EXISTS(typing-speed)");
}

}  // namespace
}  // namespace flexrel
