#include "core/discovery.h"

#include <gtest/gtest.h>

#include "core/closure.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace flexrel {
namespace {

TEST(DiscoveryTest, FindsTheJobtypeAdInGeneratedData) {
  auto ex = MakeJobtypeExample();
  ASSERT_TRUE(ex.ok());
  const JobtypeExample& world = *ex.value();
  AttrSet universe;
  for (size_t i = 0; i < world.catalog.size(); ++i) {
    universe.Insert(static_cast<AttrId>(i));
  }
  DiscoveryOptions options;
  options.max_lhs_size = 1;
  auto ads = DiscoverAttrDeps(world.relation.rows(), universe, options);
  // The jobtype determinant must be (re)discovered with the full
  // determined set.
  bool found = false;
  for (const AttrDep& ad : ads) {
    if (ad.lhs == AttrSet::Of(world.jobtype)) {
      found = true;
      EXPECT_TRUE(world.ead.determined().IsSubsetOf(ad.rhs));
    }
  }
  EXPECT_TRUE(found);
}

TEST(DiscoveryTest, LargeEmployeeInstanceRediscoversTheEad) {
  EmployeeConfig config;
  config.num_variants = 4;
  config.attrs_per_variant = 2;
  config.rows = 300;
  config.seed = 8;
  auto w = MakeEmployeeWorkload(config);
  ASSERT_TRUE(w.ok());
  AttrSet universe;
  for (size_t i = 0; i < w.value()->catalog.size(); ++i) {
    universe.Insert(static_cast<AttrId>(i));
  }
  DiscoveryOptions options;
  options.max_lhs_size = 1;
  auto ads = DiscoverAttrDeps(w.value()->relation.rows(), universe, options);
  bool found = false;
  for (const AttrDep& ad : ads) {
    if (ad.lhs == AttrSet::Of(w.value()->jobtype_attr)) {
      found = true;
      EXPECT_TRUE(w.value()->eads[0].determined().IsSubsetOf(ad.rhs));
    }
  }
  EXPECT_TRUE(found);
}

TEST(DiscoveryTest, FdsInHomogeneousData) {
  // id -> everything; value columns with a functional pattern.
  std::vector<Tuple> rows;
  for (int i = 0; i < 20; ++i) {
    Tuple t;
    t.Set(0, Value::Int(i));          // key
    t.Set(1, Value::Int(i % 4));      // group
    t.Set(2, Value::Int((i % 4) * 10));  // functionally determined by group
    rows.push_back(std::move(t));
  }
  AttrSet universe{0, 1, 2};
  auto fds = DiscoverFuncDeps(rows, universe, {});
  DependencySet found;
  for (const FuncDep& fd : fds) found.AddFd(fd);
  EXPECT_TRUE(Implies(found, FuncDep{AttrSet{0}, AttrSet{1, 2}}));
  EXPECT_TRUE(Implies(found, FuncDep{AttrSet{1}, AttrSet{2}}));
  EXPECT_TRUE(Implies(found, FuncDep{AttrSet{2}, AttrSet{1}}));
  // No spurious reverse dependency: group does not determine the key.
  EXPECT_FALSE(Implies(found, FuncDep{AttrSet{1}, AttrSet{0}}));
}

TEST(DiscoveryTest, SoundnessEveryReportedDependencyHolds) {
  Rng rng(99);
  // Random heterogeneous instance.
  std::vector<Tuple> rows;
  for (int i = 0; i < 60; ++i) {
    Tuple t;
    for (AttrId a = 0; a < 5; ++a) {
      if (rng.Bernoulli(0.6)) t.Set(a, Value::Int(rng.UniformInt(0, 2)));
    }
    rows.push_back(std::move(t));
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

  AttrSet universe{0, 1, 2, 3, 4};
  DiscoveryOptions options;
  options.max_lhs_size = 2;
  options.minimal_only = false;
  for (const AttrDep& ad : DiscoverAttrDeps(rows, universe, options)) {
    EXPECT_TRUE(SatisfiesAttrDep(rows, ad))
        << "discovered AD does not hold: " << ad.lhs.ToString() << " -> "
        << ad.rhs.ToString();
  }
  for (const FuncDep& fd : DiscoverFuncDeps(rows, universe, options)) {
    EXPECT_TRUE(SatisfiesFuncDep(rows, fd))
        << "discovered FD does not hold";
  }
}

TEST(DiscoveryTest, CompletenessMaximalRhsPerLhs) {
  // Brute-force cross-check on a small instance: for every LHS of size <= 2
  // and every single attribute, discovery's RHS contains the attribute iff
  // the dependency holds.
  Rng rng(7);
  std::vector<Tuple> rows;
  for (int i = 0; i < 25; ++i) {
    Tuple t;
    for (AttrId a = 0; a < 4; ++a) {
      if (rng.Bernoulli(0.7)) t.Set(a, Value::Int(rng.UniformInt(0, 1)));
    }
    rows.push_back(std::move(t));
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

  AttrSet universe{0, 1, 2, 3};
  DiscoveryOptions options;
  options.max_lhs_size = 2;
  options.minimal_only = false;
  auto ads = DiscoverAttrDeps(rows, universe, options);
  auto rhs_of = [&](const AttrSet& lhs) {
    for (const AttrDep& ad : ads) {
      if (ad.lhs == lhs) return ad.rhs;
    }
    return AttrSet();
  };
  for (AttrId x = 0; x < 4; ++x) {
    for (AttrId y = 0; y < 4; ++y) {
      if (x == y) continue;
      bool holds = SatisfiesAttrDep(rows, AttrDep{AttrSet{x}, AttrSet{y}});
      EXPECT_EQ(rhs_of(AttrSet{x}).Contains(y), holds)
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(DiscoveryTest, MinimalOnlySuppressesImpliedDependencies) {
  // With a constant attribute, every LHS determines it; minimal_only keeps
  // the generator (the empty... smallest LHS) and drops the rest.
  std::vector<Tuple> rows;
  for (int i = 0; i < 10; ++i) {
    Tuple t;
    t.Set(0, Value::Int(i));
    t.Set(1, Value::Int(42));  // constant => present everywhere
    rows.push_back(std::move(t));
  }
  AttrSet universe{0, 1};
  DiscoveryOptions all;
  all.minimal_only = false;
  all.max_lhs_size = 2;
  DiscoveryOptions minimal;
  minimal.minimal_only = true;
  minimal.max_lhs_size = 2;
  auto every = DiscoverFuncDeps(rows, universe, all);
  auto reduced = DiscoverFuncDeps(rows, universe, minimal);
  EXPECT_LE(reduced.size(), every.size());
  // The reduced set still implies everything the full set reports.
  DependencySet base;
  for (const FuncDep& fd : reduced) base.AddFd(fd);
  for (const FuncDep& fd : every) {
    EXPECT_TRUE(Implies(base, fd)) << "lost dependency after reduction";
  }
}

TEST(DiscoveryTest, BundledDiscovery) {
  auto ex = MakeJobtypeExample();
  ASSERT_TRUE(ex.ok());
  AttrSet universe;
  for (size_t i = 0; i < ex.value()->catalog.size(); ++i) {
    universe.Insert(static_cast<AttrId>(i));
  }
  DependencySet deps =
      DiscoverDependencies(ex.value()->relation.rows(), universe, {});
  EXPECT_FALSE(deps.empty());
  EXPECT_TRUE(deps.SatisfiedBy(ex.value()->relation.rows()));
}

}  // namespace
}  // namespace flexrel
