#!/usr/bin/env python3
"""CI perf smoke: the engine paths must still beat their oracles.

Runs bench_pli's mutate-then-query sweep and bench_join_prune's pair join
at reduced sizes, writes the raw google-benchmark JSON next to the results
(uploaded as a workflow artifact beside the checked-in BENCH_*.json), and
hard-fails on any inversion:

  * incremental (adaptive) mutate-then-query slower than the
    rebuild-after-invalidate oracle at any swept mutation ratio;
  * the batched-adaptive flush slower than the pinned per-row reference at
    the 64-mutation burst size (the regime batching exists for);
  * the CSR-arena cluster storage losing to the vector-of-vectors
    reference, on either the discovery-shaped level sweep or the
    64-mutation batched flush (PliCacheOptions::arena_storage);
  * the PLI-backed pair join slower than the naive nested-loop join;
  * hybrid (sample-then-validate) discovery losing to exact level-wise
    validation on the wide 64-attribute planted-FD instance — the shape
    hybrid exists for (engine/hybrid_discovery.h);
  * the lock-free COW snapshot read path (PliCacheOptions::cow_reads)
    losing to the locked in-place baseline under one concurrent writer,
    at any point of the 1/4/8-reader sweep (the 0- and 4-writer cells run
    for the artifact record).

Each run also enables the engine telemetry plane (--metrics_json=PATH, see
src/telemetry/) and writes the per-binary metrics dump into the out dir
(uploaded with the rest of the artifacts). The dump is then validated for
counter inversions — identities the instrumentation guarantees by
construction and work-ratio bounds the engine exists to provide:

  * engine.pli_cache.hits + misses == lookups (every Get takes one arm);
  * the per-arm flush counters (flush.per_row + flush.batched +
    flush.dropped) sum to engine.pli_cache.flushes, and flushes > 0 —
    the sweep actually exercised the adaptive policy;
  * eval.join.hash_probes stays >= 100x below
    eval.join.hash_pair_candidates (the naive pair count for the same
    joins): the hashed path must probe orders fewer pairs than |L|x|R|;
  * in the COW read-storm dump (cow_reads=true only): every flush swapped
    in a snapshot (engine.pli_cache.publishes == flushes, > 0) and no
    reader ever waited on the cache mutex
    (engine.pli_cache.reader_lock_waits == 0) — the lock-free read-path
    guarantee as a counter, not a timing;
  * in the locked read-storm dump (cow_reads=false): no publishes, and
    reader_lock_waits > 0 (the baseline really took the locked path);
  * in the hybrid discovery dump: sampling actually ran
    (engine.discovery.sampled_pairs > 0), every lattice candidate took
    exactly one arm (frontier_validations + evidence_skips == candidates),
    and the exact scans hybrid performed stay below the candidate count
    the level-wise dump shows for the same lattice — the "validate less
    than exhaustive" contract as counters, not timings.

Counter checks are exact or ratio-based on deterministic counts, so they
are immune to runner noise. Timing thresholds stay deliberately loose
(>= 1.0x, i.e. inversion only): shared CI runners are noisy, and the
margins these assert on are 3x-200x locally. On top of that, each
benchmark runs three repetitions and the comparison uses the medians, so a
single noisy-neighbor spike cannot invert a ratio and fail an unrelated
PR.
"""

import argparse
import json
import pathlib
import subprocess
import sys

# (benchmark binary, filter, output file, metrics file). Reduced sizes: 10k
# rows for the mutation sweep, the 10000-row arg for the join — big enough
# that the engine's asymptotic edge dominates noise, small enough for a
# smoke job.
RUNS = [
    (
        "bench_pli",
        "BM_MutateThenQuery(Incremental|Batched|BatchedReference|PerRow"
        "|Rebuild)/rows:10000/|BM_PliLevelSweep(Reference)?/10000"
        "|BM_CacheBatchedFlush(Reference)?/",
        "perf_smoke_pli.json",
        "perf_smoke_pli_metrics.json",
    ),
    (
        "bench_join_prune",
        "BM_PairJoin(Naive|Pli)/10000",
        "perf_smoke_join.json",
        "perf_smoke_join_metrics.json",
    ),
    # The readers x writers sweep runs each cache mode as its own binary
    # invocation so each telemetry dump is single-mode and the per-mode
    # counter identities stay exact (one shared dump would mix the locked
    # variant's flushes into the COW publishes == flushes identity).
    (
        "bench_pli",
        "BM_SnapshotReadStorm/writers:",
        "perf_smoke_read_storm_cow.json",
        "perf_smoke_read_storm_cow_metrics.json",
    ),
    (
        "bench_pli",
        "BM_SnapshotReadStormLocked/writers:",
        "perf_smoke_read_storm_locked.json",
        "perf_smoke_read_storm_locked_metrics.json",
    ),
    # Hybrid and exact level-wise discovery run as separate invocations so
    # each telemetry dump is single-strategy and the frontier identities
    # stay exact (a mixed dump would fold the level-wise walk's candidate
    # count into the hybrid arm accounting).
    (
        "bench_discovery",
        "BM_DiscoveryHybrid/",
        "perf_smoke_discovery_hybrid.json",
        "perf_smoke_discovery_hybrid_metrics.json",
    ),
    (
        "bench_discovery",
        "BM_DiscoveryArenaStorageWide/",
        "perf_smoke_discovery_levelwise.json",
        "perf_smoke_discovery_levelwise_metrics.json",
    ),
]


def run_bench(build_dir, out_dir, binary, bench_filter, out_name,
              metrics_name):
    out_path = out_dir / out_name
    cmd = [
        str(build_dir / binary),
        f"--benchmark_filter={bench_filter}",
        "--benchmark_min_time=0.1",
        "--benchmark_repetitions=3",
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
        f"--metrics_json={out_dir / metrics_name}",
    ]
    print("+", " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True)
    with open(out_path) as f:
        data = json.load(f)
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    # Compare the median across repetitions: a single noisy-neighbor spike
    # on a shared runner then cannot invert a healthy ratio. run_name is
    # the undecorated benchmark name the aggregate was computed for.
    return {
        b["run_name"]: b["real_time"] * scale[b.get("time_unit", "ns")]
        for b in data["benchmarks"]
        if b.get("aggregate_name") == "median"
    }


def expect_faster(times, fast, slow, failures):
    if fast not in times or slow not in times:
        failures.append(f"missing benchmark: {fast} vs {slow}")
        return
    ratio = times[slow] / times[fast]
    verdict = "OK" if ratio >= 1.0 else "INVERSION"
    print(f"  {fast}: {times[fast] / 1e3:9.1f} us  vs  "
          f"{slow}: {times[slow] / 1e3:9.1f} us  -> {ratio:5.2f}x  {verdict}")
    if ratio < 1.0:
        failures.append(f"{fast} is slower than {slow} ({ratio:.2f}x)")


def load_counters(out_dir, metrics_name, failures):
    path = out_dir / metrics_name
    if not path.is_file():
        failures.append(f"missing telemetry dump: {path}")
        return {}
    with open(path) as f:
        return json.load(f).get("counters", {})


def check_metric_invariants(out_dir, failures):
    """Counter inversions the telemetry dump must not show (exact
    identities plus work-ratio bounds; all counts are deterministic)."""
    print("\ntelemetry counter invariants:")

    pli = load_counters(out_dir, RUNS[0][3], failures)
    lookups = pli.get("engine.pli_cache.lookups", 0)
    hits = pli.get("engine.pli_cache.hits", 0)
    misses = pli.get("engine.pli_cache.misses", 0)
    ok = lookups > 0 and hits + misses == lookups
    print(f"  pli_cache hits+misses == lookups: {hits} + {misses} "
          f"== {lookups}  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            f"pli_cache accounting: hits({hits}) + misses({misses}) "
            f"!= lookups({lookups}), or no lookups recorded")

    flushes = pli.get("engine.pli_cache.flushes", 0)
    arms = (pli.get("engine.pli_cache.flush.per_row", 0) +
            pli.get("engine.pli_cache.flush.batched", 0) +
            pli.get("engine.pli_cache.flush.dropped", 0))
    ok = flushes > 0 and arms == flushes
    print(f"  pli_cache per-arm flushes sum to total: {arms} "
          f"== {flushes}  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            f"pli_cache flush arms: per_row+batched+dropped({arms}) "
            f"!= flushes({flushes}), or no flushes recorded")

    cow = load_counters(out_dir, RUNS[2][3], failures)
    publishes = cow.get("engine.pli_cache.publishes", 0)
    cow_flushes = cow.get("engine.pli_cache.flushes", 0)
    ok = publishes > 0 and publishes == cow_flushes
    print(f"  COW read-storm publishes == flushes: {publishes} "
          f"== {cow_flushes}  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            f"COW snapshot accounting: publishes({publishes}) != "
            f"flushes({cow_flushes}), or no publishes recorded")

    waits = cow.get("engine.pli_cache.reader_lock_waits", 0)
    ok = waits == 0
    print(f"  COW read-storm reader_lock_waits == 0: {waits}"
          f"  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            f"COW read path took the cache mutex {waits} time(s); the "
            f"snapshot read path must never wait on a lock")

    locked = load_counters(out_dir, RUNS[3][3], failures)
    locked_pub = locked.get("engine.pli_cache.publishes", 0)
    locked_waits = locked.get("engine.pli_cache.reader_lock_waits", 0)
    ok = locked_pub == 0 and locked_waits > 0
    print(f"  locked read-storm publishes == 0 and lock_waits > 0: "
          f"{locked_pub}, {locked_waits}  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            f"locked-mode baseline: publishes({locked_pub}) should be 0 "
            f"and reader_lock_waits({locked_waits}) > 0 — the oracle is "
            f"not exercising the locked path")

    hybrid = load_counters(out_dir, RUNS[4][3], failures)
    sampled = hybrid.get("engine.discovery.sampled_pairs", 0)
    ok = sampled > 0
    print(f"  hybrid discovery sampled_pairs > 0: {sampled}"
          f"  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            "hybrid discovery never sampled a pair; the sample-then-"
            "validate loop is not running its sampling arm")

    candidates = hybrid.get("engine.discovery.candidates", 0)
    validated = hybrid.get("engine.discovery.frontier_validations", 0)
    skipped = hybrid.get("engine.discovery.evidence_skips", 0)
    ok = candidates > 0 and validated + skipped == candidates
    print(f"  hybrid validations + evidence skips == candidates: "
          f"{validated} + {skipped} == {candidates}"
          f"  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            f"hybrid frontier accounting: validations({validated}) + "
            f"skips({skipped}) != candidates({candidates}), or no "
            f"candidates recorded")

    levelwise = load_counters(out_dir, RUNS[5][3], failures)
    lw_candidates = levelwise.get("engine.discovery.candidates", 0)
    ok = lw_candidates > 0 and validated <= lw_candidates
    print(f"  hybrid exact scans <= level-wise candidate count: "
          f"{validated} <= {lw_candidates}  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            f"hybrid performed {validated} exact scans but the level-wise "
            f"walk of the same lattice only has {lw_candidates} candidates "
            f"— evidence skipping is not reducing validation work")

    join = load_counters(out_dir, RUNS[1][3], failures)
    probes = join.get("eval.join.hash_probes", 0)
    pairs = join.get("eval.join.hash_pair_candidates", 0)
    ok = pairs > 0 and probes * 100 <= pairs
    print(f"  hash-join probes 100x below naive pairs: {probes} * 100 "
          f"<= {pairs}  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            f"hash-join work bound: probes({probes}) not 100x below "
            f"naive pair candidates({pairs})")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", required=True, type=pathlib.Path)
    parser.add_argument("--out-dir", required=True, type=pathlib.Path)
    args = parser.parse_args()
    args.out_dir.mkdir(parents=True, exist_ok=True)

    times = {}
    for binary, bench_filter, out_name, metrics_name in RUNS:
        times.update(
            run_bench(args.build_dir, args.out_dir, binary, bench_filter,
                      out_name, metrics_name))

    failures = []
    print("\nengine vs rebuild oracle (mutate-then-query, 10k rows):")
    for muts in (1, 8, 64):
        expect_faster(
            times,
            f"BM_MutateThenQueryIncremental/rows:10000/muts:{muts}",
            f"BM_MutateThenQueryRebuild/rows:10000/muts:{muts}",
            failures,
        )
    print("batched-adaptive vs pinned per-row (64-mutation bursts):")
    expect_faster(
        times,
        "BM_MutateThenQueryBatched/rows:10000/muts:64",
        "BM_MutateThenQueryPerRow/rows:10000/muts:64",
        failures,
    )
    print("CSR arena vs vector-of-vectors reference storage:")
    expect_faster(
        times,
        "BM_PliLevelSweep/10000",
        "BM_PliLevelSweepReference/10000",
        failures,
    )
    expect_faster(
        times,
        "BM_CacheBatchedFlush/rows:10000/muts:64",
        "BM_CacheBatchedFlushReference/rows:10000/muts:64",
        failures,
    )
    expect_faster(
        times,
        "BM_MutateThenQueryBatched/rows:10000/muts:64",
        "BM_MutateThenQueryBatchedReference/rows:10000/muts:64",
        failures,
    )
    print("PLI pair join vs naive:")
    expect_faster(times, "BM_PairJoinPli/10000", "BM_PairJoinNaive/10000",
                  failures)
    print("hybrid sample-then-validate vs exact level-wise discovery "
          "(64-attr planted-FD instance):")
    expect_faster(
        times,
        "BM_DiscoveryHybrid/64",
        "BM_DiscoveryArenaStorageWide/64",
        failures,
    )
    print("lock-free COW snapshot reads vs locked baseline (1 writer):")
    for threads in (1, 4, 8):
        expect_faster(
            times,
            f"BM_SnapshotReadStorm/writers:1/real_time/threads:{threads}",
            f"BM_SnapshotReadStormLocked/writers:1/real_time"
            f"/threads:{threads}",
            failures,
        )

    check_metric_invariants(args.out_dir, failures)

    if failures:
        print("\nPERF SMOKE FAILED:")
        for f in failures:
            print(" -", f)
        return 1
    print("\nperf smoke passed: no inversions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
