#!/usr/bin/env python3
"""CI perf smoke: the engine paths must still beat their oracles.

Runs bench_pli's mutate-then-query sweep and bench_join_prune's pair join
at reduced sizes, writes the raw google-benchmark JSON next to the results
(uploaded as a workflow artifact beside the checked-in BENCH_*.json), and
hard-fails on any inversion:

  * incremental (adaptive) mutate-then-query slower than the
    rebuild-after-invalidate oracle at any swept mutation ratio;
  * the batched-adaptive flush slower than the pinned per-row reference at
    the 64-mutation burst size (the regime batching exists for);
  * the CSR-arena cluster storage losing to the vector-of-vectors
    reference, on either the discovery-shaped level sweep or the
    64-mutation batched flush (PliCacheOptions::arena_storage);
  * the PLI-backed pair join slower than the naive nested-loop join;
  * the coded value plane losing to its value-keyed oracle where the
    codes are supposed to win (engine/dictionary.h): the counting-sort
    partition build (BM_PliBuildSingleAttrCoded) slower than the hashed
    value-keyed build, or the code-keyed hash join (BM_PairJoinPli, codes
    on by default) slower than BM_PairJoinValueKeyed (EvalOptions::
    use_codes = false). The two remaining coded-vs-oracle pairs — the
    cold-cache level sweep (parity by design: BuildFor only exploits a
    column that already exists, it never materializes one) and hybrid
    discovery (validation-dominated, low single-digit margin) — are
    recorded for the artifact and the trajectory gate but not
    inversion-gated;
  * hybrid (sample-then-validate) discovery losing to exact level-wise
    validation on the wide 64-attribute planted-FD instance — the shape
    hybrid exists for (engine/hybrid_discovery.h);
  * the lock-free COW snapshot read path (PliCacheOptions::cow_reads)
    losing to the locked in-place baseline under one concurrent writer,
    at any point of the 1/4/8-reader sweep (the 0- and 4-writer cells run
    for the artifact record).

Each run also enables the engine telemetry plane (--metrics_json=PATH, see
src/telemetry/) and writes the per-binary metrics dump into the out dir
(uploaded with the rest of the artifacts). The dump is then validated for
counter inversions — identities the instrumentation guarantees by
construction and work-ratio bounds the engine exists to provide:

  * engine.pli_cache.hits + misses == lookups (every Get takes one arm);
  * the per-arm flush counters (flush.per_row + flush.batched +
    flush.dropped) sum to engine.pli_cache.flushes, and flushes > 0 —
    the sweep actually exercised the adaptive policy;
  * eval.join.hash_probes stays >= 100x below
    eval.join.hash_pair_candidates (the naive pair count for the same
    joins): the hashed path must probe orders fewer pairs than |L|x|R|;
  * in the COW read-storm dump (cow_reads=true only): every flush swapped
    in a snapshot (engine.pli_cache.publishes == flushes, > 0) and no
    reader ever waited on the cache mutex
    (engine.pli_cache.reader_lock_waits == 0) — the lock-free read-path
    guarantee as a counter, not a timing;
  * in the locked read-storm dump (cow_reads=false): no publishes, and
    reader_lock_waits > 0 (the baseline really took the locked path);
  * in the hybrid discovery dump: sampling actually ran
    (engine.discovery.sampled_pairs > 0), every lattice candidate took
    exactly one arm (frontier_validations + evidence_skips == candidates),
    and the exact scans hybrid performed stay below the candidate count
    the level-wise dump shows for the same lattice — the "validate less
    than exhaustive" contract as counters, not timings.

Counter checks are exact or ratio-based on deterministic counts, so they
are immune to runner noise. Timing thresholds stay deliberately loose
(>= 1.0x, i.e. inversion only): shared CI runners are noisy, and the
margins these assert on are 3x-200x locally. On top of that, each
benchmark runs three repetitions and the comparison uses the medians, so a
single noisy-neighbor spike cannot invert a ratio and fail an unrelated
PR.

Bench-trajectory regression gate
--------------------------------

Beyond the pairwise inversions above, the run is diffed against the
committed baselines BENCH_incremental.json (a full bench_pli recording)
and BENCH_eval.json (a full bench_join_prune recording): every benchmark
whose exact name/shape appears in both this run's medians and a baseline
is compared as fresh_median / baseline_time. The CI runner and the
machine that recorded the baselines differ in raw speed, so each ratio is
normalized by the fleet median ratio across all shared entries — a
uniformly 2x-slower runner shifts every ratio identically and cancels
out, while a single benchmark drifting relative to the rest does not. Any
entry whose normalized ratio exceeds 1.25 (a >25% wall-time regression
against the trajectory of the rest of the suite) hard-fails the job.
Entries only on one side (new benchmarks, reduced-size smoke shapes the
baselines don't record) are skipped, as are the multi-threaded contention
cells (TRAJECTORY_SKIP) whose wall time is scheduler lottery rather than
code trajectory. The smoke runs use google-benchmark's default min_time
(plus 3 repetitions) for exactly this gate: the baselines are recorded at
defaults, and the mutate-heavy shapes report materially different
steady-state costs under shortened runs, so both sides must measure in the
same regime.

Re-recording the baselines after an intentional perf change is one
command against a Release build tree:

    python3 scripts/perf_smoke.py --build-dir build-rel \
        --out-dir /tmp/perf --record-baselines

which re-runs the two full suites (single repetition, google-benchmark
defaults) and overwrites BENCH_incremental.json / BENCH_eval.json in the
repo root (--baseline-dir to redirect). Commit the refreshed files with a
note of what moved and why.
"""

import argparse
import json
import pathlib
import subprocess
import sys

# (benchmark binary, filter, output file, metrics file). Reduced sizes: 10k
# rows for the mutation sweep, the 10000-row arg for the join — big enough
# that the engine's asymptotic edge dominates noise, small enough for a
# smoke job.
RUNS = [
    (
        "bench_pli",
        "BM_MutateThenQuery(Incremental|Batched|BatchedReference|PerRow"
        "|Rebuild)/rows:10000/|BM_PliLevelSweep(Reference)?/10000$"
        "|BM_CacheBatchedFlush(Reference)?/"
        "|BM_PliBuildSingleAttr(Coded)?/10000$"
        "|BM_PliCacheLevelSweep(ValueKeyed)?/10000$",
        "perf_smoke_pli.json",
        "perf_smoke_pli_metrics.json",
    ),
    (
        "bench_join_prune",
        "BM_PairJoin(Naive|Pli|ValueKeyed)/10000$",
        "perf_smoke_join.json",
        "perf_smoke_join_metrics.json",
    ),
    # The readers x writers sweep runs each cache mode as its own binary
    # invocation so each telemetry dump is single-mode and the per-mode
    # counter identities stay exact (one shared dump would mix the locked
    # variant's flushes into the COW publishes == flushes identity).
    (
        "bench_pli",
        "BM_SnapshotReadStorm/writers:",
        "perf_smoke_read_storm_cow.json",
        "perf_smoke_read_storm_cow_metrics.json",
    ),
    (
        "bench_pli",
        "BM_SnapshotReadStormLocked/writers:",
        "perf_smoke_read_storm_locked.json",
        "perf_smoke_read_storm_locked_metrics.json",
    ),
    # Hybrid and exact level-wise discovery run as separate invocations so
    # each telemetry dump is single-strategy and the frontier identities
    # stay exact (a mixed dump would fold the level-wise walk's candidate
    # count into the hybrid arm accounting).
    (
        "bench_discovery",
        "BM_DiscoveryHybrid/",
        "perf_smoke_discovery_hybrid.json",
        "perf_smoke_discovery_hybrid_metrics.json",
    ),
    (
        "bench_discovery",
        "BM_DiscoveryArenaStorageWide/",
        "perf_smoke_discovery_levelwise.json",
        "perf_smoke_discovery_levelwise_metrics.json",
    ),
    # The value-keyed hybrid oracle runs as its own invocation so the coded
    # hybrid dump above stays single-mode and its frontier/level-wise
    # counter comparisons are not doubled by the oracle's identical walk.
    (
        "bench_discovery",
        "BM_DiscoveryHybridValueKeyed/",
        "perf_smoke_discovery_hybrid_value.json",
        "perf_smoke_discovery_hybrid_value_metrics.json",
    ),
]

# Hard wall-clock ceiling per benchmark invocation, enforced twice: the
# binary's own --wall_timeout_s watchdog (exits 124 with a message naming
# the binary) and a subprocess timeout out here in case the binary is too
# wedged even for its watchdog. A hung benchmark then fails the job in
# minutes with a readable message instead of eating the workflow's global
# timeout and dying opaque.
RUN_TIMEOUT_S = 600

# Committed full-suite baselines the trajectory gate diffs against, and the
# normalized wall-time ratio past which a shared entry fails the run.
BASELINES = ["BENCH_incremental.json", "BENCH_eval.json"]
TRAJECTORY_TOLERANCE = 1.25
# Below this many shared entries the fleet-median normalization has nothing
# to anchor on — treat it as a harness bug rather than silently passing.
MIN_TRAJECTORY_ENTRIES = 5
# Shapes whose wall time is not comparable across runs/machines and so must
# never gate the trajectory: the multi-threaded read-storm contention cells
# swing 0.25x-1.3x run-to-run with core count and scheduler luck (their
# guarantees are enforced by the counter identities and the within-run
# pairwise sweep instead, which compare like with like).
TRAJECTORY_SKIP = ("/threads:",)


def run_bench(build_dir, out_dir, binary, bench_filter, out_name,
              metrics_name):
    out_path = out_dir / out_name
    # Deliberately NO --benchmark_min_time override: the trajectory gate
    # compares these medians against baselines recorded at google-benchmark
    # defaults, and the mutate-heavy shapes are measurement-regime
    # sensitive — at min_time=0.1 the same binary reports ~1.7x the
    # steady-state cost for BM_MutateThenQueryBatched/muts:64 because the
    # short run never amortizes per-repetition cache state. Identical
    # regimes on both sides keep the gate about the code, not the flags.
    cmd = [
        str(build_dir / binary),
        f"--benchmark_filter={bench_filter}",
        "--benchmark_repetitions=3",
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
        f"--metrics_json={out_dir / metrics_name}",
        f"--wall_timeout_s={RUN_TIMEOUT_S}",
    ]
    print("+", " ".join(cmd), flush=True)
    try:
        # The outer timeout is a belt over the binary's own watchdog
        # (slightly longer so the watchdog's message wins when both fire).
        subprocess.run(cmd, check=True, timeout=RUN_TIMEOUT_S + 60)
    except subprocess.TimeoutExpired:
        sys.exit(f"PERF SMOKE FAILED: {binary} "
                 f"(filter {bench_filter!r}) exceeded the "
                 f"{RUN_TIMEOUT_S}s wall-clock ceiling and was killed — "
                 f"a benchmark is hanging; reproduce locally with the "
                 f"printed command")
    except subprocess.CalledProcessError as e:
        if e.returncode == 124:
            sys.exit(f"PERF SMOKE FAILED: {binary} "
                     f"(filter {bench_filter!r}) hit its internal "
                     f"--wall_timeout_s={RUN_TIMEOUT_S} watchdog — a "
                     f"benchmark is hanging; reproduce locally with the "
                     f"printed command")
        raise
    with open(out_path) as f:
        data = json.load(f)
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    # Compare the median across repetitions: a single noisy-neighbor spike
    # on a shared runner then cannot invert a healthy ratio. run_name is
    # the undecorated benchmark name the aggregate was computed for.
    return {
        b["run_name"]: b["real_time"] * scale[b.get("time_unit", "ns")]
        for b in data["benchmarks"]
        if b.get("aggregate_name") == "median"
    }


def expect_faster(times, fast, slow, failures):
    if fast not in times or slow not in times:
        failures.append(f"missing benchmark: {fast} vs {slow}")
        return
    ratio = times[slow] / times[fast]
    verdict = "OK" if ratio >= 1.0 else "INVERSION"
    print(f"  {fast}: {times[fast] / 1e3:9.1f} us  vs  "
          f"{slow}: {times[slow] / 1e3:9.1f} us  -> {ratio:5.2f}x  {verdict}")
    if ratio < 1.0:
        failures.append(f"{fast} is slower than {slow} ({ratio:.2f}x)")


def load_counters(out_dir, metrics_name, failures):
    path = out_dir / metrics_name
    if not path.is_file():
        failures.append(f"missing telemetry dump: {path}")
        return {}
    with open(path) as f:
        return json.load(f).get("counters", {})


def check_metric_invariants(out_dir, failures):
    """Counter inversions the telemetry dump must not show (exact
    identities plus work-ratio bounds; all counts are deterministic)."""
    print("\ntelemetry counter invariants:")

    pli = load_counters(out_dir, RUNS[0][3], failures)
    lookups = pli.get("engine.pli_cache.lookups", 0)
    hits = pli.get("engine.pli_cache.hits", 0)
    misses = pli.get("engine.pli_cache.misses", 0)
    ok = lookups > 0 and hits + misses == lookups
    print(f"  pli_cache hits+misses == lookups: {hits} + {misses} "
          f"== {lookups}  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            f"pli_cache accounting: hits({hits}) + misses({misses}) "
            f"!= lookups({lookups}), or no lookups recorded")

    flushes = pli.get("engine.pli_cache.flushes", 0)
    arms = (pli.get("engine.pli_cache.flush.per_row", 0) +
            pli.get("engine.pli_cache.flush.batched", 0) +
            pli.get("engine.pli_cache.flush.dropped", 0))
    ok = flushes > 0 and arms == flushes
    print(f"  pli_cache per-arm flushes sum to total: {arms} "
          f"== {flushes}  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            f"pli_cache flush arms: per_row+batched+dropped({arms}) "
            f"!= flushes({flushes}), or no flushes recorded")

    cow = load_counters(out_dir, RUNS[2][3], failures)
    publishes = cow.get("engine.pli_cache.publishes", 0)
    cow_flushes = cow.get("engine.pli_cache.flushes", 0)
    ok = publishes > 0 and publishes == cow_flushes
    print(f"  COW read-storm publishes == flushes: {publishes} "
          f"== {cow_flushes}  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            f"COW snapshot accounting: publishes({publishes}) != "
            f"flushes({cow_flushes}), or no publishes recorded")

    waits = cow.get("engine.pli_cache.reader_lock_waits", 0)
    ok = waits == 0
    print(f"  COW read-storm reader_lock_waits == 0: {waits}"
          f"  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            f"COW read path took the cache mutex {waits} time(s); the "
            f"snapshot read path must never wait on a lock")

    locked = load_counters(out_dir, RUNS[3][3], failures)
    locked_pub = locked.get("engine.pli_cache.publishes", 0)
    locked_waits = locked.get("engine.pli_cache.reader_lock_waits", 0)
    ok = locked_pub == 0 and locked_waits > 0
    print(f"  locked read-storm publishes == 0 and lock_waits > 0: "
          f"{locked_pub}, {locked_waits}  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            f"locked-mode baseline: publishes({locked_pub}) should be 0 "
            f"and reader_lock_waits({locked_waits}) > 0 — the oracle is "
            f"not exercising the locked path")

    hybrid = load_counters(out_dir, RUNS[4][3], failures)
    sampled = hybrid.get("engine.discovery.sampled_pairs", 0)
    ok = sampled > 0
    print(f"  hybrid discovery sampled_pairs > 0: {sampled}"
          f"  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            "hybrid discovery never sampled a pair; the sample-then-"
            "validate loop is not running its sampling arm")

    candidates = hybrid.get("engine.discovery.candidates", 0)
    validated = hybrid.get("engine.discovery.frontier_validations", 0)
    skipped = hybrid.get("engine.discovery.evidence_skips", 0)
    ok = candidates > 0 and validated + skipped == candidates
    print(f"  hybrid validations + evidence skips == candidates: "
          f"{validated} + {skipped} == {candidates}"
          f"  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            f"hybrid frontier accounting: validations({validated}) + "
            f"skips({skipped}) != candidates({candidates}), or no "
            f"candidates recorded")

    levelwise = load_counters(out_dir, RUNS[5][3], failures)
    lw_candidates = levelwise.get("engine.discovery.candidates", 0)
    ok = lw_candidates > 0 and validated <= lw_candidates
    print(f"  hybrid exact scans <= level-wise candidate count: "
          f"{validated} <= {lw_candidates}  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            f"hybrid performed {validated} exact scans but the level-wise "
            f"walk of the same lattice only has {lw_candidates} candidates "
            f"— evidence skipping is not reducing validation work")

    # Fault injection and the cache memory budget are both disabled in
    # every bench build, so their counters must read zero across every
    # dump — a nonzero value means the robustness plane is leaking work
    # into the hot paths (the ≤1% overhead contract starts here).
    for idx, (_, _, _, metrics_name) in enumerate(RUNS):
        dump = load_counters(out_dir, metrics_name, failures)
        injected = dump.get("fault.injected_total", 0)
        budget_evictions = dump.get("engine.cache.budget_evictions", 0)
        uncached = dump.get("engine.cache.uncached_serves", 0)
        tripped = (dump.get("engine.exec.cancelled", 0) +
                   dump.get("engine.exec.deadline_exceeded", 0))
        ok = (injected == 0 and budget_evictions == 0 and uncached == 0 and
              tripped == 0)
        if idx == 0 or not ok:
            print(f"  robustness plane quiescent in {metrics_name}: "
                  f"faults={injected} budget_evictions={budget_evictions} "
                  f"uncached_serves={uncached} exec_trips={tripped}"
                  f"  {'OK' if ok else 'VIOLATED'}")
        if not ok:
            failures.append(
                f"{metrics_name}: fault injection / memory budget / exec "
                f"trips active in a bench run (faults={injected}, "
                f"budget_evictions={budget_evictions}, "
                f"uncached_serves={uncached}, exec_trips={tripped}) — all "
                f"must be 0 when the features are disabled")

    join = load_counters(out_dir, RUNS[1][3], failures)
    probes = join.get("eval.join.hash_probes", 0)
    pairs = join.get("eval.join.hash_pair_candidates", 0)
    ok = pairs > 0 and probes * 100 <= pairs
    print(f"  hash-join probes 100x below naive pairs: {probes} * 100 "
          f"<= {pairs}  {'OK' if ok else 'VIOLATED'}")
    if not ok:
        failures.append(
            f"hash-join work bound: probes({probes}) not 100x below "
            f"naive pair candidates({pairs})")


def load_baseline_times(baseline_dir, failures):
    """Benchmark name -> wall time (ns) from the committed full-suite
    recordings (single-repetition iteration entries, no aggregates)."""
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    baseline = {}
    for name in BASELINES:
        path = baseline_dir / name
        if not path.is_file():
            failures.append(f"missing committed baseline: {path}")
            continue
        with open(path) as f:
            data = json.load(f)
        for b in data.get("benchmarks", []):
            if b.get("aggregate_name"):
                continue
            baseline[b["name"]] = (b["real_time"] *
                                   scale[b.get("time_unit", "ns")])
    return baseline


def check_trajectory(times, baseline_dir, failures):
    """Fail any same-shape entry that regressed >TRAJECTORY_TOLERANCE
    against the committed baselines, after normalizing out runner speed by
    the fleet median ratio (see the module docstring)."""
    print("\nbench-trajectory regression gate "
          f"(>{(TRAJECTORY_TOLERANCE - 1) * 100:.0f}% over fleet median "
          "fails):")
    baseline = load_baseline_times(baseline_dir, failures)
    shared = sorted(
        name for name in set(times) & set(baseline)
        if not any(skip in name for skip in TRAJECTORY_SKIP))
    if len(shared) < MIN_TRAJECTORY_ENTRIES:
        failures.append(
            f"trajectory gate found only {len(shared)} benchmark(s) shared "
            f"with the committed baselines (need {MIN_TRAJECTORY_ENTRIES}); "
            f"re-record them via --record-baselines")
        return
    ratios = {name: times[name] / baseline[name] for name in shared}
    ordered = sorted(ratios.values())
    mid = len(ordered) // 2
    fleet = (ordered[mid] if len(ordered) % 2 else
             (ordered[mid - 1] + ordered[mid]) / 2)
    print(f"  fleet median speed ratio (this runner vs baseline recorder): "
          f"{fleet:.3f}x over {len(shared)} shared entries")
    for name in shared:
        normalized = ratios[name] / fleet
        verdict = "OK" if normalized <= TRAJECTORY_TOLERANCE else "REGRESSED"
        print(f"  {name}: {times[name] / 1e3:11.1f} us  vs  baseline "
              f"{baseline[name] / 1e3:11.1f} us  -> {normalized:5.2f}x "
              f"normalized  {verdict}")
        if normalized > TRAJECTORY_TOLERANCE:
            failures.append(
                f"{name} regressed {normalized:.2f}x against the committed "
                f"baseline trajectory (tolerance {TRAJECTORY_TOLERANCE}x); "
                f"if intentional, re-record with --record-baselines")


def record_baselines(build_dir, out_dir, baseline_dir):
    """--record-baselines: re-run the two full suites and overwrite the
    committed BENCH_*.json (single repetition, google-benchmark defaults —
    the exact shape the trajectory gate expects)."""
    for binary, out_name in (("bench_pli", "BENCH_incremental.json"),
                             ("bench_join_prune", "BENCH_eval.json")):
        out_path = baseline_dir / out_name
        cmd = [
            str(build_dir / binary),
            f"--benchmark_out={out_path}",
            "--benchmark_out_format=json",
            f"--metrics_json={out_dir / ('record_' + binary + '_metrics.json')}",
        ]
        print("+", " ".join(cmd), flush=True)
        subprocess.run(cmd, check=True)
        print(f"recorded {out_path}")
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", required=True, type=pathlib.Path)
    parser.add_argument("--out-dir", required=True, type=pathlib.Path)
    parser.add_argument(
        "--baseline-dir", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="where the committed BENCH_*.json live (default: repo root)")
    parser.add_argument(
        "--record-baselines", action="store_true",
        help="re-run the full suites and overwrite the committed baselines "
             "instead of gating (see module docstring)")
    args = parser.parse_args()
    args.out_dir.mkdir(parents=True, exist_ok=True)

    if args.record_baselines:
        return record_baselines(args.build_dir, args.out_dir,
                                args.baseline_dir)

    times = {}
    for binary, bench_filter, out_name, metrics_name in RUNS:
        times.update(
            run_bench(args.build_dir, args.out_dir, binary, bench_filter,
                      out_name, metrics_name))

    failures = []
    print("\nengine vs rebuild oracle (mutate-then-query, 10k rows):")
    for muts in (1, 8, 64):
        expect_faster(
            times,
            f"BM_MutateThenQueryIncremental/rows:10000/muts:{muts}",
            f"BM_MutateThenQueryRebuild/rows:10000/muts:{muts}",
            failures,
        )
    print("batched-adaptive vs pinned per-row (64-mutation bursts):")
    expect_faster(
        times,
        "BM_MutateThenQueryBatched/rows:10000/muts:64",
        "BM_MutateThenQueryPerRow/rows:10000/muts:64",
        failures,
    )
    print("CSR arena vs vector-of-vectors reference storage:")
    expect_faster(
        times,
        "BM_PliLevelSweep/10000",
        "BM_PliLevelSweepReference/10000",
        failures,
    )
    expect_faster(
        times,
        "BM_CacheBatchedFlush/rows:10000/muts:64",
        "BM_CacheBatchedFlushReference/rows:10000/muts:64",
        failures,
    )
    expect_faster(
        times,
        "BM_MutateThenQueryBatched/rows:10000/muts:64",
        "BM_MutateThenQueryBatchedReference/rows:10000/muts:64",
        failures,
    )
    print("PLI pair join vs naive:")
    expect_faster(times, "BM_PairJoinPli/10000", "BM_PairJoinNaive/10000",
                  failures)
    print("coded value plane vs value-keyed oracle (engine/dictionary.h):")
    expect_faster(
        times,
        "BM_PliBuildSingleAttrCoded/10000",
        "BM_PliBuildSingleAttr/10000",
        failures,
    )
    expect_faster(
        times,
        "BM_PairJoinPli/10000",
        "BM_PairJoinValueKeyed/10000",
        failures,
    )
    print("hybrid sample-then-validate vs exact level-wise discovery "
          "(64-attr planted-FD instance):")
    expect_faster(
        times,
        "BM_DiscoveryHybrid/64",
        "BM_DiscoveryArenaStorageWide/64",
        failures,
    )
    print("lock-free COW snapshot reads vs locked baseline (1 writer):")
    for threads in (1, 4, 8):
        expect_faster(
            times,
            f"BM_SnapshotReadStorm/writers:1/real_time/threads:{threads}",
            f"BM_SnapshotReadStormLocked/writers:1/real_time"
            f"/threads:{threads}",
            failures,
        )

    check_metric_invariants(args.out_dir, failures)
    check_trajectory(times, args.baseline_dir, failures)

    if failures:
        print("\nPERF SMOKE FAILED:")
        for f in failures:
            print(" -", f)
        return 1
    print("\nperf smoke passed: no inversions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
