// Employee registry: the paper's running example end-to-end at realistic
// scale — generation, querying with the flexible algebra, AD propagation
// through operators (Theorem 4.3), redundant type-guard elimination
// (Example 4), and the AD-derived subtype family (Example 3).
//
// Run: ./employee_registry [rows]

#include <cstdlib>
#include <iostream>

#include "algebra/evaluate.h"
#include "optimizer/guard_analysis.h"
#include "subtyping/ad_subtyping.h"
#include "workload/generator.h"

using namespace flexrel;

int main(int argc, char** argv) {
  size_t rows = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 10000;

  EmployeeConfig config;
  config.num_variants = 5;
  config.attrs_per_variant = 3;
  config.num_common_attrs = 2;
  config.rows = rows;
  config.seed = 2026;
  auto workload = MakeEmployeeWorkload(config);
  if (!workload.ok()) {
    std::cerr << workload.status() << "\n";
    return 1;
  }
  EmployeeWorkload& w = *workload.value();
  std::cout << "generated " << w.relation.size()
            << " employees over 5 jobtype variants\n";
  std::cout << "scheme: " << w.scheme.ToString(w.catalog) << "\n\n";

  // --- Query 1: guarded selection, before/after the optimizer --------------
  const EadVariant& v0 = w.eads[0].variants()[0];
  ExprPtr guarded = Expr::AndAll({
      Expr::Eq(w.jobtype_attr, w.jobtype_values[0]),
      Expr::Compare(w.id_attr, CmpOp::kLt, Value::Int(static_cast<int64_t>(rows / 2))),
      Expr::Exists(*v0.then.begin()),  // a type guard on a variant attribute
  });
  std::cout << "query:    sigma[" << guarded->ToString(w.catalog) << "]\n";

  GuardRewrite rewrite = EliminateRedundantGuards(guarded, w.eads);
  std::cout << "optimizer eliminated " << rewrite.guards_eliminated
            << " redundant type guard(s):\n          sigma["
            << rewrite.formula->ToString(w.catalog) << "]\n";

  EvalStats before, after;
  auto r1 = Evaluate(Plan::Select(Plan::Scan(&w.relation), guarded), &before);
  auto r2 = Evaluate(Plan::Select(Plan::Scan(&w.relation), rewrite.formula),
                     &after);
  if (!r1.ok() || !r2.ok()) {
    std::cerr << "evaluation failed\n";
    return 1;
  }
  std::cout << "rows: " << r1.value().size() << " (original) vs "
            << r2.value().size() << " (rewritten) — identical results\n\n";

  // --- Theorem 4.3 in action ------------------------------------------------
  auto selected = r2.value();
  std::cout << "deps after selection (rule 3 keeps them):\n  "
            << selected.deps().ToString(w.catalog) << "\n";
  AttrSet keep = w.common_attrs;
  auto projected =
      Evaluate(Plan::Project(Plan::Scan(&w.relation), keep)).value();
  std::cout << "deps after projecting onto " << keep.ToString(w.catalog)
            << " (rule 2 clips the RHS):\n  "
            << projected.deps().ToString(w.catalog) << "\n";
  auto unioned = Evaluate(Plan::Union(Plan::Scan(&w.relation),
                                      Plan::Scan(&w.relation)))
                     .value();
  std::cout << "deps after a plain union (rule 4 drops everything): "
            << (unioned.deps().empty() ? "{}" : "<nonempty!>") << "\n";
  AttrId tag = w.catalog.Intern("source");
  auto tagged =
      Evaluate(Plan::Union(
                   Plan::Extend(Plan::Scan(&w.relation), tag, Value::Int(1)),
                   Plan::Extend(Plan::Scan(&w.relation), tag, Value::Int(2))))
          .value();
  std::cout << "deps after a *tagged* union (rule 6 augments the LHS):\n  "
            << tagged.deps().ToString(w.catalog) << "\n\n";

  // --- Example 3: the subtype family ---------------------------------------
  RecordType base("employee");
  for (const auto& [attr, domain] : w.domains) base.SetField(attr, domain);
  auto family = DeriveTypeFamily(base, w.eads[0]);
  if (!family.ok()) {
    std::cerr << family.status() << "\n";
    return 1;
  }
  std::cout << "AD-derived supertype:\n  "
            << family.value().supertype.ToString(w.catalog) << "\n";
  std::cout << "first subtype:\n  "
            << family.value().subtypes[0].ToString(w.catalog) << "\n";

  RecordType lossy = family.value().supertype.Project(
      family.value().supertype.attrs().Minus(AttrSet::Of(w.jobtype_attr)));
  SupertypeVerdict verdict = CheckSupertype(lossy, family.value(), w.catalog);
  std::cout << "\ncandidate supertype without jobtype:\n  record rule: "
            << (verdict.record_rule_ok ? "accepts" : "rejects")
            << "\n  AD-aware:    "
            << (verdict.semantics_preserving ? "accepts" : "rejects") << "\n  "
            << verdict.reason << "\n";
  return 0;
}
