// Schema toolkit: the design-time workflow the paper sketches across
// Sections 3.1, 3.3 and 4.2 — start from an EER predicate-defined
// specialization, map it onto a flexible scheme + EAD, classify it, compare
// the four classical decomposition translations, and export a PASCAL variant
// record (including the artificial-determinant workaround, machine-validated
// with rule AF2).
//
// Run: ./schema_toolkit

#include <iostream>

#include "util/string_util.h"
#include "decomposition/decomposition.h"
#include "ermodel/er_model.h"
#include "hostlang/pascal_emit.h"
#include "workload/generator.h"

using namespace flexrel;

int main() {
  AttrCatalog catalog;
  AttrId id = catalog.Intern("id");
  AttrId sex = catalog.Intern("sex");
  AttrId marital = catalog.Intern("marital-status");
  AttrId maiden = catalog.Intern("maiden-name");

  // --- EER design -----------------------------------------------------------
  ErEntity person;
  person.name = "person";
  person.attrs = {
      {id, Domain::Any(ValueType::kInt)},
      {sex, Domain::Enumerated({Value::Str("f"), Value::Str("m")}).value()},
      {marital,
       Domain::Enumerated({Value::Str("single"), Value::Str("married")})
           .value()},
  };
  ErSpecialization spec;
  spec.discriminators = AttrSet{sex, marital};
  ErSubclass married_woman;
  married_woman.name = "married-woman";
  Tuple fm;
  fm.Set(sex, Value::Str("f"));
  fm.Set(marital, Value::Str("married"));
  married_woman.defining_values =
      ConditionSet::Make(spec.discriminators, {fm}).value();
  married_woman.specific_attrs = {{maiden, Domain::Any(ValueType::kString)}};
  spec.subclasses.push_back(married_woman);
  person.specializations.push_back(spec);

  auto mapped = MapEntity(person);
  if (!mapped.ok()) {
    std::cerr << mapped.status() << "\n";
    return 1;
  }
  std::cout << "mapped scheme: " << mapped.value().scheme.ToString(catalog)
            << "\nmapped EAD:    " << mapped.value().eads[0].ToString(catalog)
            << "\n";
  auto cls = ClassifySpecialization(mapped.value().eads[0],
                                    mapped.value().domains);
  if (cls.ok()) {
    std::cout << "classification: "
              << (cls.value().disjoint ? "disjoint" : "overlapping") << ", "
              << (cls.value().total ? "total" : "partial") << "\n\n";
  }

  // --- Populate and decompose -----------------------------------------------
  FlexibleRelation people = FlexibleRelation::Base(
      "people", &catalog, mapped.value().scheme, mapped.value().eads,
      mapped.value().domains);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    Tuple t;
    t.Set(id, Value::Int(i));
    bool f = rng.Bernoulli(0.5);
    bool married = rng.Bernoulli(0.5);
    t.Set(sex, Value::Str(f ? "f" : "m"));
    t.Set(marital, Value::Str(married ? "married" : "single"));
    if (f && married) t.Set(maiden, Value::Str(StrCat("name", i)));
    Status s = people.Insert(t);
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }

  AttrId tag = catalog.Intern("variant_tag");
  auto m1 = TranslateNullPaddedTagged(people, mapped.value().eads[0], tag);
  auto m3 = TranslateHorizontal(people, mapped.value().eads[0]);
  auto m4 = TranslateVertical(people, mapped.value().eads[0], AttrSet::Of(id));
  if (!m1.ok() || !m3.ok() || !m4.ok()) {
    std::cerr << "decomposition failed\n";
    return 1;
  }
  StorageStats flex = StatsOf(people);
  StorageStats s1 = StatsOf(m1.value());
  std::vector<Relation> h = m3.value().variant_relations;
  h.push_back(m3.value().remainder);
  StorageStats s3 = StatsOf(h);
  std::vector<Relation> v = m4.value().variant_relations;
  v.push_back(m4.value().master);
  StorageStats s4 = StatsOf(v);

  auto report = [](const char* label, const StorageStats& s) {
    std::cout << "  " << label << ": " << s.relations << " relation(s), "
              << s.tuples << " tuples, " << s.stored_fields << " fields, "
              << s.null_fields << " nulls\n";
  };
  std::cout << "storage comparison (1000 people):\n";
  report("flexible relation      ", flex);
  report("method 1 (nulls + tag) ", s1);
  report("method 3 (horizontal)  ", s3);
  report("method 4 (vertical)    ", s4);

  bool round_trip =
      RestoreHorizontal(m3.value()).size() == people.size() &&
      RestoreVertical(m4.value()).size() == people.size();
  std::cout << "round trips restore all tuples: "
            << (round_trip ? "yes" : "NO") << "\n\n";

  // --- PASCAL export (the |X| >= 2 workaround path) --------------------------
  std::vector<std::pair<AttrId, Domain>> common = {
      {id, Domain::Any(ValueType::kInt)},
      {sex, person.attrs[1].second},
      {marital, person.attrs[2].second}};
  std::vector<std::pair<AttrId, Domain>> variant = {
      {maiden, Domain::Any(ValueType::kString)}};
  auto pascal = EmitPascalRecord(&catalog, "person", common, variant,
                                 mapped.value().eads[0]);
  if (!pascal.ok()) {
    std::cerr << pascal.status() << "\n";
    return 1;
  }
  std::cout << "PASCAL export (artificial tag: "
            << (pascal.value().used_artificial_tag ? "yes" : "no") << "):\n"
            << pascal.value().source;
  std::cout << "\nAF2 validity proof that the workaround preserves "
               "X --attr--> Y:\n"
            << pascal.value().validity_proof.ToString();
  return 0;
}
