// Quickstart: flexible schemes, attribute dependencies, and type checking in
// ~80 lines. Builds the paper's Example-1 scheme and Example-2 EAD, inserts
// heterogeneous tuples, and shows the value-based check a scheme alone
// cannot perform.
//
// Run: ./quickstart

#include <iostream>

#include "core/flexible_relation.h"
#include "workload/paper_examples.h"

using namespace flexrel;

int main() {
  // --- 1. Flexible schemes: one generic constructor -----------------------
  AttrCatalog catalog;
  auto scheme = MakeExample1Scheme(&catalog);
  if (!scheme.ok()) {
    std::cerr << scheme.status() << "\n";
    return 1;
  }
  std::cout << "Example 1 scheme:  " << scheme.value().ToString(catalog)
            << "\n";
  std::cout << "|dnf(FS)| = " << scheme.value().DnfCount()
            << " admissible attribute combinations:\n";
  auto dnf = scheme.value().Dnf();
  for (const AttrSet& combo : dnf.value()) {
    std::cout << "   " << combo.ToString(catalog) << "\n";
  }

  // --- 2. Attribute dependencies: the jobtype example ----------------------
  auto ex = MakeJobtypeExample();
  if (!ex.ok()) {
    std::cerr << ex.status() << "\n";
    return 1;
  }
  JobtypeExample& world = *ex.value();
  std::cout << "\nExample 2 EAD:\n  " << world.ead.ToString(world.catalog)
            << "\n";

  // --- 3. Heterogeneous, strongly typed inserts ---------------------------
  std::cout << "\nEmployee relation after three typed inserts:\n"
            << world.relation.ToString(world.catalog);

  // A well-typed secretary is accepted.
  Status ok = world.relation.Insert(world.MakeSecretary(5100, 290));
  std::cout << "insert well-typed secretary:  " << ok << "\n";

  // The Section-3.1 adversary: right shape, wrong values.
  Tuple bad = world.MakeMistypedSalesman();
  std::cout << "\nadversary tuple: " << bad.ToString(world.catalog) << "\n";
  std::cout << "scheme admits its attribute combination: "
            << (world.relation.checker()->CheckShape(bad).ok() ? "yes" : "no")
            << "\n";
  std::cout << "insert rejected by the EAD:\n  "
            << world.relation.Insert(bad) << "\n";

  // --- 4. Type-changing update (footnote 3) --------------------------------
  Tuple fill;
  fill.Set(world.products, Value::Int(2));
  fill.Set(world.sales_commission, Value::Int(9));
  auto delta = world.relation.Update(0, world.jobtype,
                                     Value::Str("salesman"), fill);
  if (delta.ok()) {
    std::cout << "\nre-classified row 0 as salesman; type delta: +"
              << delta.value().to_add.ToString(world.catalog) << "  -"
              << delta.value().to_remove.ToString(world.catalog) << "\n";
  }
  std::cout << "\nall declared dependencies still hold: "
            << (world.relation.SatisfiesDeclaredDeps() ? "yes" : "no") << "\n";
  return 0;
}
