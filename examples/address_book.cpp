// Address book: the Section-1 motivating example. Purely *existence-based*
// variant structure — a disjoint union (post-office box vs street), an
// optional part (house number), and a non-disjoint union (1..3 electronic
// contact attributes) — all expressed with the single generic constructor,
// then queried with existence guards.
//
// Run: ./address_book [rows]

#include <cstdlib>
#include <iostream>

#include "algebra/evaluate.h"
#include "workload/generator.h"

using namespace flexrel;

int main(int argc, char** argv) {
  size_t rows = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 2000;
  auto workload = MakeAddressWorkload(rows, 7);
  if (!workload.ok()) {
    std::cerr << workload.status() << "\n";
    return 1;
  }
  AddressWorkload& w = *workload.value();

  std::cout << "address scheme:\n  " << w.scheme.ToString(w.catalog) << "\n";
  std::cout << "admissible attribute combinations: " << w.scheme.DnfCount()
            << "\n";
  std::cout << "rows: " << w.relation.size() << "\n\n";

  // Shape census via existence guards.
  struct Count {
    const char* label;
    ExprPtr guard;
    size_t n = 0;
  };
  std::vector<Count> counts;
  counts.push_back({"post-office box addresses", Expr::Exists(w.pobox)});
  counts.push_back({"street addresses", Expr::Exists(w.street)});
  counts.push_back(
      {"street addresses without house number",
       Expr::And(Expr::Exists(w.street), Expr::Not(Expr::Exists(w.houseno)))});
  counts.push_back({"reachable by FAX", Expr::Exists(w.fax)});
  counts.push_back(
      {"tel and email but no FAX",
       Expr::AndAll({Expr::Exists(w.tel), Expr::Exists(w.email),
                     Expr::Not(Expr::Exists(w.fax))})});
  for (Count& c : counts) {
    auto out = Evaluate(Plan::Select(Plan::Scan(&w.relation), c.guard));
    if (out.ok()) c.n = out.value().size();
    std::cout << "  " << c.label << ": " << c.n << "\n";
  }

  // The disjoint union is airtight: no tuple has both pobox and street.
  auto both = Evaluate(Plan::Select(
      Plan::Scan(&w.relation),
      Expr::And(Expr::Exists(w.pobox), Expr::Exists(w.street))));
  std::cout << "  addresses with BOTH pobox and street: "
            << (both.ok() ? both.value().size() : 0)
            << " (the scheme forbids it)\n";

  // Ill-shaped inserts are rejected by the scheme itself — no EAD needed for
  // existence-based constraints.
  Tuple bad;
  bad.Set(w.zip, Value::Int(89069));
  bad.Set(w.town, Value::Str("Ulm"));
  bad.Set(w.pobox, Value::Int(1234));
  bad.Set(w.street, Value::Str("Universitaet"));  // both variants!
  bad.Set(w.tel, Value::Int(5021234));
  std::cout << "\ninsert with both pobox and street:\n  "
            << w.relation.Insert(bad) << "\n";

  Tuple no_contact;
  no_contact.Set(w.zip, Value::Int(89069));
  no_contact.Set(w.town, Value::Str("Ulm"));
  no_contact.Set(w.street, Value::Str("Universitaet"));
  std::cout << "insert without any electronic contact:\n  "
            << w.relation.Insert(no_contact) << "\n";
  return 0;
}
