// Shared benchmark main: google benchmark's stock main plus the telemetry
// plumbing the perf harness needs. Linked into every bench/* binary instead
// of benchmark::benchmark_main.
//
// Extra flag (consumed before benchmark::Initialize, which rejects flags it
// does not know):
//
//   --metrics_json=PATH   enable the engine telemetry plane for the run and
//                         write Registry::Global().ToJson() to PATH after
//                         the benchmarks finish. This is the unified stats
//                         channel scripts/perf_smoke.py ingests; without the
//                         flag telemetry stays disabled and the binary
//                         behaves exactly like a benchmark_main build.
//
//   --wall_timeout_s=N    hard wall-clock ceiling for the whole run. A
//                         watchdog thread aborts the process (exit 124,
//                         after printing which binary hung and the limit)
//                         once N seconds pass without the benchmarks
//                         finishing — a hung benchmark fails CI loudly and
//                         promptly instead of eating the job's global
//                         timeout. Off by default.

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include <benchmark/benchmark.h>

#include "telemetry/telemetry.h"

namespace {

// Watchdog state: the main thread signals completion; the watchdog thread
// waits on it with a deadline and kills the process on expiry. The thread
// is detached — on the happy path it wakes, sees `done`, and exits while
// main is already shutting down.
std::mutex g_watchdog_mu;
std::condition_variable g_watchdog_cv;
bool g_watchdog_done = false;

void StartWatchdog(const char* binary, long seconds) {
  std::thread([binary, seconds] {
    std::unique_lock<std::mutex> lock(g_watchdog_mu);
    if (g_watchdog_cv.wait_for(lock, std::chrono::seconds(seconds),
                               [] { return g_watchdog_done; })) {
      return;
    }
    std::fprintf(stderr,
                 "%s: benchmark run exceeded --wall_timeout_s=%ld; "
                 "aborting so CI fails fast instead of hanging\n",
                 binary, seconds);
    std::fflush(stderr);
    std::_Exit(124);  // the conventional timeout exit code
  }).detach();
}

void StopWatchdog() {
  {
    std::lock_guard<std::mutex> lock(g_watchdog_mu);
    g_watchdog_done = true;
  }
  g_watchdog_cv.notify_all();
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path;
  long wall_timeout_s = 0;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr char kFlag[] = "--metrics_json=";
    constexpr char kTimeoutFlag[] = "--wall_timeout_s=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      metrics_path = argv[i] + sizeof(kFlag) - 1;
      if (metrics_path.empty()) {
        std::fprintf(stderr,
                     "%s: --metrics_json requires a path "
                     "(usage: --metrics_json=PATH)\n",
                     argv[0]);
        return 1;
      }
    } else if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 2) == 0 &&
               argv[i][sizeof(kFlag) - 2] == '\0') {
      // A bare --metrics_json used to fall through to google benchmark,
      // which rejects it — or worse, a later positional PATH was silently
      // ignored and the run produced no metrics dump. Fail fast instead.
      std::fprintf(stderr,
                   "%s: --metrics_json requires a path "
                   "(usage: --metrics_json=PATH)\n",
                   argv[0]);
      return 1;
    } else if (std::strncmp(argv[i], kTimeoutFlag,
                            sizeof(kTimeoutFlag) - 1) == 0) {
      char* end = nullptr;
      wall_timeout_s = std::strtol(argv[i] + sizeof(kTimeoutFlag) - 1, &end,
                                   10);
      if (end == nullptr || *end != '\0' || wall_timeout_s <= 0) {
        std::fprintf(stderr,
                     "%s: --wall_timeout_s requires a positive integer "
                     "(usage: --wall_timeout_s=SECONDS)\n",
                     argv[0]);
        return 1;
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  if (!metrics_path.empty()) flexrel::telemetry::Enable();
  if (wall_timeout_s > 0) StartWatchdog(argv[0], wall_timeout_s);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (wall_timeout_s > 0) StopWatchdog();

  if (!metrics_path.empty()) {
    const std::string json = flexrel::telemetry::Registry::Global().ToJson();
    std::FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "failed to open %s for the metrics dump\n",
                   metrics_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return 0;
}
