// Shared benchmark main: google benchmark's stock main plus the telemetry
// plumbing the perf harness needs. Linked into every bench/* binary instead
// of benchmark::benchmark_main.
//
// Extra flag (consumed before benchmark::Initialize, which rejects flags it
// does not know):
//
//   --metrics_json=PATH   enable the engine telemetry plane for the run and
//                         write Registry::Global().ToJson() to PATH after
//                         the benchmarks finish. This is the unified stats
//                         channel scripts/perf_smoke.py ingests; without the
//                         flag telemetry stays disabled and the binary
//                         behaves exactly like a benchmark_main build.

#include <cstdio>
#include <cstring>
#include <string>

#include <benchmark/benchmark.h>

#include "telemetry/telemetry.h"

int main(int argc, char** argv) {
  std::string metrics_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr char kFlag[] = "--metrics_json=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      metrics_path = argv[i] + sizeof(kFlag) - 1;
      if (metrics_path.empty()) {
        std::fprintf(stderr,
                     "%s: --metrics_json requires a path "
                     "(usage: --metrics_json=PATH)\n",
                     argv[0]);
        return 1;
      }
    } else if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 2) == 0 &&
               argv[i][sizeof(kFlag) - 2] == '\0') {
      // A bare --metrics_json used to fall through to google benchmark,
      // which rejects it — or worse, a later positional PATH was silently
      // ignored and the run produced no metrics dump. Fail fast instead.
      std::fprintf(stderr,
                   "%s: --metrics_json requires a path "
                   "(usage: --metrics_json=PATH)\n",
                   argv[0]);
      return 1;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  if (!metrics_path.empty()) flexrel::telemetry::Enable();

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!metrics_path.empty()) {
    const std::string json = flexrel::telemetry::Registry::Global().ToJson();
    std::FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "failed to open %s for the metrics dump\n",
                   metrics_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return 0;
}
