// Experiment E5 — excluded-variant pruning (Section 3.1.2, qualified
// relations: "unnecessary joins with variants that are known to be
// excluded").
//
// Setup: an employee database vertically decomposed along the jobtype EAD
// (master + one relation per variant). Query: restore-and-select for a fixed
// jobtype. The unpruned plan joins every variant relation; the pruned plan
// consults the EAD's consistent-variant analysis and joins only those.
// Shape: pruned work ~ 1/#variants of the full restore.

#include <benchmark/benchmark.h>

#include "algebra/evaluate.h"
#include "decomposition/decomposition.h"
#include "optimizer/guard_analysis.h"
#include "optimizer/plan_rewrite.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

struct PruneSetup {
  std::unique_ptr<EmployeeWorkload> w;
  VerticalDecomposition parts;
  FlexibleRelation master_fr;
  std::vector<FlexibleRelation> variant_frs;
  ExprPtr selection;
  std::vector<size_t> consistent;
};

PruneSetup MakeSetup(size_t variants, size_t rows) {
  PruneSetup s;
  EmployeeConfig config;
  config.num_variants = variants;
  config.attrs_per_variant = 2;
  config.rows = rows;
  config.seed = 4242;
  s.w = std::move(MakeEmployeeWorkload(config)).value();
  s.parts = std::move(TranslateVertical(s.w->relation, s.w->eads[0],
                                        AttrSet::Of(s.w->id_attr)))
                .value();
  s.master_fr = FlexibleRelation::Derived("master", DependencySet());
  for (const Tuple& t : s.parts.master.rows()) s.master_fr.InsertUnchecked(t);
  for (const Relation& r : s.parts.variant_relations) {
    FlexibleRelation fr = FlexibleRelation::Derived(r.name(), DependencySet());
    for (const Tuple& t : r.rows()) fr.InsertUnchecked(t);
    s.variant_frs.push_back(std::move(fr));
  }
  s.selection = Expr::Eq(s.w->jobtype_attr, s.w->jobtype_values[0]);
  VariantAnalysis analysis =
      AnalyzeVariants(ExtractConstraints(s.selection), s.w->eads[0]);
  s.consistent = analysis.consistent_variants;
  return s;
}

PlanPtr RestorePlan(const PruneSetup& s, const std::vector<size_t>& variants) {
  // σ(selection) over master, then outer-union of the per-variant joins.
  PlanPtr selected_master =
      Plan::Select(Plan::Scan(&s.master_fr), s.selection);
  std::vector<PlanPtr> branches;
  for (size_t v : variants) {
    branches.push_back(
        Plan::NaturalJoin(selected_master, Plan::Scan(&s.variant_frs[v])));
  }
  return Plan::OuterUnion(std::move(branches));
}

void RunRestore(benchmark::State& state, size_t variants, size_t rows,
                bool pruned) {
  PruneSetup s = MakeSetup(variants, rows);
  std::vector<size_t> all;
  for (size_t v = 0; v < s.variant_frs.size(); ++v) all.push_back(v);
  PlanPtr plan = RestorePlan(s, pruned ? s.consistent : all);
  EvalStats total;
  size_t result_rows = 0;
  for (auto _ : state) {
    EvalStats stats;
    auto out = Evaluate(plan, &stats);
    benchmark::DoNotOptimize(out);
    result_rows = out.ok() ? out.value().size() : 0;
    total += stats;
  }
  state.counters["variants_joined"] =
      static_cast<double>(pruned ? s.consistent.size() : all.size());
  state.counters["join_probes_per_iter"] =
      static_cast<double>(total.join_probes) /
      static_cast<double>(std::max<size_t>(state.iterations(), 1));
  state.counters["result_rows"] = static_cast<double>(result_rows);
}

void BM_RestoreAllVariants(benchmark::State& state) {
  RunRestore(state, static_cast<size_t>(state.range(0)),
             static_cast<size_t>(state.range(1)), /*pruned=*/false);
}
BENCHMARK(BM_RestoreAllVariants)
    ->Args({3, 1000})
    ->Args({8, 1000})
    ->Args({16, 1000})
    ->Args({32, 1000});

void BM_RestorePrunedVariants(benchmark::State& state) {
  RunRestore(state, static_cast<size_t>(state.range(0)),
             static_cast<size_t>(state.range(1)), /*pruned=*/true);
}
BENCHMARK(BM_RestorePrunedVariants)
    ->Args({3, 1000})
    ->Args({8, 1000})
    ->Args({16, 1000})
    ->Args({32, 1000});

void BM_RestoreAutoOptimized(benchmark::State& state) {
  // The generic rewriter (OptimizePlan) discovers the pruning on its own:
  // σ[jobtype=v](∪ᵢ master ⋈ variantᵢ) → the single consistent branch.
  PruneSetup s = MakeSetup(static_cast<size_t>(state.range(0)),
                           static_cast<size_t>(state.range(1)));
  std::vector<PlanPtr> branches;
  for (auto& fr : s.variant_frs) {
    branches.push_back(
        Plan::NaturalJoin(Plan::Scan(&s.master_fr), Plan::Scan(&fr)));
  }
  PlanPtr naive = Plan::Select(Plan::OuterUnion(std::move(branches)),
                               s.selection);
  RewriteReport report;
  PlanPtr optimized = OptimizePlan(naive, {s.w->eads[0]}, &report);
  EvalStats total;
  for (auto _ : state) {
    EvalStats stats;
    auto out = Evaluate(optimized, &stats);
    benchmark::DoNotOptimize(out);
    total += stats;
  }
  state.counters["branches_pruned"] =
      static_cast<double>(report.branches_pruned);
  state.counters["join_probes_per_iter"] =
      static_cast<double>(total.join_probes) /
      static_cast<double>(std::max<size_t>(state.iterations(), 1));
}
BENCHMARK(BM_RestoreAutoOptimized)
    ->Args({3, 1000})
    ->Args({8, 1000})
    ->Args({16, 1000})
    ->Args({32, 1000});

void BM_OptimizePlanCost(benchmark::State& state) {
  PruneSetup s = MakeSetup(static_cast<size_t>(state.range(0)), 64);
  std::vector<PlanPtr> branches;
  for (auto& fr : s.variant_frs) {
    branches.push_back(
        Plan::NaturalJoin(Plan::Scan(&s.master_fr), Plan::Scan(&fr)));
  }
  PlanPtr naive = Plan::Select(Plan::OuterUnion(std::move(branches)),
                               s.selection);
  for (auto _ : state) {
    PlanPtr optimized = OptimizePlan(naive, {s.w->eads[0]});
    benchmark::DoNotOptimize(optimized);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_OptimizePlanCost)->Arg(3)->Arg(16)->Arg(64);

// --- Naive vs PLI join (the evaluator's accelerated path) -----------------
//
// A flat people ⋈ bonus join sharing one attribute (id). The naive path
// probes every tuple pair (n·m); the engine path buckets by shared-attribute
// signature and probes only cluster-compatible pairs (~|result|). Recorded
// into BENCH_eval.json: join_probes_per_iter shrinks by orders of magnitude
// and wall-clock follows.

constexpr AttrId kBenchId = 9001;
constexpr AttrId kBenchJob = 9002;
constexpr AttrId kBenchSalary = 9003;
constexpr AttrId kBenchAmount = 9004;

std::pair<FlexibleRelation, FlexibleRelation> MakeJoinInputs(
    size_t left_rows, size_t right_rows) {
  Rng rng(20260730);
  FlexibleRelation left = FlexibleRelation::Derived("people", DependencySet());
  for (size_t i = 0; i < left_rows; ++i) {
    Tuple t;
    t.Set(kBenchId, Value::Int(static_cast<int64_t>(i)));
    t.Set(kBenchJob, Value::Int(static_cast<int64_t>(i % 3)));
    t.Set(kBenchSalary, Value::Int(rng.UniformInt(1000, 9000)));
    left.InsertUnchecked(std::move(t));
  }
  FlexibleRelation right = FlexibleRelation::Derived("bonus", DependencySet());
  for (size_t j = 0; j < right_rows; ++j) {
    Tuple t;
    t.Set(kBenchId,
          Value::Int(rng.UniformInt(0, static_cast<int64_t>(left_rows) - 1)));
    t.Set(kBenchAmount, Value::Int(static_cast<int64_t>(j)));
    right.InsertUnchecked(std::move(t));
  }
  return {std::move(left), std::move(right)};
}

void RunPairJoin(benchmark::State& state, bool use_engine,
                 bool use_codes = true) {
  auto [left, right] =
      MakeJoinInputs(static_cast<size_t>(state.range(0)), 1000);
  PlanPtr plan = Plan::NaturalJoin(Plan::Scan(&left), Plan::Scan(&right));
  EvalOptions options;
  options.use_engine = use_engine;
  options.use_codes = use_codes;
  EvalStats total;
  size_t result_rows = 0;
  for (auto _ : state) {
    EvalStats stats;
    auto out = Evaluate(plan, options, &stats);
    benchmark::DoNotOptimize(out);
    result_rows = out.ok() ? out.value().size() : 0;
    total += stats;
  }
  state.counters["join_probes_per_iter"] =
      static_cast<double>(total.join_probes) /
      static_cast<double>(std::max<size_t>(state.iterations(), 1));
  state.counters["result_rows"] = static_cast<double>(result_rows);
}

void BM_PairJoinNaive(benchmark::State& state) {
  RunPairJoin(state, /*use_engine=*/false);
}
BENCHMARK(BM_PairJoinNaive)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_PairJoinPli(benchmark::State& state) {
  RunPairJoin(state, /*use_engine=*/true);
}
BENCHMARK(BM_PairJoinPli)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

// The hashed join on the value-keyed oracle (EvalOptions::use_codes =
// false): identical signature grouping and probe counts, but sub-index
// keys are Value projections hashed per probe where the default
// (BM_PairJoinPli) compares per-join interned code spans. perf_smoke.py
// gates coded ≤ value-keyed at 10000.
void BM_PairJoinValueKeyed(benchmark::State& state) {
  RunPairJoin(state, /*use_engine=*/true, /*use_codes=*/false);
}
BENCHMARK(BM_PairJoinValueKeyed)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_VariantAnalysisCost(benchmark::State& state) {
  // The pruning decision itself must be cheap (it runs per query).
  PruneSetup s = MakeSetup(static_cast<size_t>(state.range(0)), 16);
  ConstraintMap constraints = ExtractConstraints(s.selection);
  for (auto _ : state) {
    VariantAnalysis a = AnalyzeVariants(constraints, s.w->eads[0]);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_VariantAnalysisCost)->Arg(3)->Arg(32)->Arg(128);

}  // namespace
}  // namespace flexrel
