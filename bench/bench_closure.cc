// Experiment E3 (+ E10's AF2 path) — implication via the axiom systems.
//
// Regenerates: the polynomial axiom-system closure versus the semantic
// (model-building) route. Both answer "does Σ imply X --> Y?"; the closure
// is the operational win the soundness/completeness theorems buy.

#include <benchmark/benchmark.h>

#include "util/string_util.h"
#include "core/implication.h"
#include "core/witness.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

struct Setup {
  AttrSet universe;
  DependencySet sigma;
  std::vector<AttrDep> targets;
};

Setup MakeSetup(size_t universe_size, size_t deps, uint64_t seed) {
  Setup s;
  Rng rng(seed);
  for (AttrId a = 0; a < universe_size; ++a) s.universe.Insert(a);
  s.sigma = RandomDependencies(s.universe, &rng, deps / 2, deps - deps / 2);
  for (int i = 0; i < 64; ++i) {
    std::vector<AttrId> lhs, rhs;
    for (AttrId a : s.universe) {
      if (rng.Bernoulli(0.3)) lhs.push_back(a);
      if (rng.Bernoulli(0.3)) rhs.push_back(a);
    }
    s.targets.push_back(
        AttrDep{AttrSet::FromIds(lhs), AttrSet::FromIds(rhs)});
  }
  return s;
}

void BM_AttrClosure(benchmark::State& state) {
  Setup s = MakeSetup(static_cast<size_t>(state.range(0)),
                      static_cast<size_t>(state.range(1)), 5);
  size_t i = 0;
  for (auto _ : state) {
    AttrSet c = AttrClosure(s.targets[i++ & 63].lhs, s.sigma,
                            AxiomSystem::kCombined);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AttrClosure)
    ->Args({8, 4})
    ->Args({16, 16})
    ->Args({32, 32})
    ->Args({64, 64})
    ->Args({128, 128});

void BM_ImplicationViaClosure(benchmark::State& state) {
  Setup s = MakeSetup(static_cast<size_t>(state.range(0)),
                      static_cast<size_t>(state.range(1)), 7);
  size_t i = 0;
  size_t implied = 0;
  for (auto _ : state) {
    if (Implies(s.sigma, s.targets[i++ & 63], AxiomSystem::kCombined)) {
      ++implied;
    }
  }
  benchmark::DoNotOptimize(implied);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ImplicationViaClosure)->Args({16, 16})->Args({64, 64});

void BM_ImplicationViaWitnessModel(benchmark::State& state) {
  // The semantic route: build the two-tuple witness, then model-check the
  // target (what one would do without Theorem 4.2).
  Setup s = MakeSetup(static_cast<size_t>(state.range(0)),
                      static_cast<size_t>(state.range(1)), 7);
  size_t i = 0;
  size_t refuted = 0;
  for (auto _ : state) {
    if (WitnessRefutesAd(s.universe, s.sigma, s.targets[i++ & 63])) {
      ++refuted;
    }
  }
  benchmark::DoNotOptimize(refuted);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ImplicationViaWitnessModel)->Args({16, 16})->Args({64, 64});

void BM_DeriveProof(benchmark::State& state) {
  // Constructive derivations (Example-4 style traces) for implied targets.
  AttrCatalog catalog;
  Setup s = MakeSetup(16, 16, 11);
  for (AttrId a : s.universe) catalog.Intern(StrCat("a", a));
  // Keep only implied targets (closures of declared LHSs).
  std::vector<AttrDep> implied;
  for (const AttrDep& ad : s.sigma.ads()) {
    implied.push_back(AttrDep{
        ad.lhs, AttrClosure(ad.lhs, s.sigma, AxiomSystem::kCombined)});
  }
  if (implied.empty()) {
    state.SkipWithError("no implied targets generated");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    auto d = DeriveAttrDep(catalog, s.sigma, implied[i++ % implied.size()],
                           AxiomSystem::kCombined);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DeriveProof);

void BM_Af2WorkaroundValidation(benchmark::State& state) {
  // E10: validate the PASCAL artificial-determinant replacement
  // {X --func--> A, A --attr--> Y} ⊢ X --attr--> Y for growing |X|.
  size_t x_size = static_cast<size_t>(state.range(0));
  AttrCatalog catalog;
  AttrSet x;
  for (AttrId a = 0; a < x_size; ++a) {
    catalog.Intern(StrCat("x", a));
    x.Insert(a);
  }
  AttrId tag = catalog.Intern("tag");
  AttrSet y;
  for (AttrId a = 100; a < 110; ++a) y.Insert(a);
  DependencySet sigma;
  sigma.AddFd(FuncDep{x, AttrSet::Of(tag)});
  sigma.AddAd(AttrDep{AttrSet::Of(tag), y});
  AttrDep original{x, y};
  for (auto _ : state) {
    bool ok = Implies(sigma, original, AxiomSystem::kCombined);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Af2WorkaroundValidation)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace flexrel
