// Experiment E2 — value-based type checking (Section 3.1, Example 2).
//
// Regenerates the paper's qualitative claim: flexible schemes alone accept
// tuples whose attribute combination is admissible but whose values violate
// the variant pairing; only EAD checking catches them. Series:
//   - shape-only throughput (the baseline every scheme-based model pays),
//   - full EAD checking throughput (the cost of the stronger guarantee),
//   - detection counters on a mixed valid/invalid stream.

#include <benchmark/benchmark.h>

#include "core/type_check.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

std::unique_ptr<EmployeeWorkload> Make(size_t variants, size_t rows,
                                       double invalid) {
  EmployeeConfig config;
  config.num_variants = variants;
  config.attrs_per_variant = 2;
  config.num_common_attrs = 2;
  config.rows = rows;
  config.invalid_fraction = invalid;
  config.seed = 2024;
  auto w = MakeEmployeeWorkload(config);
  return std::move(w).value();
}

void BM_ShapeCheckOnly(benchmark::State& state) {
  auto w = Make(static_cast<size_t>(state.range(0)), 512, 0.0);
  const TypeChecker* checker = w->relation.checker();
  size_t i = 0;
  const auto& rows = w->relation.rows();
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker->CheckShape(rows[i++ % rows.size()]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ShapeCheckOnly)->RangeMultiplier(4)->Range(3, 192);

void BM_FullCheck(benchmark::State& state) {
  auto w = Make(static_cast<size_t>(state.range(0)), 512, 0.0);
  const TypeChecker* checker = w->relation.checker();
  size_t i = 0;
  const auto& rows = w->relation.rows();
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker->Check(rows[i++ % rows.size()]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FullCheck)->RangeMultiplier(4)->Range(3, 192);

void BM_DetectionRates(benchmark::State& state) {
  // The headline table: scheme-only vs EAD detection of value-based
  // violations over a 50/50 valid/invalid stream.
  auto w = Make(static_cast<size_t>(state.range(0)), 256, 1.0);
  const TypeChecker* checker = w->relation.checker();
  std::vector<std::pair<const Tuple*, bool>> stream;  // (tuple, is_valid)
  for (const Tuple& t : w->relation.rows()) stream.push_back({&t, true});
  for (const Tuple& t : w->invalid_tuples) stream.push_back({&t, false});

  size_t shape_caught = 0, ead_caught = 0, invalid_total = 0;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [tuple, is_valid] = stream[i++ % stream.size()];
    bool shape_ok = checker->CheckShape(*tuple).ok();
    bool full_ok = shape_ok && checker->CheckDependencies(*tuple).ok();
    if (!is_valid) {
      ++invalid_total;
      if (!shape_ok) ++shape_caught;
      if (!full_ok) ++ead_caught;
    }
    benchmark::DoNotOptimize(full_ok);
  }
  state.counters["invalid_seen"] = static_cast<double>(invalid_total);
  state.counters["caught_by_shape"] = static_cast<double>(shape_caught);
  state.counters["caught_with_EAD"] = static_cast<double>(ead_caught);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DetectionRates)->Arg(3)->Arg(12)->Arg(48);

void BM_InsertThroughput(benchmark::State& state) {
  // End-to-end inserts (domains + shape + EADs + duplicate rejection).
  size_t variants = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto w = Make(variants, 1, 0.0);
    Rng rng(7);
    std::vector<Tuple> batch;
    for (int i = 0; i < 1000; ++i) batch.push_back(RandomEmployee(*w, &rng));
    state.ResumeTiming();
    size_t accepted = 0;
    for (Tuple& t : batch) {
      if (w->relation.Insert(t).ok()) ++accepted;
    }
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_InsertThroughput)->Arg(3)->Arg(24);

void BM_UpdateWithTypeChange(benchmark::State& state) {
  // Footnote-3 updates: flipping the determinant triggers delta computation
  // plus a full re-check.
  auto w = Make(4, 256, 0.0);
  Rng rng(11);
  const ExplicitAD& ead = w->eads[0];
  size_t i = 0;
  for (auto _ : state) {
    size_t row = i++ % w->relation.size();
    size_t variant = rng.Index(4);
    Tuple fill;
    for (AttrId a : ead.variants()[variant].then) {
      fill.Set(a, Value::Int(1));
    }
    auto delta = w->relation.Update(row, w->jobtype_attr,
                                    w->jobtype_values[variant], fill);
    benchmark::DoNotOptimize(delta);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_UpdateWithTypeChange);

}  // namespace
}  // namespace flexrel

