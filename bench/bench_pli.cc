// Partition-engine microbenchmarks: stripped-partition construction and
// intersection throughput, plus the cache's level-sweep behaviour. These are
// the primitives whose cost replaces per-candidate instance re-hashing in
// dependency discovery (see bench_discovery.cc for the end-to-end compare).

#include <benchmark/benchmark.h>

#include "engine/pli_cache.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

// Heterogeneous employee-shaped rows without relation/type-check overhead.
std::vector<Tuple> MakeRows(size_t n, uint64_t seed) {
  EmployeeConfig config;
  config.num_variants = 4;
  config.attrs_per_variant = 2;
  config.rows = 0;  // tuples are drawn below, bypassing insert checks
  config.seed = seed;
  auto w = MakeEmployeeWorkload(config);
  Rng rng(seed + 1);
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(RandomEmployee(*w.value(), &rng));
  }
  return rows;
}

void BM_PliBuildSingleAttr(benchmark::State& state) {
  std::vector<Tuple> rows = MakeRows(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    Pli pli = Pli::Build(rows, AttrId{1});  // jobtype: few fat clusters
    benchmark::DoNotOptimize(pli);
  }
  state.counters["partition_bytes"] = static_cast<double>(
      Pli::Build(rows, AttrId{1}).MemoryBytes());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PliBuildSingleAttr)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PliBuildPairDirect(benchmark::State& state) {
  // The cost the engine avoids: hashing two-attribute projections directly.
  std::vector<Tuple> rows = MakeRows(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    Pli pli = Pli::Build(rows, AttrSet{1, 2});
    benchmark::DoNotOptimize(pli);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PliBuildPairDirect)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PliIntersect(benchmark::State& state) {
  // What the engine does instead: integer-valued refinement of cached
  // single-attribute partitions.
  std::vector<Tuple> rows = MakeRows(static_cast<size_t>(state.range(0)), 5);
  Pli a = Pli::Build(rows, AttrId{1});
  Pli b = Pli::Build(rows, AttrId{2});
  for (auto _ : state) {
    Pli product = a.Intersect(b);
    benchmark::DoNotOptimize(product);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PliIntersect)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PliCacheLevelSweep(benchmark::State& state) {
  // A full |X| = 2 lattice level through a cold cache: every pair partition
  // assembled out of pinned single-attribute partitions.
  std::vector<Tuple> rows = MakeRows(static_cast<size_t>(state.range(0)), 5);
  AttrSet universe;
  for (const Tuple& t : rows) universe = universe.Union(t.attrs());
  const std::vector<AttrId>& ids = universe.ids();
  for (auto _ : state) {
    PliCache cache(&rows);
    for (size_t i = 0; i < ids.size(); ++i) {
      for (size_t j = i + 1; j < ids.size(); ++j) {
        benchmark::DoNotOptimize(cache.Get(AttrSet{ids[i], ids[j]}));
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PliCacheLevelSweep)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace flexrel
