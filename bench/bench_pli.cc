// Partition-engine microbenchmarks: stripped-partition construction and
// intersection throughput, the cache's level-sweep behaviour, and the
// mutate-then-query sweep comparing incremental cluster patching
// (PliCache::OnInsert/OnUpdate) against the historical
// rebuild-after-invalidate mode (PliCacheOptions::incremental = false).
// These are the primitives whose cost replaces per-candidate instance
// re-hashing in dependency discovery (see bench_discovery.cc for the
// end-to-end compare); the sweep's results are recorded in
// BENCH_incremental.json.

#include <benchmark/benchmark.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "engine/pli_cache.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

// Heterogeneous employee-shaped rows without relation/type-check overhead.
std::vector<Tuple> MakeRows(size_t n, uint64_t seed) {
  EmployeeConfig config;
  config.num_variants = 4;
  config.attrs_per_variant = 2;
  config.rows = 0;  // tuples are drawn below, bypassing insert checks
  config.seed = seed;
  auto w = MakeEmployeeWorkload(config);
  Rng rng(seed + 1);
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(RandomEmployee(*w.value(), &rng));
  }
  return rows;
}

void BM_PliBuildSingleAttr(benchmark::State& state) {
  std::vector<Tuple> rows = MakeRows(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    Pli pli = Pli::Build(rows, AttrId{1});  // jobtype: few fat clusters
    benchmark::DoNotOptimize(pli);
  }
  state.counters["partition_bytes"] = static_cast<double>(
      Pli::Build(rows, AttrId{1}).MemoryBytes());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PliBuildSingleAttr)->Arg(1000)->Arg(10000)->Arg(100000);

// The coded twin: a counting sort over the prebuilt code column
// (Pli::BuildFromCodes) against BM_PliBuildSingleAttr's per-row Value
// hashing. The column itself is built outside the loop — in steady state
// the cache maintains it incrementally, so partition (re)builds only ever
// pay the counting sort. perf_smoke.py gates coded ≤ value-keyed at 10000.
void BM_PliBuildSingleAttrCoded(benchmark::State& state) {
  std::vector<Tuple> rows = MakeRows(static_cast<size_t>(state.range(0)), 5);
  CodeColumn column = CodeColumn::Build(rows, AttrId{1});
  for (auto _ : state) {
    Pli pli = Pli::BuildFromCodes(column.codes(), column.code_bound());
    benchmark::DoNotOptimize(pli);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PliBuildSingleAttrCoded)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PliBuildPairDirect(benchmark::State& state) {
  // The cost the engine avoids: hashing two-attribute projections directly.
  std::vector<Tuple> rows = MakeRows(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    Pli pli = Pli::Build(rows, AttrSet{1, 2});
    benchmark::DoNotOptimize(pli);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PliBuildPairDirect)->Arg(1000)->Arg(10000)->Arg(100000);

// Integer-valued refinement of cached single-attribute partitions, per
// cluster-storage mode: the CSR arena (default) against the historical
// vector-of-vectors reference it replaced.
void PliIntersectBench(benchmark::State& state, Pli::Storage storage) {
  std::vector<Tuple> rows = MakeRows(static_cast<size_t>(state.range(0)), 5);
  Pli a = Pli::Build(rows, AttrId{1}, storage);
  Pli b = Pli::Build(rows, AttrId{2}, storage);
  PliProbe probe = b.BuildProbe();  // amortized by the cache's probe memo
  for (auto _ : state) {
    Pli product = a.IntersectWithProbe(probe);
    benchmark::DoNotOptimize(product);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
void BM_PliIntersect(benchmark::State& state) {
  PliIntersectBench(state, Pli::Storage::kArena);
}
void BM_PliIntersectReference(benchmark::State& state) {
  PliIntersectBench(state, Pli::Storage::kVectors);
}
BENCHMARK(BM_PliIntersect)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_PliIntersectReference)->Arg(1000)->Arg(10000)->Arg(100000);

// A full |X| = 2 lattice level through a cold cache: every pair partition
// assembled out of pinned single-attribute partitions. The value-keyed
// twin pins PliCacheOptions::use_codes = false. On a cold cache the pair
// must measure at parity: no consumer asked for a code column, so the
// coded plane stays dormant and both modes hash-build their seeds (the
// regression this guards is BuildFor eagerly materializing columns —
// strictly worse than the hash build it replaces). The counting-sort win
// itself is BM_PliBuildSingleAttrCoded's to show.
void PliCacheLevelSweepBench(benchmark::State& state, bool use_codes) {
  std::vector<Tuple> rows = MakeRows(static_cast<size_t>(state.range(0)), 5);
  AttrSet universe;
  for (const Tuple& t : rows) universe = universe.Union(t.attrs());
  const std::vector<AttrId>& ids = universe.ids();
  PliCache::Options options;
  options.use_codes = use_codes;
  for (auto _ : state) {
    PliCache cache(&rows, options);
    for (size_t i = 0; i < ids.size(); ++i) {
      for (size_t j = i + 1; j < ids.size(); ++j) {
        benchmark::DoNotOptimize(cache.Get(AttrSet{ids[i], ids[j]}));
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
void BM_PliCacheLevelSweep(benchmark::State& state) {
  PliCacheLevelSweepBench(state, /*use_codes=*/true);
}
void BM_PliCacheLevelSweepValueKeyed(benchmark::State& state) {
  PliCacheLevelSweepBench(state, /*use_codes=*/false);
}
BENCHMARK(BM_PliCacheLevelSweep)->Arg(1000)->Arg(10000);
BENCHMARK(BM_PliCacheLevelSweepValueKeyed)->Arg(1000)->Arg(10000);

// Dense categorical rows: every attribute present on every row, values in
// [0, spread) — the regime where every lattice-level product carries
// hundreds of clusters and the vector-of-vectors layout pays one heap
// allocation per cluster per intersection.
std::vector<Tuple> MakeDenseRows(size_t n, AttrId num_attrs, int64_t spread,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Tuple t;
    for (AttrId a = 0; a < num_attrs; ++a) {
      t.Set(a, Value::Int(rng.UniformInt(0, spread - 1)));
    }
    rows.push_back(std::move(t));
  }
  return rows;
}

// The discovery-shaped intersection sweep, warm: single-attribute
// partitions and their probes are built once (in real discovery they are
// pinned and amortized over every lattice level) and each iteration
// assembles the full |X| = 2 and |X| = 3 candidate levels by probe-based
// refinement over a dense categorical instance — the allocation-bound work
// the CSR arena exists to accelerate, isolated from the
// storage-independent single-attribute hash builds.
void PliLevelSweepBench(benchmark::State& state, Pli::Storage storage) {
  std::vector<Tuple> rows =
      MakeDenseRows(static_cast<size_t>(state.range(0)), 8, 10, 5);
  std::vector<Pli> singles;
  std::vector<PliProbe> probes;
  for (AttrId id = 0; id < 8; ++id) {
    singles.push_back(Pli::Build(rows, id, storage));
    probes.push_back(singles.back().BuildProbe());
  }
  for (auto _ : state) {
    for (size_t i = 0; i < singles.size(); ++i) {
      for (size_t j = i + 1; j < singles.size(); ++j) {
        Pli pair = singles[i].IntersectWithProbe(probes[j]);
        for (size_t k = j + 1; k < singles.size(); ++k) {
          benchmark::DoNotOptimize(pair.IntersectWithProbe(probes[k]));
        }
        benchmark::DoNotOptimize(pair);
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
void BM_PliLevelSweep(benchmark::State& state) {
  PliLevelSweepBench(state, Pli::Storage::kArena);
}
void BM_PliLevelSweepReference(benchmark::State& state) {
  PliLevelSweepBench(state, Pli::Storage::kVectors);
}
BENCHMARK(BM_PliLevelSweep)->Arg(1000)->Arg(10000);
BENCHMARK(BM_PliLevelSweepReference)->Arg(1000)->Arg(10000);

// ---------------------------------------------------------------------------
// Mutate-then-query: the workload incremental maintenance exists for. Each
// iteration applies `mutations` (state.range(1)) random updates and then
// runs a query mix over the attached cache — a value-index selection shape
// plus single- and two-attribute partition reads. Four maintenance modes:
//
//   Incremental — per-row Update() calls under the default adaptive
//     flush policy (the buffer coalesces the burst, so past
//     batch_threshold the flush group-applies it);
//   Batched     — the same burst staged through one UpdateRows() call;
//   PerRow      — batch_threshold = SIZE_MAX pins the PR 3 per-mutation
//     cluster surgery, the reference the adaptive policy must beat at
//     high mutation ratios;
//   Rebuild     — incremental = false, the drop-everything oracle.
//
// Updates only (no growth), so all modes benchmark the same instance size
// regardless of iteration count.
// ---------------------------------------------------------------------------

constexpr AttrId kJobtype = 1;  // few fat clusters (the selective attribute)
constexpr AttrId kCommon = 2;   // common attribute, medium clusters

enum class MaintenanceMode {
  kAdaptive,      // default options: patch / batch / drop by burst size
  kPinnedPerRow,  // batch_threshold = SIZE_MAX: always per-row patches
  kRebuild,       // incremental = false: drop the cache on every mutation
};

FlexibleRelation RelationOf(const std::vector<Tuple>& rows,
                            MaintenanceMode mode,
                            bool arena_storage = true) {
  FlexibleRelation rel = FlexibleRelation::Derived("bench", DependencySet());
  PliCacheOptions options;
  options.arena_storage = arena_storage;
  // Locked in-place mode: these benches compare the flush-policy arms
  // (coalescing + patch/batch/drop choice), which only exists in its pure
  // form with lazy read-side flushing — COW mode flushes (and pays a
  // structure clone + snapshot publish) on every mutation hook, drowning
  // the policy costs in publication costs for single-row streams. The COW
  // publication axis is measured by BM_SnapshotReadStorm* instead.
  options.cow_reads = false;
  if (mode == MaintenanceMode::kPinnedPerRow) {
    options.batch_threshold = SIZE_MAX;
    options.drop_threshold = SIZE_MAX;
  } else if (mode == MaintenanceMode::kRebuild) {
    options.incremental = false;
  }
  rel.SetPliCacheOptions(options);
  std::vector<Tuple> copy = rows;
  rel.InsertRowsUnchecked(std::move(copy));
  return rel;
}

// The per-round query: touches the structures a selection-plus-join plan
// reads (algebra/evaluate.cc SelectViaIndex and DistinctOn).
void QueryCache(FlexibleRelation* rel) {
  std::shared_ptr<PliCache> cache = rel->pli_cache();
  benchmark::DoNotOptimize(cache->IndexFor(kJobtype));
  benchmark::DoNotOptimize(cache->Get(AttrSet::Of(kJobtype)));
  benchmark::DoNotOptimize(cache->Get(AttrSet{kJobtype, kCommon}));
}

void MutateThenQuery(benchmark::State& state, MaintenanceMode mode,
                     bool staged_batches, bool arena_storage = true) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int mutations = static_cast<int>(state.range(1));
  std::vector<Tuple> rows = MakeRows(n, 5);
  // The pool of legal jobtype values, for cluster-to-cluster moves.
  std::vector<Value> jobtypes;
  {
    std::unordered_set<std::string> seen;
    for (const Tuple& t : rows) {
      if (const Value* v = t.Get(kJobtype)) {
        if (seen.insert(v->as_string()).second) jobtypes.push_back(*v);
      }
    }
  }
  FlexibleRelation rel = RelationOf(rows, mode, arena_storage);
  QueryCache(&rel);  // attach and warm the cache
  Rng rng(99);
  std::vector<FlexibleRelation::UpdateSpec> burst;
  burst.reserve(static_cast<size_t>(mutations));
  for (auto _ : state) {
    burst.clear();
    for (int m = 0; m < mutations; ++m) {
      size_t row = rng.Index(rel.size());
      FlexibleRelation::UpdateSpec spec;
      spec.index = row;
      if (rng.Bernoulli(0.5)) {
        // Move a row between the fat jobtype clusters.
        spec.attr = kJobtype;
        spec.value = jobtypes[rng.Index(jobtypes.size())];
      } else {
        // Re-value a common attribute (medium clusters).
        spec.attr = kCommon;
        spec.value = Value::Int(rng.UniformInt(0, 50));
      }
      burst.push_back(std::move(spec));
    }
    bool ok;
    if (staged_batches) {
      // The whole burst through one transactional UpdateRows call.
      ok = rel.UpdateRows(std::move(burst)).ok();
      burst = {};
    } else {
      // Row-at-a-time mutation API; the cache still buffers and coalesces.
      ok = true;
      for (FlexibleRelation::UpdateSpec& spec : burst) {
        if (!rel.Update(spec.index, spec.attr, std::move(spec.value)).ok()) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) {
      state.SkipWithError("update failed");
      return;
    }
    QueryCache(&rel);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          mutations);
  // Maintenance counters (flush-arm split, probe patches vs. rebuilds) are
  // reported through the telemetry plane: run with --metrics_json=PATH and
  // read engine.pli_cache.* from the dump (the channel perf_smoke ingests).
}

void BM_MutateThenQueryIncremental(benchmark::State& state) {
  MutateThenQuery(state, MaintenanceMode::kAdaptive,
                  /*staged_batches=*/false);
}
void BM_MutateThenQueryBatched(benchmark::State& state) {
  MutateThenQuery(state, MaintenanceMode::kAdaptive, /*staged_batches=*/true);
}
// The same staged bursts over vector-of-vectors clusters: the storage
// reference the arena must beat (perf_smoke hard-fails an inversion).
void BM_MutateThenQueryBatchedReference(benchmark::State& state) {
  MutateThenQuery(state, MaintenanceMode::kAdaptive, /*staged_batches=*/true,
                  /*arena_storage=*/false);
}
void BM_MutateThenQueryPerRow(benchmark::State& state) {
  MutateThenQuery(state, MaintenanceMode::kPinnedPerRow,
                  /*staged_batches=*/false);
}
void BM_MutateThenQueryRebuild(benchmark::State& state) {
  MutateThenQuery(state, MaintenanceMode::kRebuild, /*staged_batches=*/false);
}
// rows × mutation ratio (mutations per query round).
#define FLEXREL_MUTATE_SWEEP(bench)                      \
  BENCHMARK(bench)                                       \
      ->ArgNames({"rows", "muts"})                       \
      ->Args({1000, 1})->Args({1000, 8})->Args({1000, 64})    \
      ->Args({10000, 1})->Args({10000, 8})->Args({10000, 64}) \
      ->Args({100000, 1})->Args({100000, 8})->Args({100000, 64})
FLEXREL_MUTATE_SWEEP(BM_MutateThenQueryIncremental);
FLEXREL_MUTATE_SWEEP(BM_MutateThenQueryBatched);
FLEXREL_MUTATE_SWEEP(BM_MutateThenQueryBatchedReference);
FLEXREL_MUTATE_SWEEP(BM_MutateThenQueryPerRow);
FLEXREL_MUTATE_SWEEP(BM_MutateThenQueryRebuild);
#undef FLEXREL_MUTATE_SWEEP

// The engine-side cost of one batched flush: a 64-update burst staged
// straight into the cache's delta buffer (OnUpdateBatch) and flushed by the
// next read — the value-index splices, the group-applies, the probe
// patches, and the multi-attribute re-intersections, isolated from the
// transactional validation FlexibleRelation layers above them
// (BM_MutateThenQueryBatched measures the full round). The dense instance
// keeps pair/triple partitions cluster-rich, so the burst saturates them
// and every read pays the re-intersections the arena accelerates. Arena vs
// the vector-of-vectors reference; perf_smoke hard-fails an inversion.
void CacheBatchedFlushBench(benchmark::State& state, bool arena) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int mutations = static_cast<int>(state.range(1));
  std::vector<Tuple> rows = MakeDenseRows(n, 8, 10, 5);
  PliCacheOptions options;
  options.arena_storage = arena;
  // Locked mode isolates the flush work itself; COW publication costs are
  // BM_SnapshotReadStorm*'s axis (see RelationOf).
  options.cow_reads = false;
  PliCache cache(&rows, options);
  auto query = [&cache] {
    benchmark::DoNotOptimize(cache.IndexFor(0));
    benchmark::DoNotOptimize(cache.Get(AttrSet::Of(0)));
    benchmark::DoNotOptimize(cache.Get(AttrSet{0, 1}));
    benchmark::DoNotOptimize(cache.Get(AttrSet{0, 2}));
    benchmark::DoNotOptimize(cache.Get(AttrSet{1, 2}));
    benchmark::DoNotOptimize(cache.Get(AttrSet{0, 1, 2}));
    benchmark::DoNotOptimize(cache.Get(AttrSet{1, 2, 3}));
  };
  query();
  Rng rng(99);
  std::vector<std::pair<Pli::RowId, Tuple>> burst;
  burst.reserve(static_cast<size_t>(mutations));
  for (auto _ : state) {
    burst.clear();
    for (int m = 0; m < mutations; ++m) {
      const size_t row = rng.Index(rows.size());
      burst.emplace_back(static_cast<Pli::RowId>(row), rows[row]);
      rows[row].Set(static_cast<AttrId>(rng.Index(3)),
                    Value::Int(rng.UniformInt(0, 9)));
    }
    cache.OnUpdateBatch(std::move(burst));
    burst = {};
    query();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          mutations);
  // Flush/probe maintenance counters live in the telemetry dump
  // (--metrics_json=PATH, engine.pli_cache.* names).
}
void BM_CacheBatchedFlush(benchmark::State& state) {
  CacheBatchedFlushBench(state, /*arena=*/true);
}
void BM_CacheBatchedFlushReference(benchmark::State& state) {
  CacheBatchedFlushBench(state, /*arena=*/false);
}
BENCHMARK(BM_CacheBatchedFlush)
    ->ArgNames({"rows", "muts"})->Args({10000, 64});
BENCHMARK(BM_CacheBatchedFlushReference)
    ->ArgNames({"rows", "muts"})->Args({10000, 64});

// Append-then-query: the insert path. The relation is reset (untimed) every
// time it doubles so both modes amortize identical reset cadence.
void AppendThenQuery(benchmark::State& state, MaintenanceMode mode) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Tuple> rows = MakeRows(n, 5);
  std::vector<Tuple> extra = MakeRows(n, 6);
  size_t next = 0;
  FlexibleRelation rel = RelationOf(rows, mode);
  QueryCache(&rel);
  for (auto _ : state) {
    if (rel.size() >= 2 * n) {
      state.PauseTiming();
      rel = RelationOf(rows, mode);
      QueryCache(&rel);
      state.ResumeTiming();
    }
    rel.InsertUnchecked(extra[next++ % extra.size()]);
    QueryCache(&rel);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_AppendThenQueryIncremental(benchmark::State& state) {
  AppendThenQuery(state, MaintenanceMode::kAdaptive);
}
void BM_AppendThenQueryRebuild(benchmark::State& state) {
  AppendThenQuery(state, MaintenanceMode::kRebuild);
}
BENCHMARK(BM_AppendThenQueryIncremental)
    ->ArgNames({"rows"})->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_AppendThenQueryRebuild)
    ->ArgNames({"rows"})->Arg(1000)->Arg(10000)->Arg(100000);

// Bulk-load-then-query: the storage path's shape (ReadFlexDb stages every
// row through one transactional batch). One timed round = InsertRows of n
// rows into an empty cached relation plus the first query over it.
void BM_BulkLoadThenQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Tuple> rows = MakeRows(n, 5);
  {
    // Checked inserts enforce set semantics; drop the rare random dups.
    std::unordered_set<Tuple, TupleHash> seen;
    std::erase_if(rows, [&](const Tuple& t) { return !seen.insert(t).second; });
  }
  for (auto _ : state) {
    FlexibleRelation rel =
        FlexibleRelation::Derived("bulk", DependencySet());
    QueryCache(&rel);  // attach the cache first so the load goes through it
    std::vector<Tuple> copy = rows;
    if (!rel.InsertRows(std::move(copy)).ok()) {
      state.SkipWithError("bulk load failed");
      return;
    }
    QueryCache(&rel);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BulkLoadThenQuery)->ArgNames({"rows"})->Arg(1000)->Arg(10000);

// ---------------------------------------------------------------------------
// Append storm into one fat cluster of a wide arena partition. Pre-slack,
// EVERY ApplyInsert into cluster 0 shifted the arena's entire suffix (all
// trailing clusters) one slot right — O(suffix) per append, no exceptions.
// With per-cluster slack headroom the shift is confined to the cluster; the
// suffix moves only on the amortized slot doublings. The timed storm is the
// steady state the doubling buys — appends landing in open slack — and its
// ns/append must stay flat as `clusters` (the suffix) grows; the capacity
// ramp (the doublings themselves) runs untimed, as does partition cloning.
// ---------------------------------------------------------------------------

void BM_AppendStormFatPartition(benchmark::State& state) {
  const size_t clusters = static_cast<size_t>(state.range(0));
  const AttrId attr = 0;
  std::vector<Tuple> rows;
  rows.reserve(2 * clusters);
  for (size_t c = 0; c < clusters; ++c) {
    for (int j = 0; j < 2; ++j) {
      Tuple t;
      t.Set(attr, Value::Int(static_cast<int64_t>(c)));
      rows.push_back(std::move(t));
    }
  }
  const Pli base = Pli::Build(rows, attr);
  constexpr int kWarm = 66;   // grows slot 0 to capacity 128 (untimed ramp)
  constexpr int kStorm = 48;  // timed appends, all landing in open slack
  for (auto _ : state) {
    state.PauseTiming();
    Pli pli = base;
    pli.SetNumRows(2 * clusters + kWarm + kStorm);
    Pli::Cluster partners = {0, 1};
    partners.reserve(2 + kWarm + kStorm);
    for (int k = 0; k < kWarm; ++k) {
      const Pli::RowId row = static_cast<Pli::RowId>(2 * clusters + k);
      if (!pli.ApplyInsert(row, partners, /*includes_row=*/false)) {
        state.SkipWithError("warm-up append refused");
        return;
      }
      partners.push_back(row);
    }
    state.ResumeTiming();
    for (int k = kWarm; k < kWarm + kStorm; ++k) {
      const Pli::RowId row = static_cast<Pli::RowId>(2 * clusters + k);
      benchmark::DoNotOptimize(
          pli.ApplyInsert(row, partners, /*includes_row=*/false));
      partners.push_back(row);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kStorm);
}
BENCHMARK(BM_AppendStormFatPartition)
    ->ArgNames({"clusters"})->Arg(256)->Arg(4096)->Arg(65536);

// ---------------------------------------------------------------------------
// Readers × writers: snapshot-read throughput under live write traffic.
// The benchmark threads are the readers (google benchmark's ->Threads());
// `writers` (arg 0) background threads hammer row updates through the
// mutation hooks for the whole measurement. COW mode reads resolve against
// the published snapshot without any lock. The locked baseline's readers
// must additionally serialize against the writers with the external mutex
// — that is its documented contract (in-place flushes read and patch live
// structures, so reads concurrent with mutations are a data race), and
// exactly the cost the snapshot plane removes. With writers = 0 both modes
// read without external locking. scripts/perf_smoke.py sweeps this and
// hard-fails if COW under one writer ever loses to the locked baseline.
// ---------------------------------------------------------------------------

void SnapshotReadStorm(benchmark::State& state, bool cow) {
  static FlexibleRelation* rel = nullptr;
  static std::shared_ptr<PliCache> cache;
  static std::vector<Value> jobtypes;
  static std::vector<std::thread> writer_threads;
  static std::atomic<bool> stop{false};
  static std::mutex write_mu;
  const int writers = static_cast<int>(state.range(0));
  if (state.thread_index() == 0) {
    std::vector<Tuple> rows = MakeRows(10000, 5);
    jobtypes.clear();
    {
      std::unordered_set<std::string> seen;
      for (const Tuple& t : rows) {
        if (const Value* v = t.Get(kJobtype)) {
          if (seen.insert(v->as_string()).second) jobtypes.push_back(*v);
        }
      }
    }
    PliCacheOptions options;
    options.cow_reads = cow;
    rel = new FlexibleRelation(
        FlexibleRelation::Derived("storm", DependencySet()));
    rel->SetPliCacheOptions(options);
    rel->InsertRowsUnchecked(std::move(rows));
    cache = rel->pli_cache();
    // Warm every key the readers touch: reader misses rebuild from the row
    // vector, which is the write side's territory.
    (void)cache->Get(AttrSet::Of(kJobtype));
    (void)cache->Get(AttrSet::Of(kCommon));
    (void)cache->Get(AttrSet{kJobtype, kCommon});
    (void)cache->IndexFor(kJobtype);
    (void)cache->IndexFor(kCommon);
    stop.store(false, std::memory_order_release);
    for (int w = 0; w < writers; ++w) {
      writer_threads.emplace_back([w] {
        Rng rng(1234 + static_cast<uint64_t>(w));
        while (!stop.load(std::memory_order_acquire)) {
          std::lock_guard<std::mutex> lock(write_mu);
          const size_t row = rng.Index(rel->size());
          if (rng.Bernoulli(0.5)) {
            (void)rel->Update(row, kJobtype,
                              jobtypes[rng.Index(jobtypes.size())]);
          } else {
            (void)rel->Update(row, kCommon,
                              Value::Int(rng.UniformInt(0, 50)));
          }
        }
      });
    }
  }
  const bool serialize_reads = !cow && writers > 0;
  for (auto _ : state) {
    if (serialize_reads) {
      std::lock_guard<std::mutex> lock(write_mu);
      benchmark::DoNotOptimize(cache->Get(AttrSet::Of(kJobtype)));
      benchmark::DoNotOptimize(cache->Get(AttrSet{kJobtype, kCommon}));
      benchmark::DoNotOptimize(cache->IndexFor(kCommon));
    } else {
      benchmark::DoNotOptimize(cache->Get(AttrSet::Of(kJobtype)));
      benchmark::DoNotOptimize(cache->Get(AttrSet{kJobtype, kCommon}));
      benchmark::DoNotOptimize(cache->IndexFor(kCommon));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  if (state.thread_index() == 0) {
    stop.store(true, std::memory_order_release);
    for (std::thread& t : writer_threads) t.join();
    writer_threads.clear();
    cache.reset();
    delete rel;
    rel = nullptr;
  }
}
void BM_SnapshotReadStorm(benchmark::State& state) {
  SnapshotReadStorm(state, /*cow=*/true);
}
void BM_SnapshotReadStormLocked(benchmark::State& state) {
  SnapshotReadStorm(state, /*cow=*/false);
}
#define FLEXREL_READ_STORM_SWEEP(bench)                 \
  BENCHMARK(bench)                                      \
      ->ArgNames({"writers"})                           \
      ->Arg(0)->Arg(1)->Arg(4)                          \
      ->Threads(1)->Threads(4)->Threads(8)              \
      ->UseRealTime()
FLEXREL_READ_STORM_SWEEP(BM_SnapshotReadStorm);
FLEXREL_READ_STORM_SWEEP(BM_SnapshotReadStormLocked);
#undef FLEXREL_READ_STORM_SWEEP

}  // namespace
}  // namespace flexrel
