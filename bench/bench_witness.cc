// Experiment E9 — the appendix's two-tuple witness construction.
//
// Regenerates: witness build cost scales with the universe/Σ (closure
// computation dominates), and the agreement counter confirms completeness on
// every sampled input (it must read 1.0).

#include <benchmark/benchmark.h>

#include "core/witness.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

void BM_BuildWitness(benchmark::State& state) {
  size_t universe_size = static_cast<size_t>(state.range(0));
  size_t num_deps = static_cast<size_t>(state.range(1));
  AttrSet universe;
  for (AttrId a = 0; a < universe_size; ++a) universe.Insert(a);
  Rng rng(13);
  DependencySet sigma =
      RandomDependencies(universe, &rng, num_deps / 2, num_deps / 2);
  std::vector<AttrSet> xs;
  for (int i = 0; i < 32; ++i) {
    std::vector<AttrId> ids;
    for (AttrId a : universe) {
      if (rng.Bernoulli(0.3)) ids.push_back(a);
    }
    xs.push_back(AttrSet::FromIds(std::move(ids)));
  }
  size_t i = 0;
  for (auto _ : state) {
    Witness w = BuildWitness(universe, xs[i++ & 31], sigma);
    benchmark::DoNotOptimize(w);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BuildWitness)
    ->Args({8, 4})
    ->Args({32, 16})
    ->Args({128, 64})
    ->Args({512, 128});

void BM_WitnessSatisfactionCheck(benchmark::State& state) {
  // Model-checking Σ against the two-tuple witness (the verification step
  // of the completeness proof, run mechanically).
  size_t universe_size = static_cast<size_t>(state.range(0));
  AttrSet universe;
  for (AttrId a = 0; a < universe_size; ++a) universe.Insert(a);
  Rng rng(17);
  DependencySet sigma = RandomDependencies(universe, &rng, 16, 16);
  Witness w = BuildWitness(universe, AttrSet{0, 1}, sigma);
  auto rows = w.rows();
  for (auto _ : state) {
    bool ok = sigma.SatisfiedBy(rows);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WitnessSatisfactionCheck)->Arg(16)->Arg(128);

void BM_CompletenessAgreement(benchmark::State& state) {
  // Counter `agreement` must equal 1.0: refutation by witness == not implied
  // by the axiom system, across everything sampled in the run.
  AttrSet universe;
  for (AttrId a = 0; a < 16; ++a) universe.Insert(a);
  Rng rng(static_cast<uint64_t>(state.range(0)));
  DependencySet sigma = RandomDependencies(universe, &rng, 8, 8);
  size_t agree = 0, total = 0;
  for (auto _ : state) {
    std::vector<AttrId> lhs, rhs;
    for (AttrId a : universe) {
      if (rng.Bernoulli(0.3)) lhs.push_back(a);
      if (rng.Bernoulli(0.3)) rhs.push_back(a);
    }
    AttrDep ad{AttrSet::FromIds(lhs), AttrSet::FromIds(rhs)};
    bool refuted = WitnessRefutesAd(universe, sigma, ad);
    bool implied = Implies(sigma, ad, AxiomSystem::kCombined);
    ++total;
    if (refuted == !implied) ++agree;
    benchmark::DoNotOptimize(refuted);
  }
  state.counters["agreement"] =
      total == 0 ? 1.0 : static_cast<double>(agree) / static_cast<double>(total);
}
BENCHMARK(BM_CompletenessAgreement)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace flexrel
