// Experiment E4 — redundant type-guard elimination (Example 4).
//
// Regenerates: query evaluation with the original guarded formula versus the
// AD-rewritten one. The win scales with the share of work the guard causes;
// the crossover is the unconstrained case, where the optimizer proves
// nothing and both plans are identical.

#include <benchmark/benchmark.h>

#include "algebra/evaluate.h"
#include "optimizer/guard_analysis.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

struct QuerySetup {
  std::unique_ptr<EmployeeWorkload> w;
  ExprPtr guarded;    // Example-4 shape: selection + type guards
  ExprPtr rewritten;  // after EliminateRedundantGuards
  size_t eliminated;
};

QuerySetup MakeQuery(size_t variants, size_t rows, size_t num_guards,
                     bool constrain_determinant) {
  QuerySetup q;
  EmployeeConfig config;
  config.num_variants = variants;
  config.attrs_per_variant = std::max<size_t>(num_guards, 1);
  config.rows = rows;
  config.seed = 99;
  q.w = std::move(MakeEmployeeWorkload(config)).value();

  // salary-style numeric conjunct plus (optionally) a determinant pin, then
  // `num_guards` guards on the pinned variant's attributes.
  ExprPtr f = Expr::Compare(q.w->id_attr, CmpOp::kGe, Value::Int(0));
  if (constrain_determinant) {
    f = Expr::And(f, Expr::Eq(q.w->jobtype_attr, q.w->jobtype_values[0]));
  }
  const EadVariant& v0 = q.w->eads[0].variants()[0];
  size_t added = 0;
  for (AttrId a : v0.then) {
    if (added++ >= num_guards) break;
    f = Expr::And(f, Expr::Exists(a));
  }
  q.guarded = f;
  GuardRewrite r = EliminateRedundantGuards(f, q.w->eads);
  q.rewritten = r.formula;
  q.eliminated = r.guards_eliminated;
  return q;
}

void RunQuery(benchmark::State& state, const QuerySetup& q, bool optimized) {
  const ExprPtr& formula = optimized ? q.rewritten : q.guarded;
  EvalStats total;
  for (auto _ : state) {
    EvalStats stats;
    auto out = Evaluate(Plan::Select(Plan::Scan(&q.w->relation), formula),
                        &stats);
    benchmark::DoNotOptimize(out);
    total += stats;
  }
  state.counters["guards_eliminated"] = static_cast<double>(q.eliminated);
  state.counters["predicate_evals_per_iter"] =
      static_cast<double>(total.predicate_evals) /
      static_cast<double>(std::max<size_t>(state.iterations(), 1));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(q.w->relation.size()));
}

void BM_GuardedQuery(benchmark::State& state) {
  QuerySetup q = MakeQuery(static_cast<size_t>(state.range(0)), 4096,
                           static_cast<size_t>(state.range(1)), true);
  RunQuery(state, q, /*optimized=*/false);
}
BENCHMARK(BM_GuardedQuery)->Args({3, 1})->Args({3, 3})->Args({16, 3});

void BM_RewrittenQuery(benchmark::State& state) {
  QuerySetup q = MakeQuery(static_cast<size_t>(state.range(0)), 4096,
                           static_cast<size_t>(state.range(1)), true);
  RunQuery(state, q, /*optimized=*/true);
}
BENCHMARK(BM_RewrittenQuery)->Args({3, 1})->Args({3, 3})->Args({16, 3});

void BM_UnconstrainedCrossover(benchmark::State& state) {
  // No determinant constraint: nothing can be eliminated; the rewritten
  // formula equals the original (the no-win case the shape should show).
  QuerySetup q = MakeQuery(3, 4096, 3, /*constrain_determinant=*/false);
  RunQuery(state, q, static_cast<bool>(state.range(0)));
}
BENCHMARK(BM_UnconstrainedCrossover)->Arg(0)->Arg(1);

void BM_RewriteItself(benchmark::State& state) {
  // The analysis cost: formula rewriting must stay negligible against
  // evaluation.
  QuerySetup q = MakeQuery(static_cast<size_t>(state.range(0)), 4, 3, true);
  for (auto _ : state) {
    GuardRewrite r = EliminateRedundantGuards(q.guarded, q.w->eads);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RewriteItself)->Arg(3)->Arg(64);

}  // namespace
}  // namespace flexrel
