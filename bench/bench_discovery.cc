// End-to-end dependency discovery: partition engine vs. the brute-force
// reference path, across instance sizes. The engine's advantage compounds
// with max_lhs_size — every level-2+ candidate costs it one integer-valued
// partition intersection instead of a full instance re-hash.

#include <benchmark/benchmark.h>

#include "core/discovery.h"
#include "engine/parallel_discovery.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

std::vector<Tuple> MakeRows(size_t n, uint64_t seed) {
  EmployeeConfig config;
  config.num_variants = 4;
  config.attrs_per_variant = 2;
  config.rows = 0;
  config.seed = seed;
  auto w = MakeEmployeeWorkload(config);
  Rng rng(seed + 1);
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(RandomEmployee(*w.value(), &rng));
  }
  return rows;
}

AttrSet UniverseOf(const std::vector<Tuple>& rows) {
  AttrSet u;
  for (const Tuple& t : rows) u = u.Union(t.attrs());
  return u;
}

void RunDiscovery(benchmark::State& state, bool use_engine, size_t max_lhs) {
  std::vector<Tuple> rows = MakeRows(static_cast<size_t>(state.range(0)), 9);
  AttrSet universe = UniverseOf(rows);
  DiscoveryOptions options;
  options.max_lhs_size = max_lhs;
  options.use_engine = use_engine;
  for (auto _ : state) {
    DependencySet deps = DiscoverDependencies(rows, universe, options);
    benchmark::DoNotOptimize(deps);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_DiscoveryEngine(benchmark::State& state) {
  RunDiscovery(state, /*use_engine=*/true, /*max_lhs=*/2);
}
BENCHMARK(BM_DiscoveryEngine)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_DiscoveryBruteForce(benchmark::State& state) {
  RunDiscovery(state, /*use_engine=*/false, /*max_lhs=*/2);
}
BENCHMARK(BM_DiscoveryBruteForce)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_DiscoveryEngineLhs3(benchmark::State& state) {
  RunDiscovery(state, /*use_engine=*/true, /*max_lhs=*/3);
}
BENCHMARK(BM_DiscoveryEngineLhs3)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_DiscoveryBruteForceLhs3(benchmark::State& state) {
  RunDiscovery(state, /*use_engine=*/false, /*max_lhs=*/3);
}
BENCHMARK(BM_DiscoveryBruteForceLhs3)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// The engine against itself across cluster-storage modes: CSR arena vs the
// vector-of-vectors reference, same lattice, same cache policy. Isolates
// what the memory layout alone buys discovery's intersection sweeps.
void RunEngineDiscoveryStorage(benchmark::State& state, bool reference) {
  std::vector<Tuple> rows = MakeRows(static_cast<size_t>(state.range(0)), 9);
  AttrSet universe = UniverseOf(rows);
  EngineDiscoveryOptions options;
  options.max_lhs_size = 3;
  options.reference_storage = reference;
  for (auto _ : state) {
    DependencySet deps = EngineDiscoverDependencies(rows, universe, options);
    benchmark::DoNotOptimize(deps);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_DiscoveryArenaStorage(benchmark::State& state) {
  RunEngineDiscoveryStorage(state, /*reference=*/false);
}
BENCHMARK(BM_DiscoveryArenaStorage)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_DiscoveryReferenceStorage(benchmark::State& state) {
  RunEngineDiscoveryStorage(state, /*reference=*/true);
}
BENCHMARK(BM_DiscoveryReferenceStorage)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// The wide planted-FD shape hybrid discovery exists for: many attributes,
// small skewed domains (fat clusters, so every exact validation does real
// partition work), a handful of FDs planted by construction, and mild
// attribute absence outside the plants so the AD pass sees presence
// disagreement. Level-wise validates all C(n,2)+n candidates; hybrid's
// sampled evidence falsifies almost all of them for free.
std::vector<Tuple> MakeWidePlanted(AttrId num_attrs, size_t num_rows,
                                   AttrSet* universe) {
  constexpr int64_t kDomain = 6;
  constexpr size_t kPlanted = 4;
  Rng rng(17);
  *universe = AttrSet();
  for (AttrId a = 0; a < num_attrs; ++a) universe->Insert(a);
  std::vector<Tuple> rows;
  rows.reserve(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    Tuple t;
    for (AttrId a = 0; a < num_attrs; ++a) {
      if (rng.Bernoulli(0.15)) continue;
      // Nested draw skews toward 0: a few huge clusters, a thinner tail.
      t.Set(a, Value::Int(rng.UniformInt(0, rng.UniformInt(0, kDomain - 1))));
    }
    // Plant p holds over the rows that carry its whole LHS; rows missing
    // part of the LHS fall out of the partition, so the FD (and the
    // variant-presence AD on the same determinant) still holds exactly.
    for (size_t p = 0; p < kPlanted; ++p) {
      AttrId base = static_cast<AttrId>(3 * p);
      const Value* v0 = t.Get(base);
      const Value* v1 = t.Get(base + 1);
      if (v0 != nullptr && v1 != nullptr) {
        t.Set(base + 2,
              Value::Int((v0->as_int() * 7 + v1->as_int() * 13) % kDomain));
      }
    }
    rows.push_back(std::move(t));
  }
  return rows;
}

void RunWidePlantedDiscovery(benchmark::State& state,
                             DiscoveryStrategy strategy,
                             bool use_codes = true) {
  AttrSet universe;
  std::vector<Tuple> rows =
      MakeWidePlanted(static_cast<AttrId>(state.range(0)), 2048, &universe);
  EngineDiscoveryOptions options;
  options.max_lhs_size = 2;
  options.strategy = strategy;
  options.use_codes = use_codes;
  for (auto _ : state) {
    DependencySet deps = EngineDiscoverDependencies(rows, universe, options);
    benchmark::DoNotOptimize(deps);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.size()));
}

void BM_DiscoveryHybrid(benchmark::State& state) {
  RunWidePlantedDiscovery(state, DiscoveryStrategy::kHybrid);
}
BENCHMARK(BM_DiscoveryHybrid)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Hybrid on the value-keyed oracle (EngineDiscoveryOptions::use_codes =
// false): sampled pairs merge sorted Value fields and single-attribute
// partitions hash Values, where the default compares code cells and
// counting-sorts. Same results by construction (engine_dictionary_test).
void BM_DiscoveryHybridValueKeyed(benchmark::State& state) {
  RunWidePlantedDiscovery(state, DiscoveryStrategy::kHybrid,
                          /*use_codes=*/false);
}
BENCHMARK(BM_DiscoveryHybridValueKeyed)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Level-wise on the identical wide instance (arena storage, the engine
// default) — the exact-validation baseline the hybrid gate in
// scripts/perf_smoke.py measures against.
void BM_DiscoveryArenaStorageWide(benchmark::State& state) {
  RunWidePlantedDiscovery(state, DiscoveryStrategy::kLevelWise);
}
BENCHMARK(BM_DiscoveryArenaStorageWide)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace flexrel
