// Experiment E6 — the four decomposition methods vs the flexible relation
// (Section 3.1.1).
//
// Regenerates the storage/restoration trade-off: null-padded methods store
// rows × (unused variant width) null fields the flexible relation avoids;
// horizontal/vertical methods store no nulls but pay outer-union /
// multiway-join restoration.

#include <benchmark/benchmark.h>

#include "decomposition/decomposition.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

std::unique_ptr<EmployeeWorkload> Make(size_t variants, size_t rows) {
  EmployeeConfig config;
  config.num_variants = variants;
  config.attrs_per_variant = 2;
  config.num_common_attrs = 1;
  config.rows = rows;
  config.seed = 31;
  return std::move(MakeEmployeeWorkload(config)).value();
}

void BM_TranslateNullPaddedTagged(benchmark::State& state) {
  auto w = Make(static_cast<size_t>(state.range(0)),
                static_cast<size_t>(state.range(1)));
  AttrId tag = w->catalog.Intern("tag");
  size_t nulls = 0, fields = 0;
  for (auto _ : state) {
    auto r = TranslateNullPaddedTagged(w->relation, w->eads[0], tag);
    benchmark::DoNotOptimize(r);
    StorageStats s = StatsOf(r.value());
    nulls = s.null_fields;
    fields = s.stored_fields;
  }
  StorageStats flex = StatsOf(w->relation);
  state.counters["null_fields"] = static_cast<double>(nulls);
  state.counters["stored_fields"] = static_cast<double>(fields);
  state.counters["flex_stored_fields"] =
      static_cast<double>(flex.stored_fields);
}
BENCHMARK(BM_TranslateNullPaddedTagged)
    ->Args({3, 1000})
    ->Args({8, 1000})
    ->Args({16, 1000})
    ->Args({8, 10000});

void BM_TranslateHorizontal(benchmark::State& state) {
  auto w = Make(static_cast<size_t>(state.range(0)),
                static_cast<size_t>(state.range(1)));
  size_t fields = 0;
  for (auto _ : state) {
    auto parts = TranslateHorizontal(w->relation, w->eads[0]);
    benchmark::DoNotOptimize(parts);
    std::vector<Relation> all = parts.value().variant_relations;
    all.push_back(parts.value().remainder);
    fields = StatsOf(all).stored_fields;
  }
  state.counters["stored_fields"] = static_cast<double>(fields);
  state.counters["null_fields"] = 0;
}
BENCHMARK(BM_TranslateHorizontal)->Args({3, 1000})->Args({16, 1000});

void BM_TranslateVertical(benchmark::State& state) {
  auto w = Make(static_cast<size_t>(state.range(0)),
                static_cast<size_t>(state.range(1)));
  size_t fields = 0;
  for (auto _ : state) {
    auto parts =
        TranslateVertical(w->relation, w->eads[0], AttrSet::Of(w->id_attr));
    benchmark::DoNotOptimize(parts);
    std::vector<Relation> all = parts.value().variant_relations;
    all.push_back(parts.value().master);
    fields = StatsOf(all).stored_fields;
  }
  state.counters["stored_fields"] = static_cast<double>(fields);
}
BENCHMARK(BM_TranslateVertical)->Args({3, 1000})->Args({16, 1000});

void BM_RestoreNullPadded(benchmark::State& state) {
  auto w = Make(8, static_cast<size_t>(state.range(0)));
  AttrId tag = w->catalog.Intern("tag");
  Relation padded =
      std::move(TranslateNullPaddedTagged(w->relation, w->eads[0], tag))
          .value();
  for (auto _ : state) {
    FlexibleRelation restored = RestoreFromNullPadded(padded, tag);
    benchmark::DoNotOptimize(restored);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RestoreNullPadded)->Arg(1000)->Arg(10000);

void BM_RestoreHorizontal(benchmark::State& state) {
  auto w = Make(8, static_cast<size_t>(state.range(0)));
  HorizontalDecomposition parts =
      std::move(TranslateHorizontal(w->relation, w->eads[0])).value();
  for (auto _ : state) {
    FlexibleRelation restored = RestoreHorizontal(parts);
    benchmark::DoNotOptimize(restored);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RestoreHorizontal)->Arg(1000)->Arg(10000);

void BM_RestoreVertical(benchmark::State& state) {
  auto w = Make(8, static_cast<size_t>(state.range(0)));
  VerticalDecomposition parts =
      std::move(TranslateVertical(w->relation, w->eads[0],
                                  AttrSet::Of(w->id_attr)))
          .value();
  for (auto _ : state) {
    FlexibleRelation restored = RestoreVertical(parts);
    benchmark::DoNotOptimize(restored);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RestoreVertical)->Arg(1000)->Arg(10000);

void BM_FlexibleScanBaseline(benchmark::State& state) {
  // The flexible relation needs no restoration at all; its "restore" is a
  // plain copy of the heterogeneous tuple set — the E6 baseline.
  auto w = Make(8, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    FlexibleRelation copy = FlexibleRelation::Derived("copy", DependencySet());
    for (const Tuple& t : w->relation.rows()) copy.InsertUnchecked(t);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FlexibleScanBaseline)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace flexrel
