// Experiment E7 — dependency propagation through operators (Theorem 4.3).
//
// Regenerates: per-rule propagation cost (it must be negligible next to
// evaluation) and the retained-dependency counts per rule — the theorem in
// numbers: σ keeps all, π keeps the LHS-surviving subset, ∪ keeps none,
// tagged ∪ keeps all in augmented form.

#include <benchmark/benchmark.h>

#include "algebra/ad_propagation.h"
#include "algebra/evaluate.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

DependencySet MakeDeps(size_t n, uint64_t seed) {
  AttrSet universe;
  for (AttrId a = 0; a < 24; ++a) universe.Insert(a);
  Rng rng(seed);
  return RandomDependencies(universe, &rng, n / 2, n - n / 2);
}

void BM_PropagateSelectRule(benchmark::State& state) {
  DependencySet deps = MakeDeps(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    DependencySet out = PropagateSelect(deps);
    benchmark::DoNotOptimize(out);
  }
  state.counters["retained"] = static_cast<double>(deps.size());
}
BENCHMARK(BM_PropagateSelectRule)->Arg(8)->Arg(64)->Arg(512);

void BM_PropagateProjectRule(benchmark::State& state) {
  DependencySet deps = MakeDeps(static_cast<size_t>(state.range(0)), 5);
  AttrSet keep;
  for (AttrId a = 0; a < 12; ++a) keep.Insert(a);  // half the universe
  size_t retained = 0;
  for (auto _ : state) {
    DependencySet out = PropagateProject(deps, keep);
    retained = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["input"] = static_cast<double>(deps.size());
  state.counters["retained"] = static_cast<double>(retained);
}
BENCHMARK(BM_PropagateProjectRule)->Arg(8)->Arg(64)->Arg(512);

void BM_PropagateTaggedUnionRule(benchmark::State& state) {
  std::vector<DependencySet> inputs;
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(MakeDeps(static_cast<size_t>(state.range(0)), 7 + i));
  }
  size_t retained = 0;
  for (auto _ : state) {
    DependencySet out = PropagateTaggedUnion(inputs, 999);
    retained = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["retained"] = static_cast<double>(retained);
}
BENCHMARK(BM_PropagateTaggedUnionRule)->Arg(8)->Arg(64);

void BM_PipelineWithPropagation(benchmark::State& state) {
  // Full pipeline: σ → π → tagged ∪ over two generated relations, measuring
  // end-to-end evaluation (propagation runs inside each operator).
  EmployeeConfig config;
  config.num_variants = 4;
  config.attrs_per_variant = 2;
  config.rows = static_cast<size_t>(state.range(0));
  config.seed = 17;
  auto w1 = std::move(MakeEmployeeWorkload(config)).value();
  config.seed = 18;
  auto w2 = std::move(MakeEmployeeWorkload(config)).value();

  AttrSet keep = w1->common_attrs.Union(w1->eads[0].determined());
  AttrId tag = 7777;
  PlanPtr plan = Plan::Union(
      Plan::Extend(
          Plan::Project(
              Plan::Select(Plan::Scan(&w1->relation),
                           Expr::Compare(w1->id_attr, CmpOp::kGe,
                                         Value::Int(0))),
              keep),
          tag, Value::Int(1)),
      Plan::Extend(Plan::Scan(&w2->relation), tag, Value::Int(2)));
  size_t retained = 0;
  for (auto _ : state) {
    auto out = Evaluate(plan);
    benchmark::DoNotOptimize(out);
    if (out.ok()) retained = out.value().deps().size();
  }
  state.counters["retained_deps"] = static_cast<double>(retained);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PipelineWithPropagation)->Arg(200)->Arg(2000);

void BM_VerifyPropagatedDepsHold(benchmark::State& state) {
  // The audit a cautious engine could run instead of trusting Theorem 4.3:
  // instance-level satisfaction checks on the operator output. Propagation
  // makes this O(1); the audit is O(n)–O(n^2). This quantifies the win.
  EmployeeConfig config;
  config.rows = static_cast<size_t>(state.range(0));
  config.seed = 23;
  auto w = std::move(MakeEmployeeWorkload(config)).value();
  auto out = Evaluate(Plan::Select(
      Plan::Scan(&w->relation),
      Expr::Compare(w->id_attr, CmpOp::kLt, Value::Int(state.range(0) / 2))));
  for (auto _ : state) {
    bool ok = out.value().SatisfiesDeclaredDeps();
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_VerifyPropagatedDepsHold)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace flexrel
