// Experiment E8 — AD subtyping vs the record rule (Section 3.2, Example 3).
//
// Regenerates: (a) checking costs of both notions, (b) the *strength* gap as
// counters: over candidate supertypes obtained by dropping attributes, the
// record rule accepts every projection while the AD-aware check rejects
// exactly those that sever the determinant link.

#include <benchmark/benchmark.h>

#include "subtyping/ad_subtyping.h"
#include "workload/generator.h"

namespace flexrel {
namespace {

struct FamilySetup {
  std::unique_ptr<EmployeeWorkload> w;
  RecordType base;
  TypeFamily family;
};

FamilySetup MakeFamily(size_t variants, size_t attrs_per_variant) {
  FamilySetup s;
  EmployeeConfig config;
  config.num_variants = variants;
  config.attrs_per_variant = attrs_per_variant;
  config.rows = 1;
  config.seed = 77;
  s.w = std::move(MakeEmployeeWorkload(config)).value();
  s.base = RecordType("employee");
  for (const auto& [attr, domain] : s.w->domains) {
    s.base.SetField(attr, domain);
  }
  s.family = std::move(DeriveTypeFamily(s.base, s.w->eads[0])).value();
  return s;
}

void BM_DeriveTypeFamily(benchmark::State& state) {
  FamilySetup s = MakeFamily(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto family = DeriveTypeFamily(s.base, s.w->eads[0]);
    benchmark::DoNotOptimize(family);
  }
  state.counters["subtypes"] = static_cast<double>(s.family.subtypes.size());
}
BENCHMARK(BM_DeriveTypeFamily)->Arg(3)->Arg(16)->Arg(64);

void BM_RecordRuleCheck(benchmark::State& state) {
  FamilySetup s = MakeFamily(static_cast<size_t>(state.range(0)), 3);
  size_t i = 0;
  for (auto _ : state) {
    const RecordType& sub = s.family.subtypes[i++ % s.family.subtypes.size()];
    bool ok = IsRecordSubtype(sub, s.family.supertype);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RecordRuleCheck)->Arg(3)->Arg(64);

void BM_SemanticSupertypeCheck(benchmark::State& state) {
  FamilySetup s = MakeFamily(static_cast<size_t>(state.range(0)), 3);
  size_t i = 0;
  for (auto _ : state) {
    // Alternate between the honest supertype and the lost-determinant one.
    RecordType candidate =
        (i++ % 2 == 0)
            ? s.family.supertype
            : s.family.supertype.Project(
                  s.family.supertype.attrs().Minus(s.family.determinant));
    SupertypeVerdict v = CheckSupertype(candidate, s.family, s.w->catalog);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SemanticSupertypeCheck)->Arg(3)->Arg(64);

void BM_StrengthGap(benchmark::State& state) {
  // Counters: of all single-attribute-drop projections of the supertype,
  // how many does each notion accept? The gap is exactly the projections
  // dropping determinant attributes.
  FamilySetup s = MakeFamily(static_cast<size_t>(state.range(0)), 3);
  size_t record_accepts = 0, semantic_accepts = 0, candidates = 0;
  for (auto _ : state) {
    record_accepts = semantic_accepts = candidates = 0;
    for (AttrId drop : s.family.supertype.attrs()) {
      RecordType candidate = s.family.supertype.Project(
          s.family.supertype.attrs().Minus(AttrSet::Of(drop)));
      SupertypeVerdict v = CheckSupertype(candidate, s.family, s.w->catalog);
      ++candidates;
      if (v.record_rule_ok) ++record_accepts;
      if (v.semantics_preserving) ++semantic_accepts;
    }
    benchmark::DoNotOptimize(candidates);
  }
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["record_rule_accepts"] = static_cast<double>(record_accepts);
  state.counters["ad_aware_accepts"] = static_cast<double>(semantic_accepts);
}
BENCHMARK(BM_StrengthGap)->Arg(3)->Arg(16);

void BM_HasseConstruction(benchmark::State& state) {
  FamilySetup s = MakeFamily(static_cast<size_t>(state.range(0)), 2);
  std::vector<RecordType> types;
  types.push_back(s.family.supertype);
  for (const RecordType& t : s.family.subtypes) types.push_back(t);
  for (auto _ : state) {
    auto edges = HasseEdges(types);
    benchmark::DoNotOptimize(edges);
  }
  state.counters["types"] = static_cast<double>(types.size());
}
BENCHMARK(BM_HasseConstruction)->Arg(4)->Arg(16)->Arg(48);

}  // namespace
}  // namespace flexrel
