// Experiment E1 — flexible schemes and dnf(FS) (Example 1).
//
// Regenerates: the cost of working with the *compact* scheme representation
// versus unfolding it. Series: membership testing (Admits) and counting on
// the tree never unfold; full enumeration grows with |dnf|.

#include <benchmark/benchmark.h>

#include "util/string_util.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace flexrel {
namespace {

// A scaled Example-1 shape: k disjoint pairs and k three-way non-disjoint
// unions, so |dnf| = 2^k * 7^k.
FlexibleScheme ScaledExample1(AttrCatalog* catalog, size_t k) {
  std::vector<FlexibleScheme> top;
  top.push_back(FlexibleScheme::Attr(catalog->Intern("A")));
  top.push_back(FlexibleScheme::Attr(catalog->Intern("B")));
  for (size_t i = 0; i < k; ++i) {
    std::vector<FlexibleScheme> pair;
    pair.push_back(FlexibleScheme::Attr(catalog->Intern(StrCat("C", i))));
    pair.push_back(FlexibleScheme::Attr(catalog->Intern(StrCat("D", i))));
    top.push_back(FlexibleScheme::DisjointUnion(std::move(pair)).value());
    std::vector<FlexibleScheme> triple;
    triple.push_back(FlexibleScheme::Attr(catalog->Intern(StrCat("E", i))));
    triple.push_back(FlexibleScheme::Attr(catalog->Intern(StrCat("F", i))));
    triple.push_back(FlexibleScheme::Attr(catalog->Intern(StrCat("G", i))));
    top.push_back(FlexibleScheme::NonDisjointUnion(std::move(triple)).value());
  }
  uint32_t n = static_cast<uint32_t>(top.size());
  return FlexibleScheme::Group(n, n, std::move(top)).value();
}

// A valid member of dnf(ScaledExample1).
AttrSet SampleMember(const FlexibleScheme& fs, Rng* rng) {
  // Walk the tree: for each group pick a feasible child subset.
  // For this scheme shape, picking the first child of each disjoint pair and
  // a random non-empty subset of each triple is always admissible; randomize
  // via the rng to avoid branch-predictable membership tests.
  AttrSet out;
  const auto& comps = fs.components();
  for (const FlexibleScheme& c : comps) {
    if (c.is_leaf()) {
      out.Insert(c.leaf_attr());
    } else if (c.at_most() == 1) {  // disjoint pair
      out.Insert(c.components()[rng->Index(c.components().size())].leaf_attr());
    } else {  // non-disjoint triple
      bool any = false;
      for (const FlexibleScheme& leaf : c.components()) {
        if (rng->Bernoulli(0.5)) {
          out.Insert(leaf.leaf_attr());
          any = true;
        }
      }
      if (!any) out.Insert(c.components()[0].leaf_attr());
    }
  }
  return out;
}

void BM_DnfCount(benchmark::State& state) {
  AttrCatalog catalog;
  FlexibleScheme fs = ScaledExample1(&catalog, static_cast<size_t>(state.range(0)));
  uint64_t count = 0;
  for (auto _ : state) {
    count = fs.DnfCount();
    benchmark::DoNotOptimize(count);
  }
  state.counters["dnf_size"] = static_cast<double>(count);
}
BENCHMARK(BM_DnfCount)->DenseRange(1, 10);

void BM_DnfEnumerate(benchmark::State& state) {
  AttrCatalog catalog;
  FlexibleScheme fs = ScaledExample1(&catalog, static_cast<size_t>(state.range(0)));
  size_t produced = 0;
  for (auto _ : state) {
    auto dnf = fs.Dnf(1u << 22);
    if (dnf.ok()) produced = dnf.value().size();
    benchmark::DoNotOptimize(produced);
  }
  state.counters["dnf_size"] = static_cast<double>(produced);
}
BENCHMARK(BM_DnfEnumerate)->DenseRange(1, 6);

void BM_Admits(benchmark::State& state) {
  AttrCatalog catalog;
  FlexibleScheme fs = ScaledExample1(&catalog, static_cast<size_t>(state.range(0)));
  Rng rng(42);
  std::vector<AttrSet> members;
  for (int i = 0; i < 64; ++i) members.push_back(SampleMember(fs, &rng));
  size_t i = 0;
  for (auto _ : state) {
    bool ok = fs.Admits(members[i++ & 63]);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["dnf_size"] = static_cast<double>(fs.DnfCount());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Admits)->DenseRange(1, 16, 3);

void BM_AdmitsRejects(benchmark::State& state) {
  AttrCatalog catalog;
  FlexibleScheme fs = ScaledExample1(&catalog, static_cast<size_t>(state.range(0)));
  Rng rng(43);
  // Near-miss candidates: a member with one attribute dropped (breaks a
  // lower bound) — the adversarial case for the membership recursion.
  std::vector<AttrSet> rejects;
  for (int i = 0; i < 64; ++i) {
    AttrSet m = SampleMember(fs, &rng);
    std::vector<AttrId> ids(m.ids());
    ids.erase(ids.begin());  // drop unconditioned attribute A
    rejects.push_back(AttrSet::FromIds(std::move(ids)));
  }
  size_t i = 0;
  for (auto _ : state) {
    bool ok = fs.Admits(rejects[i++ & 63]);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AdmitsRejects)->DenseRange(1, 16, 3);

void BM_RandomSchemeAdmits(benchmark::State& state) {
  AttrCatalog catalog;
  Rng rng(static_cast<uint64_t>(state.range(0)) * 101 + 7);
  FlexibleScheme fs = RandomScheme(&catalog, &rng,
                                   static_cast<size_t>(state.range(0)), 5, "r");
  std::vector<AttrId> universe(fs.attrs().ids());
  std::vector<AttrSet> candidates;
  for (int i = 0; i < 64; ++i) {
    std::vector<AttrId> pick;
    for (AttrId a : universe) {
      if (rng.Bernoulli(0.5)) pick.push_back(a);
    }
    candidates.push_back(AttrSet::FromIds(std::move(pick)));
  }
  size_t i = 0;
  for (auto _ : state) {
    bool ok = fs.Admits(candidates[i++ & 63]);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["universe"] = static_cast<double>(universe.size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RandomSchemeAdmits)->DenseRange(1, 4);

}  // namespace
}  // namespace flexrel
