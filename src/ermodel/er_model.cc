#include "ermodel/er_model.h"

#include <algorithm>

#include "util/string_util.h"

namespace flexrel {

Result<MappedEntity> MapEntity(const ErEntity& entity) {
  MappedEntity out;
  out.domains = entity.attrs;

  // Unconditioned components: every base attribute.
  std::vector<FlexibleScheme> components;
  AttrSet base_attrs;
  for (const auto& [attr, domain] : entity.attrs) {
    components.push_back(FlexibleScheme::Attr(attr));
    base_attrs.Insert(attr);
  }
  uint32_t mandatory = static_cast<uint32_t>(components.size());

  // One variant region + one EAD per specialization.
  for (const ErSpecialization& spec : entity.specializations) {
    if (!spec.discriminators.IsSubsetOf(base_attrs)) {
      return Status::InvalidArgument(
          StrCat("specialization discriminators not among entity attributes "
                 "of ",
                 entity.name));
    }
    AttrSet determined;
    std::vector<EadVariant> variants;
    std::vector<FlexibleScheme> blocks;
    for (const ErSubclass& sub : spec.subclasses) {
      if (sub.defining_values.base() != spec.discriminators) {
        return Status::InvalidArgument(
            StrCat("subclass ", sub.name,
                   " predicate ranges over the wrong attributes"));
      }
      AttrSet block_attrs;
      std::vector<FlexibleScheme> block_leaves;
      for (const auto& [attr, domain] : sub.specific_attrs) {
        out.domains.push_back({attr, domain});
        determined.Insert(attr);
        block_attrs.Insert(attr);
        block_leaves.push_back(FlexibleScheme::Attr(attr));
      }
      variants.push_back(EadVariant{sub.defining_values, block_attrs});
      if (!block_leaves.empty()) {
        uint32_t n = static_cast<uint32_t>(block_leaves.size());
        FLEXREL_ASSIGN_OR_RETURN(
            FlexibleScheme block,
            FlexibleScheme::Group(n, n, std::move(block_leaves)));
        blocks.push_back(std::move(block));
      }
    }
    FLEXREL_ASSIGN_OR_RETURN(
        ExplicitAD ead,
        ExplicitAD::Make(spec.discriminators, determined, std::move(variants)));
    out.eads.push_back(std::move(ead));
    if (!blocks.empty()) {
      // Structurally an entity may carry any combination of the blocks; the
      // EAD (not the scheme) pins down which one, so the scheme region is
      // <0, #blocks, {blocks}>. Subclass attribute blocks are all-or-nothing.
      uint32_t n = static_cast<uint32_t>(blocks.size());
      FLEXREL_ASSIGN_OR_RETURN(FlexibleScheme region,
                               FlexibleScheme::Group(0, n, std::move(blocks)));
      components.push_back(std::move(region));
    }
  }

  uint32_t total = static_cast<uint32_t>(components.size());
  // All base attributes plus all variant regions must be "chosen"; the
  // regions themselves absorb optionality via their internal <0, n, ...>
  // bounds.
  (void)mandatory;
  FLEXREL_ASSIGN_OR_RETURN(FlexibleScheme scheme,
                           FlexibleScheme::Group(total, total,
                                                 std::move(components)));
  out.scheme = std::move(scheme);
  return out;
}

Result<SpecializationClass> ClassifySpecialization(
    const ExplicitAD& ead,
    const std::vector<std::pair<AttrId, Domain>>& domains) {
  SpecializationClass c;
  c.disjoint = ead.IsDisjointSpecialization();
  FLEXREL_ASSIGN_OR_RETURN(bool total, ead.IsTotalSpecialization(domains));
  c.total = total;
  return c;
}

ErSpecialization SpecializationFromEad(
    const ExplicitAD& ead,
    const std::vector<std::pair<AttrId, Domain>>& domains) {
  ErSpecialization spec;
  spec.discriminators = ead.determinant();
  for (size_t i = 0; i < ead.variants().size(); ++i) {
    const EadVariant& v = ead.variants()[i];
    ErSubclass sub;
    sub.name = StrCat("subclass", i);
    sub.defining_values = v.when;
    for (AttrId a : v.then) {
      const Domain* d = nullptr;
      for (const auto& [attr, domain] : domains) {
        if (attr == a) {
          d = &domain;
          break;
        }
      }
      sub.specific_attrs.push_back(
          {a, d != nullptr ? *d : Domain::Any(ValueType::kString)});
    }
    spec.subclasses.push_back(std::move(sub));
  }
  return spec;
}

}  // namespace flexrel
