// Enhanced-ER modelling: predicate-defined specialization and its one-to-one
// mapping onto flexible schemes with attribute dependencies (Section 3.1).
//
// "If one replaces the predicate p_i of the i-th specialization by its
// extension V_i … then an attribute dependency is a one-to-one mapping of a
// predicate defined specialization." We model an entity type with plain
// attributes plus one (or more) specializations, each subclass defined by an
// equality/membership predicate over discriminating attributes, and map the
// whole construct to (FlexibleScheme, ExplicitAD) pairs. The ER-level
// classifications — disjoint/overlapping and total/partial subclasses — are
// *inferred from the AD*, which is exactly the paper's point: the semantic
// construct becomes operationally exploitable.

#ifndef FLEXREL_ERMODEL_ER_MODEL_H_
#define FLEXREL_ERMODEL_ER_MODEL_H_

#include <string>
#include <vector>

#include "core/explicit_ad.h"
#include "core/flexible_scheme.h"
#include "relational/domain.h"
#include "util/result.h"

namespace flexrel {

/// One subclass of a predicate-defined specialization.
struct ErSubclass {
  std::string name;
  /// The subclass predicate's extension: the set of discriminator values
  /// selecting this subclass (V_i = { v | p_i(v) }).
  ConditionSet defining_values;
  /// Attributes specific to this subclass, with domains.
  std::vector<std::pair<AttrId, Domain>> specific_attrs;
};

/// A predicate-defined specialization over discriminating attributes.
struct ErSpecialization {
  AttrSet discriminators;  ///< the predicate's attributes (e.g. {jobtype})
  std::vector<ErSubclass> subclasses;
};

/// An entity type with its plain attributes and specializations.
struct ErEntity {
  std::string name;
  std::vector<std::pair<AttrId, Domain>> attrs;  ///< incl. discriminators
  std::vector<ErSpecialization> specializations;
};

/// The mapping result: one flexible scheme plus one EAD per specialization.
struct MappedEntity {
  FlexibleScheme scheme;
  std::vector<ExplicitAD> eads;
  std::vector<std::pair<AttrId, Domain>> domains;
};

/// Maps `entity` onto the model of flexible relations:
///  - base attributes become unconditioned scheme components,
///  - each specialization contributes a <0, n, {variant blocks}> region
///    (an entity may belong to zero or several subclasses; which ones is
///    governed by the EAD, not by the scheme alone),
///  - each specialization yields an EAD: discriminator values V_i determine
///    the presence of subclass attribute block Y_i.
Result<MappedEntity> MapEntity(const ErEntity& entity);

/// ER classification inferred from the mapped EAD (Section 3.1):
/// disjoint vs overlapping and total vs partial.
struct SpecializationClass {
  bool disjoint = false;
  bool total = false;
};
Result<SpecializationClass> ClassifySpecialization(
    const ExplicitAD& ead,
    const std::vector<std::pair<AttrId, Domain>>& domains);

/// Round trip: recovers an ErSpecialization view from an EAD (names are
/// synthesized). Inverse of MapEntity up to naming — the "one-to-one"
/// property the paper claims; tests verify the round trip.
ErSpecialization SpecializationFromEad(
    const ExplicitAD& ead,
    const std::vector<std::pair<AttrId, Domain>>& domains);

}  // namespace flexrel

#endif  // FLEXREL_ERMODEL_ER_MODEL_H_
