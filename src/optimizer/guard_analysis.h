// Type-guard redundancy analysis and variant pruning (Section 3.1.2 and
// Example 4).
//
// Example 4: a query selects "salary > 5000 AND jobtype = 'secretary'" and
// then guards on the presence of typing-speed. The jobtype EAD plus rules
// A1/A4 prove the guard redundant. Generalised: given the constraints a
// selection formula imposes on determinant attributes, each EAD's variants
// split into consistent and excluded ones; an attribute guaranteed by every
// consistent outcome needs no guard, an attribute of no consistent outcome
// can be pruned together with every operator branch that only serves it.

#ifndef FLEXREL_OPTIMIZER_GUARD_ANALYSIS_H_
#define FLEXREL_OPTIMIZER_GUARD_ANALYSIS_H_

#include <vector>

#include "core/explicit_ad.h"
#include "optimizer/constraints.h"

namespace flexrel {

/// Which of an EAD's variants survive a set of determinant constraints.
struct VariantAnalysis {
  /// Indices into ead.variants() whose condition sets intersect the
  /// constraint region.
  std::vector<size_t> consistent_variants;
  /// True when a tuple passing the constraints might match *no* variant
  /// (and hence carry none of the determined attributes).
  bool unmatched_possible = true;
};

/// Analyzes `ead` under `constraints` (see ExtractConstraints). Sound:
/// over-approximates, never excludes a variant that could match.
VariantAnalysis AnalyzeVariants(const ConstraintMap& constraints,
                                const ExplicitAD& ead);

/// Presence verdict for one attribute under a formula's constraints.
enum class Presence {
  kAlways,  ///< every tuple satisfying the formula carries the attribute
  kNever,   ///< no such tuple carries it
  kMaybe,   ///< undetermined
};
const char* PresenceName(Presence p);

/// Determines the presence of `attr` for tuples satisfying `constraints`,
/// using the EADs: kAlways when some EAD guarantees it in every consistent
/// outcome (or the formula itself reads the attribute's value), kNever when
/// no consistent outcome provides it.
Presence AttrPresence(AttrId attr, const ConstraintMap& constraints,
                      const std::vector<ExplicitAD>& eads);

/// Result of rewriting a formula's guards.
struct GuardRewrite {
  ExprPtr formula;            ///< rewritten & simplified formula
  size_t guards_eliminated = 0;  ///< Exists() proven true and removed
  size_t guards_falsified = 0;   ///< Exists() proven false (prunes branches)
};

/// Replaces provably redundant type guards by constants and simplifies.
/// The rewritten formula is equivalent to the original on every instance
/// satisfying `eads` (it may differ on ill-typed tuples, which a type-checked
/// flexible relation cannot contain).
GuardRewrite EliminateRedundantGuards(const ExprPtr& formula,
                                      const std::vector<ExplicitAD>& eads);

/// Instance-driven variant for relations with no declared EADs (derived
/// relations, migrated data): mines explicit ADs from `rows` through the
/// partition engine — engine-discovered ADs lifted back to per-value
/// variants — and rewrites guards against the mined set. The rewrite is
/// sound w.r.t. the instance the EADs were mined from. Limitations vs. the
/// declared-EAD overload: only single-attribute determinants are mined
/// (max_lhs_size = 1), and key-like determinants exceeding an internal
/// variant budget are skipped — a guard depending on a multi-attribute or
/// near-unique determinant is simply left in place.
GuardRewrite EliminateRedundantGuardsFromInstance(const ExprPtr& formula,
                                                  const std::vector<Tuple>& rows,
                                                  const AttrSet& universe);

/// Constant folding / identity simplification of a predicate tree.
ExprPtr SimplifyExpr(const ExprPtr& e);

}  // namespace flexrel

#endif  // FLEXREL_OPTIMIZER_GUARD_ANALYSIS_H_
