#include "optimizer/constraints.h"

#include <algorithm>

namespace flexrel {

namespace {
std::vector<Value> Normalized(const std::vector<Value>& values) {
  std::vector<Value> out = values;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}
}  // namespace

bool ValueConstraint::Permits(const Value& v) const {
  return std::find(allowed.begin(), allowed.end(), v) != allowed.end();
}

ValueConstraint ValueConstraint::IntersectWith(
    const ValueConstraint& other) const {
  std::vector<Value> a = Normalized(allowed);
  std::vector<Value> b = Normalized(other.allowed);
  ValueConstraint out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out.allowed));
  return out;
}

ValueConstraint ValueConstraint::UnionWith(const ValueConstraint& other) const {
  std::vector<Value> a = Normalized(allowed);
  std::vector<Value> b = Normalized(other.allowed);
  ValueConstraint out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out.allowed));
  return out;
}

ConstraintMap ExtractConstraints(const ExprPtr& formula) {
  switch (formula->kind()) {
    case ExprKind::kCompare: {
      if (formula->op() != CmpOp::kEq) return {};
      ConstraintMap m;
      m[formula->attr()] = ValueConstraint{{formula->literal()}};
      return m;
    }
    case ExprKind::kIn: {
      ConstraintMap m;
      m[formula->attr()] = ValueConstraint{formula->values()};
      return m;
    }
    case ExprKind::kAnd: {
      ConstraintMap left = ExtractConstraints(formula->left());
      ConstraintMap right = ExtractConstraints(formula->right());
      for (auto& [attr, constraint] : right) {
        auto it = left.find(attr);
        if (it == left.end()) {
          left.emplace(attr, std::move(constraint));
        } else {
          it->second = it->second.IntersectWith(constraint);
        }
      }
      return left;
    }
    case ExprKind::kOr: {
      ConstraintMap left = ExtractConstraints(formula->left());
      ConstraintMap right = ExtractConstraints(formula->right());
      ConstraintMap out;
      for (auto& [attr, constraint] : left) {
        auto it = right.find(attr);
        if (it != right.end()) {
          out.emplace(attr, constraint.UnionWith(it->second));
        }
      }
      return out;
    }
    case ExprKind::kExists:
    case ExprKind::kNot:
    case ExprKind::kConst:
      return {};
  }
  return {};
}

}  // namespace flexrel
