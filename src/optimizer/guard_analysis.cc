#include "optimizer/guard_analysis.h"

#include <algorithm>

#include "engine/parallel_discovery.h"

namespace flexrel {

namespace {

constexpr size_t kComboCap = 4096;  // product-enumeration guard

}  // namespace

VariantAnalysis AnalyzeVariants(const ConstraintMap& constraints,
                                const ExplicitAD& ead) {
  VariantAnalysis out;
  const AttrSet& base = ead.condition_base();

  // A variant is consistent when at least one of its condition values is
  // permitted by every constrained attribute.
  for (size_t i = 0; i < ead.variants().size(); ++i) {
    const EadVariant& v = ead.variants()[i];
    bool consistent = false;
    for (const Tuple& val : v.when.values()) {
      bool permitted = true;
      for (const auto& [attr, value] : val.fields()) {
        auto it = constraints.find(attr);
        if (it != constraints.end() && !it->second.Permits(value)) {
          permitted = false;
          break;
        }
      }
      if (permitted) {
        consistent = true;
        break;
      }
    }
    if (consistent) out.consistent_variants.push_back(i);
  }

  // "Unmatched" is impossible only when every determinant attribute is
  // constrained to a finite set (which also guarantees the tuple is defined
  // on the determinant) and every combination of allowed values is covered
  // by some variant condition.
  out.unmatched_possible = true;
  std::vector<std::pair<AttrId, const ValueConstraint*>> dims;
  size_t combos = 1;
  for (AttrId a : base) {
    auto it = constraints.find(a);
    if (it == constraints.end()) return out;  // unconstrained: may mismatch
    if (it->second.allowed.empty()) {
      // Contradictory constraints: no tuple passes the formula at all, so a
      // mismatching tuple cannot pass either.
      out.unmatched_possible = false;
      return out;
    }
    combos *= it->second.allowed.size();
    if (combos > kComboCap) return out;  // too large to certify coverage
    dims.push_back({a, &it->second});
  }
  // Enumerate the constraint product and test coverage.
  std::vector<size_t> cursor(dims.size(), 0);
  while (true) {
    Tuple t;
    for (size_t i = 0; i < dims.size(); ++i) {
      t.Set(dims[i].first, dims[i].second->allowed[cursor[i]]);
    }
    bool covered = false;
    for (const EadVariant& v : ead.variants()) {
      if (v.when.ContainsValue(t)) {
        covered = true;
        break;
      }
    }
    if (!covered) return out;  // a passing tuple can match no variant
    size_t i = 0;
    for (; i < dims.size(); ++i) {
      if (++cursor[i] < dims[i].second->allowed.size()) break;
      cursor[i] = 0;
    }
    if (i == dims.size()) break;
  }
  out.unmatched_possible = false;
  return out;
}

const char* PresenceName(Presence p) {
  switch (p) {
    case Presence::kAlways:
      return "always";
    case Presence::kNever:
      return "never";
    case Presence::kMaybe:
      return "maybe";
  }
  return "?";
}

Presence AttrPresence(AttrId attr, const ConstraintMap& constraints,
                      const std::vector<ExplicitAD>& eads) {
  // The formula reading the attribute's value already implies its presence.
  if (constraints.find(attr) != constraints.end()) return Presence::kAlways;

  for (const ExplicitAD& ead : eads) {
    if (!ead.determined().Contains(attr)) continue;
    VariantAnalysis analysis = AnalyzeVariants(constraints, ead);
    bool in_all = !analysis.consistent_variants.empty();
    bool in_some = false;
    for (size_t i : analysis.consistent_variants) {
      if (ead.variants()[i].then.Contains(attr)) {
        in_some = true;
      } else {
        in_all = false;
      }
    }
    if (analysis.unmatched_possible) in_all = false;  // ∅ outcome possible
    if (in_all) return Presence::kAlways;
    if (!in_some) return Presence::kNever;  // no consistent outcome has it
  }
  return Presence::kMaybe;
}

ExprPtr SimplifyExpr(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kAnd: {
      ExprPtr l = SimplifyExpr(e->left());
      ExprPtr r = SimplifyExpr(e->right());
      if (l->kind() == ExprKind::kConst) {
        if (l->const_value() == TriBool::kTrue) return r;
        if (l->const_value() == TriBool::kFalse) return Expr::Const(TriBool::kFalse);
      }
      if (r->kind() == ExprKind::kConst) {
        if (r->const_value() == TriBool::kTrue) return l;
        if (r->const_value() == TriBool::kFalse) return Expr::Const(TriBool::kFalse);
      }
      return Expr::And(l, r);
    }
    case ExprKind::kOr: {
      ExprPtr l = SimplifyExpr(e->left());
      ExprPtr r = SimplifyExpr(e->right());
      if (l->kind() == ExprKind::kConst) {
        if (l->const_value() == TriBool::kTrue) return Expr::Const(TriBool::kTrue);
        if (l->const_value() == TriBool::kFalse) return r;
      }
      if (r->kind() == ExprKind::kConst) {
        if (r->const_value() == TriBool::kTrue) return Expr::Const(TriBool::kTrue);
        if (r->const_value() == TriBool::kFalse) return l;
      }
      return Expr::Or(l, r);
    }
    case ExprKind::kNot: {
      ExprPtr l = SimplifyExpr(e->left());
      if (l->kind() == ExprKind::kConst) {
        return Expr::Const(TriNot(l->const_value()));
      }
      return Expr::Not(l);
    }
    default:
      return e;
  }
}

namespace {

ExprPtr RewriteGuardsRec(const ExprPtr& e, const ConstraintMap& constraints,
                         const std::vector<ExplicitAD>& eads,
                         GuardRewrite* report) {
  switch (e->kind()) {
    case ExprKind::kExists: {
      Presence p = AttrPresence(e->attr(), constraints, eads);
      if (p == Presence::kAlways) {
        ++report->guards_eliminated;
        return Expr::Const(TriBool::kTrue);
      }
      if (p == Presence::kNever) {
        ++report->guards_falsified;
        return Expr::Const(TriBool::kFalse);
      }
      return e;
    }
    case ExprKind::kAnd:
      return Expr::And(RewriteGuardsRec(e->left(), constraints, eads, report),
                       RewriteGuardsRec(e->right(), constraints, eads, report));
    case ExprKind::kOr:
      return Expr::Or(RewriteGuardsRec(e->left(), constraints, eads, report),
                      RewriteGuardsRec(e->right(), constraints, eads, report));
    case ExprKind::kNot:
      // Inside a negation a guard rewrite stays sound: the equivalence holds
      // pointwise on EAD-valid tuples, regardless of polarity.
      return Expr::Not(RewriteGuardsRec(e->left(), constraints, eads, report));
    default:
      return e;
  }
}

}  // namespace

GuardRewrite EliminateRedundantGuards(const ExprPtr& formula,
                                      const std::vector<ExplicitAD>& eads) {
  GuardRewrite report;
  ConstraintMap constraints = ExtractConstraints(formula);
  ExprPtr rewritten = RewriteGuardsRec(formula, constraints, eads, &report);
  report.formula = SimplifyExpr(rewritten);
  return report;
}

GuardRewrite EliminateRedundantGuardsFromInstance(
    const ExprPtr& formula, const std::vector<Tuple>& rows,
    const AttrSet& universe) {
  // Mine determinants: engine-discovered single-attribute ADs, lifted to
  // explicit variants from the same partition cache. Attributes violating
  // the stricter explicit reading (Definition 2.1's "otherwise ∅" clause —
  // carried by rows lacking the determinant) are filtered per determinant
  // rather than poisoning the whole EAD, keeping the rewrite sound while
  // preserving the eliminations the remaining attributes support.
  PliCache cache(&rows);
  DependencyValidator validator(&cache);
  EngineDiscoveryOptions options;
  options.max_lhs_size = 1;
  // Key-like determinants would mine one variant per row — and variant
  // construction validates disjointness pairwise — while an EAD that fine
  // never proves a guard redundant for a realistic selection. Budget them
  // away.
  constexpr size_t kMaxMinedVariants = 256;
  std::vector<ExplicitAD> eads;
  for (const AttrDep& ad : EngineDiscoverAttrDeps(&validator, universe,
                                                  options)) {
    AttrSet minable = ExplicitlyMinableRhs(rows, ad.lhs, ad.rhs);
    if (minable.empty()) continue;
    Result<ExplicitAD> mined =
        MineExplicitAd(&cache, ad.lhs, minable, &validator.row_attrs(),
                       kMaxMinedVariants);
    if (mined.ok()) eads.push_back(std::move(mined).value());
  }
  return EliminateRedundantGuards(formula, eads);
}

}  // namespace flexrel
