// Plan-level rewrites (Section 3.1.2's qualified-relation optimizations).
//
// The paper: "we can exploit each selection concerning the determining
// attributes of an AD to draw conclusions about redundant operations, e.g.
// unnecessary joins with variants that are known to be excluded". The
// rewriter combines three ingredients:
//
//   1. guard rewriting — every selection formula goes through
//      EliminateRedundantGuards (Example 4);
//   2. selection pushdown through (outer) unions;
//   3. excluded-branch pruning — for a selection over a branch whose output
//      *guarantees* some attribute A (every tuple carries it), if the EADs
//      prove A can never be present under the selection's determinant
//      constraints, the branch is provably empty and is replaced by Empty().
//
// Guaranteed attributes are derived structurally (joins accumulate them,
// unions intersect them, scans report the attributes common to all rows —
// the catalog statistic a real system would maintain).

#ifndef FLEXREL_OPTIMIZER_PLAN_REWRITE_H_
#define FLEXREL_OPTIMIZER_PLAN_REWRITE_H_

#include "algebra/plan.h"
#include "optimizer/guard_analysis.h"

namespace flexrel {

/// Attributes present in every tuple the plan can emit (conservative:
/// a subset of the true guarantee).
AttrSet GuaranteedAttrs(const PlanPtr& plan);

/// Attributes that may appear in some emitted tuple (conservative: a
/// superset of the truth). Drives join pushdown: a selection reading only
/// attributes guaranteed by the left side and impossible on the right side
/// evaluates identically before and after the join.
AttrSet PossibleAttrs(const PlanPtr& plan);

/// Statistics of one OptimizePlan run.
struct RewriteReport {
  size_t guards_eliminated = 0;
  size_t guards_falsified = 0;
  size_t branches_pruned = 0;   ///< subtrees proven empty
  size_t selects_pushed = 0;    ///< selections pushed through unions
  size_t joins_reordered = 0;   ///< multiway joins whose leg order changed
};

/// Rough output-cardinality estimate of `plan`, the statistic behind
/// multiway-join leg ordering. Scans report their relation's size; equality
/// and IN selections directly over a scan consult the scanned relation's
/// partition cache (the matching value cluster's exact size); everything
/// else combines child estimates structurally. Estimates of derived
/// operators are heuristic — they order work, they never gate correctness.
size_t EstimateRows(const PlanPtr& plan);

/// Rewrites `plan` under the given EADs. Soundness contract: the rewrite is
/// result-preserving whenever the tuple streams reaching each selection are
/// EAD-valid — true for scans of type-checked flexible relations and for
/// restorations of their decompositions (each restored tuple is an original
/// tuple). A selection above an operator that *manufactures* EAD-invalid
/// tuples (say, a projection that drops a determinant and a formula that
/// still references it) falls outside the contract, exactly as in Example 4.
PlanPtr OptimizePlan(const PlanPtr& plan,
                     const std::vector<ExplicitAD>& eads,
                     RewriteReport* report = nullptr);

}  // namespace flexrel

#endif  // FLEXREL_OPTIMIZER_PLAN_REWRITE_H_
