// Determinant-constraint extraction from selection formulas.
//
// The optimizations of Section 3.1.2 ("we can exploit each selection
// concerning the determining attributes of an AD to draw conclusions about
// redundant operations") start from one question: given that a tuple passed
// the selection formula, which values can its determinant attributes hold?
// We extract a sound per-attribute over-approximation: an entry (A, {v...})
// means *formula true ⇒ A is defined and t[A] ∈ {v...}*. Attributes without
// an entry are unconstrained.

#ifndef FLEXREL_OPTIMIZER_CONSTRAINTS_H_
#define FLEXREL_OPTIMIZER_CONSTRAINTS_H_

#include <map>
#include <vector>

#include "relational/expression.h"

namespace flexrel {

/// A finite set of values an attribute is confined to. The `allowed` list
/// need not be sorted; all operations normalize internally.
struct ValueConstraint {
  std::vector<Value> allowed;

  bool Permits(const Value& v) const;
  ValueConstraint IntersectWith(const ValueConstraint& other) const;
  ValueConstraint UnionWith(const ValueConstraint& other) const;
};

/// Constrained attributes only; absence means unconstrained.
using ConstraintMap = std::map<AttrId, ValueConstraint>;

/// Extracts the implied constraints of `formula`:
///  - A = v and A IN {...} constrain A;
///  - AND merges by intersection;
///  - OR keeps an attribute only when both branches constrain it (union);
///  - NOT, comparisons other than equality, and guards constrain nothing.
ConstraintMap ExtractConstraints(const ExprPtr& formula);

}  // namespace flexrel

#endif  // FLEXREL_OPTIMIZER_CONSTRAINTS_H_
