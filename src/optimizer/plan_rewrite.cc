#include "optimizer/plan_rewrite.h"

namespace flexrel {

AttrSet GuaranteedAttrs(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kScan: {
      const FlexibleRelation* r = plan->relation();
      if (r == nullptr || r->empty()) return AttrSet();
      // The attributes common to every stored tuple — the per-relation
      // statistic a catalog would maintain incrementally.
      AttrSet common = r->row(0).attrs();
      for (const Tuple& t : r->rows()) {
        common = common.Intersect(t.attrs());
        if (common.empty()) break;
      }
      return common;
    }
    case PlanKind::kSelect: {
      // The selection's own constraints additionally guarantee the
      // attributes they read (comparisons need definedness to be true).
      AttrSet base = GuaranteedAttrs(plan->inputs()[0]);
      ConstraintMap constraints = ExtractConstraints(plan->formula());
      for (const auto& [attr, constraint] : constraints) {
        base.Insert(attr);
      }
      return base;
    }
    case PlanKind::kProject:
      return GuaranteedAttrs(plan->inputs()[0]).Intersect(plan->attrs());
    case PlanKind::kProduct:
    case PlanKind::kNaturalJoin:
      return GuaranteedAttrs(plan->inputs()[0])
          .Union(GuaranteedAttrs(plan->inputs()[1]));
    case PlanKind::kMultiwayJoin: {
      AttrSet all;
      for (const PlanPtr& in : plan->inputs()) {
        all = all.Union(GuaranteedAttrs(in));
      }
      return all;
    }
    case PlanKind::kUnion:
    case PlanKind::kOuterUnion: {
      bool first = true;
      AttrSet common;
      for (const PlanPtr& in : plan->inputs()) {
        if (in->kind() == PlanKind::kEmpty) continue;  // contributes nothing
        AttrSet g = GuaranteedAttrs(in);
        common = first ? g : common.Intersect(g);
        first = false;
      }
      return common;
    }
    case PlanKind::kDifference:
      return GuaranteedAttrs(plan->inputs()[0]);
    case PlanKind::kExtend: {
      AttrSet g = GuaranteedAttrs(plan->inputs()[0]);
      g.Insert(plan->extend_attr());
      return g;
    }
    case PlanKind::kEmpty:
      return AttrSet();
  }
  return AttrSet();
}

AttrSet PossibleAttrs(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kScan:
      return plan->relation() != nullptr ? plan->relation()->ActiveAttrs()
                                         : AttrSet();
    case PlanKind::kSelect:
    case PlanKind::kDifference:
      return PossibleAttrs(plan->inputs()[0]);
    case PlanKind::kProject:
      return PossibleAttrs(plan->inputs()[0]).Intersect(plan->attrs());
    case PlanKind::kExtend: {
      AttrSet p = PossibleAttrs(plan->inputs()[0]);
      p.Insert(plan->extend_attr());
      return p;
    }
    case PlanKind::kEmpty:
      return AttrSet();
    default: {
      AttrSet all;
      for (const PlanPtr& in : plan->inputs()) {
        all = all.Union(PossibleAttrs(in));
      }
      return all;
    }
  }
}

namespace {

// True when the EADs prove that no tuple can both satisfy `constraints` and
// carry all of `guaranteed` — i.e. some guaranteed attribute has presence
// kNever under the constraints.
bool ProvablyEmpty(const ConstraintMap& constraints, const AttrSet& guaranteed,
                   const std::vector<ExplicitAD>& eads) {
  for (AttrId a : guaranteed) {
    if (AttrPresence(a, constraints, eads) == Presence::kNever) return true;
  }
  return false;
}

PlanPtr Rewrite(const PlanPtr& plan, const std::vector<ExplicitAD>& eads,
                RewriteReport* report) {
  switch (plan->kind()) {
    case PlanKind::kSelect: {
      PlanPtr input = Rewrite(plan->inputs()[0], eads, report);
      // Example 4: drop provably redundant guards.
      GuardRewrite gr = EliminateRedundantGuards(plan->formula(), eads);
      report->guards_eliminated += gr.guards_eliminated;
      report->guards_falsified += gr.guards_falsified;
      ExprPtr formula = gr.formula;
      if (formula->kind() == ExprKind::kConst) {
        if (formula->const_value() == TriBool::kTrue) return input;
        ++report->branches_pruned;
        return Plan::Empty();
      }
      // Excluded-variant pruning: the branch below guarantees an attribute
      // the selection's constraints forbid.
      ConstraintMap constraints = ExtractConstraints(formula);
      if (ProvablyEmpty(constraints, GuaranteedAttrs(input), eads)) {
        ++report->branches_pruned;
        return Plan::Empty();
      }
      if (input->kind() == PlanKind::kEmpty) return input;
      // Join pushdown: when the formula reads only attributes that are
      // guaranteed on one join side and impossible on the other, its value
      // on a joined tuple equals its value on that side's tuple — select
      // early, join less.
      if (input->kind() == PlanKind::kNaturalJoin ||
          input->kind() == PlanKind::kProduct) {
        AttrSet refs = formula->ReferencedAttrs();
        const PlanPtr& left = input->inputs()[0];
        const PlanPtr& right = input->inputs()[1];
        auto rebuild = [&](PlanPtr l, PlanPtr r) {
          return input->kind() == PlanKind::kNaturalJoin
                     ? Plan::NaturalJoin(std::move(l), std::move(r))
                     : Plan::Product(std::move(l), std::move(r));
        };
        if (refs.IsSubsetOf(GuaranteedAttrs(left)) &&
            !refs.Intersects(PossibleAttrs(right))) {
          ++report->selects_pushed;
          return Rewrite(rebuild(Plan::Select(left, formula), right), eads,
                         report);
        }
        if (refs.IsSubsetOf(GuaranteedAttrs(right)) &&
            !refs.Intersects(PossibleAttrs(left))) {
          ++report->selects_pushed;
          return Rewrite(rebuild(left, Plan::Select(right, formula)), eads,
                         report);
        }
      }
      // Selection pushdown through (outer) unions, re-optimizing each
      // branch (this is where per-variant pruning fires).
      if (input->kind() == PlanKind::kUnion ||
          input->kind() == PlanKind::kOuterUnion) {
        ++report->selects_pushed;
        std::vector<PlanPtr> branches;
        for (const PlanPtr& in : input->inputs()) {
          PlanPtr pushed = Rewrite(Plan::Select(in, formula), eads, report);
          if (pushed->kind() == PlanKind::kEmpty) continue;
          branches.push_back(std::move(pushed));
        }
        if (branches.empty()) return Plan::Empty();
        if (input->kind() == PlanKind::kUnion && branches.size() == 2) {
          return Plan::Union(branches[0], branches[1]);
        }
        if (branches.size() == 1) return branches[0];
        return Plan::OuterUnion(std::move(branches));
      }
      return Plan::Select(input, formula);
    }
    case PlanKind::kProject: {
      PlanPtr input = Rewrite(plan->inputs()[0], eads, report);
      if (input->kind() == PlanKind::kEmpty) return input;
      return Plan::Project(input, plan->attrs());
    }
    case PlanKind::kProduct:
    case PlanKind::kNaturalJoin: {
      PlanPtr left = Rewrite(plan->inputs()[0], eads, report);
      PlanPtr right = Rewrite(plan->inputs()[1], eads, report);
      // A join/product with an empty side is empty.
      if (left->kind() == PlanKind::kEmpty ||
          right->kind() == PlanKind::kEmpty) {
        ++report->branches_pruned;
        return Plan::Empty();
      }
      return plan->kind() == PlanKind::kProduct
                 ? Plan::Product(left, right)
                 : Plan::NaturalJoin(left, right);
    }
    case PlanKind::kMultiwayJoin: {
      std::vector<PlanPtr> ins;
      for (const PlanPtr& in : plan->inputs()) {
        PlanPtr r = Rewrite(in, eads, report);
        if (r->kind() == PlanKind::kEmpty) {
          ++report->branches_pruned;
          return Plan::Empty();
        }
        ins.push_back(std::move(r));
      }
      return Plan::MultiwayJoin(std::move(ins));
    }
    case PlanKind::kUnion:
    case PlanKind::kOuterUnion: {
      std::vector<PlanPtr> ins;
      for (const PlanPtr& in : plan->inputs()) {
        PlanPtr r = Rewrite(in, eads, report);
        if (r->kind() == PlanKind::kEmpty) continue;  // drop empty branches
        ins.push_back(std::move(r));
      }
      if (ins.empty()) return Plan::Empty();
      // NOTE: keeping a lone surviving branch keeps the result identical
      // (union with nothing), so collapse.
      if (ins.size() == 1) return ins[0];
      if (plan->kind() == PlanKind::kUnion && ins.size() == 2) {
        return Plan::Union(ins[0], ins[1]);
      }
      return Plan::OuterUnion(std::move(ins));
    }
    case PlanKind::kDifference: {
      PlanPtr left = Rewrite(plan->inputs()[0], eads, report);
      PlanPtr right = Rewrite(plan->inputs()[1], eads, report);
      if (left->kind() == PlanKind::kEmpty) return Plan::Empty();
      if (right->kind() == PlanKind::kEmpty) return left;
      return Plan::Difference(left, right);
    }
    case PlanKind::kExtend: {
      PlanPtr input = Rewrite(plan->inputs()[0], eads, report);
      if (input->kind() == PlanKind::kEmpty) return input;
      return Plan::Extend(input, plan->extend_attr(), plan->extend_value());
    }
    case PlanKind::kScan:
    case PlanKind::kEmpty:
      return plan;
  }
  return plan;
}

}  // namespace

PlanPtr OptimizePlan(const PlanPtr& plan, const std::vector<ExplicitAD>& eads,
                     RewriteReport* report) {
  RewriteReport local;
  PlanPtr out = Rewrite(plan, eads, report != nullptr ? report : &local);
  return out;
}

}  // namespace flexrel
