#include "optimizer/plan_rewrite.h"

#include <algorithm>
#include <numeric>

#include "algebra/evaluate.h"
#include "engine/pli_cache.h"

namespace flexrel {

size_t EstimateRows(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kScan:
      return plan->relation() != nullptr ? plan->relation()->size() : 0;
    case PlanKind::kEmpty:
      return 0;
    case PlanKind::kSelect: {
      const PlanPtr& input = plan->inputs()[0];
      size_t base = EstimateRows(input);
      const Expr& f = *plan->formula();
      // Equality/IN over a base scan: the value index knows the exact
      // cluster sizes — the same PLI statistic (and the same Kleene null
      // rule, via IndexMatches) the evaluator selects by.
      if (input->kind() == PlanKind::kScan && input->relation() != nullptr &&
          !input->relation()->empty() && IsIndexableSelect(f)) {
        size_t matched =
            IndexMatches(*input->relation()->pli_cache()->IndexFor(f.attr()),
                         f)
                .size();
        return std::min(base, matched);
      }
      return base;  // no provable reduction for general formulas
    }
    case PlanKind::kProject:
    case PlanKind::kExtend:
      return EstimateRows(plan->inputs()[0]);
    case PlanKind::kProduct:
      return EstimateRows(plan->inputs()[0]) *
             EstimateRows(plan->inputs()[1]);
    case PlanKind::kDifference:
      return EstimateRows(plan->inputs()[0]);
    case PlanKind::kUnion:
    case PlanKind::kOuterUnion: {
      size_t total = 0;
      for (const PlanPtr& in : plan->inputs()) total += EstimateRows(in);
      return total;
    }
    case PlanKind::kNaturalJoin:
      // Shared-attribute joins usually filter; cap at the larger side.
      return std::max(EstimateRows(plan->inputs()[0]),
                      EstimateRows(plan->inputs()[1]));
    case PlanKind::kMultiwayJoin: {
      size_t worst = 0;
      for (const PlanPtr& in : plan->inputs()) {
        worst = std::max(worst, EstimateRows(in));
      }
      return worst;
    }
  }
  return 0;
}

AttrSet GuaranteedAttrs(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kScan: {
      const FlexibleRelation* r = plan->relation();
      if (r == nullptr || r->empty()) return AttrSet();
      // The attributes common to every stored tuple — the per-relation
      // statistic a catalog would maintain incrementally.
      AttrSet common = r->row(0).attrs();
      for (const Tuple& t : r->rows()) {
        common = common.Intersect(t.attrs());
        if (common.empty()) break;
      }
      return common;
    }
    case PlanKind::kSelect: {
      // The selection's own constraints additionally guarantee the
      // attributes they read (comparisons need definedness to be true).
      AttrSet base = GuaranteedAttrs(plan->inputs()[0]);
      ConstraintMap constraints = ExtractConstraints(plan->formula());
      for (const auto& [attr, constraint] : constraints) {
        base.Insert(attr);
      }
      return base;
    }
    case PlanKind::kProject:
      return GuaranteedAttrs(plan->inputs()[0]).Intersect(plan->attrs());
    case PlanKind::kProduct:
    case PlanKind::kNaturalJoin:
      return GuaranteedAttrs(plan->inputs()[0])
          .Union(GuaranteedAttrs(plan->inputs()[1]));
    case PlanKind::kMultiwayJoin: {
      AttrSet all;
      for (const PlanPtr& in : plan->inputs()) {
        all = all.Union(GuaranteedAttrs(in));
      }
      return all;
    }
    case PlanKind::kUnion:
    case PlanKind::kOuterUnion: {
      bool first = true;
      AttrSet common;
      for (const PlanPtr& in : plan->inputs()) {
        if (in->kind() == PlanKind::kEmpty) continue;  // contributes nothing
        AttrSet g = GuaranteedAttrs(in);
        common = first ? g : common.Intersect(g);
        first = false;
      }
      return common;
    }
    case PlanKind::kDifference:
      return GuaranteedAttrs(plan->inputs()[0]);
    case PlanKind::kExtend: {
      AttrSet g = GuaranteedAttrs(plan->inputs()[0]);
      g.Insert(plan->extend_attr());
      return g;
    }
    case PlanKind::kEmpty:
      return AttrSet();
  }
  return AttrSet();
}

AttrSet PossibleAttrs(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kScan:
      return plan->relation() != nullptr ? plan->relation()->ActiveAttrs()
                                         : AttrSet();
    case PlanKind::kSelect:
    case PlanKind::kDifference:
      return PossibleAttrs(plan->inputs()[0]);
    case PlanKind::kProject:
      return PossibleAttrs(plan->inputs()[0]).Intersect(plan->attrs());
    case PlanKind::kExtend: {
      AttrSet p = PossibleAttrs(plan->inputs()[0]);
      p.Insert(plan->extend_attr());
      return p;
    }
    case PlanKind::kEmpty:
      return AttrSet();
    default: {
      AttrSet all;
      for (const PlanPtr& in : plan->inputs()) {
        all = all.Union(PossibleAttrs(in));
      }
      return all;
    }
  }
}

namespace {

// True when the EADs prove that no tuple can both satisfy `constraints` and
// carry all of `guaranteed` — i.e. some guaranteed attribute has presence
// kNever under the constraints.
bool ProvablyEmpty(const ConstraintMap& constraints, const AttrSet& guaranteed,
                   const std::vector<ExplicitAD>& eads) {
  for (AttrId a : guaranteed) {
    if (AttrPresence(a, constraints, eads) == Presence::kNever) return true;
  }
  return false;
}

PlanPtr Rewrite(const PlanPtr& plan, const std::vector<ExplicitAD>& eads,
                RewriteReport* report) {
  switch (plan->kind()) {
    case PlanKind::kSelect: {
      PlanPtr input = Rewrite(plan->inputs()[0], eads, report);
      // Example 4: drop provably redundant guards.
      GuardRewrite gr = EliminateRedundantGuards(plan->formula(), eads);
      report->guards_eliminated += gr.guards_eliminated;
      report->guards_falsified += gr.guards_falsified;
      ExprPtr formula = gr.formula;
      if (formula->kind() == ExprKind::kConst) {
        if (formula->const_value() == TriBool::kTrue) return input;
        ++report->branches_pruned;
        return Plan::Empty();
      }
      // Excluded-variant pruning: the branch below guarantees an attribute
      // the selection's constraints forbid.
      ConstraintMap constraints = ExtractConstraints(formula);
      if (ProvablyEmpty(constraints, GuaranteedAttrs(input), eads)) {
        ++report->branches_pruned;
        return Plan::Empty();
      }
      if (input->kind() == PlanKind::kEmpty) return input;
      // Join pushdown: when the formula reads only attributes that are
      // guaranteed on one join side and impossible on the other, its value
      // on a joined tuple equals its value on that side's tuple — select
      // early, join less.
      if (input->kind() == PlanKind::kNaturalJoin ||
          input->kind() == PlanKind::kProduct) {
        AttrSet refs = formula->ReferencedAttrs();
        const PlanPtr& left = input->inputs()[0];
        const PlanPtr& right = input->inputs()[1];
        auto rebuild = [&](PlanPtr l, PlanPtr r) {
          return input->kind() == PlanKind::kNaturalJoin
                     ? Plan::NaturalJoin(std::move(l), std::move(r))
                     : Plan::Product(std::move(l), std::move(r));
        };
        if (refs.IsSubsetOf(GuaranteedAttrs(left)) &&
            !refs.Intersects(PossibleAttrs(right))) {
          ++report->selects_pushed;
          return Rewrite(rebuild(Plan::Select(left, formula), right), eads,
                         report);
        }
        if (refs.IsSubsetOf(GuaranteedAttrs(right)) &&
            !refs.Intersects(PossibleAttrs(left))) {
          ++report->selects_pushed;
          return Rewrite(rebuild(left, Plan::Select(right, formula)), eads,
                         report);
        }
      }
      // Selection pushdown through (outer) unions, re-optimizing each
      // branch (this is where per-variant pruning fires).
      if (input->kind() == PlanKind::kUnion ||
          input->kind() == PlanKind::kOuterUnion) {
        ++report->selects_pushed;
        std::vector<PlanPtr> branches;
        for (const PlanPtr& in : input->inputs()) {
          PlanPtr pushed = Rewrite(Plan::Select(in, formula), eads, report);
          if (pushed->kind() == PlanKind::kEmpty) continue;
          branches.push_back(std::move(pushed));
        }
        if (branches.empty()) return Plan::Empty();
        if (input->kind() == PlanKind::kUnion && branches.size() == 2) {
          return Plan::Union(branches[0], branches[1]);
        }
        if (branches.size() == 1) return branches[0];
        return Plan::OuterUnion(std::move(branches));
      }
      return Plan::Select(input, formula);
    }
    case PlanKind::kProject: {
      PlanPtr input = Rewrite(plan->inputs()[0], eads, report);
      if (input->kind() == PlanKind::kEmpty) return input;
      return Plan::Project(input, plan->attrs());
    }
    case PlanKind::kProduct:
    case PlanKind::kNaturalJoin: {
      PlanPtr left = Rewrite(plan->inputs()[0], eads, report);
      PlanPtr right = Rewrite(plan->inputs()[1], eads, report);
      // A join/product with an empty side is empty.
      if (left->kind() == PlanKind::kEmpty ||
          right->kind() == PlanKind::kEmpty) {
        ++report->branches_pruned;
        return Plan::Empty();
      }
      return plan->kind() == PlanKind::kProduct
                 ? Plan::Product(left, right)
                 : Plan::NaturalJoin(left, right);
    }
    case PlanKind::kMultiwayJoin: {
      std::vector<PlanPtr> ins;
      for (const PlanPtr& in : plan->inputs()) {
        PlanPtr r = Rewrite(in, eads, report);
        if (r->kind() == PlanKind::kEmpty) {
          ++report->branches_pruned;
          return Plan::Empty();
        }
        ins.push_back(std::move(r));
      }
      // Order legs smallest estimated output first, so the evaluator's
      // left-deep fold keeps its intermediates small. Natural join over
      // heterogeneous tuples is commutative and associative (a combination
      // survives iff all pairwise overlaps agree, independent of order), so
      // reordering is result-preserving.
      std::vector<size_t> estimates(ins.size());
      for (size_t i = 0; i < ins.size(); ++i) estimates[i] = EstimateRows(ins[i]);
      std::vector<size_t> order(ins.size());
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return estimates[a] < estimates[b];
      });
      if (!std::is_sorted(order.begin(), order.end())) {
        ++report->joins_reordered;
        std::vector<PlanPtr> sorted;
        sorted.reserve(ins.size());
        for (size_t i : order) sorted.push_back(std::move(ins[i]));
        ins = std::move(sorted);
      }
      return Plan::MultiwayJoin(std::move(ins));
    }
    case PlanKind::kUnion:
    case PlanKind::kOuterUnion: {
      std::vector<PlanPtr> ins;
      for (const PlanPtr& in : plan->inputs()) {
        PlanPtr r = Rewrite(in, eads, report);
        if (r->kind() == PlanKind::kEmpty) continue;  // drop empty branches
        ins.push_back(std::move(r));
      }
      if (ins.empty()) return Plan::Empty();
      // NOTE: keeping a lone surviving branch keeps the result identical
      // (union with nothing), so collapse.
      if (ins.size() == 1) return ins[0];
      if (plan->kind() == PlanKind::kUnion && ins.size() == 2) {
        return Plan::Union(ins[0], ins[1]);
      }
      return Plan::OuterUnion(std::move(ins));
    }
    case PlanKind::kDifference: {
      PlanPtr left = Rewrite(plan->inputs()[0], eads, report);
      PlanPtr right = Rewrite(plan->inputs()[1], eads, report);
      if (left->kind() == PlanKind::kEmpty) return Plan::Empty();
      if (right->kind() == PlanKind::kEmpty) return left;
      return Plan::Difference(left, right);
    }
    case PlanKind::kExtend: {
      PlanPtr input = Rewrite(plan->inputs()[0], eads, report);
      if (input->kind() == PlanKind::kEmpty) return input;
      return Plan::Extend(input, plan->extend_attr(), plan->extend_value());
    }
    case PlanKind::kScan:
    case PlanKind::kEmpty:
      return plan;
  }
  return plan;
}

}  // namespace

PlanPtr OptimizePlan(const PlanPtr& plan, const std::vector<ExplicitAD>& eads,
                     RewriteReport* report) {
  RewriteReport local;
  PlanPtr out = Rewrite(plan, eads, report != nullptr ? report : &local);
  return out;
}

}  // namespace flexrel
