#include "algebra/plan.h"

#include <sstream>

#include "util/string_util.h"

namespace flexrel {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kSelect:
      return "Select";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kProduct:
      return "Product";
    case PlanKind::kUnion:
      return "Union";
    case PlanKind::kDifference:
      return "Difference";
    case PlanKind::kExtend:
      return "Extend";
    case PlanKind::kOuterUnion:
      return "OuterUnion";
    case PlanKind::kNaturalJoin:
      return "NaturalJoin";
    case PlanKind::kMultiwayJoin:
      return "MultiwayJoin";
    case PlanKind::kEmpty:
      return "Empty";
  }
  return "?";
}

PlanPtr Plan::Scan(const FlexibleRelation* relation) {
  auto p = std::shared_ptr<Plan>(new Plan(PlanKind::kScan));
  p->relation_ = relation;
  return p;
}

PlanPtr Plan::Select(PlanPtr input, ExprPtr formula) {
  auto p = std::shared_ptr<Plan>(new Plan(PlanKind::kSelect));
  p->inputs_.push_back(std::move(input));
  p->formula_ = std::move(formula);
  return p;
}

PlanPtr Plan::Project(PlanPtr input, AttrSet attrs) {
  auto p = std::shared_ptr<Plan>(new Plan(PlanKind::kProject));
  p->inputs_.push_back(std::move(input));
  p->attrs_ = std::move(attrs);
  return p;
}

PlanPtr Plan::Product(PlanPtr left, PlanPtr right) {
  auto p = std::shared_ptr<Plan>(new Plan(PlanKind::kProduct));
  p->inputs_.push_back(std::move(left));
  p->inputs_.push_back(std::move(right));
  return p;
}

PlanPtr Plan::Union(PlanPtr left, PlanPtr right) {
  auto p = std::shared_ptr<Plan>(new Plan(PlanKind::kUnion));
  p->inputs_.push_back(std::move(left));
  p->inputs_.push_back(std::move(right));
  return p;
}

PlanPtr Plan::Difference(PlanPtr left, PlanPtr right) {
  auto p = std::shared_ptr<Plan>(new Plan(PlanKind::kDifference));
  p->inputs_.push_back(std::move(left));
  p->inputs_.push_back(std::move(right));
  return p;
}

PlanPtr Plan::Extend(PlanPtr input, AttrId attr, Value value) {
  auto p = std::shared_ptr<Plan>(new Plan(PlanKind::kExtend));
  p->inputs_.push_back(std::move(input));
  p->extend_attr_ = attr;
  p->extend_value_ = std::move(value);
  return p;
}

PlanPtr Plan::OuterUnion(std::vector<PlanPtr> inputs) {
  auto p = std::shared_ptr<Plan>(new Plan(PlanKind::kOuterUnion));
  p->inputs_ = std::move(inputs);
  return p;
}

PlanPtr Plan::NaturalJoin(PlanPtr left, PlanPtr right) {
  auto p = std::shared_ptr<Plan>(new Plan(PlanKind::kNaturalJoin));
  p->inputs_.push_back(std::move(left));
  p->inputs_.push_back(std::move(right));
  return p;
}

PlanPtr Plan::MultiwayJoin(std::vector<PlanPtr> inputs) {
  auto p = std::shared_ptr<Plan>(new Plan(PlanKind::kMultiwayJoin));
  p->inputs_ = std::move(inputs);
  return p;
}

PlanPtr Plan::Empty() {
  return std::shared_ptr<Plan>(new Plan(PlanKind::kEmpty));
}

std::string Plan::ToString(const AttrCatalog& catalog, int indent) const {
  std::ostringstream os;
  os << std::string(static_cast<size_t>(indent) * 2, ' ') << PlanKindName(kind_);
  switch (kind_) {
    case PlanKind::kScan:
      os << "(" << relation_->name() << ")";
      break;
    case PlanKind::kSelect:
      os << "[" << formula_->ToString(catalog) << "]";
      break;
    case PlanKind::kProject:
      os << attrs_.ToString(catalog);
      break;
    case PlanKind::kExtend:
      os << "[" << catalog.Name(extend_attr_) << " := "
         << extend_value_.ToString() << "]";
      break;
    default:
      break;
  }
  os << "\n";
  for (const PlanPtr& in : inputs_) {
    os << in->ToString(catalog, indent + 1);
  }
  return os.str();
}

}  // namespace flexrel
