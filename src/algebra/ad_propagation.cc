#include "algebra/ad_propagation.h"

namespace flexrel {

DependencySet PropagateProduct(const DependencySet& left,
                               const DependencySet& right) {
  DependencySet out = left;
  for (const FuncDep& fd : right.fds()) out.AddFd(fd);
  for (const AttrDep& ad : right.ads()) out.AddAd(ad);
  return out;
}

DependencySet PropagateProject(const DependencySet& in, const AttrSet& keep) {
  DependencySet out;
  for (const AttrDep& ad : in.ads()) {
    if (!ad.lhs.IsSubsetOf(keep)) continue;  // LHS must survive intact
    out.AddAd(AttrDep{ad.lhs, ad.rhs.Intersect(keep)});
  }
  for (const FuncDep& fd : in.fds()) {
    if (!fd.lhs.IsSubsetOf(keep)) continue;
    out.AddFd(FuncDep{fd.lhs, fd.rhs.Intersect(keep)});
  }
  return out;
}

DependencySet PropagateSelect(const DependencySet& in) { return in; }

DependencySet PropagateUnion() { return DependencySet(); }

DependencySet PropagateDifference(const DependencySet& left) { return left; }

DependencySet PropagateExtend(const DependencySet& in, AttrId tag) {
  DependencySet out = in;
  out.AddFd(FuncDep{AttrSet(), AttrSet::Of(tag)});
  return out;
}

DependencySet PropagateTaggedUnion(const std::vector<DependencySet>& inputs,
                                   AttrId tag) {
  DependencySet out;
  for (const DependencySet& in : inputs) {
    for (const AttrDep& ad : in.ads()) {
      AttrSet lhs = ad.lhs;
      lhs.Insert(tag);
      out.AddAd(AttrDep{std::move(lhs), ad.rhs});
    }
    // FDs survive with the tag folded into the LHS for the same reason
    // (tuples agreeing on AX come from the same input, where X --func--> Y
    // held).
    for (const FuncDep& fd : in.fds()) {
      AttrSet lhs = fd.lhs;
      lhs.Insert(tag);
      out.AddFd(FuncDep{std::move(lhs), fd.rhs});
    }
  }
  return out;
}

}  // namespace flexrel
