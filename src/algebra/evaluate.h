// Plan evaluation over flexible relations.
//
// Evaluation is strict and materializing: each node produces a derived
// FlexibleRelation whose dependency set is propagated per Theorem 4.3
// (ad_propagation.h). Instances follow set semantics (the paper defines an
// instance as a finite set of tuples), so operators deduplicate.
//
// Two evaluation paths exist, selected by EvalOptions::use_engine:
//
//  - The *naive* path evaluates every selection formula per tuple and every
//    natural join by an O(n·m) nested loop. It is the reference oracle: the
//    direct transcription of the operator definitions, kept bit-for-bit
//    stable so the accelerated path can be cross-validated against it
//    (tests/engine_eval_test.cc).
//  - The *engine* path reads the partition engine (src/engine/). Equality
//    selections over base scans resolve via the scanned relation's attached
//    PliCache value index instead of evaluating the predicate per tuple;
//    natural joins bucket the build side by shared-attribute signature and
//    probe only cluster-compatible pairs; multiway joins order their legs by
//    PLI-derived cluster-count estimates, smallest expected intermediate
//    first. Results — rows and propagated dependencies — are identical to
//    the naive path; only the EvalStats work counters shrink.

#ifndef FLEXREL_ALGEBRA_EVALUATE_H_
#define FLEXREL_ALGEBRA_EVALUATE_H_

#include <string>
#include <vector>

#include "algebra/plan.h"
#include "engine/pli_cache.h"
#include "util/exec_context.h"
#include "util/result.h"

namespace flexrel {

/// True when `formula` is a selection the value index can answer outright: a
/// plain equality or IN over a single attribute. Everything else
/// (inequalities, guards, boolean structure) needs per-tuple Kleene
/// evaluation.
bool IsIndexableSelect(const Expr& formula);

/// Row ids (ascending) that the indexable `formula` matches in `index` —
/// the single point implementing the Kleene null rule for index lookups
/// (comparing a null, or against one, never yields True), shared by the
/// engine's select path and the optimizer's cardinality estimates so the
/// two cannot drift. Requires IsIndexableSelect(formula).
std::vector<Pli::RowId> IndexMatches(const PliCache::ValueIndex& index,
                                     const Expr& formula);

/// Coded twin of IndexMatches: literals translate through the column's
/// dictionary (CodeOf; null literals skipped — the same Kleene rule) and
/// the matching code buckets merge back into scan order. Row-for-row
/// identical to IndexMatches over the same instance — engine_dictionary_test
/// soaks the equality. Requires IsIndexableSelect(formula).
std::vector<Pli::RowId> CodedMatches(const CodeColumn& column,
                                     const Expr& formula);

/// Work counters, reported for the optimizer experiments (E4/E5): comparing
/// an optimized against an unoptimized plan is a statement about these
/// numbers, not only wall-clock time.
struct EvalStats {
  size_t tuples_scanned = 0;      ///< tuples read from scans
  size_t tuples_emitted = 0;      ///< tuples produced by plan operators
  size_t intermediate_tuples = 0; ///< tuples of multiway-join intermediates
  size_t predicate_evals = 0;     ///< selection formula evaluations
  size_t join_probes = 0;         ///< tuple-pair compatibility checks

  EvalStats& operator+=(const EvalStats& other);
};

/// Evaluation knobs, mirroring DiscoveryOptions::use_engine: the engine path
/// is the default, the naive path stays available as the reference oracle.
struct EvalOptions {
  /// Evaluate through the partition engine (PLI-backed selections, hash/PLI
  /// joins, estimate-ordered multiway joins). False selects the naive
  /// reference path.
  bool use_engine = true;
  /// Consult (and lazily build) the scanned relations' attached PliCaches.
  /// False keeps the engine's join algorithm but skips everything that
  /// would touch per-relation cache state: equality selections fall back to
  /// per-tuple evaluation and join-order estimates are computed ad hoc.
  bool use_cache = true;
  /// Resolve cache-backed operators through the dictionary-encoded value
  /// plane (engine/dictionary.h): equality/IN selections look literals up
  /// as codes and merge the column's dense code->rows buckets, and hashed
  /// joins compare per-join code signatures instead of Value projections.
  /// Requires the relation's cache to expose code columns
  /// (PliCacheOptions::use_codes); otherwise each operator silently falls
  /// back to the value-keyed path. False pins the value-keyed oracle the
  /// coded operators are cross-validated against (engine_dictionary_test,
  /// bench_join_prune's *ValueKeyed twins).
  bool use_codes = true;
  /// Cooperative execution control (util/exec_context.h): deadline and
  /// cancellation for the evaluation. Not owned; must outlive the call.
  /// Polled once per operator and periodically inside join probe loops;
  /// a trip surfaces as Status kCancelled / kDeadlineExceeded through the
  /// Result — evaluation is strict and materializing, so there is no
  /// partial relation to return. Null (the default) means unbounded.
  const ExecContext* exec = nullptr;
};

/// Evaluates `plan` with default options; on success the result's deps()
/// hold the dependencies propagated by Theorem 4.3. `stats` (optional)
/// accumulates work counters.
Result<FlexibleRelation> Evaluate(const PlanPtr& plan,
                                  EvalStats* stats = nullptr);

/// Evaluates `plan` on the path chosen by `options`.
Result<FlexibleRelation> Evaluate(const PlanPtr& plan,
                                  const EvalOptions& options,
                                  EvalStats* stats = nullptr);

// ---------------------------------------------------------------------------
// EXPLAIN: the same evaluation, with per-operator attribution folded into a
// report — chosen join order, index hits, estimated vs. actual rows.
// ---------------------------------------------------------------------------

/// One fold step of an estimate-ordered multiway join: which leg the greedy
/// order picked, the cost estimate that picked it, and the rows the fold
/// actually produced. The first step is the seed leg (its estimate is its
/// own size); the last step's output is the join's final result.
struct ExplainJoinStep {
  size_t leg = 0;         ///< index of the chosen leg among the plan inputs
  std::string leg_name;   ///< the leg relation's name at choice time
  double est_rows = 0;    ///< estimated rows when the order chose this leg
  size_t actual_rows = 0; ///< rows the accumulator held after this step
};

/// One evaluated operator. `actual_rows` is the operator's materialized
/// output; `elapsed_ms` covers the operator including its children (the tree
/// is strict, so a parent's time is a superset of its children's).
struct ExplainNode {
  std::string op;          ///< operator label, e.g. "select[index]", "scan(R)"
  size_t actual_rows = 0;
  double elapsed_ms = 0;
  bool index_hit = false;  ///< answered via a value-index lookup
  std::vector<ExplainJoinStep> join_steps;  ///< multiway joins only
  std::vector<ExplainNode> children;        ///< one per plan input, in order
};

/// The full report: the operator tree plus the run's work counters. The
/// intermediate rows of every multiway join's non-final steps sum to
/// `stats.intermediate_tuples` — the drift-proofing identity
/// engine_eval_test asserts.
struct ExplainReport {
  ExplainNode root;
  EvalStats stats;

  /// Indented human-readable rendering (one line per operator; multiway
  /// joins list their fold order with est/actual per leg).
  std::string ToString() const;
};

/// Evaluates `plan` and returns the attributed operator tree instead of the
/// relation. Runs the real evaluator — the report describes exactly the
/// work Evaluate() with the same options would do.
Result<ExplainReport> Explain(const PlanPtr& plan,
                              const EvalOptions& options = {});

}  // namespace flexrel

#endif  // FLEXREL_ALGEBRA_EVALUATE_H_
