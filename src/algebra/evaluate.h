// Plan evaluation over flexible relations.
//
// Evaluation is strict and materializing: each node produces a derived
// FlexibleRelation whose dependency set is propagated per Theorem 4.3
// (ad_propagation.h). Instances follow set semantics (the paper defines an
// instance as a finite set of tuples), so operators deduplicate.

#ifndef FLEXREL_ALGEBRA_EVALUATE_H_
#define FLEXREL_ALGEBRA_EVALUATE_H_

#include "algebra/plan.h"
#include "util/result.h"

namespace flexrel {

/// Work counters, reported for the optimizer experiments (E4/E5): comparing
/// an optimized against an unoptimized plan is a statement about these
/// numbers, not only wall-clock time.
struct EvalStats {
  size_t tuples_scanned = 0;    ///< tuples read from scans
  size_t tuples_emitted = 0;    ///< tuples produced across all operators
  size_t predicate_evals = 0;   ///< selection formula evaluations
  size_t join_probes = 0;       ///< tuple-pair compatibility checks

  EvalStats& operator+=(const EvalStats& other);
};

/// Evaluates `plan`; on success the result's deps() hold the dependencies
/// propagated by Theorem 4.3. `stats` (optional) accumulates work counters.
Result<FlexibleRelation> Evaluate(const PlanPtr& plan,
                                  EvalStats* stats = nullptr);

}  // namespace flexrel

#endif  // FLEXREL_ALGEBRA_EVALUATE_H_
