// Logical query plans over flexible relations.
//
// The paper defers its full algebra to a companion report but fixes, in
// Theorem 4.3, the operators whose interaction with attribute dependencies
// matters: selection σ, projection π, cartesian product ×, union ∪,
// difference −, and the extension operator ε_{A:a} used to tag inputs before
// an outer union (rule (6)). We add the outer union itself and the natural /
// multiway joins that the decomposition translations of Section 3.1.1 need
// for restoration.

#ifndef FLEXREL_ALGEBRA_PLAN_H_
#define FLEXREL_ALGEBRA_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "core/flexible_relation.h"
#include "relational/expression.h"

namespace flexrel {

enum class PlanKind : uint8_t {
  kScan,
  kSelect,
  kProject,
  kProduct,
  kUnion,
  kDifference,
  kExtend,
  kOuterUnion,
  kNaturalJoin,
  kMultiwayJoin,
  kEmpty,  ///< produces no tuples; created by optimizer branch pruning
};

const char* PlanKindName(PlanKind kind);

class Plan;
using PlanPtr = std::shared_ptr<const Plan>;

/// Immutable logical plan node. Build with the factories; evaluate with
/// Evaluate() (evaluate.h).
class Plan {
 public:
  /// Leaf: reads `relation`. The relation must outlive the plan.
  static PlanPtr Scan(const FlexibleRelation* relation);

  /// σ_formula(input).
  static PlanPtr Select(PlanPtr input, ExprPtr formula);

  /// π_attrs(input) with set semantics (duplicate projections collapse).
  static PlanPtr Project(PlanPtr input, AttrSet attrs);

  /// left × right (attribute-disjoint inputs).
  static PlanPtr Product(PlanPtr left, PlanPtr right);

  /// left ∪ right (set union of possibly heterogeneous tuples).
  static PlanPtr Union(PlanPtr left, PlanPtr right);

  /// left − right.
  static PlanPtr Difference(PlanPtr left, PlanPtr right);

  /// ε_{attr:value}(input): extends every tuple by `attr` with `value`.
  static PlanPtr Extend(PlanPtr input, AttrId attr, Value value);

  /// Outer union of any number of inputs. In the flexible model this needs
  /// no null padding: heterogeneous tuples simply coexist.
  static PlanPtr OuterUnion(std::vector<PlanPtr> inputs);

  /// left ⋈ right: tuples combine when they agree on their shared
  /// attributes (evaluated per tuple pair, as schemes are heterogeneous).
  static PlanPtr NaturalJoin(PlanPtr left, PlanPtr right);

  /// ⋈(inputs...): the multiway join restoring a vertical decomposition.
  static PlanPtr MultiwayJoin(std::vector<PlanPtr> inputs);

  /// The empty relation (no tuples, no dependencies). Produced by optimizer
  /// rewrites that prove a subtree cannot contribute tuples.
  static PlanPtr Empty();

  PlanKind kind() const { return kind_; }
  const FlexibleRelation* relation() const { return relation_; }
  const ExprPtr& formula() const { return formula_; }
  const AttrSet& attrs() const { return attrs_; }
  AttrId extend_attr() const { return extend_attr_; }
  const Value& extend_value() const { return extend_value_; }
  const std::vector<PlanPtr>& inputs() const { return inputs_; }

  /// Single-line head plus indented children.
  std::string ToString(const AttrCatalog& catalog, int indent = 0) const;

 private:
  explicit Plan(PlanKind kind) : kind_(kind) {}

  PlanKind kind_;
  const FlexibleRelation* relation_ = nullptr;  // kScan
  ExprPtr formula_;                             // kSelect
  AttrSet attrs_;                               // kProject
  AttrId extend_attr_ = 0;                      // kExtend
  Value extend_value_;                          // kExtend
  std::vector<PlanPtr> inputs_;
};

}  // namespace flexrel

#endif  // FLEXREL_ALGEBRA_PLAN_H_
