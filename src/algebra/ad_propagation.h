// Dependency propagation through algebra operators (Theorem 4.3).
//
//   (1) ads(FR1 × FR2)   = ads(FR1) ∪ ads(FR2)
//   (2) ads(π_X(FR))     = { V --attr--> W ∩ X | V --attr--> W ∈ ads(FR),
//                            V ⊆ X }
//   (3) ads(σ_F(FR))     = ads(FR)
//   (4) ads(FR1 ∪ FR2)   = ∅
//   (5) ads(FR1 − FR2)   = ads(FR1)
//   (6) ads(ε_{A:a1}(FR1) ∪ ε_{A:a2}(FR2))
//                        = { AX --attr--> Y | X --attr--> Y ∈ ads(FR1) ∪
//                            ads(FR2) }   (a1 ≠ a2; tags discriminate)
//
// We propagate functional dependencies alongside: σ, −, and × preserve them
// under the same reasoning, π keeps FDs whose LHS survives (RHS intersected),
// ∪ drops them, and ε adds the constant dependency ∅ --func--> A (every
// output tuple carries the same tag value). Joins propagate nothing — the
// theorem makes no claim, and conservative emptiness keeps the rules sound.

#ifndef FLEXREL_ALGEBRA_AD_PROPAGATION_H_
#define FLEXREL_ALGEBRA_AD_PROPAGATION_H_

#include "core/dependency_set.h"

namespace flexrel {

/// Rule (1) — and the analogous FD union.
DependencySet PropagateProduct(const DependencySet& left,
                               const DependencySet& right);

/// Rule (2) — projection onto `keep`.
DependencySet PropagateProject(const DependencySet& in, const AttrSet& keep);

/// Rule (3) — selection.
DependencySet PropagateSelect(const DependencySet& in);

/// Rule (4) — plain union.
DependencySet PropagateUnion();

/// Rule (5) — difference.
DependencySet PropagateDifference(const DependencySet& left);

/// ε_{A:a}: dependencies survive unchanged; additionally ∅ --func--> {A}
/// (the tag is constant) and, per the left-augmentation remark before rule
/// (6), each X --attr--> Y may be carried as AX --attr--> Y.
DependencySet PropagateExtend(const DependencySet& in, AttrId tag);

/// Rule (6) — tagged outer union over any number of inputs, each extended by
/// the same tag attribute with pairwise distinct values.
DependencySet PropagateTaggedUnion(const std::vector<DependencySet>& inputs,
                                   AttrId tag);

}  // namespace flexrel

#endif  // FLEXREL_ALGEBRA_AD_PROPAGATION_H_
