#include "algebra/evaluate.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "algebra/ad_propagation.h"
#include "engine/pli.h"
#include "engine/pli_cache.h"
#include "telemetry/telemetry.h"
#include "util/string_util.h"

namespace flexrel {

EvalStats& EvalStats::operator+=(const EvalStats& other) {
  tuples_scanned += other.tuples_scanned;
  tuples_emitted += other.tuples_emitted;
  intermediate_tuples += other.intermediate_tuples;
  predicate_evals += other.predicate_evals;
  join_probes += other.join_probes;
  return *this;
}

bool IsIndexableSelect(const Expr& formula) {
  return (formula.kind() == ExprKind::kCompare && formula.op() == CmpOp::kEq) ||
         formula.kind() == ExprKind::kIn;
}

namespace {

// Merges sorted pairwise-disjoint row lists back into scan order — the
// equality case is a plain copy, IN lists fold in pairwise with exact-size
// allocations (no concat-then-sort). Shared by the value-keyed and coded
// lookup twins so the merge discipline cannot drift between them.
std::vector<Pli::RowId> MergeMatchLists(
    const std::vector<const std::vector<Pli::RowId>*>& lists) {
  if (lists.empty()) return {};
  std::vector<Pli::RowId> matched(lists.front()->begin(),
                                  lists.front()->end());
  if (lists.size() > 1) {
    size_t total = 0;
    for (const auto* list : lists) total += list->size();
    matched.reserve(total);
    std::vector<Pli::RowId> merged;
    merged.reserve(total);
    for (size_t l = 1; l < lists.size(); ++l) {
      merged.clear();
      std::merge(matched.begin(), matched.end(), lists[l]->begin(),
                 lists[l]->end(), std::back_inserter(merged));
      matched.swap(merged);
    }
  }
  return matched;
}

// Visits the formula's literal (equality) or literal list (IN).
template <typename Fn>
void ForEachLiteral(const Expr& formula, Fn&& add_value) {
  if (formula.kind() == ExprKind::kCompare) {
    add_value(formula.literal());
  } else {
    for (const Value& v : formula.values()) add_value(v);
  }
}

}  // namespace

std::vector<Pli::RowId> IndexMatches(const PliCache::ValueIndex& index,
                                     const Expr& formula) {
  // Borrow the matching values' clusters from the index — each is an
  // ascending row list, and distinct values own pairwise disjoint rows.
  std::vector<const std::vector<Pli::RowId>*> lists;
  ForEachLiteral(formula, [&](const Value& v) {
    // Comparing a null (or comparing against one) yields Unknown under the
    // Kleene semantics, never True — so the Null cluster stays out.
    if (v.is_null()) return;
    auto it = index.find(v);
    if (it != index.end()) lists.push_back(&it->second);
  });
  return MergeMatchLists(lists);
}

std::vector<Pli::RowId> CodedMatches(const CodeColumn& column,
                                     const Expr& formula) {
  // Same structure as IndexMatches, but a literal resolves to a dense code
  // (one dictionary probe) and its rows come from the column's bucket
  // array instead of the value-hashed index.
  std::vector<const std::vector<Pli::RowId>*> lists;
  ForEachLiteral(formula, [&](const Value& v) {
    if (v.is_null()) return;  // Kleene: null literals never match.
    CodeColumn::Code code = column.CodeOf(v);
    if (code == CodeColumn::kMissingCode) return;  // never interned
    const std::vector<Pli::RowId>& bucket = column.Bucket(code);
    if (!bucket.empty()) lists.push_back(&bucket);
  });
  return MergeMatchLists(lists);
}

namespace {

void Dedup(std::vector<Tuple>* rows) {
  std::sort(rows->begin(), rows->end());
  rows->erase(std::unique(rows->begin(), rows->end()), rows->end());
}

// Joins two tuples when they agree on every shared attribute; the merged
// tuple carries the union of the fields.
bool TryJoin(const Tuple& a, const Tuple& b, Tuple* out) {
  Tuple merged = a;
  for (const auto& [attr, value] : b.fields()) {
    const Value* existing = a.Get(attr);
    if (existing != nullptr) {
      if (*existing != value) return false;
    } else {
      merged.Set(attr, value);
    }
  }
  *out = std::move(merged);
  return true;
}

class Evaluator {
 public:
  Evaluator(const EvalOptions& options, EvalStats* stats)
      : options_(options), stats_(stats) {}

  /// `node`, when non-null, receives the EXPLAIN attribution for this
  /// subtree (op label, timing, row counts, join order).
  Result<FlexibleRelation> Eval(const PlanPtr& plan,
                                ExplainNode* node = nullptr);

 private:
  Result<FlexibleRelation> EvalNode(const PlanPtr& plan, ExplainNode* node);

  // Joins a tuple pair stream; `final_output` routes the result-size counter
  // to tuples_emitted (the operator's real output) vs intermediate_tuples
  // (a multiway join's internal accumulations).
  Result<FlexibleRelation> JoinPair(const FlexibleRelation& left,
                                    const FlexibleRelation& right,
                                    bool final_output);
  Result<FlexibleRelation> JoinNested(const FlexibleRelation& left,
                                      const FlexibleRelation& right,
                                      bool final_output);
  Result<FlexibleRelation> JoinHashed(const FlexibleRelation& left,
                                      const FlexibleRelation& right,
                                      bool final_output);
  Result<FlexibleRelation> JoinHashedCoded(const FlexibleRelation& left,
                                           const FlexibleRelation& right,
                                           bool final_output);

  Result<FlexibleRelation> SelectViaIndex(const Plan& plan,
                                          ExplainNode* node);
  Result<FlexibleRelation> EvalMultiwayOrdered(const Plan& plan,
                                               ExplainNode* node);

  // PLI-derived count of distinct `attrs`-projections in `rel` (clusters
  // plus partnerless defined rows). Feeds the join-order estimates only, so
  // the multi-attribute lower bound from intersection products is fine.
  size_t DistinctOn(const FlexibleRelation& rel, const AttrSet& attrs);

  // One child slot per plan input, appended in evaluation order. Each
  // returned pointer is only used for the duration of that child's Eval, so
  // later appends may reallocate freely.
  static ExplainNode* Child(ExplainNode* node) {
    if (node == nullptr) return nullptr;
    return &node->children.emplace_back();
  }

  // Every EvalStats field is bumped through exactly one of these helpers,
  // which mirror each increment into the telemetry registry — the registry
  // aggregates cannot drift from the per-operator sums because they are the
  // same additions (engine_eval_test asserts the equality).
  void CountScanned(size_t n) {
    if (stats_ != nullptr) stats_->tuples_scanned += n;
    FLEXREL_TELEMETRY_COUNT("eval.tuples_scanned", n);
  }
  void CountEmitted(size_t n) {
    if (stats_ != nullptr) stats_->tuples_emitted += n;
    FLEXREL_TELEMETRY_COUNT("eval.tuples_emitted", n);
  }
  void CountIntermediate(size_t n) {
    if (stats_ != nullptr) stats_->intermediate_tuples += n;
    FLEXREL_TELEMETRY_COUNT("eval.intermediate_tuples", n);
  }
  void CountPredicateEvals(size_t n) {
    if (stats_ != nullptr) stats_->predicate_evals += n;
    FLEXREL_TELEMETRY_COUNT("eval.predicate_evals", n);
  }
  // The naive and engine join paths run inside the same binaries, so their
  // probe counts stay separate in the registry: the perf_smoke invariant
  // compares the hashed join's probes against its own naive pair count
  // (hash_pair_candidates), not against a different benchmark's counter.
  void CountNestedProbes(size_t n) {
    if (stats_ != nullptr) stats_->join_probes += n;
    FLEXREL_TELEMETRY_COUNT("eval.join.nested_probes", n);
  }
  void CountHashProbes(size_t n, size_t pair_candidates) {
    if (stats_ != nullptr) stats_->join_probes += n;
    FLEXREL_TELEMETRY_COUNT("eval.join.hash_probes", n);
    FLEXREL_TELEMETRY_COUNT("eval.join.hash_pair_candidates",
                            pair_candidates);
  }
  void CountJoinOutput(size_t rows, bool final_output) {
    if (final_output) {
      CountEmitted(rows);
    } else {
      CountIntermediate(rows);
    }
  }

  // Periodic poll inside join probe loops: one relaxed load per call on
  // the null/untripped fast path, checked every ~1k probes so a runaway
  // join notices a trip within microseconds without taxing the hot loop.
  Status CheckJoinExec(size_t probes) const {
    if (options_.exec == nullptr || (probes & 1023) != 0) return Status::OK();
    return options_.exec->Check();
  }

  EvalOptions options_;
  EvalStats* stats_;
};

Result<FlexibleRelation> Evaluator::JoinPair(const FlexibleRelation& left,
                                             const FlexibleRelation& right,
                                             bool final_output) {
  if (!options_.use_engine) return JoinNested(left, right, final_output);
  return options_.use_codes ? JoinHashedCoded(left, right, final_output)
                            : JoinHashed(left, right, final_output);
}

Result<FlexibleRelation> Evaluator::JoinNested(const FlexibleRelation& left,
                                               const FlexibleRelation& right,
                                               bool final_output) {
  FlexibleRelation out = FlexibleRelation::Derived("join", DependencySet());
  std::vector<Tuple> rows;
  size_t probes = 0;  // flushed once per join, not per pair
  for (const Tuple& a : left.rows()) {
    for (const Tuple& b : right.rows()) {
      ++probes;
      if (Status st = CheckJoinExec(probes); !st.ok()) return st;
      Tuple merged;
      if (TryJoin(a, b, &merged)) {
        rows.push_back(std::move(merged));
      }
    }
  }
  CountNestedProbes(probes);
  Dedup(&rows);
  CountJoinOutput(rows.size(), final_output);
  for (Tuple& t : rows) out.InsertUnchecked(std::move(t));
  return out;
}

// The signature-grouped hash join. Because schemes are heterogeneous, the
// shared attributes vary per tuple *pair*; a single-key hash join would be
// wrong. But grouping the build side by T = attrs(b) ∩ active(probe side)
// fixes the pair-shared set per (probe tuple, group): for every b in group
// T, shared(a, b) = attrs(a) ∩ T. One lazily built sub-index per (T, K)
// then turns compatibility into a hash lookup whose hits are exactly the
// cluster-compatible pairs — join_probes counts those, not all n·m pairs.
Result<FlexibleRelation> Evaluator::JoinHashed(const FlexibleRelation& left,
                                               const FlexibleRelation& right,
                                               bool final_output) {
  const bool build_right = right.size() <= left.size();
  const FlexibleRelation& build = build_right ? right : left;
  const FlexibleRelation& probe = build_right ? left : right;
  const AttrSet probe_active = probe.ActiveAttrs();

  using Bucket = std::vector<const Tuple*>;
  struct Group {
    Bucket rows;
    // K = attrs(a) ∩ T  ->  projection-on-K  ->  build rows carrying it.
    std::unordered_map<AttrSet,
                       std::unordered_map<Tuple, Bucket, TupleHash>,
                       AttrSetHash>
        by_key;
  };
  std::unordered_map<AttrSet, Group, AttrSetHash> groups;
  for (const Tuple& b : build.rows()) {
    groups[b.attrs().Intersect(probe_active)].rows.push_back(&b);
  }

  std::vector<Tuple> rows;
  size_t probes = 0;
  for (const Tuple& a : probe.rows()) {
    const AttrSet a_attrs = a.attrs();
    for (auto& [signature, group] : groups) {
      AttrSet key = a_attrs.Intersect(signature);
      auto [index_it, missing] = group.by_key.try_emplace(key);
      if (missing) {
        for (const Tuple* b : group.rows) {
          index_it->second[b->Project(key)].push_back(b);
        }
      }
      auto bucket = index_it->second.find(a.Project(key));
      if (bucket == index_it->second.end()) continue;
      for (const Tuple* b : bucket->second) {
        ++probes;
        if (Status st = CheckJoinExec(probes); !st.ok()) return st;
        Tuple merged;
        // Agreement on the shared attributes is guaranteed by the bucket,
        // so the merge cannot fail; TryJoin stays as a cheap invariant.
        if (TryJoin(a, *b, &merged)) rows.push_back(std::move(merged));
      }
    }
  }
  CountHashProbes(probes, build.size() * probe.size());
  Dedup(&rows);
  CountJoinOutput(rows.size(), final_output);
  FlexibleRelation out = FlexibleRelation::Derived("join", DependencySet());
  for (Tuple& t : rows) out.InsertUnchecked(std::move(t));
  return out;
}

namespace {

// Transparent hash/equality over flat code keys: the sub-index stores
// vector<uint32_t> keys but probes with a span view into a reusable
// scratch buffer, so the probe side never allocates per lookup (C++20
// heterogeneous unordered_map lookup).
struct CodeKeyHash {
  using is_transparent = void;
  size_t operator()(std::span<const uint32_t> key) const {
    size_t h = 0xcbf29ce484222325ULL;  // FNV-1a over the code words
    for (uint32_t c : key) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};
struct CodeKeyEq {
  using is_transparent = void;
  bool operator()(std::span<const uint32_t> a,
                  std::span<const uint32_t> b) const {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
};

}  // namespace

// Coded twin of JoinHashed: the signature-group structure (and therefore
// which pairs ever get probed) is identical, but projections are compared
// as flat uint32_t code rows instead of Value tuples. An ephemeral per-join
// dictionary interns each distinct Value once per shared attribute slot —
// after that single pass, building and probing the per-(T, K) sub-indexes
// hashes small code spans and never touches a Value again. Nulls intern as
// ordinary values, matching TryJoin's Value-equality semantics (natural
// join has no Kleene rule: null meets null joins).
Result<FlexibleRelation> Evaluator::JoinHashedCoded(
    const FlexibleRelation& left, const FlexibleRelation& right,
    bool final_output) {
  const bool build_right = right.size() <= left.size();
  const FlexibleRelation& build = build_right ? right : left;
  const FlexibleRelation& probe = build_right ? left : right;
  const AttrSet probe_active = probe.ActiveAttrs();

  // Only attributes on both sides can ever land in a signature T (and thus
  // in a key K ⊆ T), so the slot universe is the active intersection.
  const AttrSet shared_universe =
      build.ActiveAttrs().Intersect(probe_active);
  const std::vector<AttrId>& slot_attrs = shared_universe.ids();
  const size_t slot_count = slot_attrs.size();
  auto slot_of = [&](AttrId attr) {
    return static_cast<size_t>(
        std::lower_bound(slot_attrs.begin(), slot_attrs.end(), attr) -
        slot_attrs.begin());
  };
  constexpr uint32_t kAbsent = std::numeric_limits<uint32_t>::max();

  // Per-slot interning: codes are dense per attribute, so code equality ⇔
  // Value equality per slot. Only the build side interns; the probe side
  // looks up find-only — a probe value never interned on its slot cannot
  // equal any build value there, and the sentinel it maps to misses every
  // sub-index key, which is both correct and the cheapest outcome. The
  // dictionaries stay sized by the (smaller) build side and the probe pass
  // never allocates into them.
  std::vector<std::unordered_map<Value, uint32_t, ValueHash>> interners(
      slot_count);
  auto intern_row = [&](const Tuple& t, uint32_t* out) {
    for (size_t s = 0; s < slot_count; ++s) {
      const Value* v = t.Get(slot_attrs[s]);
      if (v == nullptr) {
        out[s] = kAbsent;
        continue;
      }
      auto& interner = interners[s];
      out[s] = interner
                   .try_emplace(*v, static_cast<uint32_t>(interner.size()))
                   .first->second;
    }
  };
  auto probe_row = [&](const Tuple& t, std::vector<uint32_t>* out) {
    out->assign(slot_count, kAbsent);
    for (size_t s = 0; s < slot_count; ++s) {
      const Value* v = t.Get(slot_attrs[s]);
      if (v == nullptr) continue;
      auto it = interners[s].find(*v);
      if (it != interners[s].end()) (*out)[s] = it->second;
    }
  };

  using Bucket = std::vector<const Tuple*>;
  // One lazily-built sub-index per key set K: K's slot positions (computed
  // once, shared by index build and every probe so the code order in every
  // key is identical) plus the coded projection on K -> build rows.
  struct SubIndex {
    std::vector<size_t> key_slots;
    std::unordered_map<std::vector<uint32_t>, Bucket, CodeKeyHash, CodeKeyEq>
        index;
  };
  struct Group {
    std::vector<size_t> rows;  // build row indexes in this group
    // K = attrs(a) ∩ T  ->  sub-index over this group's rows.
    std::unordered_map<AttrSet, SubIndex, AttrSetHash> by_key;
  };
  std::unordered_map<AttrSet, Group, AttrSetHash> groups;
  // Flat build-side code matrix, one slot_count-wide row per build tuple,
  // filled in the same pass that forms the signature groups.
  std::vector<uint32_t> build_codes(build.size() * slot_count);
  for (size_t i = 0; i < build.size(); ++i) {
    const Tuple& b = build.row(i);
    intern_row(b, build_codes.data() + i * slot_count);
    groups[b.attrs().Intersect(probe_active)].rows.push_back(i);
  }

  std::vector<Tuple> rows;
  std::vector<uint32_t> probe_codes;
  std::vector<uint32_t> key_scratch;
  size_t probes = 0;
  // K depends only on (attrs(a), T), and probe rows overwhelmingly share
  // one attribute set (homogeneous variants) — so the per-group K
  // intersection, sub-index lookup, and lazy build run once per distinct
  // consecutive attrs(a), and the resolved SubIndex pointers are reused
  // for the whole run. unordered_map mapped values are node-stable, so the
  // cached pointers survive later by_key insertions for other runs.
  AttrSet memo_attrs;
  std::vector<SubIndex*> memo_subs;
  bool memo_valid = false;
  // attrs(a) == memo without materializing an AttrSet per row: the tuple's
  // field vector is sorted by AttrId, so it zips against the memo's ids.
  auto attrs_match_memo = [&](const Tuple& t) {
    const std::vector<AttrId>& ids = memo_attrs.ids();
    const auto& fields = t.fields();
    if (fields.size() != ids.size()) return false;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (fields[i].first != ids[i]) return false;
    }
    return true;
  };
  for (const Tuple& a : probe.rows()) {
    if (!memo_valid || !attrs_match_memo(a)) {
      const AttrSet a_attrs = a.attrs();
      memo_subs.clear();
      for (auto& [signature, group] : groups) {
        AttrSet key_attrs = a_attrs.Intersect(signature);
        auto [index_it, missing] = group.by_key.try_emplace(key_attrs);
        SubIndex& sub = index_it->second;
        if (missing) {
          for (AttrId attr : key_attrs.ids()) {
            sub.key_slots.push_back(slot_of(attr));
          }
          for (size_t bi : group.rows) {
            const uint32_t* codes = build_codes.data() + bi * slot_count;
            key_scratch.clear();
            // K ⊆ T ⊆ attrs(b): every key slot is defined on the build row.
            for (size_t s : sub.key_slots) key_scratch.push_back(codes[s]);
            sub.index[key_scratch].push_back(&build.row(bi));
          }
        }
        memo_subs.push_back(&sub);
      }
      memo_attrs = a_attrs;
      memo_valid = true;
    }
    probe_row(a, &probe_codes);
    for (SubIndex* sub : memo_subs) {
      key_scratch.clear();
      // K ⊆ attrs(a): probe codes at key slots are all present (an
      // un-interned probe value carries the sentinel and misses below).
      for (size_t s : sub->key_slots) key_scratch.push_back(probe_codes[s]);
      auto bucket = sub->index.find(std::span<const uint32_t>(key_scratch));
      if (bucket == sub->index.end()) continue;
      for (const Tuple* b : bucket->second) {
        ++probes;
        if (Status st = CheckJoinExec(probes); !st.ok()) return st;
        Tuple merged;
        // Bucket equality was proven on codes; TryJoin remains the cheap
        // Value-level invariant, exactly as in JoinHashed.
        if (TryJoin(a, *b, &merged)) rows.push_back(std::move(merged));
      }
    }
  }
  CountHashProbes(probes, build.size() * probe.size());
  Dedup(&rows);
  CountJoinOutput(rows.size(), final_output);
  FlexibleRelation out = FlexibleRelation::Derived("join", DependencySet());
  for (Tuple& t : rows) out.InsertUnchecked(std::move(t));
  return out;
}

// Equality/IN selection directly over a base scan: the answer is a value
// index lookup on the scanned relation's attached cache — zero predicate
// evaluations, and only the matching rows are ever read. Freshness is the
// cache's contract either way (engine/README.md "Concurrency"): in COW
// mode mutation hooks flushed and published before this read, which
// resolves lock-free against the current snapshot; in locked mode this
// IndexFor flushes any deltas buffered since the last query, so the first
// evaluation after a burst pays the adaptive batch-apply.
Result<FlexibleRelation> Evaluator::SelectViaIndex(const Plan& plan,
                                                   ExplainNode* node) {
  const FlexibleRelation* src = plan.inputs()[0]->relation();
  const Expr& formula = *plan.formula();
  // Matches come back in scan order, so the output is row-for-row identical
  // to the naive path's. The coded plane answers first when both knobs
  // agree (EvalOptions::use_codes here, PliCacheOptions::use_codes in the
  // cache — CodeColumnFor returns null otherwise): one dictionary probe
  // per literal against dense code buckets, no Value hashing per lookup.
  std::vector<Pli::RowId> matched;
  std::shared_ptr<const CodeColumn> column;
  if (options_.use_codes) {
    column = src->pli_cache()->CodeColumnFor(formula.attr());
  }
  if (column != nullptr) {
    matched = CodedMatches(*column, formula);
  } else {
    matched =
        IndexMatches(*src->pli_cache()->IndexFor(formula.attr()), formula);
  }
  FLEXREL_TELEMETRY_COUNT("eval.index_hits", 1);
  if (node != nullptr) node->index_hit = true;

  FlexibleRelation out = FlexibleRelation::Derived(
      StrCat("sel(", src->name(), ")"), PropagateSelect(src->deps()));
  for (Pli::RowId row : matched) out.InsertUnchecked(src->row(row));
  CountScanned(matched.size());
  CountEmitted(matched.size());
  return out;
}

size_t Evaluator::DistinctOn(const FlexibleRelation& rel,
                             const AttrSet& attrs) {
  if (attrs.empty() || rel.empty()) return 1;
  if (options_.use_cache) {
    // These estimates always describe the current instance: cache reads
    // see every prior mutation (COW mode publishes on the mutation hook,
    // locked mode flushes here), and each one-call read is internally
    // coherent — it resolves against a single snapshot.
    if (attrs.size() == 1) {
      if (options_.use_codes) {
        std::shared_ptr<const CodeColumn> column =
            rel.pli_cache()->CodeColumnFor(attrs.ids().front());
        // Nonempty buckets are exactly the index's distinct values (both
        // count the null cluster, neither counts absence), so the estimate
        // — and thus the join order — is unchanged.
        if (column != nullptr) return column->live_codes();
      }
      return rel.pli_cache()->IndexFor(attrs.ids().front())->size();
    }
    return rel.pli_cache()->Get(attrs)->NumDistinct();
  }
  return Pli::Build(rel.rows(), attrs).NumDistinct();
}

// Multiway join with engine ordering: evaluate every leg, then fold
// greedily, always joining the accumulator with the leg of smallest
// estimated intermediate — |acc|·|leg| / max(distinct projections on the
// shared attributes), the classic PLI-backed textbook estimate. Natural
// join over heterogeneous tuples is commutative and associative (a
// combination of one tuple per leg survives iff all its pairwise overlaps
// agree, independent of fold order), so any order is result-preserving.
Result<FlexibleRelation> Evaluator::EvalMultiwayOrdered(const Plan& plan,
                                                        ExplainNode* node) {
  std::vector<FlexibleRelation> legs;
  legs.reserve(plan.inputs().size());
  for (const PlanPtr& in : plan.inputs()) {
    FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation leg, Eval(in, Child(node)));
    legs.push_back(std::move(leg));
  }

  std::vector<bool> used(legs.size(), false);
  size_t first = 0;
  for (size_t i = 1; i < legs.size(); ++i) {
    if (legs[i].size() < legs[first].size()) first = i;
  }
  used[first] = true;
  if (node != nullptr) {
    // The seed leg: its "estimate" is the size that made it the smallest.
    node->join_steps.push_back({first, legs[first].name(),
                                static_cast<double>(legs[first].size()),
                                legs[first].size()});
  }
  FlexibleRelation acc = std::move(legs[first]);

  for (size_t step = 1; step < legs.size(); ++step) {
    const AttrSet acc_active = acc.ActiveAttrs();
    size_t best = legs.size();
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < legs.size(); ++j) {
      if (used[j]) continue;
      AttrSet shared = acc_active.Intersect(legs[j].ActiveAttrs());
      double cost = static_cast<double>(acc.size()) *
                    static_cast<double>(legs[j].size());
      if (!shared.empty()) {
        double distinct = static_cast<double>(std::max(
            DistinctOn(acc, shared), DistinctOn(legs[j], shared)));
        cost /= std::max(distinct, 1.0);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = j;
      }
    }
    used[best] = true;
    std::string best_name = node != nullptr ? legs[best].name() : "";
    FLEXREL_ASSIGN_OR_RETURN(
        acc, JoinPair(acc, legs[best], /*final_output=*/step + 1 ==
                                           legs.size()));
    if (node != nullptr) {
      // est is the cost that picked this leg; actual is what the fold
      // really produced — the estimated-vs-actual pair per leg.
      node->join_steps.push_back(
          {best, std::move(best_name), best_cost, acc.size()});
    }
  }
  return acc;
}

Result<FlexibleRelation> Evaluator::Eval(const PlanPtr& plan,
                                         ExplainNode* node) {
  // Once per operator: a tripped context aborts before the node does any
  // work. Evaluation is strict and materializing, so a trip discards the
  // whole subtree — there is no partial relation to surface.
  if (Status st = CheckExec(options_.exec); !st.ok()) return st;
  // The timed wrapper around the operator dispatch: EXPLAIN nodes always
  // get timing and actual rows; with telemetry on, every operator's
  // duration also lands in the shared histogram.
  if (node == nullptr && !telemetry::Enabled()) {
    return EvalNode(plan, nullptr);
  }
  const uint64_t t0 = telemetry::NowNs();
  Result<FlexibleRelation> result = EvalNode(plan, node);
  const uint64_t dur_ns = telemetry::NowNs() - t0;
  FLEXREL_TELEMETRY_HIST("eval.operator_ns", dur_ns);
  if (node != nullptr) {
    node->elapsed_ms = static_cast<double>(dur_ns) / 1e6;
    if (result.ok()) node->actual_rows = result.value().size();
  }
  return result;
}

Result<FlexibleRelation> Evaluator::EvalNode(const PlanPtr& plan,
                                             ExplainNode* node) {
  switch (plan->kind()) {
    case PlanKind::kScan: {
      const FlexibleRelation* src = plan->relation();
      if (src == nullptr) {
        return Status::FailedPrecondition("scan over null relation");
      }
      if (node != nullptr) node->op = StrCat("scan(", src->name(), ")");
      FlexibleRelation out = FlexibleRelation::Derived(src->name(), src->deps());
      for (const Tuple& t : src->rows()) out.InsertUnchecked(t);
      CountScanned(src->size());
      CountEmitted(src->size());
      return out;
    }
    case PlanKind::kSelect: {
      if (options_.use_engine && options_.use_cache &&
          plan->inputs()[0]->kind() == PlanKind::kScan &&
          plan->inputs()[0]->relation() != nullptr &&
          IsIndexableSelect(*plan->formula())) {
        if (node != nullptr) node->op = "select[index]";
        return SelectViaIndex(*plan, node);
      }
      if (node != nullptr) node->op = "select";
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation in,
                               Eval(plan->inputs()[0], Child(node)));
      FlexibleRelation out = FlexibleRelation::Derived(
          StrCat("sel(", in.name(), ")"), PropagateSelect(in.deps()));
      size_t emitted = 0;
      for (const Tuple& t : in.rows()) {
        if (plan->formula()->Accepts(t)) {
          out.InsertUnchecked(t);
          ++emitted;
        }
      }
      CountPredicateEvals(in.size());
      CountEmitted(emitted);
      return out;
    }
    case PlanKind::kProject: {
      if (node != nullptr) node->op = "project";
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation in,
                               Eval(plan->inputs()[0], Child(node)));
      FlexibleRelation out = FlexibleRelation::Derived(
          StrCat("proj(", in.name(), ")"),
          PropagateProject(in.deps(), plan->attrs()));
      std::vector<Tuple> rows;
      rows.reserve(in.size());
      for (const Tuple& t : in.rows()) rows.push_back(t.Project(plan->attrs()));
      Dedup(&rows);
      CountEmitted(rows.size());
      for (Tuple& t : rows) out.InsertUnchecked(std::move(t));
      return out;
    }
    case PlanKind::kProduct: {
      if (node != nullptr) node->op = "product";
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation l,
                               Eval(plan->inputs()[0], Child(node)));
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation r,
                               Eval(plan->inputs()[1], Child(node)));
      if (l.ActiveAttrs().Intersects(r.ActiveAttrs())) {
        return Status::InvalidArgument(
            "cartesian product requires attribute-disjoint inputs");
      }
      FlexibleRelation out = FlexibleRelation::Derived(
          StrCat("prod(", l.name(), ",", r.name(), ")"),
          PropagateProduct(l.deps(), r.deps()));
      size_t emitted = 0;
      for (const Tuple& a : l.rows()) {
        for (const Tuple& b : r.rows()) {
          Tuple merged = a;
          for (const auto& [attr, value] : b.fields()) {
            merged.Set(attr, value);
          }
          out.InsertUnchecked(std::move(merged));
          ++emitted;
        }
      }
      CountEmitted(emitted);
      return out;
    }
    case PlanKind::kUnion:
    case PlanKind::kOuterUnion: {
      if (node != nullptr) {
        node->op =
            plan->kind() == PlanKind::kUnion ? "union" : "outer_union";
      }
      // Rule (6) pattern: every input is an extension by one common tag
      // attribute with pairwise distinct values. Then dependencies survive
      // with the tag folded into their LHS; otherwise rule (4) applies and
      // nothing survives ("one cannot decide from which input relation the
      // tuples do come from").
      bool tagged = plan->inputs().size() >= 1;
      AttrId tag = 0;
      std::vector<Value> tag_values;
      for (size_t i = 0; i < plan->inputs().size(); ++i) {
        const PlanPtr& in_plan = plan->inputs()[i];
        if (in_plan->kind() != PlanKind::kExtend) {
          tagged = false;
          break;
        }
        if (i == 0) {
          tag = in_plan->extend_attr();
        } else if (in_plan->extend_attr() != tag) {
          tagged = false;
          break;
        }
        tag_values.push_back(in_plan->extend_value());
      }
      if (tagged) {
        std::sort(tag_values.begin(), tag_values.end());
        tagged = std::adjacent_find(tag_values.begin(), tag_values.end()) ==
                 tag_values.end();
      }
      std::vector<DependencySet> input_deps;
      std::vector<Tuple> rows;
      for (const PlanPtr& in_plan : plan->inputs()) {
        FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation in,
                                 Eval(in_plan, Child(node)));
        input_deps.push_back(in.deps());
        for (const Tuple& t : in.rows()) rows.push_back(t);
      }
      DependencySet deps =
          tagged ? PropagateTaggedUnion(input_deps, tag) : PropagateUnion();
      FlexibleRelation out = FlexibleRelation::Derived("union", deps);
      Dedup(&rows);
      CountEmitted(rows.size());
      for (Tuple& t : rows) out.InsertUnchecked(std::move(t));
      return out;
    }
    case PlanKind::kDifference: {
      if (node != nullptr) node->op = "difference";
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation l,
                               Eval(plan->inputs()[0], Child(node)));
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation r,
                               Eval(plan->inputs()[1], Child(node)));
      FlexibleRelation out = FlexibleRelation::Derived(
          StrCat("diff(", l.name(), ")"), PropagateDifference(l.deps()));
      std::unordered_set<Tuple, TupleHash> right_rows(r.rows().begin(),
                                                      r.rows().end());
      size_t emitted = 0;
      for (const Tuple& t : l.rows()) {
        if (right_rows.find(t) == right_rows.end()) {
          out.InsertUnchecked(t);
          ++emitted;
        }
      }
      CountEmitted(emitted);
      return out;
    }
    case PlanKind::kExtend: {
      if (node != nullptr) node->op = "extend";
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation in,
                               Eval(plan->inputs()[0], Child(node)));
      AttrId tag = plan->extend_attr();
      if (in.ActiveAttrs().Contains(tag)) {
        return Status::InvalidArgument(
            "extension attribute already present in the input");
      }
      FlexibleRelation out = FlexibleRelation::Derived(
          StrCat("ext(", in.name(), ")"), PropagateExtend(in.deps(), tag));
      for (const Tuple& t : in.rows()) {
        Tuple extended = t;
        extended.Set(tag, plan->extend_value());
        out.InsertUnchecked(std::move(extended));
      }
      CountEmitted(in.size());
      return out;
    }
    case PlanKind::kNaturalJoin: {
      if (node != nullptr) {
        node->op = options_.use_engine ? "natural_join[hash]"
                                       : "natural_join[nested]";
      }
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation l,
                               Eval(plan->inputs()[0], Child(node)));
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation r,
                               Eval(plan->inputs()[1], Child(node)));
      return JoinPair(l, r, /*final_output=*/true);
    }
    case PlanKind::kEmpty:
      if (node != nullptr) node->op = "empty";
      return FlexibleRelation::Derived("empty", DependencySet());
    case PlanKind::kMultiwayJoin: {
      if (plan->inputs().empty()) {
        return Status::InvalidArgument("multiway join over zero inputs");
      }
      if (options_.use_engine) {
        if (node != nullptr) node->op = "multiway_join[ordered]";
        return EvalMultiwayOrdered(*plan, node);
      }
      if (node != nullptr) node->op = "multiway_join[sequential]";
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation acc,
                               Eval(plan->inputs()[0], Child(node)));
      for (size_t i = 1; i < plan->inputs().size(); ++i) {
        FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation next,
                                 Eval(plan->inputs()[i], Child(node)));
        FLEXREL_ASSIGN_OR_RETURN(
            acc, JoinPair(acc, next,
                          /*final_output=*/i + 1 == plan->inputs().size()));
      }
      return acc;
    }
  }
  return Status::Internal("unknown plan kind");
}

// Indented one-line-per-operator rendering; multiway joins list their fold
// order (leg name, estimate, actual) on a dedicated line below the node.
void RenderExplain(const ExplainNode& node, size_t depth, std::string* out) {
  out->append(2 * depth, ' ');
  out->append(node.op.empty() ? "?" : node.op);
  out->append(" rows=");
  out->append(std::to_string(node.actual_rows));
  if (node.index_hit) out->append(" index=hit");
  char buf[48];
  std::snprintf(buf, sizeof(buf), " time=%.3fms", node.elapsed_ms);
  out->append(buf);
  out->push_back('\n');
  if (!node.join_steps.empty()) {
    out->append(2 * depth + 2, ' ');
    out->append("order:");
    for (size_t i = 0; i < node.join_steps.size(); ++i) {
      const ExplainJoinStep& s = node.join_steps[i];
      if (i > 0) out->append(" ->");
      std::snprintf(buf, sizeof(buf), " est=%.1f actual=%zu", s.est_rows,
                    s.actual_rows);
      out->append(" leg");
      out->append(std::to_string(s.leg));
      out->push_back('(');
      out->append(s.leg_name);
      out->push_back(')');
      out->append(buf);
    }
    out->push_back('\n');
  }
  for (const ExplainNode& child : node.children) {
    RenderExplain(child, depth + 1, out);
  }
}

}  // namespace

std::string ExplainReport::ToString() const {
  std::string out;
  RenderExplain(root, 0, &out);
  out.append(StrCat("stats: scanned=", stats.tuples_scanned,
                    " emitted=", stats.tuples_emitted,
                    " intermediate=", stats.intermediate_tuples,
                    " predicate_evals=", stats.predicate_evals,
                    " join_probes=", stats.join_probes, "\n"));
  return out;
}

Result<FlexibleRelation> Evaluate(const PlanPtr& plan, EvalStats* stats) {
  return Evaluate(plan, EvalOptions(), stats);
}

Result<FlexibleRelation> Evaluate(const PlanPtr& plan,
                                  const EvalOptions& options,
                                  EvalStats* stats) {
  Evaluator evaluator(options, stats);
  return evaluator.Eval(plan);
}

Result<ExplainReport> Explain(const PlanPtr& plan,
                              const EvalOptions& options) {
  ExplainReport report;
  Evaluator evaluator(options, &report.stats);
  FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation result,
                           evaluator.Eval(plan, &report.root));
  (void)result;  // the report carries the attribution; rows are discarded
  return report;
}

}  // namespace flexrel
