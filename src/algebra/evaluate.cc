#include "algebra/evaluate.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "algebra/ad_propagation.h"
#include "engine/pli.h"
#include "engine/pli_cache.h"
#include "telemetry/telemetry.h"
#include "util/string_util.h"

namespace flexrel {

EvalStats& EvalStats::operator+=(const EvalStats& other) {
  tuples_scanned += other.tuples_scanned;
  tuples_emitted += other.tuples_emitted;
  intermediate_tuples += other.intermediate_tuples;
  predicate_evals += other.predicate_evals;
  join_probes += other.join_probes;
  return *this;
}

bool IsIndexableSelect(const Expr& formula) {
  return (formula.kind() == ExprKind::kCompare && formula.op() == CmpOp::kEq) ||
         formula.kind() == ExprKind::kIn;
}

std::vector<Pli::RowId> IndexMatches(const PliCache::ValueIndex& index,
                                     const Expr& formula) {
  // Borrow the matching values' clusters from the index — each is an
  // ascending row list, and distinct values own pairwise disjoint rows.
  std::vector<const std::vector<Pli::RowId>*> lists;
  auto add_value = [&](const Value& v) {
    // Comparing a null (or comparing against one) yields Unknown under the
    // Kleene semantics, never True — so the Null cluster stays out.
    if (v.is_null()) return;
    auto it = index.find(v);
    if (it != index.end()) lists.push_back(&it->second);
  };
  if (formula.kind() == ExprKind::kCompare) {
    add_value(formula.literal());
  } else {
    for (const Value& v : formula.values()) add_value(v);
  }
  if (lists.empty()) return {};
  // Merge the sorted disjoint lists back into scan order — the equality
  // case is a plain copy, IN lists fold in pairwise with exact-size
  // allocations (no concat-then-sort).
  std::vector<Pli::RowId> matched(lists.front()->begin(),
                                  lists.front()->end());
  if (lists.size() > 1) {
    size_t total = 0;
    for (const auto* list : lists) total += list->size();
    matched.reserve(total);
    std::vector<Pli::RowId> merged;
    merged.reserve(total);
    for (size_t l = 1; l < lists.size(); ++l) {
      merged.clear();
      std::merge(matched.begin(), matched.end(), lists[l]->begin(),
                 lists[l]->end(), std::back_inserter(merged));
      matched.swap(merged);
    }
  }
  return matched;
}

namespace {

void Dedup(std::vector<Tuple>* rows) {
  std::sort(rows->begin(), rows->end());
  rows->erase(std::unique(rows->begin(), rows->end()), rows->end());
}

// Joins two tuples when they agree on every shared attribute; the merged
// tuple carries the union of the fields.
bool TryJoin(const Tuple& a, const Tuple& b, Tuple* out) {
  Tuple merged = a;
  for (const auto& [attr, value] : b.fields()) {
    const Value* existing = a.Get(attr);
    if (existing != nullptr) {
      if (*existing != value) return false;
    } else {
      merged.Set(attr, value);
    }
  }
  *out = std::move(merged);
  return true;
}

class Evaluator {
 public:
  Evaluator(const EvalOptions& options, EvalStats* stats)
      : options_(options), stats_(stats) {}

  /// `node`, when non-null, receives the EXPLAIN attribution for this
  /// subtree (op label, timing, row counts, join order).
  Result<FlexibleRelation> Eval(const PlanPtr& plan,
                                ExplainNode* node = nullptr);

 private:
  Result<FlexibleRelation> EvalNode(const PlanPtr& plan, ExplainNode* node);

  // Joins a tuple pair stream; `final_output` routes the result-size counter
  // to tuples_emitted (the operator's real output) vs intermediate_tuples
  // (a multiway join's internal accumulations).
  Result<FlexibleRelation> JoinPair(const FlexibleRelation& left,
                                    const FlexibleRelation& right,
                                    bool final_output);
  Result<FlexibleRelation> JoinNested(const FlexibleRelation& left,
                                      const FlexibleRelation& right,
                                      bool final_output);
  Result<FlexibleRelation> JoinHashed(const FlexibleRelation& left,
                                      const FlexibleRelation& right,
                                      bool final_output);

  Result<FlexibleRelation> SelectViaIndex(const Plan& plan,
                                          ExplainNode* node);
  Result<FlexibleRelation> EvalMultiwayOrdered(const Plan& plan,
                                               ExplainNode* node);

  // PLI-derived count of distinct `attrs`-projections in `rel` (clusters
  // plus partnerless defined rows). Feeds the join-order estimates only, so
  // the multi-attribute lower bound from intersection products is fine.
  size_t DistinctOn(const FlexibleRelation& rel, const AttrSet& attrs);

  // One child slot per plan input, appended in evaluation order. Each
  // returned pointer is only used for the duration of that child's Eval, so
  // later appends may reallocate freely.
  static ExplainNode* Child(ExplainNode* node) {
    if (node == nullptr) return nullptr;
    return &node->children.emplace_back();
  }

  // Every EvalStats field is bumped through exactly one of these helpers,
  // which mirror each increment into the telemetry registry — the registry
  // aggregates cannot drift from the per-operator sums because they are the
  // same additions (engine_eval_test asserts the equality).
  void CountScanned(size_t n) {
    if (stats_ != nullptr) stats_->tuples_scanned += n;
    FLEXREL_TELEMETRY_COUNT("eval.tuples_scanned", n);
  }
  void CountEmitted(size_t n) {
    if (stats_ != nullptr) stats_->tuples_emitted += n;
    FLEXREL_TELEMETRY_COUNT("eval.tuples_emitted", n);
  }
  void CountIntermediate(size_t n) {
    if (stats_ != nullptr) stats_->intermediate_tuples += n;
    FLEXREL_TELEMETRY_COUNT("eval.intermediate_tuples", n);
  }
  void CountPredicateEvals(size_t n) {
    if (stats_ != nullptr) stats_->predicate_evals += n;
    FLEXREL_TELEMETRY_COUNT("eval.predicate_evals", n);
  }
  // The naive and engine join paths run inside the same binaries, so their
  // probe counts stay separate in the registry: the perf_smoke invariant
  // compares the hashed join's probes against its own naive pair count
  // (hash_pair_candidates), not against a different benchmark's counter.
  void CountNestedProbes(size_t n) {
    if (stats_ != nullptr) stats_->join_probes += n;
    FLEXREL_TELEMETRY_COUNT("eval.join.nested_probes", n);
  }
  void CountHashProbes(size_t n, size_t pair_candidates) {
    if (stats_ != nullptr) stats_->join_probes += n;
    FLEXREL_TELEMETRY_COUNT("eval.join.hash_probes", n);
    FLEXREL_TELEMETRY_COUNT("eval.join.hash_pair_candidates",
                            pair_candidates);
  }
  void CountJoinOutput(size_t rows, bool final_output) {
    if (final_output) {
      CountEmitted(rows);
    } else {
      CountIntermediate(rows);
    }
  }

  EvalOptions options_;
  EvalStats* stats_;
};

Result<FlexibleRelation> Evaluator::JoinPair(const FlexibleRelation& left,
                                             const FlexibleRelation& right,
                                             bool final_output) {
  return options_.use_engine ? JoinHashed(left, right, final_output)
                             : JoinNested(left, right, final_output);
}

Result<FlexibleRelation> Evaluator::JoinNested(const FlexibleRelation& left,
                                               const FlexibleRelation& right,
                                               bool final_output) {
  FlexibleRelation out = FlexibleRelation::Derived("join", DependencySet());
  std::vector<Tuple> rows;
  size_t probes = 0;  // flushed once per join, not per pair
  for (const Tuple& a : left.rows()) {
    for (const Tuple& b : right.rows()) {
      ++probes;
      Tuple merged;
      if (TryJoin(a, b, &merged)) {
        rows.push_back(std::move(merged));
      }
    }
  }
  CountNestedProbes(probes);
  Dedup(&rows);
  CountJoinOutput(rows.size(), final_output);
  for (Tuple& t : rows) out.InsertUnchecked(std::move(t));
  return out;
}

// The signature-grouped hash join. Because schemes are heterogeneous, the
// shared attributes vary per tuple *pair*; a single-key hash join would be
// wrong. But grouping the build side by T = attrs(b) ∩ active(probe side)
// fixes the pair-shared set per (probe tuple, group): for every b in group
// T, shared(a, b) = attrs(a) ∩ T. One lazily built sub-index per (T, K)
// then turns compatibility into a hash lookup whose hits are exactly the
// cluster-compatible pairs — join_probes counts those, not all n·m pairs.
Result<FlexibleRelation> Evaluator::JoinHashed(const FlexibleRelation& left,
                                               const FlexibleRelation& right,
                                               bool final_output) {
  const bool build_right = right.size() <= left.size();
  const FlexibleRelation& build = build_right ? right : left;
  const FlexibleRelation& probe = build_right ? left : right;
  const AttrSet probe_active = probe.ActiveAttrs();

  using Bucket = std::vector<const Tuple*>;
  struct Group {
    Bucket rows;
    // K = attrs(a) ∩ T  ->  projection-on-K  ->  build rows carrying it.
    std::unordered_map<AttrSet,
                       std::unordered_map<Tuple, Bucket, TupleHash>,
                       AttrSetHash>
        by_key;
  };
  std::unordered_map<AttrSet, Group, AttrSetHash> groups;
  for (const Tuple& b : build.rows()) {
    groups[b.attrs().Intersect(probe_active)].rows.push_back(&b);
  }

  std::vector<Tuple> rows;
  size_t probes = 0;
  for (const Tuple& a : probe.rows()) {
    const AttrSet a_attrs = a.attrs();
    for (auto& [signature, group] : groups) {
      AttrSet key = a_attrs.Intersect(signature);
      auto [index_it, missing] = group.by_key.try_emplace(key);
      if (missing) {
        for (const Tuple* b : group.rows) {
          index_it->second[b->Project(key)].push_back(b);
        }
      }
      auto bucket = index_it->second.find(a.Project(key));
      if (bucket == index_it->second.end()) continue;
      for (const Tuple* b : bucket->second) {
        ++probes;
        Tuple merged;
        // Agreement on the shared attributes is guaranteed by the bucket,
        // so the merge cannot fail; TryJoin stays as a cheap invariant.
        if (TryJoin(a, *b, &merged)) rows.push_back(std::move(merged));
      }
    }
  }
  CountHashProbes(probes, build.size() * probe.size());
  Dedup(&rows);
  CountJoinOutput(rows.size(), final_output);
  FlexibleRelation out = FlexibleRelation::Derived("join", DependencySet());
  for (Tuple& t : rows) out.InsertUnchecked(std::move(t));
  return out;
}

// Equality/IN selection directly over a base scan: the answer is a value
// index lookup on the scanned relation's attached cache — zero predicate
// evaluations, and only the matching rows are ever read. Freshness is the
// cache's contract either way (engine/README.md "Concurrency"): in COW
// mode mutation hooks flushed and published before this read, which
// resolves lock-free against the current snapshot; in locked mode this
// IndexFor flushes any deltas buffered since the last query, so the first
// evaluation after a burst pays the adaptive batch-apply.
Result<FlexibleRelation> Evaluator::SelectViaIndex(const Plan& plan,
                                                   ExplainNode* node) {
  const FlexibleRelation* src = plan.inputs()[0]->relation();
  const Expr& formula = *plan.formula();
  // Matches come back in scan order, so the output is row-for-row identical
  // to the naive path's.
  std::vector<Pli::RowId> matched =
      IndexMatches(*src->pli_cache()->IndexFor(formula.attr()), formula);
  FLEXREL_TELEMETRY_COUNT("eval.index_hits", 1);
  if (node != nullptr) node->index_hit = true;

  FlexibleRelation out = FlexibleRelation::Derived(
      StrCat("sel(", src->name(), ")"), PropagateSelect(src->deps()));
  for (Pli::RowId row : matched) out.InsertUnchecked(src->row(row));
  CountScanned(matched.size());
  CountEmitted(matched.size());
  return out;
}

size_t Evaluator::DistinctOn(const FlexibleRelation& rel,
                             const AttrSet& attrs) {
  if (attrs.empty() || rel.empty()) return 1;
  if (options_.use_cache) {
    // These estimates always describe the current instance: cache reads
    // see every prior mutation (COW mode publishes on the mutation hook,
    // locked mode flushes here), and each one-call read is internally
    // coherent — it resolves against a single snapshot.
    if (attrs.size() == 1) {
      return rel.pli_cache()->IndexFor(attrs.ids().front())->size();
    }
    return rel.pli_cache()->Get(attrs)->NumDistinct();
  }
  return Pli::Build(rel.rows(), attrs).NumDistinct();
}

// Multiway join with engine ordering: evaluate every leg, then fold
// greedily, always joining the accumulator with the leg of smallest
// estimated intermediate — |acc|·|leg| / max(distinct projections on the
// shared attributes), the classic PLI-backed textbook estimate. Natural
// join over heterogeneous tuples is commutative and associative (a
// combination of one tuple per leg survives iff all its pairwise overlaps
// agree, independent of fold order), so any order is result-preserving.
Result<FlexibleRelation> Evaluator::EvalMultiwayOrdered(const Plan& plan,
                                                        ExplainNode* node) {
  std::vector<FlexibleRelation> legs;
  legs.reserve(plan.inputs().size());
  for (const PlanPtr& in : plan.inputs()) {
    FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation leg, Eval(in, Child(node)));
    legs.push_back(std::move(leg));
  }

  std::vector<bool> used(legs.size(), false);
  size_t first = 0;
  for (size_t i = 1; i < legs.size(); ++i) {
    if (legs[i].size() < legs[first].size()) first = i;
  }
  used[first] = true;
  if (node != nullptr) {
    // The seed leg: its "estimate" is the size that made it the smallest.
    node->join_steps.push_back({first, legs[first].name(),
                                static_cast<double>(legs[first].size()),
                                legs[first].size()});
  }
  FlexibleRelation acc = std::move(legs[first]);

  for (size_t step = 1; step < legs.size(); ++step) {
    const AttrSet acc_active = acc.ActiveAttrs();
    size_t best = legs.size();
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < legs.size(); ++j) {
      if (used[j]) continue;
      AttrSet shared = acc_active.Intersect(legs[j].ActiveAttrs());
      double cost = static_cast<double>(acc.size()) *
                    static_cast<double>(legs[j].size());
      if (!shared.empty()) {
        double distinct = static_cast<double>(std::max(
            DistinctOn(acc, shared), DistinctOn(legs[j], shared)));
        cost /= std::max(distinct, 1.0);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = j;
      }
    }
    used[best] = true;
    std::string best_name = node != nullptr ? legs[best].name() : "";
    FLEXREL_ASSIGN_OR_RETURN(
        acc, JoinPair(acc, legs[best], /*final_output=*/step + 1 ==
                                           legs.size()));
    if (node != nullptr) {
      // est is the cost that picked this leg; actual is what the fold
      // really produced — the estimated-vs-actual pair per leg.
      node->join_steps.push_back(
          {best, std::move(best_name), best_cost, acc.size()});
    }
  }
  return acc;
}

Result<FlexibleRelation> Evaluator::Eval(const PlanPtr& plan,
                                         ExplainNode* node) {
  // The timed wrapper around the operator dispatch: EXPLAIN nodes always
  // get timing and actual rows; with telemetry on, every operator's
  // duration also lands in the shared histogram.
  if (node == nullptr && !telemetry::Enabled()) {
    return EvalNode(plan, nullptr);
  }
  const uint64_t t0 = telemetry::NowNs();
  Result<FlexibleRelation> result = EvalNode(plan, node);
  const uint64_t dur_ns = telemetry::NowNs() - t0;
  FLEXREL_TELEMETRY_HIST("eval.operator_ns", dur_ns);
  if (node != nullptr) {
    node->elapsed_ms = static_cast<double>(dur_ns) / 1e6;
    if (result.ok()) node->actual_rows = result.value().size();
  }
  return result;
}

Result<FlexibleRelation> Evaluator::EvalNode(const PlanPtr& plan,
                                             ExplainNode* node) {
  switch (plan->kind()) {
    case PlanKind::kScan: {
      const FlexibleRelation* src = plan->relation();
      if (src == nullptr) {
        return Status::FailedPrecondition("scan over null relation");
      }
      if (node != nullptr) node->op = StrCat("scan(", src->name(), ")");
      FlexibleRelation out = FlexibleRelation::Derived(src->name(), src->deps());
      for (const Tuple& t : src->rows()) out.InsertUnchecked(t);
      CountScanned(src->size());
      CountEmitted(src->size());
      return out;
    }
    case PlanKind::kSelect: {
      if (options_.use_engine && options_.use_cache &&
          plan->inputs()[0]->kind() == PlanKind::kScan &&
          plan->inputs()[0]->relation() != nullptr &&
          IsIndexableSelect(*plan->formula())) {
        if (node != nullptr) node->op = "select[index]";
        return SelectViaIndex(*plan, node);
      }
      if (node != nullptr) node->op = "select";
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation in,
                               Eval(plan->inputs()[0], Child(node)));
      FlexibleRelation out = FlexibleRelation::Derived(
          StrCat("sel(", in.name(), ")"), PropagateSelect(in.deps()));
      size_t emitted = 0;
      for (const Tuple& t : in.rows()) {
        if (plan->formula()->Accepts(t)) {
          out.InsertUnchecked(t);
          ++emitted;
        }
      }
      CountPredicateEvals(in.size());
      CountEmitted(emitted);
      return out;
    }
    case PlanKind::kProject: {
      if (node != nullptr) node->op = "project";
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation in,
                               Eval(plan->inputs()[0], Child(node)));
      FlexibleRelation out = FlexibleRelation::Derived(
          StrCat("proj(", in.name(), ")"),
          PropagateProject(in.deps(), plan->attrs()));
      std::vector<Tuple> rows;
      rows.reserve(in.size());
      for (const Tuple& t : in.rows()) rows.push_back(t.Project(plan->attrs()));
      Dedup(&rows);
      CountEmitted(rows.size());
      for (Tuple& t : rows) out.InsertUnchecked(std::move(t));
      return out;
    }
    case PlanKind::kProduct: {
      if (node != nullptr) node->op = "product";
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation l,
                               Eval(plan->inputs()[0], Child(node)));
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation r,
                               Eval(plan->inputs()[1], Child(node)));
      if (l.ActiveAttrs().Intersects(r.ActiveAttrs())) {
        return Status::InvalidArgument(
            "cartesian product requires attribute-disjoint inputs");
      }
      FlexibleRelation out = FlexibleRelation::Derived(
          StrCat("prod(", l.name(), ",", r.name(), ")"),
          PropagateProduct(l.deps(), r.deps()));
      size_t emitted = 0;
      for (const Tuple& a : l.rows()) {
        for (const Tuple& b : r.rows()) {
          Tuple merged = a;
          for (const auto& [attr, value] : b.fields()) {
            merged.Set(attr, value);
          }
          out.InsertUnchecked(std::move(merged));
          ++emitted;
        }
      }
      CountEmitted(emitted);
      return out;
    }
    case PlanKind::kUnion:
    case PlanKind::kOuterUnion: {
      if (node != nullptr) {
        node->op =
            plan->kind() == PlanKind::kUnion ? "union" : "outer_union";
      }
      // Rule (6) pattern: every input is an extension by one common tag
      // attribute with pairwise distinct values. Then dependencies survive
      // with the tag folded into their LHS; otherwise rule (4) applies and
      // nothing survives ("one cannot decide from which input relation the
      // tuples do come from").
      bool tagged = plan->inputs().size() >= 1;
      AttrId tag = 0;
      std::vector<Value> tag_values;
      for (size_t i = 0; i < plan->inputs().size(); ++i) {
        const PlanPtr& in_plan = plan->inputs()[i];
        if (in_plan->kind() != PlanKind::kExtend) {
          tagged = false;
          break;
        }
        if (i == 0) {
          tag = in_plan->extend_attr();
        } else if (in_plan->extend_attr() != tag) {
          tagged = false;
          break;
        }
        tag_values.push_back(in_plan->extend_value());
      }
      if (tagged) {
        std::sort(tag_values.begin(), tag_values.end());
        tagged = std::adjacent_find(tag_values.begin(), tag_values.end()) ==
                 tag_values.end();
      }
      std::vector<DependencySet> input_deps;
      std::vector<Tuple> rows;
      for (const PlanPtr& in_plan : plan->inputs()) {
        FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation in,
                                 Eval(in_plan, Child(node)));
        input_deps.push_back(in.deps());
        for (const Tuple& t : in.rows()) rows.push_back(t);
      }
      DependencySet deps =
          tagged ? PropagateTaggedUnion(input_deps, tag) : PropagateUnion();
      FlexibleRelation out = FlexibleRelation::Derived("union", deps);
      Dedup(&rows);
      CountEmitted(rows.size());
      for (Tuple& t : rows) out.InsertUnchecked(std::move(t));
      return out;
    }
    case PlanKind::kDifference: {
      if (node != nullptr) node->op = "difference";
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation l,
                               Eval(plan->inputs()[0], Child(node)));
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation r,
                               Eval(plan->inputs()[1], Child(node)));
      FlexibleRelation out = FlexibleRelation::Derived(
          StrCat("diff(", l.name(), ")"), PropagateDifference(l.deps()));
      std::unordered_set<Tuple, TupleHash> right_rows(r.rows().begin(),
                                                      r.rows().end());
      size_t emitted = 0;
      for (const Tuple& t : l.rows()) {
        if (right_rows.find(t) == right_rows.end()) {
          out.InsertUnchecked(t);
          ++emitted;
        }
      }
      CountEmitted(emitted);
      return out;
    }
    case PlanKind::kExtend: {
      if (node != nullptr) node->op = "extend";
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation in,
                               Eval(plan->inputs()[0], Child(node)));
      AttrId tag = plan->extend_attr();
      if (in.ActiveAttrs().Contains(tag)) {
        return Status::InvalidArgument(
            "extension attribute already present in the input");
      }
      FlexibleRelation out = FlexibleRelation::Derived(
          StrCat("ext(", in.name(), ")"), PropagateExtend(in.deps(), tag));
      for (const Tuple& t : in.rows()) {
        Tuple extended = t;
        extended.Set(tag, plan->extend_value());
        out.InsertUnchecked(std::move(extended));
      }
      CountEmitted(in.size());
      return out;
    }
    case PlanKind::kNaturalJoin: {
      if (node != nullptr) {
        node->op = options_.use_engine ? "natural_join[hash]"
                                       : "natural_join[nested]";
      }
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation l,
                               Eval(plan->inputs()[0], Child(node)));
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation r,
                               Eval(plan->inputs()[1], Child(node)));
      return JoinPair(l, r, /*final_output=*/true);
    }
    case PlanKind::kEmpty:
      if (node != nullptr) node->op = "empty";
      return FlexibleRelation::Derived("empty", DependencySet());
    case PlanKind::kMultiwayJoin: {
      if (plan->inputs().empty()) {
        return Status::InvalidArgument("multiway join over zero inputs");
      }
      if (options_.use_engine) {
        if (node != nullptr) node->op = "multiway_join[ordered]";
        return EvalMultiwayOrdered(*plan, node);
      }
      if (node != nullptr) node->op = "multiway_join[sequential]";
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation acc,
                               Eval(plan->inputs()[0], Child(node)));
      for (size_t i = 1; i < plan->inputs().size(); ++i) {
        FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation next,
                                 Eval(plan->inputs()[i], Child(node)));
        FLEXREL_ASSIGN_OR_RETURN(
            acc, JoinPair(acc, next,
                          /*final_output=*/i + 1 == plan->inputs().size()));
      }
      return acc;
    }
  }
  return Status::Internal("unknown plan kind");
}

// Indented one-line-per-operator rendering; multiway joins list their fold
// order (leg name, estimate, actual) on a dedicated line below the node.
void RenderExplain(const ExplainNode& node, size_t depth, std::string* out) {
  out->append(2 * depth, ' ');
  out->append(node.op.empty() ? "?" : node.op);
  out->append(" rows=");
  out->append(std::to_string(node.actual_rows));
  if (node.index_hit) out->append(" index=hit");
  char buf[48];
  std::snprintf(buf, sizeof(buf), " time=%.3fms", node.elapsed_ms);
  out->append(buf);
  out->push_back('\n');
  if (!node.join_steps.empty()) {
    out->append(2 * depth + 2, ' ');
    out->append("order:");
    for (size_t i = 0; i < node.join_steps.size(); ++i) {
      const ExplainJoinStep& s = node.join_steps[i];
      if (i > 0) out->append(" ->");
      std::snprintf(buf, sizeof(buf), " est=%.1f actual=%zu", s.est_rows,
                    s.actual_rows);
      out->append(" leg");
      out->append(std::to_string(s.leg));
      out->push_back('(');
      out->append(s.leg_name);
      out->push_back(')');
      out->append(buf);
    }
    out->push_back('\n');
  }
  for (const ExplainNode& child : node.children) {
    RenderExplain(child, depth + 1, out);
  }
}

}  // namespace

std::string ExplainReport::ToString() const {
  std::string out;
  RenderExplain(root, 0, &out);
  out.append(StrCat("stats: scanned=", stats.tuples_scanned,
                    " emitted=", stats.tuples_emitted,
                    " intermediate=", stats.intermediate_tuples,
                    " predicate_evals=", stats.predicate_evals,
                    " join_probes=", stats.join_probes, "\n"));
  return out;
}

Result<FlexibleRelation> Evaluate(const PlanPtr& plan, EvalStats* stats) {
  return Evaluate(plan, EvalOptions(), stats);
}

Result<FlexibleRelation> Evaluate(const PlanPtr& plan,
                                  const EvalOptions& options,
                                  EvalStats* stats) {
  Evaluator evaluator(options, stats);
  return evaluator.Eval(plan);
}

Result<ExplainReport> Explain(const PlanPtr& plan,
                              const EvalOptions& options) {
  ExplainReport report;
  Evaluator evaluator(options, &report.stats);
  FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation result,
                           evaluator.Eval(plan, &report.root));
  (void)result;  // the report carries the attribution; rows are discarded
  return report;
}

}  // namespace flexrel
