#include "algebra/evaluate.h"

#include <algorithm>
#include <unordered_set>

#include "algebra/ad_propagation.h"
#include "util/string_util.h"

namespace flexrel {

EvalStats& EvalStats::operator+=(const EvalStats& other) {
  tuples_scanned += other.tuples_scanned;
  tuples_emitted += other.tuples_emitted;
  predicate_evals += other.predicate_evals;
  join_probes += other.join_probes;
  return *this;
}

namespace {

void Dedup(std::vector<Tuple>* rows) {
  std::sort(rows->begin(), rows->end());
  rows->erase(std::unique(rows->begin(), rows->end()), rows->end());
}

// Joins two tuples when they agree on every shared attribute; the merged
// tuple carries the union of the fields.
bool TryJoin(const Tuple& a, const Tuple& b, Tuple* out) {
  Tuple merged = a;
  for (const auto& [attr, value] : b.fields()) {
    const Value* existing = a.Get(attr);
    if (existing != nullptr) {
      if (*existing != value) return false;
    } else {
      merged.Set(attr, value);
    }
  }
  *out = std::move(merged);
  return true;
}

Result<FlexibleRelation> Eval(const PlanPtr& plan, EvalStats* stats);

Result<FlexibleRelation> EvalJoinPair(const FlexibleRelation& left,
                                      const FlexibleRelation& right,
                                      EvalStats* stats) {
  FlexibleRelation out = FlexibleRelation::Derived("join", DependencySet());
  std::vector<Tuple> rows;
  for (const Tuple& a : left.rows()) {
    for (const Tuple& b : right.rows()) {
      if (stats != nullptr) ++stats->join_probes;
      Tuple merged;
      if (TryJoin(a, b, &merged)) {
        rows.push_back(std::move(merged));
      }
    }
  }
  Dedup(&rows);
  if (stats != nullptr) stats->tuples_emitted += rows.size();
  for (Tuple& t : rows) out.InsertUnchecked(std::move(t));
  return out;
}

Result<FlexibleRelation> Eval(const PlanPtr& plan, EvalStats* stats) {
  switch (plan->kind()) {
    case PlanKind::kScan: {
      const FlexibleRelation* src = plan->relation();
      if (src == nullptr) {
        return Status::FailedPrecondition("scan over null relation");
      }
      FlexibleRelation out = FlexibleRelation::Derived(src->name(), src->deps());
      for (const Tuple& t : src->rows()) out.InsertUnchecked(t);
      if (stats != nullptr) {
        stats->tuples_scanned += src->size();
        stats->tuples_emitted += src->size();
      }
      return out;
    }
    case PlanKind::kSelect: {
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation in,
                               Eval(plan->inputs()[0], stats));
      FlexibleRelation out = FlexibleRelation::Derived(
          StrCat("sel(", in.name(), ")"), PropagateSelect(in.deps()));
      for (const Tuple& t : in.rows()) {
        if (stats != nullptr) ++stats->predicate_evals;
        if (plan->formula()->Accepts(t)) {
          out.InsertUnchecked(t);
          if (stats != nullptr) ++stats->tuples_emitted;
        }
      }
      return out;
    }
    case PlanKind::kProject: {
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation in,
                               Eval(plan->inputs()[0], stats));
      FlexibleRelation out = FlexibleRelation::Derived(
          StrCat("proj(", in.name(), ")"),
          PropagateProject(in.deps(), plan->attrs()));
      std::vector<Tuple> rows;
      rows.reserve(in.size());
      for (const Tuple& t : in.rows()) rows.push_back(t.Project(plan->attrs()));
      Dedup(&rows);
      if (stats != nullptr) stats->tuples_emitted += rows.size();
      for (Tuple& t : rows) out.InsertUnchecked(std::move(t));
      return out;
    }
    case PlanKind::kProduct: {
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation l,
                               Eval(plan->inputs()[0], stats));
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation r,
                               Eval(plan->inputs()[1], stats));
      if (l.ActiveAttrs().Intersects(r.ActiveAttrs())) {
        return Status::InvalidArgument(
            "cartesian product requires attribute-disjoint inputs");
      }
      FlexibleRelation out = FlexibleRelation::Derived(
          StrCat("prod(", l.name(), ",", r.name(), ")"),
          PropagateProduct(l.deps(), r.deps()));
      for (const Tuple& a : l.rows()) {
        for (const Tuple& b : r.rows()) {
          Tuple merged = a;
          for (const auto& [attr, value] : b.fields()) {
            merged.Set(attr, value);
          }
          out.InsertUnchecked(std::move(merged));
          if (stats != nullptr) ++stats->tuples_emitted;
        }
      }
      return out;
    }
    case PlanKind::kUnion:
    case PlanKind::kOuterUnion: {
      // Rule (6) pattern: every input is an extension by one common tag
      // attribute with pairwise distinct values. Then dependencies survive
      // with the tag folded into their LHS; otherwise rule (4) applies and
      // nothing survives ("one cannot decide from which input relation the
      // tuples do come from").
      bool tagged = plan->inputs().size() >= 1;
      AttrId tag = 0;
      std::vector<Value> tag_values;
      for (size_t i = 0; i < plan->inputs().size(); ++i) {
        const PlanPtr& in_plan = plan->inputs()[i];
        if (in_plan->kind() != PlanKind::kExtend) {
          tagged = false;
          break;
        }
        if (i == 0) {
          tag = in_plan->extend_attr();
        } else if (in_plan->extend_attr() != tag) {
          tagged = false;
          break;
        }
        tag_values.push_back(in_plan->extend_value());
      }
      if (tagged) {
        std::sort(tag_values.begin(), tag_values.end());
        tagged = std::adjacent_find(tag_values.begin(), tag_values.end()) ==
                 tag_values.end();
      }
      std::vector<DependencySet> input_deps;
      std::vector<Tuple> rows;
      for (const PlanPtr& in_plan : plan->inputs()) {
        FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation in, Eval(in_plan, stats));
        input_deps.push_back(in.deps());
        for (const Tuple& t : in.rows()) rows.push_back(t);
      }
      DependencySet deps =
          tagged ? PropagateTaggedUnion(input_deps, tag) : PropagateUnion();
      FlexibleRelation out = FlexibleRelation::Derived("union", deps);
      Dedup(&rows);
      if (stats != nullptr) stats->tuples_emitted += rows.size();
      for (Tuple& t : rows) out.InsertUnchecked(std::move(t));
      return out;
    }
    case PlanKind::kDifference: {
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation l,
                               Eval(plan->inputs()[0], stats));
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation r,
                               Eval(plan->inputs()[1], stats));
      FlexibleRelation out = FlexibleRelation::Derived(
          StrCat("diff(", l.name(), ")"), PropagateDifference(l.deps()));
      std::unordered_set<Tuple, TupleHash> right_rows(r.rows().begin(),
                                                      r.rows().end());
      for (const Tuple& t : l.rows()) {
        if (right_rows.find(t) == right_rows.end()) {
          out.InsertUnchecked(t);
          if (stats != nullptr) ++stats->tuples_emitted;
        }
      }
      return out;
    }
    case PlanKind::kExtend: {
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation in,
                               Eval(plan->inputs()[0], stats));
      AttrId tag = plan->extend_attr();
      if (in.ActiveAttrs().Contains(tag)) {
        return Status::InvalidArgument(
            "extension attribute already present in the input");
      }
      FlexibleRelation out = FlexibleRelation::Derived(
          StrCat("ext(", in.name(), ")"), PropagateExtend(in.deps(), tag));
      for (const Tuple& t : in.rows()) {
        Tuple extended = t;
        extended.Set(tag, plan->extend_value());
        out.InsertUnchecked(std::move(extended));
        if (stats != nullptr) ++stats->tuples_emitted;
      }
      return out;
    }
    case PlanKind::kNaturalJoin: {
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation l,
                               Eval(plan->inputs()[0], stats));
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation r,
                               Eval(plan->inputs()[1], stats));
      return EvalJoinPair(l, r, stats);
    }
    case PlanKind::kEmpty:
      return FlexibleRelation::Derived("empty", DependencySet());
    case PlanKind::kMultiwayJoin: {
      if (plan->inputs().empty()) {
        return Status::InvalidArgument("multiway join over zero inputs");
      }
      FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation acc,
                               Eval(plan->inputs()[0], stats));
      for (size_t i = 1; i < plan->inputs().size(); ++i) {
        FLEXREL_ASSIGN_OR_RETURN(FlexibleRelation next,
                                 Eval(plan->inputs()[i], stats));
        FLEXREL_ASSIGN_OR_RETURN(acc, EvalJoinPair(acc, next, stats));
      }
      return acc;
    }
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace

Result<FlexibleRelation> Evaluate(const PlanPtr& plan, EvalStats* stats) {
  return Eval(plan, stats);
}

}  // namespace flexrel
