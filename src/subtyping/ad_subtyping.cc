#include "subtyping/ad_subtyping.h"

#include "util/string_util.h"

namespace flexrel {

Result<TypeFamily> DeriveTypeFamily(const RecordType& base,
                                    const ExplicitAD& ead) {
  const AttrSet& y = ead.determined();
  const AttrSet w = base.attrs();
  if (!ead.determinant().IsSubsetOf(w)) {
    return Status::InvalidArgument(
        "base type lacks determinant attributes of the EAD");
  }
  TypeFamily family;
  family.determinant = ead.determinant();
  // Supertype: W − Y, domains as in the base (dom(X) unrestricted).
  family.supertype = base.Project(w.Minus(y));
  family.supertype.set_name(base.name() + "_super");

  // One subtype per variant.
  for (size_t i = 0; i < ead.variants().size(); ++i) {
    const EadVariant& v = ead.variants()[i];
    RecordType sub = family.supertype;
    sub.set_name(StrCat(base.name(), "_variant", i));
    // Add the variant's attributes with their base domains.
    for (AttrId a : v.then) {
      const Domain* d = base.FieldDomain(a);
      if (d == nullptr) {
        return Status::InvalidArgument(
            StrCat("base type lacks a domain for determined attribute ", a));
      }
      sub.SetField(a, *d);
    }
    // Restrict each determinant attribute's domain to the values appearing
    // in Vi (the projection of the condition set onto that attribute).
    for (AttrId x : ead.condition_base()) {
      std::vector<Value> seen;
      for (const Tuple& val : v.when.values()) {
        const Value* pv = val.Get(x);
        if (pv != nullptr) seen.push_back(*pv);
      }
      if (seen.empty()) continue;
      const Domain* d = base.FieldDomain(x);
      if (d == nullptr) {
        return Status::InvalidArgument(
            StrCat("base type lacks a domain for determinant attribute ", x));
      }
      FLEXREL_ASSIGN_OR_RETURN(Domain restricted, d->RestrictTo(seen));
      sub.SetField(x, std::move(restricted));
    }
    family.subtypes.push_back(std::move(sub));
  }
  return family;
}

SupertypeVerdict CheckSupertype(const RecordType& candidate,
                                const TypeFamily& family,
                                const AttrCatalog& catalog) {
  SupertypeVerdict verdict;
  verdict.record_rule_ok = true;
  for (const RecordType& sub : family.subtypes) {
    if (!IsRecordSubtype(sub, candidate)) {
      verdict.record_rule_ok = false;
      verdict.reason = StrCat("record rule already rejects: ", sub.name(),
                              " is not a width/depth subtype of the candidate");
      return verdict;
    }
  }
  const AttrSet cand = candidate.attrs();
  if (family.determinant.IsSubsetOf(cand)) {
    verdict.semantics_preserving = true;
    verdict.reason = "retains the determinant; the causal connection between "
                     "domain restriction and added attributes survives";
  } else {
    verdict.semantics_preserving = false;
    verdict.reason = StrCat(
        "drops determinant attribute(s) ",
        family.determinant.Minus(cand).ToString(catalog),
        "; the record rule accepts the candidate but the attribute "
        "dependency no longer holds in it (Theorem 4.3 rule (2))");
  }
  return verdict;
}

std::vector<std::vector<bool>> SubtypeMatrix(
    const std::vector<RecordType>& types) {
  size_t n = types.size();
  std::vector<std::vector<bool>> m(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      m[i][j] = IsRecordSubtype(types[i], types[j]);
    }
  }
  return m;
}

std::vector<std::pair<size_t, size_t>> HasseEdges(
    const std::vector<RecordType>& types) {
  auto m = SubtypeMatrix(types);
  size_t n = types.size();
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j || !m[i][j] || m[j][i]) continue;  // skip equals & non-edges
      // (i, j) is immediate unless some k sits strictly between.
      bool immediate = true;
      for (size_t k = 0; k < n && immediate; ++k) {
        if (k == i || k == j) continue;
        bool strictly_between = m[i][k] && !m[k][i] && m[k][j] && !m[j][k];
        if (strictly_between) immediate = false;
      }
      if (immediate) edges.push_back({i, j});
    }
  }
  return edges;
}

}  // namespace flexrel
