// AD-induced record subtyping (Section 3.2).
//
// From an EAD over a base record type with attributes W one derives:
//   - the supertype over W − Y, with the determinant domain unrestricted;
//   - n subtypes over (W − Y) ∪ Yi, with dom(X) restricted to Vi.
// (Example 3: employee_type and its secretary/salesman/software-engineer
// subtypes inferred from the jobtype EAD.)
//
// The paper's key observation: each subtype differs from the supertype by
// *two* simultaneous changes — the determinant's domain shrinks to Vi and
// the variant attributes Yi appear — and the record rule treats these as
// accidental. It therefore accepts <salary: float> (without jobtype) as a
// supertype even though dropping jobtype severs the causal connection. The
// semantic check below rejects exactly those supertypes: a projection of the
// supertype preserves the dependency only when it retains the determinant
// (this is rule (2) of Theorem 4.3 applied at the type level: an AD survives
// projection onto P only when its LHS lies inside P).

#ifndef FLEXREL_SUBTYPING_AD_SUBTYPING_H_
#define FLEXREL_SUBTYPING_AD_SUBTYPING_H_

#include <string>
#include <vector>

#include "core/explicit_ad.h"
#include "subtyping/record_type.h"
#include "util/result.h"

namespace flexrel {

/// The family of types an EAD induces over a base record type.
struct TypeFamily {
  RecordType supertype;                ///< attributes W − Y
  std::vector<RecordType> subtypes;    ///< (W − Y) ∪ Yi, dom(X) ↓ Vi
  AttrSet determinant;                 ///< X, the causal link
};

/// Derives the Section-3.2 family. `base` must contain every determinant
/// attribute with a domain covering all variant condition values, and a
/// domain for every determined attribute appearing in some Yi.
Result<TypeFamily> DeriveTypeFamily(const RecordType& base,
                                    const ExplicitAD& ead);

/// Verdict on a candidate supertype of a family.
struct SupertypeVerdict {
  /// Accepted by the classical record rule (every subtype ≤ candidate).
  bool record_rule_ok = false;
  /// Additionally preserves the AD connection: the candidate retains the
  /// full determinant X (or touches none of the family's variant
  /// attributes, in which case there is no refinement left to determine).
  bool semantics_preserving = false;
  /// Human-readable explanation of the semantic decision.
  std::string reason;
};

/// Evaluates `candidate` against the family per both notions of subtyping.
SupertypeVerdict CheckSupertype(const RecordType& candidate,
                                const TypeFamily& family,
                                const AttrCatalog& catalog);

/// Pairwise subtype relation (classical rule) over a set of types; returns
/// the adjacency matrix edges[i][j] = (types[i] ≤ types[j]). Reflexive edges
/// are included.
std::vector<std::vector<bool>> SubtypeMatrix(
    const std::vector<RecordType>& types);

/// Transitive reduction of the subtype matrix: the Hasse diagram of the
/// subtype lattice restricted to the given types (useful for rendering
/// Example-3-style hierarchies). Edge (i, j) means "i is an immediate
/// subtype of j". Equal types (mutual subtypes) produce no edges.
std::vector<std::pair<size_t, size_t>> HasseEdges(
    const std::vector<RecordType>& types);

}  // namespace flexrel

#endif  // FLEXREL_SUBTYPING_AD_SUBTYPING_H_
