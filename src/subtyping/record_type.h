// Record types and the classical record subtyping rule.
//
// Section 3.2 compares attribute dependencies against the traditional
// subtyping rule for records (Cardelli/Wegner):
//
//      ti ≤ ui  (i = 1..n)
//      <a1:t1, ..., an:tn, ..., am:tm>  ≤  <a1:u1, ..., an:un>
//
// i.e. a record type is a subtype of another when it has *at least* the
// supertype's fields (width) and each common field's type refines the
// supertype's (depth). We model field types as attribute domains, so depth
// subtyping is domain containment.

#ifndef FLEXREL_SUBTYPING_RECORD_TYPE_H_
#define FLEXREL_SUBTYPING_RECORD_TYPE_H_

#include <string>
#include <vector>

#include "relational/attribute.h"
#include "relational/domain.h"
#include "relational/tuple.h"
#include "util/result.h"

namespace flexrel {

/// A record type: a set of attributes, each with a domain.
class RecordType {
 public:
  RecordType() = default;
  explicit RecordType(std::string name) : name_(std::move(name)) {}

  /// Adds (or replaces) a field.
  void SetField(AttrId attr, Domain domain);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// The attribute set of the record.
  AttrSet attrs() const;

  /// The domain of `attr`, or nullptr when the field is absent.
  const Domain* FieldDomain(AttrId attr) const;

  size_t size() const { return fields_.size(); }
  const std::vector<std::pair<AttrId, Domain>>& fields() const {
    return fields_;
  }

  /// Structural membership: `t` is a value of this type when attr(t) equals
  /// the record's attribute set and every field value lies in its domain.
  bool Accepts(const Tuple& t) const;

  /// Keeps only the fields in `keep` (record projection — the operation the
  /// classical rule says always yields a supertype).
  RecordType Project(const AttrSet& keep) const;

  std::string ToString(const AttrCatalog& catalog) const;

 private:
  std::string name_;
  std::vector<std::pair<AttrId, Domain>> fields_;  // sorted by AttrId
};

/// The classical record subtyping rule: `sub` ≤ `super` iff `super`'s fields
/// are a subset of `sub`'s and each shared field's domain in `sub` is
/// contained in `super`'s.
bool IsRecordSubtype(const RecordType& sub, const RecordType& super);

}  // namespace flexrel

#endif  // FLEXREL_SUBTYPING_RECORD_TYPE_H_
