#include "subtyping/record_type.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace flexrel {

void RecordType::SetField(AttrId attr, Domain domain) {
  auto it = std::lower_bound(
      fields_.begin(), fields_.end(), attr,
      [](const auto& f, AttrId a) { return f.first < a; });
  if (it != fields_.end() && it->first == attr) {
    it->second = std::move(domain);
  } else {
    fields_.insert(it, {attr, std::move(domain)});
  }
}

AttrSet RecordType::attrs() const {
  std::vector<AttrId> ids;
  ids.reserve(fields_.size());
  for (const auto& [attr, domain] : fields_) ids.push_back(attr);
  return AttrSet::FromIds(std::move(ids));
}

const Domain* RecordType::FieldDomain(AttrId attr) const {
  auto it = std::lower_bound(
      fields_.begin(), fields_.end(), attr,
      [](const auto& f, AttrId a) { return f.first < a; });
  if (it != fields_.end() && it->first == attr) return &it->second;
  return nullptr;
}

bool RecordType::Accepts(const Tuple& t) const {
  if (t.attrs() != attrs()) return false;
  for (const auto& [attr, domain] : fields_) {
    const Value* v = t.Get(attr);
    if (v == nullptr || !domain.Contains(*v)) return false;
  }
  return true;
}

RecordType RecordType::Project(const AttrSet& keep) const {
  RecordType out(name_ + "|projected");
  for (const auto& [attr, domain] : fields_) {
    if (keep.Contains(attr)) out.SetField(attr, domain);
  }
  return out;
}

std::string RecordType::ToString(const AttrCatalog& catalog) const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const auto& [attr, domain] : fields_) {
    parts.push_back(StrCat(catalog.Name(attr), ": ", domain.ToString()));
  }
  std::ostringstream os;
  if (!name_.empty()) os << name_ << " = ";
  os << "< " << Join(parts, ", ") << " >";
  return os.str();
}

bool IsRecordSubtype(const RecordType& sub, const RecordType& super) {
  for (const auto& [attr, super_domain] : super.fields()) {
    const Domain* sub_domain = sub.FieldDomain(attr);
    if (sub_domain == nullptr) return false;               // width
    if (!sub_domain->IsSubdomainOf(super_domain)) return false;  // depth
  }
  return true;
}

}  // namespace flexrel
