// A small textual query front end.
//
// The paper discusses ADs "in connection with a query language" (type guards
// in selection formulas, rewrite opportunities, retrieval-time checks); this
// module provides the concrete syntax the examples and tools use:
//
//   formula  := or
//   or       := and ( OR and )*
//   and      := unary ( AND unary )*
//   unary    := NOT unary | primary
//   primary  := '(' formula ')'
//             | EXISTS '(' attr ')'                    -- the type guard
//             | attr op literal                        -- op: = <> < <= > >=
//             | attr IN '(' literal (',' literal)* ')'
//   literal  := integer | real | 'string' | true | false
//
// and the query form
//
//   SELECT * | attr (, attr)*  [ WHERE formula ]
//
// Attribute names are interned into the caller's catalog; keywords are
// case-insensitive; attribute names are case-sensitive.

#ifndef FLEXREL_QUERY_QUERY_PARSER_H_
#define FLEXREL_QUERY_QUERY_PARSER_H_

#include <optional>
#include <string>

#include "algebra/plan.h"
#include "relational/expression.h"
#include "util/result.h"

namespace flexrel {

/// Parses a selection formula.
Result<ExprPtr> ParseFormula(AttrCatalog* catalog, const std::string& text);

/// A parsed SELECT query.
struct ParsedQuery {
  bool select_all = false;
  AttrSet projection;          ///< valid when !select_all
  ExprPtr where;               ///< never null (TRUE when absent)
};

/// Parses "SELECT ... [WHERE ...]".
Result<ParsedQuery> ParseQuery(AttrCatalog* catalog, const std::string& text);

/// Builds the logical plan σ_where(π_projection(relation)) — selection first,
/// so formulas may reference attributes the projection drops.
PlanPtr BuildQueryPlan(const ParsedQuery& query,
                       const FlexibleRelation* relation);

}  // namespace flexrel

#endif  // FLEXREL_QUERY_QUERY_PARSER_H_
