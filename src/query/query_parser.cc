#include "query/query_parser.h"

#include <cctype>

#include "util/string_util.h"

namespace flexrel {

namespace {

// Hand-rolled tokenizer + recursive-descent parser.
class FormulaParser {
 public:
  FormulaParser(AttrCatalog* catalog, const std::string& text)
      : catalog_(catalog), text_(text) {}

  Result<ExprPtr> ParseFull() {
    FLEXREL_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          StrCat("trailing input at offset ", pos_, ": '",
                 text_.substr(pos_), "'"));
    }
    return e;
  }

  Result<ExprPtr> ParseOr() {
    FLEXREL_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (ConsumeKeyword("OR")) {
      FLEXREL_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Expr::Or(left, right);
    }
    return left;
  }

  size_t position() const { return pos_; }
  bool ConsumeKeywordPublic(const std::string& kw) { return ConsumeKeyword(kw); }
  void SkipWsPublic() { SkipWs(); }
  bool AtEnd() {
    SkipWs();
    return pos_ == text_.size();
  }
  Result<std::string> ParseIdentifierPublic() { return ParseIdentifier(); }
  bool ConsumeCharPublic(char c) { return ConsumeChar(c); }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeChar(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // Case-insensitive keyword match on a word boundary.
  bool ConsumeKeyword(const std::string& kw) {
    SkipWs();
    if (pos_ + kw.size() > text_.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(text_[pos_ + i])) != kw[i]) {
        return false;
      }
    }
    size_t after = pos_ + kw.size();
    if (after < text_.size()) {
      char c = text_[after];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-') {
        return false;  // part of a longer identifier
      }
    }
    pos_ = after;
    return true;
  }

  Result<std::string> ParseIdentifier() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (start == pos_) {
      return Status::InvalidArgument(
          StrCat("expected identifier at offset ", start));
    }
    return text_.substr(start, pos_ - start);
  }

  Result<Value> ParseLiteral() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("expected literal at end of input");
    }
    char c = text_[pos_];
    if (c == '\'') {
      ++pos_;
      std::string s;
      while (pos_ < text_.size() && text_[pos_] != '\'') {
        s.push_back(text_[pos_++]);
      }
      if (pos_ == text_.size()) {
        return Status::InvalidArgument("unterminated string literal");
      }
      ++pos_;  // closing quote
      return Value::Str(std::move(s));
    }
    if (ConsumeKeyword("TRUE")) return Value::Bool(true);
    if (ConsumeKeyword("FALSE")) return Value::Bool(false);
    // Number: [-]digits[.digits]
    size_t start = pos_;
    if (c == '-' || c == '+') ++pos_;
    bool digits = false, dot = false;
    while (pos_ < text_.size()) {
      char d = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(d))) {
        digits = true;
        ++pos_;
      } else if (d == '.' && !dot) {
        dot = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) {
      return Status::InvalidArgument(
          StrCat("expected literal at offset ", start));
    }
    std::string token = text_.substr(start, pos_ - start);
    if (dot) return Value::Real(std::stod(token));
    return Value::Int(std::stoll(token));
  }

  Result<CmpOp> ParseCmpOp() {
    SkipWs();
    auto two = [&](const char* s) {
      return pos_ + 1 < text_.size() && text_[pos_] == s[0] &&
             text_[pos_ + 1] == s[1];
    };
    if (two("<=")) {
      pos_ += 2;
      return CmpOp::kLe;
    }
    if (two(">=")) {
      pos_ += 2;
      return CmpOp::kGe;
    }
    if (two("<>")) {
      pos_ += 2;
      return CmpOp::kNe;
    }
    if (pos_ < text_.size()) {
      switch (text_[pos_]) {
        case '=':
          ++pos_;
          return CmpOp::kEq;
        case '<':
          ++pos_;
          return CmpOp::kLt;
        case '>':
          ++pos_;
          return CmpOp::kGt;
        default:
          break;
      }
    }
    return Status::InvalidArgument(
        StrCat("expected comparison operator at offset ", pos_));
  }

  Result<ExprPtr> ParseAnd() {
    FLEXREL_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (ConsumeKeyword("AND")) {
      FLEXREL_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = Expr::And(left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (ConsumeKeyword("NOT")) {
      FLEXREL_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      return Expr::Not(inner);
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    SkipWs();
    if (ConsumeChar('(')) {
      FLEXREL_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
      if (!ConsumeChar(')')) {
        return Status::InvalidArgument("expected ')'");
      }
      return inner;
    }
    if (ConsumeKeyword("EXISTS")) {
      if (!ConsumeChar('(')) {
        return Status::InvalidArgument("expected '(' after EXISTS");
      }
      FLEXREL_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
      if (!ConsumeChar(')')) {
        return Status::InvalidArgument("expected ')' after EXISTS attribute");
      }
      return Expr::Exists(catalog_->Intern(name));
    }
    if (ConsumeKeyword("TRUE")) return Expr::Const(TriBool::kTrue);
    if (ConsumeKeyword("FALSE")) return Expr::Const(TriBool::kFalse);

    FLEXREL_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
    AttrId attr = catalog_->Intern(name);
    if (ConsumeKeyword("IN")) {
      if (!ConsumeChar('(')) {
        return Status::InvalidArgument("expected '(' after IN");
      }
      std::vector<Value> values;
      while (true) {
        FLEXREL_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        values.push_back(std::move(v));
        if (ConsumeChar(',')) continue;
        if (ConsumeChar(')')) break;
        return Status::InvalidArgument("expected ',' or ')' in IN list");
      }
      return Expr::In(attr, std::move(values));
    }
    FLEXREL_ASSIGN_OR_RETURN(CmpOp op, ParseCmpOp());
    FLEXREL_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
    return Expr::Compare(attr, op, std::move(literal));
  }

  AttrCatalog* catalog_;
  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParseFormula(AttrCatalog* catalog, const std::string& text) {
  return FormulaParser(catalog, text).ParseFull();
}

Result<ParsedQuery> ParseQuery(AttrCatalog* catalog, const std::string& text) {
  FormulaParser p(catalog, text);
  if (!p.ConsumeKeywordPublic("SELECT")) {
    return Status::InvalidArgument("query must start with SELECT");
  }
  ParsedQuery q;
  p.SkipWsPublic();
  if (p.ConsumeCharPublic('*')) {
    q.select_all = true;
  } else {
    while (true) {
      FLEXREL_ASSIGN_OR_RETURN(std::string name, p.ParseIdentifierPublic());
      q.projection.Insert(catalog->Intern(name));
      if (!p.ConsumeCharPublic(',')) break;
    }
  }
  if (p.ConsumeKeywordPublic("WHERE")) {
    FLEXREL_ASSIGN_OR_RETURN(q.where, p.ParseOr());
  } else {
    q.where = Expr::Const(TriBool::kTrue);
  }
  if (!p.AtEnd()) {
    return Status::InvalidArgument(
        StrCat("trailing input at offset ", p.position()));
  }
  return q;
}

PlanPtr BuildQueryPlan(const ParsedQuery& query,
                       const FlexibleRelation* relation) {
  PlanPtr plan = Plan::Scan(relation);
  plan = Plan::Select(plan, query.where);
  if (!query.select_all) {
    plan = Plan::Project(plan, query.projection);
  }
  return plan;
}

}  // namespace flexrel
