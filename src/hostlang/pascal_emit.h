// Host-language embedding: PASCAL variant records (Sections 3.3 and 4.2).
//
// A flexible scheme accompanied by an EAD translates into a PASCAL variant
// record. PASCAL imposes a syntactic restriction the paper calls out: the
// discriminant of a variant record must be a *single* attribute (of ordinal
// type). For an EAD X --attr--> Y with |X| >= 2 the paper proposes the
// workaround that motivates the combined axiom system 𝔄*:
//
//   introduce an artificial attribute A, replace X --attr--> Y by
//   A --attr--> Y, and make A functionally dependent on X (X --func--> A).
//
// Rule AF2 (combined transitivity) then proves that X --attr--> Y still
// holds — EmitPascalRecord returns that machine-checked derivation alongside
// the generated source text.

#ifndef FLEXREL_HOSTLANG_PASCAL_EMIT_H_
#define FLEXREL_HOSTLANG_PASCAL_EMIT_H_

#include <optional>
#include <string>
#include <vector>

#include "core/artificial_ads.h"
#include "core/explicit_ad.h"
#include "core/implication.h"
#include "relational/domain.h"

namespace flexrel {

/// Output of the PASCAL translation.
struct PascalEmission {
  /// The PASCAL `type` section: supporting enumerations plus the record.
  std::string source;
  /// True when the single-discriminant workaround had to be applied.
  bool used_artificial_tag = false;
  /// The tag attribute introduced by the workaround (valid when used).
  AttrId tag_attr = 0;
  /// The replacement constraints: X --func--> A and A --attr--> Y.
  std::optional<FuncDep> tag_fd;
  std::optional<AttrDep> tag_ad;
  /// AF2 derivation showing the original X --attr--> Y is still implied.
  Derivation validity_proof;
};

/// Emits a PASCAL variant-record type for a record with unconditioned fields
/// `common_fields` (must include the EAD's determinant attributes, each with
/// a finite/ordinal-translatable domain) and a variant part governed by
/// `ead`. `catalog` supplies names (sanitized into PASCAL identifiers); the
/// artificial tag attribute, when needed, is interned into `catalog`.
Result<PascalEmission> EmitPascalRecord(
    AttrCatalog* catalog, const std::string& type_name,
    const std::vector<std::pair<AttrId, Domain>>& common_fields,
    const std::vector<std::pair<AttrId, Domain>>& variant_fields,
    const ExplicitAD& ead);

/// Maps a domain onto a PASCAL type name; enumerated string domains produce
/// a named enumeration emitted separately by EmitPascalRecord.
std::string PascalTypeName(const Domain& domain);

/// Whole-scheme translation (Section 3.3): any flexible scheme becomes a
/// PASCAL type once every existential relationship is accompanied by an AD —
/// obtained here by SynthesizeArtificialAds. Fixed attributes become plain
/// fields; every variant region becomes a nested variant record
/// discriminated by its artificial tag. Attributes occurring in several
/// combinations of one region are suffixed per branch (PASCAL requires
/// field names to be unique across all variant branches of a record — a
/// restriction the paper's sketch glosses over; documented here).
struct PascalSchemeEmission {
  std::string source;
  /// The synthesized tags/EADs; CompleteWithTags() turns stored tuples into
  /// values of the emitted type.
  ArtificialAds ads;
};

Result<PascalSchemeEmission> EmitPascalScheme(
    AttrCatalog* catalog, const std::string& type_name,
    const FlexibleScheme& scheme,
    const std::vector<std::pair<AttrId, Domain>>& fields);

/// Lower-cases and strips characters PASCAL identifiers cannot carry.
std::string PascalIdentifier(const std::string& name);

}  // namespace flexrel

#endif  // FLEXREL_HOSTLANG_PASCAL_EMIT_H_
