#include "hostlang/pascal_emit.h"

#include <cctype>
#include <sstream>

#include "util/string_util.h"

namespace flexrel {

std::string PascalIdentifier(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (c == '_' || c == '-' || c == ' ') {
      out.push_back('_');
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), 'f');
  }
  return out;
}

std::string PascalTypeName(const Domain& domain) {
  switch (domain.type()) {
    case ValueType::kBool:
      return "boolean";
    case ValueType::kInt:
      if (domain.is_range()) {
        return StrCat(domain.range_lo(), "..", domain.range_hi());
      }
      return "integer";
    case ValueType::kDouble:
      return "real";
    case ValueType::kString:
      return "string[255]";
    case ValueType::kNull:
      break;
  }
  return "integer";
}

namespace {

// Emits "name = (v0, v1, ...);" for an enumerated string domain and returns
// the enumeration's member identifiers in domain order.
std::string EmitEnumType(const std::string& name, const Domain& domain,
                         std::vector<std::string>* members) {
  std::ostringstream os;
  os << "  " << name << " = (";
  for (size_t i = 0; i < domain.values().size(); ++i) {
    std::string member = PascalIdentifier(domain.values()[i].as_string());
    members->push_back(member);
    if (i > 0) os << ", ";
    os << member;
  }
  os << ");\n";
  return os.str();
}

const Domain* FindDomain(
    const std::vector<std::pair<AttrId, Domain>>& fields, AttrId attr) {
  for (const auto& [a, d] : fields) {
    if (a == attr) return &d;
  }
  return nullptr;
}

}  // namespace

Result<PascalEmission> EmitPascalRecord(
    AttrCatalog* catalog, const std::string& type_name,
    const std::vector<std::pair<AttrId, Domain>>& common_fields,
    const std::vector<std::pair<AttrId, Domain>>& variant_fields,
    const ExplicitAD& ead) {
  PascalEmission out;
  std::ostringstream enums;
  std::ostringstream rec;

  const AttrSet& x = ead.determinant();
  // Decide the discriminant: the lone determinant attribute, or an
  // artificial tag when PASCAL's single-discriminant restriction bites.
  AttrId discriminant;
  std::string disc_type_name;
  std::vector<std::string> disc_members;  // enum member per variant index
  DependencySet sigma;

  if (x.size() == 1) {
    discriminant = *x.begin();
    const Domain* d = FindDomain(common_fields, discriminant);
    if (d == nullptr) {
      return Status::InvalidArgument(
          "determinant attribute missing from common fields");
    }
    if (d->is_enumerated() && d->type() == ValueType::kString) {
      disc_type_name = PascalIdentifier(catalog->Name(discriminant)) + "_type";
      enums << EmitEnumType(disc_type_name, *d, &disc_members);
    } else if (d->type() == ValueType::kInt || d->type() == ValueType::kBool) {
      disc_type_name = PascalTypeName(*d);
    } else {
      return Status::InvalidArgument(
          StrCat("PASCAL requires an ordinal discriminant; domain ",
                 d->ToString(), " does not qualify"));
    }
    sigma.AddAd(AttrDep{x, ead.determined()});
  } else {
    // Workaround: artificial tag attribute A with X --func--> A and
    // A --attr--> Y; one enum member per variant plus an "otherwise".
    out.used_artificial_tag = true;
    out.tag_attr = catalog->Intern(type_name + "_tag");
    discriminant = out.tag_attr;
    disc_type_name = PascalIdentifier(type_name) + "_tag_type";
    enums << "  " << disc_type_name << " = (";
    for (size_t i = 0; i <= ead.variants().size(); ++i) {
      if (i > 0) enums << ", ";
      std::string member = (i < ead.variants().size())
                               ? StrCat("tag_variant", i)
                               : std::string("tag_none");
      disc_members.push_back(member);
      enums << member;
    }
    enums << ");\n";
    out.tag_fd = FuncDep{x, AttrSet::Of(out.tag_attr)};
    out.tag_ad = AttrDep{AttrSet::Of(out.tag_attr), ead.determined()};
    sigma.AddFd(*out.tag_fd);
    sigma.AddAd(*out.tag_ad);
  }

  // Validity: Σ (with the workaround constraints) must still imply the
  // original dependency X --attr--> Y; rule AF2 supplies the derivation.
  AttrDep original{x, ead.determined()};
  Result<Derivation> proof =
      DeriveAttrDep(*catalog, sigma, original, AxiomSystem::kCombined);
  if (!proof.ok()) {
    return proof.status().WithContext(
        "workaround failed to preserve the attribute dependency");
  }
  out.validity_proof = std::move(proof).value();

  // Supporting enum types for enumerated non-discriminant fields.
  auto field_type = [&](AttrId attr, const Domain& d) -> std::string {
    if (d.is_enumerated() && d.type() == ValueType::kString) {
      std::string tname = PascalIdentifier(catalog->Name(attr)) + "_type";
      std::vector<std::string> members;
      enums << EmitEnumType(tname, d, &members);
      return tname;
    }
    return PascalTypeName(d);
  };

  rec << "  " << PascalIdentifier(type_name) << " = record\n";
  for (const auto& [attr, domain] : common_fields) {
    if (attr == discriminant && !out.used_artificial_tag &&
        FindDomain(common_fields, attr)->is_enumerated()) {
      continue;  // the discriminant is declared in the case head below
    }
    if (attr == discriminant) continue;
    rec << "    " << PascalIdentifier(catalog->Name(attr)) << ": "
        << field_type(attr, domain) << ";\n";
  }
  rec << "    case " << PascalIdentifier(catalog->Name(discriminant)) << ": "
      << disc_type_name << " of\n";
  for (size_t i = 0; i < ead.variants().size(); ++i) {
    const EadVariant& v = ead.variants()[i];
    // Case label: the enum member(s) selecting this variant.
    std::string label;
    if (out.used_artificial_tag) {
      label = disc_members[i];
    } else if (!disc_members.empty()) {
      // Enumerated discriminant: list the members of Vi.
      std::vector<std::string> labels;
      for (const Tuple& val : v.when.values()) {
        const Value* pv = val.Get(discriminant);
        if (pv != nullptr && pv->type() == ValueType::kString) {
          labels.push_back(PascalIdentifier(pv->as_string()));
        }
      }
      label = Join(labels, ", ");
    } else {
      // Ordinal discriminant: literal values.
      std::vector<std::string> labels;
      for (const Tuple& val : v.when.values()) {
        const Value* pv = val.Get(discriminant);
        if (pv != nullptr) labels.push_back(pv->ToString());
      }
      label = Join(labels, ", ");
    }
    rec << "      " << label << ": (";
    bool first = true;
    for (AttrId a : v.then) {
      const Domain* d = FindDomain(variant_fields, a);
      if (d == nullptr) {
        return Status::InvalidArgument(
            StrCat("variant attribute ", catalog->Name(a), " has no domain"));
      }
      if (!first) rec << "; ";
      first = false;
      rec << PascalIdentifier(catalog->Name(a)) << ": " << field_type(a, *d);
    }
    rec << ");\n";
  }
  rec << "  end;\n";

  out.source = StrCat("type\n", enums.str(), rec.str());
  return out;
}

Result<PascalSchemeEmission> EmitPascalScheme(
    AttrCatalog* catalog, const std::string& type_name,
    const FlexibleScheme& scheme,
    const std::vector<std::pair<AttrId, Domain>>& fields) {
  PascalSchemeEmission out;
  FLEXREL_ASSIGN_OR_RETURN(
      out.ads, SynthesizeArtificialAds(catalog, scheme,
                                       PascalIdentifier(type_name) + "_r"));

  std::ostringstream enums;
  std::ostringstream regions_src;
  std::ostringstream rec;

  auto field_type = [&](AttrId attr) -> Result<std::string> {
    const Domain* d = FindDomain(fields, attr);
    if (d == nullptr) {
      return Status::InvalidArgument(
          StrCat("no domain supplied for attribute ", catalog->Name(attr)));
    }
    if (d->is_enumerated() && d->type() == ValueType::kString) {
      std::string tname = PascalIdentifier(catalog->Name(attr)) + "_type";
      std::vector<std::string> members;
      enums << EmitEnumType(tname, *d, &members);
      return tname;
    }
    return PascalTypeName(*d);
  };

  // Fixed attributes: everything outside all variant regions.
  AttrSet variable;
  for (const ArtificialRegion& r : out.ads.regions) {
    variable = variable.Union(r.region_attrs);
  }
  AttrSet fixed = scheme.attrs().Minus(variable);

  // One nested variant-record type per region.
  for (size_t ri = 0; ri < out.ads.regions.size(); ++ri) {
    const ArtificialRegion& region = out.ads.regions[ri];
    std::string region_type =
        StrCat(PascalIdentifier(type_name), "_region", ri);
    // Attributes occurring in more than one combination need per-branch
    // names: PASCAL requires unique field names across all branches.
    std::vector<size_t> occurrence_count(catalog->size(), 0);
    for (const AttrSet& combo : region.combinations) {
      for (AttrId a : combo) ++occurrence_count[a];
    }
    regions_src << "  " << region_type << " = record\n"
                << "    case tag: 0.."
                << region.combinations.size() - 1 << " of\n";
    for (size_t i = 0; i < region.combinations.size(); ++i) {
      regions_src << "      " << i << ": (";
      bool first = true;
      for (AttrId a : region.combinations[i]) {
        FLEXREL_ASSIGN_OR_RETURN(std::string tname, field_type(a));
        if (!first) regions_src << "; ";
        first = false;
        std::string fname = PascalIdentifier(catalog->Name(a));
        if (occurrence_count[a] > 1) fname = StrCat(fname, "_v", i);
        regions_src << fname << ": " << tname;
      }
      regions_src << ");\n";
    }
    regions_src << "  end;\n";
  }

  // The top-level record: fixed fields plus one field per region.
  rec << "  " << PascalIdentifier(type_name) << " = record\n";
  for (AttrId a : fixed) {
    FLEXREL_ASSIGN_OR_RETURN(std::string tname, field_type(a));
    rec << "    " << PascalIdentifier(catalog->Name(a)) << ": " << tname
        << ";\n";
  }
  for (size_t ri = 0; ri < out.ads.regions.size(); ++ri) {
    rec << "    region" << ri << ": "
        << StrCat(PascalIdentifier(type_name), "_region", ri) << ";\n";
  }
  rec << "  end;\n";

  out.source = StrCat("type\n", enums.str(), regions_src.str(), rec.str());
  return out;
}

}  // namespace flexrel
