#include "util/rng.h"

#include <cassert>

namespace flexrel {

Rng::Rng(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

uint64_t Rng::Next() {
  // splitmix64 step: excellent avalanche for cheap sequential draws.
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % span);
}

double Rng::UniformDouble() {
  // 53 high bits -> [0,1) double.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::Index(size_t size) {
  assert(size > 0);
  return static_cast<size_t>(Next() % size);
}

std::vector<size_t> Rng::Sample(size_t n, size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace flexrel
