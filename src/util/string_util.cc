#include "util/string_util.h"

#include <cctype>

namespace flexrel {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Trim(const std::string& text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

std::string AsciiLower(std::string text) {
  for (char& c : text) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return text;
}

}  // namespace flexrel
