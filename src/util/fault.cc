#include "util/fault.h"

#include <chrono>
#include <mutex>
#include <new>
#include <thread>
#include <unordered_map>

#include "telemetry/telemetry.h"

namespace flexrel {
namespace fault {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_seed{0};

// splitmix64 finalizer: full-avalanche mix of (seed, site, hit index) so
// adjacent hit indexes land on uncorrelated decisions.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t HashName(std::string_view name) {
  // FNV-1a; stable across runs, which the replay contract requires.
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

struct Registry::Impl {
  mutable std::mutex mu;
  std::unordered_map<std::string, Site*> sites;
};

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Impl& Registry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Site* Registry::GetSite(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.sites.find(std::string(name));
  if (it != im.sites.end()) return it->second;
  Site* site = new Site(std::string(name));  // lives forever, like metrics
  im.sites.emplace(site->name(), site);
  return site;
}

std::vector<const Site*> Registry::Sites() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<const Site*> out;
  out.reserve(im.sites.size());
  for (const auto& [name, site] : im.sites) out.push_back(site);
  return out;
}

uint64_t Registry::InjectedTotal() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  uint64_t total = 0;
  for (const auto& [name, site] : im.sites) total += site->injected();
  return total;
}

uint64_t Registry::seed() const {
  return g_seed.load(std::memory_order_relaxed);
}

void Enable(uint64_t seed) {
  Registry::Impl& im = Registry::Global().impl();
  {
    std::lock_guard<std::mutex> lock(im.mu);
    for (auto& [name, site] : im.sites) site->ResetSchedule();
  }
  g_seed.store(seed, std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
}

void Disable() { g_enabled.store(false, std::memory_order_relaxed); }

Site::Site(std::string name)
    : name_(std::move(name)), name_hash_(HashName(name_)) {}

void Site::MaybeInject() {
  const uint64_t n = hits_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t h = Mix(g_seed.load(std::memory_order_relaxed) ^ name_hash_ ^
                         (n * 0x9E3779B97F4A7C15ull));
  if ((h & 7) != 0) return;  // ~1/8 of hits inject
  injected_.fetch_add(1, std::memory_order_relaxed);
  FLEXREL_TELEMETRY_COUNT("fault.injected_total", 1);
  switch ((h >> 3) & 3) {
    case 0:
    case 1:
      // Weighted toward the interesting kind: allocation failure.
      throw std::bad_alloc();
    case 2:
      throw InducedAbort{name_.c_str()};
    default:
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      return;
  }
}

}  // namespace fault
}  // namespace flexrel
