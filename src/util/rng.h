// Deterministic pseudo-random number generation for workload generators and
// property tests. We deliberately avoid std::mt19937 seeding subtleties and
// use a fixed, documented algorithm so that generated workloads are
// reproducible byte-for-byte across platforms and library versions.

#ifndef FLEXREL_UTIL_RNG_H_
#define FLEXREL_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flexrel {

/// splitmix64/xorshift-based deterministic RNG.
///
/// Not cryptographic. Streams are fully determined by the seed, which makes
/// failing property tests replayable from the seed value printed by the test.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit draw.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli draw: true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniformly chosen index into a container of `size` elements.
  /// Requires size > 0.
  size_t Index(size_t size);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = Index(i + 1);
      using std::swap;
      swap((*items)[i], (*items)[j]);
    }
  }

  /// Draws `k` distinct indices out of [0, n). Requires k <= n.
  std::vector<size_t> Sample(size_t n, size_t k);

 private:
  uint64_t state_;
};

}  // namespace flexrel

#endif  // FLEXREL_UTIL_RNG_H_
