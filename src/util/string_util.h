// Small string helpers shared across the library (GCC 12 lacks <format>, so
// we provide the few pieces we need instead of pulling a dependency).

#ifndef FLEXREL_UTIL_STRING_UTIL_H_
#define FLEXREL_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace flexrel {

/// Joins the elements of `items` with `sep` using operator<< formatting.
template <typename Container>
std::string Join(const Container& items, const std::string& sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : items) {
    if (!first) os << sep;
    first = false;
    os << item;
  }
  return os.str();
}

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(const std::string& text, char sep);

/// Strips leading and trailing ASCII whitespace.
std::string Trim(const std::string& text);

/// StrCat via ostream: concatenates the printable arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// True iff `text` starts with `prefix`.
bool StartsWith(const std::string& text, const std::string& prefix);

/// Lower-cases ASCII letters.
std::string AsciiLower(std::string text);

}  // namespace flexrel

#endif  // FLEXREL_UTIL_STRING_UTIL_H_
