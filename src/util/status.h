// Exception-free error propagation, in the style common to C++ database
// engines (Arrow, RocksDB, LevelDB): fallible operations return a Status (or
// a Result<T>, see result.h) instead of throwing.

#ifndef FLEXREL_UTIL_STATUS_H_
#define FLEXREL_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace flexrel {

/// Machine-readable classification of an error condition.
enum class StatusCode : int {
  kOk = 0,
  /// A caller-supplied argument is malformed (e.g. duplicate attribute in a
  /// flexible scheme, cardinality bounds out of range).
  kInvalidArgument = 1,
  /// A tuple or relation violates a scheme or dependency; the data is the
  /// problem, not the request.
  kConstraintViolation = 2,
  /// A named entity (attribute, relation, variant) does not exist.
  kNotFound = 3,
  /// An entity being created already exists.
  kAlreadyExists = 4,
  /// The operation is well-formed but not permitted in the current state
  /// (e.g. evaluating an unbound plan).
  kFailedPrecondition = 5,
  /// Arithmetic / capacity overflow (e.g. dnf() count exceeding 2^63).
  kOutOfRange = 6,
  /// Functionality intentionally not provided.
  kNotImplemented = 7,
  /// Catch-all for internal invariant breakage; indicates a library bug.
  kInternal = 8,
  /// The caller cancelled the operation via a CancellationToken; any
  /// partial result carries an explicit "partial" flag.
  kCancelled = 9,
  /// The operation ran past the deadline on its ExecContext.
  kDeadlineExceeded = 10,
};

/// Returns the canonical lower-case name of `code` ("ok", "invalid-argument",
/// ...). Stable; safe to use in test expectations and log scraping.
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: either OK or a code plus message.
///
/// The OK state allocates nothing, so functions returning Status on the hot
/// path (tuple type checks, dependency satisfaction probes) stay cheap.
/// Statuses are immutable value types; copying shares the error payload.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with `code` and a human-readable `message`.
  /// `code` must not be kOk — use the default constructor for success.
  Status(StatusCode code, std::string message);

  /// Named constructors, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status ConstraintViolation(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status FailedPrecondition(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status NotImplemented(std::string msg);
  static Status Internal(std::string msg);
  static Status Cancelled(std::string msg);
  static Status DeadlineExceeded(std::string msg);

  /// True iff the operation succeeded.
  bool ok() const { return rep_ == nullptr; }

  /// The status code; kOk when ok().
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }

  /// The error message; empty when ok().
  const std::string& message() const;

  /// "OK" or "<code-name>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message,
  /// for annotating errors as they bubble up ("insert failed: ...").
  Status WithContext(const std::string& context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Null for OK; shared so copies are cheap.
  std::shared_ptr<const Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace flexrel

/// Propagates a non-OK Status out of the enclosing function.
#define FLEXREL_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::flexrel::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                         \
  } while (false)

#endif  // FLEXREL_UTIL_STATUS_H_
