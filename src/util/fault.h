// Deterministic seeded fault injection for robustness testing, built on
// the telemetry plane's cost model: named sites, off by default behind one
// relaxed atomic load, with call sites caching their Site pointer in a
// function-local static so a disabled build pays one predictable branch.
//
// A site is a stable name placed at a failure-prone point — an allocation
// inside a flush arm, a snapshot publish, a discovery level. When the
// registry is enabled with a seed, each site decides injection purely from
// (seed, site name, per-site hit index) through a splitmix64-style mixer:
// the same seed replays the exact same fault schedule, which is what lets
// the nightly chaos soak upload a failing seed as a reproducer. Roughly
// one hit in eight injects; the mixed bits also pick the fault kind:
//
//   - kAllocFailure: throws std::bad_alloc, exercising the strong
//     exception guarantee of flush/build paths;
//   - kAbort: throws fault::InducedAbort, a distinct type so tests can
//     tell an induced abort from a real allocation failure;
//   - kLatency: sleeps ~50us, widening race windows for the concurrent
//     suites without failing anything.
//
// Production code never catches InducedAbort specifically — the recovery
// paths under test must treat it like any other exception.

#ifndef FLEXREL_UTIL_FAULT_H_
#define FLEXREL_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace flexrel {
namespace fault {

/// Thrown by kAbort injections. Deliberately not derived from
/// std::exception's allocation family so recovery code proves it handles
/// arbitrary failure, not just bad_alloc.
struct InducedAbort {
  const char* site = "";
};

/// The global on/off guard — one relaxed load, the only cost a site pays
/// when injection is off (the default).
bool Enabled();

/// Arms injection with a deterministic seed. Idempotent; re-arming with a
/// new seed restarts every site's schedule (hit counters reset).
void Enable(uint64_t seed);

/// Disarms injection. Site hit/injected totals are retained for reading.
void Disable();

/// One named injection point. Stable address for the life of the process.
class Site {
 public:
  explicit Site(std::string name);
  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  const std::string& name() const { return name_; }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  /// The injection decision for one pass through the site. Called only
  /// when Enabled(); throws on alloc-failure / abort injections, sleeps on
  /// latency injections, otherwise returns.
  void MaybeInject();

  // Internal: Registry resets schedules on (re-)Enable.
  void ResetSchedule() {
    hits_.store(0, std::memory_order_relaxed);
    injected_.store(0, std::memory_order_relaxed);
  }

 private:
  const std::string name_;
  const uint64_t name_hash_;  // cached: mixed into every injection decision
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> injected_{0};
};

/// Name -> site. Registration takes a lock; returned pointers are valid
/// for the life of the process, so hot sites cache them.
class Registry {
 public:
  static Registry& Global();

  /// The site named `name`, registering it on first use.
  Site* GetSite(std::string_view name);

  /// Every registered site, for the catalogue smoke and soak reports.
  std::vector<const Site*> Sites() const;

  /// Total injections across all sites since the last Enable().
  uint64_t InjectedTotal() const;

  uint64_t seed() const;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
  friend void Enable(uint64_t);
  friend void Disable();
};

/// The instrumentation macro: one relaxed load when disabled; a cached
/// pointer plus the deterministic injection decision when armed. `name`
/// must be a string literal (it names the site in catalogues and seeds
/// the per-site schedule).
#define FLEXREL_FAULT_INJECT(name)                                  \
  do {                                                              \
    if (::flexrel::fault::Enabled()) {                              \
      static ::flexrel::fault::Site* flexrel_fault_site =           \
          ::flexrel::fault::Registry::Global().GetSite(name);       \
      flexrel_fault_site->MaybeInject();                            \
    }                                                               \
  } while (0)

}  // namespace fault
}  // namespace flexrel

#endif  // FLEXREL_UTIL_FAULT_H_
