#include "util/exec_context.h"

#include "telemetry/telemetry.h"

namespace flexrel {

Status ExecContext::Check() const {
  if (cancel_ != nullptr && cancel_->cancelled()) {
    if (!counted_.exchange(true, std::memory_order_relaxed)) {
      FLEXREL_TELEMETRY_COUNT("engine.exec.cancelled", 1);
    }
    return Status::Cancelled("execution cancelled by caller");
  }
  if (has_deadline_ && Clock::now() >= deadline_) {
    if (!counted_.exchange(true, std::memory_order_relaxed)) {
      FLEXREL_TELEMETRY_COUNT("engine.exec.deadline_exceeded", 1);
    }
    return Status::DeadlineExceeded("execution deadline exceeded");
  }
  return Status::OK();
}

}  // namespace flexrel
