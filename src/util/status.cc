#include "util/status.h"

#include <cassert>

namespace flexrel {

namespace {
const std::string& EmptyString() {
  static const std::string* empty = new std::string();
  return *empty;
}
}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kConstraintViolation:
      return "constraint-violation";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kNotImplemented:
      return "not-implemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message) {
  assert(code != StatusCode::kOk && "use Status() for success");
  rep_ = std::make_shared<const Rep>(Rep{code, std::move(message)});
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::ConstraintViolation(std::string msg) {
  return Status(StatusCode::kConstraintViolation, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::NotImplemented(std::string msg) {
  return Status(StatusCode::kNotImplemented, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::Cancelled(std::string msg) {
  return Status(StatusCode::kCancelled, std::move(msg));
}
Status Status::DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}

const std::string& Status::message() const {
  return rep_ == nullptr ? EmptyString() : rep_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace flexrel
