// Cooperative execution control for long-running engine jobs: a deadline,
// a cancellation token, and a per-job memory budget, carried as one
// `ExecContext` that discovery, validation, and evaluation thread through.
//
// The model is cooperative, in the style of Desbordante's interruptible
// algorithm harness and gRPC deadlines: the engine never kills a thread.
// Long-running loops call `Check()` at natural batch boundaries (a
// discovery level, a candidate, ~64 partition clusters, ~1k join probes)
// and unwind with Status kCancelled / kDeadlineExceeded when tripped.
// Because checks land on batch boundaries, every caller can state a
// partial-result contract: discovery returns the verified-so-far level
// prefix flagged partial, evaluation returns the error with no result.
//
// Cost model: a null ExecContext* costs one pointer test. A live check is
// one relaxed atomic load (cancellation) plus, only when a deadline is
// set, one steady_clock read — cheap enough for every few dozen clusters
// but still kept off per-tuple paths.

#ifndef FLEXREL_UTIL_EXEC_CONTEXT_H_
#define FLEXREL_UTIL_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace flexrel {

/// Sticky cancellation flag shared between a controller thread (which calls
/// RequestCancel) and any number of workers (which poll cancelled()). Once
/// set it never clears — a cancelled job stays cancelled through every
/// subsequent check, which is what makes mid-flight unwinding race-free.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation. Safe from any thread, idempotent.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms a deterministic trip: the token cancels itself permanently on the
  /// n-th subsequent cancelled() poll. Deterministic replacement for
  /// wall-clock racing in tests ("cancel mid-candidate-batch"); a negative
  /// n disarms. Not meant for production callers.
  void CancelAfterChecks(int64_t n) {
    trip_after_.store(n, std::memory_order_relaxed);
  }

  /// True once cancellation was requested (or an armed check-count trip
  /// fired). One relaxed load on the common not-cancelled path.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (trip_after_.load(std::memory_order_relaxed) >= 0 &&
        trip_after_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<int64_t> trip_after_{-1};
};

/// Per-job execution context: optional cancellation token, optional
/// deadline, optional memory budget. Plain value semantics for the
/// configuration; the token is referenced, not owned, so one controller
/// can cancel many jobs. A default-constructed ExecContext never trips.
class ExecContext {
 public:
  using Clock = std::chrono::steady_clock;

  ExecContext() = default;

  /// Attaches a cancellation token (not owned; must outlive the context).
  void set_cancellation_token(const CancellationToken* token) {
    cancel_ = token;
  }
  const CancellationToken* cancellation_token() const { return cancel_; }

  /// Sets an absolute deadline on the steady clock.
  void set_deadline(Clock::time_point deadline) {
    has_deadline_ = true;
    deadline_ = deadline;
  }

  /// Sets the deadline `timeout` from now.
  void set_timeout(Clock::duration timeout) {
    set_deadline(Clock::now() + timeout);
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  /// Advisory per-job memory budget in bytes; 0 means unlimited. Consumed
  /// by structures that account their footprint (PliCacheOptions inherits
  /// it as the cache budget when the job owns the cache).
  void set_memory_budget_bytes(size_t bytes) { memory_budget_bytes_ = bytes; }
  size_t memory_budget_bytes() const { return memory_budget_bytes_; }

  /// The poll: OK while the job may continue, else kCancelled /
  /// kDeadlineExceeded. Cancellation wins ties. The first trip bumps the
  /// engine.exec.{cancelled,deadline_exceeded} telemetry counter exactly
  /// once per context; the status itself is sticky by construction (the
  /// token never un-cancels and deadlines never move backwards past now).
  Status Check() const;

 private:
  const CancellationToken* cancel_ = nullptr;
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  size_t memory_budget_bytes_ = 0;
  // Whether this context already counted its trip in telemetry.
  mutable std::atomic<bool> counted_{false};
};

/// Null-tolerant poll — the form engine loops use, since `exec` is an
/// optional knob defaulting to nullptr on every options struct.
inline Status CheckExec(const ExecContext* exec) {
  return exec == nullptr ? Status::OK() : exec->Check();
}

}  // namespace flexrel

#endif  // FLEXREL_UTIL_EXEC_CONTEXT_H_
