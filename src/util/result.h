// Result<T>: value-or-Status, the return type of fallible factories.

#ifndef FLEXREL_UTIL_RESULT_H_
#define FLEXREL_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace flexrel {

/// Holds either a successfully produced `T` or the Status explaining why the
/// value could not be produced. A Result is never "empty": constructing one
/// from an OK status is a programming error.
///
/// Typical use:
///
///     Result<FlexibleScheme> r = FlexibleScheme::Make(...);
///     if (!r.ok()) return r.status();
///     const FlexibleScheme& fs = r.value();
///
/// or, inside another Result-returning function,
///
///     FLEXREL_ASSIGN_OR_RETURN(FlexibleScheme fs, FlexibleScheme::Make(...));
template <typename T>
class Result {
 public:
  /// Wraps a success value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Wraps an error. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result built from OK status without a value");
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the error otherwise.
  const Status& status() const { return status_; }

  /// The contained value. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  /// Moves the contained value out. Must only be called when ok().
  /// Returns by value (not T&&) so that `Make().value()` used directly in a
  /// range-for binds to a lifetime-extended temporary instead of dangling.
  T value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Value or fallback.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK when value_ present.
  std::optional<T> value_;
};

}  // namespace flexrel

// Internal: token pasting for unique temporaries.
#define FLEXREL_CONCAT_INNER_(x, y) x##y
#define FLEXREL_CONCAT_(x, y) FLEXREL_CONCAT_INNER_(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns its Status from the
/// enclosing function, otherwise move-assigns the value into `lhs`.
#define FLEXREL_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  auto FLEXREL_CONCAT_(_flexrel_result_, __LINE__) = (rexpr);             \
  if (!FLEXREL_CONCAT_(_flexrel_result_, __LINE__).ok())                  \
    return FLEXREL_CONCAT_(_flexrel_result_, __LINE__).status();          \
  lhs = std::move(FLEXREL_CONCAT_(_flexrel_result_, __LINE__)).value()

#endif  // FLEXREL_UTIL_RESULT_H_
