// The paper's worked examples as executable fixtures.
//
// Example 1: the abstract flexible scheme
//     FS = <4, 4, {A, B, <1, 1, {C, D}>, <1, 3, {E, F, G}>}>
// with |dnf(FS)| = 14.
//
// Example 2 (with Examples 3 and 4 building on it): the employee relation
// with attributes salary and jobtype where
//   jobtype = 'secretary'         -> typing-speed, foreign-languages
//   jobtype = 'software engineer' -> products, programming-languages
//   jobtype = 'salesman'          -> products, sales-commission
//
// Tests, benchmarks and the example programs all reproduce the paper's
// claims against these fixtures.

#ifndef FLEXREL_WORKLOAD_PAPER_EXAMPLES_H_
#define FLEXREL_WORKLOAD_PAPER_EXAMPLES_H_

#include <memory>

#include "core/flexible_relation.h"
#include "util/result.h"

namespace flexrel {

/// Example 1's scheme over a caller-provided catalog; attributes A..G are
/// interned on demand.
Result<FlexibleScheme> MakeExample1Scheme(AttrCatalog* catalog);

/// The jobtype world of Examples 2–4.
struct JobtypeExample {
  AttrCatalog catalog;

  AttrId salary = 0;
  AttrId jobtype = 0;
  AttrId typing_speed = 0;
  AttrId foreign_languages = 0;
  AttrId products = 0;
  AttrId programming_languages = 0;
  AttrId sales_commission = 0;

  /// Example 2's EAD, verbatim.
  ExplicitAD ead;

  /// dom(jobtype) = {'secretary', 'software engineer', 'salesman'}.
  std::vector<std::pair<AttrId, Domain>> domains;

  /// The flexible scheme: salary and jobtype unconditioned, plus a variant
  /// region for the determined attributes.
  FlexibleScheme scheme;

  /// An employee relation typed by the scheme + EAD, pre-loaded with one
  /// well-typed tuple per jobtype.
  FlexibleRelation relation;

  /// Builders for well-typed tuples of each variant.
  Tuple MakeSecretary(int64_t salary_value, int64_t speed) const;
  Tuple MakeEngineer(int64_t salary_value, int64_t n_products) const;
  Tuple MakeSalesman(int64_t salary_value, int64_t commission) const;

  /// Section 3.1's ill-typed adversary: a salesman with secretary
  /// attributes — admitted by the scheme, rejected by the EAD.
  Tuple MakeMistypedSalesman() const;
};

/// Heap-allocated (the catalog must not move under the type checker).
Result<std::unique_ptr<JobtypeExample>> MakeJobtypeExample();

}  // namespace flexrel

#endif  // FLEXREL_WORKLOAD_PAPER_EXAMPLES_H_
