#include "workload/paper_examples.h"

namespace flexrel {

Result<FlexibleScheme> MakeExample1Scheme(AttrCatalog* catalog) {
  return FlexibleScheme::Parse(
      catalog, "<4,4,{A,B,<1,1,{C,D}>,<1,3,{E,F,G}>}>");
}

Result<std::unique_ptr<JobtypeExample>> MakeJobtypeExample() {
  auto ex = std::make_unique<JobtypeExample>();
  ex->salary = ex->catalog.Intern("salary");
  ex->jobtype = ex->catalog.Intern("jobtype");
  ex->typing_speed = ex->catalog.Intern("typing-speed");
  ex->foreign_languages = ex->catalog.Intern("foreign-languages");
  ex->products = ex->catalog.Intern("products");
  ex->programming_languages = ex->catalog.Intern("programming-languages");
  ex->sales_commission = ex->catalog.Intern("sales-commission");

  const AttrSet y{ex->typing_speed, ex->foreign_languages, ex->products,
                  ex->programming_languages, ex->sales_commission};

  std::vector<EadVariant> variants;
  variants.push_back(
      {ConditionSet::Single(ex->jobtype, Value::Str("secretary")),
       AttrSet{ex->typing_speed, ex->foreign_languages}});
  variants.push_back(
      {ConditionSet::Single(ex->jobtype, Value::Str("software engineer")),
       AttrSet{ex->products, ex->programming_languages}});
  variants.push_back(
      {ConditionSet::Single(ex->jobtype, Value::Str("salesman")),
       AttrSet{ex->products, ex->sales_commission}});
  FLEXREL_ASSIGN_OR_RETURN(
      ex->ead,
      ExplicitAD::Make(AttrSet::Of(ex->jobtype), y, std::move(variants)));

  FLEXREL_ASSIGN_OR_RETURN(
      Domain jobtype_domain,
      Domain::Enumerated({Value::Str("secretary"),
                          Value::Str("software engineer"),
                          Value::Str("salesman")}));
  ex->domains = {
      {ex->salary, Domain::Any(ValueType::kInt)},
      {ex->jobtype, jobtype_domain},
      {ex->typing_speed, Domain::Any(ValueType::kInt)},
      {ex->foreign_languages, Domain::Any(ValueType::kString)},
      {ex->products, Domain::Any(ValueType::kInt)},
      {ex->programming_languages, Domain::Any(ValueType::kString)},
      {ex->sales_commission, Domain::Any(ValueType::kInt)},
  };

  // Scheme: salary, jobtype unconditioned; any subset of the three variant
  // blocks structurally (the EAD narrows it to the matching one).
  std::vector<FlexibleScheme> blocks;
  {
    std::vector<FlexibleScheme> b1;
    b1.push_back(FlexibleScheme::Attr(ex->typing_speed));
    b1.push_back(FlexibleScheme::Attr(ex->foreign_languages));
    FLEXREL_ASSIGN_OR_RETURN(FlexibleScheme g1,
                             FlexibleScheme::Group(2, 2, std::move(b1)));
    blocks.push_back(std::move(g1));
    // products is shared between the engineer and salesman variants, so the
    // structural region lists each attribute independently; the EAD enforces
    // the exact pairing.
    blocks.push_back(FlexibleScheme::Attr(ex->products));
    blocks.push_back(FlexibleScheme::Attr(ex->programming_languages));
    blocks.push_back(FlexibleScheme::Attr(ex->sales_commission));
  }
  const uint32_t num_blocks = static_cast<uint32_t>(blocks.size());
  FLEXREL_ASSIGN_OR_RETURN(
      FlexibleScheme region,
      FlexibleScheme::Group(0, num_blocks, std::move(blocks)));
  std::vector<FlexibleScheme> top;
  top.push_back(FlexibleScheme::Attr(ex->salary));
  top.push_back(FlexibleScheme::Attr(ex->jobtype));
  top.push_back(std::move(region));
  FLEXREL_ASSIGN_OR_RETURN(FlexibleScheme scheme,
                           FlexibleScheme::Group(3, 3, std::move(top)));
  ex->scheme = scheme;

  ex->relation = FlexibleRelation::Base("employee", &ex->catalog, ex->scheme,
                                        {ex->ead}, ex->domains);
  FLEXREL_RETURN_IF_ERROR(ex->relation.Insert(ex->MakeSecretary(4800, 320)));
  FLEXREL_RETURN_IF_ERROR(ex->relation.Insert(ex->MakeEngineer(6200, 3)));
  FLEXREL_RETURN_IF_ERROR(ex->relation.Insert(ex->MakeSalesman(5400, 12)));
  return ex;
}

Tuple JobtypeExample::MakeSecretary(int64_t salary_value,
                                    int64_t speed) const {
  Tuple t;
  t.Set(salary, Value::Int(salary_value));
  t.Set(jobtype, Value::Str("secretary"));
  t.Set(typing_speed, Value::Int(speed));
  t.Set(foreign_languages, Value::Str("french, russian"));
  return t;
}

Tuple JobtypeExample::MakeEngineer(int64_t salary_value,
                                   int64_t n_products) const {
  Tuple t;
  t.Set(salary, Value::Int(salary_value));
  t.Set(jobtype, Value::Str("software engineer"));
  t.Set(products, Value::Int(n_products));
  t.Set(programming_languages, Value::Str("modula-2, pascal"));
  return t;
}

Tuple JobtypeExample::MakeSalesman(int64_t salary_value,
                                   int64_t commission) const {
  Tuple t;
  t.Set(salary, Value::Int(salary_value));
  t.Set(jobtype, Value::Str("salesman"));
  t.Set(products, Value::Int(7));
  t.Set(sales_commission, Value::Int(commission));
  return t;
}

Tuple JobtypeExample::MakeMistypedSalesman() const {
  Tuple t;
  t.Set(salary, Value::Int(5000));
  t.Set(jobtype, Value::Str("salesman"));
  t.Set(typing_speed, Value::Int(280));
  t.Set(foreign_languages, Value::Str("french, russian"));
  return t;
}

}  // namespace flexrel
