#include "workload/generator.h"

#include <algorithm>

#include "engine/parallel_discovery.h"
#include "util/string_util.h"

namespace flexrel {

Result<std::unique_ptr<EmployeeWorkload>> MakeEmployeeWorkload(
    const EmployeeConfig& config) {
  if (config.num_variants == 0) {
    return Status::InvalidArgument("employee workload needs >= 1 variant");
  }
  auto w = std::make_unique<EmployeeWorkload>();
  Rng rng(config.seed);

  // Attributes: id, jobtype, common extras, then per-variant attributes.
  w->id_attr = w->catalog.Intern("id");
  w->jobtype_attr = w->catalog.Intern("jobtype");
  w->common_attrs.Insert(w->id_attr);
  w->common_attrs.Insert(w->jobtype_attr);
  std::vector<AttrId> extras;
  for (size_t i = 0; i < config.num_common_attrs; ++i) {
    AttrId a = w->catalog.Intern(StrCat("common", i));
    extras.push_back(a);
    w->common_attrs.Insert(a);
  }

  std::vector<Value> jobtypes;
  for (size_t v = 0; v < config.num_variants; ++v) {
    jobtypes.push_back(Value::Str(StrCat("jobtype", v)));
  }
  w->jobtype_values = jobtypes;

  // Domains.
  w->domains.push_back({w->id_attr, Domain::Any(ValueType::kInt)});
  FLEXREL_ASSIGN_OR_RETURN(Domain jobtype_domain,
                           Domain::Enumerated(jobtypes));
  w->domains.push_back({w->jobtype_attr, jobtype_domain});
  for (AttrId a : extras) {
    w->domains.push_back({a, Domain::Any(ValueType::kInt)});
  }

  // Variant attribute blocks and the EAD.
  AttrSet determined;
  std::vector<EadVariant> variants;
  std::vector<FlexibleScheme> blocks;
  std::vector<std::vector<AttrId>> variant_attr_ids;
  for (size_t v = 0; v < config.num_variants; ++v) {
    AttrSet block;
    std::vector<FlexibleScheme> leaves;
    std::vector<AttrId> ids;
    for (size_t k = 0; k < config.attrs_per_variant; ++k) {
      AttrId a = w->catalog.Intern(StrCat("v", v, "_attr", k));
      block.Insert(a);
      determined.Insert(a);
      ids.push_back(a);
      leaves.push_back(FlexibleScheme::Attr(a));
      w->domains.push_back({a, Domain::Any(ValueType::kInt)});
    }
    variant_attr_ids.push_back(ids);
    variants.push_back(
        EadVariant{ConditionSet::Single(w->jobtype_attr, jobtypes[v]), block});
    if (!leaves.empty()) {
      uint32_t n = static_cast<uint32_t>(leaves.size());
      FLEXREL_ASSIGN_OR_RETURN(FlexibleScheme b,
                               FlexibleScheme::Group(n, n, std::move(leaves)));
      blocks.push_back(std::move(b));
    }
  }
  FLEXREL_ASSIGN_OR_RETURN(
      ExplicitAD ead,
      ExplicitAD::Make(AttrSet::Of(w->jobtype_attr), determined,
                       std::move(variants)));
  w->eads.push_back(ead);

  // Scheme: all common attributes plus (any) one variant block; structurally
  // <0, n> over blocks, with the EAD pinning the actual one.
  std::vector<FlexibleScheme> components;
  for (AttrId a : w->common_attrs) components.push_back(FlexibleScheme::Attr(a));
  if (!blocks.empty()) {
    uint32_t n = static_cast<uint32_t>(blocks.size());
    FLEXREL_ASSIGN_OR_RETURN(FlexibleScheme region,
                             FlexibleScheme::Group(0, n, std::move(blocks)));
    components.push_back(std::move(region));
  }
  uint32_t total = static_cast<uint32_t>(components.size());
  FLEXREL_ASSIGN_OR_RETURN(
      FlexibleScheme scheme,
      FlexibleScheme::Group(total, total, std::move(components)));
  w->scheme = scheme;

  w->relation = FlexibleRelation::Base("employees", &w->catalog, w->scheme,
                                       w->eads, w->domains);

  // Valid rows.
  for (size_t i = 0; i < config.rows; ++i) {
    size_t v = rng.Index(config.num_variants);
    Tuple t;
    t.Set(w->id_attr, Value::Int(static_cast<int64_t>(i)));
    t.Set(w->jobtype_attr, jobtypes[v]);
    for (AttrId a : extras) t.Set(a, Value::Int(rng.UniformInt(0, 1 << 16)));
    for (AttrId a : variant_attr_ids[v]) {
      t.Set(a, Value::Int(rng.UniformInt(0, 1 << 16)));
    }
    FLEXREL_RETURN_IF_ERROR(w->relation.Insert(t));
  }

  // Invalid rows: right shape, wrong variant pairing (only detectable via
  // the EAD). Requires >= 2 variants with attributes.
  size_t num_invalid = static_cast<size_t>(
      static_cast<double>(config.rows) * config.invalid_fraction);
  if (num_invalid > 0 && config.num_variants >= 2 &&
      config.attrs_per_variant > 0) {
    for (size_t i = 0; i < num_invalid; ++i) {
      size_t claimed = rng.Index(config.num_variants);
      size_t actual = (claimed + 1 + rng.Index(config.num_variants - 1)) %
                      config.num_variants;
      Tuple t;
      t.Set(w->id_attr, Value::Int(static_cast<int64_t>(1u << 24) +
                                   static_cast<int64_t>(i)));
      t.Set(w->jobtype_attr, jobtypes[claimed]);
      for (AttrId a : extras) t.Set(a, Value::Int(rng.UniformInt(0, 1 << 16)));
      for (AttrId a : variant_attr_ids[actual]) {
        t.Set(a, Value::Int(rng.UniformInt(0, 1 << 16)));
      }
      w->invalid_tuples.push_back(std::move(t));
    }
  }
  return w;
}

Result<std::unique_ptr<AddressWorkload>> MakeAddressWorkload(size_t rows,
                                                             uint64_t seed) {
  auto w = std::make_unique<AddressWorkload>();
  Rng rng(seed);
  w->zip = w->catalog.Intern("ZipCode");
  w->town = w->catalog.Intern("Town");
  w->pobox = w->catalog.Intern("PostOfficeBoxNumber");
  w->street = w->catalog.Intern("Street");
  w->houseno = w->catalog.Intern("HouseNumber");
  w->tel = w->catalog.Intern("tel-number");
  w->fax = w->catalog.Intern("FAX-number");
  w->email = w->catalog.Intern("email-address");

  // Street with optional house number: <2, 2, {Street, <0, 1, {HouseNumber}>}>.
  FLEXREL_ASSIGN_OR_RETURN(FlexibleScheme houseno_opt,
                           FlexibleScheme::Optional(FlexibleScheme::Attr(w->houseno)));
  std::vector<FlexibleScheme> street_parts;
  street_parts.push_back(FlexibleScheme::Attr(w->street));
  street_parts.push_back(std::move(houseno_opt));
  FLEXREL_ASSIGN_OR_RETURN(FlexibleScheme street_block,
                           FlexibleScheme::Group(2, 2, std::move(street_parts)));
  // Town-local part: POBox xor street block.
  std::vector<FlexibleScheme> local_parts;
  local_parts.push_back(FlexibleScheme::Attr(w->pobox));
  local_parts.push_back(std::move(street_block));
  FLEXREL_ASSIGN_OR_RETURN(FlexibleScheme local,
                           FlexibleScheme::DisjointUnion(std::move(local_parts)));
  // Electronic communication: 1..3 of {tel, fax, email}.
  std::vector<FlexibleScheme> electronic_parts;
  electronic_parts.push_back(FlexibleScheme::Attr(w->tel));
  electronic_parts.push_back(FlexibleScheme::Attr(w->fax));
  electronic_parts.push_back(FlexibleScheme::Attr(w->email));
  FLEXREL_ASSIGN_OR_RETURN(
      FlexibleScheme electronic,
      FlexibleScheme::NonDisjointUnion(std::move(electronic_parts)));

  std::vector<FlexibleScheme> top;
  top.push_back(FlexibleScheme::Attr(w->zip));
  top.push_back(FlexibleScheme::Attr(w->town));
  top.push_back(std::move(local));
  top.push_back(std::move(electronic));
  FLEXREL_ASSIGN_OR_RETURN(FlexibleScheme scheme,
                           FlexibleScheme::Group(4, 4, std::move(top)));
  w->scheme = scheme;

  w->relation = FlexibleRelation::Base("addresses", &w->catalog, w->scheme,
                                       {}, {});
  for (size_t i = 0; i < rows; ++i) {
    Tuple t;
    t.Set(w->zip, Value::Int(rng.UniformInt(10000, 99999)));
    t.Set(w->town, Value::Str(StrCat("town", rng.UniformInt(0, 999))));
    if (rng.Bernoulli(0.3)) {
      t.Set(w->pobox, Value::Int(rng.UniformInt(1, 9999)));
    } else {
      t.Set(w->street, Value::Str(StrCat("street", rng.UniformInt(0, 999))));
      if (rng.Bernoulli(0.8)) {
        t.Set(w->houseno, Value::Int(rng.UniformInt(1, 300)));
      }
    }
    // 1..3 electronic attributes.
    bool any = false;
    while (!any) {
      if (rng.Bernoulli(0.6)) {
        t.Set(w->tel, Value::Int(rng.UniformInt(1000000, 9999999)));
        any = true;
      }
      if (rng.Bernoulli(0.4)) {
        t.Set(w->fax, Value::Int(rng.UniformInt(1000000, 9999999)));
        any = true;
      }
      if (rng.Bernoulli(0.5)) {
        t.Set(w->email, Value::Str(StrCat("user", i, "@example.org")));
        any = true;
      }
    }
    Status s = w->relation.Insert(t);
    // Duplicate draws are possible at tiny row counts; skip them.
    if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
  }
  return w;
}

FlexibleScheme RandomScheme(AttrCatalog* catalog, Rng* rng, size_t depth,
                            size_t fanout, const std::string& prefix) {
  if (depth == 0 || (depth > 0 && rng->Bernoulli(0.25))) {
    return FlexibleScheme::Attr(
        catalog->Intern(StrCat(prefix, "_a", rng->UniformInt(0, 1 << 30))));
  }
  size_t k = 1 + rng->Index(std::max<size_t>(fanout, 1));
  std::vector<FlexibleScheme> components;
  for (size_t i = 0; i < k; ++i) {
    components.push_back(RandomScheme(catalog, rng, depth - 1, fanout,
                                      StrCat(prefix, "_", i)));
  }
  uint32_t hi = 1 + static_cast<uint32_t>(rng->Index(k));
  uint32_t lo = static_cast<uint32_t>(rng->Index(hi + 1));
  auto group = FlexibleScheme::Group(lo, hi, std::move(components));
  // Construction can only fail on duplicate attributes, which the unique
  // prefixes rule out.
  return std::move(group).value();
}

DependencySet RandomDependencies(const AttrSet& universe, Rng* rng,
                                 size_t num_fds, size_t num_ads) {
  DependencySet sigma;
  std::vector<AttrId> pool(universe.ids());
  if (pool.empty()) return sigma;
  auto random_subset = [&](size_t max_size) {
    size_t k = 1 + rng->Index(std::min(max_size, pool.size()));
    std::vector<size_t> idx = rng->Sample(pool.size(), k);
    std::vector<AttrId> ids;
    for (size_t i : idx) ids.push_back(pool[i]);
    return AttrSet::FromIds(std::move(ids));
  };
  for (size_t i = 0; i < num_fds; ++i) {
    sigma.AddFd(FuncDep{random_subset(3), random_subset(3)});
  }
  for (size_t i = 0; i < num_ads; ++i) {
    sigma.AddAd(AttrDep{random_subset(3), random_subset(3)});
  }
  return sigma;
}

Tuple RandomEmployee(const EmployeeWorkload& workload, Rng* rng,
                     int force_variant) {
  size_t v = force_variant >= 0
                 ? static_cast<size_t>(force_variant)
                 : rng->Index(workload.jobtype_values.size());
  Tuple t;
  t.Set(workload.id_attr, Value::Int(rng->UniformInt(0, 1ll << 40)));
  t.Set(workload.jobtype_attr, workload.jobtype_values[v]);
  for (AttrId a : workload.common_attrs) {
    if (a == workload.id_attr || a == workload.jobtype_attr) continue;
    t.Set(a, Value::Int(rng->UniformInt(0, 1 << 16)));
  }
  const ExplicitAD& ead = workload.eads.front();
  for (AttrId a : ead.variants()[v].then) {
    t.Set(a, Value::Int(rng->UniformInt(0, 1 << 16)));
  }
  return t;
}

Status InstallDiscoveredDeps(FlexibleRelation* relation,
                             const DiscoveryOptions& options) {
  const std::vector<Tuple>& rows = relation->rows();
  AttrSet universe = relation->ActiveAttrs();
  // One partition cache serves discovery and the pre-install audit: the
  // audit's lookups all hit partitions discovery just built. (A dependency
  // set the instance does not satisfy must never become declared Σ — the
  // audit is cheap insurance against divergence between the paths.)
  PliCache cache(&rows);
  DependencyValidator validator(&cache);
  DependencySet discovered =
      options.use_engine
          ? EngineDiscoverDependencies(&validator, universe,
                                       ToEngineOptions(options))
          : DiscoverDependencies(rows, universe, options);
  if (!validator.ValidatesAll(discovered)) {
    return Status::FailedPrecondition(
        "discovered dependency set fails engine validation against the "
        "instance");
  }
  *relation->mutable_deps() = std::move(discovered);
  return Status::OK();
}

}  // namespace flexrel
