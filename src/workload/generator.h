// Synthetic workload generators.
//
// The paper motivates flexible relations with two running examples — the
// employee registry whose jobtype determines variant attributes (Section 1,
// Example 2) and the postal/electronic address (Section 1, Example 1's
// abstract shape). Both are generated here in parameterised form so the
// benchmarks can sweep scale (#variants, #attributes, #rows) far beyond the
// paper's illustrations, plus fully random schemes/dependency sets for the
// property tests.

#ifndef FLEXREL_WORKLOAD_GENERATOR_H_
#define FLEXREL_WORKLOAD_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "core/flexible_relation.h"
#include "util/rng.h"

namespace flexrel {

/// Parameters of the employee workload.
struct EmployeeConfig {
  size_t num_variants = 3;       ///< jobtypes ('secretary', 'salesman', ...)
  size_t attrs_per_variant = 2;  ///< variant-specific attributes each
  size_t num_common_attrs = 2;   ///< beyond id and jobtype (e.g. salary)
  size_t rows = 1000;
  /// Fraction of additionally generated *invalid* tuples: shape-admissible
  /// but violating the jobtype EAD (the Section-3.1 adversary).
  double invalid_fraction = 0.0;
  uint64_t seed = 42;
};

/// A generated employee database. Heap-allocated because the contained
/// catalog must stay put (the type checker holds a pointer to it).
struct EmployeeWorkload {
  AttrCatalog catalog;
  FlexibleScheme scheme;
  std::vector<ExplicitAD> eads;  ///< exactly one: the jobtype EAD
  std::vector<std::pair<AttrId, Domain>> domains;
  FlexibleRelation relation;     ///< valid tuples, type-checked on insert

  AttrId id_attr = 0;
  AttrId jobtype_attr = 0;
  AttrSet common_attrs;          ///< id, jobtype, extras
  std::vector<Value> jobtype_values;  ///< one per variant

  /// EAD-violating tuples whose attribute combination the scheme admits
  /// (they exercise exactly the check only ADs can perform).
  std::vector<Tuple> invalid_tuples;
};

/// Builds the employee workload; never fails for sane configs, returns the
/// construction error otherwise.
Result<std::unique_ptr<EmployeeWorkload>> MakeEmployeeWorkload(
    const EmployeeConfig& config);

/// A generated address book exercising the Section-1 shapes: mandatory
/// ZipCode/Town, a disjoint POBox-vs-Street(+optional HouseNumber) part, and
/// a non-disjoint electronic part (1..3 of tel/fax/email).
struct AddressWorkload {
  AttrCatalog catalog;
  FlexibleScheme scheme;
  FlexibleRelation relation;
  AttrId zip, town, pobox, street, houseno, tel, fax, email;
};

Result<std::unique_ptr<AddressWorkload>> MakeAddressWorkload(size_t rows,
                                                             uint64_t seed);

/// Random flexible scheme over fresh attributes interned into `catalog`:
/// a tree of depth <= `depth` with <= `fanout` components per group and
/// random cardinality bounds. Useful for DNF property sweeps.
FlexibleScheme RandomScheme(AttrCatalog* catalog, Rng* rng, size_t depth,
                            size_t fanout, const std::string& prefix);

/// Random dependency set over `universe`: `num_fds` FDs and `num_ads` ADs
/// with small random sides.
DependencySet RandomDependencies(const AttrSet& universe, Rng* rng,
                                 size_t num_fds, size_t num_ads);

/// Random instance of `workload.scheme` + jobtype EAD: draws a variant, fills
/// values from the domains. `force_variant` < 0 draws uniformly.
Tuple RandomEmployee(const EmployeeWorkload& workload, Rng* rng,
                     int force_variant = -1);

/// Mines the dependency set the instance satisfies (through the partition
/// engine by default; `options` selects path and bounds), audits it against
/// the instance with the engine's validator, and installs it as the
/// relation's declared Σ, replacing what was there. This is how generated
/// and migrated relations come to carry engine-validated dependency sets
/// that the optimizer and propagation layers can trust.
Status InstallDiscoveredDeps(FlexibleRelation* relation,
                             const DiscoveryOptions& options = {});

}  // namespace flexrel

#endif  // FLEXREL_WORKLOAD_GENERATOR_H_
