#include "decomposition/decomposition.h"

#include <algorithm>
#include <unordered_map>

#include "util/string_util.h"

namespace flexrel {

namespace {

// The attributes common to every tuple shape: everything outside the EAD's
// determined set.
AttrSet CommonAttrs(const FlexibleRelation& source, const ExplicitAD& ead) {
  return source.ActiveAttrs().Minus(ead.determined());
}

Tuple PadTuple(const Tuple& t, const AttrSet& full_scheme) {
  Tuple out = t;
  for (AttrId a : full_scheme) {
    if (!out.Has(a)) out.Set(a, Value::Null());
  }
  return out;
}

}  // namespace

Result<Relation> TranslateNullPaddedTagged(const FlexibleRelation& source,
                                           const ExplicitAD& ead,
                                           AttrId tag_attr) {
  AttrSet scheme = source.ActiveAttrs().Union(ead.determined());
  if (scheme.Contains(tag_attr)) {
    return Status::InvalidArgument("tag attribute collides with data attrs");
  }
  scheme.Insert(tag_attr);
  Relation out("nullpad_tagged", scheme);
  for (const Tuple& t : source.rows()) {
    Tuple padded = PadTuple(t, scheme);
    padded.Set(tag_attr, Value::Int(ead.MatchVariant(t)));
    FLEXREL_RETURN_IF_ERROR(out.Insert(std::move(padded)));
  }
  return out;
}

Result<Relation> TranslateNullPadded(const FlexibleRelation& source,
                                     const ExplicitAD& ead) {
  AttrSet scheme = source.ActiveAttrs().Union(ead.determined());
  Relation out("nullpad", scheme);
  for (const Tuple& t : source.rows()) {
    FLEXREL_RETURN_IF_ERROR(out.Insert(PadTuple(t, scheme)));
  }
  return out;
}

Result<HorizontalDecomposition> TranslateHorizontal(
    const FlexibleRelation& source, const ExplicitAD& ead) {
  HorizontalDecomposition parts;
  AttrSet common = CommonAttrs(source, ead);
  for (size_t i = 0; i < ead.variants().size(); ++i) {
    parts.variant_relations.emplace_back(
        StrCat("variant", i), common.Union(ead.variants()[i].then));
  }
  parts.remainder = Relation("remainder", common);
  for (const Tuple& t : source.rows()) {
    int v = ead.MatchVariant(t);
    if (v < 0) {
      FLEXREL_RETURN_IF_ERROR(parts.remainder.Insert(t.Project(common)));
    } else {
      Relation& target = parts.variant_relations[static_cast<size_t>(v)];
      FLEXREL_RETURN_IF_ERROR(target.Insert(t.Project(target.scheme())));
    }
  }
  return parts;
}

Result<VerticalDecomposition> TranslateVertical(const FlexibleRelation& source,
                                                const ExplicitAD& ead,
                                                const AttrSet& key) {
  VerticalDecomposition parts;
  parts.key = key;
  AttrSet common = CommonAttrs(source, ead);
  if (!key.IsSubsetOf(common)) {
    return Status::InvalidArgument(
        "entity key must consist of unconditioned attributes");
  }
  parts.master = Relation("master", common);
  for (size_t i = 0; i < ead.variants().size(); ++i) {
    parts.variant_relations.emplace_back(
        StrCat("variant", i), key.Union(ead.variants()[i].then));
  }
  // Key uniqueness check.
  std::unordered_map<Tuple, size_t, TupleHash> seen;
  for (const Tuple& t : source.rows()) {
    if (!t.DefinedOn(key)) {
      return Status::ConstraintViolation("tuple lacks the entity key");
    }
    Tuple k = t.Project(key);
    auto [it, inserted] = seen.emplace(std::move(k), 1);
    if (!inserted) {
      return Status::ConstraintViolation(
          "duplicate entity key; vertical decomposition requires a key");
    }
    FLEXREL_RETURN_IF_ERROR(parts.master.Insert(t.Project(common)));
    int v = ead.MatchVariant(t);
    if (v >= 0) {
      Relation& target = parts.variant_relations[static_cast<size_t>(v)];
      FLEXREL_RETURN_IF_ERROR(target.Insert(t.Project(target.scheme())));
    }
  }
  return parts;
}

FlexibleRelation RestoreFromNullPadded(const Relation& padded,
                                       int64_t tag_attr) {
  FlexibleRelation out =
      FlexibleRelation::Derived("restored_nullpad", DependencySet());
  for (const Tuple& row : padded.rows()) {
    Tuple t;
    for (const auto& [attr, value] : row.fields()) {
      if (value.is_null()) continue;
      if (tag_attr >= 0 && attr == static_cast<AttrId>(tag_attr)) continue;
      t.Set(attr, value);
    }
    out.InsertUnchecked(std::move(t));
  }
  return out;
}

FlexibleRelation RestoreHorizontal(const HorizontalDecomposition& parts) {
  FlexibleRelation out =
      FlexibleRelation::Derived("restored_horizontal", DependencySet());
  for (const Relation& r : parts.variant_relations) {
    for (const Tuple& t : r.rows()) out.InsertUnchecked(t);
  }
  for (const Tuple& t : parts.remainder.rows()) out.InsertUnchecked(t);
  return out;
}

FlexibleRelation RestoreVertical(const VerticalDecomposition& parts) {
  FlexibleRelation out =
      FlexibleRelation::Derived("restored_vertical", DependencySet());
  // Index every variant relation by key.
  std::vector<std::unordered_map<Tuple, const Tuple*, TupleHash>> indexes;
  indexes.reserve(parts.variant_relations.size());
  for (const Relation& r : parts.variant_relations) {
    std::unordered_map<Tuple, const Tuple*, TupleHash> idx;
    for (const Tuple& t : r.rows()) idx.emplace(t.Project(parts.key), &t);
    indexes.push_back(std::move(idx));
  }
  for (const Tuple& m : parts.master.rows()) {
    Tuple merged = m;
    Tuple k = m.Project(parts.key);
    for (const auto& idx : indexes) {
      auto it = idx.find(k);
      if (it == idx.end()) continue;
      for (const auto& [attr, value] : it->second->fields()) {
        merged.Set(attr, value);
      }
    }
    out.InsertUnchecked(std::move(merged));
  }
  return out;
}

StorageStats StatsOf(const Relation& r) {
  StorageStats s;
  s.relations = 1;
  s.tuples = r.size();
  for (const Tuple& t : r.rows()) {
    s.stored_fields += t.size();
    for (const auto& [attr, value] : t.fields()) {
      (void)attr;
      if (value.is_null()) ++s.null_fields;
    }
  }
  return s;
}

StorageStats StatsOf(const std::vector<Relation>& rs) {
  StorageStats s;
  for (const Relation& r : rs) {
    StorageStats one = StatsOf(r);
    s.relations += one.relations;
    s.stored_fields += one.stored_fields;
    s.null_fields += one.null_fields;
    s.tuples += one.tuples;
  }
  return s;
}

StorageStats StatsOf(const FlexibleRelation& fr) {
  StorageStats s;
  s.relations = 1;
  s.tuples = fr.size();
  for (const Tuple& t : fr.rows()) s.stored_fields += t.size();
  return s;
}

}  // namespace flexrel
