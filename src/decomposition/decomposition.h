// The four classical translations of a predicate-defined specialization into
// relations (Section 3.1.1, following Elmasri/Navathe), plus restoration.
//
// Methods 1 and 2 flatten everything into a single null-padded relation —
// method 1 adds an artificial tag attribute indicating the current variant,
// method 2 leaves the variant implicit. Both exhibit the drawbacks the paper
// attributes to them: plenty of null values, and an artificial attribute the
// user must set and interpret. Methods 3 and 4 decompose horizontally
// (one relation per variant, restored by an *outer union*) and vertically
// (a master relation plus per-variant relations keyed by the entity key,
// restored by a *multiway join*).
//
// The flexible relation with its EAD needs none of this — which experiment
// E6 quantifies (null counts, restoration cost, round-trip fidelity).

#ifndef FLEXREL_DECOMPOSITION_DECOMPOSITION_H_
#define FLEXREL_DECOMPOSITION_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "core/explicit_ad.h"
#include "core/flexible_relation.h"
#include "relational/relation.h"

namespace flexrel {

/// Method 1: single relation over all attributes plus `tag_attr`; attributes
/// not applicable to a tuple's variant are null. The tag holds the matched
/// variant index (or -1 when no variant matches).
Result<Relation> TranslateNullPaddedTagged(const FlexibleRelation& source,
                                           const ExplicitAD& ead,
                                           AttrId tag_attr);

/// Method 2: as method 1, without the tag attribute.
Result<Relation> TranslateNullPadded(const FlexibleRelation& source,
                                     const ExplicitAD& ead);

/// Method 3 output: one homogeneous relation per variant plus the remainder
/// relation of tuples matching no variant.
struct HorizontalDecomposition {
  std::vector<Relation> variant_relations;
  Relation remainder;
};

/// Method 3: horizontal decomposition along the EAD's variants.
Result<HorizontalDecomposition> TranslateHorizontal(
    const FlexibleRelation& source, const ExplicitAD& ead);

/// Method 4 output: master relation (common attributes) and per-variant
/// relations (key + variant attributes).
struct VerticalDecomposition {
  Relation master;
  std::vector<Relation> variant_relations;
  AttrSet key;
};

/// Method 4: vertical decomposition. `key` must functionally identify the
/// entity (each source tuple must be defined on it, with distinct values).
Result<VerticalDecomposition> TranslateVertical(const FlexibleRelation& source,
                                                const ExplicitAD& ead,
                                                const AttrSet& key);

/// Inverse of methods 1/2: strips nulls (and `tag_attr` when >= 0) and
/// returns the heterogeneous tuple set.
FlexibleRelation RestoreFromNullPadded(const Relation& padded,
                                       int64_t tag_attr = -1);

/// Inverse of method 3: the outer union of the variant relations and the
/// remainder (in the flexible model this is a plain heterogeneous union).
FlexibleRelation RestoreHorizontal(const HorizontalDecomposition& parts);

/// Inverse of method 4: the multiway join of the master with its variant
/// relations over the key (master rows without variant rows survive
/// unchanged — an *outer* multiway join).
FlexibleRelation RestoreVertical(const VerticalDecomposition& parts);

/// Storage statistics for experiment E6.
struct StorageStats {
  size_t relations = 0;     ///< number of stored relations
  size_t stored_fields = 0; ///< total (attr, value) pairs incl. nulls
  size_t null_fields = 0;   ///< stored fields that are null
  size_t tuples = 0;        ///< total stored tuples
};
StorageStats StatsOf(const Relation& r);
StorageStats StatsOf(const std::vector<Relation>& rs);
StorageStats StatsOf(const FlexibleRelation& fr);

}  // namespace flexrel

#endif  // FLEXREL_DECOMPOSITION_DECOMPOSITION_H_
