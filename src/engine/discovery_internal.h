// Shared plumbing of the two lattice traversals (parallel_discovery.cc's
// level-wise walk and hybrid_discovery.cc's sample-then-validate loop):
// the worker pool, the thread-count policy, the option translation into
// cache knobs, and the per-run telemetry reset. Internal to src/engine/ —
// consumers use parallel_discovery.h, which dispatches on
// EngineDiscoveryOptions::strategy.

#ifndef FLEXREL_ENGINE_DISCOVERY_INTERNAL_H_
#define FLEXREL_ENGINE_DISCOVERY_INTERNAL_H_

#include <cstddef>
#include <functional>

#include "engine/parallel_discovery.h"
#include "engine/pli_cache.h"

namespace flexrel {
namespace discovery_internal {

// Translates the discovery knobs into partition-cache options (LRU bound +
// cluster-storage pin) for the rows-based entry points.
PliCache::Options CacheOptionsOf(const EngineDiscoveryOptions& options);

// Worker count for `work_items` independent tasks: the requested count, or
// hardware concurrency when 0, never more workers than items.
size_t ResolveThreads(size_t requested, size_t work_items);

// Runs fn(0..n-1) across `num_threads` workers pulling from a shared
// counter; the calling thread participates. The first exception a worker
// hits is captured and rethrown on the calling thread after the join.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn);

// Below this many row-candidate pairs per level, thread spawn/join costs
// more than the partition work it would parallelise; auto mode stays
// sequential (an explicit num_threads is honoured regardless).
constexpr size_t kMinWorkForAutoThreads = size_t{1} << 15;

// Zeroes the per-run discovery gauges (worker utilization, sampling hit
// rate). Gauges are last-write-wins and survive across runs in one
// process, so a run that never reaches the write site — fewer levels, a
// disabled stage — would otherwise dump the previous run's value as its
// own. Every discovery entry point calls this first.
void ResetDiscoveryRunGauges();

}  // namespace discovery_internal
}  // namespace flexrel

#endif  // FLEXREL_ENGINE_DISCOVERY_INTERNAL_H_
