// An LRU-bounded cache of stripped partitions keyed by attribute set.
//
// Level-wise discovery asks for the partition of every candidate
// determinant; naively each request re-hashes the instance. The cache
// instead builds the partition of X = {a1 < ... < ak} as
//     Get({a1..a(k-1)}) ∩ Get({ak}),
// recursing down to single-attribute partitions, which are built from the
// rows once and pinned. Because candidates of one lattice level share
// (k-1)-prefixes, almost every multi-attribute request reduces to a single
// integer-valued Intersect over already cached operands.
//
// Mutations: the cache is no longer bound to an immutable instance. When
// the underlying row vector changes, the owner calls OnInsert/OnUpdate and
// every cached partition and value index is *patched* in place — only the
// clusters the mutated row leaves or joins are touched, so a mutation costs
// O(cluster) integer work per cached structure instead of the O(rows)
// rebuild that dropping the cache used to force. The unstripped value
// indexes are the base of the scheme: they know which lone row to un-strip
// when a value gains its second carrier, which the stripped partitions
// alone cannot. A multi-attribute entry whose patch (seed-cluster scan +
// verification) would cost more than re-intersecting its patched
// sub-partitions is dropped instead and rebuilt lazily on the next Get.
// PliCacheOptions::incremental = false disables the hooks' use by
// FlexibleRelation, restoring the historical drop-everything behavior as
// the cross-validation oracle.
//
// Concurrency: Get() is safe to call from many worker threads. Each cache
// slot holds a shared_future; the first requester of a key builds the
// partition outside the lock and fulfils the promise, later requesters
// block on the future instead of duplicating the work. Eviction is LRU over
// completed multi-attribute entries only — single-attribute partitions are
// the base of every product and stay resident. Mutation hooks must be
// externally synchronized against readers (mutating a relation while
// another thread evaluates it is a data race on the row vector regardless
// of the cache).

#ifndef FLEXREL_ENGINE_PLI_CACHE_H_
#define FLEXREL_ENGINE_PLI_CACHE_H_

#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/pli.h"
#include "engine/pli_cache_options.h"

namespace flexrel {

/// Thread-safe partition cache over one instance. The referenced rows must
/// outlive the cache; every mutation of the rows must be reported through
/// OnInsert/OnUpdate (or the cache discarded) before the next read.
class PliCache {
 public:
  using Options = PliCacheOptions;

  explicit PliCache(const std::vector<Tuple>* rows);
  PliCache(const std::vector<Tuple>* rows, Options options);

  PliCache(const PliCache&) = delete;
  PliCache& operator=(const PliCache&) = delete;

  /// The stripped partition by `attrs`, building (and caching) it when
  /// absent. Never returns null.
  std::shared_ptr<const Pli> Get(const AttrSet& attrs);

  /// The *unstripped* value-keyed view of the single-attribute partition of
  /// `attr`: value -> ascending row ids carrying exactly that value. Rows
  /// lacking the attribute appear nowhere; rows with an explicit Value::Null
  /// cluster under the Null key. Unlike the stripped partitions, singleton
  /// clusters are kept — a lone row cannot influence a dependency but very
  /// much belongs to an equality selection's answer. Built once per
  /// attribute, pinned, and patched across mutations. Never returns null;
  /// safe to call from many threads.
  using ValueIndex =
      std::unordered_map<Value, std::vector<Pli::RowId>, ValueHash>;
  std::shared_ptr<const ValueIndex> IndexFor(AttrId attr);

  // ------------------------------------------------------------------
  // Incremental maintenance hooks. FlexibleRelation calls these *after*
  // mutating its row vector (the cache reads the post-mutation rows to
  // locate partners). Patched structures remain shared with earlier
  // Get/IndexFor callers — holders see the new instance, which is exactly
  // the documented contract: do not hold partition pointers across
  // mutations you care to distinguish.
  // ------------------------------------------------------------------

  /// The row at index `row` == rows().size() - 1 was just appended.
  void OnInsert(Pli::RowId row, const Tuple& t);

  /// The row at index `row` changed from `old_row` to `new_row`. Attribute
  /// additions and removals are handled, so footnote-3 type changes (an
  /// Update whose TypeDelta adds/drops variant attributes) arrive as one
  /// multi-attribute delta.
  void OnUpdate(Pli::RowId row, const Tuple& old_row, const Tuple& new_row);

  const std::vector<Tuple>& rows() const { return *rows_; }
  const Options& options() const { return options_; }

  /// Statistics for tests and benchmarks.
  size_t hits() const;
  size_t misses() const;
  size_t evictions() const;
  size_t cached_entries() const;
  /// Structures patched in place by the mutation hooks.
  size_t patches() const;
  /// Cached partitions dropped by a mutation hook because re-intersecting
  /// patched sub-partitions is cheaper than patching them (rebuilt lazily).
  size_t patch_rebuilds() const;

 private:
  using PliPtr = std::shared_ptr<Pli>;
  struct Entry {
    std::shared_future<PliPtr> future;
    /// Position in lru_; only meaningful when evictable.
    std::list<AttrSet>::iterator lru_pos;
    bool evictable = false;
  };

  /// Builds the partition for `attrs` from cached sub-partitions.
  PliPtr BuildFor(const AttrSet& attrs);

  /// Memoized probe table of the single-attribute partition of `attr` —
  /// shared by every intersection whose right operand is that partition.
  /// Inserts drop all memos (their num_rows sizing is stale); updates drop
  /// only the changed attributes' (other partitions' cluster ids are
  /// untouched). Dropped memos are rebuilt on the next multi-attribute
  /// build that needs them.
  std::shared_ptr<const std::vector<int32_t>> ProbeFor(AttrId attr);

  /// Drops completed evictable entries beyond max_entries. Requires mu_.
  void EvictLocked();

  /// The pinned value index of `attr`, building it from the current rows if
  /// absent. When this call builds it, `attr` is added to `built_fresh`
  /// (may be null) — a fresh index already reflects the post-mutation
  /// instance and must not be patched again. Requires mu_.
  ValueIndex* EnsureIndexLocked(AttrId attr,
                                std::unordered_set<AttrId>* built_fresh);

  /// Ascending rows agreeing with `proj` on `attrs`, excluding
  /// `exclude_row`: scans the smallest value-index cluster among `attrs`
  /// and verifies candidates against the rows. Returns false when that scan
  /// would cost more than rebuilding the partition by intersection (the
  /// caller drops the entry instead). Requires mu_; `proj` must be defined
  /// on all of `attrs`.
  bool AgreeingRowsLocked(const AttrSet& attrs, const Tuple& proj,
                          Pli::RowId exclude_row, Pli::Cluster* out,
                          std::unordered_set<AttrId>* built_fresh);

  using EntryMap = std::unordered_map<AttrSet, Entry, AttrSetHash>;

  /// Drops entry `it` (and its LRU slot), returning the next iterator.
  /// Requires mu_.
  EntryMap::iterator DropEntryLocked(EntryMap::iterator it);

  enum class PatchResult {
    kPatched,    ///< the partition was modified in place
    kUntouched,  ///< the mutation does not affect this partition
    kRebuild,    ///< contradicted or cheaper to rebuild: drop the entry
  };

  /// The mutation hooks' shared walk over the cached partitions: unready
  /// entries (a build racing the mutation — a documented data race, shed
  /// defensively) and entries whose `patch` returns kRebuild are dropped
  /// for lazy rebuilding and counted in patch_rebuilds_; kPatched counts
  /// in patches_. Callbacks must not create entries. Requires mu_.
  void PatchEntriesLocked(
      const std::function<PatchResult(const AttrSet&, Pli*)>& patch);

  const std::vector<Tuple>* rows_;
  Options options_;

  mutable std::mutex mu_;
  EntryMap entries_;
  std::unordered_map<AttrId, std::shared_ptr<const std::vector<int32_t>>>
      probes_;  // memoized probe tables, dropped wholesale on mutation
  std::unordered_map<AttrId, std::shared_ptr<ValueIndex>>
      value_indexes_;  // pinned and patched; the selections' value -> rows view
  std::list<AttrSet> lru_;  // front = most recently used, evictable keys only
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
  size_t patches_ = 0;
  size_t patch_rebuilds_ = 0;
};

/// Patch primitives for the unstripped value index, mirroring
/// Pli::ApplyInsert/ApplyErase: `ValueIndexApplyInsert` registers an
/// appended or re-valued row under `value` (no-op when null-pointer —
/// i.e. the row does not carry the attribute), `ValueIndexApplyUpdate`
/// moves `row` from `old_value` to `new_value` (either may be null for
/// attribute removal/addition). Row lists stay ascending; emptied values
/// are erased so the index equals a from-scratch build.
void ValueIndexApplyInsert(PliCache::ValueIndex* index, Pli::RowId row,
                           const Value* value);
void ValueIndexApplyUpdate(PliCache::ValueIndex* index, Pli::RowId row,
                           const Value* old_value, const Value* new_value);

}  // namespace flexrel

#endif  // FLEXREL_ENGINE_PLI_CACHE_H_
