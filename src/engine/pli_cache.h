// An LRU-bounded cache of stripped partitions keyed by attribute set.
//
// Level-wise discovery asks for the partition of every candidate
// determinant; naively each request re-hashes the instance. The cache
// instead builds the partition of X = {a1 < ... < ak} as
//     Get({a1..a(k-1)}) ∩ Get({ak}),
// recursing down to single-attribute partitions, which are built from the
// rows once and pinned. Because candidates of one lattice level share
// (k-1)-prefixes, almost every multi-attribute request reduces to a single
// integer-valued Intersect over already cached operands.
//
// Mutations: the cache is no longer bound to an immutable instance. When
// the underlying row vector changes, the owner reports the change through
// OnInsert/OnUpdate (or their batch forms), which *buffer* the delta; the
// next read (Get/IndexFor — that includes every evaluator and validator
// access) flushes the pending buffer with a three-way policy decided by
// the net burst size b (PliCacheOptions::{batch_threshold,
// drop_threshold}):
//
//   - b < batch_threshold: per-row patching, the PR 3 path — only the
//     clusters the mutated row leaves or joins are touched, O(cluster)
//     integer work per cached structure per row.
//   - batch_threshold <= b < max(drop_threshold, rows/2): batched apply —
//     deltas are grouped by attribute and value, each affected value-index
//     cluster is spliced in one sorted pass
//     (ValueIndexApplyInsertBatch/ValueIndexApplyUpdateBatch), the
//     captured per-value cluster replacements group-apply to the
//     single-attribute partitions (Pli::ApplyBatch), and affected
//     multi-attribute partitions are dropped for lazy re-intersection from
//     the batch-patched bases. A 64-mutation burst costs one splice
//     instead of 64 cluster surgeries.
//   - b >= max(drop_threshold, rows/2): everything (value indexes
//     included) is dropped for lazy from-scratch rebuilds — the burst is
//     so large that one deferred rebuild beats any patching.
//
// Deltas to one row coalesce in the buffer (first old state, final new
// state), so a row updated 64 times between queries flushes as one move.
// The unstripped value indexes are the base of the scheme: they know which
// lone row to un-strip when a value gains its second carrier, which the
// stripped partitions alone cannot. Probe tables (row -> cluster label,
// ProbeFor) used to be memo-dropped by any flush touching their attribute
// and rebuilt O(rows); they are now first-class incrementally maintained
// structures, label arrays patched in O(delta) alongside the cluster
// patches on both flush arms, so multi-attribute lazy re-intersections
// stop paying a probe rebuild per flush. A multi-attribute entry whose per-row
// patch (seed-cluster scan + verification) would cost more than
// re-intersecting its patched sub-partitions is dropped instead and
// rebuilt lazily on the next Get. PliCacheOptions::incremental = false
// disables the hooks' use by FlexibleRelation, restoring the historical
// drop-everything behavior as the cross-validation oracle;
// batch_threshold = SIZE_MAX pins the per-row path, the reference the
// batched one is benchmarked and soak-tested against.
//
// Concurrency: Get/IndexFor/ProbeFor are safe to call from many worker
// threads. In the default copy-on-write mode (PliCacheOptions::cow_reads)
// reads are *lock-free under write traffic*: an immutable Snapshot table
// (partitions + probes + value indexes, shared_ptr'd) is published with
// one atomic swap per flush, readers resolve cached structures with a
// single acquire-load and never touch mu_, and a flush patches successor
// copies off to the side before swapping — the structures a reader holds
// are frozen at the epoch it loaded them. mu_ shrinks to a writers-only
// flush/publish (and cache-population) lock. With cow_reads = false the
// historical locked in-place mode applies: every read takes mu_, flushes
// the pending buffer, and may observe in-place patches. Either way, each
// cache slot holds a shared_future; the first requester of a key builds
// the partition outside the lock and fulfils the promise, later
// requesters block on the future instead of duplicating the work.
// Eviction is LRU over completed multi-attribute entries only —
// single-attribute partitions are the base of every product and stay
// resident (in COW mode lock-free hits skip the LRU touch, so eviction
// order degrades toward build order). Concurrent mutation still requires
// the *row vector* itself to be externally synchronized against readers
// that project tuples; the cache's own structures need no reader-side
// synchronization in COW mode. See src/engine/README.md, "Concurrency".

#ifndef FLEXREL_ENGINE_PLI_CACHE_H_
#define FLEXREL_ENGINE_PLI_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "engine/dictionary.h"
#include "engine/pli.h"
#include "engine/pli_cache_options.h"

namespace flexrel {

struct ValueIndexDelta;

/// Thread-safe partition cache over one instance. The referenced rows must
/// outlive the cache; every mutation of the rows must be reported through
/// OnInsert/OnUpdate (or the batch hooks, or the cache discarded) before
/// the next read.
class PliCache {
 public:
  using Options = PliCacheOptions;

  explicit PliCache(const std::vector<Tuple>* rows);
  PliCache(const std::vector<Tuple>* rows, Options options);

  PliCache(const PliCache&) = delete;
  PliCache& operator=(const PliCache&) = delete;

  /// The stripped partition by `attrs`, building (and caching) it when
  /// absent. Flushes pending mutation deltas first. Never returns null.
  std::shared_ptr<const Pli> Get(const AttrSet& attrs);

  /// The memoized probe (row -> cluster label, see PliProbe) of the
  /// single-attribute partition of `attr` — shared by every intersection
  /// whose right operand is that partition, i.e. every multi-attribute
  /// build whose key ends in `attr`. Probes are *incrementally maintained*:
  /// the flush patches the label array alongside the cluster patches
  /// (labels stay stable rather than canonical), so a flush no longer costs
  /// an O(rows) probe rebuild per touched attribute. A probe is dropped for
  /// a lazy rebuild only when its partition is (entry dropped), when a
  /// patch contradicts it, or when churn has bloated the label bound past
  /// twice the cluster count (probe_rebuilds in Stats()). Flushes pending
  /// deltas first; never returns null. The pointee is patched in place
  /// under the same external-synchronization contract as Get results: do
  /// not hold it across mutations.
  std::shared_ptr<const PliProbe> ProbeFor(AttrId attr);

  /// The *unstripped* value-keyed view of the single-attribute partition of
  /// `attr`: value -> ascending row ids carrying exactly that value. Rows
  /// lacking the attribute appear nowhere; rows with an explicit Value::Null
  /// cluster under the Null key. Unlike the stripped partitions, singleton
  /// clusters are kept — a lone row cannot influence a dependency but very
  /// much belongs to an equality selection's answer. Built once per
  /// attribute, pinned, and patched across mutations. Flushes pending
  /// deltas first. Never returns null; safe to call from many threads.
  using ValueIndex =
      std::unordered_map<Value, std::vector<Pli::RowId>, ValueHash>;
  std::shared_ptr<const ValueIndex> IndexFor(AttrId attr);

  /// The dictionary code column of `attr` (engine/dictionary.h): values
  /// interned into dense uint32_t codes, held columnar, with per-code row
  /// buckets — the base of the coded partition builds, selections, and
  /// hybrid sampling. Built once per attribute, pinned, and patched by the
  /// same flush that patches the partitions, so a fetched column is always
  /// exactly as fresh as a Get() from the same quiescent point. Returns
  /// null iff Options::use_codes is false (the Value-keyed oracle mode);
  /// callers fall back to the value-hashed paths then. Flushes pending
  /// deltas first; safe from many threads; same holding contract as Get
  /// results (in COW mode a held column is frozen at its epoch, in locked
  /// mode do not hold it across mutations).
  std::shared_ptr<const CodeColumn> CodeColumnFor(AttrId attr);

  /// Probe-only twin of CodeColumnFor: the column when it already exists,
  /// null otherwise (or when Options::use_codes is off) — never builds.
  /// The single-attribute partition path goes through this so a cold cache
  /// pays a plain hash build instead of materializing a column it was
  /// never asked for; CodeColumnFor (evaluator selections, the hybrid
  /// sampler) is the explicit materialization point, after which partition
  /// (re)builds counting-sort.
  std::shared_ptr<const CodeColumn> ExistingCodeColumn(AttrId attr);

  // ------------------------------------------------------------------
  // Incremental maintenance hooks. FlexibleRelation calls these *after*
  // mutating its row vector. The hooks only append to the pending-delta
  // buffer (O(1) per row — inserts record nothing but the row id, updates
  // take ownership of the displaced old tuple); all patching is deferred
  // to the next read. Structures handed out by earlier Get/IndexFor calls
  // are shared — a holder may observe the pre-flush instance until some
  // reader flushes, which is exactly the documented contract: do not hold
  // partition pointers across mutations; re-Get after mutating.
  // ------------------------------------------------------------------

  /// The row at index `row` == rows().size() - 1 was just appended.
  void OnInsert(Pli::RowId row);

  /// Rows first_row .. first_row + count - 1 were just appended.
  void OnInsertBatch(Pli::RowId first_row, size_t count);

  /// The row at index `row` changed from `old_row` to its current state in
  /// rows(). Attribute additions and removals are handled, so footnote-3
  /// type changes (an Update whose TypeDelta adds/drops variant
  /// attributes) arrive as one multi-attribute delta.
  void OnUpdate(Pli::RowId row, Tuple old_row);

  /// Batch form of OnUpdate: every (row, pre-mutation state) of one
  /// already-applied transactional batch, buffered under a single lock.
  void OnUpdateBatch(std::vector<std::pair<Pli::RowId, Tuple>> old_rows);

  const std::vector<Tuple>& rows() const { return *rows_; }
  const Options& options() const { return options_; }

  /// One coherent snapshot of every cache statistic, taken under a single
  /// lock — the ad-hoc per-counter accessors this replaces could tear
  /// across a concurrent flush. Tests assert on it; bench_pli prints it.
  struct StatsSnapshot {
    size_t hits = 0;
    size_t misses = 0;
    size_t evictions = 0;
    size_t cached_entries = 0;
    /// Structures patched row-by-row by a flush taking the per-row path.
    size_t patches = 0;
    /// Cached partitions dropped by a flush because re-intersecting patched
    /// sub-partitions is cheaper than patching them (rebuilt lazily).
    size_t patch_rebuilds = 0;
    /// Structures group-applied by a flush taking the batched path.
    size_t batch_applies = 0;
    /// Flushes that dropped every cached structure because the burst
    /// crossed max(drop_threshold, rows/2).
    size_t full_drops = 0;
    /// Memoized probe tables patched in place by a flush (either path).
    size_t probe_patches = 0;
    /// Memoized probe tables dropped for a lazy O(rows) rebuild (partition
    /// dropped, patch contradicted, or label bound bloated).
    size_t probe_rebuilds = 0;
    /// Mutation deltas currently buffered (not yet flushed by a read).
    /// Always 0 at rest in COW mode, whose hooks flush eagerly.
    size_t pending_deltas = 0;
    /// Flushes that took any arm (per_row + batched + dropped).
    size_t flushes = 0;
    /// COW snapshot swaps driven by a flush. Identity: publishes == flushes
    /// in COW mode, 0 in locked mode (build-driven snapshot refreshes are
    /// counted separately, in telemetry only).
    size_t publishes = 0;
    /// Monotone snapshot version: bumps on every swap (flush publishes and
    /// build refreshes alike). 0 while nothing was ever published.
    uint64_t epoch = 0;
    /// Estimated byte footprints per structure kind, refreshed by the
    /// accounting sweep. All 0 while memory_budget_bytes == 0 (governance
    /// off — nothing is ever accounted).
    size_t bytes_plis = 0;
    size_t bytes_probes = 0;
    size_t bytes_indexes = 0;
    size_t bytes_columns = 0;
    /// Entries evicted because the byte budget (not max_entries) was
    /// exceeded. Identity: 0 while governance is off.
    size_t budget_evictions = 0;
    /// Multi-attribute Gets served by building without caching because the
    /// cache could not get under budget by evicting.
    size_t uncached_serves = 0;
    /// Flushes that failed mid-patch (allocation failure or injected
    /// fault) and recovered by dropping every cached structure instead of
    /// publishing a half-patched table.
    size_t flush_aborts = 0;
  };
  StatsSnapshot Stats() const;

  /// True when no reader currently pins either snapshot slot — the leak
  /// check the cancellation and chaos suites assert after unwinding
  /// mid-flight work (a pin is held only for a shared_ptr copy, so at
  /// quiescence this must hold).
  bool SnapshotPinsDrained() const {
    return snapshot_slots_[0].Drained() && snapshot_slots_[1].Drained();
  }

  /// Epoch of the currently published snapshot — 0 before the first
  /// publish, monotone afterwards. Lock-free (one slot pin), so readers
  /// (and the concurrency soaks) can bracket a multi-structure read: equal
  /// epochs before and after guarantee every structure came from that one
  /// snapshot (a thread's observed epochs never go backwards). Always 0 in
  /// locked mode, which never publishes.
  uint64_t SnapshotEpoch() const;

 private:
  using PliPtr = std::shared_ptr<Pli>;
  struct Entry {
    std::shared_future<PliPtr> future;
    /// Position in lru_; only meaningful when evictable.
    std::list<AttrSet>::iterator lru_pos;
    bool evictable = false;
  };

  /// One buffered mutation: an append (old_row empty, the row's state is
  /// read from rows() at flush time) or an update (old_row = the displaced
  /// pre-mutation tuple).
  struct PendingDelta {
    Pli::RowId row;
    bool is_insert;
    Tuple old_row;
  };

  /// One coalesced mutation at flush time: the row's first recorded old
  /// state (or "inserted"), its final state being rows()[row], and the
  /// attributes whose value or presence the net move changes — diffed once
  /// here, consumed by every flush stage (a no-op update diffs to ∅ and is
  /// dropped before any patching).
  struct NetDelta {
    Pli::RowId row;
    bool is_insert;
    const Tuple* old_row;  // into pending_; null for inserts
    AttrSet changed_attrs;
  };

  /// One published epoch: an immutable table of every completed cached
  /// structure at publish time. Readers resolve against these maps under
  /// a slot pin (see WithSnapshot) without taking mu_; the shared_ptrs
  /// they copy out keep a superseded epoch's structures alive for exactly
  /// as long as some reader still holds them. Never mutated after
  /// publication.
  struct Snapshot {
    std::unordered_map<AttrSet, std::shared_ptr<const Pli>, AttrSetHash> plis;
    std::unordered_map<AttrId, std::shared_ptr<const PliProbe>> probes;
    std::unordered_map<AttrId, std::shared_ptr<const ValueIndex>> indexes;
    std::unordered_map<AttrId, std::shared_ptr<const CodeColumn>> columns;
    uint64_t epoch = 0;
  };

  /// Builds the partition for `attrs` from cached sub-partitions.
  PliPtr BuildFor(const AttrSet& attrs);

  /// Rebuilds the snapshot table from the live maps and swaps it in with
  /// one release-store. `flush_publish` distinguishes the flush-driven
  /// swaps (the publishes == flushes identity) from build-driven refreshes
  /// (a miss adding a fresh entry). Requires mu_; COW mode only.
  void PublishLocked(bool flush_publish);

  /// Replaces every cached structure the imminent flush will patch with a
  /// same-content successor copy, so the patch mutates only objects no
  /// published snapshot (and no earlier reader) can reference. `changed`
  /// scopes the copies to affected attributes; inserts touch every entry
  /// (row-count bookkeeping) and every probe (label arrays grow).
  /// Requires mu_; COW mode only.
  void CloneForCowLocked(const AttrSet& changed, bool has_inserts);

  /// The storage mode every partition of this cache is built with.
  Pli::Storage PartitionStorage() const {
    return options_.arena_storage ? Pli::Storage::kArena
                                  : Pli::Storage::kVectors;
  }

  /// Drops completed evictable entries beyond max_entries, then — when a
  /// memory budget is configured — keeps evicting least recently used
  /// evictable entries until the accounted footprint fits the budget.
  /// Requires mu_.
  void EvictLocked();

  /// Full accounting sweep over the live maps: per-kind estimated byte
  /// footprints into bytes_* (and the engine.cache.bytes_* gauges). Only
  /// called when options_.memory_budget_bytes != 0 — governance off means
  /// zero accounting work. Requires mu_.
  void AccountMemoryLocked();

  /// bytes_plis_ + bytes_probes_ + bytes_indexes_ + bytes_columns_.
  size_t AccountedBytesLocked() const {
    return bytes_plis_ + bytes_probes_ + bytes_indexes_ + bytes_columns_;
  }

  /// Applies the pending-delta buffer to every cached structure, choosing
  /// per-row replay, batched apply, or drop-everything by the net burst
  /// size (see file comment). Requires mu_; every read path calls this
  /// before touching entries_/value_indexes_/probes_.
  void FlushPendingLocked();

  /// Per-row replay of one net insert/update — the PR 3 patch bodies.
  /// Requires mu_ and EnsureFlushIndexesLocked having run for this flush.
  void ReplayInsertLocked(Pli::RowId row);
  void ReplayUpdateLocked(Pli::RowId row, const Tuple& old_row,
                          const AttrSet& changed);

  /// Group-applies net deltas >= batch_threshold: two-phase cluster
  /// patches for kept multi-attribute entries around one splice of the
  /// value indexes and the single-attribute partitions. Requires mu_.
  void BatchApplyLocked(const std::vector<NetDelta>& net,
                        const AttrSet& changed, size_t insert_count);

  /// One phase of the multi-attribute group patch: groups the net-delta
  /// rows leaving (`erase`, old states against pre-batch indexes) or
  /// joining (final states against post-batch indexes) the partition by
  /// cluster and applies one ClusterPatch per affected cluster via
  /// Pli::ApplyBatch. `scan_budget` caps the cumulative partner-scan work
  /// across both phases at one re-intersection's worth. Returns false —
  /// the caller drops the entry — when the budget runs out, a single seed
  /// is oversized, or the scans contradict the clusters. Requires mu_.
  bool MultiAttrGroupPatchLocked(const AttrSet& attrs, Pli* pli,
                                 const std::vector<NetDelta>& net, bool erase,
                                 size_t* scan_budget);

  /// Upfront cost of group-patching a multi-attribute entry: the summed
  /// seed-cluster sizes of both phases' partner scans, computed from
  /// cheap index lookups before any scanning happens. Requires mu_.
  size_t EstimateMultiPatchScanLocked(const AttrSet& attrs,
                                      const std::vector<NetDelta>& net);

  /// Builds the value index of every attribute some affected cached entry
  /// consults but no index exists for, then *rewinds* the net deltas so
  /// the fresh index describes the pre-batch instance — the state every
  /// flush path patches forward from. One O(rows) scan per missing
  /// attribute, amortized: from then on that index is patched, never
  /// rebuilt. Requires mu_.
  void EnsureFlushIndexesLocked(const std::vector<NetDelta>& net,
                                const AttrSet& changed);

  /// Drops every cached structure for lazy rebuilds. Requires mu_.
  void DropAllLocked();

  /// Patches every pinned code column through one net burst: inserts
  /// append to every column (code vectors cover every row), updates
  /// re-code only the columns of attributes the delta changed; each
  /// patched column then gets its staleness check (CodeColumn::
  /// MaybeReintern). Runs on both patch arms — the drop arm drops the
  /// columns with everything else. Requires mu_.
  void PatchCodeColumnsLocked(const std::vector<NetDelta>& net,
                              const AttrSet& changed, bool has_inserts);

  /// Coalesces the pending buffer in place (first delta per row wins) so a
  /// read-free mutation storm cannot grow it past the touched-row count.
  /// Requires mu_.
  void CompactPendingLocked();

  enum class PartnerScan {
    kOk,       ///< `out` holds the partners
    kTooBig,   ///< scanning the seed cluster would cost more than a rebuild
    kNoIndex,  ///< a needed value index is absent (defensive; see Ensure...)
  };

  /// Ascending rows agreeing with `proj` on `attrs`, excluding
  /// `exclude_row`: the k-way intersection of the attributes' value
  /// clusters, smallest list seeding, larger ones refined by streaming
  /// merge or per-survivor binary search (adaptive set intersection).
  /// Pure index work, so the scan is coherent with whatever intermediate
  /// state the indexes are in mid-flush. A non-null `scan_budget` is
  /// decremented by the seed size and the scan refuses (kTooBig) when it
  /// would overdraw. Requires mu_; `proj` must be defined on all of
  /// `attrs`.
  PartnerScan AgreeingRowsLocked(const AttrSet& attrs, const Tuple& proj,
                                 Pli::RowId exclude_row, Pli::Cluster* out,
                                 size_t* scan_budget);

  using EntryMap = std::unordered_map<AttrSet, Entry, AttrSetHash>;

  /// Drops entry `it` (and its LRU slot — and, for single-attribute keys,
  /// the memoized probe mirroring the dropped partition), returning the
  /// next iterator. Requires mu_.
  EntryMap::iterator DropEntryLocked(EntryMap::iterator it);

  // ------------------------------------------------------------------
  // Incremental probe maintenance. Invariant: a memoized probe for `attr`
  // exists only while the (pinned) single-attribute entry for `attr` does,
  // and describes exactly the state that partition's clusters do at every
  // point of a flush. Labels are stable: a fresh two-row cluster takes
  // label_bound++, a dissolved cluster's label is simply retired, so a
  // patch costs O(delta) instead of the O(rows) rebuild the memo-drop
  // scheme paid per flush. All require mu_.
  // ------------------------------------------------------------------

  /// Patches `attr`'s probe (if memoized) for `row` joining the cluster
  /// currently holding `partners` (ascending, excluding `row`, pre-insert
  /// state — the same list handed to Pli::ApplyInsert). Drops the probe on
  /// contradiction.
  void ProbePatchInsertLocked(AttrId attr, Pli::RowId row,
                              const Pli::Cluster& partners);

  /// The reverse: `row` leaves the cluster that `partners` (excluding it)
  /// remain in — the post-detach list handed to Pli::ApplyErase.
  void ProbePatchEraseLocked(AttrId attr, Pli::RowId row,
                             const Pli::Cluster& partners);

  /// Group-patches `attr`'s probe from one batched splice: `deltas` are the
  /// attribute's movers (cleared first), `patches` the captured per-value
  /// cluster replacements as borrowed views (labels pre-read from the
  /// pre-splice fronts, so call this *after* the value-index splice but
  /// before anything consumes the views).
  void ProbePatchBatchLocked(AttrId attr,
                             const std::vector<ValueIndexDelta>& deltas,
                             const std::vector<Pli::ClusterPatchView>& patches);

  /// Drops `attr`'s probe memo for a lazy rebuild, counting it in
  /// probe_rebuilds_ (no-op when none is memoized).
  void DropProbeLocked(AttrId attr);

  /// Caps label-space churn: once stable labels outnumber live clusters
  /// 2:1 (plus slack), intersection scratch arrays pay for dead labels and
  /// the probe is cheaper to rebuild densely. Requires the probe to exist.
  void MaybeRetireBloatedProbeLocked(AttrId attr, const Pli& pli);

  enum class PatchResult {
    kPatched,    ///< the partition was modified in place
    kUntouched,  ///< the mutation does not affect this partition
    kRebuild,    ///< contradicted or cheaper to rebuild: drop the entry
  };

  /// The flush paths' shared walk over the cached partitions: unready
  /// entries (a build racing the mutation — a documented data race, shed
  /// defensively) and entries whose `patch` returns kRebuild are dropped
  /// for lazy rebuilding and counted in patch_rebuilds_; kPatched counts
  /// in `*patched_counter` (patches_ or batch_applies_). Callbacks must
  /// not create entries. Requires mu_.
  void PatchEntriesLocked(
      const std::function<PatchResult(const AttrSet&, Pli*)>& patch,
      size_t* patched_counter);

  const std::vector<Tuple>* rows_;
  Options options_;

  /// Double-buffered snapshot publication (left-right pattern). We roll
  /// this by hand instead of using std::atomic<std::shared_ptr<...>>
  /// because libstdc++ 12's _Sp_atomic releases its embedded spin lock in
  /// load() with a relaxed RMW, so the reader's plain _M_ptr read carries
  /// no release edge to the next store()'s plain write — a formal data
  /// race TSan rightly reports. Here every edge is an explicit
  /// acquire/release atomic the model (and TSan) fully orders.
  ///
  /// Protocol: readers pin a slot (readers++ on the slot the current index
  /// names, then re-check the index — a flip in between means the pin may
  /// have landed on the slot the writer is rebuilding, so unpin and
  /// retry), copy the shared_ptr, unpin. The single writer (under mu_)
  /// overwrites only the spare slot, and only after its pin count drains
  /// to zero; the store of snapshot_cur_ then publishes the new snapshot.
  /// Readers pin for a shared_ptr copy only, so the writer's drain wait is
  /// bounded and tiny.
  ///
  /// The index and pin-count operations are seq_cst on purpose: with only
  /// acquire/release, the reader's re-check load may legally re-read the
  /// STALE index value (plain coherence never forces a load forward), and
  /// a double flip (A: 0→1, B: rebuilding slot 0 after a drain that missed
  /// the pin) would let the re-check pass against a slot mid-rebuild. The
  /// single seq_cst total order forbids exactly that: a drain that missed
  /// the pin orders the earlier flip before the re-check, so the re-check
  /// reads either that flip (mismatch → retry) or a later flip of the same
  /// slot (whose release edge makes the rebuilt snap visible). On x86 the
  /// upgrade is free — seq_cst loads are plain movs, RMWs lock-prefixed
  /// either way.
  /// The pin count is striped across cachelines (readers pick a stripe by
  /// thread) so concurrent pins don't ping-pong one counter line; the
  /// writer drains every stripe. The seq_cst argument holds per stripe.
  struct SnapshotSlot {
    static constexpr size_t kPinStripes = 8;
    struct alignas(64) PinStripe {
      std::atomic<uint64_t> pins{0};
    };
    std::shared_ptr<const Snapshot> snap;
    PinStripe stripes[kPinStripes];

    std::atomic<uint64_t>& PinsForThisThread() {
      static std::atomic<size_t> next_stripe{0};
      thread_local const size_t stripe =
          next_stripe.fetch_add(1, std::memory_order_relaxed) % kPinStripes;
      return stripes[stripe].pins;
    }
    bool Drained() const {
      for (const PinStripe& s : stripes) {
        if (s.pins.load() != 0) return false;
      }
      return true;
    }
  };
  mutable SnapshotSlot snapshot_slots_[2];
  alignas(64) std::atomic<uint32_t> snapshot_cur_{0};

  /// The lock-free reader side of the protocol above: runs `fn` against
  /// the current snapshot (null until the first publish — readers fall
  /// through to the locked population path on a snapshot miss) while the
  /// slot is pinned, and returns fn's result. The raw pointer is valid
  /// for exactly the pinned extent; fn copies out the shared_ptr of the
  /// one structure it resolves, never the whole snapshot — taking
  /// ownership of the snapshot itself would put every reader's
  /// fetch_add/fetch_sub on one control-block cacheline, which is the
  /// contention this protocol exists to avoid. Never touches mu_.
  template <typename Fn>
  auto WithSnapshot(Fn&& fn) const {
    for (;;) {
      const uint32_t idx = snapshot_cur_.load();
      std::atomic<uint64_t>& pins =
          snapshot_slots_[idx].PinsForThisThread();
      pins.fetch_add(1);
      if (snapshot_cur_.load() == idx) {
        auto out = fn(snapshot_slots_[idx].snap.get());
        pins.fetch_sub(1);
        return out;
      }
      // Raced with a flip: the writer may already be rebuilding this
      // slot. Drop the pin and re-resolve the current index.
      pins.fetch_sub(1);
    }
  }

  /// Writers-only in COW mode (flush/publish and cache population); the
  /// read path of every locked-mode call as well.
  mutable std::mutex mu_;
  EntryMap entries_;
  std::unordered_map<AttrId, std::shared_ptr<PliProbe>>
      probes_;  // memoized probes, patched in place alongside the clusters
  std::unordered_map<AttrId, std::shared_ptr<ValueIndex>>
      value_indexes_;  // pinned and patched; the selections' value -> rows view
  std::unordered_map<AttrId, std::shared_ptr<CodeColumn>>
      code_columns_;  // pinned and patched; the columnar value plane
  std::list<AttrSet> lru_;  // front = most recently used, evictable keys only
  std::vector<PendingDelta> pending_;  // buffered mutations, oldest first
  size_t pending_compact_at_;  // next buffer size that triggers compaction
  std::atomic<size_t> hits_{0};  // atomic: bumped on the lock-free hit path
  size_t misses_ = 0;
  size_t evictions_ = 0;
  size_t patches_ = 0;
  size_t patch_rebuilds_ = 0;
  size_t batch_applies_ = 0;
  size_t full_drops_ = 0;
  size_t probe_patches_ = 0;
  size_t probe_rebuilds_ = 0;
  size_t flushes_ = 0;
  size_t publishes_ = 0;
  uint64_t epoch_ = 0;
  // Memory-governance state, all meaningful only while
  // options_.memory_budget_bytes != 0 (zero otherwise).
  size_t bytes_plis_ = 0;
  size_t bytes_probes_ = 0;
  size_t bytes_indexes_ = 0;
  size_t bytes_columns_ = 0;
  size_t budget_evictions_ = 0;
  size_t uncached_serves_ = 0;
  size_t flush_aborts_ = 0;
};

// Out of line so WithSnapshot's deduced return type is settled first.
inline uint64_t PliCache::SnapshotEpoch() const {
  return WithSnapshot([](const Snapshot* snap) {
    return snap == nullptr ? uint64_t{0} : snap->epoch;
  });
}

/// Patch primitives for the unstripped value index, mirroring
/// Pli::ApplyInsert/ApplyErase: `ValueIndexApplyInsert` registers an
/// appended or re-valued row under `value` (no-op when null-pointer —
/// i.e. the row does not carry the attribute), `ValueIndexApplyUpdate`
/// moves `row` from `old_value` to `new_value` (either may be null for
/// attribute removal/addition). Row lists stay ascending; emptied values
/// are erased so the index equals a from-scratch build.
void ValueIndexApplyInsert(PliCache::ValueIndex* index, Pli::RowId row,
                           const Value* value);
void ValueIndexApplyUpdate(PliCache::ValueIndex* index, Pli::RowId row,
                           const Value* old_value, const Value* new_value);

/// One row's movement in a batched value-index splice. Null old_value:
/// the row gains the attribute (or was inserted); null new_value: it loses
/// the attribute. The pointed-to values must outlive the call.
struct ValueIndexDelta {
  Pli::RowId row;
  const Value* old_value;
  const Value* new_value;
};

/// Batched counterparts, mirroring Pli::ApplyBatch: deltas are grouped by
/// value and sorted once, then every affected value's row list is spliced
/// in a single merge pass (instead of one binary-search surgery per row).
/// With `capture` (the default) returns one Pli::ClusterPatch per affected
/// value — the pre-splice cluster anchor and its post-splice rows — which
/// Pli::ApplyBatch consumes to group-apply the same burst to the stripped
/// partition; capture = false skips those cluster copies (and returns
/// nothing) for callers with no partition to patch. The insert-only form
/// mirrors the single-row ValueIndexApplyInsert (null old side); the
/// cache's flush encodes inserts as update deltas directly, so it is a
/// convenience for append-shaped callers and the unit tests.
std::vector<Pli::ClusterPatch> ValueIndexApplyUpdateBatch(
    PliCache::ValueIndex* index, const std::vector<ValueIndexDelta>& deltas,
    bool capture = true);

/// Zero-copy capture: the same splice, but the returned patches *borrow*
/// their replacement rows as spans into the just-spliced index clusters
/// (Pli::ClusterPatchView) instead of copying them. Valid until the index
/// is next modified; the arena flush consumes them immediately, landing
/// each replacement in the partition with exactly one copy
/// (index -> arena) instead of two (index -> patch -> storage).
std::vector<Pli::ClusterPatchView> ValueIndexApplyUpdateBatchViews(
    PliCache::ValueIndex* index, const std::vector<ValueIndexDelta>& deltas);
std::vector<Pli::ClusterPatch> ValueIndexApplyInsertBatch(
    PliCache::ValueIndex* index,
    const std::vector<std::pair<Pli::RowId, const Value*>>& inserts,
    bool capture = true);

}  // namespace flexrel

#endif  // FLEXREL_ENGINE_PLI_CACHE_H_
