// An LRU-bounded cache of stripped partitions keyed by attribute set.
//
// Level-wise discovery asks for the partition of every candidate
// determinant; naively each request re-hashes the instance. The cache
// instead builds the partition of X = {a1 < ... < ak} as
//     Get({a1..a(k-1)}) ∩ Get({ak}),
// recursing down to single-attribute partitions, which are built from the
// rows once and pinned. Because candidates of one lattice level share
// (k-1)-prefixes, almost every multi-attribute request reduces to a single
// integer-valued Intersect over already cached operands.
//
// Concurrency: Get() is safe to call from many worker threads. Each cache
// slot holds a shared_future; the first requester of a key builds the
// partition outside the lock and fulfils the promise, later requesters
// block on the future instead of duplicating the work. Eviction is LRU over
// completed multi-attribute entries only — single-attribute partitions are
// the base of every product and stay resident.

#ifndef FLEXREL_ENGINE_PLI_CACHE_H_
#define FLEXREL_ENGINE_PLI_CACHE_H_

#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "engine/pli.h"

namespace flexrel {

/// Thread-safe partition cache over one immutable instance. The referenced
/// rows must outlive the cache and must not change while it is in use.
class PliCache {
 public:
  struct Options {
    /// Maximal number of cached multi-attribute partitions (single-attribute
    /// partitions are pinned and not counted). Least recently used entries
    /// are dropped beyond this bound.
    size_t max_entries = 1024;
  };

  explicit PliCache(const std::vector<Tuple>* rows);
  PliCache(const std::vector<Tuple>* rows, Options options);

  PliCache(const PliCache&) = delete;
  PliCache& operator=(const PliCache&) = delete;

  /// The stripped partition by `attrs`, building (and caching) it when
  /// absent. Never returns null.
  std::shared_ptr<const Pli> Get(const AttrSet& attrs);

  /// The *unstripped* value-keyed view of the single-attribute partition of
  /// `attr`: value -> ascending row ids carrying exactly that value. Rows
  /// lacking the attribute appear nowhere; rows with an explicit Value::Null
  /// cluster under the Null key. Unlike the stripped partitions, singleton
  /// clusters are kept — a lone row cannot influence a dependency but very
  /// much belongs to an equality selection's answer. Built once per
  /// attribute and pinned, like the probe tables. Never returns null; safe
  /// to call from many threads.
  using ValueIndex =
      std::unordered_map<Value, std::vector<Pli::RowId>, ValueHash>;
  std::shared_ptr<const ValueIndex> IndexFor(AttrId attr);

  const std::vector<Tuple>& rows() const { return *rows_; }

  /// Statistics for tests and benchmarks.
  size_t hits() const;
  size_t misses() const;
  size_t evictions() const;
  size_t cached_entries() const;

 private:
  using PliPtr = std::shared_ptr<const Pli>;
  struct Entry {
    std::shared_future<PliPtr> future;
    /// Position in lru_; only meaningful when evictable.
    std::list<AttrSet>::iterator lru_pos;
    bool evictable = false;
  };

  /// Builds the partition for `attrs` from cached sub-partitions.
  PliPtr BuildFor(const AttrSet& attrs);

  /// Memoized probe table of the single-attribute partition of `attr` —
  /// shared by every intersection whose right operand is that partition.
  std::shared_ptr<const std::vector<int32_t>> ProbeFor(AttrId attr);

  /// Drops completed evictable entries beyond max_entries. Requires mu_.
  void EvictLocked();

  const std::vector<Tuple>* rows_;
  Options options_;

  mutable std::mutex mu_;
  std::unordered_map<AttrSet, Entry, AttrSetHash> entries_;
  std::unordered_map<AttrId, std::shared_ptr<const std::vector<int32_t>>>
      probes_;  // pinned, like the single-attribute partitions they invert
  std::unordered_map<AttrId, std::shared_ptr<const ValueIndex>>
      value_indexes_;  // pinned; the selections' value -> rows view
  std::list<AttrSet> lru_;  // front = most recently used, evictable keys only
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
};

}  // namespace flexrel

#endif  // FLEXREL_ENGINE_PLI_CACHE_H_
