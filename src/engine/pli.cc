#include "engine/pli.h"

#include <algorithm>
#include <ostream>
#include <unordered_map>

#include "relational/value.h"
#include "telemetry/telemetry.h"
#include "util/string_util.h"

namespace flexrel {

namespace {

// Clusters ascend by first row id so that structurally equal partitions are
// representationally equal regardless of hash-map iteration order.
void SortByFirstRow(std::vector<Pli::Cluster>* clusters) {
  std::sort(clusters->begin(), clusters->end(),
            [](const Pli::Cluster& a, const Pli::Cluster& b) {
              return a.front() < b.front();
            });
}

constexpr size_t kNoIndex = static_cast<size_t>(-1);

// ---------------------------------------------------------------------------
// kVectors helpers — the historical per-cluster-vector surgery, kept intact
// as the reference mode's machinery.
// ---------------------------------------------------------------------------

// The canonical-order insertion point for a cluster fronted by `front`:
// the single comparator behind every by-front search, so the canonical key
// lives in one place.
std::vector<Pli::Cluster>::iterator LowerBoundByFront(
    std::vector<Pli::Cluster>* clusters, Pli::RowId front) {
  return std::lower_bound(clusters->begin(), clusters->end(), front,
                          [](const Pli::Cluster& c, Pli::RowId f) {
                            return c.front() < f;
                          });
}

// Index of the cluster whose front() equals `front`, or kNoIndex.
size_t FindClusterByFront(std::vector<Pli::Cluster>* clusters,
                          Pli::RowId front) {
  auto it = LowerBoundByFront(clusters, front);
  if (it == clusters->end() || it->front() != front) return kNoIndex;
  return static_cast<size_t>(it - clusters->begin());
}

// Moves clusters[index], whose front row changed, back to its canonical
// position.
void RepositionCluster(std::vector<Pli::Cluster>* clusters, size_t index) {
  Pli::Cluster moved = std::move((*clusters)[index]);
  clusters->erase(clusters->begin() + static_cast<ptrdiff_t>(index));
  clusters->insert(LowerBoundByFront(clusters, moved.front()),
                   std::move(moved));
}

// First element of `agreeing` other than `row` — the front of the cluster
// the partners currently form. Requires at least one such element.
Pli::RowId PartnerFront(const Pli::Cluster& agreeing, Pli::RowId row,
                        bool includes_row) {
  if (includes_row && agreeing.front() == row) return agreeing[1];
  return agreeing.front();
}

}  // namespace

std::ostream& operator<<(std::ostream& os, Pli::ClusterView view) {
  os << "{";
  for (size_t i = 0; i < view.size(); ++i) {
    if (i != 0) os << ", ";
    os << view[i];
  }
  return os << "}";
}

// ---------------------------------------------------------------------------
// Arena primitives: binary search over cluster fronts and canonical-order
// repositioning by rotation — the flat counterparts of the kVectors helpers.
// ---------------------------------------------------------------------------

size_t Pli::ArenaLowerBoundByFront(RowId front) const {
  size_t lo = 0, hi = num_clusters();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (arena_[offsets_[mid]] < front) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t Pli::ArenaFindClusterByFront(RowId front) const {
  size_t idx = ArenaLowerBoundByFront(front);
  if (idx == num_clusters() || arena_[offsets_[idx]] != front) return kNoIndex;
  return idx;
}

void Pli::ArenaRepositionCluster(size_t index, size_t target) {
  // Rotates the whole storage slot — live rows plus trailing slack — so the
  // cluster keeps its headroom across the move, and rotates the matching
  // sizes_ entry alongside. m is the slot capacity, not the live size.
  const uint32_t m = offsets_[index + 1] - offsets_[index];
  if (target < index) {
    // Rotate the moved slot in front of slots target..index-1, then shift
    // their boundaries right by its capacity (descending, so each read of
    // offsets_[j-1] precedes its overwrite).
    std::rotate(arena_.begin() + offsets_[target],
                arena_.begin() + offsets_[index],
                arena_.begin() + offsets_[index + 1]);
    for (size_t j = index; j > target; --j) offsets_[j] = offsets_[j - 1] + m;
    std::rotate(sizes_.begin() + static_cast<ptrdiff_t>(target),
                sizes_.begin() + static_cast<ptrdiff_t>(index),
                sizes_.begin() + static_cast<ptrdiff_t>(index + 1));
  } else if (target > index) {
    std::rotate(arena_.begin() + offsets_[index],
                arena_.begin() + offsets_[index + 1],
                arena_.begin() + offsets_[target + 1]);
    for (size_t j = index; j <= target; ++j) offsets_[j] = offsets_[j + 1] - m;
    std::rotate(sizes_.begin() + static_cast<ptrdiff_t>(index),
                sizes_.begin() + static_cast<ptrdiff_t>(index + 1),
                sizes_.begin() + static_cast<ptrdiff_t>(target + 1));
  }
}

void Pli::ArenaMaybeReposition(size_t index) {
  const RowId front = arena_[offsets_[index]];
  if (index > 0 && arena_[offsets_[index - 1]] > front) {
    ArenaRepositionCluster(index, ArenaLowerBoundByFront(front));
  } else if (index + 1 < num_clusters() &&
             arena_[offsets_[index + 1]] < front) {
    // First cluster after `index` whose front exceeds ours; we slot in just
    // before it.
    size_t lo = index + 1, hi = num_clusters();
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (arena_[offsets_[mid]] < front) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    ArenaRepositionCluster(index, lo - 1);
  }
}

void Pli::AdoptClusters(std::vector<Cluster> clusters) {
  SortByFirstRow(&clusters);
  grouped_rows_ = 0;
  for (const Cluster& c : clusters) grouped_rows_ += c.size();
  if (storage_ == Storage::kVectors) {
    vclusters_ = std::move(clusters);
    return;
  }
  offsets_.clear();
  offsets_.reserve(clusters.size() + 1);
  offsets_.push_back(0);
  sizes_.clear();
  sizes_.reserve(clusters.size());
  arena_.clear();
  arena_.reserve(grouped_rows_);
  for (const Cluster& c : clusters) {
    arena_.insert(arena_.end(), c.begin(), c.end());
    offsets_.push_back(static_cast<uint32_t>(arena_.size()));
    sizes_.push_back(static_cast<uint32_t>(c.size()));
  }
}

Pli Pli::Build(const std::vector<Tuple>& rows, AttrId attr, Storage storage) {
  Pli out;
  out.storage_ = storage;
  out.num_rows_ = rows.size();
  std::unordered_map<Value, Cluster, ValueHash> groups;
  groups.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (const Value* v = rows[i].Get(attr)) {
      groups[*v].push_back(static_cast<RowId>(i));
      ++out.defined_rows_;
    }
  }
  std::vector<Cluster> clusters;
  for (auto& [value, cluster] : groups) {
    (void)value;
    if (cluster.size() >= 2) clusters.push_back(std::move(cluster));
  }
  out.AdoptClusters(std::move(clusters));
  return out;
}

Pli Pli::Build(const std::vector<Tuple>& rows, const AttrSet& attrs,
               Storage storage) {
  Pli out;
  out.storage_ = storage;
  out.num_rows_ = rows.size();
  std::unordered_map<Tuple, Cluster, TupleHash> groups;
  groups.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (!rows[i].DefinedOn(attrs)) continue;
    groups[rows[i].Project(attrs)].push_back(static_cast<RowId>(i));
    ++out.defined_rows_;
  }
  std::vector<Cluster> clusters;
  for (auto& [key, cluster] : groups) {
    (void)key;
    if (cluster.size() >= 2) clusters.push_back(std::move(cluster));
  }
  out.AdoptClusters(std::move(clusters));
  return out;
}

Pli Pli::BuildFromCodes(const std::vector<uint32_t>& codes,
                        uint32_t code_bound, Storage storage) {
  Pli out;
  out.storage_ = storage;
  out.num_rows_ = codes.size();
  // Counting sort. Pass 1 counts carriers per code; pass 2 assigns cluster
  // slots to kept codes (count >= 2) in order of first appearance — rows
  // ascend, so the canonical by-front-row cluster order falls out for
  // free; pass 3 fills rows ascending into each slot.
  std::vector<uint32_t> count(code_bound, 0);
  for (uint32_t c : codes) {
    if (c < code_bound) {
      ++count[c];
      ++out.defined_rows_;
    }
  }
  constexpr uint32_t kUnassigned = UINT32_MAX;
  std::vector<uint32_t> cluster_of(code_bound, kUnassigned);
  std::vector<uint32_t> sizes;
  for (uint32_t c : codes) {
    if (c >= code_bound || count[c] < 2 || cluster_of[c] != kUnassigned) {
      continue;
    }
    cluster_of[c] = static_cast<uint32_t>(sizes.size());
    sizes.push_back(count[c]);
    out.grouped_rows_ += count[c];
  }
  if (storage == Storage::kVectors) {
    out.vclusters_.resize(sizes.size());
    for (size_t k = 0; k < sizes.size(); ++k) {
      out.vclusters_[k].reserve(sizes[k]);
    }
    for (size_t i = 0; i < codes.size(); ++i) {
      const uint32_t c = codes[i];
      if (c < code_bound && cluster_of[c] != kUnassigned) {
        out.vclusters_[cluster_of[c]].push_back(static_cast<RowId>(i));
      }
    }
    return out;
  }
  out.offsets_.resize(sizes.size() + 1);
  out.offsets_[0] = 0;
  for (size_t k = 0; k < sizes.size(); ++k) {
    out.offsets_[k + 1] = out.offsets_[k] + sizes[k];
  }
  out.sizes_ = sizes;
  out.arena_.resize(out.grouped_rows_);
  std::vector<uint32_t> fill(out.offsets_.begin(), out.offsets_.end() - 1);
  for (size_t i = 0; i < codes.size(); ++i) {
    const uint32_t c = codes[i];
    if (c < code_bound && cluster_of[c] != kUnassigned) {
      out.arena_[fill[cluster_of[c]]++] = static_cast<RowId>(i);
    }
  }
  return out;
}

PliProbe Pli::BuildProbe() const {
  PliProbe probe;
  probe.labels.assign(num_rows_, kNoCluster);
  const size_t n = num_clusters();
  probe.label_bound = static_cast<int32_t>(n);
  probe.label_baseline = probe.label_bound;
  for (size_t c = 0; c < n; ++c) {
    for (RowId row : cluster(c)) probe.labels[row] = static_cast<int32_t>(c);
  }
  return probe;
}

Pli Pli::Intersect(const Pli& other) const {
  return IntersectWithProbe(other.BuildProbe());
}

Pli Pli::IntersectWithProbe(const PliProbe& probe,
                            IntersectScratch* scratch) const {
  FLEXREL_TELEMETRY_COUNT("engine.pli.intersections", 1);
  FLEXREL_TELEMETRY_LATENCY(intersect_timer, "engine.pli.intersect_ns");
  if (storage_ == Storage::kVectors) return IntersectVectors(probe);
  if (scratch == nullptr) {
    // Per-thread fallback: every discovery worker and evaluator thread gets
    // steady-state zero-allocation intersections without plumbing a scratch
    // through the call chain.
    static thread_local IntersectScratch tls_scratch;
    scratch = &tls_scratch;
  }
  Pli out = IntersectArena(probe, scratch);
  // High-watermark of the per-thread scratch footprint — the steady-state
  // memory an intersection-heavy worker pins.
  FLEXREL_TELEMETRY_GAUGE_MAX(
      "engine.pli.intersect_scratch_bytes",
      scratch->count.capacity() * sizeof(uint32_t) +
          scratch->offset.capacity() * sizeof(uint32_t) +
          scratch->touched.capacity() * sizeof(int32_t) +
          scratch->emitted.capacity() * sizeof(RowId) +
          scratch->descs.capacity() * sizeof(IntersectScratch::Desc));
  return out;
}

Pli Pli::IntersectArena(const PliProbe& probe, IntersectScratch* s) const {
  Pli out;
  out.storage_ = Storage::kArena;
  out.num_rows_ = num_rows_;
  out.exact_defined_ = false;
  // Refine each of our clusters by the other partition's cluster labels.
  // Rows the other partition dropped (undefined or partnerless there) stay
  // partnerless in the product and are dropped here too. Refinement is
  // three streaming passes per cluster over the scratch's flat count /
  // offset arrays indexed by label — count, prefix-offset, fill — emitting
  // surviving sub-clusters into the scratch arena with a (front, begin,
  // size) descriptor each. Sub-cluster fronts interleave across parent
  // clusters, so canonical order is restored by sorting the descriptors
  // and gathering once into the exact-size output arena — the only
  // allocations of the whole product.
  const size_t bound = static_cast<size_t>(probe.label_bound);
  if (s->count.size() < bound) s->count.resize(bound, 0);  // stays all-zero
  if (s->offset.size() < bound) s->offset.resize(bound);
  s->touched.clear();
  s->emitted.clear();
  s->descs.clear();
  for (size_t c = 0; c < num_clusters(); ++c) {
    const ClusterView cluster = this->cluster(c);
    s->touched.clear();
    for (RowId row : cluster) {
      int32_t oc = probe.labels[row];
      if (oc == kNoCluster) continue;
      if (s->count[static_cast<size_t>(oc)]++ == 0) s->touched.push_back(oc);
    }
    const uint32_t base = static_cast<uint32_t>(s->emitted.size());
    uint32_t total = 0;
    for (int32_t oc : s->touched) {
      s->offset[static_cast<size_t>(oc)] = total;
      total += s->count[static_cast<size_t>(oc)];
    }
    s->emitted.resize(base + total);  // capacity persists across calls
    for (RowId row : cluster) {
      int32_t oc = probe.labels[row];
      if (oc == kNoCluster) continue;
      s->emitted[base + s->offset[static_cast<size_t>(oc)]++] = row;
    }
    for (int32_t oc : s->touched) {
      uint32_t n = s->count[static_cast<size_t>(oc)];
      uint32_t end = base + s->offset[static_cast<size_t>(oc)];
      if (n >= 2) {
        s->descs.push_back({s->emitted[end - n], end - n, n});
      }
      s->count[static_cast<size_t>(oc)] = 0;
    }
  }
  std::sort(s->descs.begin(), s->descs.end(),
            [](const IntersectScratch::Desc& a,
               const IntersectScratch::Desc& b) { return a.front < b.front; });
  uint32_t total = 0;
  for (const IntersectScratch::Desc& d : s->descs) total += d.size;
  out.arena_.resize(total);
  out.offsets_.reserve(s->descs.size() + 1);
  out.offsets_.push_back(0);
  out.sizes_.reserve(s->descs.size());
  RowId* dst = out.arena_.data();
  for (const IntersectScratch::Desc& d : s->descs) {
    std::copy(s->emitted.begin() + d.begin,
              s->emitted.begin() + d.begin + d.size, dst);
    dst += d.size;
    out.offsets_.push_back(static_cast<uint32_t>(dst - out.arena_.data()));
    out.sizes_.push_back(d.size);
  }
  out.grouped_rows_ = total;
  // Stripped singletons of the operands are unrecoverable here, so the
  // defined-row count degrades to the grouped-row lower bound.
  out.defined_rows_ = out.grouped_rows_;
  return out;
}

Pli Pli::IntersectVectors(const PliProbe& probe) const {
  // The pre-arena reference body: per-call scratch, one exactly-sized heap
  // vector per surviving sub-cluster, canonical order restored by sorting
  // the cluster vectors. Kept verbatim so the reference mode benchmarks the
  // historical allocation behavior, not a half-migrated one.
  Pli out;
  out.storage_ = Storage::kVectors;
  out.num_rows_ = num_rows_;
  out.exact_defined_ = false;
  std::vector<uint32_t> count(static_cast<size_t>(probe.label_bound), 0);
  std::vector<uint32_t> offset(static_cast<size_t>(probe.label_bound), 0);
  std::vector<int32_t> touched;
  std::vector<RowId> arena;
  std::vector<Cluster> result;
  for (size_t c = 0; c < num_clusters(); ++c) {
    const ClusterView cluster = this->cluster(c);
    touched.clear();
    for (RowId row : cluster) {
      int32_t oc = probe.labels[row];
      if (oc == kNoCluster) continue;
      if (count[static_cast<size_t>(oc)]++ == 0) touched.push_back(oc);
    }
    uint32_t total = 0;
    for (int32_t oc : touched) {
      offset[static_cast<size_t>(oc)] = total;
      total += count[static_cast<size_t>(oc)];
    }
    arena.resize(total);  // capacity persists across clusters
    for (RowId row : cluster) {
      int32_t oc = probe.labels[row];
      if (oc == kNoCluster) continue;
      arena[offset[static_cast<size_t>(oc)]++] = row;
    }
    for (int32_t oc : touched) {
      uint32_t n = count[static_cast<size_t>(oc)];
      uint32_t end = offset[static_cast<size_t>(oc)];
      if (n >= 2) {
        result.emplace_back(arena.begin() + (end - n), arena.begin() + end);
      }
      count[static_cast<size_t>(oc)] = 0;
    }
  }
  out.AdoptClusters(std::move(result));
  out.defined_rows_ = out.grouped_rows_;
  return out;
}

// ---------------------------------------------------------------------------
// Per-row patch primitives. Validation precedes every mutation, so a false
// return is a true no-op and a caller may keep using the partition (though
// PliCache drops refused entries anyway).
// ---------------------------------------------------------------------------

bool Pli::ApplyInsert(RowId row, const Cluster& agreeing, bool includes_row) {
  const size_t others = agreeing.size() - (includes_row ? 1 : 0);
  return ApplyInsertCore(
      row, others, others == 0 ? 0 : PartnerFront(agreeing, row, includes_row));
}

bool Pli::ApplyInsertAllRows(RowId row) {
  // Every existing row (0..row-1) agrees, so the partners' cluster — when
  // there is one — is fronted by row 0. Nothing to materialize.
  return ApplyInsertCore(row, /*others=*/row, /*partner_front=*/0);
}

bool Pli::ApplyInsertCore(RowId row, size_t others, RowId partner_front) {
  if (others == 1) {
    // Un-strip the lone partner: a fresh two-row cluster appears.
    const RowId lo = std::min(partner_front, row);
    const RowId hi = std::max(partner_front, row);
    if (storage_ == Storage::kArena) {
      if (offsets_.empty()) offsets_.push_back(0);
      size_t idx = ArenaLowerBoundByFront(lo);
      if (idx < num_clusters() && arena_[offsets_[idx]] == lo) return false;
      const uint32_t pos = offsets_[idx];
      arena_.insert(arena_.begin() + pos, {lo, hi});
      offsets_.insert(offsets_.begin() + static_cast<ptrdiff_t>(idx), pos);
      for (size_t j = idx + 1; j < offsets_.size(); ++j) offsets_[j] += 2;
      sizes_.insert(sizes_.begin() + static_cast<ptrdiff_t>(idx), 2);
    } else {
      Cluster fresh = {lo, hi};
      auto it = LowerBoundByFront(&vclusters_, lo);
      if (it != vclusters_.end() && it->front() == lo) return false;
      vclusters_.insert(it, std::move(fresh));
    }
    grouped_rows_ += 2;
  } else if (others >= 2) {
    // The partners already form a cluster; `row` joins it.
    if (storage_ == Storage::kArena) {
      size_t idx = ArenaFindClusterByFront(partner_front);
      if (idx == kNoIndex) return false;
      if (sizes_[idx] != others) return false;
      const size_t rank = static_cast<size_t>(
          std::lower_bound(arena_.begin() + offsets_[idx],
                           arena_.begin() + offsets_[idx] + sizes_[idx], row) -
          (arena_.begin() + offsets_[idx]));
      if (rank < sizes_[idx] && arena_[offsets_[idx] + rank] == row) {
        return false;
      }
      if (sizes_[idx] == offsets_[idx + 1] - offsets_[idx]) {
        // Slot full: grow it by its own capacity (amortized doubling), so
        // the O(arena-suffix) memmove happens O(log growth) times per
        // cluster instead of once per appended row. The new headroom is
        // dead slack until rows land in it; batched splices compact it
        // away.
        const uint32_t grow = offsets_[idx + 1] - offsets_[idx];
        arena_.insert(arena_.begin() + offsets_[idx + 1], grow, RowId{0});
        for (size_t j = idx + 1; j < offsets_.size(); ++j) offsets_[j] += grow;
      }
      // Shift only this cluster's suffix into the slot's slack — O(cluster).
      auto pos = arena_.begin() + offsets_[idx] + rank;
      std::move_backward(pos, arena_.begin() + offsets_[idx] + sizes_[idx],
                         arena_.begin() + offsets_[idx] + sizes_[idx] + 1);
      *pos = row;
      ++sizes_[idx];
      ++grouped_rows_;
      if (row < partner_front) ArenaMaybeReposition(idx);
    } else {
      size_t index = FindClusterByFront(&vclusters_, partner_front);
      if (index == kNoIndex) return false;
      Cluster& cluster = vclusters_[index];
      if (cluster.size() != others) return false;
      auto pos = std::lower_bound(cluster.begin(), cluster.end(), row);
      if (pos != cluster.end() && *pos == row) return false;
      cluster.insert(pos, row);
      ++grouped_rows_;
      if (row < partner_front) RepositionCluster(&vclusters_, index);
    }
  }
  // others == 0: partnerless — the stripped partition records nothing, and
  // intersection products do not even count the row as defined.
  if (exact_defined_) {
    ++defined_rows_;
  } else {
    defined_rows_ = grouped_rows_;
  }
  return true;
}

bool Pli::ApplyErase(RowId row, const Cluster& agreeing, bool includes_row) {
  const size_t others = agreeing.size() - (includes_row ? 1 : 0);
  if (others > 0) {
    RowId partner_front = PartnerFront(agreeing, row, includes_row);
    RowId front = std::min(partner_front, row);
    if (storage_ == Storage::kArena) {
      size_t idx = ArenaFindClusterByFront(front);
      if (idx == kNoIndex) return false;
      auto first = arena_.begin() + offsets_[idx];
      auto last = first + sizes_[idx];
      if (static_cast<size_t>(sizes_[idx]) != others + 1) return false;
      if (others == 1) {
        // The partner drops back to a stripped singleton; the cluster
        // dissolves. The dead slot is absorbed as the neighbor's trailing
        // slack instead of memmoving the arena suffix closed; batched
        // splices compact it away.
        if (*(last - 1) != std::max(partner_front, row)) return false;
        if (num_clusters() == 1) {
          arena_.clear();
          offsets_.clear();
          sizes_.clear();
        } else if (idx > 0) {
          // Merge the dead slot into the previous cluster's slack by
          // dropping its start boundary.
          offsets_.erase(offsets_.begin() + static_cast<ptrdiff_t>(idx));
          sizes_.erase(sizes_.begin() + static_cast<ptrdiff_t>(idx));
        } else {
          // First cluster: slide the next cluster's live rows down to the
          // arena start (a slot's rows must sit at its boundary), then
          // drop the boundary between them — O(next cluster), not
          // O(arena).
          std::move(arena_.begin() + offsets_[1],
                    arena_.begin() + offsets_[1] + sizes_[1], arena_.begin());
          offsets_.erase(offsets_.begin() + 1);
          sizes_.erase(sizes_.begin());
        }
        grouped_rows_ -= 2;
      } else {
        auto pos = std::lower_bound(first, last, row);
        if (pos == last || *pos != row) return false;
        // Close the gap within the slot only; the freed cell becomes
        // trailing slack.
        std::move(pos + 1, last, pos);
        --sizes_[idx];
        --grouped_rows_;
        if (row == front) ArenaMaybeReposition(idx);
      }
    } else {
      size_t index = FindClusterByFront(&vclusters_, front);
      if (index == kNoIndex) return false;
      Cluster& cluster = vclusters_[index];
      if (cluster.size() != others + 1) return false;
      if (others == 1) {
        if (cluster.back() != std::max(partner_front, row)) return false;
        vclusters_.erase(vclusters_.begin() + static_cast<ptrdiff_t>(index));
        grouped_rows_ -= 2;
      } else {
        auto pos = std::lower_bound(cluster.begin(), cluster.end(), row);
        if (pos == cluster.end() || *pos != row) return false;
        cluster.erase(pos);
        --grouped_rows_;
        if (row == front) RepositionCluster(&vclusters_, index);
      }
    }
  }
  // others == 0: the row was a stripped singleton.
  if (exact_defined_) {
    --defined_rows_;
  } else {
    defined_rows_ = grouped_rows_;
  }
  return true;
}

std::vector<Pli::ClusterPatchView> Pli::MakePatchViews(
    const std::vector<ClusterPatch>& patches) {
  std::vector<ClusterPatchView> views;
  views.reserve(patches.size());
  for (const ClusterPatch& p : patches) {
    views.push_back({p.old_front, p.old_size,
                     p.new_rows.empty() ? nullptr : p.new_rows.data(),
                     static_cast<uint32_t>(p.new_rows.size())});
  }
  return views;
}

bool Pli::ApplyBatch(std::vector<ClusterPatch> patches,
                     ptrdiff_t defined_delta) {
  if (storage_ == Storage::kArena) {
    // The arena lands replacement rows by copy either way, so the owning
    // overload is just the borrowing one with views over its own patches —
    // one body to maintain. Only the kVectors path below keeps the owning
    // form, for its move-into-slot semantics.
    return ApplyBatch(MakePatchViews(patches), defined_delta);
  }
  // Pass 1: validate and locate every removal against the current
  // structure before mutating anything, so a refusal leaves the partition
  // untouched.
  std::vector<size_t> located(patches.size(), kNoIndex);
  ptrdiff_t grouped_delta = 0;
  for (size_t p = 0; p < patches.size(); ++p) {
    const ClusterPatch& patch = patches[p];
    if (patch.old_size >= 2) {
      size_t index = FindClusterByFront(&vclusters_, patch.old_front);
      if (index == kNoIndex || cluster(index).size() != patch.old_size) {
        return false;
      }
      located[p] = index;
      grouped_delta -= static_cast<ptrdiff_t>(patch.old_size);
    }
    if (patch.new_rows.size() >= 2) {
      grouped_delta += static_cast<ptrdiff_t>(patch.new_rows.size());
    }
  }
  // Pass 2: a replacement that keeps its front row keeps its canonical
  // position too — move it into its slot (the overwhelmingly common case
  // for fat clusters, whose lowest row id rarely moves). Only patches that
  // dissolve, appear, or change front go through the structural merge.
  std::vector<size_t> removed;
  std::vector<Cluster> additions;
  for (size_t p = 0; p < patches.size(); ++p) {
    ClusterPatch& patch = patches[p];
    const bool has_new = patch.new_rows.size() >= 2;
    if (located[p] != kNoIndex && has_new &&
        patch.new_rows.front() == patch.old_front) {
      vclusters_[located[p]] = std::move(patch.new_rows);
    } else {
      if (located[p] != kNoIndex) removed.push_back(located[p]);
      if (has_new) additions.push_back(std::move(patch.new_rows));
    }
  }
  if (!removed.empty() || !additions.empty()) {
    // One sorted merge of the surviving clusters with the additions —
    // this is what makes a 64-mutation flush one splice instead of 64
    // cluster surgeries.
    std::sort(removed.begin(), removed.end());
    SortByFirstRow(&additions);
    std::vector<Cluster> merged;
    merged.reserve(vclusters_.size() + additions.size() - removed.size());
    size_t next_removed = 0;  // index into `removed`
    size_t next_add = 0;      // index into `additions`
    for (size_t c = 0; c < vclusters_.size(); ++c) {
      if (next_removed < removed.size() && removed[next_removed] == c) {
        ++next_removed;
        continue;
      }
      while (next_add < additions.size() &&
             additions[next_add].front() < vclusters_[c].front()) {
        merged.push_back(std::move(additions[next_add++]));
      }
      merged.push_back(std::move(vclusters_[c]));
    }
    while (next_add < additions.size()) {
      merged.push_back(std::move(additions[next_add++]));
    }
    vclusters_ = std::move(merged);
  }
  grouped_rows_ = static_cast<size_t>(
      static_cast<ptrdiff_t>(grouped_rows_) + grouped_delta);
  if (exact_defined_) {
    defined_rows_ = static_cast<size_t>(
        static_cast<ptrdiff_t>(defined_rows_) + defined_delta);
  } else {
    defined_rows_ = grouped_rows_;
  }
  return true;
}

bool Pli::ApplyBatch(std::vector<ClusterPatchView> patches,
                     ptrdiff_t defined_delta) {
  // Mirrors the owning-rows overload above — validate-all-removals first,
  // in-place swap for size-preserving front-keeping replacements, one
  // sorted compaction pass for the rest — but the replacement rows are
  // borrowed spans, so each lands in storage with exactly one copy.
  std::vector<size_t> located(patches.size(), kNoIndex);
  ptrdiff_t grouped_delta = 0;
  for (size_t p = 0; p < patches.size(); ++p) {
    const ClusterPatchView& patch = patches[p];
    if (patch.old_size >= 2) {
      size_t index = storage_ == Storage::kArena
                         ? ArenaFindClusterByFront(patch.old_front)
                         : FindClusterByFront(&vclusters_, patch.old_front);
      if (index == kNoIndex || cluster(index).size() != patch.old_size) {
        return false;
      }
      located[p] = index;
      grouped_delta -= static_cast<ptrdiff_t>(patch.old_size);
    }
    if (patch.new_size >= 2) {
      grouped_delta += static_cast<ptrdiff_t>(patch.new_size);
    }
  }
  std::vector<size_t> removed;
  std::vector<ClusterPatchView> additions;
  for (size_t p = 0; p < patches.size(); ++p) {
    const ClusterPatchView& patch = patches[p];
    const bool has_new = patch.new_size >= 2;
    const bool keeps_front = located[p] != kNoIndex && has_new &&
                             patch.new_rows[0] == patch.old_front;
    if (keeps_front && patch.new_size == patch.old_size) {
      RowId* dst = storage_ == Storage::kArena
                       ? arena_.data() + offsets_[located[p]]
                       : vclusters_[located[p]].data();
      std::copy(patch.new_rows, patch.new_rows + patch.new_size, dst);
    } else {
      if (located[p] != kNoIndex) removed.push_back(located[p]);
      if (has_new) additions.push_back(patch);
    }
  }
  if (!removed.empty() || !additions.empty()) {
    std::sort(removed.begin(), removed.end());
    std::sort(additions.begin(), additions.end(),
              [](const ClusterPatchView& a, const ClusterPatchView& b) {
                return a.new_rows[0] < b.new_rows[0];
              });
    size_t add_rows = 0;
    for (const ClusterPatchView& a : additions) add_rows += a.new_size;
    size_t removed_rows = 0;
    for (size_t r : removed) removed_rows += cluster(r).size();
    if (storage_ == Storage::kArena) {
      // The merge rebuilds the arena tight (slot capacity == live size for
      // every cluster), so a batched flush doubles as the compaction point
      // for the slack the per-row patch primitives accumulate.
      std::vector<RowId> merged_arena;
      std::vector<uint32_t> merged_offsets;
      std::vector<uint32_t> merged_sizes;
      merged_arena.reserve(grouped_rows_ + add_rows - removed_rows);
      merged_offsets.reserve(offsets_.size() + additions.size() -
                             removed.size());
      merged_sizes.reserve(sizes_.size() + additions.size() - removed.size());
      merged_offsets.push_back(0);
      auto append = [&](const RowId* begin, const RowId* end) {
        merged_arena.insert(merged_arena.end(), begin, end);
        merged_offsets.push_back(static_cast<uint32_t>(merged_arena.size()));
        merged_sizes.push_back(static_cast<uint32_t>(end - begin));
      };
      size_t next_removed = 0;
      size_t next_add = 0;
      for (size_t c = 0; c < num_clusters(); ++c) {
        if (next_removed < removed.size() && removed[next_removed] == c) {
          ++next_removed;
          continue;
        }
        const ClusterView view = cluster(c);
        while (next_add < additions.size() &&
               additions[next_add].new_rows[0] < view.front()) {
          const ClusterPatchView& a = additions[next_add++];
          append(a.new_rows, a.new_rows + a.new_size);
        }
        append(view.begin(), view.end());
      }
      while (next_add < additions.size()) {
        const ClusterPatchView& a = additions[next_add++];
        append(a.new_rows, a.new_rows + a.new_size);
      }
      arena_ = std::move(merged_arena);
      offsets_ = std::move(merged_offsets);
      sizes_ = std::move(merged_sizes);
    } else {
      std::vector<Cluster> merged;
      merged.reserve(vclusters_.size() + additions.size() - removed.size());
      size_t next_removed = 0;
      size_t next_add = 0;
      for (size_t c = 0; c < vclusters_.size(); ++c) {
        if (next_removed < removed.size() && removed[next_removed] == c) {
          ++next_removed;
          continue;
        }
        while (next_add < additions.size() &&
               additions[next_add].new_rows[0] < vclusters_[c].front()) {
          const ClusterPatchView& a = additions[next_add++];
          merged.emplace_back(a.new_rows, a.new_rows + a.new_size);
        }
        merged.push_back(std::move(vclusters_[c]));
      }
      while (next_add < additions.size()) {
        const ClusterPatchView& a = additions[next_add++];
        merged.emplace_back(a.new_rows, a.new_rows + a.new_size);
      }
      vclusters_ = std::move(merged);
    }
  }
  grouped_rows_ = static_cast<size_t>(
      static_cast<ptrdiff_t>(grouped_rows_) + grouped_delta);
  if (exact_defined_) {
    defined_rows_ = static_cast<size_t>(
        static_cast<ptrdiff_t>(defined_rows_) + defined_delta);
  } else {
    defined_rows_ = grouped_rows_;
  }
  return true;
}

bool Pli::operator==(const Pli& other) const {
  // Cluster-wise comparison: equality is over the partition's live rows,
  // never the storage layout, so two arenas with different slack (or an
  // arena and a vector twin) compare by content.
  if (num_rows_ != other.num_rows_) return false;
  const size_t n = num_clusters();
  if (n != other.num_clusters()) return false;
  for (size_t c = 0; c < n; ++c) {
    if (!(cluster(c) == other.cluster(c))) return false;
  }
  return true;
}

size_t Pli::MemoryBytes() const {
  size_t bytes = sizeof(Pli);
  if (storage_ == Storage::kArena) {
    bytes += arena_.capacity() * sizeof(RowId) +
             offsets_.capacity() * sizeof(uint32_t) +
             sizes_.capacity() * sizeof(uint32_t);
  } else {
    bytes += vclusters_.capacity() * sizeof(Cluster);
    for (const Cluster& c : vclusters_) bytes += c.capacity() * sizeof(RowId);
  }
  return bytes;
}

bool Pli::CheckInvariants(std::string* error) const {
  auto fail = [&](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };
  const size_t n = num_clusters();
  if (storage_ == Storage::kArena) {
    if (!offsets_.empty() && offsets_.front() != 0) {
      return fail("arena offsets must start at 0");
    }
    if (sizes_.size() != n) {
      return fail(StrCat("arena sizes count ", sizes_.size(),
                         " != num_clusters ", n));
    }
    for (size_t c = 0; c < n; ++c) {
      if (offsets_[c + 1] < offsets_[c] + 2) {
        return fail(StrCat("slot boundaries not monotone with >=2-capacity "
                           "slots at ",
                           c, ": ", offsets_[c], " -> ", offsets_[c + 1]));
      }
      if (sizes_[c] > offsets_[c + 1] - offsets_[c]) {
        return fail(StrCat("cluster ", c, " live size ", sizes_[c],
                           " exceeds slot capacity ",
                           offsets_[c + 1] - offsets_[c]));
      }
    }
    if (!offsets_.empty() && offsets_.back() != arena_.size()) {
      return fail(StrCat("arena size ", arena_.size(),
                         " != last slot boundary ", offsets_.back()));
    }
    if (!vclusters_.empty()) return fail("arena mode carries vector clusters");
  } else if (!arena_.empty() || !offsets_.empty() || !sizes_.empty()) {
    return fail("vector mode carries arena storage");
  }
  size_t grouped = 0;
  RowId prev_front = 0;
  for (size_t c = 0; c < n; ++c) {
    const ClusterView view = cluster(c);
    if (view.size() < 2) return fail(StrCat("stripped cluster at ", c));
    if (c > 0 && view.front() <= prev_front) {
      return fail(StrCat("cluster fronts not ascending at ", c));
    }
    prev_front = view.front();
    for (size_t i = 0; i < view.size(); ++i) {
      if (view[i] >= num_rows_) {
        return fail(StrCat("row ", view[i], " out of range"));
      }
      if (i > 0 && view[i] <= view[i - 1]) {
        return fail(StrCat("rows not ascending in cluster ", c));
      }
    }
    grouped += view.size();
  }
  if (grouped != grouped_rows_) {
    return fail(StrCat("grouped_rows ", grouped_rows_, " != actual ",
                       grouped));
  }
  if (exact_defined_) {
    if (defined_rows_ < grouped_rows_ || defined_rows_ > num_rows_) {
      return fail(StrCat("defined_rows ", defined_rows_,
                         " inconsistent with grouped ", grouped_rows_,
                         " / num_rows ", num_rows_));
    }
  } else if (defined_rows_ != grouped_rows_) {
    return fail(StrCat("product defined_rows ", defined_rows_,
                       " != grouped_rows ", grouped_rows_));
  }
  return true;
}

}  // namespace flexrel
