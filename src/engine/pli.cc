#include "engine/pli.h"

#include <algorithm>
#include <unordered_map>

#include "relational/value.h"

namespace flexrel {

namespace {

// Clusters ascend by first row id so that structurally equal partitions are
// representationally equal regardless of hash-map iteration order.
void SortByFirstRow(std::vector<Pli::Cluster>* clusters) {
  std::sort(clusters->begin(), clusters->end(),
            [](const Pli::Cluster& a, const Pli::Cluster& b) {
              return a.front() < b.front();
            });
}

}  // namespace

void Pli::Canonicalize() {
  SortByFirstRow(&clusters_);
  grouped_rows_ = 0;
  for (const Cluster& c : clusters_) grouped_rows_ += c.size();
}

Pli Pli::Build(const std::vector<Tuple>& rows, AttrId attr) {
  Pli out;
  out.num_rows_ = rows.size();
  std::unordered_map<Value, Cluster, ValueHash> groups;
  groups.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (const Value* v = rows[i].Get(attr)) {
      groups[*v].push_back(static_cast<RowId>(i));
      ++out.defined_rows_;
    }
  }
  for (auto& [value, cluster] : groups) {
    (void)value;
    if (cluster.size() >= 2) out.clusters_.push_back(std::move(cluster));
  }
  out.Canonicalize();
  return out;
}

Pli Pli::Build(const std::vector<Tuple>& rows, const AttrSet& attrs) {
  Pli out;
  out.num_rows_ = rows.size();
  std::unordered_map<Tuple, Cluster, TupleHash> groups;
  groups.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (!rows[i].DefinedOn(attrs)) continue;
    groups[rows[i].Project(attrs)].push_back(static_cast<RowId>(i));
    ++out.defined_rows_;
  }
  for (auto& [key, cluster] : groups) {
    (void)key;
    if (cluster.size() >= 2) out.clusters_.push_back(std::move(cluster));
  }
  out.Canonicalize();
  return out;
}

std::vector<int32_t> Pli::ProbeTable() const {
  std::vector<int32_t> probe(num_rows_, kNoCluster);
  for (size_t c = 0; c < clusters_.size(); ++c) {
    for (RowId row : clusters_[c]) probe[row] = static_cast<int32_t>(c);
  }
  return probe;
}

Pli Pli::Intersect(const Pli& other) const {
  return IntersectWithProbe(other.ProbeTable());
}

Pli Pli::IntersectWithProbe(const std::vector<int32_t>& probe) const {
  Pli out;
  out.num_rows_ = num_rows_;
  // Refine each of our clusters by the other partition's cluster ids. Rows
  // the other partition dropped (undefined or partnerless there) stay
  // partnerless in the product and are dropped here too.
  std::unordered_map<int32_t, Cluster> refined;
  for (const Cluster& cluster : clusters_) {
    refined.clear();
    for (RowId row : cluster) {
      int32_t oc = probe[row];
      if (oc != kNoCluster) refined[oc].push_back(row);
    }
    for (auto& [oc, sub] : refined) {
      (void)oc;
      if (sub.size() >= 2) out.clusters_.push_back(std::move(sub));
    }
  }
  out.Canonicalize();
  // Stripped singletons of the operands are unrecoverable here, so the
  // defined-row count degrades to the grouped-row lower bound.
  out.defined_rows_ = out.grouped_rows_;
  return out;
}

size_t Pli::MemoryBytes() const {
  size_t bytes = sizeof(Pli) + clusters_.capacity() * sizeof(Cluster);
  for (const Cluster& c : clusters_) bytes += c.capacity() * sizeof(RowId);
  return bytes;
}

}  // namespace flexrel
