#include "engine/pli.h"

#include <algorithm>
#include <unordered_map>

#include "relational/value.h"

namespace flexrel {

namespace {

// Clusters ascend by first row id so that structurally equal partitions are
// representationally equal regardless of hash-map iteration order.
void SortByFirstRow(std::vector<Pli::Cluster>* clusters) {
  std::sort(clusters->begin(), clusters->end(),
            [](const Pli::Cluster& a, const Pli::Cluster& b) {
              return a.front() < b.front();
            });
}

}  // namespace

void Pli::Canonicalize() {
  SortByFirstRow(&clusters_);
  grouped_rows_ = 0;
  for (const Cluster& c : clusters_) grouped_rows_ += c.size();
}

Pli Pli::Build(const std::vector<Tuple>& rows, AttrId attr) {
  Pli out;
  out.num_rows_ = rows.size();
  std::unordered_map<Value, Cluster, ValueHash> groups;
  groups.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (const Value* v = rows[i].Get(attr)) {
      groups[*v].push_back(static_cast<RowId>(i));
      ++out.defined_rows_;
    }
  }
  for (auto& [value, cluster] : groups) {
    (void)value;
    if (cluster.size() >= 2) out.clusters_.push_back(std::move(cluster));
  }
  out.Canonicalize();
  return out;
}

Pli Pli::Build(const std::vector<Tuple>& rows, const AttrSet& attrs) {
  Pli out;
  out.num_rows_ = rows.size();
  std::unordered_map<Tuple, Cluster, TupleHash> groups;
  groups.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (!rows[i].DefinedOn(attrs)) continue;
    groups[rows[i].Project(attrs)].push_back(static_cast<RowId>(i));
    ++out.defined_rows_;
  }
  for (auto& [key, cluster] : groups) {
    (void)key;
    if (cluster.size() >= 2) out.clusters_.push_back(std::move(cluster));
  }
  out.Canonicalize();
  return out;
}

std::vector<int32_t> Pli::ProbeTable() const {
  std::vector<int32_t> probe(num_rows_, kNoCluster);
  for (size_t c = 0; c < clusters_.size(); ++c) {
    for (RowId row : clusters_[c]) probe[row] = static_cast<int32_t>(c);
  }
  return probe;
}

Pli Pli::Intersect(const Pli& other) const {
  return IntersectWithProbe(other.ProbeTable());
}

Pli Pli::IntersectWithProbe(const std::vector<int32_t>& probe) const {
  Pli out;
  out.num_rows_ = num_rows_;
  out.exact_defined_ = false;
  // Refine each of our clusters by the other partition's cluster ids. Rows
  // the other partition dropped (undefined or partnerless there) stay
  // partnerless in the product and are dropped here too. Refinement is
  // three streaming passes per cluster over flat scratch arrays indexed by
  // the (dense) probe ids — count, prefix-offset, fill — so the only
  // allocations are the exactly-sized surviving sub-clusters; singletons
  // and hash maps never allocate.
  int32_t num_other = 0;
  for (int32_t oc : probe) num_other = std::max(num_other, oc + 1);
  std::vector<uint32_t> count(static_cast<size_t>(num_other), 0);
  std::vector<uint32_t> offset(static_cast<size_t>(num_other), 0);
  std::vector<int32_t> touched;
  std::vector<RowId> arena;
  for (const Cluster& cluster : clusters_) {
    touched.clear();
    for (RowId row : cluster) {
      int32_t oc = probe[row];
      if (oc == kNoCluster) continue;
      if (count[static_cast<size_t>(oc)]++ == 0) touched.push_back(oc);
    }
    uint32_t total = 0;
    for (int32_t oc : touched) {
      offset[static_cast<size_t>(oc)] = total;
      total += count[static_cast<size_t>(oc)];
    }
    arena.resize(total);  // capacity persists across clusters
    for (RowId row : cluster) {
      int32_t oc = probe[row];
      if (oc == kNoCluster) continue;
      arena[offset[static_cast<size_t>(oc)]++] = row;
    }
    for (int32_t oc : touched) {
      uint32_t n = count[static_cast<size_t>(oc)];
      uint32_t end = offset[static_cast<size_t>(oc)];
      if (n >= 2) {
        out.clusters_.emplace_back(arena.begin() + (end - n),
                                   arena.begin() + end);
      }
      count[static_cast<size_t>(oc)] = 0;
    }
  }
  out.Canonicalize();
  // Stripped singletons of the operands are unrecoverable here, so the
  // defined-row count degrades to the grouped-row lower bound.
  out.defined_rows_ = out.grouped_rows_;
  return out;
}

namespace {

constexpr size_t kNoIndex = static_cast<size_t>(-1);

// The canonical-order insertion point for a cluster fronted by `front`:
// the single comparator behind every by-front search, so the canonical key
// lives in one place.
std::vector<Pli::Cluster>::iterator LowerBoundByFront(
    std::vector<Pli::Cluster>* clusters, Pli::RowId front) {
  return std::lower_bound(clusters->begin(), clusters->end(), front,
                          [](const Pli::Cluster& c, Pli::RowId f) {
                            return c.front() < f;
                          });
}

// Index of the cluster whose front() equals `front`, or kNoIndex.
size_t FindClusterByFront(std::vector<Pli::Cluster>* clusters,
                          Pli::RowId front) {
  auto it = LowerBoundByFront(clusters, front);
  if (it == clusters->end() || it->front() != front) return kNoIndex;
  return static_cast<size_t>(it - clusters->begin());
}

// Moves clusters[index], whose front row changed, back to its canonical
// position.
void RepositionCluster(std::vector<Pli::Cluster>* clusters, size_t index) {
  Pli::Cluster moved = std::move((*clusters)[index]);
  clusters->erase(clusters->begin() + static_cast<ptrdiff_t>(index));
  clusters->insert(LowerBoundByFront(clusters, moved.front()),
                   std::move(moved));
}

// First element of `agreeing` other than `row` — the front of the cluster
// the partners currently form. Requires at least one such element.
Pli::RowId PartnerFront(const Pli::Cluster& agreeing, Pli::RowId row,
                        bool includes_row) {
  if (includes_row && agreeing.front() == row) return agreeing[1];
  return agreeing.front();
}

}  // namespace

bool Pli::ApplyInsert(RowId row, const Cluster& agreeing, bool includes_row) {
  const size_t others = agreeing.size() - (includes_row ? 1 : 0);
  return ApplyInsertCore(
      row, others, others == 0 ? 0 : PartnerFront(agreeing, row, includes_row));
}

bool Pli::ApplyInsertAllRows(RowId row) {
  // Every existing row (0..row-1) agrees, so the partners' cluster — when
  // there is one — is fronted by row 0. Nothing to materialize.
  return ApplyInsertCore(row, /*others=*/row, /*partner_front=*/0);
}

// Validation precedes every mutation in the patch bodies below: a false
// return is a true no-op, so a caller may keep using the partition (though
// PliCache drops refused entries anyway).
bool Pli::ApplyInsertCore(RowId row, size_t others, RowId partner_front) {
  if (others == 1) {
    // Un-strip the lone partner: a fresh two-row cluster appears.
    Cluster fresh = {std::min(partner_front, row),
                     std::max(partner_front, row)};
    auto it = LowerBoundByFront(&clusters_, fresh.front());
    if (it != clusters_.end() && it->front() == fresh.front()) return false;
    clusters_.insert(it, std::move(fresh));
    grouped_rows_ += 2;
  } else if (others >= 2) {
    // The partners already form a cluster; `row` joins it.
    size_t index = FindClusterByFront(&clusters_, partner_front);
    if (index == kNoIndex) return false;
    Cluster& cluster = clusters_[index];
    if (cluster.size() != others) return false;
    auto pos = std::lower_bound(cluster.begin(), cluster.end(), row);
    if (pos != cluster.end() && *pos == row) return false;
    cluster.insert(pos, row);
    ++grouped_rows_;
    if (row < partner_front) RepositionCluster(&clusters_, index);
  }
  // others == 0: partnerless — the stripped partition records nothing, and
  // intersection products do not even count the row as defined.
  if (exact_defined_) {
    ++defined_rows_;
  } else {
    defined_rows_ = grouped_rows_;
  }
  return true;
}

bool Pli::ApplyErase(RowId row, const Cluster& agreeing, bool includes_row) {
  const size_t others = agreeing.size() - (includes_row ? 1 : 0);
  if (others > 0) {
    RowId partner_front = PartnerFront(agreeing, row, includes_row);
    RowId front = std::min(partner_front, row);
    size_t index = FindClusterByFront(&clusters_, front);
    if (index == kNoIndex) return false;
    Cluster& cluster = clusters_[index];
    if (cluster.size() != others + 1) return false;
    if (others == 1) {
      // The partner drops back to a stripped singleton; the cluster
      // dissolves.
      if (cluster.back() != std::max(partner_front, row)) return false;
      clusters_.erase(clusters_.begin() + static_cast<ptrdiff_t>(index));
      grouped_rows_ -= 2;
    } else {
      auto pos = std::lower_bound(cluster.begin(), cluster.end(), row);
      if (pos == cluster.end() || *pos != row) return false;
      cluster.erase(pos);
      --grouped_rows_;
      if (row == front) RepositionCluster(&clusters_, index);
    }
  }
  // others == 0: the row was a stripped singleton.
  if (exact_defined_) {
    --defined_rows_;
  } else {
    defined_rows_ = grouped_rows_;
  }
  return true;
}

bool Pli::ApplyBatch(std::vector<ClusterPatch> patches,
                     ptrdiff_t defined_delta) {
  // Pass 1: validate and locate every removal against the current
  // structure before mutating anything, so a refusal leaves the partition
  // untouched.
  std::vector<size_t> located(patches.size(), kNoIndex);
  ptrdiff_t grouped_delta = 0;
  for (size_t p = 0; p < patches.size(); ++p) {
    const ClusterPatch& patch = patches[p];
    if (patch.old_size >= 2) {
      size_t index = FindClusterByFront(&clusters_, patch.old_front);
      if (index == kNoIndex || clusters_[index].size() != patch.old_size) {
        return false;
      }
      located[p] = index;
      grouped_delta -= static_cast<ptrdiff_t>(patch.old_size);
    }
    if (patch.new_rows.size() >= 2) {
      grouped_delta += static_cast<ptrdiff_t>(patch.new_rows.size());
    }
  }
  // Pass 2: a replacement that keeps its front row keeps its canonical
  // position too — swap it in place (the overwhelmingly common case for
  // fat clusters, whose lowest row id rarely moves). Only patches that
  // dissolve, appear, or change front go through the structural merge.
  std::vector<size_t> removed;
  std::vector<Cluster> additions;
  for (size_t p = 0; p < patches.size(); ++p) {
    ClusterPatch& patch = patches[p];
    const bool has_new = patch.new_rows.size() >= 2;
    if (located[p] != kNoIndex && has_new &&
        patch.new_rows.front() == patch.old_front) {
      clusters_[located[p]] = std::move(patch.new_rows);
    } else {
      if (located[p] != kNoIndex) removed.push_back(located[p]);
      if (has_new) additions.push_back(std::move(patch.new_rows));
    }
  }
  if (!removed.empty() || !additions.empty()) {
    // One sorted merge of the surviving clusters with the additions —
    // this is what makes a 64-mutation flush one splice instead of 64
    // cluster surgeries.
    std::sort(removed.begin(), removed.end());
    SortByFirstRow(&additions);
    std::vector<Cluster> merged;
    merged.reserve(clusters_.size() + additions.size() - removed.size());
    size_t next_removed = 0;  // index into `removed`
    size_t next_add = 0;      // index into `additions`
    for (size_t c = 0; c < clusters_.size(); ++c) {
      if (next_removed < removed.size() && removed[next_removed] == c) {
        ++next_removed;
        continue;
      }
      while (next_add < additions.size() &&
             additions[next_add].front() < clusters_[c].front()) {
        merged.push_back(std::move(additions[next_add++]));
      }
      merged.push_back(std::move(clusters_[c]));
    }
    while (next_add < additions.size()) {
      merged.push_back(std::move(additions[next_add++]));
    }
    clusters_ = std::move(merged);
  }
  grouped_rows_ = static_cast<size_t>(
      static_cast<ptrdiff_t>(grouped_rows_) + grouped_delta);
  if (exact_defined_) {
    defined_rows_ = static_cast<size_t>(
        static_cast<ptrdiff_t>(defined_rows_) + defined_delta);
  } else {
    defined_rows_ = grouped_rows_;
  }
  return true;
}

size_t Pli::MemoryBytes() const {
  size_t bytes = sizeof(Pli) + clusters_.capacity() * sizeof(Cluster);
  for (const Cluster& c : clusters_) bytes += c.capacity() * sizeof(RowId);
  return bytes;
}

}  // namespace flexrel
