#include "engine/hybrid_discovery.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

#include "core/closure.h"
#include "engine/discovery_internal.h"
#include "telemetry/telemetry.h"
#include "util/fault.h"

namespace flexrel {

namespace {

using discovery_internal::kMinWorkForAutoThreads;
using discovery_internal::ParallelFor;
using discovery_internal::ResolveThreads;

// min(C(m, k), cap) without overflow — only the comparison against `cap`
// matters, never the exact count.
size_t ChooseCapped(size_t m, size_t k, size_t cap) {
  if (k > m) return 0;
  size_t result = 1;
  for (size_t i = 1; i <= k; ++i) {
    if (result > cap) return cap;
    result = result * (m - k + i) / i;
  }
  return result < cap ? result : cap;
}

// Invokes fn(AttrSet) for every size-k subset of `ids` (sorted), in the
// canonical combination order LatticeLevel uses.
template <typename Fn>
void ForEachSubset(const std::vector<AttrId>& ids, size_t k, const Fn& fn) {
  if (k == 0 || k > ids.size()) return;
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  std::vector<AttrId> current;
  while (true) {
    current.clear();
    for (size_t i : idx) current.push_back(ids[i]);
    fn(AttrSet::FromIds(current));
    size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + ids.size() - k) break;
    }
    if (idx[i] == i + ids.size() - k) break;
    ++idx[i];
    for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

}  // namespace

PairEvidence ComparePair(const Tuple& a, const Tuple& b) {
  // The merge emits ids in ascending order, so FromIds is a straight move
  // — no per-id sorted insertion.
  std::vector<AttrId> agree;
  std::vector<AttrId> diff;
  const auto& fa = a.fields();
  const auto& fb = b.fields();
  size_t i = 0;
  size_t j = 0;
  while (i < fa.size() && j < fb.size()) {
    if (fa[i].first < fb[j].first) {
      diff.push_back(fa[i].first);
      ++i;
    } else if (fb[j].first < fa[i].first) {
      diff.push_back(fb[j].first);
      ++j;
    } else {
      if (fa[i].second == fb[j].second) agree.push_back(fa[i].first);
      ++i;
      ++j;
    }
  }
  for (; i < fa.size(); ++i) diff.push_back(fa[i].first);
  for (; j < fb.size(); ++j) diff.push_back(fb[j].first);
  PairEvidence out;
  out.agree = AttrSet::FromIds(std::move(agree));
  out.presence_diff = AttrSet::FromIds(std::move(diff));
  return out;
}

PairEvidence ComparePairCoded(const CodeColumn::Code* matrix,
                              const std::vector<AttrId>& attrs,
                              CodeColumn::RowId a, CodeColumn::RowId b) {
  // `attrs` is ascending (the sampler projects the matrix over AttrSet
  // iteration), so the id vectors build sorted. The two row slices are
  // contiguous: one pair costs a linear walk over 2 × attrs.size() words.
  const size_t width = attrs.size();
  const CodeColumn::Code* ra = matrix + a * width;
  const CodeColumn::Code* rb = matrix + b * width;
  std::vector<AttrId> agree;
  std::vector<AttrId> diff;
  for (size_t k = 0; k < width; ++k) {
    const CodeColumn::Code ca = ra[k];
    const CodeColumn::Code cb = rb[k];
    const bool has_a = ca != CodeColumn::kMissingCode;
    const bool has_b = cb != CodeColumn::kMissingCode;
    if (has_a != has_b) {
      diff.push_back(attrs[k]);
    } else if (has_a && ca == cb) {
      // Code equality ⇔ Value equality within one column; the reserved
      // null code makes null-equals-null fall out for free.
      agree.push_back(attrs[k]);
    }
  }
  PairEvidence out;
  out.agree = AttrSet::FromIds(std::move(agree));
  out.presence_diff = AttrSet::FromIds(std::move(diff));
  return out;
}

size_t EvidenceStore::KeyHash::operator()(const PairEvidence& e) const {
  size_t h = AttrSetHash{}(e.agree);
  // splitmix-style combine so (agree, presence_diff) don't cancel.
  h ^= AttrSetHash{}(e.presence_diff) + 0x9e3779b97f4a7c15ull + (h << 6) +
       (h >> 2);
  return h;
}

bool EvidenceStore::Add(const PairEvidence& e) {
  auto [it, inserted] = seen_.try_emplace(e, true);
  (void)it;
  if (inserted) entries_.push_back(e);
  return inserted;
}

constexpr size_t kNoCandidate = static_cast<size_t>(-1);
constexpr uint64_t PackPair(AttrId a, AttrId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

CandidateFrontier::CandidateFrontier(std::vector<AttrSet> candidates,
                                     AttrSet universe, Semantics semantics)
    : candidates_(std::move(candidates)),
      universe_(std::move(universe)),
      semantics_(semantics) {
  bounds_.assign(candidates_.size(), universe_);
  level_ = candidates_.empty() ? 0 : candidates_.front().size();
  if (level_ == 1) {
    AttrId max_id = 0;
    for (const AttrSet& c : candidates_) max_id = std::max(max_id, c.ids()[0]);
    attr_index_.assign(static_cast<size_t>(max_id) + 1, kNoCandidate);
    for (size_t i = 0; i < candidates_.size(); ++i) {
      attr_index_[candidates_[i].ids()[0]] = i;
    }
  } else if (level_ == 2) {
    pair_index_.reserve(candidates_.size());
    for (size_t i = 0; i < candidates_.size(); ++i) {
      const std::vector<AttrId>& ids = candidates_[i].ids();
      pair_index_[PackPair(ids[0], ids[1])] = i;
    }
  } else {
    index_.reserve(candidates_.size());
    for (size_t i = 0; i < candidates_.size(); ++i) index_[candidates_[i]] = i;
  }
}

void CandidateFrontier::Apply(const PairEvidence& e) {
  // Candidates live in `universe_`, so only the agree set's restriction to
  // it can contain determinants this evidence speaks about.
  AttrSet agree = e.agree.Intersect(universe_);
  if (agree.size() < level_) return;
  auto tighten = [&](size_t i) {
    bounds_[i] = semantics_ == Semantics::kFd
                     ? bounds_[i].Intersect(e.agree)
                     : bounds_[i].Minus(e.presence_diff);
  };
  const std::vector<AttrId>& ids = agree.ids();
  // Either enumerate the affected candidates out of the agree set or
  // subset-test every candidate against it — whichever touches fewer.
  // Levels 1 and 2 enumerate through flat indexes, no AttrSet churn.
  if (level_ == 1) {
    for (AttrId a : ids) {
      if (a < attr_index_.size() && attr_index_[a] != kNoCandidate) {
        tighten(attr_index_[a]);
      }
    }
    return;
  }
  if (level_ == 2) {
    if (ids.size() * (ids.size() - 1) / 2 < 2 * candidates_.size()) {
      for (size_t i = 0; i < ids.size(); ++i) {
        for (size_t j = i + 1; j < ids.size(); ++j) {
          auto it = pair_index_.find(PackPair(ids[i], ids[j]));
          if (it != pair_index_.end()) tighten(it->second);
        }
      }
    } else {
      for (size_t i = 0; i < candidates_.size(); ++i) {
        if (candidates_[i].IsSubsetOf(agree)) tighten(i);
      }
    }
    return;
  }
  if (ChooseCapped(agree.size(), level_, candidates_.size()) <
      candidates_.size()) {
    ForEachSubset(ids, level_, [&](const AttrSet& lhs) {
      auto it = index_.find(lhs);
      if (it != index_.end()) tighten(it->second);
    });
  } else {
    for (size_t i = 0; i < candidates_.size(); ++i) {
      if (candidates_[i].IsSubsetOf(agree)) tighten(i);
    }
  }
}

void CandidateFrontier::Tighten(const EvidenceStore& store) {
  const std::vector<PairEvidence>& entries = store.entries();
  for (; applied_ < entries.size(); ++applied_) Apply(entries[applied_]);
}

AttrSet CandidateFrontier::BoundMinusLhs(size_t i) const {
  return bounds_[i].Minus(candidates_[i]);
}

bool CandidateFrontier::Survives(size_t i) const {
  return !bounds_[i].IsSubsetOf(candidates_[i]);
}

size_t CandidateFrontier::survivor_count() const {
  size_t n = 0;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (Survives(i)) ++n;
  }
  return n;
}

ClusterPairSampler::ClusterPairSampler(PliCache* cache,
                                       const AttrSet& universe)
    : cache_(cache), rows_(cache->rows()) {
  plis_.reserve(universe.size());
  distance_.assign(universe.size(), 1);
  // Code columns for the coded pair compare — all or nothing, so a round
  // never mixes coded and Value comparisons. CodeColumnFor is null exactly
  // when the cache runs value-keyed (PliCacheOptions::use_codes = false).
  // Columns are fetched BEFORE the partition warm-up below: a materialized
  // column turns each single-attribute Get into a counting sort over its
  // codes, so the instance is hashed once per attribute, not twice. The
  // columns are then projected into one row-major matrix so each sampled
  // pair reads two contiguous slices instead of one scattered cache line
  // per attribute — the access pattern is pair-at-a-time, not columnar.
  std::vector<std::shared_ptr<const CodeColumn>> columns;
  columns.reserve(universe.size());
  for (AttrId a : universe) {
    std::shared_ptr<const CodeColumn> column = cache_->CodeColumnFor(a);
    if (column == nullptr) {
      columns.clear();
      break;
    }
    columns.push_back(std::move(column));
  }
  if (!columns.empty()) {
    const size_t width = columns.size();
    code_attrs_.reserve(width);
    code_matrix_.resize(rows_.size() * width);
    for (size_t k = 0; k < width; ++k) {
      code_attrs_.push_back(columns[k]->attr());
      const std::vector<CodeColumn::Code>& codes = columns[k]->codes();
      for (size_t r = 0; r < rows_.size(); ++r) {
        code_matrix_[r * width + k] = codes[r];
      }
    }
  }
  // Single-attribute partitions are exactly what level 1 of any walk needs
  // first; warming them here (after the columns, so each is a counting
  // sort, not a re-hash) costs nothing extra and pins them for the
  // widening rounds (COW snapshot reads thereafter).
  for (AttrId a : universe) plis_.push_back(cache_->Get(AttrSet::Of(a)));
}

bool ClusterPairSampler::exhausted() const {
  for (size_t i = 0; i < plis_.size(); ++i) {
    for (Pli::ClusterView cluster : plis_[i]->clusters()) {
      if (cluster.size() > distance_[i]) return false;
    }
  }
  return true;
}

ClusterPairSampler::RoundStats ClusterPairSampler::Round(EvidenceStore* store,
                                                         size_t num_threads) {
  telemetry::ScopedSpan span("discovery.sample");
  ++rounds_run_;
  struct AttrResult {
    std::vector<PairEvidence> evidence;
    uint64_t pairs = 0;
  };
  std::vector<AttrResult> results(plis_.size());
  size_t threads = ResolveThreads(num_threads, plis_.size());
  // Per-attribute pair budget: a round costs O(rows) comparisons total no
  // matter how wide the universe, and the floor keeps small instances
  // exhaustive (the widening soak's full-coverage contract).
  constexpr size_t kMinAttrPairQuota = 64;
  const size_t quota =
      std::max(kMinAttrPairQuota,
               2 * rows_.size() / std::max<size_t>(1, plis_.size()));
  ParallelFor(plis_.size(), threads, [&](size_t i) {
    AttrResult& r = results[i];
    const size_t d = distance_[i];
    Pli::ClusterRange clusters = plis_[i]->clusters();
    const size_t num_clusters = clusters.size();
    // Rotate the walk round over round so a truncated attribute spreads
    // its budget across clusters instead of resampling a prefix.
    const size_t start = num_clusters == 0 ? 0 : rounds_run_ % num_clusters;
    for (size_t c = 0; c < num_clusters && r.pairs < quota; ++c) {
      Pli::ClusterView cluster = clusters[(start + c) % num_clusters];
      if (cluster.size() <= d) continue;
      for (size_t j = 0; j + d < cluster.size() && r.pairs < quota; ++j) {
        r.evidence.push_back(
            code_attrs_.empty()
                ? ComparePair(rows_[cluster[j]], rows_[cluster[j + d]])
                : ComparePairCoded(code_matrix_.data(), code_attrs_,
                                   cluster[j], cluster[j + d]));
        ++r.pairs;
      }
    }
  });
  RoundStats stats;
  // Merge on the calling thread, in attribute order: the store needs no
  // lock and a round's outcome is deterministic for a fixed instance.
  for (AttrResult& r : results) {
    stats.pairs += r.pairs;
    for (const PairEvidence& e : r.evidence) {
      if (store->Add(e)) ++stats.fresh;
    }
  }
  for (size_t& d : distance_) ++d;
  stats.efficiency =
      stats.pairs == 0
          ? 0.0
          : static_cast<double>(stats.fresh) / static_cast<double>(stats.pairs);
  FLEXREL_TELEMETRY_COUNT("engine.discovery.sample_rounds", 1);
  FLEXREL_TELEMETRY_COUNT("engine.discovery.sampled_pairs", stats.pairs);
  FLEXREL_TELEMETRY_COUNT("engine.discovery.sample_evidence", stats.fresh);
  if (telemetry::Enabled()) {
    FLEXREL_TELEMETRY_GAUGE_SET("engine.discovery.sample_hit_rate_pct",
                                static_cast<int64_t>(stats.efficiency * 100));
    span.SetDetail("round=" + std::to_string(rounds_run_) +
                   " pairs=" + std::to_string(stats.pairs) +
                   " fresh=" + std::to_string(stats.fresh) + " store=" +
                   std::to_string(store->size()));
  }
  return stats;
}

namespace {

// The sample-then-validate loop shared by the AD and FD runs. Mirrors
// parallel_discovery.cc's LevelWise stage for stage — same enumeration
// order, same sequential prune/emit — except that candidates whose
// evidence bound is already trivial never reach `maximal_rhs`.
template <typename Dep, typename RhsFn, typename PrunedFn, typename EmitFn>
std::vector<Dep> HybridRun(DependencyValidator* validator,
                           const AttrSet& universe,
                           const EngineDiscoveryOptions& options,
                           CandidateFrontier::Semantics semantics,
                           const RhsFn& maximal_rhs, const PrunedFn& pruned,
                           const EmitFn& emit, DiscoveryRunInfo* info) {
  discovery_internal::ResetDiscoveryRunGauges();
  std::vector<Dep> out;
  DependencySet found;
  const size_t num_rows = validator->row_attrs().size();
  const ExecContext* exec = options.exec;
  DiscoveryRunInfo run;

  EvidenceStore store;
  ClusterPairSampler sampler(validator->cache(), universe);
  const size_t sample_threads =
      ResolveThreads(options.num_threads, universe.size());
  auto may_sample = [&] {
    return sampler.rounds_run() < options.hybrid_max_rounds &&
           !sampler.exhausted() && CheckExec(exec).ok();
  };
  // A short seeding burst bootstraps the store; beyond it, the per-level
  // adaptive loops below buy further rounds only when the evidence leaves
  // a level mostly standing, so sampling effort tracks what validation
  // would otherwise cost.
  constexpr size_t kSeedRounds = 2;
  while (sampler.rounds_run() < kSeedRounds && may_sample()) {
    ClusterPairSampler::RoundStats stats =
        sampler.Round(&store, sample_threads);
    if (stats.pairs == 0 || stats.efficiency < options.hybrid_min_efficiency) {
      break;
    }
  }

  for (size_t k = 1; k <= options.max_lhs_size && k <= universe.size(); ++k) {
    if (Status st = CheckExec(exec); !st.ok()) {
      run.status = std::move(st);
      run.partial = true;
      break;
    }
    telemetry::ScopedSpan level_span("discovery.level");
    FLEXREL_FAULT_INJECT("discovery.level");
    const bool traced = telemetry::Enabled();
    const uint64_t level_start = traced ? telemetry::NowNs() : 0;
    CandidateFrontier frontier(LatticeLevel(universe, k), universe, semantics);
    frontier.Tighten(store);
    // The adaptive switch back: while the evidence leaves most of the
    // level standing and sampling still yields fresh evidence at a good
    // rate, a round costs less than validating the un-falsified bulk.
    while (static_cast<double>(frontier.survivor_count()) >
               options.hybrid_refine_fraction *
                   static_cast<double>(frontier.candidates().size()) &&
           may_sample()) {
      ClusterPairSampler::RoundStats stats =
          sampler.Round(&store, sample_threads);
      frontier.Tighten(store);
      if (stats.pairs == 0 ||
          stats.efficiency < options.hybrid_min_efficiency) {
        break;
      }
    }

    const std::vector<AttrSet>& candidates = frontier.candidates();
    std::vector<size_t> survivors;
    survivors.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (frontier.Survives(i)) survivors.push_back(i);
    }
    std::vector<AttrSet> rhss(candidates.size());
    size_t threads = ResolveThreads(options.num_threads, survivors.size());
    if (options.num_threads == 0 &&
        num_rows * survivors.size() < kMinWorkForAutoThreads) {
      threads = 1;
    }
    std::atomic<uint64_t> busy_ns{0};
    size_t wasted = 0;
    std::atomic<bool> stop{false};
    ParallelFor(survivors.size(), threads, [&](size_t j) {
      if (stop.load(std::memory_order_relaxed)) return;
      if (exec != nullptr && !exec->Check().ok()) {
        stop.store(true, std::memory_order_relaxed);
        return;
      }
      const size_t i = survivors[j];
      if (traced) {
        const uint64_t t0 = telemetry::NowNs();
        rhss[i] = maximal_rhs(candidates[i]);
        busy_ns.fetch_add(telemetry::NowNs() - t0, std::memory_order_relaxed);
      } else {
        rhss[i] = maximal_rhs(candidates[i]);
      }
    });
    // Sticky contexts never un-trip, so a re-check catches any trip the
    // workers saw (or one that raced past them): the in-flight level is
    // discarded whole, keeping the verified-prefix contract exact.
    if (Status st = CheckExec(exec); !st.ok()) {
      run.status = std::move(st);
      run.partial = true;
      discovery_internal::ResetDiscoveryRunGauges();
      break;
    }
    for (size_t i : survivors) {
      if (rhss[i].empty()) ++wasted;
    }
    size_t pruned_count = 0;
    size_t emitted_count = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (rhss[i].empty()) continue;  // skipped or exactly refuted
      Dep candidate{candidates[i], std::move(rhss[i])};
      if (options.minimal_only && pruned(found, candidate)) {
        ++pruned_count;
        continue;
      }
      ++emitted_count;
      out.push_back(candidate);
      emit(&found, std::move(candidate));
    }
    FLEXREL_TELEMETRY_COUNT("engine.discovery.levels", 1);
    FLEXREL_TELEMETRY_COUNT("engine.discovery.candidates", candidates.size());
    FLEXREL_TELEMETRY_COUNT("engine.discovery.frontier_validations",
                            survivors.size());
    FLEXREL_TELEMETRY_COUNT("engine.discovery.evidence_skips",
                            candidates.size() - survivors.size());
    FLEXREL_TELEMETRY_COUNT("engine.discovery.wasted_validations", wasted);
    FLEXREL_TELEMETRY_COUNT("engine.discovery.pruned", pruned_count);
    FLEXREL_TELEMETRY_COUNT("engine.discovery.emitted", emitted_count);
    if (traced) {
      const uint64_t wall = telemetry::NowNs() - level_start;
      const uint64_t util_pct =
          wall == 0 ? 0
                    : busy_ns.load(std::memory_order_relaxed) * 100 /
                          (wall * threads);
      FLEXREL_TELEMETRY_GAUGE_SET("engine.discovery.worker_utilization_pct",
                                  util_pct);
      level_span.SetDetail(
          "k=" + std::to_string(k) + " strategy=hybrid candidates=" +
          std::to_string(candidates.size()) +
          " validated=" + std::to_string(survivors.size()) +
          " pruned=" + std::to_string(pruned_count) +
          " emitted=" + std::to_string(emitted_count) +
          " threads=" + std::to_string(threads));
    }
    run.completed_levels = k;
  }
  if (info != nullptr) *info = std::move(run);
  return out;
}

}  // namespace

std::vector<AttrDep> HybridDiscoverAttrDeps(
    DependencyValidator* validator, const AttrSet& universe,
    const EngineDiscoveryOptions& options, DiscoveryRunInfo* info) {
  return HybridRun<AttrDep>(
      validator, universe, options, CandidateFrontier::Semantics::kAd,
      [&](const AttrSet& lhs) {
        return validator->MaximalAdRhs(lhs, universe);
      },
      [](const DependencySet& found, const AttrDep& candidate) {
        return Implies(found, candidate, AxiomSystem::kAdOnly);
      },
      [](DependencySet* found, AttrDep dep) { found->AddAd(std::move(dep)); },
      info);
}

std::vector<FuncDep> HybridDiscoverFuncDeps(
    DependencyValidator* validator, const AttrSet& universe,
    const EngineDiscoveryOptions& options, DiscoveryRunInfo* info) {
  return HybridRun<FuncDep>(
      validator, universe, options, CandidateFrontier::Semantics::kFd,
      [&](const AttrSet& lhs) {
        return validator->MaximalFdRhs(lhs, universe);
      },
      [](const DependencySet& found, const FuncDep& candidate) {
        return Implies(found, candidate);
      },
      [](DependencySet* found, FuncDep dep) { found->AddFd(std::move(dep)); },
      info);
}

}  // namespace flexrel
