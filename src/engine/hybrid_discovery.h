// HyFD-style hybrid dependency discovery: sample tuple pairs from within
// PLI clusters to falsify candidates cheaply, validate only the frontier
// the evidence could not kill.
//
// Level-wise discovery (parallel_discovery.cc) pays one exact partition
// scan per lattice candidate — |U| choose k scans per level — even when
// almost every candidate's maximal RHS is empty. But a single sampled
// tuple pair refutes attributes for *every* candidate it agrees on at
// once: if t1 and t2 agree on X (both defined, equal values), they share a
// cluster of partition(X), so
//
//   - any attribute outside their agree set cannot be in the maximal FD
//     RHS of X (the pair disagrees on value or presence), and
//   - any attribute exactly one of them carries cannot be in the maximal
//     AD RHS of X (the pair breaks the existence pattern).
//
// The loop alternates two phases. *Sampling* enumerates in-cluster pairs
// of the single-attribute partitions at progressively widening distances
// and dedupes the resulting (agree set, presence diff) evidence.
// *Validation* walks the lattice level by level: candidates whose
// evidence-derived RHS upper bound is already trivial are skipped outright
// — the bound is sound, so their exact RHS is provably empty — and the
// survivors go through the same exact `DependencyValidator` scans the
// level-wise walk uses, in the same enumeration order, with the same
// sequential minimality pruning. Results are therefore bit-identical to
// level-wise (and to core/discovery.cc's brute force); only the number of
// exact scans changes. The adaptive switch: while a level's surviving
// fraction stays high and sampling still produces fresh evidence at a
// good rate, another sampling round is cheaper than validating the
// un-falsified bulk, so the loop switches back before validating.
//
// Sampling rounds read partitions through the shared PliCache (lock-free
// COW snapshot reads) and fan out across the same worker pool as
// validation; evidence merging stays on the calling thread, so the store
// needs no synchronization and round results are deterministic.
//
// The building blocks (evidence store, candidate frontier, pair
// comparison) are exposed here for the unit tests in
// tests/engine_hybrid_discovery_test.cc; engine consumers go through
// EngineDiscover* with EngineDiscoveryOptions::strategy = kHybrid.

#ifndef FLEXREL_ENGINE_HYBRID_DISCOVERY_H_
#define FLEXREL_ENGINE_HYBRID_DISCOVERY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/dependency_set.h"
#include "engine/dictionary.h"
#include "engine/parallel_discovery.h"
#include "engine/validator.h"

namespace flexrel {

/// What one sampled tuple pair proves. `agree` is the set of attributes
/// both tuples carry with equal values (null equals null); `presence_diff`
/// the attributes exactly one of them carries. For every determinant
/// X ⊆ agree the pair witnesses: maximal-FD-RHS(X) ⊆ agree and
/// maximal-AD-RHS(X) ∩ presence_diff = ∅.
struct PairEvidence {
  AttrSet agree;
  AttrSet presence_diff;

  bool operator==(const PairEvidence& other) const {
    return agree == other.agree && presence_diff == other.presence_diff;
  }
};

/// The evidence of one pair: a single merge over the two sorted field
/// vectors, no hashing, no projection.
PairEvidence ComparePair(const Tuple& a, const Tuple& b);

/// Coded twin of ComparePair: two array loads and an integer compare per
/// attribute instead of a sorted-field merge over Values. `matrix` is a
/// row-major rows × attrs.size() code matrix (attrs ascending, one cell
/// per (row, universe attribute), CodeColumn::kMissingCode for absence) —
/// row-major so one pair compare touches two short contiguous slices
/// rather than one cache line per column. The evidence is *restricted to
/// the universe* — attributes outside it never appear in agree or
/// presence_diff — which is exactly what CandidateFrontier consumes
/// (bounds live inside the universe and Apply intersects the agree set
/// with it), so frontier tightening is identical to the Value path's;
/// only store dedup granularity and the derived efficiency stats can
/// shift. Discovery results stay bit-identical either way
/// (engine_dictionary_test soaks this).
PairEvidence ComparePairCoded(const CodeColumn::Code* matrix,
                              const std::vector<AttrId>& attrs,
                              CodeColumn::RowId a, CodeColumn::RowId b);

/// Deduplicating store of sampled pair evidence. Distinct pairs usually
/// produce few distinct evidence values (instances have few presence
/// shapes and agreement patterns), so the store — not the pair count — is
/// what bound computation scales with, and its saturation rate is the
/// sampler's stop signal. Entries are immutable once added and held in
/// insertion order, so consumers can apply just the suffix added since
/// they last looked.
class EvidenceStore {
 public:
  /// Records `e`; returns true when the store didn't already hold it (the
  /// "fresh evidence" signal sampling efficiency is measured by).
  bool Add(const PairEvidence& e);

  const std::vector<PairEvidence>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

 private:
  struct KeyHash {
    size_t operator()(const PairEvidence& e) const;
  };
  std::vector<PairEvidence> entries_;
  std::unordered_map<PairEvidence, bool, KeyHash> seen_;
};

/// Per-candidate maximal-RHS upper bounds for one lattice level, tightened
/// incrementally from the evidence store. Holding one level at a time —
/// never the full lattice — keeps hybrid discovery's working set
/// proportional to the widest level actually walked (the LHS-size bound),
/// matching the flat-memory shape of Desbordante's LHS-bounded storage
/// builders.
class CandidateFrontier {
 public:
  enum class Semantics { kFd, kAd };

  /// `candidates` is one LatticeLevel(universe, k) in canonical order; all
  /// bounds start at `universe` (no evidence applied yet).
  CandidateFrontier(std::vector<AttrSet> candidates, AttrSet universe,
                    Semantics semantics);

  /// Applies every store entry added since the last Tighten. Per entry,
  /// either the candidates ⊆ agree-set are enumerated directly (sparse
  /// agree sets) or all candidates are subset-tested against it (dense
  /// ones), whichever touches fewer candidates.
  void Tighten(const EvidenceStore& store);

  const std::vector<AttrSet>& candidates() const { return candidates_; }

  /// The evidence-derived upper bound on candidate i's non-trivial maximal
  /// RHS. Sound: the exact validator result is always a subset.
  AttrSet BoundMinusLhs(size_t i) const;

  /// False iff the bound is already trivial — the exact scan is provably
  /// empty and the candidate can be skipped.
  bool Survives(size_t i) const;

  size_t survivor_count() const;

 private:
  void Apply(const PairEvidence& e);

  std::vector<AttrSet> candidates_;
  std::vector<AttrSet> bounds_;
  std::unordered_map<AttrSet, size_t, AttrSetHash> index_;
  // Allocation-free enumeration arms for the two cheapest (and by far most
  // common) levels: attr id -> candidate index at k = 1, packed id pair ->
  // candidate index at k = 2. Deeper levels go through `index_`.
  std::vector<size_t> attr_index_;
  std::unordered_map<uint64_t, size_t> pair_index_;
  AttrSet universe_;
  Semantics semantics_;
  size_t level_ = 0;
  size_t applied_ = 0;  // store entries consumed so far
};

/// Enumerates tuple pairs from within the clusters of every
/// single-attribute partition at progressively widening distances: round r
/// of attribute a compares rows d_a apart in each cluster of partition
/// {a}, then widens d_a. Partitions come from the shared PliCache (COW
/// snapshot reads), pair comparison fans out across worker threads, and
/// evidence merges on the calling thread in attribute order, so rounds
/// are deterministic for a fixed instance.
class ClusterPairSampler {
 public:
  ClusterPairSampler(PliCache* cache, const AttrSet& universe);

  struct RoundStats {
    uint64_t pairs = 0;  ///< comparisons performed this round
    uint64_t fresh = 0;  ///< comparisons that taught the store something
    /// fresh / pairs — the telemetry-instrumented hit rate the adaptive
    /// loop steers by (0 when the round had no pairs left to compare).
    double efficiency = 0.0;
  };

  /// Runs one widening round into `store` using up to `num_threads`
  /// workers (0 = hardware concurrency). Rounds are budgeted: each
  /// attribute contributes at most a per-round pair quota (proportional to
  /// the instance size, never below a floor that keeps small instances
  /// exhaustive), with the cluster walk rotating round over round so
  /// truncated attributes spread their budget across clusters. A round
  /// therefore costs O(rows) comparisons however wide the universe is; the
  /// price is that on instances large relative to the budget some
  /// in-cluster pairs are never compared, which only loosens bounds
  /// (fewer skips), never correctness.
  RoundStats Round(EvidenceStore* store, size_t num_threads);

  /// True once every attribute's distance exceeds its largest cluster —
  /// every further round is empty.
  bool exhausted() const;

  size_t rounds_run() const { return rounds_run_; }

 private:
  PliCache* cache_;
  const std::vector<Tuple>& rows_;
  std::vector<std::shared_ptr<const Pli>> plis_;  // one per universe attr
  // Row-major rows × universe code matrix, projected once from the cache's
  // code columns when it runs the coded plane (PliCacheOptions::use_codes);
  // empty otherwise, and rounds fall back to the Value-merging ComparePair.
  std::vector<CodeColumn::Code> code_matrix_;
  std::vector<AttrId> code_attrs_;  // matrix column order (ascending)
  std::vector<size_t> distance_;  // next window per attr
  size_t rounds_run_ = 0;
};

/// The hybrid counterparts of EngineDiscoverAttrDeps / EngineDiscoverFuncDeps
/// over a caller-provided validator. Same results, same order; exact scans
/// only on the evidence-surviving frontier. EngineDiscover* dispatches here
/// when options.strategy == DiscoveryStrategy::kHybrid.
std::vector<AttrDep> HybridDiscoverAttrDeps(
    DependencyValidator* validator, const AttrSet& universe,
    const EngineDiscoveryOptions& options, DiscoveryRunInfo* info = nullptr);

std::vector<FuncDep> HybridDiscoverFuncDeps(
    DependencyValidator* validator, const AttrSet& universe,
    const EngineDiscoveryOptions& options, DiscoveryRunInfo* info = nullptr);

}  // namespace flexrel

#endif  // FLEXREL_ENGINE_HYBRID_DISCOVERY_H_
