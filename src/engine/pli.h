// Position-list indexes (stripped partitions) over flexible-relation rows.
//
// A partition of an instance by an attribute set X clusters the rows that
// are (a) defined on all of X and (b) agree on X — i.e. exactly the tuple
// pairs quantified over by Definitions 4.1 and 4.2. Following the
// TANE/Desbordante representation we keep the partition *stripped*:
// singleton clusters are dropped, because a lone tuple can neither witness
// nor violate an AD (existence-pattern reading) or an FD (distinct-pair
// reading). Rows not defined on some attribute of X never enter the
// partition at all; an explicit Value::Null, by contrast, is an ordinary
// value that equals itself (matching Tuple's hashing and comparison), so
// null-valued rows cluster together. This is the absence-vs-null split the
// paper's flexible model is built on.
//
// The payoff is the product construction: the partition by X ∪ Y is the
// cluster-wise refinement of the partition by X with the partition by Y.
// Intersecting two cached partitions costs O(rows in clusters) integer
// work — no value hashing, no tuple projection — which is what makes
// level-wise dependency discovery scale (see pli_cache.h).

#ifndef FLEXREL_ENGINE_PLI_H_
#define FLEXREL_ENGINE_PLI_H_

#include <cstdint>
#include <vector>

#include "relational/attribute.h"
#include "relational/tuple.h"

namespace flexrel {

/// A stripped partition: clusters of row indices, each cluster the rows
/// agreeing on the partition's attribute set, singleton clusters removed.
/// Canonical form — rows ascending within a cluster, clusters ordered by
/// their first row — so equal partitions compare equal.
class Pli {
 public:
  using RowId = uint32_t;
  using Cluster = std::vector<RowId>;

  /// Marker for rows outside every cluster in ProbeTable().
  static constexpr int32_t kNoCluster = -1;

  Pli() = default;

  /// Partition by a single attribute: clusters rows carrying `attr` by its
  /// value. The workhorse base case — higher partitions come from
  /// Intersect.
  static Pli Build(const std::vector<Tuple>& rows, AttrId attr);

  /// Partition by an arbitrary attribute set, built directly by hashing
  /// X-projections. Reference implementation for tests and one-off callers;
  /// the cache assembles the same partition out of single-attribute PLIs.
  static Pli Build(const std::vector<Tuple>& rows, const AttrSet& attrs);

  /// The product partition: clusters of `this` refined by the clusters of
  /// `other`. Equals Build(rows, X ∪ Y) when the operands are the
  /// partitions by X and Y over the same instance.
  Pli Intersect(const Pli& other) const;

  /// Intersect against a precomputed probe table (other.ProbeTable()) —
  /// lets a caller that intersects many partitions against the same operand
  /// (the cache's single-attribute base partitions) skip the O(num_rows)
  /// rebuild per call.
  Pli IntersectWithProbe(const std::vector<int32_t>& probe) const;

  // ------------------------------------------------------------------
  // Incremental maintenance primitives (driven by PliCache's
  // OnInsert/OnUpdate hooks — see pli_cache.h). A stripped partition alone
  // cannot patch itself: when a second row arrives for a value that so far
  // had one (stripped) carrier, the partition does not know *which* row to
  // un-strip. The cache therefore computes the `agreeing` list — the rows
  // currently agreeing with `row` on the partition attributes — from its
  // unstripped value indexes and hands it down here.
  // ------------------------------------------------------------------

  /// Patches the partition for a row that is (newly) defined on the
  /// partition attributes and agrees with `agreeing` (ascending row ids;
  /// `includes_row` says whether `row` itself appears in the list, which
  /// lets the cache pass value-index cluster vectors without copying them).
  /// Canonical form and the defined_rows semantics (exact for Build
  /// output, grouped-rows lower bound for intersection products) are
  /// preserved. Returns false — leaving the partition untouched — when the
  /// cluster structure contradicts the arguments; the cache then drops the
  /// partition and rebuilds it lazily.
  bool ApplyInsert(RowId row, const Cluster& agreeing, bool includes_row);

  /// ∅-partition fast path for appends: the new row agrees with *every*
  /// existing row (all rows project to the empty tuple), so the partner
  /// list — rows 0..row-1 — never needs materializing.
  bool ApplyInsertAllRows(RowId row);

  /// The reverse patch: detaches `row`, which previously agreed with
  /// `agreeing` (same conventions), from the partition.
  bool ApplyErase(RowId row, const Cluster& agreeing, bool includes_row);

  /// One replacement in a batched group-apply: the cluster that held
  /// `old_size` rows and was fronted by `old_front` (ignored when
  /// old_size < 2 — a stripped value has no cluster) becomes `new_rows`
  /// (ascending; dropped when it would be stripped). The cache derives one
  /// patch per affected *value* from its value indexes, capturing the
  /// cluster's pre-splice anchor and its post-splice rows.
  struct ClusterPatch {
    RowId old_front = 0;
    size_t old_size = 0;
    Cluster new_rows;
  };

  /// Batched counterpart of ApplyInsert/ApplyErase: applies every patch in
  /// one pass — removals are validated first (front + size must match, so a
  /// contradicted partition refuses before any mutation), then the cluster
  /// vector is rebuilt by a single sorted merge of survivors and
  /// replacements. `defined_delta` is the net change in rows defined on the
  /// partition attributes (exact mode only; intersection products keep the
  /// grouped-rows lower bound). Returns false — a true no-op — when any
  /// removal contradicts the current cluster structure; the cache then
  /// drops the partition for a lazy rebuild.
  bool ApplyBatch(std::vector<ClusterPatch> patches, ptrdiff_t defined_delta);

  /// Row-count bookkeeping for appends: ProbeTable sizing and operator==
  /// depend on num_rows; the cache bumps every cached partition when the
  /// instance grows, whether or not the new row enters its clusters.
  void SetNumRows(size_t num_rows) { num_rows_ = num_rows; }

  /// True when defined_rows() is exact (Build output); false when it is the
  /// grouped-rows lower bound (intersection products). The patch primitives
  /// preserve the mode.
  bool exact_defined() const { return exact_defined_; }

  const std::vector<Cluster>& clusters() const { return clusters_; }
  size_t num_clusters() const { return clusters_.size(); }

  /// Number of rows of the underlying instance (cluster ids index into it).
  size_t num_rows() const { return num_rows_; }

  /// Rows appearing in some cluster (i.e. rows with at least one partner
  /// agreeing with them on the partition attributes).
  size_t grouped_rows() const { return grouped_rows_; }

  /// Rows defined on the partition's attribute set. Exact for partitions
  /// coming out of Build; a lower bound (= grouped_rows) for intersection
  /// products, whose stripped singletons are unrecoverable.
  size_t defined_rows() const { return defined_rows_; }

  /// Number of distinct projections over the partition attributes among the
  /// defined rows: the stripped clusters plus one singleton cluster per
  /// partnerless defined row. This is the cluster-count statistic the
  /// evaluator's join-order estimates consume (exact after Build, a lower
  /// bound after Intersect — see defined_rows()).
  size_t NumDistinct() const {
    return clusters_.size() + (defined_rows_ - grouped_rows_);
  }

  bool empty() const { return clusters_.empty(); }

  /// Inverse mapping: row index -> cluster index, kNoCluster for stripped
  /// or undefined rows. O(num_rows).
  std::vector<int32_t> ProbeTable() const;

  /// Approximate heap footprint — reported by bench_pli and the input to a
  /// future byte-budgeted cache eviction policy (the cache currently bounds
  /// entry count only; see ROADMAP).
  size_t MemoryBytes() const;

  bool operator==(const Pli& other) const {
    return num_rows_ == other.num_rows_ && clusters_ == other.clusters_;
  }
  bool operator!=(const Pli& other) const { return !(*this == other); }

 private:
  void Canonicalize();
  /// Shared patch body: `others` partners, their cluster fronted by
  /// `partner_front` (ignored when others == 0).
  bool ApplyInsertCore(RowId row, size_t others, RowId partner_front);

  std::vector<Cluster> clusters_;
  size_t num_rows_ = 0;
  size_t grouped_rows_ = 0;
  size_t defined_rows_ = 0;
  bool exact_defined_ = true;  // false for intersection products
};

}  // namespace flexrel

#endif  // FLEXREL_ENGINE_PLI_H_
