// Position-list indexes (stripped partitions) over flexible-relation rows.
//
// A partition of an instance by an attribute set X clusters the rows that
// are (a) defined on all of X and (b) agree on X — i.e. exactly the tuple
// pairs quantified over by Definitions 4.1 and 4.2. Following the
// TANE/Desbordante representation we keep the partition *stripped*:
// singleton clusters are dropped, because a lone tuple can neither witness
// nor violate an AD (existence-pattern reading) or an FD (distinct-pair
// reading). Rows not defined on some attribute of X never enter the
// partition at all; an explicit Value::Null, by contrast, is an ordinary
// value that equals itself (matching Tuple's hashing and comparison), so
// null-valued rows cluster together. This is the absence-vs-null split the
// paper's flexible model is built on.
//
// The payoff is the product construction: the partition by X ∪ Y is the
// cluster-wise refinement of the partition by X with the partition by Y.
// Intersecting two cached partitions costs O(rows in clusters) integer
// work — no value hashing, no tuple projection — which is what makes
// level-wise dependency discovery scale (see pli_cache.h).
//
// Storage: clusters live in a CSR-style arena — one contiguous rows array
// plus a monotone offsets array — so intersections, validator scans, and
// batched splices stream over one allocation instead of chasing one heap
// vector per cluster (the layout mature PLI engines converge on). The
// arena is *slack-aware*: offsets_ marks per-cluster storage slots
// (capacities), sizes_ the live row count inside each slot, so a per-row
// insert shifts rows only within its own cluster's slot instead of
// memmoving the whole arena suffix; a full slot grows by amortized
// doubling, and batched splices rebuild the arena tight (compaction).
// The historical vector-of-vectors representation is kept reachable as
// Storage::kVectors, the reference mode the arena is benchmarked and
// soak-tested against (PliCacheOptions::arena_storage pins a whole cache).

#ifndef FLEXREL_ENGINE_PLI_H_
#define FLEXREL_ENGINE_PLI_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "relational/attribute.h"
#include "relational/tuple.h"

namespace flexrel {

/// Inverse view of a partition: row index -> cluster *label*, kNoCluster
/// (see Pli::kNoCluster) for stripped or undefined rows. Labels of a fresh
/// Pli::BuildProbe are the canonical cluster indices; incremental probe
/// maintenance (pli_cache.h) keeps labels *stable* instead of canonical, so
/// after patches they are merely distinct per cluster and < label_bound.
/// Intersection only needs distinctness and the bound (it sizes its scratch
/// arrays by label_bound), which is what makes probes patchable in O(delta)
/// instead of rebuilt in O(rows).
struct PliProbe {
  std::vector<int32_t> labels;
  int32_t label_bound = 0;  ///< every label is in [0, label_bound)
  /// label_bound at (re)build time — the dense baseline the cache's bloat
  /// check measures churn-driven growth against, so a probe that merely
  /// *looks* sparse (clusters dissolved under it) is not re-dropped right
  /// after a rebuild (PliCache::MaybeRetireBloatedProbeLocked).
  int32_t label_baseline = 0;
};

/// A stripped partition: clusters of row indices, each cluster the rows
/// agreeing on the partition's attribute set, singleton clusters removed.
/// Canonical form — rows ascending within a cluster, clusters ordered by
/// their first row — so equal partitions compare equal (across storage
/// modes too).
class Pli {
 public:
  using RowId = uint32_t;
  using Cluster = std::vector<RowId>;

  /// Cluster storage layout. kArena is the default everywhere; kVectors is
  /// the pre-arena representation, kept as the cross-validated performance
  /// and correctness reference.
  enum class Storage : uint8_t { kArena, kVectors };

  /// Marker for rows outside every cluster in PliProbe::labels.
  static constexpr int32_t kNoCluster = -1;

  /// A borrowed, read-only span over one cluster's ascending row ids.
  /// Valid until the owning Pli is mutated or destroyed — exactly the
  /// lifetime of the reference the vector-of-vectors accessor used to hand
  /// out.
  class ClusterView {
   public:
    using value_type = RowId;
    using const_iterator = const RowId*;

    ClusterView() = default;
    ClusterView(const RowId* data, size_t size) : data_(data), size_(size) {}

    const RowId* begin() const { return data_; }
    const RowId* end() const { return data_ + size_; }
    RowId front() const { return data_[0]; }
    RowId back() const { return data_[size_ - 1]; }
    RowId operator[](size_t i) const { return data_[i]; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    friend bool operator==(ClusterView a, ClusterView b) {
      return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
    }
    friend bool operator==(ClusterView a, const Cluster& b) {
      return a.size_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
    }
    friend bool operator==(const Cluster& a, ClusterView b) { return b == a; }

   private:
    const RowId* data_ = nullptr;
    size_t size_ = 0;
  };

  /// Random-access range of ClusterViews in canonical order, storage
  /// agnostic — what `for (Pli::ClusterView c : pli.clusters())` iterates.
  class ClusterRange {
   public:
    class iterator {
     public:
      using value_type = ClusterView;
      using difference_type = ptrdiff_t;
      iterator(const Pli* pli, size_t i) : pli_(pli), i_(i) {}
      ClusterView operator*() const { return pli_->cluster(i_); }
      iterator& operator++() {
        ++i_;
        return *this;
      }
      bool operator!=(const iterator& o) const { return i_ != o.i_; }
      bool operator==(const iterator& o) const { return i_ == o.i_; }

     private:
      const Pli* pli_;
      size_t i_;
    };

    explicit ClusterRange(const Pli* pli) : pli_(pli) {}
    iterator begin() const { return iterator(pli_, 0); }
    iterator end() const { return iterator(pli_, pli_->num_clusters()); }
    ClusterView operator[](size_t i) const { return pli_->cluster(i); }
    size_t size() const { return pli_->num_clusters(); }
    bool empty() const { return pli_->num_clusters() == 0; }

   private:
    const Pli* pli_;
  };

  /// Reusable scratch for IntersectWithProbe: the flat count/offset/touched
  /// arrays plus the emission buffer. Capacity persists across calls, so a
  /// caller that intersects in a loop (the cache's level sweeps, discovery)
  /// does zero heap allocations in steady state beyond the exact-size
  /// output. Passing nullptr falls back to a thread-local instance, which
  /// gives every worker thread the same reuse for free.
  struct IntersectScratch {
    std::vector<uint32_t> count;
    std::vector<uint32_t> offset;
    std::vector<int32_t> touched;
    std::vector<RowId> emitted;
    struct Desc {
      RowId front;
      uint32_t begin;
      uint32_t size;
    };
    std::vector<Desc> descs;
  };

  Pli() = default;

  /// Partition by a single attribute: clusters rows carrying `attr` by its
  /// value. The workhorse base case — higher partitions come from
  /// Intersect.
  static Pli Build(const std::vector<Tuple>& rows, AttrId attr,
                   Storage storage = Storage::kArena);

  /// Partition by an arbitrary attribute set, built directly by hashing
  /// X-projections. Reference implementation for tests and one-off callers;
  /// the cache assembles the same partition out of single-attribute PLIs.
  static Pli Build(const std::vector<Tuple>& rows, const AttrSet& attrs,
                   Storage storage = Storage::kArena);

  /// Single-attribute partition from a dictionary code column
  /// (engine/dictionary.h) via counting sort — no Value hashing at all.
  /// `codes[row]` is the row's dense code; any code >= `code_bound`
  /// (CodeColumn::kMissingCode) marks the attribute absent. Structurally
  /// identical to Build(rows, attr) over the decoded values: canonical
  /// cluster order, singletons stripped, defined_rows exact.
  static Pli BuildFromCodes(const std::vector<uint32_t>& codes,
                            uint32_t code_bound,
                            Storage storage = Storage::kArena);

  /// The product partition: clusters of `this` refined by the clusters of
  /// `other`. Equals Build(rows, X ∪ Y) when the operands are the
  /// partitions by X and Y over the same instance. The product inherits
  /// this operand's storage mode.
  Pli Intersect(const Pli& other) const;

  /// Intersect against a precomputed probe (other.BuildProbe(), or the
  /// cache's incrementally maintained one) — lets a caller that intersects
  /// many partitions against the same operand skip the O(num_rows) rebuild
  /// per call. Arena mode refines through `scratch` (thread-local default)
  /// and allocates only the exact-size output; kVectors keeps the historic
  /// per-call behavior as the benchmark reference.
  Pli IntersectWithProbe(const PliProbe& probe,
                         IntersectScratch* scratch = nullptr) const;

  // ------------------------------------------------------------------
  // Incremental maintenance primitives (driven by PliCache's
  // OnInsert/OnUpdate hooks — see pli_cache.h). A stripped partition alone
  // cannot patch itself: when a second row arrives for a value that so far
  // had one (stripped) carrier, the partition does not know *which* row to
  // un-strip. The cache therefore computes the `agreeing` list — the rows
  // currently agreeing with `row` on the partition attributes — from its
  // unstripped value indexes and hands it down here.
  // ------------------------------------------------------------------

  /// Patches the partition for a row that is (newly) defined on the
  /// partition attributes and agrees with `agreeing` (ascending row ids;
  /// `includes_row` says whether `row` itself appears in the list, which
  /// lets the cache pass value-index cluster vectors without copying them).
  /// Canonical form and the defined_rows semantics (exact for Build
  /// output, grouped-rows lower bound for intersection products) are
  /// preserved. Returns false — leaving the partition untouched — when the
  /// cluster structure contradicts the arguments; the cache then drops the
  /// partition and rebuilds it lazily.
  bool ApplyInsert(RowId row, const Cluster& agreeing, bool includes_row);

  /// ∅-partition fast path for appends: the new row agrees with *every*
  /// existing row (all rows project to the empty tuple), so the partner
  /// list — rows 0..row-1 — never needs materializing.
  bool ApplyInsertAllRows(RowId row);

  /// The reverse patch: detaches `row`, which previously agreed with
  /// `agreeing` (same conventions), from the partition.
  bool ApplyErase(RowId row, const Cluster& agreeing, bool includes_row);

  /// One replacement in a batched group-apply: the cluster that held
  /// `old_size` rows and was fronted by `old_front` (ignored when
  /// old_size < 2 — a stripped value has no cluster) becomes `new_rows`
  /// (ascending; dropped when it would be stripped). The cache derives one
  /// patch per affected *value* from its value indexes, capturing the
  /// cluster's pre-splice anchor and its post-splice rows.
  struct ClusterPatch {
    RowId old_front = 0;
    size_t old_size = 0;
    Cluster new_rows;
  };

  /// Zero-copy variant: the replacement rows are borrowed (a span into the
  /// already-spliced value-index cluster) instead of copied. The pointed-to
  /// rows must stay valid until ApplyBatch returns — the cache consumes a
  /// splice's views before the next splice can touch them. This is the
  /// arena fast path: one copy straight from the index into the arena,
  /// instead of index -> patch -> arena.
  struct ClusterPatchView {
    RowId old_front = 0;
    size_t old_size = 0;
    const RowId* new_rows = nullptr;  ///< null iff new_size == 0
    uint32_t new_size = 0;
  };

  /// Views over owning patches — the one place the span-extraction (and
  /// its null-iff-empty convention) lives. The patches must outlive the
  /// returned views.
  static std::vector<ClusterPatchView> MakePatchViews(
      const std::vector<ClusterPatch>& patches);

  /// Batched counterpart of ApplyInsert/ApplyErase: applies every patch in
  /// one pass — removals are validated first (front + size must match, so a
  /// contradicted partition refuses before any mutation), then
  /// size-preserving front-keeping replacements are swapped in place and
  /// everything structural (dissolved, appeared, resized, or re-fronted
  /// clusters) lands in a single sorted compaction pass over the arena.
  /// `defined_delta` is the net change in rows defined on the partition
  /// attributes (exact mode only; intersection products keep the
  /// grouped-rows lower bound). Returns false — a true no-op — when any
  /// removal contradicts the current cluster structure; the cache then
  /// drops the partition for a lazy rebuild.
  bool ApplyBatch(std::vector<ClusterPatch> patches, ptrdiff_t defined_delta);

  /// The borrowed-rows counterpart (same semantics, same refusal contract):
  /// replacements are copied exactly once, from the views into this
  /// partition's storage.
  bool ApplyBatch(std::vector<ClusterPatchView> patches,
                  ptrdiff_t defined_delta);

  /// Row-count bookkeeping for appends: BuildProbe sizing and operator==
  /// depend on num_rows; the cache bumps every cached partition when the
  /// instance grows, whether or not the new row enters its clusters.
  void SetNumRows(size_t num_rows) { num_rows_ = num_rows; }

  /// True when defined_rows() is exact (Build output); false when it is the
  /// grouped-rows lower bound (intersection products). The patch primitives
  /// preserve the mode.
  bool exact_defined() const { return exact_defined_; }

  Storage storage() const { return storage_; }

  /// The i-th cluster in canonical order, as a borrowed span. Live rows
  /// sit at the front of the cluster's arena slot; trailing slack (if any)
  /// is never exposed.
  ClusterView cluster(size_t i) const {
    if (storage_ == Storage::kArena) {
      return ClusterView(arena_.data() + offsets_[i], sizes_[i]);
    }
    return ClusterView(vclusters_[i].data(), vclusters_[i].size());
  }

  ClusterRange clusters() const { return ClusterRange(this); }
  size_t num_clusters() const {
    return storage_ == Storage::kArena
               ? (offsets_.empty() ? 0 : offsets_.size() - 1)
               : vclusters_.size();
  }

  /// Number of rows of the underlying instance (cluster ids index into it).
  size_t num_rows() const { return num_rows_; }

  /// Rows appearing in some cluster (i.e. rows with at least one partner
  /// agreeing with them on the partition attributes).
  size_t grouped_rows() const { return grouped_rows_; }

  /// Rows defined on the partition's attribute set. Exact for partitions
  /// coming out of Build; a lower bound (= grouped_rows) for intersection
  /// products, whose stripped singletons are unrecoverable.
  size_t defined_rows() const { return defined_rows_; }

  /// Number of distinct projections over the partition attributes among the
  /// defined rows: the stripped clusters plus one singleton cluster per
  /// partnerless defined row. This is the cluster-count statistic the
  /// evaluator's join-order estimates consume (exact after Build, a lower
  /// bound after Intersect — see defined_rows()).
  size_t NumDistinct() const {
    return num_clusters() + (defined_rows_ - grouped_rows_);
  }

  bool empty() const { return num_clusters() == 0; }

  /// Arena slots not currently holding a live row (dead headroom from
  /// per-cluster slack growth and dissolved clusters). Always 0 right
  /// after a build or a batched splice — ApplyBatch rebuilds tight — and
  /// bounded between them by the amortized-doubling growth policy. 0 in
  /// kVectors mode. Exposed for tests and the memory accounting bench.
  size_t ArenaSlackRows() const {
    return storage_ == Storage::kArena ? arena_.size() - grouped_rows_ : 0;
  }

  /// Inverse mapping with canonical labels (label == cluster index,
  /// label_bound == num_clusters). O(num_rows).
  PliProbe BuildProbe() const;

  /// Approximate heap footprint — reported by bench_pli and the input to a
  /// future byte-budgeted cache eviction policy (the cache currently bounds
  /// entry count only; see ROADMAP).
  size_t MemoryBytes() const;

  /// Structural self-check for tests and debugging: monotone arena slot
  /// boundaries with every slot's live size in [2, capacity], arena size
  /// == last boundary, rows strictly ascending within clusters and
  /// < num_rows, canonical cluster order, and defined_rows consistent with
  /// grouped_rows for the storage's defined mode. On failure fills `error`
  /// (when non-null) and returns false.
  bool CheckInvariants(std::string* error = nullptr) const;

  bool operator==(const Pli& other) const;
  bool operator!=(const Pli& other) const { return !(*this == other); }

 private:
  /// Takes ownership of freshly built clusters (any order, each >= 2 rows,
  /// rows ascending), canonicalizes, and stores them in `storage_` layout.
  void AdoptClusters(std::vector<Cluster> clusters);

  /// Shared patch body: `others` partners, their cluster fronted by
  /// `partner_front` (ignored when others == 0).
  bool ApplyInsertCore(RowId row, size_t others, RowId partner_front);

  /// The two storage-specific refinement bodies behind IntersectWithProbe.
  Pli IntersectArena(const PliProbe& probe, IntersectScratch* scratch) const;
  Pli IntersectVectors(const PliProbe& probe) const;

  // Arena primitives (storage_ == kArena; see pli.cc).
  size_t ArenaLowerBoundByFront(RowId front) const;
  size_t ArenaFindClusterByFront(RowId front) const;
  void ArenaRepositionCluster(size_t index, size_t target);
  void ArenaMaybeReposition(size_t index);

  Storage storage_ = Storage::kArena;
  std::vector<RowId> arena_;       // kArena: cluster slots (rows + slack)
  std::vector<uint32_t> offsets_;  // kArena: num_clusters + 1 monotone slot
                                   // boundaries; slot i capacity is
                                   // offsets_[i+1] - offsets_[i]
  std::vector<uint32_t> sizes_;    // kArena: live rows in slot i (<= cap)
  std::vector<Cluster> vclusters_;  // kVectors: the historical layout
  size_t num_rows_ = 0;
  size_t grouped_rows_ = 0;
  size_t defined_rows_ = 0;
  bool exact_defined_ = true;  // false for intersection products
};

/// gtest-friendly printer for cluster views.
std::ostream& operator<<(std::ostream& os, Pli::ClusterView view);

}  // namespace flexrel

#endif  // FLEXREL_ENGINE_PLI_H_
