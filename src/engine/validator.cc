#include "engine/validator.h"

#include <utility>

#include "telemetry/telemetry.h"
#include "util/string_util.h"

namespace flexrel {

namespace {

// The existence-pattern scan both Definition-4.1 readers share: attributes
// every cluster member carries vs. attributes any member carries. Keeping
// it in one place keeps discovery and EAD mining agreeing on the reading.
struct ClusterPresence {
  AttrSet present;
  AttrSet seen_any;
};

ClusterPresence ScanClusterPresence(Pli::ClusterView cluster,
                                    const std::vector<AttrSet>& row_attrs) {
  ClusterPresence out;
  out.present = row_attrs[cluster.front()];
  out.seen_any = out.present;
  for (size_t i = 1; i < cluster.size(); ++i) {
    const AttrSet& attrs = row_attrs[cluster[i]];
    out.present = out.present.Intersect(attrs);
    out.seen_any = out.seen_any.Union(attrs);
  }
  return out;
}

}  // namespace

std::vector<AttrSet> ComputeRowAttrs(const std::vector<Tuple>& rows) {
  std::vector<AttrSet> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) out.push_back(t.attrs());
  return out;
}

AttrSet PartitionAdRhs(const Pli& pli, const std::vector<AttrSet>& row_attrs,
                       const AttrSet& lhs, const AttrSet& universe,
                       const ExecContext* exec) {
  AttrSet rhs = universe;
  size_t scanned = 0;
  for (Pli::ClusterView cluster : pli.clusters()) {
    if (exec != nullptr && (++scanned & 63) == 0 && !exec->Check().ok()) {
      return AttrSet();  // unwinding; the cancelling run discards this
    }
    ClusterPresence scan = ScanClusterPresence(cluster, row_attrs);
    // Attributes some but not all cluster members carry break the
    // existence pattern.
    rhs = rhs.Minus(scan.seen_any.Minus(scan.present));
    if (rhs.IsSubsetOf(lhs)) break;  // nothing non-trivial can survive
  }
  return rhs.Minus(lhs);
}

AttrSet PartitionFdRhs(const Pli& pli, const std::vector<Tuple>& rows,
                       const AttrSet& lhs, const AttrSet& universe,
                       const ExecContext* exec) {
  AttrSet rhs = universe;
  size_t scanned = 0;
  for (Pli::ClusterView cluster : pli.clusters()) {
    if (exec != nullptr && (++scanned & 63) == 0 && !exec->Check().ok()) {
      return AttrSet();
    }
    const Tuple& ref = rows[cluster.front()];
    AttrSet agreeing = ref.attrs();
    for (size_t i = 1; i < cluster.size() && !agreeing.empty(); ++i) {
      const Tuple& t = rows[cluster[i]];
      AttrSet still;
      for (AttrId a : agreeing) {
        const Value* v0 = ref.Get(a);
        const Value* v = t.Get(a);
        if (v0 != nullptr && v != nullptr && *v0 == *v) still.Insert(a);
      }
      agreeing = std::move(still);
    }
    rhs = rhs.Intersect(agreeing.Union(lhs));
    if (rhs.IsSubsetOf(lhs)) break;
  }
  return rhs.Minus(lhs);
}

DependencyValidator::DependencyValidator(PliCache* cache)
    : cache_(cache), row_attrs_(ComputeRowAttrs(cache->rows())) {}

bool DependencyValidator::ValidatesAd(const AttrDep& ad) {
  FLEXREL_TELEMETRY_COUNT("engine.validator.ad_checks", 1);
  FLEXREL_TELEMETRY_LATENCY(check_timer, "engine.validator.check_ns");
  AttrSet target = ad.rhs.Minus(ad.lhs);
  if (target.empty()) return true;  // trivial (reflexivity)
  // In COW mode this Get is a lock-free snapshot read, so validators on
  // concurrent threads (parallel discovery's workers) never serialize on
  // the cache. The returned partition is frozen at its epoch; the check
  // below also reads rows()/row_attrs_, so validating concurrently with
  // relation mutations needs the caller to hold the rows stable (the
  // engine/README.md "Concurrency" contract) — concurrent *reads* need
  // nothing.
  std::shared_ptr<const Pli> pli = cache_->Get(ad.lhs);
  return target.IsSubsetOf(
      PartitionAdRhs(*pli, row_attrs_, ad.lhs, target.Union(ad.lhs)));
}

bool DependencyValidator::ValidatesFd(const FuncDep& fd) {
  FLEXREL_TELEMETRY_COUNT("engine.validator.fd_checks", 1);
  FLEXREL_TELEMETRY_LATENCY(check_timer, "engine.validator.check_ns");
  AttrSet target = fd.rhs.Minus(fd.lhs);
  if (target.empty()) return true;
  std::shared_ptr<const Pli> pli = cache_->Get(fd.lhs);
  return target.IsSubsetOf(
      PartitionFdRhs(*pli, cache_->rows(), fd.lhs, target.Union(fd.lhs)));
}

bool DependencyValidator::ValidatesAll(const DependencySet& sigma) {
  for (const FuncDep& fd : sigma.fds()) {
    if (!ValidatesFd(fd)) return false;
  }
  for (const AttrDep& ad : sigma.ads()) {
    if (!ValidatesAd(ad)) return false;
  }
  return true;
}

AttrSet DependencyValidator::MaximalAdRhs(const AttrSet& lhs,
                                          const AttrSet& universe) {
  FLEXREL_TELEMETRY_COUNT("engine.validator.maximal_rhs", 1);
  FLEXREL_TELEMETRY_LATENCY(rhs_timer, "engine.validator.maximal_rhs_ns");
  std::shared_ptr<const Pli> pli = cache_->Get(lhs);
  return PartitionAdRhs(*pli, row_attrs_, lhs, universe, exec_);
}

AttrSet DependencyValidator::MaximalFdRhs(const AttrSet& lhs,
                                          const AttrSet& universe) {
  FLEXREL_TELEMETRY_COUNT("engine.validator.maximal_rhs", 1);
  FLEXREL_TELEMETRY_LATENCY(rhs_timer, "engine.validator.maximal_rhs_ns");
  std::shared_ptr<const Pli> pli = cache_->Get(lhs);
  return PartitionFdRhs(*pli, cache_->rows(), lhs, universe, exec_);
}

AttrSet ExplicitlyMinableRhs(const std::vector<Tuple>& rows,
                             const AttrSet& determinant,
                             const AttrSet& candidates) {
  AttrSet minable = candidates.Minus(determinant);
  for (const Tuple& t : rows) {
    if (minable.empty()) break;
    if (!t.DefinedOn(determinant)) minable = minable.Minus(t.attrs());
  }
  return minable;
}

Result<ExplicitAD> MineExplicitAd(PliCache* cache, const AttrSet& determinant,
                                  const AttrSet& determined,
                                  const std::vector<AttrSet>* row_attrs,
                                  size_t max_variants) {
  const std::vector<Tuple>& rows = cache->rows();
  std::vector<AttrSet> computed;
  if (row_attrs == nullptr) {
    computed = ComputeRowAttrs(rows);
    row_attrs = &computed;
  }
  AttrSet y = determined.Minus(determinant);
  std::shared_ptr<const Pli> pli = cache->Get(determinant);
  PliProbe probe = pli->BuildProbe();

  // Clusters: members must agree on presence within Y (otherwise no EAD
  // with this determinant exists over the instance).
  std::vector<EadVariant> variants;
  auto over_budget = [&variants, max_variants] {
    return max_variants != 0 && variants.size() > max_variants;
  };
  auto budget_error = [&determinant, max_variants] {
    return Status::InvalidArgument(
        StrCat("mining ", determinant.ToString(),
               " exceeds the variant budget of ", max_variants));
  };
  for (Pli::ClusterView cluster : pli->clusters()) {
    ClusterPresence scan = ScanClusterPresence(cluster, *row_attrs);
    if (scan.seen_any.Minus(scan.present).Intersects(y)) {
      return Status::InvalidArgument(
          StrCat("instance violates ", determinant.ToString(), " --attr--> ",
                 y.ToString(), ": a determinant value group disagrees on "
                 "attribute presence"));
    }
    AttrSet then = scan.present.Intersect(y);
    if (then.empty()) continue;  // covered by the EAD's "otherwise ∅" clause
    auto when = ConditionSet::Make(determinant,
                                   {rows[cluster.front()].Project(determinant)});
    if (!when.ok()) return when.status();
    variants.push_back(EadVariant{std::move(when).value(), std::move(then)});
    if (over_budget()) return budget_error();
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].DefinedOn(determinant)) {
      if (probe.labels[i] != Pli::kNoCluster) continue;  // handled as a cluster
      // Partnerless row: its value defines a variant of its own.
      AttrSet then = (*row_attrs)[i].Intersect(y);
      if (then.empty()) continue;
      auto when =
          ConditionSet::Make(determinant, {rows[i].Project(determinant)});
      if (!when.ok()) return when.status();
      variants.push_back(EadVariant{std::move(when).value(), std::move(then)});
      if (over_budget()) return budget_error();
    } else if ((*row_attrs)[i].Intersects(y)) {
      // Definition 2.1: a tuple matching no variant (which includes tuples
      // not defined on the determinant) must carry none of Y.
      return Status::InvalidArgument(
          StrCat("instance violates the explicit reading of ",
                 determinant.ToString(), " --attr--> ", y.ToString(),
                 ": a row lacking the determinant carries determined "
                 "attributes"));
    }
  }
  return ExplicitAD::Make(determinant, y, std::move(variants));
}

}  // namespace flexrel
