// Partition-based dependency validation (the engine's replacement for the
// hash-group inner loops of core/discovery.cc).
//
// Both maximal-RHS computations read a stripped partition of the candidate
// determinant X:
//  - AD (Definition 4.1, existence-pattern reading): an attribute a belongs
//    to the maximal determined set iff within every cluster all members
//    agree on *possessing* a — values are irrelevant.
//  - FD (Definition 4.2, distinct-pair reading): a belongs iff within every
//    cluster all members carry a and agree on its *value*.
// Rows outside the partition (not defined on X, or partnerless) constrain
// nothing under either reading, which is exactly why stripped partitions
// suffice.

#ifndef FLEXREL_ENGINE_VALIDATOR_H_
#define FLEXREL_ENGINE_VALIDATOR_H_

#include <vector>

#include "core/dependency_set.h"
#include "core/explicit_ad.h"
#include "engine/pli_cache.h"
#include "util/exec_context.h"
#include "util/result.h"

namespace flexrel {

/// attr(t) for every row, precomputed once — the AD hot path touches these
/// per cluster member and must not rebuild them per candidate.
std::vector<AttrSet> ComputeRowAttrs(const std::vector<Tuple>& rows);

/// The maximal Y (within `universe`, excluding `lhs`) with X --attr--> Y,
/// read off the stripped partition of X. Mirrors the brute-force
/// MaximalAdRhs of core/discovery.cc exactly. A non-null `exec` is polled
/// every few dozen clusters; on a trip the scan bails with the empty set —
/// the caller is unwinding and discards the result, so bailing cheap beats
/// finishing a fat partition.
AttrSet PartitionAdRhs(const Pli& pli, const std::vector<AttrSet>& row_attrs,
                       const AttrSet& lhs, const AttrSet& universe,
                       const ExecContext* exec = nullptr);

/// The FD counterpart: maximal Y with X --func--> Y.
AttrSet PartitionFdRhs(const Pli& pli, const std::vector<Tuple>& rows,
                       const AttrSet& lhs, const AttrSet& universe,
                       const ExecContext* exec = nullptr);

/// Validates single dependencies against one instance through a shared
/// partition cache; the cheap way to audit an engine- or user-supplied Σ.
class DependencyValidator {
 public:
  /// The cache (and the rows it indexes) must outlive the validator.
  explicit DependencyValidator(PliCache* cache);

  /// Definition 4.1 satisfaction via the cached partition of ad.lhs.
  bool ValidatesAd(const AttrDep& ad);

  /// Definition 4.2 satisfaction via the cached partition of fd.lhs.
  bool ValidatesFd(const FuncDep& fd);

  /// True iff the instance satisfies every member of `sigma`.
  bool ValidatesAll(const DependencySet& sigma);

  /// Maximal determined sets for a candidate determinant (discovery's inner
  /// step).
  AttrSet MaximalAdRhs(const AttrSet& lhs, const AttrSet& universe);
  AttrSet MaximalFdRhs(const AttrSet& lhs, const AttrSet& universe);

  const std::vector<AttrSet>& row_attrs() const { return row_attrs_; }
  PliCache* cache() { return cache_; }

  /// Attaches cooperative execution control: MaximalAdRhs/MaximalFdRhs
  /// poll it at cluster-batch boundaries and bail early (empty result)
  /// once it trips. Not owned; null (the default) disables polling.
  /// Discovery sets this from EngineDiscoveryOptions::exec per run.
  void set_exec(const ExecContext* exec) { exec_ = exec; }
  const ExecContext* exec() const { return exec_; }

 private:
  PliCache* cache_;
  std::vector<AttrSet> row_attrs_;
  const ExecContext* exec_ = nullptr;
};

/// Lifts an instance-level AD `determinant --attr--> determined` into an
/// explicit AD (Definition 2.1): one variant per distinct determinant value,
/// its `then` the determined attributes that value's rows carry. Fails when
/// the instance violates the EAD semantics — some cluster disagrees on
/// presence within `determined`, or a row not defined on the determinant
/// carries determined attributes. This is the bridge from discovered
/// dependencies to the optimizer's guard analysis. `row_attrs`, when
/// non-null, supplies precomputed per-row attribute sets (ComputeRowAttrs)
/// so mining avoids rebuilding them per cluster member. `max_variants`
/// bounds the mined variant count (0 = unlimited): key-like determinants
/// produce one variant per row, and ExplicitAD::Make validates variant
/// disjointness pairwise, so an unbounded mine over a unique attribute
/// would cost O(rows²) — callers that only profit from small EADs should
/// cap it and treat the failure as "not minable".
Result<ExplicitAD> MineExplicitAd(PliCache* cache, const AttrSet& determinant,
                                  const AttrSet& determined,
                                  const std::vector<AttrSet>* row_attrs =
                                      nullptr,
                                  size_t max_variants = 0);

/// The subset of `candidates` minable with `determinant` under the explicit
/// reading: attributes carried by some row *not* defined on the determinant
/// are excluded (Definition 2.1's "otherwise ∅" clause). Lets a caller mine
/// the minable part of a maximal RHS instead of failing wholesale.
AttrSet ExplicitlyMinableRhs(const std::vector<Tuple>& rows,
                             const AttrSet& determinant,
                             const AttrSet& candidates);

}  // namespace flexrel

#endif  // FLEXREL_ENGINE_VALIDATOR_H_
