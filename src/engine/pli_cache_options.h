// Maintenance knobs for the partition cache, split out of pli_cache.h so
// that core/flexible_relation.h (which owns the options for its lazily
// attached cache) does not pull the whole engine into every core include.

#ifndef FLEXREL_ENGINE_PLI_CACHE_OPTIONS_H_
#define FLEXREL_ENGINE_PLI_CACHE_OPTIONS_H_

#include <cstddef>

namespace flexrel {

struct PliCacheOptions {
  /// Maximal number of cached multi-attribute partitions (single-attribute
  /// partitions are pinned and not counted). Least recently used entries
  /// are dropped beyond this bound.
  size_t max_entries = 1024;

  /// Byte budget over every structure the cache holds — partitions,
  /// probe tables, value indexes, code columns (estimated footprints;
  /// snapshot tables ride along as per-entry overhead). 0 (the default)
  /// disables governance entirely: no accounting sweeps run and nothing
  /// beyond max_entries is evicted, so the hot paths pay zero overhead.
  /// When set, each flush/build re-accounts the footprint
  /// (engine.cache.bytes_* gauges) and evicts least-recently-used
  /// multi-attribute entries until under budget
  /// (engine.cache.budget_evictions); when the pinned base structures
  /// alone exceed the budget, multi-attribute Gets degrade gracefully to
  /// building without caching (uncached_serves in Stats()) instead of
  /// growing without bound.
  size_t memory_budget_bytes = 0;

  /// Maintain cached partitions and value indexes incrementally across
  /// instance mutations (PliCache::OnInsert/OnUpdate patch the affected
  /// clusters in place). False restores the pre-incremental behavior:
  /// FlexibleRelation drops the whole cache on every mutation and the next
  /// query rebuilds it from scratch — kept as the cross-validation oracle
  /// for the incremental path.
  bool incremental = true;

  /// Patch-vs-rebuild crossover for multi-attribute partitions: when the
  /// smallest value cluster seeding a partner scan exceeds
  /// max(patch_scan_limit, rows/2), the mutation hooks drop the entry for
  /// lazy re-intersection instead of patching it
  /// (PliCache::patch_rebuilds() counts these). Tests lower it to force
  /// the rebuild path on small instances.
  size_t patch_scan_limit = 2048;

  /// Per-row-patch vs batched-apply crossover. Mutations are buffered as
  /// pending deltas and flushed on the next read; a flush of fewer than
  /// batch_threshold net deltas replays them row by row (the PR 3 patch
  /// path), a larger one group-applies them: value indexes and
  /// single-attribute partitions are spliced in one sorted pass
  /// (ValueIndexApplyUpdateBatch / Pli::ApplyBatch) and multi-attribute
  /// partitions are group-patched or dropped for lazy re-intersection by
  /// a per-entry scan-cost estimate. The default sits where the splice
  /// (≈ two copies of every affected cluster) starts beating per-row
  /// surgery (≈ half a cluster memmove per mutation) on fat clusters.
  /// SIZE_MAX pins the per-row path — the cross-validation reference for
  /// the batched one.
  size_t batch_threshold = 16;

  /// Batched-apply vs drop-everything crossover: a flush of at least
  /// max(drop_threshold, rows/2) net deltas drops every cached structure
  /// (value indexes included) for lazy from-scratch rebuilds — at that
  /// burst size one deferred rebuild beats any splicing, which is what the
  /// incremental = false oracle demonstrates at high mutation ratios.
  size_t drop_threshold = 2048;

  /// Epoch-style copy-on-write snapshot publication (the default): every
  /// flush patches successor copies of the affected partitions, probes,
  /// and value indexes off to the side and publishes them with one atomic
  /// swap of an immutable snapshot table, so Get/IndexFor/ProbeFor serve
  /// cached structures with a single acquire-load and zero mutex
  /// acquisitions (telemetry: engine.pli_cache.reader_lock_waits stays 0).
  /// Mutation hooks flush eagerly under the writers-only lock — one
  /// publish per flush — so reads stay fresh without ever flushing.
  /// False pins the historical locked in-place mode: reads take the cache
  /// lock, flush lazily, and patch live structures — kept as the
  /// cross-validation oracle (and as the mode that coalesces read-free
  /// mutation storms across hook calls, which eager COW flushing gives
  /// up). The tradeoff is write amplification: a COW flush clones every
  /// structure it patches, so a single-row mutation stream pays
  /// O(cache footprint) per row where locked mode coalesces the stream
  /// into one adaptive flush at the next read. Concurrent serving wants
  /// the default; a single-threaded mutate-heavy pipeline should pin
  /// locked mode (bench_pli's mutate-then-query sweep does, and
  /// BM_SnapshotReadStorm* measures the COW side). See the "Concurrency"
  /// section of src/engine/README.md.
  bool cow_reads = true;

  /// Cluster storage of every partition the cache builds: the CSR arena
  /// (one contiguous rows array plus monotone offsets per partition —
  /// Pli::Storage::kArena, the default) or, when false, the historical
  /// vector-of-vectors layout (Pli::Storage::kVectors) — kept reachable as
  /// the reference mode the arena is benchmarked (bench_pli,
  /// scripts/perf_smoke.py) and soak-tested (engine_incremental_test)
  /// against. Intersection products inherit the mode, so pinning it here
  /// pins the whole cache.
  bool arena_storage = true;

  /// Dictionary-encoded columnar value plane (engine/dictionary.h, the
  /// default): the cache keeps one incrementally maintained CodeColumn per
  /// requested attribute (CodeColumnFor) — values interned into dense
  /// uint32_t codes, null as the reserved code 0 — and builds
  /// single-attribute partitions by counting sort over the code column
  /// (Pli::BuildFromCodes) instead of hashing every row's Value. The
  /// evaluator resolves equality selections through the column's dense
  /// code->rows buckets when its own EvalOptions::use_codes agrees, and
  /// hybrid discovery samples agree sets by comparing codes. False
  /// disables the plane entirely (CodeColumnFor returns null): partitions
  /// hash Values, selections probe the value-hashed index — the
  /// cross-validation oracle the coded paths are soak-tested for
  /// structural equality against (engine_dictionary_test).
  bool use_codes = true;
};

}  // namespace flexrel

#endif  // FLEXREL_ENGINE_PLI_CACHE_OPTIONS_H_
