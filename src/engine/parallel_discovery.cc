#include "engine/parallel_discovery.h"

#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "core/closure.h"
#include "engine/discovery_internal.h"
#include "engine/hybrid_discovery.h"
#include "telemetry/telemetry.h"
#include "util/fault.h"

namespace flexrel {

namespace discovery_internal {

// Translates the discovery knobs into partition-cache options (LRU bound +
// cluster-storage pin) for the rows-based entry points.
PliCache::Options CacheOptionsOf(const EngineDiscoveryOptions& options) {
  PliCache::Options out;
  out.max_entries = options.cache_max_entries;
  out.arena_storage = !options.reference_storage;
  out.use_codes = options.use_codes;
  // A job-scoped memory budget governs the cache the job owns; the
  // validator-based entry points leave their caller's cache untouched.
  if (options.exec != nullptr) {
    out.memory_budget_bytes = options.exec->memory_budget_bytes();
  }
  return out;
}

size_t ResolveThreads(size_t requested, size_t work_items) {
  size_t n = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (work_items == 0) work_items = 1;
  return n < work_items ? n : work_items;
}

// Runs fn(0..n-1) across `num_threads` workers pulling from a shared
// counter; the calling thread participates. The first exception a worker
// hits is captured and rethrown on the calling thread after the join —
// letting it escape a thread entry function would std::terminate.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mu;
  auto worker = [&] {
    try {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::current_exception();
      next.store(n);  // drain remaining work
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(num_threads - 1);
  try {
    for (size_t t = 1; t < num_threads; ++t) pool.emplace_back(worker);
  } catch (const std::system_error&) {
    // Thread exhaustion: degrade to the workers that did spawn (plus this
    // thread) instead of letting ~thread() terminate the process.
  }
  worker();
  for (std::thread& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

void ResetDiscoveryRunGauges() {
  if (!telemetry::Enabled()) return;
  // Last-write-wins gauges survive across runs; without the reset, a run
  // that never reaches the write site (fewer levels, no sampling stage)
  // dumps the previous run's watermark as its own.
  telemetry::Registry& registry = telemetry::Registry::Global();
  registry.GetGauge("engine.discovery.worker_utilization_pct")->Reset();
  registry.GetGauge("engine.discovery.sample_hit_rate_pct")->Reset();
}

}  // namespace discovery_internal

namespace {

using discovery_internal::CacheOptionsOf;
using discovery_internal::kMinWorkForAutoThreads;
using discovery_internal::ParallelFor;
using discovery_internal::ResolveThreads;

// Shared traversal: per level, fan the maximal-RHS computations out, then
// prune and emit sequentially in enumeration order (pruning consults the
// dependencies already emitted, so its order is semantics-bearing).
template <typename Dep, typename RhsFn, typename PrunedFn, typename EmitFn>
std::vector<Dep> LevelWise(const AttrSet& universe,
                           const EngineDiscoveryOptions& options,
                           size_t num_rows, const RhsFn& maximal_rhs,
                           const PrunedFn& pruned, const EmitFn& emit,
                           DiscoveryRunInfo* info) {
  discovery_internal::ResetDiscoveryRunGauges();
  const ExecContext* exec = options.exec;
  DiscoveryRunInfo run;
  std::vector<Dep> out;
  DependencySet found;
  for (size_t k = 1; k <= options.max_lhs_size && k <= universe.size(); ++k) {
    if (Status st = CheckExec(exec); !st.ok()) {
      run.status = std::move(st);
      run.partial = true;
      break;
    }
    telemetry::ScopedSpan level_span("discovery.level");
    FLEXREL_FAULT_INJECT("discovery.level");
    const bool traced = telemetry::Enabled();
    const uint64_t level_start = traced ? telemetry::NowNs() : 0;
    std::vector<AttrSet> candidates = LatticeLevel(universe, k);
    std::vector<AttrSet> rhss(candidates.size());
    size_t threads = ResolveThreads(options.num_threads, candidates.size());
    if (options.num_threads == 0 &&
        num_rows * candidates.size() < kMinWorkForAutoThreads) {
      threads = 1;
    }
    // Σ of per-candidate validation time across workers; against the
    // level's wall time and worker count it yields utilization — how much
    // of the fan-out the shared-counter pull actually kept busy.
    std::atomic<uint64_t> busy_ns{0};
    // Mid-level trip: workers poll the context at candidate boundaries and
    // raise the shared stop flag, so the whole pool drains within one
    // candidate each instead of finishing the level.
    std::atomic<bool> stop{false};
    ParallelFor(candidates.size(), threads, [&](size_t i) {
      if (stop.load(std::memory_order_relaxed)) return;
      if (exec != nullptr && !exec->Check().ok()) {
        stop.store(true, std::memory_order_relaxed);
        return;
      }
      if (traced) {
        const uint64_t t0 = telemetry::NowNs();
        rhss[i] = maximal_rhs(candidates[i]);
        busy_ns.fetch_add(telemetry::NowNs() - t0,
                          std::memory_order_relaxed);
      } else {
        rhss[i] = maximal_rhs(candidates[i]);
      }
    });
    // A trip mid-fan-out leaves this level partially validated; the
    // context is sticky, so re-checking here discards the in-flight level
    // entirely — the output stays the exact prefix of completed levels.
    if (Status st = CheckExec(exec); !st.ok()) {
      run.status = std::move(st);
      run.partial = true;
      discovery_internal::ResetDiscoveryRunGauges();
      break;
    }
    size_t pruned_count = 0;
    size_t emitted_count = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (rhss[i].empty()) continue;
      Dep candidate{std::move(candidates[i]), std::move(rhss[i])};
      if (options.minimal_only && pruned(found, candidate)) {
        ++pruned_count;
        continue;
      }
      ++emitted_count;
      out.push_back(candidate);
      emit(&found, std::move(candidate));
    }
    FLEXREL_TELEMETRY_COUNT("engine.discovery.levels", 1);
    FLEXREL_TELEMETRY_COUNT("engine.discovery.candidates", candidates.size());
    FLEXREL_TELEMETRY_COUNT("engine.discovery.pruned", pruned_count);
    FLEXREL_TELEMETRY_COUNT("engine.discovery.emitted", emitted_count);
    if (traced) {
      const uint64_t wall = telemetry::NowNs() - level_start;
      const uint64_t util_pct =
          wall == 0 ? 0
                    : busy_ns.load(std::memory_order_relaxed) * 100 /
                          (wall * threads);
      FLEXREL_TELEMETRY_GAUGE_SET("engine.discovery.worker_utilization_pct",
                                  util_pct);
      level_span.SetDetail(
          "k=" + std::to_string(k) +
          " candidates=" + std::to_string(candidates.size()) +
          " pruned=" + std::to_string(pruned_count) +
          " emitted=" + std::to_string(emitted_count) +
          " threads=" + std::to_string(threads) +
          " util_pct=" + std::to_string(util_pct));
    }
    run.completed_levels = k;
  }
  if (info != nullptr) *info = std::move(run);
  return out;
}

}  // namespace

EngineDiscoveryOptions ToEngineOptions(const DiscoveryOptions& options) {
  EngineDiscoveryOptions out;
  out.max_lhs_size = options.max_lhs_size;
  out.minimal_only = options.minimal_only;
  out.num_threads = options.num_threads;
  out.strategy = options.strategy;
  return out;
}

std::vector<AttrSet> LatticeLevel(const AttrSet& universe, size_t k) {
  const std::vector<AttrId>& ids = universe.ids();
  std::vector<AttrSet> out;
  if (k == 0 || k > ids.size()) return out;
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  std::vector<AttrId> current;
  while (true) {
    current.clear();
    for (size_t i : idx) current.push_back(ids[i]);
    out.push_back(AttrSet::FromIds(current));
    size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + ids.size() - k) break;
    }
    if (idx[i] == i + ids.size() - k) break;
    ++idx[i];
    for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
  return out;
}

std::vector<AttrDep> EngineDiscoverAttrDeps(
    DependencyValidator* validator, const AttrSet& universe,
    const EngineDiscoveryOptions& options, DiscoveryRunInfo* info) {
  // The validator polls the context inside its cluster scans, so a trip
  // lands mid-candidate instead of waiting out a fat partition.
  validator->set_exec(options.exec);
  if (options.strategy == DiscoveryStrategy::kHybrid) {
    return HybridDiscoverAttrDeps(validator, universe, options, info);
  }
  return LevelWise<AttrDep>(
      universe, options, validator->row_attrs().size(),
      [&](const AttrSet& lhs) {
        return validator->MaximalAdRhs(lhs, universe);
      },
      [](const DependencySet& found, const AttrDep& candidate) {
        return Implies(found, candidate, AxiomSystem::kAdOnly);
      },
      [](DependencySet* found, AttrDep dep) { found->AddAd(std::move(dep)); },
      info);
}

std::vector<FuncDep> EngineDiscoverFuncDeps(
    DependencyValidator* validator, const AttrSet& universe,
    const EngineDiscoveryOptions& options, DiscoveryRunInfo* info) {
  validator->set_exec(options.exec);
  if (options.strategy == DiscoveryStrategy::kHybrid) {
    return HybridDiscoverFuncDeps(validator, universe, options, info);
  }
  return LevelWise<FuncDep>(
      universe, options, validator->row_attrs().size(),
      [&](const AttrSet& lhs) {
        return validator->MaximalFdRhs(lhs, universe);
      },
      [](const DependencySet& found, const FuncDep& candidate) {
        return Implies(found, candidate);
      },
      [](DependencySet* found, FuncDep dep) { found->AddFd(std::move(dep)); },
      info);
}

std::vector<AttrDep> EngineDiscoverAttrDeps(
    const std::vector<Tuple>& rows, const AttrSet& universe,
    const EngineDiscoveryOptions& options, DiscoveryRunInfo* info) {
  PliCache cache(&rows, CacheOptionsOf(options));
  DependencyValidator validator(&cache);
  return EngineDiscoverAttrDeps(&validator, universe, options, info);
}

std::vector<FuncDep> EngineDiscoverFuncDeps(
    const std::vector<Tuple>& rows, const AttrSet& universe,
    const EngineDiscoveryOptions& options, DiscoveryRunInfo* info) {
  PliCache cache(&rows, CacheOptionsOf(options));
  DependencyValidator validator(&cache);
  return EngineDiscoverFuncDeps(&validator, universe, options, info);
}

DependencySet EngineDiscoverDependencies(DependencyValidator* validator,
                                         const AttrSet& universe,
                                         const EngineDiscoveryOptions& options,
                                         DiscoveryRunInfo* info) {
  DependencySet out;
  DiscoveryRunInfo fd_info;
  DiscoveryRunInfo ad_info;
  for (FuncDep& fd :
       EngineDiscoverFuncDeps(validator, universe, options, &fd_info)) {
    out.AddFd(std::move(fd));
  }
  for (AttrDep& ad :
       EngineDiscoverAttrDeps(validator, universe, options, &ad_info)) {
    out.AddAd(std::move(ad));
  }
  if (info != nullptr) {
    // A sticky context trips both passes; report the first failure and the
    // smaller verified prefix so the combined result's contract holds for
    // every dependency kind at once.
    info->status =
        !fd_info.status.ok() ? std::move(fd_info.status)
                             : std::move(ad_info.status);
    info->partial = fd_info.partial || ad_info.partial;
    info->completed_levels =
        std::min(fd_info.completed_levels, ad_info.completed_levels);
  }
  return out;
}

DependencySet EngineDiscoverDependencies(const std::vector<Tuple>& rows,
                                         const AttrSet& universe,
                                         const EngineDiscoveryOptions& options,
                                         DiscoveryRunInfo* info) {
  // One cache serves both passes: the FD pass leaves every candidate
  // partition warm for the AD pass. The worker pool shares it — warm
  // candidate reads are lock-free snapshot hits under the default COW
  // mode, and cold builds serialize only on the writers-side lock.
  PliCache cache(&rows, CacheOptionsOf(options));
  DependencyValidator validator(&cache);
  return EngineDiscoverDependencies(&validator, universe, options, info);
}

}  // namespace flexrel
