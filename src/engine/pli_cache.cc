#include "engine/pli_cache.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace flexrel {

namespace {

const Pli::Cluster kEmptyCluster;

// The value's current cluster in the index, or the shared empty cluster.
const Pli::Cluster& ClusterOf(const PliCache::ValueIndex& index,
                              const Value& value) {
  auto it = index.find(value);
  return it == index.end() ? kEmptyCluster : it->second;
}

// One scan of the instance into a fresh value index — the single builder
// behind both the read path (IndexFor) and the mutation hooks
// (EnsureIndexLocked). No reserve: the map holds one entry per *distinct*
// value, and typical indexed attributes (the bench's jobtype shape) have
// few of those.
std::shared_ptr<PliCache::ValueIndex> BuildValueIndex(
    const std::vector<Tuple>& rows, AttrId attr) {
  auto index = std::make_shared<PliCache::ValueIndex>();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (const Value* v = rows[i].Get(attr)) {
      (*index)[*v].push_back(static_cast<Pli::RowId>(i));
    }
  }
  return index;
}

}  // namespace

void ValueIndexApplyInsert(PliCache::ValueIndex* index, Pli::RowId row,
                           const Value* value) {
  if (value == nullptr) return;  // the row does not carry the attribute
  std::vector<Pli::RowId>& cluster = (*index)[*value];
  if (cluster.empty() || cluster.back() < row) {
    cluster.push_back(row);  // appends (the common case) stay O(1)
  } else {
    cluster.insert(std::lower_bound(cluster.begin(), cluster.end(), row),
                   row);
  }
}

void ValueIndexApplyUpdate(PliCache::ValueIndex* index, Pli::RowId row,
                           const Value* old_value, const Value* new_value) {
  if (old_value != nullptr) {
    auto it = index->find(*old_value);
    if (it != index->end()) {
      std::vector<Pli::RowId>& cluster = it->second;
      auto pos = std::lower_bound(cluster.begin(), cluster.end(), row);
      if (pos != cluster.end() && *pos == row) cluster.erase(pos);
      // Emptied values disappear, as in a from-scratch build.
      if (cluster.empty()) index->erase(it);
    }
  }
  ValueIndexApplyInsert(index, row, new_value);
}

PliCache::PliCache(const std::vector<Tuple>* rows)
    : PliCache(rows, Options()) {}

PliCache::PliCache(const std::vector<Tuple>* rows, Options options)
    : rows_(rows), options_(options) {}

std::shared_ptr<const Pli> PliCache::Get(const AttrSet& attrs) {
  std::promise<PliPtr> promise;
  std::shared_future<PliPtr> future;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(attrs);
    if (it != entries_.end()) {
      ++hits_;
      if (it->second.evictable) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      }
      // Copy the future and wait outside the lock: the thread fulfilling it
      // may itself need the lock for recursive sub-partition lookups.
      std::shared_future<PliPtr> pending = it->second.future;
      lock.unlock();
      return pending.get();
    }
    ++misses_;
    Entry entry;
    entry.future = future = promise.get_future().share();
    entry.evictable = attrs.size() > 1;
    if (entry.evictable) {
      lru_.push_front(attrs);
      entry.lru_pos = lru_.begin();
    }
    entries_.emplace(attrs, std::move(entry));
    EvictLocked();
  }
  // Build outside the lock; concurrent requesters for the same key block on
  // the shared future instead of rebuilding.
  try {
    PliPtr pli = BuildFor(attrs);
    promise.set_value(std::move(pli));
  } catch (...) {
    // Un-poison the slot before publishing the failure: requesters already
    // waiting see this exception, but the next Get() rebuilds instead of
    // rethrowing a stale (possibly transient) error forever.
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(attrs);
      if (it != entries_.end()) DropEntryLocked(it);
    }
    promise.set_exception(std::current_exception());
  }
  return future.get();
}

PliCache::PliPtr PliCache::BuildFor(const AttrSet& attrs) {
  if (attrs.size() <= 1) {
    Pli built = attrs.empty() ? Pli::Build(*rows_, attrs)
                              : Pli::Build(*rows_, attrs.ids().front());
    return std::make_shared<Pli>(std::move(built));
  }
  // X = prefix ∪ {last}: intersect the cached prefix partition (the more
  // refined operand, hence the outer one) with the last attribute's,
  // through that attribute's memoized probe table.
  AttrId last = attrs.ids().back();
  AttrSet prefix = attrs.Minus(AttrSet::Of(last));
  std::shared_ptr<const Pli> left = Get(prefix);
  std::shared_ptr<const std::vector<int32_t>> probe = ProbeFor(last);
  return std::make_shared<Pli>(left->IntersectWithProbe(*probe));
}

std::shared_ptr<const std::vector<int32_t>> PliCache::ProbeFor(AttrId attr) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = probes_.find(attr);
    if (it != probes_.end()) return it->second;
  }
  std::shared_ptr<const Pli> pli = Get(AttrSet::Of(attr));
  auto probe =
      std::make_shared<const std::vector<int32_t>>(pli->ProbeTable());
  std::lock_guard<std::mutex> lock(mu_);
  // Racing builders compute identical tables; first insert wins.
  return probes_.emplace(attr, std::move(probe)).first->second;
}

std::shared_ptr<const PliCache::ValueIndex> PliCache::IndexFor(AttrId attr) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = value_indexes_.find(attr);
    if (it != value_indexes_.end()) return it->second;
  }
  // Build outside the lock — an O(rows) scan must not stall concurrent
  // Get()s. Only the mutation hooks (which already hold mu_ and need the
  // fresh-build signal) go through EnsureIndexLocked.
  std::shared_ptr<ValueIndex> index = BuildValueIndex(*rows_, attr);
  std::lock_guard<std::mutex> lock(mu_);
  // Racing builders compute identical indexes; first insert wins.
  return value_indexes_.emplace(attr, std::move(index)).first->second;
}

PliCache::ValueIndex* PliCache::EnsureIndexLocked(
    AttrId attr, std::unordered_set<AttrId>* built_fresh) {
  auto it = value_indexes_.find(attr);
  if (it != value_indexes_.end()) return it->second.get();
  if (built_fresh != nullptr) built_fresh->insert(attr);
  return value_indexes_.emplace(attr, BuildValueIndex(*rows_, attr))
      .first->second.get();
}

bool PliCache::AgreeingRowsLocked(const AttrSet& attrs, const Tuple& proj,
                                  Pli::RowId exclude_row, Pli::Cluster* out,
                                  std::unordered_set<AttrId>* built_fresh) {
  out->clear();
  // Seed with the smallest single-attribute value cluster; every partner
  // must appear in all of them, so the smallest bounds the scan.
  const Pli::Cluster* seed = nullptr;
  for (AttrId a : attrs) {
    ValueIndex* index = EnsureIndexLocked(a, built_fresh);
    auto it = index->find(*proj.Get(a));
    if (it == index->end()) return true;  // value unseen -> no partners
    if (seed == nullptr || it->second.size() < seed->size()) {
      seed = &it->second;
    }
  }
  // Patch vs rebuild: verifying a seed cluster spanning most of the
  // instance costs more than one probe-table pass over the patched
  // sub-partitions — tell the caller to drop and re-intersect instead.
  if (seed->size() >
      std::max(options_.patch_scan_limit, rows_->size() / 2)) {
    return false;
  }
  for (Pli::RowId r : *seed) {
    if (r == exclude_row) continue;
    if ((*rows_)[r].AgreesOn(proj, attrs)) out->push_back(r);
  }
  return true;
}

PliCache::EntryMap::iterator PliCache::DropEntryLocked(
    EntryMap::iterator it) {
  if (it->second.evictable) lru_.erase(it->second.lru_pos);
  return entries_.erase(it);
}

void PliCache::PatchEntriesLocked(
    const std::function<PatchResult(const AttrSet&, Pli*)>& patch) {
  using namespace std::chrono_literals;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.future.wait_for(0s) != std::future_status::ready) {
      ++patch_rebuilds_;
      it = DropEntryLocked(it);
      continue;
    }
    switch (patch(it->first, it->second.future.get().get())) {
      case PatchResult::kRebuild:
        ++patch_rebuilds_;
        it = DropEntryLocked(it);
        break;
      case PatchResult::kPatched:
        ++patches_;
        ++it;
        break;
      case PatchResult::kUntouched:
        ++it;
        break;
    }
  }
}

void PliCache::OnInsert(Pli::RowId row, const Tuple& t) {
  std::lock_guard<std::mutex> lock(mu_);
  // Cluster ids shift under patches and every memo's num_rows sizing is
  // stale; the inverses are rebuilt on the next multi-attribute build.
  probes_.clear();
  std::unordered_set<AttrId> fresh;  // indexes built post-mutation this call
  PatchEntriesLocked([&](const AttrSet& attrs, Pli* pli) -> PatchResult {
    pli->SetNumRows(rows_->size());  // probe tables must cover the new row
    bool ok;
    if (attrs.empty()) {
      // The ∅-partition holds every row in one cluster; the fast path
      // skips materializing the all-previous-rows partner list.
      ok = pli->ApplyInsertAllRows(row);
    } else if (!t.DefinedOn(attrs)) {
      return PatchResult::kPatched;  // the row stays out of scope, but the
                                     // row count above was still patched
    } else if (attrs.size() == 1) {
      AttrId a = attrs.ids().front();
      ValueIndex* index = EnsureIndexLocked(a, &fresh);
      // A fresh index was built from the already mutated rows and so
      // contains `row`; a pre-existing one is patched only further down.
      ok = pli->ApplyInsert(row, ClusterOf(*index, *t.Get(a)),
                           /*includes_row=*/fresh.count(a) > 0);
    } else {
      // An oversized partner scan means re-intersecting the patched
      // sub-partitions is cheaper: fail the patch to drop the entry.
      Pli::Cluster partners;
      ok = AgreeingRowsLocked(attrs, t, row, &partners, &fresh) &&
           pli->ApplyInsert(row, partners, /*includes_row=*/false);
    }
    return ok ? PatchResult::kPatched : PatchResult::kRebuild;
  });
  // Patch the value indexes last — they are the partner source above and
  // must describe the pre-insert instance while partitions are patched.
  for (auto& [attr, index] : value_indexes_) {
    if (fresh.count(attr) > 0) continue;  // already post-mutation
    if (const Value* v = t.Get(attr)) {
      ValueIndexApplyInsert(index.get(), row, v);
      ++patches_;
    }
  }
}

void PliCache::OnUpdate(Pli::RowId row, const Tuple& old_row,
                        const Tuple& new_row) {
  // The changed attribute set: presence flipped or value differs. Footnote-3
  // type changes surface here as several attributes at once.
  AttrSet changed;
  for (const auto& [attr, value] : old_row.fields()) {
    const Value* now = new_row.Get(attr);
    if (now == nullptr || *now != value) changed.Insert(attr);
  }
  for (const auto& [attr, value] : new_row.fields()) {
    (void)value;
    if (!old_row.Has(attr)) changed.Insert(attr);
  }
  if (changed.empty()) return;

  std::lock_guard<std::mutex> lock(mu_);
  // Only the changed attributes' partitions shift cluster ids; probe memos
  // of untouched attributes stay valid (an update never changes num_rows).
  for (AttrId a : changed) probes_.erase(a);
  std::unordered_set<AttrId> fresh;
  // Detach the row from the old-value clusters of pre-existing indexes, so
  // the indexes list exactly the row's potential partners.
  for (AttrId a : changed) {
    auto it = value_indexes_.find(a);
    if (it == value_indexes_.end()) continue;
    ValueIndexApplyUpdate(it->second.get(), row, old_row.Get(a), nullptr);
  }
  PatchEntriesLocked([&](const AttrSet& attrs, Pli* pli) -> PatchResult {
    if (!attrs.Intersects(changed)) {
      return PatchResult::kUntouched;  // incl. the ∅-partition
    }
    bool ok = true;
    if (attrs.size() == 1) {
      AttrId a = attrs.ids().front();
      ValueIndex* index = EnsureIndexLocked(a, &fresh);
      if (const Value* old_v = old_row.Get(a)) {
        // Fresh and patched indexes both exclude `row` from the old value's
        // cluster at this point.
        ok = pli->ApplyErase(row, ClusterOf(*index, *old_v),
                             /*includes_row=*/false);
      }
      if (ok) {
        if (const Value* new_v = new_row.Get(a)) {
          ok = pli->ApplyInsert(row, ClusterOf(*index, *new_v),
                                /*includes_row=*/fresh.count(a) > 0);
        }
      }
    } else {
      Pli::Cluster partners;
      if (old_row.DefinedOn(attrs)) {
        ok = AgreeingRowsLocked(attrs, old_row, row, &partners, &fresh) &&
             pli->ApplyErase(row, partners, /*includes_row=*/false);
      }
      if (ok && new_row.DefinedOn(attrs)) {
        ok = AgreeingRowsLocked(attrs, new_row, row, &partners, &fresh) &&
             pli->ApplyInsert(row, partners, /*includes_row=*/false);
      }
    }
    return ok ? PatchResult::kPatched : PatchResult::kRebuild;
  });
  // Attach the row under its new values in the pre-existing indexes (fresh
  // ones already carry it).
  for (AttrId a : changed) {
    if (fresh.count(a) > 0) continue;
    auto it = value_indexes_.find(a);
    if (it == value_indexes_.end()) continue;
    if (const Value* new_v = new_row.Get(a)) {
      ValueIndexApplyInsert(it->second.get(), row, new_v);
      ++patches_;
    }
  }
}

void PliCache::EvictLocked() {
  using namespace std::chrono_literals;
  while (lru_.size() > options_.max_entries) {
    bool erased = false;
    // Oldest-first; entries still being built (future not ready) survive.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      auto entry = entries_.find(*it);
      if (entry == entries_.end()) continue;  // defensive; should not happen
      if (entry->second.future.wait_for(0s) != std::future_status::ready) {
        continue;
      }
      entries_.erase(entry);
      lru_.erase(std::next(it).base());
      ++evictions_;
      erased = true;
      break;
    }
    if (!erased) break;  // everything over budget is still building
  }
}

size_t PliCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

size_t PliCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t PliCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t PliCache::cached_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t PliCache::patches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return patches_;
}

size_t PliCache::patch_rebuilds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return patch_rebuilds_;
}

}  // namespace flexrel
